package plan

import (
	"strings"
	"testing"

	"repro/internal/pattern"
)

func TestMatchingOrderDiamondSearchesTriangleFirst(t *testing.T) {
	// Fig 5: the triangle-first matching order must win for the diamond.
	mo := BestMatchingOrder(pattern.Diamond())
	p := pattern.Diamond()
	counts := connectedAncestorCounts(p, mo)
	if counts[2] != 2 {
		t.Errorf("diamond order %v has CA counts %v; want a triangle by level 2", mo, counts)
	}
}

func TestMatchingOrdersAreConnected(t *testing.T) {
	for _, p := range []*pattern.Pattern{
		pattern.Triangle(), pattern.FourCycle(), pattern.Diamond(),
		pattern.TailedTriangle(), pattern.House(), pattern.KStar(5), pattern.KPath(5),
	} {
		mo := BestMatchingOrder(p)
		if !isConnectedOrder(p, mo) {
			t.Errorf("%s: best order %v not connected", p.Name(), mo)
		}
		for _, o := range EnumerateMatchingOrders(p) {
			if !isConnectedOrder(p, o) {
				t.Errorf("%s: enumerated order %v not connected", p.Name(), o)
			}
		}
	}
}

func TestEnumerateMatchingOrderCounts(t *testing.T) {
	// For K_k every permutation is connected: k! orders.
	if got := len(EnumerateMatchingOrders(pattern.KClique(3))); got != 6 {
		t.Errorf("K3 orders = %d want 6", got)
	}
	// For the wedge: center first gives 2 leaf orders; leaf first forces
	// center next then other leaf: 2×... enumerate manually = 4.
	if got := len(EnumerateMatchingOrders(pattern.Wedge())); got != 4 {
		t.Errorf("wedge orders = %d want 4", got)
	}
}

func TestSymmetryOrderFourCycleMatchesPaper(t *testing.T) {
	pl, err := Compile(pattern.FourCycle(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := pl.Chain()
	if ops == nil {
		t.Fatal("4-cycle plan is not a chain")
	}
	// Paper (Listing 1): bounds v1<v0, v2<v1, v3<v0.
	wantBounds := [][]int{nil, {0}, {1}, {0}}
	for lvl, want := range wantBounds {
		if !intsEqual(ops[lvl].UpperBounds, want) {
			t.Errorf("level %d bounds = %v want %v", lvl, ops[lvl].UpperBounds, want)
		}
	}
	// §VI-B: insert v1's neighbors only, bounded by v0.
	if !ops[1].InsertCMap || ops[1].CMapBound != 0 {
		t.Errorf("level 1 cmap hints: insert=%v bound=%d", ops[1].InsertCMap, ops[1].CMapBound)
	}
	if ops[0].InsertCMap || ops[2].InsertCMap {
		t.Error("unnecessary cmap insertions")
	}
}

func TestSymmetryConstraintsPointForward(t *testing.T) {
	for _, p := range []*pattern.Pattern{
		pattern.Triangle(), pattern.FourCycle(), pattern.Diamond(),
		pattern.KClique(5), pattern.KCycle(5), pattern.KStar(5),
	} {
		order := BestMatchingOrder(p)
		q := relabelByOrder(p, order)
		for _, c := range SymmetryOrder(q) {
			if c.Lo >= c.Hi {
				t.Errorf("%s: constraint %+v does not point at a later level", p.Name(), c)
			}
		}
	}
}

func TestSymmetryOrderCliqueIsTotal(t *testing.T) {
	// K_k is fully symmetric: the symmetry order must be a total chain,
	// i.e. level i bounded by level i-1 after reduction.
	pl, err := Compile(pattern.KClique(4), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for lvl, op := range pl.Chain() {
		if lvl == 0 {
			continue
		}
		if !intsEqual(op.UpperBounds, []int{lvl - 1}) {
			t.Errorf("K4 level %d bounds %v want [%d]", lvl, op.UpperBounds, lvl-1)
		}
	}
}

func TestDiamondFrontierReuse(t *testing.T) {
	// §V-C: v2 and v3 of the diamond share the candidate set
	// adj(v0) ∩ adj(v1); the compiler must memoize and reuse it.
	pl, err := Compile(pattern.Diamond(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := pl.Chain()
	if !ops[2].MemoizeFrontier {
		t.Error("diamond level 2 not memoized")
	}
	if ops[3].FrontierBase != 2 {
		t.Errorf("diamond level 3 frontier base = %d want 2", ops[3].FrontierBase)
	}
	if len(ops[3].IntersectWith) != 0 {
		t.Errorf("diamond level 3 residual intersects = %v want none", ops[3].IntersectWith)
	}
}

func TestCliqueDAGFrontierChain(t *testing.T) {
	pl, err := CompileCliqueDAG(5)
	if err != nil {
		t.Fatal(err)
	}
	ops := pl.Chain()
	for lvl := 3; lvl < 5; lvl++ {
		if ops[lvl].FrontierBase != lvl-1 {
			t.Errorf("5-clique DAG level %d frontier base = %d want %d", lvl, ops[lvl].FrontierBase, lvl-1)
		}
		if !intsEqual(ops[lvl].IntersectWith, []int{lvl - 1}) {
			t.Errorf("5-clique DAG level %d residual = %v want [%d]", lvl, ops[lvl].IntersectWith, lvl-1)
		}
	}
	if !pl.RequiresDAG {
		t.Error("DAG plan not marked")
	}
	if len(ops[4].UpperBounds) != 0 {
		t.Error("DAG plan has symmetry bounds")
	}
}

func TestInducedPlansCarryDisconnections(t *testing.T) {
	pl, err := Compile(pattern.Wedge(), Options{Induced: true})
	if err != nil {
		t.Fatal(err)
	}
	ops := pl.Chain()
	total := 0
	for _, op := range ops {
		total += len(op.Disconnected)
	}
	if total == 0 {
		t.Error("induced wedge plan has no disconnection constraints")
	}
	plE, err := Compile(pattern.Wedge(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range plE.Chain() {
		if len(op.Disconnected) != 0 {
			t.Error("edge-induced plan has disconnection constraints")
		}
	}
}

func TestMultiPatternMergeSharesPrefix(t *testing.T) {
	// Listing 2: diamond and tailed-triangle share v0, v1, v2.
	pl, err := CompileMulti([]*pattern.Pattern{pattern.Diamond(), pattern.TailedTriangle()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatal(err)
	}
	// Count branch points: the root chain should be shared at least through
	// level 1 (both start with v1 ∈ adj(v0), v1 < v0).
	n := pl.Root
	depth := 0
	for len(n.Children) == 1 {
		n = n.Children[0]
		depth++
	}
	if depth < 1 {
		t.Errorf("no shared prefix (branches at depth %d)", depth)
	}
	if len(n.Children) < 2 && n.PatternIdx == NoLevel {
		t.Error("tree never branches yet has two patterns")
	}
}

func TestMultiPatternRejects(t *testing.T) {
	if _, err := CompileMulti([]*pattern.Pattern{pattern.Triangle(), pattern.KClique(4)}, Options{}); err == nil {
		t.Error("mixed sizes accepted")
	}
	if _, err := CompileMulti([]*pattern.Pattern{pattern.Triangle(), pattern.KClique(3)}, Options{}); err == nil {
		t.Error("isomorphic duplicates accepted")
	}
	if _, err := CompileMulti(nil, Options{}); err == nil {
		t.Error("empty set accepted")
	}
}

func TestCompileRejectsBadPatterns(t *testing.T) {
	disc := pattern.New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if _, err := Compile(disc, Options{}); err == nil {
		t.Error("disconnected pattern accepted")
	}
	if _, err := Compile(pattern.New(1), Options{}); err == nil {
		t.Error("single vertex accepted")
	}
	if _, err := CompileCliqueDAG(1); err == nil {
		t.Error("1-clique DAG accepted")
	}
}

func TestCountDivisors(t *testing.T) {
	sym, _ := Compile(pattern.FourCycle(), Options{})
	if sym.CountDivisor[0] != 1 {
		t.Errorf("symmetric divisor = %d", sym.CountDivisor[0])
	}
	nosym, _ := Compile(pattern.FourCycle(), Options{NoSymmetry: true})
	if nosym.CountDivisor[0] != 8 {
		t.Errorf("no-symmetry 4-cycle divisor = %d want 8", nosym.CountDivisor[0])
	}
}

func TestValidateCatchesCorruptPlans(t *testing.T) {
	pl, _ := Compile(pattern.Triangle(), Options{})
	bad := *pl
	bad.Root = &Node{Op: VertexOp{Level: 1}}
	if err := bad.Validate(); err == nil {
		t.Error("bad root level accepted")
	}
	pl2, _ := Compile(pattern.Triangle(), Options{})
	pl2.Root.Children[0].Op.Extender = 5
	if err := pl2.Validate(); err == nil {
		t.Error("out-of-range extender accepted")
	}
}

func TestIRStringFormat(t *testing.T) {
	pl, err := Compile(pattern.FourCycle(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := pl.String()
	for _, want := range []string{"vertex:", "embedding:", "pruneBy", "v0.N", "emb0 := v0", "matches 4-cycle", "cmap-insert(<v0)"} {
		if !strings.Contains(s, want) {
			t.Errorf("IR dump missing %q:\n%s", want, s)
		}
	}
	multi, err := CompileMulti([]*pattern.Pattern{pattern.Diamond(), pattern.TailedTriangle()}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ms := multi.String()
	if !strings.Contains(ms, "matches diamond") || !strings.Contains(ms, "matches tailed-triangle") {
		t.Errorf("multi-pattern dump incomplete:\n%s", ms)
	}
}

func TestLessMatrixTransitivity(t *testing.T) {
	pl, _ := Compile(pattern.KClique(4), Options{})
	// K4 chain: emb3 < emb2 < emb1 < emb0, so Less(3,0) must hold.
	if !pl.Less(3, 0) || !pl.Less(3, 2) || !pl.Less(1, 0) {
		t.Error("transitive closure incomplete")
	}
	if pl.Less(0, 3) {
		t.Error("inverted order")
	}
}

func TestChainOnTreeReturnsNil(t *testing.T) {
	pl, _ := CompileMulti([]*pattern.Pattern{pattern.Diamond(), pattern.TailedTriangle()}, Options{})
	if pl.Chain() != nil {
		t.Error("Chain() on branching plan should be nil")
	}
}

func TestMotifPlansCoverAllMotifs(t *testing.T) {
	for k := 3; k <= 4; k++ {
		pl, err := CompileMotifs(k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(pl.Patterns) != len(pattern.Motifs(k)) {
			t.Errorf("%d-MC plan has %d patterns", k, len(pl.Patterns))
		}
		if !pl.Induced {
			t.Error("motif plan not induced")
		}
		if err := pl.Validate(); err != nil {
			t.Errorf("%d-MC plan invalid: %v", k, err)
		}
	}
}
