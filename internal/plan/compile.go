package plan

// The execution-plan generator ("compiler", §V). Compile produces a plan for
// one pattern; CompileMulti merges several patterns into a dependency tree
// (Listing 2); CompileMotifs compiles the vertex-induced k-motif-counting
// plan; CompileCliqueDAG applies the orientation optimization of §V-C.

import (
	"fmt"

	"repro/internal/pattern"
)

// Options configure compilation.
type Options struct {
	// Induced selects vertex-induced matching semantics (exact
	// connectivity, used by k-MC); default is edge-induced (TC, k-CL, SL).
	Induced bool

	// NoFrontierHints disables frontier-list memoization hints (ablation).
	NoFrontierHints bool

	// NoCMapHints disables c-map management hints: the hardware then
	// inserts every fixed vertex's full neighbor list (ablation for the
	// §VI-B compiler heuristics).
	NoCMapHints bool

	// NoSymmetry disables symmetry-order generation. The plan then finds
	// every automorphic copy; engines divide counts by |Aut(P)|. This is
	// the AutoMine [58] baseline mode (TrieJax has the same limitation).
	NoSymmetry bool
}

// Compile generates the execution plan for a single pattern.
func Compile(p *pattern.Pattern, opt Options) (*Plan, error) {
	if err := checkPattern(p); err != nil {
		return nil, err
	}
	ops, less, err := compileChain(p, opt)
	if err != nil {
		return nil, err
	}
	pl := &Plan{
		Patterns: []*pattern.Pattern{p},
		K:        p.Size(),
		Induced:  opt.Induced,
		less:     less,
	}
	pl.Root = chainToNodes(ops, 0)
	finalizeHints(pl, opt, [][][]bool{less})
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("plan: internal error: %w", err)
	}
	return pl, nil
}

// CompileMulti generates a merged dependency-tree plan that mines all the
// given patterns simultaneously. All patterns must have the same size.
func CompileMulti(ps []*pattern.Pattern, opt Options) (*Plan, error) {
	if len(ps) == 0 {
		return nil, fmt.Errorf("plan: no patterns")
	}
	k := ps[0].Size()
	chains := make([][]VertexOp, len(ps))
	lesses := make([][][]bool, len(ps))
	for i, p := range ps {
		if err := checkPattern(p); err != nil {
			return nil, err
		}
		if p.Size() != k {
			return nil, fmt.Errorf("plan: multi-pattern plans need equal sizes (%d vs %d)", p.Size(), k)
		}
		for j := 0; j < i; j++ {
			if ps[j].IsIsomorphic(p) {
				return nil, fmt.Errorf("plan: patterns %d and %d are isomorphic", j, i)
			}
		}
		ops, less, err := compileChain(p, opt)
		if err != nil {
			return nil, err
		}
		chains[i] = ops
		lesses[i] = less
	}
	// Re-pick later patterns' matching orders to maximize merged prefixes
	// ("common search paths merged to avoid repetitive enumeration", §V-B):
	// among the orders with the same optimal pruning profile, prefer the one
	// whose op chain shares the longest structural prefix with an earlier
	// chain. This is what makes diamond + tailed-triangle share v0,v1,v2
	// (Listing 2).
	for i := 1; i < len(ps); i++ {
		chains[i], lesses[i] = bestMergeableChain(ps[i], opt, chains[:i])
	}
	pl := &Plan{Patterns: ps, K: k, Induced: opt.Induced, less: lesses[0]}
	pl.Root = mergeChains(chains)
	finalizeHints(pl, opt, lesses)
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("plan: internal error: %w", err)
	}
	return pl, nil
}

// CompileMotifs generates the vertex-induced multi-pattern plan for k-motif
// counting (all connected k-vertex patterns).
func CompileMotifs(k int, opt Options) (*Plan, error) {
	opt.Induced = true
	return CompileMulti(pattern.Motifs(k), opt)
}

// CompileCliqueDAG generates the k-clique plan for a degree-oriented DAG
// input (§V-C): after orientation every clique appears exactly once, so no
// symmetry bounds are needed and candidate frontiers chain perfectly.
func CompileCliqueDAG(k int) (*Plan, error) {
	if k < 2 || k > pattern.MaxVertices {
		return nil, fmt.Errorf("plan: clique size %d out of range", k)
	}
	p := pattern.KClique(k)
	ops := make([]VertexOp, k)
	for i := 0; i < k; i++ {
		op := VertexOp{
			Level:        i,
			Extender:     i - 1, // NoLevel at 0
			FrontierBase: NoLevel,
			CMapBound:    NoLevel,
		}
		if i == 0 {
			op.Extender = NoLevel
		}
		for j := 0; j < i-1; j++ {
			op.Connected = append(op.Connected, j)
		}
		ops[i] = op
	}
	less := make([][]bool, k)
	for i := range less {
		less[i] = make([]bool, k)
	}
	// The clique frontier chain (candidates(i) = frontier(i-1) ∩ adj(v_{i-1}))
	// is the memoization that §V-C/§VII-B credit for k-CL efficiency.
	assignFrontierBases(ops, less)
	pl := &Plan{
		Patterns:    []*pattern.Pattern{p},
		K:           k,
		RequiresDAG: true,
		less:        less,
	}
	pl.Root = chainToNodes(ops, 0)
	finalizeHints(pl, Options{}, [][][]bool{less})
	if err := pl.Validate(); err != nil {
		return nil, fmt.Errorf("plan: internal error: %w", err)
	}
	return pl, nil
}

func checkPattern(p *pattern.Pattern) error {
	if p.Size() < 2 {
		return fmt.Errorf("plan: pattern %s too small", p.Name())
	}
	if !p.IsConnected() {
		return fmt.Errorf("plan: pattern %s is disconnected", p.Name())
	}
	return nil
}

// compileChain produces the op chain and less matrix for one pattern under
// its best matching order.
func compileChain(p *pattern.Pattern, opt Options) ([]VertexOp, [][]bool, error) {
	return compileChainOrdered(p, opt, BestMatchingOrder(p))
}

// bestMergeableChain compiles p under the matching order that maximizes the
// structural prefix shared with any of the previously compiled chains,
// restricted to orders with the same connected-ancestor-count profile as the
// best order (so merging never costs pruning power). Ties fall back to the
// standard order preference.
func bestMergeableChain(p *pattern.Pattern, opt Options, prev [][]VertexOp) ([]VertexOp, [][]bool) {
	best := BestMatchingOrder(p)
	bestCA := connectedAncestorCounts(p, best)
	var bestOps []VertexOp
	var bestLess [][]bool
	bestShared := -1
	var bestOrder MatchingOrder
	for _, o := range EnumerateMatchingOrders(p) {
		if !intsEqual(connectedAncestorCounts(p, o), bestCA) {
			continue
		}
		ops, less, err := compileChainOrdered(p, opt, o)
		if err != nil {
			continue
		}
		shared := 0
		for _, pc := range prev {
			if s := sharedPrefixLen(pc, ops); s > shared {
				shared = s
			}
		}
		if shared > bestShared || (shared == bestShared && scoreBetter(p, o, bestOrder)) {
			bestShared, bestOps, bestLess, bestOrder = shared, ops, less, o
		}
	}
	return bestOps, bestLess
}

// sharedPrefixLen counts how many leading ops (beyond the trivial level 0)
// two chains share structurally.
func sharedPrefixLen(a, b []VertexOp) int {
	n := 0
	for i := 1; i < len(a) && i < len(b); i++ {
		if !a[i].structurallyEqual(b[i]) || !hintsEqual(a[i], b[i]) {
			break
		}
		n++
	}
	return n
}

// compileChainOrdered produces the op chain and less matrix for one pattern
// under a specific matching order.
func compileChainOrdered(p *pattern.Pattern, opt Options, order MatchingOrder) ([]VertexOp, [][]bool, error) {
	k := p.Size()
	q := relabelByOrder(p, order)

	var cs []SymmetryConstraint
	if !opt.NoSymmetry {
		cs = SymmetryOrder(q)
	}
	less := lessMatrix(k, cs)
	bounds := boundsPerLevel(k, cs, less)

	ops := make([]VertexOp, k)
	for i := 0; i < k; i++ {
		op := VertexOp{
			Level:        i,
			Extender:     NoLevel,
			FrontierBase: NoLevel,
			CMapBound:    NoLevel,
			UpperBounds:  bounds[i],
		}
		if i > 0 {
			op.Extender = extenderFor(q, i)
			for j := 0; j < i; j++ {
				switch {
				case j == op.Extender:
				case q.HasEdge(i, j):
					op.Connected = append(op.Connected, j)
				case opt.Induced:
					op.Disconnected = append(op.Disconnected, j)
				}
			}
			op.NotEqual = notEqualSet(q, op, less, opt.Induced)
		}
		ops[i] = op
	}
	if !opt.NoFrontierHints {
		assignFrontierBases(ops, less)
	}
	return ops, less, nil
}

// notEqualSet lists earlier levels whose distinctness from the candidate is
// not already implied by adjacency (no self loops) or a strict ID bound.
func notEqualSet(q *pattern.Pattern, op VertexOp, less [][]bool, induced bool) []int {
	var out []int
	for j := 0; j < op.Level; j++ {
		if j == op.Extender || q.HasEdge(op.Level, j) {
			continue // candidate is adjacent to emb[j], hence distinct
		}
		if less[op.Level][j] || less[j][op.Level] {
			continue // strict order implies distinctness
		}
		if induced {
			// Vertex-induced plans check disconnection against emb[j];
			// that check alone does not imply distinctness, so keep j.
			out = append(out, j)
			continue
		}
		out = append(out, j)
	}
	return out
}

// sourceSet returns {Extender} ∪ Connected as a sorted slice.
func sourceSet(op VertexOp) []int {
	s := append([]int{op.Extender}, op.Connected...)
	sortInts(s)
	return s
}

// assignFrontierBases finds, for each level, the deepest earlier level whose
// qualified candidate frontier is a valid starting set (§V-C). Validity:
//
//   - sources(base) ⊆ sources(this) and disconnected(base) ⊆ disconnected(this):
//     the base frontier was built from a subset of this level's constraints;
//   - every ID bound applied at the base is implied by this level's bounds
//     under the transitive symmetry order (otherwise the base frontier is
//     over-filtered);
//   - the memoized list is itself the result of a multi-list set operation
//     (|sources| ≥ 2 or a non-empty difference). Reusing a plain adjacency
//     list saves nothing — worse, it defeats the c-map's amortization: the
//     paper's 4-cycle plan iterates the extender's adjacency and queries the
//     c-map against an ancestor inserted once at a shallow level (read
//     ratios of 93–98%, §VII-C), which reuse of adj(v0) would invert into
//     one insertion per deep extension.
func assignFrontierBases(ops []VertexOp, less [][]bool) {
	for i := 2; i < len(ops); i++ {
		op := &ops[i]
		si := sourceSet(*op)
		best := NoLevel
		for j := i - 1; j >= 1; j-- {
			bj := ops[j]
			sj := sourceSet(bj)
			if len(sj) < 2 && len(bj.Disconnected) == 0 {
				continue // plain adjacency list; not worth memoizing
			}
			if !subset(sj, si) || !subset(bj.Disconnected, op.Disconnected) {
				continue
			}
			if !boundsImplied(op.UpperBounds, bj.UpperBounds, less) {
				continue
			}
			if best == NoLevel || len(sj) > len(sourceSet(ops[best])) {
				best = j
			}
		}
		if best == NoLevel {
			continue
		}
		op.FrontierBase = best
		baseS := sourceSet(ops[best])
		for _, s := range si {
			if !containsInt(baseS, s) {
				op.IntersectWith = append(op.IntersectWith, s)
			}
		}
		for _, d := range op.Disconnected {
			if !containsInt(ops[best].Disconnected, d) {
				op.DifferenceWith = append(op.DifferenceWith, d)
			}
		}
	}
}

// boundsImplied reports whether every bound in base is implied by some bound
// in cur: cand < emb[a] and emb[a] < emb[b] (provable) imply cand < emb[b].
func boundsImplied(cur, base []int, less [][]bool) bool {
	for _, b := range base {
		ok := false
		for _, a := range cur {
			if a == b || less[a][b] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

func subset(a, b []int) bool {
	for _, x := range a {
		if !containsInt(b, x) {
			return false
		}
	}
	return true
}

func containsInt(s []int, x int) bool {
	for _, v := range s {
		if v == x {
			return true
		}
	}
	return false
}

// chainToNodes turns an op chain into a degenerate tree whose leaf completes
// pattern patternIdx.
func chainToNodes(ops []VertexOp, patternIdx int) *Node {
	var root, cur *Node
	for i := range ops {
		n := &Node{Op: ops[i], PatternIdx: NoLevel}
		if root == nil {
			root = n
		} else {
			cur.Children = append(cur.Children, n)
		}
		cur = n
	}
	cur.PatternIdx = patternIdx
	return root
}

// mergeChains builds the multi-pattern dependency tree, merging structurally
// equal common prefixes (Listing 2: diamond and tailed-triangle share
// v0,v1,v2).
func mergeChains(chains [][]VertexOp) *Node {
	root := &Node{Op: chains[0][0], PatternIdx: NoLevel}
	for idx, chain := range chains {
		cur := root
		for lvl := 1; lvl < len(chain); lvl++ {
			var next *Node
			for _, c := range cur.Children {
				if c.Op.structurallyEqual(chain[lvl]) && hintsEqual(c.Op, chain[lvl]) {
					next = c
					break
				}
			}
			if next == nil {
				next = &Node{Op: chain[lvl].clone(), PatternIdx: NoLevel}
				cur.Children = append(cur.Children, next)
			}
			cur = next
		}
		cur.PatternIdx = idx
	}
	return root
}

// hintsEqual guards merging: ops merge only when their frontier
// decompositions agree (they do whenever the structural prefix agrees, since
// the decomposition is a deterministic function of it).
func hintsEqual(a, b VertexOp) bool {
	return a.FrontierBase == b.FrontierBase &&
		intsEqual(a.IntersectWith, b.IntersectWith) &&
		intsEqual(a.DifferenceWith, b.DifferenceWith)
}

// finalizeHints runs the whole-tree hint passes: frontier memoization marks
// and c-map management hints (§VI-B). lesses holds the per-pattern transitive
// orders, indexed like Plan.Patterns.
func finalizeHints(pl *Plan, opt Options, lesses [][][]bool) {
	pl.CountDivisor = make([]int64, len(pl.Patterns))
	for i, p := range pl.Patterns {
		pl.CountDivisor[i] = 1
		if opt.NoSymmetry && !pl.RequiresDAG {
			pl.CountDivisor[i] = int64(p.AutomorphismCount())
		}
	}
	// Pass 1: mark memoized frontiers — any node referenced as a
	// FrontierBase by a descendant on the same root path.
	var path []*Node
	var mark func(n *Node)
	mark = func(n *Node) {
		path = append(path, n)
		if fb := n.Op.FrontierBase; fb != NoLevel {
			path[fb].Op.MemoizeFrontier = true
		}
		for _, c := range n.Children {
			mark(c)
		}
		path = path[:len(path)-1]
	}
	mark(pl.Root)

	// Pass 2: c-map query sets and insertion hints. CMapQuery holds the
	// levels this op checks per candidate element: the residual intersect/
	// difference levels when a frontier base exists, or the full connected/
	// disconnected sets otherwise.
	var setQueries func(n *Node)
	setQueries = func(n *Node) {
		op := &n.Op
		op.CMapQuery = nil
		if op.Level > 0 {
			if op.FrontierBase != NoLevel {
				op.CMapQuery = append(op.CMapQuery, op.IntersectWith...)
				op.CMapQuery = append(op.CMapQuery, op.DifferenceWith...)
			} else {
				op.CMapQuery = append(op.CMapQuery, op.Connected...)
				op.CMapQuery = append(op.CMapQuery, op.Disconnected...)
			}
			sortInts(op.CMapQuery)
		}
		for _, c := range n.Children {
			setQueries(c)
		}
	}
	setQueries(pl.Root)

	// Pass 3: InsertCMap(j) on a node iff some descendant queries level j;
	// CMapBound(j) is a level b whose bound provably dominates every such
	// query's candidates (so inserting only IDs < emb[b] is lossless).
	// Validity must hold under every querying pattern's own order, so we
	// intersect candidate bounds across the leaf patterns below each query.
	var walk func(n *Node, path []*Node)
	walk = func(n *Node, path []*Node) {
		path = append(path, n)
		for _, c := range n.Children {
			walk(c, path)
		}
		if !n.IsLeaf() {
			return
		}
		less := lesses[n.PatternIdx]
		for _, q := range path {
			for _, j := range q.Op.CMapQuery {
				ins := &path[j].Op
				if !ins.InsertCMap {
					ins.InsertCMap = true
					if !opt.NoCMapHints {
						ins.CMapBound = validCMapBound(j, q.Op.UpperBounds, less)
					}
				} else if ins.CMapBound != NoLevel {
					// Keep the bound only if this query also implies it.
					if !boundImpliedBy(ins.CMapBound, q.Op.UpperBounds, less) {
						ins.CMapBound = NoLevel
					}
				}
			}
		}
	}
	walk(pl.Root, nil)

	// Pass 4: auxiliary-graph directives (aux.go). Runs last so frontier
	// bases, residual sets, and the merged tree shape are final; the
	// directives are hints layered on top and never change what any pass
	// above decided.
	assignAuxDirectives(pl, lesses)
}

// validCMapBound returns a level b ≤ j usable as the insertion ID bound for
// level j given one query's upper bounds, or NoLevel. Preference: the bound
// whose value is provably smallest (prunes the most insertions).
func validCMapBound(j int, queryBounds []int, less [][]bool) int {
	var valid []int
	for b := 0; b <= j; b++ {
		if boundImpliedBy(b, queryBounds, less) {
			valid = append(valid, b)
		}
	}
	if len(valid) == 0 {
		return NoLevel
	}
	best := valid[0]
	for _, b := range valid[1:] {
		if less[b][best] { // emb[b] provably smaller → tighter filter
			best = b
		}
	}
	return best
}

// boundImpliedBy reports whether cand < emb[b] follows from the query's
// bounds: some a in bounds with a == b or emb[a] < emb[b] provable.
func boundImpliedBy(b int, bounds []int, less [][]bool) bool {
	for _, a := range bounds {
		if a == b || less[a][b] {
			return true
		}
	}
	return false
}
