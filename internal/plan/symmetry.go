package plan

// Symmetry-order generation (§II-B, Fig 6). Automorphic copies of a pattern
// would otherwise be discovered once per automorphism; the compiler breaks
// the symmetry with partial orders on the matched data-vertex IDs so that
// exactly one canonical copy survives.
//
// We use the stabilizer-chain construction on Aut(P) (the GraphZero [57]
// approach): repeatedly take the smallest vertex moved by the remaining
// automorphism group, constrain it to carry the largest data-vertex ID of its
// orbit, and descend into its stabilizer. Every constraint relates a level to
// a *later* level, so all constraints become vid upper bounds — exactly the
// pruneBy bound field of the IR (Listing 1).

import "sort"

// SymmetryConstraint asserts emb[Hi] < emb[Lo] for levels Lo < Hi: the vertex
// matched later must have the smaller data-vertex ID (the paper's convention,
// e.g. {v1 < v0, v2 < v1, v3 < v0} for the 4-cycle).
type SymmetryConstraint struct {
	Lo int // earlier level, holds the larger ID
	Hi int // later level, holds the smaller ID
}

// patternLike is the minimal pattern surface symmetry generation needs.
type patternLike interface {
	Size() int
	Automorphisms() [][]int
}

// SymmetryOrder computes the symmetry-breaking constraints for a pattern
// whose vertex labels already equal plan levels (i.e. after relabelByOrder).
func SymmetryOrder(q patternLike) []SymmetryConstraint {
	auts := q.Automorphisms()
	var out []SymmetryConstraint
	for len(auts) > 1 {
		// Find the smallest vertex moved by any remaining automorphism.
		v := -1
		for u := 0; u < q.Size() && v < 0; u++ {
			for _, a := range auts {
				if a[u] != u {
					v = u
					break
				}
			}
		}
		if v < 0 {
			break
		}
		// Orbit of v: all images under the remaining group. Every orbit
		// member is > v (a smaller moved vertex would contradict v's
		// minimality), so each constraint points at a later level. The map
		// is only a dedup set; members accumulate in deterministic auts
		// order and are sorted, never emitted in map-iteration order.
		orbit := map[int]bool{}
		var members []int
		for _, a := range auts {
			if a[v] != v && !orbit[a[v]] {
				orbit[a[v]] = true
				members = append(members, a[v])
			}
		}
		sort.Ints(members)
		for _, u := range members {
			out = append(out, SymmetryConstraint{Lo: v, Hi: u})
		}
		// Restrict to the stabilizer of v.
		var stab [][]int
		for _, a := range auts {
			if a[v] == v {
				stab = append(stab, a)
			}
		}
		auts = stab
	}
	sortConstraints(out)
	return out
}

func sortConstraints(cs []SymmetryConstraint) {
	for i := 1; i < len(cs); i++ {
		for j := i; j > 0; j-- {
			a, b := cs[j-1], cs[j]
			if a.Lo < b.Lo || (a.Lo == b.Lo && a.Hi <= b.Hi) {
				break
			}
			cs[j-1], cs[j] = b, a
		}
	}
}

// lessMatrix builds the transitive closure of "emb[a] < emb[b]" from the
// constraint list; less[a][b] == true means emb[a] < emb[b] is provable.
func lessMatrix(k int, cs []SymmetryConstraint) [][]bool {
	less := make([][]bool, k)
	for i := range less {
		less[i] = make([]bool, k)
	}
	for _, c := range cs {
		less[c.Hi][c.Lo] = true // emb[Hi] < emb[Lo]
	}
	for m := 0; m < k; m++ { // Floyd–Warshall closure
		for a := 0; a < k; a++ {
			if !less[a][m] {
				continue
			}
			for b := 0; b < k; b++ {
				if less[m][b] {
					less[a][b] = true
				}
			}
		}
	}
	return less
}

// boundsPerLevel converts constraints into per-level upper-bound lists with
// redundant (transitively implied) bounds removed: if emb[i] < emb[a] and
// emb[a] < emb[b] then the bound b at level i is implied by bound a.
func boundsPerLevel(k int, cs []SymmetryConstraint, less [][]bool) [][]int {
	raw := make([][]int, k)
	for _, c := range cs {
		raw[c.Hi] = append(raw[c.Hi], c.Lo)
	}
	out := make([][]int, k)
	for lvl, bounds := range raw {
		for _, b := range bounds {
			implied := false
			for _, a := range bounds {
				if a != b && less[a][b] {
					implied = true // a is a tighter bound than b
					break
				}
			}
			if !implied {
				out[lvl] = append(out[lvl], b)
			}
		}
		sortInts(out[lvl])
	}
	return out
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
