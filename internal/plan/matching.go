package plan

// Matching-order generation (§II-B). The compiler enumerates every connected
// matching order of the pattern and scores them with the rule the paper
// adopts from prior work: prefer orders that accumulate connectivity
// constraints as early as possible (e.g. for the diamond, search a triangle
// before a wedge, Fig 5), because early constraints prune exponentially more
// of the search tree.

import (
	"math/bits"

	"repro/internal/pattern"
)

// MatchingOrder is a permutation of pattern vertices: order[i] is the pattern
// vertex matched at search-tree level i.
type MatchingOrder []int

// connectedAncestorCounts returns, for each level i, the number of earlier
// levels adjacent to order[i] in p.
func connectedAncestorCounts(p *pattern.Pattern, order MatchingOrder) []int {
	k := p.Size()
	counts := make([]int, k)
	for i := 1; i < k; i++ {
		c := 0
		for j := 0; j < i; j++ {
			if p.HasEdge(order[i], order[j]) {
				c++
			}
		}
		counts[i] = c
	}
	return counts
}

// isConnectedOrder reports whether every vertex after the first has at least
// one connected ancestor — a requirement for vertex-extension search.
func isConnectedOrder(p *pattern.Pattern, order MatchingOrder) bool {
	seen := uint32(1) << uint(order[0])
	for i := 1; i < len(order); i++ {
		if p.AdjMask(order[i])&seen == 0 {
			return false
		}
		seen |= 1 << uint(order[i])
	}
	return true
}

// EnumerateMatchingOrders returns all connected matching orders of p.
// Pattern sizes are tiny, so exhaustive enumeration is the paper's approach
// ("the pattern analyzer first enumerates all the possible matching orders").
func EnumerateMatchingOrders(p *pattern.Pattern) []MatchingOrder {
	k := p.Size()
	var out []MatchingOrder
	order := make([]int, 0, k)
	used := uint32(0)
	var rec func()
	rec = func() {
		if len(order) == k {
			cp := make(MatchingOrder, k)
			copy(cp, order)
			out = append(out, cp)
			return
		}
		for v := 0; v < k; v++ {
			if used&(1<<uint(v)) != 0 {
				continue
			}
			if len(order) > 0 && p.AdjMask(v)&used == 0 {
				continue // must extend connectedly
			}
			used |= 1 << uint(v)
			order = append(order, v)
			rec()
			order = order[:len(order)-1]
			used &^= 1 << uint(v)
		}
	}
	rec()
	return out
}

// scoreBetter reports whether order a is strictly preferable to b for p.
//
// Primary rule: lexicographically larger connected-ancestor-count vector —
// more constraints earlier means candidates are intersections of more
// adjacency lists sooner, shrinking the tree (the triangle-before-wedge rule
// for the diamond in Fig 5).
//
// First tie-break: prefer connecting each level to the *earliest* possible
// ancestors (lexicographically smaller connected-ancestor-set sequence).
// Earlier ancestors are fixed higher in the search tree, so their memoized
// state — c-map insertions, cached edgelists — amortizes over far more
// descendants. This reproduces the paper's 4-cycle plan (Listing 1), where
// both v1 and v2 extend from v0 and the deep intersection queries v1,
// inserted once per level-1 extension (read ratios of 93–98%, §VII-C).
//
// Remaining ties break on higher vertex degrees, then on the smaller
// permutation for determinism.
func scoreBetter(p *pattern.Pattern, a, b MatchingOrder) bool {
	ca, cb := connectedAncestorCounts(p, a), connectedAncestorCounts(p, b)
	for i := range ca {
		if ca[i] != cb[i] {
			return ca[i] > cb[i]
		}
	}
	if c := compareCASets(p, a, b); c != 0 {
		return c < 0
	}
	for i := range a {
		da, db := p.Degree(a[i]), p.Degree(b[i])
		if da != db {
			return da > db
		}
	}
	for i := range a {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}

// compareCASets compares the per-level connected-ancestor sets of two
// matching orders lexicographically (level-major, then element-wise over the
// sorted sets). Both orders must have equal CA counts at every level.
func compareCASets(p *pattern.Pattern, a, b MatchingOrder) int {
	for i := 1; i < len(a); i++ {
		sa := caSet(p, a, i)
		sb := caSet(p, b, i)
		for j := 0; j < len(sa) && j < len(sb); j++ {
			if sa[j] != sb[j] {
				if sa[j] < sb[j] {
					return -1
				}
				return 1
			}
		}
	}
	return 0
}

// caSet returns the sorted level indices of order[i]'s connected ancestors.
func caSet(p *pattern.Pattern, order MatchingOrder, i int) []int {
	var out []int
	for j := 0; j < i; j++ {
		if p.HasEdge(order[i], order[j]) {
			out = append(out, j)
		}
	}
	return out
}

// BestMatchingOrder picks the preferred matching order for p.
func BestMatchingOrder(p *pattern.Pattern) MatchingOrder {
	orders := EnumerateMatchingOrders(p)
	best := orders[0]
	for _, o := range orders[1:] {
		if scoreBetter(p, o, best) {
			best = o
		}
	}
	return best
}

// relabelByOrder returns p with vertices renamed so that pattern vertex
// order[i] becomes i; afterwards level i of the plan corresponds directly to
// pattern vertex i, matching the u_i notation of the paper.
func relabelByOrder(p *pattern.Pattern, order MatchingOrder) *pattern.Pattern {
	perm := make([]int, p.Size())
	for lvl, v := range order {
		perm[v] = lvl
	}
	return p.Relabel(perm).WithName(p.Name())
}

// extenderFor picks the adjacency list that supplies candidates at level i of
// the relabeled pattern q: the most recently matched connected ancestor,
// whose frontier is most constrained (matches Listing 1, where v3 extends
// from v2).
func extenderFor(q *pattern.Pattern, level int) int {
	mask := q.AdjMask(level) & ((1 << uint(level)) - 1)
	if mask == 0 {
		return NoLevel
	}
	return 31 - bits.LeadingZeros32(mask)
}
