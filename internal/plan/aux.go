package plan

// Auxiliary-graph directive computation (DESIGN.md decision 14). GraphMini
// and DwarvesGraph (PAPERS.md) observe that deep DFS subtrees repeat the same
// shallow-source intersections once per intermediate embedding: for an op at
// level d extending from adj(emb[t]) and intersecting adj(emb[j]) for some j
// fixed well above d, the result depends only on (emb[j..], emb[t]) — not on
// the levels iterated in between — so materializing it once per distinct
// emb[t] and reusing it across the subtree removes a multiplicative factor of
// work. Frontier memoization (§V-C, assignFrontierBases) already covers the
// case where the whole candidate list of an ancestor level is the starting
// set; auxiliary graphs generalize it to per-key pruned adjacency rows when
// no ancestor frontier qualifies.
//
// The pass runs on the finalized (merged, frontier-annotated) tree and emits,
// per qualifying consumer op, a directive triple:
//
//   - an AuxSpec (activation level k, universe ancestor u, folded source
//     levels J/D, optional row bound) appended to Plan.AuxSpecs,
//   - BuildAux on the level-k ancestor node (activate there),
//   - AuxBase + residual AuxIntersect/AuxDifference on the consumer.
//
// Directives are hints: engines that ignore them (the simulator, aux-off
// runs) mine identical counts, and the plan itself is byte-identical either
// way — the goldens lock the directives alongside the other hints.

import "fmt"

// auxSpecFor derives the auxiliary-graph spec for one op on one root path,
// or reports that none qualifies. Qualification mirrors the frontier-base
// rules in spirit but keys rows per extender value instead of per ancestor
// frontier:
//
//   - the op extends from a level t ≥ 1 and has no frontier base (frontier
//     reuse already hoists the whole chain when it applies);
//   - at least one connected/disconnected source j sits at or above the
//     activation cut k = max(u, J ∪ D), with k ≤ Level-2 so a full level of
//     the subtree is hoisted over;
//   - the reuse gap — intermediate levels strictly between k and Level other
//     than t itself — is nonzero. Without it every row would be looked up at
//     most once per activation (cliques, 4-cycles), and the aux graph would
//     be pure copy overhead.
//
// Universe soundness: candidates at level t are always a subset of
// adj(emb[u]) for u = extender(t) — a frontier base at t only intersects
// further sources on top, and hub slicing restricts to a contiguous range —
// so adj(emb[u]) is a valid key universe with emb[u] fixed at k ≥ u.
func auxSpecFor(op *VertexOp, path []*Node) (AuxSpec, bool) {
	if op.Level < 2 || op.FrontierBase != NoLevel || op.Extender < 1 {
		return AuxSpec{}, false
	}
	t := op.Extender
	u := path[t].Op.Extender
	kmax := op.Level - 2
	var J, D []int
	for _, j := range op.Connected {
		if j <= kmax {
			J = append(J, j)
		}
	}
	for _, j := range op.Disconnected {
		if j <= kmax {
			D = append(D, j)
		}
	}
	if len(J)+len(D) == 0 {
		return AuxSpec{}, false
	}
	k := u
	for _, set := range [][]int{J, D} {
		for _, j := range set {
			if j > k {
				k = j
			}
		}
	}
	if k > kmax {
		return AuxSpec{}, false
	}
	gap := 0
	for l := k + 1; l < op.Level; l++ {
		if l != t {
			gap++
		}
	}
	if gap < 1 {
		return AuxSpec{}, false
	}
	return AuxSpec{
		Level:      k,
		Universe:   u,
		Intersect:  J,
		Difference: D,
		RowBound:   NoLevel,
		Gap:        gap,
	}, true
}

// validAuxRowBound returns an embedding index b ≤ k whose value provably
// dominates the consumer's symmetry bound under every leaf pattern below the
// consumer (so rows truncated at emb[b] lose nothing any consumer keeps), or
// NoLevel. Mirrors validCMapBound, intersected across the consumer's leaves.
func validAuxRowBound(k int, queryBounds []int, leafPatterns []int, lesses [][][]bool) int {
	var valid []int
	for b := 0; b <= k; b++ {
		ok := true
		for _, pi := range leafPatterns {
			if !boundImpliedBy(b, queryBounds, lesses[pi]) {
				ok = false
				break
			}
		}
		if ok {
			valid = append(valid, b)
		}
	}
	if len(valid) == 0 {
		return NoLevel
	}
	best := valid[0]
	for _, b := range valid[1:] {
		if lesses[leafPatterns[0]][b][best] { // provably smaller → tighter rows
			best = b
		}
	}
	return best
}

// assignAuxDirectives is the whole-tree pass: it resets every aux field,
// derives specs per consumer, dedupes identical specs plan-wide, and attaches
// build directives to the activation-level ancestors. Deterministic: tree
// walk order fixes spec numbering.
func assignAuxDirectives(pl *Plan, lesses [][][]bool) {
	pl.AuxSpecs = nil
	var reset func(n *Node)
	reset = func(n *Node) {
		n.Op.AuxBase = NoLevel
		n.Op.BuildAux = nil
		n.Op.AuxIntersect = nil
		n.Op.AuxDifference = nil
		for _, c := range n.Children {
			reset(c)
		}
	}
	reset(pl.Root)

	// leavesBelow[n]: pattern indices completed in n's subtree (row-bound
	// validity must hold under each one's symmetry order).
	leavesBelow := map[*Node][]int{}
	var collect func(n *Node) []int
	collect = func(n *Node) []int {
		var out []int
		if n.IsLeaf() {
			out = []int{n.PatternIdx}
		}
		for _, c := range n.Children {
			out = append(out, collect(c)...)
		}
		leavesBelow[n] = out
		return out
	}
	collect(pl.Root)

	specID := map[string]int{}
	var walk func(n *Node, path []*Node)
	walk = func(n *Node, path []*Node) {
		path = append(path, n)
		op := &n.Op
		if spec, ok := auxSpecFor(op, path); ok {
			spec.RowBound = validAuxRowBound(spec.Level, op.UpperBounds, leavesBelow[n], lesses)
			key := fmt.Sprint(spec.Level, spec.Universe, spec.Intersect, spec.Difference, spec.RowBound)
			id, seen := specID[key]
			if !seen {
				id = len(pl.AuxSpecs)
				specID[key] = id
				pl.AuxSpecs = append(pl.AuxSpecs, spec)
			} else if g := spec.Gap; g > pl.AuxSpecs[id].Gap {
				pl.AuxSpecs[id].Gap = g
			}
			pl.AuxSpecs[id].Uses++
			// Activate on this path's ancestor at the spec level (a deduped
			// spec may be consumed on several branches with distinct
			// activation nodes).
			build := &path[spec.Level].Op
			if !containsInt(build.BuildAux, id) {
				build.BuildAux = append(build.BuildAux, id)
			}
			op.AuxBase = id
			op.AuxIntersect = residualLevels(op.Connected, spec.Intersect)
			op.AuxDifference = residualLevels(op.Disconnected, spec.Difference)
		}
		for _, c := range n.Children {
			walk(c, path)
		}
	}
	walk(pl.Root, nil)
}

// residualLevels returns the members of all not folded into the spec (the
// sources the consumer still applies per lookup).
func residualLevels(all, folded []int) []int {
	var out []int
	for _, j := range all {
		if !containsInt(folded, j) {
			out = append(out, j)
		}
	}
	return out
}
