// Package plan implements the FlexMiner compiler (§V of the paper): it turns
// a pattern (or set of patterns) into a pattern-specific execution plan — the
// intermediate representation (IR) that is "downloaded" into the accelerator
// and that the CPU engines interpret.
//
// A plan captures, per search-tree level,
//
//   - the matching order (which pattern vertex is matched at which depth and
//     from whose adjacency list candidates are drawn),
//   - the symmetry order (vertex-ID bounds that break automorphisms, §II-B),
//   - connectivity constraints (the pruneBy connected-ancestor set,
//     Listing 1), and
//   - storage-management hints: which levels insert their neighbor lists into
//     the c-map and under which ID bound (§VI-B), and which candidate
//     frontiers are memoized and reused (§V-C).
//
// Multi-pattern problems compile to a dependency tree whose common prefix is
// merged (Listing 2); single patterns are a degenerate chain.
package plan

import (
	"fmt"
	"strings"

	"repro/internal/pattern"
)

// NoLevel marks an absent level reference in VertexOp fields.
const NoLevel = -1

// VertexOp describes how the vertex at one search-tree level is extended and
// pruned. Level indices refer to positions in the current embedding (the
// ancestor stack): level 0 is the task vertex v0.
type VertexOp struct {
	// Level is this op's depth in the search tree (0-based).
	Level int

	// Extender is the embedding index whose adjacency list supplies the
	// candidates (the "v_i ∈ v_e.N" part of the IR). NoLevel at level 0,
	// where candidates are all of V.
	Extender int

	// Connected lists embedding indices, other than Extender, that the
	// candidate must be adjacent to (the pruneBy connected-ancestor set).
	Connected []int

	// Disconnected lists embedding indices the candidate must NOT be
	// adjacent to. Empty for edge-induced plans; vertex-induced plans
	// (k-motif counting) list every non-adjacent ancestor here.
	Disconnected []int

	// UpperBounds lists embedding indices b with the symmetry-order
	// constraint candidate < emb[b]. The engine applies the minimum.
	UpperBounds []int

	// NotEqual lists embedding indices the candidate must be explicitly
	// checked against for distinctness; indices whose inequality is already
	// implied by adjacency or bounds are omitted by the compiler.
	NotEqual []int

	// FrontierBase, if not NoLevel, names an earlier level whose memoized
	// candidate frontier is a valid starting set for this level: this op's
	// candidates equal that frontier intersected with the adjacency of the
	// IntersectWith levels (minus DifferenceWith), under this op's bounds.
	FrontierBase int

	// IntersectWith / DifferenceWith are the residual source levels to
	// apply on top of FrontierBase. When FrontierBase is NoLevel they are
	// derived from Extender/Connected/Disconnected instead and left empty.
	IntersectWith  []int
	DifferenceWith []int

	// MemoizeFrontier marks that this level's qualified candidate list will
	// be reused by a deeper level and should be kept in the PE-local cache
	// (frontier-list table, §IV-A).
	MemoizeFrontier bool

	// InsertCMap marks that, once this level's vertex is fixed, its
	// neighbor list should be inserted into the c-map because a deeper
	// level checks connectivity against it (§VI-B).
	InsertCMap bool

	// CMapBound, if not NoLevel, is an embedding index b such that only
	// neighbors with ID < emb[b] need to be inserted into the c-map — the
	// compiler-derived footprint reduction of §VI-B.
	CMapBound int

	// CMapQuery lists the embedding indices whose connectivity this op
	// checks via the c-map (Connected ∪ Disconnected minus the extender).
	CMapQuery []int

	// BuildAux lists Plan.AuxSpecs indices activated once this level's
	// vertex is fixed: the engine lazily materializes pruned adjacency rows
	// for the spec's universe and reuses them across the whole subtree
	// (auxiliary-graph pruning, the GraphMini-style generalization of
	// frontier memoization).
	BuildAux []int

	// AuxBase, if not NoLevel, is the Plan.AuxSpecs index whose
	// materialized row for emb[Extender] replaces the extender's full
	// adjacency list as this op's starting candidate set. AuxIntersect /
	// AuxDifference are the residual source levels still applied on top
	// (Connected / Disconnected minus the levels folded into the rows).
	AuxBase       int
	AuxIntersect  []int
	AuxDifference []int
}

// clone returns a deep copy of the op.
func (op VertexOp) clone() VertexOp {
	cp := op
	cp.Connected = append([]int(nil), op.Connected...)
	cp.Disconnected = append([]int(nil), op.Disconnected...)
	cp.UpperBounds = append([]int(nil), op.UpperBounds...)
	cp.NotEqual = append([]int(nil), op.NotEqual...)
	cp.IntersectWith = append([]int(nil), op.IntersectWith...)
	cp.DifferenceWith = append([]int(nil), op.DifferenceWith...)
	cp.CMapQuery = append([]int(nil), op.CMapQuery...)
	cp.BuildAux = append([]int(nil), op.BuildAux...)
	cp.AuxIntersect = append([]int(nil), op.AuxIntersect...)
	cp.AuxDifference = append([]int(nil), op.AuxDifference...)
	return cp
}

// structurallyEqual reports whether two ops describe the same extension step
// (used when merging multi-pattern dependency chains into a tree).
func (a VertexOp) structurallyEqual(b VertexOp) bool {
	return a.Level == b.Level &&
		a.Extender == b.Extender &&
		intsEqual(a.Connected, b.Connected) &&
		intsEqual(a.Disconnected, b.Disconnected) &&
		intsEqual(a.UpperBounds, b.UpperBounds)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Node is one vertex-extension step in a (possibly multi-pattern) dependency
// tree. A chain of Nodes is the single-pattern case; branching encodes the
// divergence of multiple patterns after a merged common prefix (Listing 2).
type Node struct {
	Op       VertexOp
	Children []*Node

	// PatternIdx is the index into Plan.Patterns of the pattern completed
	// when this node's level is matched; NoLevel (-1) for interior nodes.
	PatternIdx int
}

// IsLeaf reports whether a completed match at this node should be counted.
//
//flexlint:noalloc
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// AuxSpec describes one auxiliary graph (§"Auxiliary-graph pruning",
// DESIGN.md decision 14): once the embedding is fixed through level Level,
// the candidate universe of some later extender level is a subset of
// adj(emb[Universe]), and every element x of that universe contributes rows
//
//	aux[x] = adj(x) ∩ adj(emb[j]) for j ∈ Intersect \ ∪ adj(emb[j]) for j ∈ Difference
//
// (bounded by emb[RowBound] when set). Consumer ops whose AuxBase names this
// spec substitute aux[emb[Extender]] for the full adjacency row, hoisting the
// loop-invariant part of their set-operation chain out of the subtree below
// Level. Rows are materialized lazily and reused across the Gap intermediate
// levels, so the same intersection is computed once instead of once per
// intermediate embedding.
type AuxSpec struct {
	// Level is the activation depth k: emb[0..k] fixed, rows valid until
	// the DFS backtracks above k.
	Level int

	// Universe is the embedding index u whose adjacency list bounds the
	// consumer's candidate universe: every looked-up key is in adj(emb[u]).
	Universe int

	// Intersect / Difference are the embedding indices (all ≤ Level) whose
	// adjacency is folded into each row.
	Intersect  []int
	Difference []int

	// RowBound, if not NoLevel, is an embedding index b ≤ Level whose value
	// provably dominates every consumer's symmetry bound, so rows only keep
	// elements < emb[b].
	RowBound int

	// Uses counts the consumer ops referencing this spec; Gap is the
	// maximum number of intermediate levels between activation and a
	// consumer (both feed the runtime cost model, AuxAuto).
	Uses int
	Gap  int
}

// Plan is a compiled execution plan.
type Plan struct {
	// Patterns are the mined patterns; counters are reported in this order.
	Patterns []*pattern.Pattern

	// Root is the level-0 op (task vertex); the tree below it spells out
	// every deeper extension step.
	Root *Node

	// K is the maximum embedding size (pattern size).
	K int

	// Induced records vertex-induced matching semantics (k-motif counting);
	// false means edge-induced (TC, k-CL, SL).
	Induced bool

	// RequiresDAG marks plans compiled for a degree-oriented DAG input
	// (the k-clique orientation optimization of §V-C): the engine must be
	// given g.Orient() and no symmetry bounds are present.
	RequiresDAG bool

	// CountDivisor holds, per pattern, the factor raw match counts must be
	// divided by. It is 1 with symmetry breaking; plans compiled with
	// Options.NoSymmetry (the AutoMine baseline mode) set it to |Aut(P)|,
	// since every copy is then found once per automorphism.
	CountDivisor []int64

	// AuxSpecs are the auxiliary graphs the compiler proved profitable to
	// offer; ops reference them by index via BuildAux/AuxBase. Engines may
	// ignore them entirely (counts are invariant under the aux mode).
	AuxSpecs []AuxSpec

	// less[a][b] records that emb[a] < emb[b] is provable from the symmetry
	// order (transitively closed); used to justify hint validity.
	less [][]bool
}

// Less reports whether the symmetry order proves emb[a] < emb[b].
func (p *Plan) Less(a, b int) bool { return p.less[a][b] }

// SinglePattern reports whether the plan mines exactly one pattern.
func (p *Plan) SinglePattern() bool { return len(p.Patterns) == 1 }

// Chain returns the ops of a single-pattern plan as a flat slice, or nil if
// the plan branches.
func (p *Plan) Chain() []VertexOp {
	var ops []VertexOp
	for n := p.Root; n != nil; {
		ops = append(ops, n.Op)
		switch len(n.Children) {
		case 0:
			n = nil
		case 1:
			n = n.Children[0]
		default:
			return nil
		}
	}
	return ops
}

// Validate checks structural invariants of the plan; engines call it once
// before mining.
func (p *Plan) Validate() error {
	if p.Root == nil {
		return fmt.Errorf("plan: nil root")
	}
	if len(p.Patterns) == 0 {
		return fmt.Errorf("plan: no patterns")
	}
	for i, s := range p.AuxSpecs {
		if s.Level < 0 {
			return fmt.Errorf("plan: aux spec %d activates at negative level %d", i, s.Level)
		}
		if s.Universe < 0 || s.Universe > s.Level {
			return fmt.Errorf("plan: aux spec %d universe %d outside [0, %d]", i, s.Universe, s.Level)
		}
		if len(s.Intersect)+len(s.Difference) == 0 {
			return fmt.Errorf("plan: aux spec %d folds no sources (rows would equal plain adjacency)", i)
		}
		for _, set := range [][]int{s.Intersect, s.Difference} {
			for _, j := range set {
				if j < 0 || j > s.Level {
					return fmt.Errorf("plan: aux spec %d folds level %d outside [0, %d]", i, j, s.Level)
				}
			}
		}
		if s.RowBound != NoLevel && (s.RowBound < 0 || s.RowBound > s.Level) {
			return fmt.Errorf("plan: aux spec %d row bound %d outside [0, %d]", i, s.RowBound, s.Level)
		}
	}
	seen := make([]bool, len(p.Patterns))
	var walk func(n *Node, depth int) error
	walk = func(n *Node, depth int) error {
		op := n.Op
		if op.Level != depth {
			return fmt.Errorf("plan: node at depth %d has level %d", depth, op.Level)
		}
		if depth == 0 {
			if op.Extender != NoLevel {
				return fmt.Errorf("plan: level-0 op must have no extender")
			}
		} else if op.Extender < 0 || op.Extender >= depth {
			return fmt.Errorf("plan: level %d extender %d out of range", depth, op.Extender)
		}
		for _, set := range [][]int{op.Connected, op.Disconnected, op.UpperBounds, op.NotEqual, op.IntersectWith, op.DifferenceWith, op.CMapQuery, op.AuxIntersect, op.AuxDifference} {
			for _, j := range set {
				if j < 0 || j >= depth {
					return fmt.Errorf("plan: level %d references out-of-range level %d", depth, j)
				}
			}
		}
		if op.FrontierBase != NoLevel && (op.FrontierBase < 1 || op.FrontierBase >= depth) {
			return fmt.Errorf("plan: level %d frontier base %d out of range", depth, op.FrontierBase)
		}
		// Aux fields are only meaningful on compiled plans that carry specs;
		// hand-built plans (zero-valued aux fields, no specs) skip this.
		if len(p.AuxSpecs) > 0 {
			for _, s := range op.BuildAux {
				if s < 0 || s >= len(p.AuxSpecs) {
					return fmt.Errorf("plan: level %d builds out-of-range aux spec %d", depth, s)
				}
				if p.AuxSpecs[s].Level != depth {
					return fmt.Errorf("plan: level %d builds aux spec %d declared for level %d", depth, s, p.AuxSpecs[s].Level)
				}
			}
			if op.AuxBase != NoLevel {
				if op.AuxBase < 0 || op.AuxBase >= len(p.AuxSpecs) {
					return fmt.Errorf("plan: level %d aux base %d out of range", depth, op.AuxBase)
				}
				spec := p.AuxSpecs[op.AuxBase]
				if spec.Level > depth-2 {
					return fmt.Errorf("plan: level %d aux base activates too deep (level %d)", depth, spec.Level)
				}
				if op.Extender == NoLevel {
					return fmt.Errorf("plan: level %d aux base without an extender", depth)
				}
			}
		}
		if n.IsLeaf() {
			if depth != p.K-1 {
				return fmt.Errorf("plan: leaf at depth %d, want %d", depth, p.K-1)
			}
			if n.PatternIdx < 0 || n.PatternIdx >= len(p.Patterns) {
				return fmt.Errorf("plan: leaf pattern index %d out of range", n.PatternIdx)
			}
			if seen[n.PatternIdx] {
				return fmt.Errorf("plan: pattern %d has multiple leaves", n.PatternIdx)
			}
			seen[n.PatternIdx] = true
			return nil
		}
		for _, c := range n.Children {
			if err := walk(c, depth+1); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(p.Root, 0); err != nil {
		return err
	}
	for i, s := range seen {
		if !s {
			return fmt.Errorf("plan: pattern %d (%s) has no leaf", i, p.Patterns[i].Name())
		}
	}
	return nil
}

// String renders the plan in the paper's Listing 1/2 IR style: a vertex
// section of pruneBy primitives and an embedding section of dependency links.
func (p *Plan) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "plan for %s", p.Patterns[0].Name())
	for _, q := range p.Patterns[1:] {
		fmt.Fprintf(&sb, ", %s", q.Name())
	}
	if p.Induced {
		sb.WriteString(" (vertex-induced)")
	}
	if p.RequiresDAG {
		sb.WriteString(" (oriented DAG)")
	}
	sb.WriteString("\nvertex:\n")
	var ids []string
	var walkV func(n *Node, label string)
	walkV = func(n *Node, label string) {
		op := n.Op
		// The op's own label must be addressable (a c-map bound may refer
		// to the op's own level, e.g. "insert only neighbors < v0" at v0).
		ids = append(ids, label)
		src := "V"
		if op.Extender != NoLevel {
			src = fmt.Sprintf("v%s.N", ids[op.Extender])
		}
		bound := "inf"
		if len(op.UpperBounds) > 0 {
			parts := make([]string, len(op.UpperBounds))
			for i, b := range op.UpperBounds {
				parts[i] = fmt.Sprintf("v%s.id", ids[b])
			}
			bound = strings.Join(parts, ",")
		}
		conn := make([]string, len(op.Connected))
		for i, c := range op.Connected {
			conn[i] = "v" + ids[c]
		}
		line := fmt.Sprintf("  v%-3s in %-8s pruneBy(%s, {%s})", label, src, bound, strings.Join(conn, ","))
		if len(op.Disconnected) > 0 {
			dis := make([]string, len(op.Disconnected))
			for i, d := range op.Disconnected {
				dis[i] = "v" + ids[d]
			}
			line += fmt.Sprintf(" notAdj{%s}", strings.Join(dis, ","))
		}
		var hints []string
		if op.InsertCMap {
			h := "cmap-insert"
			if op.CMapBound != NoLevel {
				h += fmt.Sprintf("(<v%s)", ids[op.CMapBound])
			}
			hints = append(hints, h)
		}
		if op.MemoizeFrontier {
			hints = append(hints, "memoize")
		}
		if op.FrontierBase != NoLevel {
			hints = append(hints, fmt.Sprintf("reuse(v%s)", ids[op.FrontierBase]))
		}
		for _, s := range op.BuildAux {
			spec := p.AuxSpecs[s]
			parts := make([]string, 0, len(spec.Intersect)+len(spec.Difference))
			for _, j := range spec.Intersect {
				parts = append(parts, fmt.Sprintf("∩v%s.N", ids[j]))
			}
			for _, j := range spec.Difference {
				parts = append(parts, fmt.Sprintf("∖v%s.N", ids[j]))
			}
			h := fmt.Sprintf("aux-build#%d[x∈v%s.N: x.N%s]", s, ids[spec.Universe], strings.Join(parts, ""))
			if spec.RowBound != NoLevel {
				h += fmt.Sprintf("(<v%s)", ids[spec.RowBound])
			}
			hints = append(hints, h)
		}
		if op.AuxBase != NoLevel && len(p.AuxSpecs) > 0 {
			hints = append(hints, fmt.Sprintf("aux#%d", op.AuxBase))
		}
		if len(hints) > 0 {
			line += "  // " + strings.Join(hints, ", ")
		}
		sb.WriteString(line + "\n")
		for i, c := range n.Children {
			sub := label
			if len(n.Children) > 1 {
				sub = fmt.Sprintf("%s.%d", label, i+1)
			}
			_ = sub
			next := fmt.Sprint(op.Level + 1)
			if len(n.Children) > 1 {
				next = fmt.Sprintf("%d%c", op.Level+1, 'a'+i)
			}
			walkV(c, next)
		}
		ids = ids[:len(ids)-1]
	}
	walkV(p.Root, "0")
	sb.WriteString("embedding:\n")
	var walkE func(n *Node, prev, label string)
	walkE = func(n *Node, prev, label string) {
		if n.Op.Level == 0 {
			fmt.Fprintf(&sb, "  emb0 := v0\n")
		} else {
			fmt.Fprintf(&sb, "  emb%-3s := emb%s + v%s", label, prev, label)
			if n.IsLeaf() {
				fmt.Fprintf(&sb, "   // matches %s", p.Patterns[n.PatternIdx].Name())
			}
			sb.WriteString("\n")
		}
		for i, c := range n.Children {
			next := fmt.Sprint(n.Op.Level + 1)
			if len(n.Children) > 1 {
				next = fmt.Sprintf("%d%c", n.Op.Level+1, 'a'+i)
			}
			walkE(c, label, next)
		}
	}
	walkE(p.Root, "", "0")
	return sb.String()
}
