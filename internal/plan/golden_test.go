package plan

// Golden-plan lockdown: the compiled IR (matching order, symmetry bounds,
// connectivity constraints, c-map and frontier hints) for every connected
// 5-vertex pattern, plus the oriented 5-clique plan, is checked in under
// testdata/golden. A compiler change that alters any pruning decision shows
// up as a reviewable diff instead of a silent perf/correctness shift.
// Regenerate with:
//
//	go test ./internal/plan -run PlanGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/pattern"
)

var updateGolden = flag.Bool("update", false, "rewrite golden plan files")

func checkPlanGolden(t *testing.T, name string, pl *Plan) {
	t.Helper()
	got := []byte(pl.String())
	path := filepath.Join("testdata", "golden", name+".plan")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("compiled plan for %s drifted from golden:\n--- got ---\n%s\n--- want ---\n%s",
			name, got, want)
	}
}

func TestFiveVertexPlanGolden(t *testing.T) {
	motifs := pattern.Motifs(5)
	if len(motifs) != 21 {
		t.Fatalf("Motifs(5) = %d patterns, want 21 connected 5-vertex graphs", len(motifs))
	}
	for _, p := range motifs {
		p := p
		t.Run(p.Name(), func(t *testing.T) {
			pl, err := Compile(p, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if err := pl.Validate(); err != nil {
				t.Fatal(err)
			}
			checkPlanGolden(t, p.Name(), pl)
		})
	}
}

func TestCliqueDAGPlanGolden(t *testing.T) {
	pl, err := CompileCliqueDAG(5)
	if err != nil {
		t.Fatal(err)
	}
	checkPlanGolden(t, "5-clique-dag", pl)
}
