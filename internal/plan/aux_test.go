package plan

import (
	"reflect"
	"strings"
	"testing"

	"repro/internal/pattern"
)

// The house is the canonical auxiliary-graph pattern (GraphMini's running
// example): v4 ∈ v3.N ∩ v1.N with v2, v3 iterated in between, so the row
// v3.N ∩ v1.N can be hoisted to level 1 keyed by x ∈ v0.N.
func TestAuxDirectivesHouse(t *testing.T) {
	pl, err := Compile(pattern.House(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	wantSpecs := []AuxSpec{{
		Level: 1, Universe: 0, Intersect: []int{1}, Difference: nil,
		RowBound: NoLevel, Uses: 1, Gap: 1,
	}}
	if !reflect.DeepEqual(pl.AuxSpecs, wantSpecs) {
		t.Fatalf("house AuxSpecs = %+v, want %+v", pl.AuxSpecs, wantSpecs)
	}
	ops := pl.Chain()
	if ops == nil {
		t.Fatal("house plan is not a chain")
	}
	if !reflect.DeepEqual(ops[1].BuildAux, []int{0}) {
		t.Errorf("level-1 BuildAux = %v, want [0]", ops[1].BuildAux)
	}
	for lvl, op := range ops {
		wantBase := NoLevel
		if lvl == 4 {
			wantBase = 0
		}
		if op.AuxBase != wantBase {
			t.Errorf("level-%d AuxBase = %d, want %d", lvl, op.AuxBase, wantBase)
		}
	}
	// The single consumer folds its only connected source into the spec, so
	// lookups are pure: no residual set operations per key.
	if len(ops[4].AuxIntersect) != 0 || len(ops[4].AuxDifference) != 0 {
		t.Errorf("house consumer residuals = ∩%v ∖%v, want none",
			ops[4].AuxIntersect, ops[4].AuxDifference)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("house plan with aux directives fails Validate: %v", err)
	}
	if s := pl.String(); !strings.Contains(s, "aux-build#0[x∈v0.N: x.N∩v1.N]") || !strings.Contains(s, "aux#0") {
		t.Errorf("house plan string missing aux hints:\n%s", s)
	}
}

// Cliques, cycles, and tails must compile with zero aux specs: either every
// deep op rides a frontier base, or the reuse gap is zero and a materialized
// row would be looked up at most once.
func TestAuxDirectivesAbsentWhereUseless(t *testing.T) {
	for _, p := range []*pattern.Pattern{
		pattern.Triangle(), pattern.FourCycle(), pattern.Diamond(),
		pattern.TailedTriangle(), pattern.KClique(4), pattern.KClique(5),
	} {
		pl, err := Compile(p, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if len(pl.AuxSpecs) != 0 {
			t.Errorf("%s: AuxSpecs = %+v, want none", p.Name(), pl.AuxSpecs)
		}
		pl.walkOps(func(op *VertexOp) {
			if op.AuxBase != NoLevel || op.BuildAux != nil {
				t.Errorf("%s: op at level %d carries aux directives %d/%v",
					p.Name(), op.Level, op.AuxBase, op.BuildAux)
			}
		})
	}
}

func TestAuxDirectivesCliqueDAGAbsent(t *testing.T) {
	pl, err := CompileCliqueDAG(5)
	if err != nil {
		t.Fatal(err)
	}
	if len(pl.AuxSpecs) != 0 {
		t.Errorf("5-clique DAG AuxSpecs = %+v, want none", pl.AuxSpecs)
	}
}

// CompileMotifs(5) merges all 21 connected 5-vertex motifs into one tree;
// the house-shaped branches must pick up specs there too, and every
// directive must survive Validate on the merged plan.
func TestAuxDirectivesMotifsValidate(t *testing.T) {
	pl, err := CompileMotifs(5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(); err != nil {
		t.Fatalf("5-motif plan fails Validate: %v", err)
	}
	total := 0
	for _, s := range pl.AuxSpecs {
		if s.Uses < 1 || s.Gap < 1 {
			t.Errorf("spec %+v has non-positive Uses or Gap", s)
		}
		total += s.Uses
	}
	if total == 0 {
		t.Error("5-motif plan has no aux consumers; expected house-shaped branches to qualify")
	}
	// Determinism: recompiling yields identical directives.
	pl2, err := CompileMotifs(5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pl.AuxSpecs, pl2.AuxSpecs) {
		t.Errorf("AuxSpecs drift across recompiles:\n%+v\n%+v", pl.AuxSpecs, pl2.AuxSpecs)
	}
}

// Validate must reject malformed aux directives.
func TestValidateRejectsBadAuxDirectives(t *testing.T) {
	fresh := func() *Plan {
		pl, err := Compile(pattern.House(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return pl
	}
	cases := []struct {
		name   string
		mutate func(pl *Plan)
	}{
		{"negative spec level", func(pl *Plan) { pl.AuxSpecs[0].Level = -1 }},
		{"universe out of range", func(pl *Plan) { pl.AuxSpecs[0].Universe = 9 }},
		{"empty fold sets", func(pl *Plan) {
			pl.AuxSpecs[0].Intersect = nil
			pl.AuxSpecs[0].Difference = nil
		}},
		{"fold level above activation", func(pl *Plan) { pl.AuxSpecs[0].Intersect = []int{3} }},
		{"row bound out of range", func(pl *Plan) { pl.AuxSpecs[0].RowBound = 7 }},
		{"build id out of range", func(pl *Plan) {
			pl.Root.Children[0].Op.BuildAux = []int{5}
		}},
		{"build at wrong level", func(pl *Plan) {
			pl.Root.Op.BuildAux = []int{0} // spec 0 activates at level 1
		}},
		{"consumer base out of range", func(pl *Plan) {
			chainNodeAt(pl, 4).Op.AuxBase = 3
		}},
		{"consumer too shallow", func(pl *Plan) {
			n := chainNodeAt(pl, 2)
			n.Op.AuxBase = 0 // spec level 1 needs consumers at level ≥ 3
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			pl := fresh()
			tc.mutate(pl)
			if err := pl.Validate(); err == nil {
				t.Errorf("Validate accepted plan with %s", tc.name)
			}
		})
	}
}

// chainNodeAt returns the sole node at the given level of a chain plan.
func chainNodeAt(pl *Plan, level int) *Node {
	n := pl.Root
	for n.Op.Level != level {
		n = n.Children[0]
	}
	return n
}

// walkOps applies f to every op in the tree (test helper).
func (p *Plan) walkOps(f func(op *VertexOp)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		f(&n.Op)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
}
