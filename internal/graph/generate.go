package graph

// Synthetic graph generators. The paper evaluates on six SNAP/real graphs we
// cannot ship; these generators produce deterministic stand-ins with matched
// shape (power-law degrees, density) per the substitution table in DESIGN.md.

import (
	"math"
)

// rng is a small deterministic SplitMix64 generator so graph construction is
// reproducible across platforms without pulling in math/rand's global state.
type rng struct{ state uint64 }

func newRNG(seed uint64) *rng { return &rng{state: seed} }

func (r *rng) next() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a uniform integer in [0, n).
func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// float64v returns a uniform float in [0, 1).
func (r *rng) float64v() float64 { return float64(r.next()>>11) / (1 << 53) }

// ErdosRenyi generates a G(n, m) random simple graph with exactly up to m
// distinct undirected edges (duplicates and self loops are merged away, so the
// realized edge count can be slightly below m on dense requests).
func ErdosRenyi(n, m int, seed uint64) *Graph {
	r := newRNG(seed)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := VID(r.intn(n))
		v := VID(r.intn(n))
		edges = append(edges, Edge{u, v})
	}
	return MustFromEdges(n, edges)
}

// ChungLu generates a power-law graph: rank i carries expected weight
// proportional to (i+1)^(-1/(beta-1)) for exponent beta (typically 2..3),
// and m edge samples are drawn with probability proportional to weight
// products, yielding the heavy-tailed degree distributions of the paper's
// datasets (rare high-degree hubs, many low-degree vertices).
//
// Ranks are mapped to vertex IDs through a deterministic random permutation:
// real graphs have no degree/ID correlation, and the ID-comparison symmetry
// orders (v1 < v0, …) would otherwise interact with degree systematically.
func ChungLu(n, m int, beta float64, seed uint64) *Graph {
	r := newRNG(seed)
	perm := make([]VID, n)
	for i := range perm {
		perm[i] = VID(i)
	}
	for i := n - 1; i > 0; i-- { // Fisher–Yates
		j := r.intn(i + 1)
		perm[i], perm[j] = perm[j], perm[i]
	}
	// Cumulative weight table for inverse-transform sampling.
	cum := make([]float64, n+1)
	exp := -1.0 / (beta - 1.0)
	for v := 0; v < n; v++ {
		cum[v+1] = cum[v] + math.Pow(float64(v+1), exp)
	}
	total := cum[n]
	sample := func() VID {
		x := r.float64v() * total
		lo, hi := 0, n
		for lo < hi {
			mid := (lo + hi) / 2
			if cum[mid+1] < x {
				lo = mid + 1
			} else {
				hi = mid
			}
		}
		return VID(lo)
	}
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		edges = append(edges, Edge{perm[sample()], perm[sample()]})
	}
	return MustFromEdges(n, edges)
}

// RMAT generates a recursive-matrix (Kronecker-like) graph with 2^scale
// vertices and m sampled edges using the standard (a,b,c,d) quadrant
// probabilities. R-MAT graphs exhibit power-law degrees and community
// structure, similar to the social-network datasets in Table I.
func RMAT(scale int, m int, a, b, c float64, seed uint64) *Graph {
	r := newRNG(seed)
	n := 1 << scale
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u, v := 0, 0
		for bit := 0; bit < scale; bit++ {
			x := r.float64v()
			switch {
			case x < a:
				// top-left: neither bit set
			case x < a+b:
				v |= 1 << bit
			case x < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		edges = append(edges, Edge{VID(u), VID(v)})
	}
	return MustFromEdges(n, edges)
}

// Ring generates a ring lattice where each vertex connects to its k nearest
// successors; useful as a regular, low-degree stress case.
func Ring(n, k int) *Graph {
	edges := make([]Edge, 0, n*k)
	for v := 0; v < n; v++ {
		for j := 1; j <= k; j++ {
			edges = append(edges, Edge{VID(v), VID((v + j) % n)})
		}
	}
	return MustFromEdges(n, edges)
}

// Clique generates the complete graph K_n; its pattern counts have closed
// forms, which the test suite exploits.
func Clique(n int) *Graph {
	edges := make([]Edge, 0, n*(n-1)/2)
	for u := 0; u < n; u++ {
		for v := u + 1; v < n; v++ {
			edges = append(edges, Edge{VID(u), VID(v)})
		}
	}
	return MustFromEdges(n, edges)
}

// Bipartite generates a random bipartite graph with sides of size l and r and
// m sampled cross edges. Bipartite graphs contain no odd cycles (no
// triangles), making 4-cycle workloads pure — the shape behind the fraudrings
// example.
func Bipartite(l, r, m int, seed uint64) *Graph {
	rg := newRNG(seed)
	edges := make([]Edge, 0, m)
	for i := 0; i < m; i++ {
		u := VID(rg.intn(l))
		v := VID(l + rg.intn(r))
		edges = append(edges, Edge{u, v})
	}
	return MustFromEdges(l+r, edges)
}

// Grid generates an x-by-y 2D mesh; planar, triangle-free, rich in 4-cycles.
func Grid(x, y int) *Graph {
	id := func(i, j int) VID { return VID(i*y + j) }
	var edges []Edge
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			if i+1 < x {
				edges = append(edges, Edge{id(i, j), id(i+1, j)})
			}
			if j+1 < y {
				edges = append(edges, Edge{id(i, j), id(i, j+1)})
			}
		}
	}
	return MustFromEdges(x*y, edges)
}
