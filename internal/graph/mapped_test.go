//go:build unix

package graph

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"testing"
)

// writeTempBin saves g to a temp .bin and returns the path.
func writeTempBin(t *testing.T, g *Graph) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "g.bin")
	if err := SaveBinary(path, g); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestOpenMappedMatchesHeap(t *testing.T) {
	for _, tc := range []struct {
		name string
		g    *Graph
	}{
		{"rmat", RMAT(10, 4000, 0.57, 0.19, 0.19, 7)},
		{"rmat-dag", RMAT(10, 4000, 0.57, 0.19, 0.19, 7).Orient()},
		{"empty", MustFromEdges(3, nil)},
	} {
		t.Run(tc.name, func(t *testing.T) {
			path := writeTempBin(t, tc.g)
			heap, err := LoadBinary(path)
			if err != nil {
				t.Fatal(err)
			}
			m, err := OpenMapped(path)
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()
			if m.NumVertices() != heap.NumVertices() || m.NumArcs() != heap.NumArcs() ||
				m.NumEdges() != heap.NumEdges() || m.IsDAG() != heap.IsDAG() ||
				m.MaxDegree() != heap.MaxDegree() || m.AvgDegree() != heap.AvgDegree() {
				t.Fatalf("mapped scalar stats differ from heap load")
			}
			for v := 0; v < heap.NumVertices(); v++ {
				if m.AdjStart(VID(v)) != heap.AdjStart(VID(v)) {
					t.Fatalf("AdjStart(%d) differs", v)
				}
				ma, ha := m.Adj(VID(v)), heap.Adj(VID(v))
				if len(ma) != len(ha) {
					t.Fatalf("Adj(%d) length differs", v)
				}
				if len(ma) > 0 && !reflect.DeepEqual(ma, ha) {
					t.Fatalf("Adj(%d) differs", v)
				}
			}
			if ms, hs := ComputeStats("x", m), ComputeStats("x", heap); ms != hs {
				t.Fatalf("ComputeStats differ: %+v vs %+v", ms, hs)
			}
		})
	}
}

func TestOpenMappedRejectsV1(t *testing.T) {
	// Big enough that the v1 encoding exceeds one header page, so the open
	// reaches the version check instead of the too-small fast path.
	g := RMAT(8, 1000, 0.45, 0.22, 0.22, 5)
	path := filepath.Join(t.TempDir(), "v1.bin")
	if err := os.WriteFile(path, encodeV1(g), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenMapped(path); err == nil || !strings.Contains(err.Error(), "cannot be mapped") {
		t.Fatalf("v1 open: got %v, want un-mappable version error", err)
	}
}

func TestOpenMappedRejectsCorrupt(t *testing.T) {
	g := RMAT(8, 600, 0.45, 0.22, 0.22, 3)
	path := writeTempBin(t, g)
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string]func([]byte) []byte{
		"truncated":   func(b []byte) []byte { return b[:len(b)-4] },
		"bad row":     func(b []byte) []byte { b[binHeaderSize+8] ^= 0xFF; return b },
		"bad col":     func(b []byte) []byte { b[len(b)-1] = 0xFF; return b },
		"bad maxdeg":  func(b []byte) []byte { b[32] ^= 0x01; return b },
		"shard slice": func(b []byte) []byte { b[8] |= binFlagShard; return b },
	}
	for name, mut := range cases {
		t.Run(name, func(t *testing.T) {
			p := filepath.Join(t.TempDir(), "bad.bin")
			if err := os.WriteFile(p, mut(append([]byte(nil), good...)), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, err := OpenMapped(p); err == nil {
				t.Fatalf("corrupt mapped file accepted")
			}
		})
	}
	// The shard flag is fine when explicitly allowed (shard files reuse the
	// same opener); only whole-graph opens reject it.
}

func TestOpenMappedCloseIdempotent(t *testing.T) {
	path := writeTempBin(t, MustFromEdges(4, []Edge{{0, 1}, {1, 2}}))
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	if m.Row != nil || m.Col != nil {
		t.Fatal("views not cleared on close")
	}
}

// TestOpenMappedConstantHeap asserts the acceptance criterion that a mapped
// graph costs O(1) heap for adjacency storage: opening a multi-megabyte file
// must grow the heap by a small constant, not by the array sizes.
func TestOpenMappedConstantHeap(t *testing.T) {
	g := RMAT(14, 250_000, 0.57, 0.19, 0.19, 11)
	path := writeTempBin(t, g)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if fi.Size() < 1<<20 {
		t.Fatalf("fixture too small (%d bytes) to make the bound meaningful", fi.Size())
	}
	g = nil
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	defer m.Close()
	// Generous constant bound: the store struct, the finalizer record, and
	// open-time bookkeeping — but nothing proportional to Row/Col.
	const bound = 256 << 10
	if grew := int64(after.HeapAlloc) - int64(before.HeapAlloc); grew > bound {
		t.Fatalf("OpenMapped grew heap by %d bytes for a %d-byte file; want O(1) (< %d)", grew, fi.Size(), bound)
	}
	if m.NumVertices() != 1<<14 {
		t.Fatalf("mapped graph unusable after MemStats check")
	}
}

// TestMappedAdjReadOnly proves the aliasing hazard is real and deterministic:
// writing into an Adj slice of a mapped graph dies with a memory fault. The
// write happens in a child process (the fault is unrecoverable in Go), and
// the parent asserts on the death certificate.
func TestMappedAdjReadOnly(t *testing.T) {
	if os.Getenv("GRAPH_MMAP_WRITE_CHILD") == "1" {
		m, err := OpenMapped(os.Getenv("GRAPH_MMAP_WRITE_PATH"))
		if err != nil {
			fmt.Println("child open failed:", err)
			os.Exit(3)
		}
		adj := m.Adj(0)
		adj[0] = 42 // write into read-only pages: SIGSEGV here
		fmt.Println("child survived the write")
		os.Exit(4)
	}
	path := writeTempBin(t, MustFromEdges(4, []Edge{{0, 1}, {0, 2}, {0, 3}}))
	cmd := exec.Command(os.Args[0], "-test.run", "^TestMappedAdjReadOnly$", "-test.v")
	cmd.Env = append(os.Environ(),
		"GRAPH_MMAP_WRITE_CHILD=1",
		"GRAPH_MMAP_WRITE_PATH="+path,
	)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("child wrote to mapped adjacency and lived:\n%s", out)
	}
	if strings.Contains(string(out), "child survived the write") {
		t.Fatalf("write to mapped adjacency did not fault:\n%s", out)
	}
	if !strings.Contains(string(out), "unexpected fault address") &&
		!strings.Contains(string(out), "SIGSEGV") && !strings.Contains(string(out), "SIGBUS") {
		t.Fatalf("child died, but not from a memory fault:\n%s", out)
	}
}
