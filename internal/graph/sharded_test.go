//go:build unix

package graph

import (
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// writeTempShards splits g into a fresh temp dir and returns it.
func writeTempShards(t *testing.T, g *Graph, shards int) string {
	t.Helper()
	dir := filepath.Join(t.TempDir(), "shards")
	if err := WriteSharded(dir, g, shards); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestShardedMatchesHeap(t *testing.T) {
	graphs := map[string]*Graph{
		"rmat":     RMAT(10, 4000, 0.57, 0.19, 0.19, 7),
		"rmat-dag": RMAT(10, 4000, 0.57, 0.19, 0.19, 7).Orient(),
		"er":       ErdosRenyi(300, 2200, 13),
	}
	for name, g := range graphs {
		for _, shards := range []int{1, 2, 4, 7} {
			t.Run(name, func(t *testing.T) {
				dir := writeTempShards(t, g, shards)
				s, err := OpenSharded(dir)
				if err != nil {
					t.Fatal(err)
				}
				defer s.Close()
				if s.NumShards() != shards {
					t.Fatalf("NumShards = %d, want %d", s.NumShards(), shards)
				}
				if s.NumVertices() != g.NumVertices() || s.NumArcs() != g.NumArcs() ||
					s.NumEdges() != g.NumEdges() || s.IsDAG() != g.IsDAG() ||
					s.MaxDegree() != g.MaxDegree() || s.AvgDegree() != g.AvgDegree() {
					t.Fatalf("sharded scalar stats differ from heap")
				}
				for v := 0; v < g.NumVertices(); v++ {
					if s.Degree(VID(v)) != g.Degree(VID(v)) {
						t.Fatalf("Degree(%d) differs", v)
					}
					if s.AdjStart(VID(v)) != g.AdjStart(VID(v)) {
						t.Fatalf("AdjStart(%d) differs", v)
					}
					sa, ga := s.Adj(VID(v)), g.Adj(VID(v))
					if len(sa) != len(ga) || (len(sa) > 0 && !reflect.DeepEqual(sa, ga)) {
						t.Fatalf("Adj(%d) differs", v)
					}
					want := s.ShardOf(VID(v))
					if VID(v) < s.cuts[want] || VID(v) >= s.cuts[want+1] {
						t.Fatalf("ShardOf(%d) = %d outside its range", v, want)
					}
				}
				if ss, gs := ComputeStats("x", s), ComputeStats("x", g); ss != gs {
					t.Fatalf("ComputeStats differ: %+v vs %+v", ss, gs)
				}
			})
		}
	}
}

// TestShardCutsBalanced checks the degree-aware sweep's guarantee: no shard
// exceeds its proportional arc share by more than one vertex's degree.
func TestShardCutsBalanced(t *testing.T) {
	g := RMAT(11, 16000, 0.57, 0.19, 0.19, 21)
	const shards = 4
	cuts := shardCuts(g, shards)
	slack := int64(g.MaxDegree() + shards)
	for s := 0; s < shards; s++ {
		arcs := g.Row[cuts[s+1]] - g.Row[cuts[s]]
		if arcs > g.NumArcs()/shards+slack {
			t.Fatalf("shard %d holds %d arcs, want ≤ %d+%d", s, arcs, g.NumArcs()/shards, slack)
		}
	}
}

func TestShardedHubIndexMatchesHeap(t *testing.T) {
	g := RMAT(10, 8000, 0.57, 0.19, 0.19, 9)
	dir := writeTempShards(t, g, 4)
	s, err := OpenSharded(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	hg, hs := g.EnsureHubIndex(0), s.EnsureHubIndex(0)
	if hg.Hubs() != hs.Hubs() {
		t.Fatalf("hub counts differ: %d vs %d", hg.Hubs(), hs.Hubs())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if !reflect.DeepEqual(hg.Bitmap(VID(v)), hs.Bitmap(VID(v))) {
			t.Fatalf("hub bitmap for %d differs across backends", v)
		}
	}
}

func TestWriteShardedRejectsBadCounts(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}})
	dir := t.TempDir()
	if err := WriteSharded(dir, g, 0); err == nil {
		t.Fatal("accepted 0 shards")
	}
	if err := WriteSharded(dir, g, 5); err == nil {
		t.Fatal("accepted more shards than vertices")
	}
}

func TestOpenShardedRejectsTamperedManifest(t *testing.T) {
	g := RMAT(8, 1200, 0.45, 0.22, 0.22, 3)
	mutations := map[string]func(*Manifest){
		"version":     func(m *Manifest) { m.Version = 9 },
		"vertices":    func(m *Manifest) { m.Vertices++ },
		"arcs":        func(m *Manifest) { m.Arcs++ },
		"max degree":  func(m *Manifest) { m.MaxDegree++ },
		"dag flip":    func(m *Manifest) { m.IsDAG = !m.IsDAG },
		"gap":         func(m *Manifest) { m.Shards[1].Lo++ },
		"shard arcs":  func(m *Manifest) { m.Shards[0].Arcs++ },
		"no shards":   func(m *Manifest) { m.Shards = nil },
		"wrong file":  func(m *Manifest) { m.Shards[0].File = m.Shards[1].File },
		"missing one": func(m *Manifest) { m.Shards[1].File = "nope.bin" },
	}
	for name, mut := range mutations {
		t.Run(name, func(t *testing.T) {
			dir := writeTempShards(t, g, 3)
			mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
			if err != nil {
				t.Fatal(err)
			}
			var man Manifest
			if err := json.Unmarshal(mb, &man); err != nil {
				t.Fatal(err)
			}
			mut(&man)
			out, err := json.Marshal(man)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(dir, ManifestName), out, 0o644); err != nil {
				t.Fatal(err)
			}
			if s, err := OpenSharded(dir); err == nil {
				s.Close()
				t.Fatal("tampered manifest accepted")
			}
		})
	}
}

func TestOpenShardedRejectsWholeGraphFile(t *testing.T) {
	g := RMAT(8, 1200, 0.45, 0.22, 0.22, 3)
	dir := writeTempShards(t, g, 2)
	// Overwrite shard 0 with a whole-graph (unflagged) file; the shard-flag
	// check must catch it.
	if err := SaveBinary(filepath.Join(dir, "shard-000.bin"), g); err != nil {
		t.Fatal(err)
	}
	if s, err := OpenSharded(dir); err == nil {
		s.Close()
		t.Fatal("whole-graph file accepted as shard")
	}
}

func TestIsShardedDir(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}})
	dir := writeTempShards(t, g, 2)
	if !IsShardedDir(dir) {
		t.Fatal("shard dir not recognized")
	}
	if IsShardedDir(filepath.Join(dir, "shard-000.bin")) {
		t.Fatal("file recognized as shard dir")
	}
	if IsShardedDir(t.TempDir()) {
		t.Fatal("empty dir recognized as shard dir")
	}
}
