//go:build unix

package graph

import "syscall"

// mmapFile maps size bytes of f read-only and shared, so pages are served
// from (and evicted back to) the page cache rather than the Go heap.
func mmapFile(f interface{ Fd() uintptr }, size int) ([]byte, error) {
	if size == 0 {
		return []byte{}, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping created by mmapFile.
func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
