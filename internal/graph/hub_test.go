package graph

import (
	"sync"
	"testing"
)

// TestHubIndexBitmapsMatchAdjacency: every indexed hub's bitmap must encode
// exactly its neighbor list; non-hubs must return nil.
func TestHubIndexBitmapsMatchAdjacency(t *testing.T) {
	g := ChungLu(800, 9600, 2.2, 11) // heavy-tailed: real hubs exist
	h := g.EnsureHubIndex(8)
	if h.Hubs() == 0 {
		t.Fatal("no hubs indexed on a power-law graph")
	}
	if h.Hubs() > 8 {
		t.Fatalf("indexed %d hubs, cap was 8", h.Hubs())
	}
	indexed := 0
	for v := 0; v < g.NumVertices(); v++ {
		bm := h.Bitmap(VID(v))
		if bm == nil {
			continue
		}
		indexed++
		if g.Degree(VID(v)) < hubMinDegree {
			t.Errorf("vertex %d (deg %d) below hub threshold but indexed", v, g.Degree(VID(v)))
		}
		// Bitmap content == adjacency, bit by bit.
		adj := g.Adj(VID(v))
		j := 0
		for w := 0; w < g.NumVertices(); w++ {
			want := j < len(adj) && adj[j] == VID(w)
			if want {
				j++
			}
			got := bm[w>>6]>>(w&63)&1 != 0
			if got != want {
				t.Fatalf("hub %d bit %d = %v, want %v", v, w, got, want)
			}
		}
	}
	if indexed != h.Hubs() {
		t.Errorf("slot table lists %d hubs, index reports %d", indexed, h.Hubs())
	}
}

// TestHubIndexPicksHighestDegree: with K=1 the single indexed vertex must be
// a maximum-degree vertex.
func TestHubIndexPicksHighestDegree(t *testing.T) {
	g := ChungLu(500, 6000, 2.3, 3)
	h := g.EnsureHubIndex(1)
	if h.Hubs() != 1 {
		t.Fatalf("hubs = %d, want 1", h.Hubs())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if h.Bitmap(VID(v)) != nil && g.Degree(VID(v)) != g.MaxDegree() {
			t.Errorf("indexed vertex %d has degree %d, max is %d", v, g.Degree(VID(v)), g.MaxDegree())
		}
	}
}

// TestHubIndexSparseGraph: a graph with no vertex above the threshold yields
// an empty (but usable) index.
func TestHubIndexSparseGraph(t *testing.T) {
	g := Ring(64, 2)
	h := g.EnsureHubIndex(16)
	if h.Hubs() != 0 {
		t.Errorf("ring graph indexed %d hubs", h.Hubs())
	}
	if h.Bitmap(0) != nil {
		t.Error("non-hub returned a bitmap")
	}
	var nilIdx *HubIndex
	if nilIdx.Bitmap(0) != nil || nilIdx.Hubs() != 0 {
		t.Error("nil HubIndex not inert")
	}
}

// TestEnsureHubIndexIdempotentConcurrent: concurrent Ensure calls must agree
// on one index (first build wins).
func TestEnsureHubIndexIdempotentConcurrent(t *testing.T) {
	g := ChungLu(600, 7200, 2.3, 5)
	const n = 16
	out := make([]*HubIndex, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = g.EnsureHubIndex(4 + i) // differing K: first wins
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if out[i] != out[0] {
			t.Fatal("EnsureHubIndex returned distinct indexes")
		}
	}
}
