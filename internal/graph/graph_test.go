package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFromEdgesDedupAndLoops(t *testing.T) {
	g, err := FromEdges(4, []Edge{{0, 1}, {1, 0}, {0, 1}, {2, 2}, {1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d, want 2 (dedup + self-loop drop)", g.NumEdges())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) || !g.HasEdge(1, 2) {
		t.Error("missing expected edges")
	}
	if g.HasEdge(2, 2) || g.HasEdge(0, 2) {
		t.Error("unexpected edges")
	}
}

func TestFromEdgesOutOfRange(t *testing.T) {
	if _, err := FromEdges(2, []Edge{{0, 5}}); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if _, err := FromEdges(-1, nil); err == nil {
		t.Error("negative n accepted")
	}
}

func TestDegreesAndStats(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}})
	if g.Degree(0) != 4 || g.MaxDegree() != 4 {
		t.Errorf("degree(0)=%d max=%d", g.Degree(0), g.MaxDegree())
	}
	s := ComputeStats("x", g)
	if s.Vertices != 5 || s.Edges != 5 || s.MaxDegree != 4 {
		t.Errorf("stats %+v", s)
	}
	if s.AvgDegree != 2 {
		t.Errorf("avg degree %v want 2", s.AvgDegree)
	}
}

// TestOrientInvariants: orientation halves arcs, produces a DAG under the
// (degree, id) rank, and preserves connectivity queries.
func TestOrientInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(30)
		m := r.Intn(3 * n)
		var edges []Edge
		for i := 0; i < m; i++ {
			edges = append(edges, Edge{VID(r.Intn(n)), VID(r.Intn(n))})
		}
		g := MustFromEdges(n, edges)
		dag := g.Orient()
		if !dag.IsDAG() {
			return false
		}
		if dag.NumArcs() != g.NumEdges() {
			return false
		}
		if err := dag.Validate(); err != nil {
			return false
		}
		rank := func(v VID) uint64 { return uint64(g.Degree(v))<<32 | uint64(v) }
		for v := 0; v < n; v++ {
			for _, w := range dag.Adj(VID(v)) {
				if rank(VID(v)) >= rank(w) {
					return false // arc against the orientation order
				}
				if !g.HasEdge(VID(v), w) {
					return false
				}
			}
		}
		// Every undirected edge appears exactly once in the DAG.
		seen := int64(0)
		for v := 0; v < n; v++ {
			seen += int64(dag.Degree(VID(v)))
		}
		return seen == g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrientIdempotent(t *testing.T) {
	g := Clique(5)
	dag := g.Orient()
	if dag.Orient() != dag {
		t.Error("Orient of a DAG should be identity")
	}
}

func TestGenerators(t *testing.T) {
	cases := map[string]*Graph{
		"er":        ErdosRenyi(50, 100, 1),
		"chunglu":   ChungLu(80, 200, 2.3, 2),
		"rmat":      RMAT(6, 150, 0.57, 0.19, 0.19, 3),
		"ring":      Ring(10, 2),
		"clique":    Clique(7),
		"bipartite": Bipartite(10, 15, 40, 4),
		"grid":      Grid(4, 6),
	}
	for name, g := range cases {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if g.NumVertices() == 0 {
			t.Errorf("%s: empty graph", name)
		}
	}
	if Clique(7).NumEdges() != 21 {
		t.Error("K7 edge count")
	}
	if Ring(10, 2).NumEdges() != 20 {
		t.Error("ring edge count")
	}
	if Grid(4, 6).NumEdges() != int64(3*6+4*5) {
		t.Error("grid edge count")
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := ChungLu(100, 300, 2.3, 42)
	b := ChungLu(100, 300, 2.3, 42)
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("nondeterministic generator")
	}
	for v := 0; v < a.NumVertices(); v++ {
		av, bv := a.Adj(VID(v)), b.Adj(VID(v))
		if len(av) != len(bv) {
			t.Fatalf("vertex %d: degree differs", v)
		}
		for i := range av {
			if av[i] != bv[i] {
				t.Fatalf("vertex %d: adjacency differs", v)
			}
		}
	}
}

func TestBipartiteHasNoOddCycles(t *testing.T) {
	g := Bipartite(20, 20, 100, 9)
	// 2-color check.
	color := make([]int, g.NumVertices())
	for i := range color {
		color[i] = -1
	}
	for s := 0; s < g.NumVertices(); s++ {
		if color[s] != -1 {
			continue
		}
		color[s] = 0
		queue := []VID{VID(s)}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for _, w := range g.Adj(v) {
				if color[w] == -1 {
					color[w] = 1 - color[v]
					queue = append(queue, w)
				} else if color[w] == color[v] {
					t.Fatal("odd cycle in bipartite graph")
				}
			}
		}
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	g := ChungLu(60, 150, 2.5, 5)
	var buf bytes.Buffer
	if err := WriteEdgeList(&buf, g); err != nil {
		t.Fatal(err)
	}
	g2, err := ReadEdgeList(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Vertex count can shrink if trailing vertices are isolated; compare
	// edges via stats and spot checks.
	if g2.NumEdges() != g.NumEdges() {
		t.Errorf("edges: %d vs %d", g2.NumEdges(), g.NumEdges())
	}
}

func TestEdgeListComments(t *testing.T) {
	in := "# comment\n% another\n0 1\n1 2\n\n2 0\n"
	g, err := ReadEdgeList(bytes.NewReader([]byte(in)))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumVertices() != 3 || g.NumEdges() != 3 {
		t.Errorf("got |V|=%d |E|=%d", g.NumVertices(), g.NumEdges())
	}
}

func TestEdgeListErrors(t *testing.T) {
	if _, err := ReadEdgeList(bytes.NewReader([]byte("0\n"))); err == nil {
		t.Error("short line accepted")
	}
	if _, err := ReadEdgeList(bytes.NewReader([]byte("a b\n"))); err == nil {
		t.Error("non-numeric accepted")
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, g := range []*Graph{
		ChungLu(100, 250, 2.3, 6),
		ChungLu(100, 250, 2.3, 6).Orient(),
		MustFromEdges(1, nil),
	} {
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatal(err)
		}
		g2, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if g2.NumVertices() != g.NumVertices() || g2.NumArcs() != g.NumArcs() || g2.IsDAG() != g.IsDAG() {
			t.Errorf("round trip mismatch: %d/%d arcs %d/%d dag %v/%v",
				g2.NumVertices(), g.NumVertices(), g2.NumArcs(), g.NumArcs(), g2.IsDAG(), g.IsDAG())
		}
		for v := 0; v < g.NumVertices(); v++ {
			a, b := g.Adj(VID(v)), g2.Adj(VID(v))
			if len(a) != len(b) {
				t.Fatalf("degree mismatch at %d", v)
			}
		}
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("not a graph file at all"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestConnectedSymmetricAndDAG(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}, {3, 0}})
	dag := g.Orient()
	for u := 0; u < 4; u++ {
		for v := 0; v < 4; v++ {
			if u == v {
				continue
			}
			if g.Connected(VID(u), VID(v)) != dag.Connected(VID(u), VID(v)) {
				t.Errorf("Connected(%d,%d) differs between symmetric and DAG", u, v)
			}
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g := MustFromEdges(3, []Edge{{0, 1}, {1, 2}})
	g.Col[0] = 99 // out of range
	if err := g.Validate(); err == nil {
		t.Error("corrupt graph validated")
	}
}
