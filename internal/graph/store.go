package graph

// The storage seam: Store abstracts the CSR substrate so mining engines and
// schedulers are independent of where adjacency bytes live — the in-memory
// *Graph, a zero-copy mmap view of a binary CSR file (Mapped), or a
// degree-partitioned set of shard files (Sharded). The interface is cut at
// Adj granularity: one sorted neighbor-list lookup is the only read the DFS
// hot path performs, so a backend only has to answer "where is v's sorted
// neighbor slice" and a handful of O(1) size queries. Anything finer (per
// element access) would put an interface call inside the merge loops;
// anything coarser (bulk iteration) would force backends to materialize.
//
// Paper-figure runners (bench.Table2/Fig7/BaselineSeconds) deliberately keep
// the concrete *Graph: the published numbers were measured against the heap
// substrate, and devirtualized access keeps those goldens byte-identical.

// Store is the read-only view of a CSR graph that the compiler, the CPU
// engine, and the task scheduler consume.
//
// The slice returned by Adj aliases backend storage and MUST NOT be written
// to: for mmap-backed stores it is a view of read-only pages and a write
// kills the process. The flexlint adjwrite analyzer enforces this at the
// source level.
type Store interface {
	// NumVertices returns |V|.
	NumVertices() int
	// NumEdges returns |E| for symmetric graphs, stored arcs for DAGs.
	NumEdges() int64
	// NumArcs returns the number of stored directed arcs.
	NumArcs() int64
	// Degree returns the stored out-degree of v.
	Degree(v VID) int
	// MaxDegree returns the maximum degree over all vertices.
	MaxDegree() int
	// AvgDegree returns the mean number of stored neighbors per vertex.
	AvgDegree() float64
	// Adj returns the sorted neighbor list of v. Read-only; see above.
	Adj(v VID) []VID
	// AdjStart returns the element offset of v's neighbor list within the
	// (virtual) global Col array; the simulator derives addresses from it.
	AdjStart(v VID) int64
	// IsDAG reports whether the graph was degree-oriented (each undirected
	// edge stored once, low rank → high rank).
	IsDAG() bool
}

// HubIndexer is implemented by stores that can lazily build and share a
// hub-adjacency bitmap index (see hub.go). All built-in stores implement it;
// the engine falls back to bitmap-free kernels when a store does not.
type HubIndexer interface {
	EnsureHubIndex(topK int) *HubIndex
}

// Compile-time checks that every built-in backend satisfies the seam.
var (
	_ Store      = (*Graph)(nil)
	_ HubIndexer = (*Graph)(nil)
)
