// Package graph provides the compressed-sparse-row (CSR) graph substrate used
// by every other FlexMiner component: the compiler, the CPU mining engines and
// the accelerator simulator.
//
// Graphs are simple, undirected and stored symmetrically unless they have been
// oriented into a DAG (see Orient). The neighbor list of each vertex is sorted
// by ascending vertex ID, which the merge-based set operations and the
// symmetry-order pruning both rely on.
package graph

import (
	"errors"
	"fmt"
	"sort"
)

// VID is a vertex identifier. The paper's hardware uses 32-bit keys in the
// c-map; we mirror that width.
type VID = uint32

// Graph is an immutable CSR adjacency structure.
//
// For vertex v, the neighbor list is Col[Row[v]:Row[v+1]], sorted ascending.
// A symmetric Graph stores each undirected edge {u,v} twice (u→v and v→u);
// an oriented Graph (IsDAG) stores it once, from the lower-ranked endpoint to
// the higher-ranked one.
type Graph struct {
	Row []int64 // len = NumVertices()+1
	Col []VID   // len = Row[NumVertices()]

	// DAG records that the graph was produced by Orient and each edge
	// appears exactly once; read it through the IsDAG method, which is the
	// Store-interface spelling.
	DAG bool

	maxDegree int

	// hubCache is the lazily built hub-adjacency bitmap index (see hub.go);
	// it lives on the graph so it follows it through dataset/DAG caches.
	hubCache
}

// IsDAG reports whether the graph was produced by Orient.
func (g *Graph) IsDAG() bool { return g.DAG }

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.Row) - 1 }

// NumEdges returns the number of undirected edges |E| for a symmetric graph,
// or the number of stored arcs for an oriented DAG.
func (g *Graph) NumEdges() int64 {
	if g.DAG {
		return int64(len(g.Col))
	}
	return int64(len(g.Col)) / 2
}

// NumArcs returns the number of stored directed arcs, i.e. len(Col).
func (g *Graph) NumArcs() int64 { return int64(len(g.Col)) }

// Degree returns the out-degree of v (the full degree for symmetric graphs).
func (g *Graph) Degree(v VID) int { return int(g.Row[v+1] - g.Row[v]) }

// MaxDegree returns the maximum degree over all vertices.
func (g *Graph) MaxDegree() int { return g.maxDegree }

// AvgDegree returns the mean number of stored neighbors per vertex.
func (g *Graph) AvgDegree() float64 {
	if g.NumVertices() == 0 {
		return 0
	}
	return float64(len(g.Col)) / float64(g.NumVertices())
}

// Adj returns the sorted neighbor list of v. The returned slice aliases the
// graph's storage and must not be modified.
//
//flexlint:noalloc
func (g *Graph) Adj(v VID) []VID { return g.Col[g.Row[v]:g.Row[v+1]] }

// AdjStart returns the byte-addressable element offset of v's neighbor list
// within Col. The simulator uses it to derive memory addresses.
func (g *Graph) AdjStart(v VID) int64 { return g.Row[v] }

// HasEdge reports whether the arc u→v is stored, using binary search over the
// sorted neighbor list of u.
func (g *Graph) HasEdge(u, v VID) bool {
	adj := g.Adj(u)
	i := sort.Search(len(adj), func(i int) bool { return adj[i] >= v })
	return i < len(adj) && adj[i] == v
}

// Connected reports whether u and v are adjacent in either direction. For a
// symmetric graph this equals HasEdge(u, v); for a DAG it checks both arcs.
func (g *Graph) Connected(u, v VID) bool {
	if g.Degree(u) <= g.Degree(v) {
		if g.HasEdge(u, v) {
			return true
		}
	} else if g.HasEdge(v, u) {
		return true
	}
	if g.DAG {
		if g.Degree(u) <= g.Degree(v) {
			return g.HasEdge(v, u)
		}
		return g.HasEdge(u, v)
	}
	return false
}

// Edge is an undirected edge used by builders and loaders.
type Edge struct{ U, V VID }

// FromEdges builds a simple symmetric CSR graph from an edge list.
//
// Self loops are dropped and duplicate edges are merged, matching the paper's
// input preparation ("symmetric, no self-loops, no duplicated edges"). n is
// the number of vertices; every endpoint must be < n.
func FromEdges(n int, edges []Edge) (*Graph, error) {
	if n < 0 {
		return nil, errors.New("graph: negative vertex count")
	}
	deg := make([]int64, n+1)
	for _, e := range edges {
		if int(e.U) >= n || int(e.V) >= n {
			return nil, fmt.Errorf("graph: edge (%d,%d) out of range for n=%d", e.U, e.V, n)
		}
		if e.U == e.V {
			continue // self loop
		}
		deg[e.U+1]++
		deg[e.V+1]++
	}
	row := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		row[i] = row[i-1] + deg[i]
	}
	col := make([]VID, row[n])
	next := make([]int64, n)
	copy(next, row[:n])
	for _, e := range edges {
		if e.U == e.V {
			continue
		}
		col[next[e.U]] = e.V
		next[e.U]++
		col[next[e.V]] = e.U
		next[e.V]++
	}
	g := &Graph{Row: row, Col: col}
	g.sortAndDedup()
	return g, nil
}

// MustFromEdges is FromEdges but panics on error; for tests and examples with
// known-good inputs.
func MustFromEdges(n int, edges []Edge) *Graph {
	g, err := FromEdges(n, edges)
	if err != nil {
		panic(err)
	}
	return g
}

// sortAndDedup sorts each adjacency list and removes duplicate neighbors,
// compacting storage in place.
func (g *Graph) sortAndDedup() {
	n := g.NumVertices()
	newRow := make([]int64, n+1)
	out := int64(0)
	for v := 0; v < n; v++ {
		adj := g.Col[g.Row[v]:g.Row[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
		start := out
		var last VID
		first := true
		for _, w := range adj {
			if !first && w == last {
				continue
			}
			g.Col[out] = w
			out++
			last, first = w, false
		}
		newRow[v] = start
	}
	newRow[n] = out
	// Shift row starts: newRow currently holds starts; rebuild prefix form.
	row := make([]int64, n+1)
	copy(row, newRow)
	g.Row = row
	g.Col = g.Col[:out]
	g.recomputeMaxDegree()
}

func (g *Graph) recomputeMaxDegree() {
	g.maxDegree = 0
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(VID(v)); d > g.maxDegree {
			g.maxDegree = d
		}
	}
}

// Orient converts a symmetric graph into a DAG using the degree-ordering
// technique of §V-C: each undirected edge is kept only as an arc from the
// endpoint with smaller (degree, ID) to the larger. After orientation no
// symmetry-order checking is needed for k-clique mining.
func (g *Graph) Orient() *Graph {
	if g.DAG {
		return g
	}
	n := g.NumVertices()
	rank := func(v VID) uint64 {
		// degree-major, ID-minor rank; ties broken by vertex ID.
		return uint64(g.Degree(v))<<32 | uint64(v)
	}
	deg := make([]int64, n+1)
	for v := 0; v < n; v++ {
		rv := rank(VID(v))
		for _, w := range g.Adj(VID(v)) {
			if rv < rank(w) {
				deg[v+1]++
			}
		}
	}
	row := make([]int64, n+1)
	for i := 1; i <= n; i++ {
		row[i] = row[i-1] + deg[i]
	}
	col := make([]VID, row[n])
	next := make([]int64, n)
	copy(next, row[:n])
	for v := 0; v < n; v++ {
		rv := rank(VID(v))
		for _, w := range g.Adj(VID(v)) {
			if rv < rank(w) {
				col[next[v]] = w
				next[v]++
			}
		}
	}
	out := &Graph{Row: row, Col: col, DAG: true}
	// Adjacency of the source graph was sorted; arcs to higher-ranked
	// vertices preserve ID order only within, so re-sort to be safe.
	for v := 0; v < n; v++ {
		adj := out.Col[out.Row[v]:out.Row[v+1]]
		sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] })
	}
	out.recomputeMaxDegree()
	return out
}

// Validate checks structural invariants: monotone Row, sorted unique
// neighbor lists, no self loops, in-range IDs, and (for symmetric graphs)
// that every arc has its reverse.
func (g *Graph) Validate() error {
	n := g.NumVertices()
	if len(g.Row) == 0 {
		return errors.New("graph: empty Row")
	}
	if g.Row[0] != 0 || g.Row[n] != int64(len(g.Col)) {
		return errors.New("graph: Row endpoints inconsistent with Col")
	}
	for v := 0; v < n; v++ {
		if g.Row[v] > g.Row[v+1] {
			return fmt.Errorf("graph: Row not monotone at %d", v)
		}
		adj := g.Adj(VID(v))
		for i, w := range adj {
			if int(w) >= n {
				return fmt.Errorf("graph: neighbor %d of %d out of range", w, v)
			}
			if w == VID(v) {
				return fmt.Errorf("graph: self loop at %d", v)
			}
			if i > 0 && adj[i-1] >= w {
				return fmt.Errorf("graph: adjacency of %d not sorted/unique", v)
			}
			if !g.DAG && !g.HasEdge(w, VID(v)) {
				return fmt.Errorf("graph: arc %d->%d missing reverse", v, w)
			}
		}
	}
	return nil
}

// Stats summarizes a graph for Table I style reporting.
type Stats struct {
	Name      string
	Vertices  int
	Edges     int64
	MaxDegree int
	AvgDegree float64
}

// ComputeStats returns the Table I statistics for g under the given name; it
// works for any storage backend.
func ComputeStats(name string, g Store) Stats {
	return Stats{
		Name:      name,
		Vertices:  g.NumVertices(),
		Edges:     g.NumEdges(),
		MaxDegree: g.MaxDegree(),
		AvgDegree: g.AvgDegree(),
	}
}

func (s Stats) String() string {
	return fmt.Sprintf("%-8s |V|=%-9d |E|=%-10d dmax=%-6d davg=%.1f",
		s.Name, s.Vertices, s.Edges, s.MaxDegree, s.AvgDegree)
}
