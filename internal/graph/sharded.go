package graph

// Sharded is the partitioned storage backend: the vertex space is split into
// contiguous ranges balanced by arc count (degree-aware, in the spirit of
// G²Miner's pattern-aware edge partitioning), each range's CSR slice lives in
// its own mmap'd file, and a manifest ties the directory together. Adj(v)
// routes to the owning shard in O(log shards); combined with shard-local task
// seeding in internal/sched, a DFS task's working set stays inside one
// shard's pages.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
)

// ManifestName is the file that marks a directory as a sharded graph.
const ManifestName = "manifest.json"

// Manifest describes a sharded graph directory.
type Manifest struct {
	Version   int           `json:"version"`
	Vertices  int           `json:"vertices"`
	Arcs      int64         `json:"arcs"`
	MaxDegree int           `json:"max_degree"`
	IsDAG     bool          `json:"is_dag"`
	Shards    []ShardExtent `json:"shards"`
}

// ShardExtent is one shard's slice of the vertex space: vertices [Lo, Hi)
// and the Arcs stored for them, in File (relative to the manifest directory).
type ShardExtent struct {
	File string `json:"file"`
	Lo   VID    `json:"lo"`
	Hi   VID    `json:"hi"`
	Arcs int64  `json:"arcs"`
}

// shardCuts partitions [0, n) into `shards` contiguous ranges with balanced
// arc counts: a greedy sweep cuts each range as soon as the running arc total
// reaches its proportional target. Contiguity keeps the global↔local vertex
// translation a subtraction and the owner lookup a binary search, which is
// why this is a sweep rather than unconstrained LPT bin-packing; with sorted
// CSR input the sweep is the optimal contiguous LPT relaxation anyway.
// Returns shards+1 boundaries: cut[s] .. cut[s+1] is shard s.
func shardCuts(g *Graph, shards int) []VID {
	n := g.NumVertices()
	total := g.NumArcs()
	cuts := make([]VID, shards+1)
	cuts[shards] = VID(n)
	v := 0
	for s := 1; s < shards; s++ {
		// Target for the first s shards, rounded so late shards aren't starved.
		target := total * int64(s) / int64(shards)
		for v < n && g.Row[v+1] < target {
			v++
		}
		// Leave room for the remaining shards-s cuts.
		if maxV := n - (shards - s); v > maxV {
			v = maxV
		}
		if v < int(cuts[s-1]) {
			v = int(cuts[s-1])
		}
		cuts[s] = VID(v)
	}
	return cuts
}

// WriteSharded splits g into `shards` degree-balanced contiguous shard files
// under dir (created if missing) plus a manifest.json. Each shard file is a
// binary CSR v2 slice: Row rebased to the shard's range, Col keeping global
// vertex IDs, and the shard flag set so it cannot be mistaken for a whole
// graph.
func WriteSharded(dir string, g *Graph, shards int) error {
	n := g.NumVertices()
	if shards < 1 {
		return fmt.Errorf("graph: shard count %d < 1", shards)
	}
	if shards > n {
		return fmt.Errorf("graph: shard count %d exceeds vertex count %d", shards, n)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cuts := shardCuts(g, shards)
	man := Manifest{
		Version:   1,
		Vertices:  n,
		Arcs:      g.NumArcs(),
		MaxDegree: g.MaxDegree(),
		IsDAG:     g.DAG,
	}
	for s := 0; s < shards; s++ {
		lo, hi := cuts[s], cuts[s+1]
		row := make([]int64, hi-lo+1)
		base := g.Row[lo]
		maxDeg := 0
		for i := range row {
			row[i] = g.Row[int(lo)+i] - base
			if i > 0 {
				if d := int(row[i] - row[i-1]); d > maxDeg {
					maxDeg = d
				}
			}
		}
		col := g.Col[base:g.Row[hi]]
		flags := uint32(binFlagShard)
		if g.DAG {
			flags |= binFlagDAG
		}
		hdr := binHeader{
			version:   binVersion,
			flags:     flags,
			n:         uint64(hi - lo),
			arcs:      uint64(len(col)),
			maxDegree: uint64(maxDeg),
		}
		name := fmt.Sprintf("shard-%03d.bin", s)
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := writeCSR(f, hdr, row, col); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		man.Shards = append(man.Shards, ShardExtent{File: name, Lo: lo, Hi: hi, Arcs: int64(len(col))})
	}
	mb, err := json.MarshalIndent(man, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, ManifestName), append(mb, '\n'), 0o644)
}

// Sharded is a read-only CSR graph assembled from mmap'd shard slices.
// Safe for concurrent readers; Close unmaps every shard.
type Sharded struct {
	dir    string
	man    Manifest
	cuts   []VID   // len shards+1; shard s owns [cuts[s], cuts[s+1])
	base   []int64 // global arc offset of each shard's first arc
	shards []*Mapped

	hubCache
}

var (
	_ Store      = (*Sharded)(nil)
	_ HubIndexer = (*Sharded)(nil)
)

// IsShardedDir reports whether path is a directory holding a shard manifest;
// loaders use it to route -graph arguments.
func IsShardedDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// OpenSharded opens a directory written by WriteSharded, mapping every shard
// file. The manifest and each shard are cross-validated (contiguous ranges
// covering the vertex space, arc totals, per-shard structural sweep), so a
// torn or mixed-up directory errors at open.
func OpenSharded(dir string) (*Sharded, error) {
	mb, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	var man Manifest
	if err := json.Unmarshal(mb, &man); err != nil {
		return nil, fmt.Errorf("graph: %s: bad manifest: %w", dir, err)
	}
	if man.Version != 1 {
		return nil, fmt.Errorf("graph: %s: unsupported manifest version %d", dir, man.Version)
	}
	if len(man.Shards) == 0 {
		return nil, fmt.Errorf("graph: %s: manifest lists no shards", dir)
	}
	s := &Sharded{
		dir:  dir,
		man:  man,
		cuts: make([]VID, 0, len(man.Shards)+1),
		base: make([]int64, 0, len(man.Shards)),
	}
	arcSum := int64(0)
	for i, ext := range man.Shards {
		wantLo := VID(0)
		if i > 0 {
			wantLo = man.Shards[i-1].Hi
		}
		if ext.Lo != wantLo || ext.Hi < ext.Lo {
			s.Close()
			return nil, fmt.Errorf("graph: %s: shard %d range [%d,%d) not contiguous", dir, i, ext.Lo, ext.Hi)
		}
		m, err := openMappedShard(filepath.Join(dir, ext.File), uint64(man.Vertices))
		if err != nil {
			s.Close()
			return nil, err
		}
		if m.NumVertices() != int(ext.Hi-ext.Lo) || m.NumArcs() != ext.Arcs || m.IsDAG() != man.IsDAG {
			m.Close()
			s.Close()
			return nil, fmt.Errorf("graph: %s: shard %d disagrees with manifest", dir, i)
		}
		s.cuts = append(s.cuts, ext.Lo)
		s.base = append(s.base, arcSum)
		s.shards = append(s.shards, m)
		arcSum += ext.Arcs
	}
	last := man.Shards[len(man.Shards)-1]
	if int(last.Hi) != man.Vertices {
		s.Close()
		return nil, fmt.Errorf("graph: %s: shards cover %d vertices, manifest says %d", dir, last.Hi, man.Vertices)
	}
	if arcSum != man.Arcs {
		s.Close()
		return nil, fmt.Errorf("graph: %s: shards hold %d arcs, manifest says %d", dir, arcSum, man.Arcs)
	}
	maxDeg := 0
	for _, m := range s.shards {
		if m.MaxDegree() > maxDeg {
			maxDeg = m.MaxDegree()
		}
	}
	if maxDeg != man.MaxDegree {
		s.Close()
		return nil, fmt.Errorf("graph: %s: shard max degree %d disagrees with manifest %d", dir, maxDeg, man.MaxDegree)
	}
	s.cuts = append(s.cuts, last.Hi)
	return s, nil
}

// openMappedShard maps one shard slice, validating Col against the global
// vertex count.
func openMappedShard(path string, vertices uint64) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	if fi.Size() < binHeaderSize {
		return nil, fmt.Errorf("graph: %s: file too small for a v2 binary CSR header", path)
	}
	data, err := mmapFile(f, int(fi.Size()))
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	m, err := newMapped(path, data, true, vertices)
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	return m, nil
}

// NumShards returns the number of shards; internal/sched uses it (through
// its ShardMap seam) to group root tasks.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the index of the shard owning vertex v.
func (s *Sharded) ShardOf(v VID) int {
	// First cut > v, minus one: shard ranges are [cuts[i], cuts[i+1]).
	return sort.Search(len(s.shards), func(i int) bool { return s.cuts[i+1] > v })
}

// Extents returns the manifest's shard ranges (for reporting).
func (s *Sharded) Extents() []ShardExtent { return s.man.Shards }

// NumVertices returns |V|.
func (s *Sharded) NumVertices() int { return s.man.Vertices }

// NumEdges returns |E| for symmetric graphs, stored arcs for DAGs.
func (s *Sharded) NumEdges() int64 {
	if s.man.IsDAG {
		return s.man.Arcs
	}
	return s.man.Arcs / 2
}

// NumArcs returns the number of stored directed arcs.
func (s *Sharded) NumArcs() int64 { return s.man.Arcs }

// Degree returns the stored out-degree of v.
func (s *Sharded) Degree(v VID) int {
	i := s.ShardOf(v)
	return s.shards[i].Degree(v - s.cuts[i])
}

// MaxDegree returns the maximum degree over all vertices.
func (s *Sharded) MaxDegree() int { return s.man.MaxDegree }

// AvgDegree returns the mean number of stored neighbors per vertex.
func (s *Sharded) AvgDegree() float64 {
	if s.man.Vertices == 0 {
		return 0
	}
	return float64(s.man.Arcs) / float64(s.man.Vertices)
}

// Adj returns the sorted neighbor list of v from its owning shard. Read-only:
// the slice views mmap'd pages.
func (s *Sharded) Adj(v VID) []VID {
	i := s.ShardOf(v)
	return s.shards[i].Adj(v - s.cuts[i])
}

// AdjStart returns v's neighbor-list offset in the virtual global Col array.
func (s *Sharded) AdjStart(v VID) int64 {
	i := s.ShardOf(v)
	return s.base[i] + s.shards[i].AdjStart(v-s.cuts[i])
}

// IsDAG reports whether the sharded graph was degree-oriented before
// splitting.
func (s *Sharded) IsDAG() bool { return s.man.IsDAG }

// EnsureHubIndex builds (once) and returns the hub-bitmap index over the
// whole sharded graph; identical to the other backends' index so engine
// statistics stay backend-invariant.
func (s *Sharded) EnsureHubIndex(topK int) *HubIndex { return s.ensureHub(s, topK) }

// Close unmaps every shard. Idempotent.
func (s *Sharded) Close() error {
	var first error
	for _, m := range s.shards {
		if m == nil {
			continue
		}
		if err := m.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
