package graph

// Loaders and writers. Two formats are supported:
//
//   - text edge list: one "u v" pair per line, '#' comments, whitespace
//     separated — the format SNAP distributes its datasets in, so real graphs
//     drop in unchanged;
//   - binary CSR: a compact little-endian dump for fast reload.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list. Vertex IDs may be
// arbitrary non-negative integers; they are used directly, so the vertex
// count is max(ID)+1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges = append(edges, Edge{VID(u), VID(v)})
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(maxID+1, edges)
}

// LoadEdgeList reads a text edge list from a file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes each undirected edge once as "u v" with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Adj(VID(v)) {
			if g.IsDAG || VID(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

const binMagic = uint32(0xF1E7A11E) // "FlexMiner graph" magic

// WriteBinary serializes g in the binary CSR format.
func WriteBinary(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	hdr := []any{
		binMagic,
		uint32(1), // version
		boolByte(g.IsDAG),
		uint64(g.NumVertices()),
		uint64(len(g.Col)),
	}
	for _, h := range hdr {
		if err := binary.Write(bw, binary.LittleEndian, h); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Row); err != nil {
		return err
	}
	if err := binary.Write(bw, binary.LittleEndian, g.Col); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var magic, version uint32
	var isDAG uint8
	var n, arcs uint64
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, err
	}
	if magic != binMagic {
		return nil, errors.New("graph: bad magic in binary CSR file")
	}
	if err := binary.Read(br, binary.LittleEndian, &version); err != nil {
		return nil, err
	}
	if version != 1 {
		return nil, fmt.Errorf("graph: unsupported binary version %d", version)
	}
	if err := binary.Read(br, binary.LittleEndian, &isDAG); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &arcs); err != nil {
		return nil, err
	}
	g := &Graph{
		Row:   make([]int64, n+1),
		Col:   make([]VID, arcs),
		IsDAG: isDAG != 0,
	}
	if err := binary.Read(br, binary.LittleEndian, &g.Row); err != nil {
		return nil, err
	}
	if err := binary.Read(br, binary.LittleEndian, &g.Col); err != nil {
		return nil, err
	}
	g.recomputeMaxDegree()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// SaveBinary writes the binary CSR format to a file.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteBinary(f, g)
}

// LoadBinary reads the binary CSR format from a file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Load picks a loader from the file extension: ".bin" uses the binary CSR
// format, anything else is parsed as a text edge list.
func Load(path string) (*Graph, error) {
	if strings.HasSuffix(path, ".bin") {
		return LoadBinary(path)
	}
	return LoadEdgeList(path)
}

func boolByte(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
