package graph

// Loaders and writers. Two formats are supported:
//
//   - text edge list: one "u v" pair per line, '#' comments, whitespace
//     separated — the format SNAP distributes its datasets in, so real graphs
//     drop in unchanged;
//   - binary CSR: a compact little-endian dump for fast reload.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// ReadEdgeList parses a whitespace-separated edge list. Vertex IDs may be
// arbitrary non-negative integers; they are used directly, so the vertex
// count is max(ID)+1.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var edges []Edge
	maxID := -1
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") || strings.HasPrefix(line, "%") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: line %d: want 2 fields, got %d", lineNo, len(fields))
		}
		u, err := strconv.ParseUint(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		v, err := strconv.ParseUint(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %v", lineNo, err)
		}
		edges = append(edges, Edge{VID(u), VID(v)})
		if int(u) > maxID {
			maxID = int(u)
		}
		if int(v) > maxID {
			maxID = int(v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return FromEdges(maxID+1, edges)
}

// LoadEdgeList reads a text edge list from a file.
func LoadEdgeList(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadEdgeList(f)
}

// WriteEdgeList writes each undirected edge once as "u v" with u < v.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Adj(VID(v)) {
			if g.DAG || VID(v) < u {
				if _, err := fmt.Fprintf(bw, "%d %d\n", v, u); err != nil {
					return err
				}
			}
		}
	}
	return bw.Flush()
}

// Binary CSR layout. Version 2 (the current writer output) is mmap-friendly:
//
//	offset 0    magic      uint32  0xF1E7A11E
//	offset 4    version    uint32  2
//	offset 8    flags      uint32  bit 0: DAG, bit 1: shard slice
//	offset 12   reserved   uint32  0
//	offset 16   vertices   uint64  n
//	offset 24   arcs       uint64  len(Col)
//	offset 32   maxDegree  uint64
//	offset 40   zero padding to binHeaderSize
//	offset 4096 Row        (n+1) × int64, little endian
//	...         Col        arcs  × uint32, little endian
//
// The header is padded to a 4 kB page so that Row (and therefore Col, which
// follows the 8-byte-aligned Row block) is naturally aligned inside an mmap
// of the whole file — OpenMapped views both arrays zero-copy. MaxDegree is
// recorded so opening does not need to touch every Row page just to size
// engine scratch buffers. Version 1 (unaligned 25-byte header, no recorded
// max degree) is still read by ReadBinary/LoadBinary but cannot be mapped.
const (
	binMagic      = uint32(0xF1E7A11E) // "FlexMiner graph" magic
	binVersion    = 2
	binHeaderSize = 4096

	binFlagDAG   = 1 << 0
	binFlagShard = 1 << 1
)

// maxBinVertices/maxBinArcs bound header-declared sizes so a corrupt or
// malicious header cannot drive huge allocations before the (chunked) reads
// detect truncation.
const (
	maxBinVertices = 1 << 40
	maxBinArcs     = 1 << 42
)

// binHeader is the decoded fixed part of a binary CSR file.
type binHeader struct {
	version   uint32
	flags     uint32
	n         uint64
	arcs      uint64
	maxDegree uint64
}

func (h binHeader) isDAG() bool   { return h.flags&binFlagDAG != 0 }
func (h binHeader) isShard() bool { return h.flags&binFlagShard != 0 }

// encode renders the full padded header page.
func (h binHeader) encode() []byte {
	buf := make([]byte, binHeaderSize)
	le := binary.LittleEndian
	le.PutUint32(buf[0:], binMagic)
	le.PutUint32(buf[4:], h.version)
	le.PutUint32(buf[8:], h.flags)
	le.PutUint64(buf[16:], h.n)
	le.PutUint64(buf[24:], h.arcs)
	le.PutUint64(buf[32:], h.maxDegree)
	return buf
}

// decodeBinHeader parses and sanity-checks the fixed header fields (both
// versions share the first 12 bytes up to where v1 diverges).
func decodeBinHeader(br io.Reader) (binHeader, error) {
	var h binHeader
	le := binary.LittleEndian
	var pre [8]byte
	if _, err := io.ReadFull(br, pre[:]); err != nil {
		return h, fmt.Errorf("graph: short binary CSR header: %w", err)
	}
	if le.Uint32(pre[0:]) != binMagic {
		return h, errors.New("graph: bad magic in binary CSR file")
	}
	h.version = le.Uint32(pre[4:])
	switch h.version {
	case 1:
		var rest [17]byte // isDAG byte + n + arcs
		if _, err := io.ReadFull(br, rest[:]); err != nil {
			return h, fmt.Errorf("graph: short v1 header: %w", err)
		}
		if rest[0] != 0 {
			h.flags = binFlagDAG
		}
		h.n = le.Uint64(rest[1:])
		h.arcs = le.Uint64(rest[9:])
	case binVersion:
		var rest [binHeaderSize - 8]byte
		if _, err := io.ReadFull(br, rest[:]); err != nil {
			return h, fmt.Errorf("graph: short v2 header: %w", err)
		}
		h.flags = le.Uint32(rest[0:])
		h.n = le.Uint64(rest[8:])
		h.arcs = le.Uint64(rest[16:])
		h.maxDegree = le.Uint64(rest[24:])
	default:
		return h, fmt.Errorf("graph: unsupported binary version %d", h.version)
	}
	if h.n > maxBinVertices {
		return h, fmt.Errorf("graph: implausible vertex count %d in header", h.n)
	}
	if h.arcs > maxBinArcs {
		return h, fmt.Errorf("graph: implausible arc count %d in header", h.arcs)
	}
	if h.maxDegree > h.arcs {
		return h, fmt.Errorf("graph: header max degree %d exceeds arc count %d", h.maxDegree, h.arcs)
	}
	return h, nil
}

// WriteBinary serializes g in the binary CSR format (version 2).
func WriteBinary(w io.Writer, g *Graph) error {
	flags := uint32(0)
	if g.DAG {
		flags |= binFlagDAG
	}
	hdr := binHeader{
		version:   binVersion,
		flags:     flags,
		n:         uint64(g.NumVertices()),
		arcs:      uint64(len(g.Col)),
		maxDegree: uint64(g.MaxDegree()),
	}
	return writeCSR(w, hdr, g.Row, g.Col)
}

// ioChunkBytes is the buffer size of the chunked binary encoder/decoder: big
// enough to amortize syscalls, small enough that corrupt headers cannot force
// large up-front allocations.
const ioChunkBytes = 1 << 20

// writeCSR streams a padded v2 header plus Row and Col through a fixed-size
// chunk buffer (binary.Write on a whole []int64 would transiently copy the
// entire array — unacceptable for graphs near RAM size).
func writeCSR(w io.Writer, hdr binHeader, row []int64, col []VID) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(hdr.encode()); err != nil {
		return err
	}
	le := binary.LittleEndian
	buf := make([]byte, 0, ioChunkBytes)
	flush := func(force bool) error {
		if len(buf) < ioChunkBytes && !force {
			return nil
		}
		_, err := bw.Write(buf)
		buf = buf[:0]
		return err
	}
	for _, r := range row {
		buf = le.AppendUint64(buf, uint64(r))
		if err := flush(false); err != nil {
			return err
		}
	}
	for _, c := range col {
		buf = le.AppendUint32(buf, c)
		if err := flush(false); err != nil {
			return err
		}
	}
	if err := flush(true); err != nil {
		return err
	}
	return bw.Flush()
}

// ReadBinary deserializes a graph written by WriteBinary (v1 or v2). Reads
// are chunked and validated incrementally, so truncated or bit-flipped input
// errors out early instead of panicking or allocating header-declared sizes
// it never receives.
func ReadBinary(r io.Reader) (*Graph, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	h, err := decodeBinHeader(br)
	if err != nil {
		return nil, err
	}
	if h.isShard() {
		return nil, errors.New("graph: file is a shard slice, not a whole graph (use OpenSharded on its directory)")
	}
	row, err := readRowChunked(br, h.n, h.arcs)
	if err != nil {
		return nil, err
	}
	col, err := readColChunked(br, h.arcs, h.n)
	if err != nil {
		return nil, err
	}
	g := &Graph{Row: row, Col: col, DAG: h.isDAG()}
	g.recomputeMaxDegree()
	if h.version >= binVersion && g.maxDegree != int(h.maxDegree) {
		return nil, fmt.Errorf("graph: header max degree %d disagrees with data (%d)", h.maxDegree, g.maxDegree)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}

// readRowChunked reads the n+1 Row entries in bounded batches, checking
// monotonicity and the [0, arcs] range as it goes.
func readRowChunked(br io.Reader, n, arcs uint64) ([]int64, error) {
	const entries = ioChunkBytes / 8
	row := make([]int64, 0, min64(n+1, entries))
	buf := make([]byte, 0, ioChunkBytes)
	le := binary.LittleEndian
	prev := int64(0)
	for read := uint64(0); read < n+1; {
		batch := min64(n+1-read, entries)
		buf = buf[:batch*8]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: truncated Row array: %w", err)
		}
		for i := uint64(0); i < batch; i++ {
			v := int64(le.Uint64(buf[i*8:]))
			if read+i == 0 && v != 0 {
				return nil, fmt.Errorf("graph: Row[0] = %d, want 0", v)
			}
			if v < prev {
				return nil, fmt.Errorf("graph: Row not monotone at entry %d", read+i)
			}
			if uint64(v) > arcs {
				return nil, fmt.Errorf("graph: Row entry %d exceeds arc count %d", v, arcs)
			}
			prev = v
			row = append(row, v)
		}
		read += batch
	}
	if uint64(prev) != arcs {
		return nil, fmt.Errorf("graph: Row[%d] = %d, want arc count %d", n, prev, arcs)
	}
	return row, nil
}

// readColChunked reads the arcs Col entries in bounded batches, checking each
// neighbor ID is below the vertex count.
func readColChunked(br io.Reader, arcs, n uint64) ([]VID, error) {
	const entries = ioChunkBytes / 4
	col := make([]VID, 0, min64(arcs, entries))
	buf := make([]byte, 0, ioChunkBytes)
	le := binary.LittleEndian
	for read := uint64(0); read < arcs; {
		batch := min64(arcs-read, entries)
		buf = buf[:batch*4]
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, fmt.Errorf("graph: truncated Col array: %w", err)
		}
		for i := uint64(0); i < batch; i++ {
			v := le.Uint32(buf[i*4:])
			if uint64(v) >= n {
				return nil, fmt.Errorf("graph: Col entry %d out of range for %d vertices", v, n)
			}
			col = append(col, v)
		}
		read += batch
	}
	return col, nil
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

// SaveBinary writes the binary CSR format to a file.
func SaveBinary(path string, g *Graph) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return WriteBinary(f, g)
}

// LoadBinary reads the binary CSR format from a file.
func LoadBinary(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}

// Load picks a loader from the file extension: ".bin" uses the binary CSR
// format, anything else is parsed as a text edge list.
func Load(path string) (*Graph, error) {
	if strings.HasSuffix(path, ".bin") {
		return LoadBinary(path)
	}
	return LoadEdgeList(path)
}
