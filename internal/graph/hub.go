package graph

// Precomputed hub-adjacency bitmaps: the software analog of the paper's c-map
// for the CPU engine. Set intersections in power-law graphs are dominated by
// a handful of very-high-degree hubs; holding each hub's neighbor list as a
// dense |V|-bit vector turns an intersection against that hub into one word
// probe per candidate — O(|small|) instead of O(|small| + deg(hub)) — the
// auxiliary-adjacency-structure idea of GraphMini (Liu et al. 2023).
//
// The index is built once per graph (lazily, at first engine construction
// after load/orient) and shared read-only by every worker; it never affects
// the simulator, whose SIU/SDU cycle model stays merge-based.

import (
	"sort"
	"sync"
)

// DefaultHubBitmaps is the top-K hub count an engine indexes when the caller
// does not choose one. At K=64 the index costs K·|V|/8 bytes — 32 kB per
// million-ish scaled vertices — for coverage of the vertices that dominate
// merge traffic.
const DefaultHubBitmaps = 64

// hubMinDegree is the smallest degree worth a bitmap: below it the merge
// loop is already short and the build cost would never amortize.
const hubMinDegree = 64

// HubIndex maps the top-K highest-degree vertices to dense adjacency
// bitmaps. Immutable once built; safe for concurrent readers.
type HubIndex struct {
	words int     // uint64 words per bitmap = ceil(|V|/64)
	slot  []int32 // per-vertex slot+1 into bits; 0 = not a hub
	bits  []uint64
	hubs  int
}

// Hubs returns the number of indexed hub vertices.
func (h *HubIndex) Hubs() int {
	if h == nil {
		return 0
	}
	return h.hubs
}

// Bitmap returns v's dense adjacency bitmap (indexed by neighbor ID), or nil
// when v is not an indexed hub.
//
//flexlint:noalloc
func (h *HubIndex) Bitmap(v VID) []uint64 {
	if h == nil || int(v) >= len(h.slot) {
		return nil
	}
	s := h.slot[v]
	if s == 0 {
		return nil
	}
	off := int(s-1) * h.words
	return h.bits[off : off+h.words]
}

// buildHubIndex selects the (at most) topK vertices of degree ≥ hubMinDegree
// and densifies their neighbor lists. It only reads through the Store seam,
// so every backend (heap, mmap, sharded) shares one implementation.
func buildHubIndex(g Store, topK int) *HubIndex {
	n := g.NumVertices()
	h := &HubIndex{words: (n + 63) / 64, slot: make([]int32, n)}
	if topK <= 0 {
		return h
	}
	var cand []VID
	for v := 0; v < n; v++ {
		if g.Degree(VID(v)) >= hubMinDegree {
			cand = append(cand, VID(v))
		}
	}
	if len(cand) > topK {
		sort.Slice(cand, func(i, j int) bool {
			di, dj := g.Degree(cand[i]), g.Degree(cand[j])
			if di != dj {
				return di > dj
			}
			return cand[i] < cand[j]
		})
		cand = cand[:topK]
	}
	h.hubs = len(cand)
	h.bits = make([]uint64, len(cand)*h.words)
	for i, v := range cand {
		h.slot[v] = int32(i + 1)
		bm := h.bits[i*h.words : (i+1)*h.words]
		for _, w := range g.Adj(v) {
			bm[w>>6] |= 1 << (w & 63)
		}
	}
	return h
}

// hubCache is the lazily built, per-store hub-bitmap index slot. Every Store
// implementation embeds one so the index follows the store through caches and
// is shared by every engine constructed on it.
type hubCache struct {
	hubMu sync.Mutex
	hub   *HubIndex
}

// ensureHub builds (once) and returns the index over s; the first build wins
// regardless of later topK values.
func (c *hubCache) ensureHub(s Store, topK int) *HubIndex {
	if topK <= 0 {
		topK = DefaultHubBitmaps
	}
	c.hubMu.Lock()
	defer c.hubMu.Unlock()
	if c.hub == nil {
		c.hub = buildHubIndex(s, topK)
	}
	return c.hub
}

// EnsureHubIndex builds (once) and returns the graph's hub-bitmap index over
// the topK highest-degree vertices; topK ≤ 0 selects DefaultHubBitmaps. The
// first build wins — later calls return the existing index regardless of
// topK — so concurrent engines on one graph share a single index, and the
// build amortizes across runs exactly like the cached DAG orientation. Safe
// for concurrent use; callers should capture the returned pointer rather
// than re-resolving it on hot paths.
func (g *Graph) EnsureHubIndex(topK int) *HubIndex {
	return g.ensureHub(g, topK)
}
