package graph

// Mapped is the zero-copy, out-of-core storage backend: a binary CSR v2 file
// viewed directly through a read-only memory mapping. Opening is O(header +
// one validation sweep) in time and O(1) in heap — Row and Col are
// unsafe.Slice views of the mapping, so a graph far larger than RAM mines
// with adjacency demand-paged by the OS and evicted under pressure.

import (
	"bytes"
	"fmt"
	"os"
	"runtime"
	"sync"
	"unsafe"
)

// Mapped is a read-only CSR graph backed by an mmap'd binary file.
//
// The embedded Graph's Row/Col alias the mapping: they are views of
// read-only pages, so writing through Adj results (or Row/Col directly) kills
// the process with an unrecoverable fault. Close unmaps the file, after which
// any access through the store faults as well — close only after mining
// completes. A finalizer unmaps on GC as a safety net for dropped stores.
type Mapped struct {
	// Graph provides every Store method (plus the hub-bitmap cache) over the
	// mapped views; it is never handed out by value.
	Graph
	path string
	data []byte

	closeOnce sync.Once
	closeErr  error
}

var (
	_ Store      = (*Mapped)(nil)
	_ HubIndexer = (*Mapped)(nil)
)

// OpenMapped maps the binary CSR v2 file at path as a read-only graph store.
// The whole file is validated structurally (header sanity, Row monotonicity,
// Col range) in one streaming sweep that allocates nothing, so a corrupt file
// errors here instead of faulting mid-mine. Version 1 files are rejected —
// their unaligned header cannot be viewed in place; rewrite them with
// `gengraph -convert` first.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < binHeaderSize {
		return nil, fmt.Errorf("graph: %s: file too small for a v2 binary CSR header", path)
	}
	data, err := mmapFile(f, int(size))
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	m, err := newMapped(path, data, false, 0)
	if err != nil {
		munmapFile(data)
		return nil, err
	}
	runtime.SetFinalizer(m, func(m *Mapped) { m.Close() })
	return m, nil
}

// newMapped builds the store over an established mapping, validating layout
// and content. Split from OpenMapped so shard files (wantShard) reuse it: a
// shard's Row is local to its vertex range but its Col holds global IDs, so
// colRange overrides the neighbor-ID bound (0 means "the header's own n").
func newMapped(path string, data []byte, wantShard bool, colRange uint64) (*Mapped, error) {
	h, err := decodeBinHeader(bytes.NewReader(data))
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	if h.version != binVersion {
		return nil, fmt.Errorf("graph: %s: version %d files cannot be mapped; re-save in the v2 format", path, h.version)
	}
	if h.isShard() && !wantShard {
		return nil, fmt.Errorf("graph: %s: file is a shard slice, not a whole graph (use OpenSharded on its directory)", path)
	}
	if !h.isShard() && wantShard {
		return nil, fmt.Errorf("graph: %s: whole-graph file where a shard slice was expected", path)
	}
	rowBytes := 8 * (h.n + 1)
	colBytes := 4 * h.arcs
	want := binHeaderSize + rowBytes + colBytes
	if uint64(len(data)) != want {
		return nil, fmt.Errorf("graph: %s: file is %d bytes, header implies %d", path, len(data), want)
	}
	row := unsafe.Slice((*int64)(unsafe.Pointer(&data[binHeaderSize])), h.n+1)
	var col []VID
	if h.arcs > 0 {
		col = unsafe.Slice((*VID)(unsafe.Pointer(&data[binHeaderSize+rowBytes])), h.arcs)
	} else {
		col = []VID{}
	}
	if colRange == 0 {
		colRange = h.n
	}
	maxDeg, err := validateCSRViews(row, col, h, colRange)
	if err != nil {
		return nil, fmt.Errorf("graph: %s: %w", path, err)
	}
	m := &Mapped{path: path, data: data}
	m.Row = row
	m.Col = col
	m.DAG = h.isDAG()
	m.maxDegree = maxDeg
	return m, nil
}

// validateCSRViews checks the structural invariants the mining hot path
// relies on — monotone Row with the right endpoints, every Col entry in
// range — in one allocation-free sweep, and cross-checks the recorded max
// degree. Neighbor-list sortedness is spot-checked by Validate-using tests,
// not here: a full check would not cost more, but the per-arc compare below
// already touches every page once, which is the expensive part.
func validateCSRViews(row []int64, col []VID, h binHeader, colRange uint64) (int, error) {
	if row[0] != 0 {
		return 0, fmt.Errorf("Row[0] = %d, want 0", row[0])
	}
	maxDeg := 0
	for v := 1; v < len(row); v++ {
		if row[v] < row[v-1] {
			return 0, fmt.Errorf("Row not monotone at entry %d", v)
		}
		if d := int(row[v] - row[v-1]); d > maxDeg {
			maxDeg = d
		}
	}
	if uint64(row[len(row)-1]) != h.arcs {
		return 0, fmt.Errorf("Row[%d] = %d, want arc count %d", len(row)-1, row[len(row)-1], h.arcs)
	}
	for i, c := range col {
		if uint64(c) >= colRange {
			return 0, fmt.Errorf("Col[%d] = %d out of range for %d vertices", i, c, colRange)
		}
	}
	if maxDeg != int(h.maxDegree) {
		return 0, fmt.Errorf("header max degree %d disagrees with data (%d)", h.maxDegree, maxDeg)
	}
	return maxDeg, nil
}

// Path returns the file backing the mapping.
func (m *Mapped) Path() string { return m.path }

// Close unmaps the file. Idempotent; the store must not be used afterwards —
// Row/Col views dangle once the pages are gone.
func (m *Mapped) Close() error {
	m.closeOnce.Do(func() {
		runtime.SetFinalizer(m, nil)
		m.Row, m.Col = nil, nil
		m.closeErr = munmapFile(m.data)
		m.data = nil
	})
	return m.closeErr
}
