//go:build !unix

package graph

import "errors"

// errNoMmap gates the mapped backend on platforms without a memory-mapping
// shim; LoadBinary remains the portable path.
var errNoMmap = errors.New("graph: memory-mapped stores are not supported on this platform")

func mmapFile(f interface{ Fd() uintptr }, size int) ([]byte, error) {
	return nil, errNoMmap
}

func munmapFile(data []byte) error { return nil }
