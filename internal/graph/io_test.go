package graph

import (
	"bytes"
	"encoding/binary"
	"strings"
	"testing"
)

// encodeV1 renders g in the legacy version-1 binary layout (25-byte unaligned
// header) so the compatibility path stays covered now that WriteBinary emits
// version 2.
func encodeV1(g *Graph) []byte {
	var buf bytes.Buffer
	le := binary.LittleEndian
	var hdr [25]byte
	le.PutUint32(hdr[0:], binMagic)
	le.PutUint32(hdr[4:], 1)
	if g.DAG {
		hdr[8] = 1
	}
	le.PutUint64(hdr[9:], uint64(g.NumVertices()))
	le.PutUint64(hdr[17:], uint64(len(g.Col)))
	buf.Write(hdr[:])
	for _, r := range g.Row {
		var b [8]byte
		le.PutUint64(b[:], uint64(r))
		buf.Write(b[:])
	}
	for _, c := range g.Col {
		var b [4]byte
		le.PutUint32(b[:], c)
		buf.Write(b[:])
	}
	return buf.Bytes()
}

func TestReadBinaryV1Compat(t *testing.T) {
	g := MustFromEdges(5, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}})
	for _, gg := range []*Graph{g, g.Orient()} {
		g2, err := ReadBinary(bytes.NewReader(encodeV1(gg)))
		if err != nil {
			t.Fatalf("v1 read: %v", err)
		}
		if g2.NumVertices() != gg.NumVertices() || g2.NumArcs() != gg.NumArcs() || g2.IsDAG() != gg.IsDAG() {
			t.Fatalf("v1 round trip mismatch")
		}
	}
}

func TestWriteBinaryPageAlignedHeader(t *testing.T) {
	g := MustFromEdges(4, []Edge{{0, 1}, {1, 2}, {2, 3}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	wantLen := binHeaderSize + 8*(g.NumVertices()+1) + 4*len(g.Col)
	if len(b) != wantLen {
		t.Fatalf("encoded length = %d, want %d", len(b), wantLen)
	}
	le := binary.LittleEndian
	if le.Uint32(b[4:]) != binVersion {
		t.Fatalf("version = %d, want %d", le.Uint32(b[4:]), binVersion)
	}
	if got := int64(le.Uint64(b[32:])); got != int64(g.MaxDegree()) {
		t.Fatalf("header max degree = %d, want %d", got, g.MaxDegree())
	}
	if int64(le.Uint64(b[binHeaderSize:])) != 0 {
		t.Fatalf("Row[0] not at offset %d", binHeaderSize)
	}
}

// TestReadBinaryCorrupt exercises the validation paths one corruption at a
// time; every case must error, never panic or over-allocate.
func TestReadBinaryCorrupt(t *testing.T) {
	g := MustFromEdges(6, []Edge{{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {0, 5}})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()
	le := binary.LittleEndian

	mutate := func(f func(b []byte) []byte) []byte {
		b := append([]byte(nil), good...)
		return f(b)
	}
	cases := []struct {
		name string
		data []byte
		want string
	}{
		{"empty", nil, "short"},
		{"bad magic", mutate(func(b []byte) []byte { b[0] ^= 0xFF; return b }), "magic"},
		{"bad version", mutate(func(b []byte) []byte { le.PutUint32(b[4:], 99); return b }), "version"},
		{"truncated header", good[:40], "short"},
		{"truncated row", good[:binHeaderSize+9], "truncated Row"},
		{"truncated col", good[:len(good)-2], "truncated Col"},
		{"huge vertex count", mutate(func(b []byte) []byte { le.PutUint64(b[16:], 1<<50); return b }), "implausible vertex"},
		{"huge arc count", mutate(func(b []byte) []byte { le.PutUint64(b[24:], 1<<50); return b }), "implausible arc"},
		{"row not monotone", mutate(func(b []byte) []byte {
			le.PutUint64(b[binHeaderSize+8:], 1<<40) // Row[1] becomes negative-ish huge
			return b
		}), "Row"},
		{"row exceeds arcs", mutate(func(b []byte) []byte {
			le.PutUint64(b[binHeaderSize+8:], uint64(len(g.Col)+1))
			return b
		}), "Row"},
		{"col out of range", mutate(func(b []byte) []byte {
			le.PutUint32(b[binHeaderSize+8*(g.NumVertices()+1):], uint32(g.NumVertices()))
			return b
		}), "out of range"},
		{"max degree mismatch", mutate(func(b []byte) []byte { le.PutUint64(b[32:], 1); return b }), "max degree"},
		{"shard flag on whole read", mutate(func(b []byte) []byte { le.PutUint32(b[8:], le.Uint32(b[8:])|binFlagShard); return b }), "shard"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadBinary(bytes.NewReader(tc.data))
			if err == nil {
				t.Fatalf("corrupt input accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// FuzzLoadBinary throws truncated and bit-flipped binary CSR files at the
// reader. The property under test: ReadBinary either returns a structurally
// valid graph or an error — it never panics, and never returns a graph that
// fails Validate (a corrupt mmap'd file must error at open, not crash
// mid-mine).
func FuzzLoadBinary(f *testing.F) {
	g := MustFromEdges(8, []Edge{
		{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 6}, {6, 7}, {0, 7}, {2, 6},
	})
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(encodeV1(g))
	f.Add(good[:len(good)/2])     // truncated mid-array
	f.Add(good[:binHeaderSize-1]) // truncated header
	f.Add([]byte{})               // empty
	flip := append([]byte(nil), good...)
	flip[binHeaderSize+3] ^= 0x80 // bit-flip inside Row
	f.Add(flip)
	flip2 := append([]byte(nil), good...)
	flip2[len(flip2)-1] ^= 0x01 // bit-flip inside Col
	f.Add(flip2)

	f.Fuzz(func(t *testing.T, data []byte) {
		g, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := g.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted a graph that fails Validate: %v", err)
		}
	})
}
