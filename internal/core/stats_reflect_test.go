package core

// Runtime complement to the statsum lint: statsum proves Stats.add mentions
// every field syntactically; this test proves the mentions actually
// accumulate. It fills a Stats with distinct nonzero values via reflection —
// so a field added tomorrow is swept in automatically — and checks that two
// adds double every field, nested structs included.

import (
	"reflect"
	"testing"
)

// fillDistinctInts assigns each settable integer field (recursing through
// nested structs) a distinct nonzero value.
func fillDistinctInts(v reflect.Value, next *int64) {
	for i := 0; i < v.NumField(); i++ {
		f := v.Field(i)
		if !f.CanSet() {
			continue
		}
		switch f.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			*next++
			f.SetInt(*next)
		case reflect.Struct:
			fillDistinctInts(f, next)
		}
	}
}

// maxMerged names the fields add merges by max instead of sum: a peak across
// concurrent workers is the largest per-worker peak, never their total.
var maxMerged = map[string]bool{"AuxBytesPeak": true}

// checkDoubled asserts got == 2*want field-by-field (or == want for the
// max-merged peaks), naming offenders.
func checkDoubled(t *testing.T, prefix string, got, want reflect.Value) {
	t.Helper()
	for i := 0; i < got.NumField(); i++ {
		name := prefix + got.Type().Field(i).Name
		gf, wf := got.Field(i), want.Field(i)
		switch gf.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			wantV := 2 * wf.Int()
			if maxMerged[name] {
				wantV = wf.Int() // max(x, x) == x
			}
			if gf.Int() != wantV {
				t.Errorf("Stats.add dropped or mis-merged %s: got %d, want %d",
					name, gf.Int(), wantV)
			}
		case reflect.Struct:
			checkDoubled(t, name+".", gf, wf)
		}
	}
}

func TestStatsAddAggregatesEveryField(t *testing.T) {
	var delta Stats
	n := int64(0)
	fillDistinctInts(reflect.ValueOf(&delta).Elem(), &n)
	if n == 0 {
		t.Fatal("no integer fields found in Stats — reflection walk broken")
	}
	var sum Stats
	sum.add(&delta)
	sum.add(&delta)
	checkDoubled(t, "", reflect.ValueOf(sum), reflect.ValueOf(delta))
}
