package core

// The four GPM applications of §II-A, as one-call conveniences over the
// compiler and engine. Each returns the exact count(s) plus run stats.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// TriangleCount solves TC: the number of triangles in g.
func TriangleCount(g *graph.Graph, o Options) (int64, error) {
	r, err := CliqueCount(g, 3, o)
	return r, err
}

// CliqueCount solves k-CL using the orientation optimization of §V-C: the
// input is converted to a degree-ordered DAG (cost amortized, <1% of mining
// time) and mined without symmetry checks.
func CliqueCount(g *graph.Graph, k int, o Options) (int64, error) {
	pl, err := plan.CompileCliqueDAG(k)
	if err != nil {
		return 0, err
	}
	dag := g.Orient()
	res, err := Mine(dag, pl, o)
	if err != nil {
		return 0, err
	}
	return res.Count(), nil
}

// CliqueCountGeneric solves k-CL with the generic symmetric-graph plan
// (symmetry order instead of orientation); used to cross-check the DAG path.
func CliqueCountGeneric(g graph.Store, k int, o Options) (int64, error) {
	pl, err := plan.Compile(pattern.KClique(k), plan.Options{})
	if err != nil {
		return 0, err
	}
	res, err := Mine(g, pl, o)
	if err != nil {
		return 0, err
	}
	return res.Count(), nil
}

// SubgraphListing solves SL: the number of edge-induced subgraphs of g
// isomorphic to p. (Engines count rather than materialize; the per-embedding
// callback lives in the examples.)
func SubgraphListing(g graph.Store, p *pattern.Pattern, o Options) (int64, error) {
	pl, err := plan.Compile(p, plan.Options{})
	if err != nil {
		return 0, err
	}
	res, err := Mine(g, pl, o)
	if err != nil {
		return 0, err
	}
	return res.Count(), nil
}

// MotifCounts solves k-MC: vertex-induced counts of every connected k-vertex
// motif, in pattern.Motifs(k) order.
func MotifCounts(g graph.Store, k int, o Options) ([]int64, []*pattern.Pattern, error) {
	pl, err := plan.CompileMotifs(k, plan.Options{})
	if err != nil {
		return nil, nil, err
	}
	res, err := Mine(g, pl, o)
	if err != nil {
		return nil, nil, err
	}
	return res.Counts, pl.Patterns, nil
}

// App identifies one of the paper's benchmark applications in CLIs and the
// experiment harness.
type App struct {
	Name    string
	Run     func(g *graph.Graph, o Options) ([]int64, error)
	Induced bool
}

// StandardApps returns the benchmark set used across the evaluation:
// TC, 4-CL, 5-CL, SL-4cycle, SL-diamond, 3-MC (Fig 13).
func StandardApps() []App {
	return []App{
		{Name: "TC", Run: func(g *graph.Graph, o Options) ([]int64, error) {
			c, err := TriangleCount(g, o)
			return []int64{c}, err
		}},
		{Name: "4-CL", Run: func(g *graph.Graph, o Options) ([]int64, error) {
			c, err := CliqueCount(g, 4, o)
			return []int64{c}, err
		}},
		{Name: "5-CL", Run: func(g *graph.Graph, o Options) ([]int64, error) {
			c, err := CliqueCount(g, 5, o)
			return []int64{c}, err
		}},
		{Name: "SL-4cycle", Run: func(g *graph.Graph, o Options) ([]int64, error) {
			c, err := SubgraphListing(g, pattern.FourCycle(), o)
			return []int64{c}, err
		}},
		{Name: "SL-diamond", Run: func(g *graph.Graph, o Options) ([]int64, error) {
			c, err := SubgraphListing(g, pattern.Diamond(), o)
			return []int64{c}, err
		}},
		{Name: "3-MC", Induced: true, Run: func(g *graph.Graph, o Options) ([]int64, error) {
			cs, _, err := MotifCounts(g, 3, o)
			return cs, err
		}},
	}
}

// AppByName resolves an App from its display name.
func AppByName(name string) (App, error) {
	for _, a := range StandardApps() {
		if a.Name == name {
			return a, nil
		}
	}
	return App{}, fmt.Errorf("core: unknown app %q", name)
}
