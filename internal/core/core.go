package core
