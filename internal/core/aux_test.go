//go:build unix

package core

import (
	"context"
	"os"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sched"
)

func compileAux(t *testing.T, p *pattern.Pattern) *plan.Plan {
	t.Helper()
	pl, err := plan.Compile(p, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

// TestAuxModeCountInvariance is the correctness core: mined counts must be
// bit-identical across aux off/auto/on, for plans with directives (house,
// 5-motif census) and without (cliques), under both kernel policies and with
// the c-map in the loop.
func TestAuxModeCountInvariance(t *testing.T) {
	inputs := map[string]*graph.Graph{
		"er":   graph.ErdosRenyi(300, 2400, 17),
		"rmat": graph.RMAT(9, 4500, 0.57, 0.19, 0.19, 5),
	}
	plans := map[string]*plan.Plan{
		"house": compileAux(t, pattern.House()),
		"4-CL":  compileAux(t, pattern.KClique(4)),
	}
	if pl, err := plan.CompileMotifs(4, plan.Options{}); err != nil {
		t.Fatal(err)
	} else {
		plans["4-MC"] = pl
	}
	for gname, g := range inputs {
		for pname, pl := range plans {
			for _, kernel := range []KernelPolicy{KernelAuto, KernelMergeOnly} {
				for _, cm := range []CMapMode{CMapNone, CMapHash} {
					base := Options{Threads: 4, Kernel: kernel, CMap: cm, SliceElems: 16}
					off, err := Mine(g, pl, base)
					if err != nil {
						t.Fatal(err)
					}
					for _, mode := range []AuxMode{AuxAuto, AuxOn} {
						o := base
						o.AuxGraph = mode
						got, err := Mine(g, pl, o)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Counts, off.Counts) {
							t.Fatalf("%s/%s/%v/cmap%d aux=%v counts %v != off %v",
								gname, pname, kernel, cm, mode, got.Counts, off.Counts)
						}
						if pname == "house" && got.Stats.AuxBuilt == 0 {
							t.Errorf("%s/house aux=%v built no aux rows", gname, mode)
						}
						if pname == "4-CL" && got.Stats.AuxBuilt != 0 {
							t.Errorf("%s/4-CL aux=%v built %d aux rows; clique plans carry no directives",
								gname, mode, got.Stats.AuxBuilt)
						}
					}
				}
			}
		}
	}
}

// TestAuxReuseDominatesBuilds checks the layer actually does its job on the
// house: within an activation the same extender row is looked up once per
// intermediate embedding, so reuses must outnumber builds on a dense input.
func TestAuxReuseDominatesBuilds(t *testing.T) {
	g := graph.RMAT(10, 9000, 0.57, 0.19, 0.19, 5)
	pl := compileAux(t, pattern.House())
	res, err := Mine(g, pl, Options{Threads: 4, AuxGraph: AuxOn})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.AuxBuilt == 0 || res.Stats.AuxReused <= res.Stats.AuxBuilt {
		t.Fatalf("house aux stats built=%d reused=%d; want reuse > build",
			res.Stats.AuxBuilt, res.Stats.AuxReused)
	}
	if res.Stats.AuxBytesPeak <= 0 {
		t.Fatalf("AuxBytesPeak = %d after %d builds", res.Stats.AuxBytesPeak, res.Stats.AuxBuilt)
	}
}

// TestAuxCrossBackendEquivalence: for each aux mode, Counts and the full
// Stats block (including the new Aux* counters and the max-merged byte peak)
// must be DeepEqual across heap/mmap/1-shard/4-shard and across worker
// counts 1/4/16 — materialization is per-task-deterministic, so scheduling
// must not show through. SliceElems is pinned so all legs share a task set.
func TestAuxCrossBackendEquivalence(t *testing.T) {
	g := graph.RMAT(9, 4000, 0.57, 0.19, 0.19, 5)
	stores := storageBackends(t, g)
	plans := map[string]*plan.Plan{"house": compileAux(t, pattern.House())}
	if pl, err := plan.CompileMotifs(4, plan.Options{}); err != nil {
		t.Fatal(err)
	} else {
		plans["4-MC"] = pl
	}
	for pname, pl := range plans {
		for _, mode := range []AuxMode{AuxOff, AuxAuto, AuxOn} {
			ref, err := Mine(stores["heap"], pl, Options{Threads: 4, SliceElems: 16, AuxGraph: mode})
			if err != nil {
				t.Fatal(err)
			}
			for sname, st := range stores {
				for _, threads := range []int{1, 4, 16} {
					got, err := Mine(st, pl, Options{Threads: threads, SliceElems: 16, AuxGraph: mode})
					if err != nil {
						t.Fatal(err)
					}
					if !reflect.DeepEqual(got.Counts, ref.Counts) {
						t.Fatalf("%s aux=%v %s/w%d counts %v != heap/w4 %v",
							pname, mode, sname, threads, got.Counts, ref.Counts)
					}
					if !reflect.DeepEqual(got.Stats, ref.Stats) {
						t.Fatalf("%s aux=%v %s/w%d stats diverge:\n%+v\n%+v",
							pname, mode, sname, threads, got.Stats, ref.Stats)
					}
				}
			}
		}
	}
}

// TestAuxCancellationMidMaterialization cancels a house run partway through
// on every backend with the aux layer on: the run must return the context
// error with sane partial counts, and — the leak check — every activation
// scope a worker opened must have been released on the unwind path, so the
// live-byte ledger reads zero.
func TestAuxCancellationMidMaterialization(t *testing.T) {
	g := graph.RMAT(11, 16000, 0.57, 0.19, 0.19, 23)
	stores := storageBackends(t, g)
	pl := compileAux(t, pattern.House())
	full, err := Mine(stores["heap"], pl, Options{Threads: 4, AuxGraph: AuxOn})
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range stores {
		var fired int64
		ctx, cancel := context.WithCancel(context.Background())
		o := Options{Threads: 4, AuxGraph: AuxOn, OnTaskDone: func(w int, matches int64) {
			if fired++; fired == 10 {
				cancel()
			}
		}}
		got, err := MineContext(ctx, st, pl, o)
		cancel()
		if err == nil {
			t.Fatalf("%s: cancelled aux run returned nil error", name)
		}
		for i := range got.Counts {
			if got.Counts[i] < 0 || got.Counts[i] > full.Counts[i] {
				t.Fatalf("%s: partial count %d outside [0, %d]", name, got.Counts[i], full.Counts[i])
			}
		}
	}
	// Single-worker variant with direct access to the unwound state: drive
	// runTask with a pre-fired cancellation channel so the DFS stops inside
	// the aux subtree, then verify the scope ledger returned to zero.
	done := make(chan struct{})
	close(done)
	w := newWorker(g, pl, Options{Threads: 1, AuxGraph: AuxOn}.withDefaults())
	w.ctxDone = done
	for _, task := range sched.Expand(g, 0)[:20] {
		w.runTask(task)
	}
	if w.auxLive != 0 {
		t.Fatalf("cancelled tasks leaked %d live aux bytes across task boundaries", w.auxLive)
	}
	for i := range w.aux {
		if w.aux[i].active || w.aux[i].liveBytes != 0 || len(w.aux[i].arena) != 0 {
			t.Fatalf("spec %d state not released after cancellation: %+v", i, w.aux[i])
		}
	}
}

// TestAuxScratchPooledAllocs proves the fix the issue calls out: aux scratch
// (stamps, offsets, arena) is pooled in per-worker state, so a warmed worker
// runs whole tasks — materializations included — without allocating.
//
// This is the runtime half of a two-sided check: flexlint's noalloc analyzer
// proves the same property statically for every input (runTask and its whole
// callee closure carry //flexlint:noalloc), while this test catches what the
// prover's allowlist exempts (Store.Adj implementations, worker.visit).
func TestAuxScratchPooledAllocs(t *testing.T) {
	g := graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 5)
	pl := compileAux(t, pattern.House())
	o := Options{Threads: 1, Kernel: KernelMergeOnly, HubBitmaps: -1, AuxGraph: AuxOn}.withDefaults()
	w := newWorker(g, pl, o)
	tasks := sched.Expand(g, 0)
	for _, task := range tasks { // warm: grow arenas/levels to steady state
		w.runTask(task)
	}
	warm := tasks
	if len(warm) > 64 {
		warm = warm[:64]
	}
	if avg := testing.AllocsPerRun(3, func() {
		for _, task := range warm {
			w.runTask(task)
		}
	}); avg > 0 {
		t.Fatalf("warmed aux worker allocates %.1f times per task batch; scratch must be pooled", avg)
	}
}

// TestAuxMineConstantHeap extends the O(1)-heap mmap bound to the aux layer:
// mining the house through a mapped store with aux on must allocate only
// per-worker scratch (O(maxDegree) arrays plus the row arenas), never
// anything proportional to the file.
func TestAuxMineConstantHeap(t *testing.T) {
	// Erdős–Rényi: a multi-megabyte file with a tiny max degree, so worker
	// scratch (O(maxDegree) per spec) stays far under the file-derived bound.
	g := graph.ErdosRenyi(30_000, 240_000, 23)
	bin := t.TempDir() + "/g.bin"
	if err := graph.SaveBinary(bin, g); err != nil {
		t.Fatal(err)
	}
	pl := compileAux(t, pattern.House())
	want, err := Mine(g, pl, Options{Threads: 2, HubBitmaps: -1, Kernel: KernelMergeOnly, AuxGraph: AuxOn})
	if err != nil {
		t.Fatal(err)
	}
	g = nil
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := graph.OpenMapped(bin)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	res, err := Mine(m, pl, Options{Threads: 2, HubBitmaps: -1, Kernel: KernelMergeOnly, AuxGraph: AuxOn})
	if err != nil {
		t.Fatal(err)
	}
	runtime.GC()
	runtime.ReadMemStats(&after)
	if res.Count() != want.Count() {
		t.Fatalf("mapped aux mine count %d != heap %d", res.Count(), want.Count())
	}
	// 2 workers × a handful of MaxDegree-sized arrays plus arena rows: far
	// below the adjacency payload. Reuse the mmap test's file/4 bound.
	fi, err := os.Stat(bin)
	if err != nil {
		t.Fatal(err)
	}
	if grew, bound := int64(after.HeapAlloc)-int64(before.HeapAlloc), fi.Size()/4; grew > bound {
		t.Fatalf("aux mine over mmap grew heap by %d bytes for a %d-byte graph; want < %d", grew, fi.Size(), bound)
	}
}

// TestAuxListEquivalence drives the listing path: per-embedding visitors must
// see the identical multiset of embeddings with the aux layer on.
func TestAuxListEquivalence(t *testing.T) {
	g := graph.ErdosRenyi(200, 1400, 29)
	pl := compileAux(t, pattern.House())
	collect := func(mode AuxMode) map[[5]graph.VID]int {
		seen := map[[5]graph.VID]int{}
		mu := make(chan struct{}, 1)
		mu <- struct{}{}
		_, err := List(g, pl, Options{Threads: 4, AuxGraph: mode}, func(emb []graph.VID, pat int) {
			var k [5]graph.VID
			copy(k[:], emb)
			<-mu
			seen[k]++
			mu <- struct{}{}
		})
		if err != nil {
			t.Fatal(err)
		}
		return seen
	}
	want := collect(AuxOff)
	if len(want) == 0 {
		t.Fatal("fixture lists no houses; enlarge the graph")
	}
	for _, mode := range []AuxMode{AuxAuto, AuxOn} {
		if got := collect(mode); !reflect.DeepEqual(got, want) {
			t.Fatalf("aux=%v listed %d embeddings, off listed %d — sets differ", mode, len(got), len(want))
		}
	}
}

func TestParseAuxMode(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want AuxMode
	}{{"off", AuxOff}, {"auto", AuxAuto}, {"", AuxAuto}, {"on", AuxOn}} {
		got, err := ParseAuxMode(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("ParseAuxMode(%q) = %v, %v; want %v", tc.in, got, err, tc.want)
		}
	}
	if _, err := ParseAuxMode("bogus"); err == nil {
		t.Error("ParseAuxMode accepted bogus mode")
	}
	if AuxOff.String() != "off" || AuxAuto.String() != "auto" || AuxOn.String() != "on" {
		t.Error("AuxMode.String spellings drifted from the CLI flag values")
	}
	if got := AuxMode(42).String(); got != "AuxMode(42)" {
		t.Errorf("out-of-range AuxMode string = %q", got)
	}
}
