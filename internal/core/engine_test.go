package core

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// testGraphs returns a diverse set of small graphs with known structure.
func testGraphs(tb testing.TB) map[string]*graph.Graph {
	tb.Helper()
	gs := map[string]*graph.Graph{
		"k6":        graph.Clique(6),
		"ring12":    graph.Ring(12, 2),
		"grid4x5":   graph.Grid(4, 5),
		"er40":      graph.ErdosRenyi(40, 120, 1),
		"er30dense": graph.ErdosRenyi(30, 200, 2),
		"cl50":      graph.ChungLu(50, 180, 2.3, 3),
		"bip":       graph.Bipartite(12, 12, 60, 4),
		"petersen": graph.MustFromEdges(10, []graph.Edge{
			{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
			{U: 5, V: 7}, {U: 7, V: 9}, {U: 9, V: 6}, {U: 6, V: 8}, {U: 8, V: 5},
			{U: 0, V: 5}, {U: 1, V: 6}, {U: 2, V: 7}, {U: 3, V: 8}, {U: 4, V: 9},
		}),
	}
	for name, g := range gs {
		if err := g.Validate(); err != nil {
			tb.Fatalf("graph %s invalid: %v", name, err)
		}
	}
	return gs
}

func testPatterns() []*pattern.Pattern {
	return []*pattern.Pattern{
		pattern.KClique(2).WithName("edge"),
		pattern.Triangle(),
		pattern.Wedge(),
		pattern.FourCycle(),
		pattern.Diamond(),
		pattern.TailedTriangle(),
		pattern.KClique(4),
		pattern.KPath(4),
		pattern.KStar(4),
		pattern.KCycle(5),
		pattern.House(),
		pattern.KClique(5),
	}
}

// TestEngineMatchesBruteForce is the central correctness test: for every
// (pattern, graph, semantics) triple, the plan-driven engine must equal the
// brute-force reference.
func TestEngineMatchesBruteForce(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for _, p := range testPatterns() {
			for _, induced := range []bool{false, true} {
				pl, err := plan.Compile(p, plan.Options{Induced: induced})
				if err != nil {
					t.Fatalf("%s: compile: %v", p.Name(), err)
				}
				got, err := Mine(g, pl, Options{Threads: 4})
				if err != nil {
					t.Fatalf("%s on %s: %v", p.Name(), gname, err)
				}
				want := BruteCount(g, p, induced)
				if got.Count() != want {
					t.Errorf("%s on %s (induced=%v): engine=%d brute=%d\nplan:\n%s",
						p.Name(), gname, induced, got.Count(), want, pl)
				}
			}
		}
	}
}

// TestEngineCMapModes verifies that the vector and hardware c-map paths
// produce identical counts to the set-operation path.
func TestEngineCMapModes(t *testing.T) {
	gs := testGraphs(t)
	for _, p := range testPatterns() {
		pl, err := plan.Compile(p, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for gname, g := range gs {
			base, err := Mine(g, pl, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			for _, mode := range []CMapMode{CMapVector, CMapHash} {
				got, err := Mine(g, pl, Options{Threads: 2, CMap: mode, CMapBytes: 4 << 10})
				if err != nil {
					t.Fatal(err)
				}
				if got.Count() != base.Count() {
					t.Errorf("%s on %s cmap mode %d: got %d want %d",
						p.Name(), gname, mode, got.Count(), base.Count())
				}
			}
			// A pathologically tiny c-map must still be correct, via the
			// overflow fallback (§VI-B).
			tiny, err := Mine(g, pl, Options{Threads: 2, CMap: CMapHash, CMapBytes: 30})
			if err != nil {
				t.Fatal(err)
			}
			if tiny.Count() != base.Count() {
				t.Errorf("%s on %s tiny cmap: got %d want %d", p.Name(), gname, tiny.Count(), base.Count())
			}
		}
	}
}

// TestCliqueDAGPath cross-checks the orientation-based clique plan against
// the generic symmetric plan and closed forms on K_n.
func TestCliqueDAGPath(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for k := 3; k <= 5; k++ {
			dag, err := CliqueCount(g, k, Options{Threads: 3})
			if err != nil {
				t.Fatal(err)
			}
			gen, err := CliqueCountGeneric(g, k, Options{Threads: 3})
			if err != nil {
				t.Fatal(err)
			}
			if dag != gen {
				t.Errorf("%d-CL on %s: DAG=%d generic=%d", k, gname, dag, gen)
			}
		}
	}
	// K_6: C(6,k) cliques of size k.
	k6 := graph.Clique(6)
	for k, want := range map[int]int64{3: 20, 4: 15, 5: 6, 6: 1} {
		got, err := CliqueCount(k6, k, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Errorf("%d-CL on K6: got %d want %d", k, got, want)
		}
	}
}

// TestNoSymmetryMode checks the AutoMine-style plan (no symmetry order,
// divide by |Aut|) yields the same counts.
func TestNoSymmetryMode(t *testing.T) {
	gs := testGraphs(t)
	for _, p := range testPatterns() {
		plSym, err := plan.Compile(p, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plNo, err := plan.Compile(p, plan.Options{NoSymmetry: true})
		if err != nil {
			t.Fatal(err)
		}
		for gname, g := range gs {
			a, err := Mine(g, plSym, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			b, err := Mine(g, plNo, Options{Threads: 2})
			if err != nil {
				t.Fatal(err)
			}
			if a.Count() != b.Count() {
				t.Errorf("%s on %s: symmetric=%d autominemode=%d", p.Name(), gname, a.Count(), b.Count())
			}
			// The no-symmetry plan must have explored at least as much.
			if b.Stats.Extensions < a.Stats.Extensions {
				t.Errorf("%s on %s: no-symmetry explored less (%d < %d)",
					p.Name(), gname, b.Stats.Extensions, a.Stats.Extensions)
			}
		}
	}
}

// TestMotifCountsMatchOracles verifies 3- and 4-motif counting against both
// the ESU oblivious engine and brute force.
func TestMotifCountsMatchOracles(t *testing.T) {
	for gname, g := range testGraphs(t) {
		for k := 3; k <= 4; k++ {
			counts, motifs, err := MotifCounts(g, k, Options{Threads: 4})
			if err != nil {
				t.Fatalf("%d-MC on %s: %v", k, gname, err)
			}
			obl := MineOblivious(g, k, 2)
			var oblTotal int64
			for i, m := range motifs {
				if want := obl.CountInduced(m); counts[i] != want {
					t.Errorf("%d-MC %s on %s: engine=%d esu=%d", k, m.Name(), gname, counts[i], want)
				}
				if want := BruteCount(g, m, true); counts[i] != want {
					t.Errorf("%d-MC %s on %s: engine=%d brute=%d", k, m.Name(), gname, counts[i], want)
				}
				oblTotal += obl.CountInduced(m)
			}
			if oblTotal != obl.Enumerated {
				t.Errorf("%d-MC on %s: ESU classified %d of %d", k, gname, oblTotal, obl.Enumerated)
			}
		}
	}
}

// TestMultiPatternTree verifies the merged diamond + tailed-triangle plan of
// Listing 2 and a mixed edge-induced pair.
func TestMultiPatternTree(t *testing.T) {
	ps := []*pattern.Pattern{pattern.Diamond(), pattern.TailedTriangle()}
	pl, err := plan.CompileMulti(ps, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for gname, g := range testGraphs(t) {
		res, err := Mine(g, pl, Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i, p := range ps {
			if want := BruteCount(g, p, false); res.Counts[i] != want {
				t.Errorf("multi %s on %s: got %d want %d", p.Name(), gname, res.Counts[i], want)
			}
		}
	}
}

// TestThreadCountInvariance: results must not depend on parallelism.
func TestThreadCountInvariance(t *testing.T) {
	g := graph.ChungLu(120, 600, 2.4, 7)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var first int64
	for i, threads := range []int{1, 2, 5, 16, 64} {
		res, err := Mine(g, pl, Options{Threads: threads})
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = res.Count()
		} else if res.Count() != first {
			t.Errorf("threads=%d: got %d want %d", threads, res.Count(), first)
		}
	}
}
