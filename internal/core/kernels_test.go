package core

// Kernel-policy coverage: mined counts must be bit-identical across every
// Kernel policy × c-map mode × thread count (the engine-side half of the
// "kernel selection never changes results" contract; the simulator-side half
// — cycle invariance — lives in the root package's TestSimCyclesKernelProof).
// Also asserts the per-kernel Stats attribution so speedups stay explainable.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

var allKernels = []KernelPolicy{KernelAuto, KernelMergeOnly, KernelGallop, KernelBitmap}

// TestKernelInvariance sweeps the full policy grid on Table-I stand-in
// shapes (power-law, so hubs and skewed intersections actually occur).
func TestKernelInvariance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat10": graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 0x17),
		"cl1200": graph.ChungLu(1200, 9600, 2.3, 0x31),
	}
	plans := map[string]*plan.Plan{}
	for _, p := range []*pattern.Pattern{
		pattern.KClique(2).WithName("edge"), // leaf at depth 1: count-only + hub slicing
		pattern.Triangle(),
		pattern.Diamond(),
		pattern.FourCycle(), // frontier memoization path
	} {
		pl, err := plan.Compile(p, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		plans[p.Name()] = pl
	}
	for gname, g := range graphs {
		for plname, pl := range plans {
			ref, err := Mine(g, pl, Options{Threads: 1, Kernel: KernelMergeOnly, CMap: CMapNone})
			if err != nil {
				t.Fatal(err)
			}
			for _, kernel := range allKernels {
				for _, cm := range []CMapMode{CMapNone, CMapVector, CMapHash} {
					for _, threads := range []int{1, 4, 16} {
						res, err := Mine(g, pl, Options{
							Threads: threads, Kernel: kernel, CMap: cm, CMapBytes: 4 << 10,
						})
						if err != nil {
							t.Fatal(err)
						}
						for i := range ref.Counts {
							if res.Counts[i] != ref.Counts[i] {
								t.Errorf("%s/%s kernel=%v cmap=%d threads=%d: count[%d]=%d, want %d",
									gname, plname, kernel, cm, threads, i, res.Counts[i], ref.Counts[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestKernelInvarianceDAG covers the oriented-DAG clique path (the paper's
// clique workloads), including vertex-induced motifs on the symmetric side.
func TestKernelInvarianceDAG(t *testing.T) {
	g := graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 0x17).Orient()
	pl, err := plan.CompileCliqueDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Mine(g, pl, Options{Threads: 1, Kernel: KernelMergeOnly})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range allKernels {
		for _, slice := range []int{SliceOff, 0, 8, 64} {
			res, err := Mine(g, pl, Options{Threads: 8, Kernel: kernel, SliceElems: slice})
			if err != nil {
				t.Fatal(err)
			}
			if res.Count() != ref.Count() {
				t.Errorf("kernel=%v slice=%d: 4-CL=%d want %d", kernel, slice, res.Count(), ref.Count())
			}
		}
	}
}

// TestKernelInvarianceInduced exercises Disconnected sets (difference
// kernels) through vertex-induced motif plans.
func TestKernelInvarianceInduced(t *testing.T) {
	g := graph.ChungLu(400, 3200, 2.4, 9)
	pl, err := plan.CompileMotifs(4, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Mine(g, pl, Options{Threads: 1, Kernel: KernelMergeOnly})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range allKernels {
		res, err := Mine(g, pl, Options{Threads: 4, Kernel: kernel})
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Counts {
			if res.Counts[i] != ref.Counts[i] {
				t.Errorf("kernel=%v: motif[%d]=%d want %d", kernel, i, res.Counts[i], ref.Counts[i])
			}
		}
	}
}

// TestKernelStatsAttribution: the counters must attribute work to the kernel
// that did it — merge-only runs report no probes, and on a hubby power-law
// graph the auto policy must actually have used the fast kernels.
func TestKernelStatsAttribution(t *testing.T) {
	g := graph.ChungLu(1200, 14400, 2.2, 0x55) // dmax well above hubMinDegree
	pl, err := plan.Compile(pattern.KClique(4), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	merge, err := Mine(g, pl, Options{Threads: 2, Kernel: KernelMergeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if merge.Stats.GallopProbes != 0 || merge.Stats.BitmapProbes != 0 {
		t.Errorf("merge-only run reported probes: gallop=%d bitmap=%d",
			merge.Stats.GallopProbes, merge.Stats.BitmapProbes)
	}
	if merge.Stats.LeafCountsSkippedMaterialize == 0 {
		t.Error("count-only leaves never engaged")
	}
	auto, err := Mine(g, pl, Options{Threads: 2, Kernel: KernelAuto})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Stats.GallopProbes == 0 {
		t.Error("auto policy never galloped on a skewed power-law workload")
	}
	if auto.Stats.BitmapProbes == 0 {
		t.Error("auto policy never probed a hub bitmap")
	}
	if auto.Stats.SetOpIterations >= merge.Stats.SetOpIterations {
		t.Errorf("auto ran at least as many merge iterations (%d) as merge-only (%d)",
			auto.Stats.SetOpIterations, merge.Stats.SetOpIterations)
	}
	// Invariant plumbing: candidates and extensions are kernel-independent.
	if auto.Stats.Candidates != merge.Stats.Candidates || auto.Stats.Extensions != merge.Stats.Extensions {
		t.Errorf("search-shape stats drifted: auto cand/ext %d/%d, merge %d/%d",
			auto.Stats.Candidates, auto.Stats.Extensions, merge.Stats.Candidates, merge.Stats.Extensions)
	}
}

// TestListUnaffectedByKernel: the listing path (visitor set) must still
// materialize leaves and deliver every match under any kernel policy.
func TestListUnaffectedByKernel(t *testing.T) {
	g := graph.ChungLu(300, 2100, 2.3, 9)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Mine(g, pl, Options{Threads: 1, Kernel: KernelMergeOnly})
	if err != nil {
		t.Fatal(err)
	}
	for _, kernel := range allKernels {
		var visits int64
		res, err := List(g, pl, Options{Threads: 1, Kernel: kernel}, func(emb []graph.VID, _ int) {
			visits++
			if !g.Connected(emb[0], emb[1]) || !g.Connected(emb[1], emb[2]) || !g.Connected(emb[0], emb[2]) {
				t.Fatalf("kernel=%v: non-triangle embedding %v", kernel, emb)
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != ref.Count() || visits != ref.Count() {
			t.Errorf("kernel=%v: count=%d visits=%d want %d", kernel, res.Count(), visits, ref.Count())
		}
		if res.Stats.LeafCountsSkippedMaterialize != 0 {
			t.Errorf("kernel=%v: listing skipped materialization %d times",
				kernel, res.Stats.LeafCountsSkippedMaterialize)
		}
	}
}
