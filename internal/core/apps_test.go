package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

func TestStandardAppsRun(t *testing.T) {
	g := graph.ChungLu(120, 700, 2.4, 99)
	for _, app := range StandardApps() {
		counts, err := app.Run(g, Options{Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", app.Name, err)
		}
		if len(counts) == 0 {
			t.Errorf("%s: no counts", app.Name)
		}
	}
}

func TestAppByName(t *testing.T) {
	if _, err := AppByName("TC"); err != nil {
		t.Fatal(err)
	}
	if _, err := AppByName("nope"); err == nil {
		t.Error("unknown app accepted")
	}
}

func TestAppsOnKnownGraphs(t *testing.T) {
	// Petersen graph: girth 5 — no triangles, no 4-cycles; 12 5-cycles.
	petersen := graph.MustFromEdges(10, []graph.Edge{
		{U: 0, V: 1}, {U: 1, V: 2}, {U: 2, V: 3}, {U: 3, V: 4}, {U: 4, V: 0},
		{U: 5, V: 7}, {U: 7, V: 9}, {U: 9, V: 6}, {U: 6, V: 8}, {U: 8, V: 5},
		{U: 0, V: 5}, {U: 1, V: 6}, {U: 2, V: 7}, {U: 3, V: 8}, {U: 4, V: 9},
	})
	if tc, _ := TriangleCount(petersen, Options{}); tc != 0 {
		t.Errorf("petersen triangles = %d", tc)
	}
	if c4, _ := SubgraphListing(petersen, pattern.FourCycle(), Options{}); c4 != 0 {
		t.Errorf("petersen 4-cycles = %d", c4)
	}
	if c5, _ := SubgraphListing(petersen, pattern.KCycle(5), Options{}); c5 != 12 {
		t.Errorf("petersen 5-cycles = %d want 12", c5)
	}
	// K6: C(6,2) edges; wedges = 6·C(5,2) = 60; triangles = 20.
	k6 := graph.Clique(6)
	counts, motifs, err := MotifCounts(k6, 3, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, m := range motifs {
		want := int64(0)
		switch m.Name() {
		case "triangle":
			want = 20
		case "wedge":
			want = 0 // induced wedges don't exist in a clique
		}
		if counts[i] != want {
			t.Errorf("K6 %s = %d want %d", m.Name(), counts[i], want)
		}
	}
	// Grid 4x4: 9 unit squares + 4 2x2 squares... edge-induced 4-cycles in
	// a grid are exactly the unit faces plus larger rectangles; count via
	// brute force instead of hand-derivation.
	grid := graph.Grid(4, 4)
	want := BruteCount(grid, pattern.FourCycle(), false)
	if got, _ := SubgraphListing(grid, pattern.FourCycle(), Options{}); got != want {
		t.Errorf("grid 4-cycles = %d want %d", got, want)
	}
}

// randomConnectedPattern draws a connected pattern on k vertices.
func randomConnectedPattern(r *rand.Rand, k int) *pattern.Pattern {
	for {
		p := pattern.New(k)
		// Random spanning tree guarantees connectivity.
		for v := 1; v < k; v++ {
			p.AddEdge(v, r.Intn(v))
		}
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				if !p.HasEdge(u, v) && r.Intn(3) == 0 {
					p.AddEdge(u, v)
				}
			}
		}
		if p.IsConnected() {
			return p
		}
	}
}

// TestRandomPatternsMatchBruteForce is the strongest compiler test: random
// connected patterns (sizes 2–5), random graphs, both semantics, engine vs
// brute force.
func TestRandomPatternsMatchBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		p := randomConnectedPattern(r, k)
		n := k + r.Intn(18)
		var edges []graph.Edge
		m := r.Intn(3*n + 1)
		for i := 0; i < m; i++ {
			edges = append(edges, graph.Edge{U: graph.VID(r.Intn(n)), V: graph.VID(r.Intn(n))})
		}
		g := graph.MustFromEdges(n, edges)
		induced := r.Intn(2) == 0
		pl, err := plan.Compile(p, plan.Options{Induced: induced})
		if err != nil {
			return false
		}
		res, err := Mine(g, pl, Options{Threads: 2})
		if err != nil {
			return false
		}
		want := BruteCount(g, p, induced)
		if res.Count() != want {
			t.Logf("seed=%d pattern=%s induced=%v: engine=%d brute=%d\n%s",
				seed, p, induced, res.Count(), want, pl)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestRandomPatternsCMapAgree: the c-map paths agree with the plain path on
// random patterns too.
func TestRandomPatternsCMapAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 3 + r.Intn(3)
		p := randomConnectedPattern(r, k)
		g := graph.ChungLu(60, 250, 2.5, uint64(seed)+1)
		pl, err := plan.Compile(p, plan.Options{})
		if err != nil {
			return false
		}
		base, err := Mine(g, pl, Options{Threads: 2})
		if err != nil {
			return false
		}
		hm, err := Mine(g, pl, Options{Threads: 2, CMap: CMapHash, CMapBytes: 1 << 10})
		if err != nil {
			return false
		}
		return base.Count() == hm.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestObliviousEnumerationSizes: ESU must visit exactly the number of
// connected induced k-subgraphs (sum of motif counts).
func TestObliviousEnumerationSizes(t *testing.T) {
	g := graph.ErdosRenyi(40, 140, 5)
	for k := 3; k <= 4; k++ {
		obl := MineOblivious(g, k, 3)
		var wantTotal int64
		for _, c := range BruteMotifCensus(g, k) {
			wantTotal += c
		}
		if obl.Enumerated != wantTotal {
			t.Errorf("k=%d: ESU enumerated %d, brute total %d", k, obl.Enumerated, wantTotal)
		}
	}
}
