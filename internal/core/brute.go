package core

// Brute-force reference counters, used only as test oracles. They implement
// the textbook definitions directly:
//
//	edge-induced copies  = |{injective f: V(P)→V(G) preserving edges}| / |Aut(P)|
//	vertex-induced copies = same with non-edges preserved too
//
// Complexity is O(n^k); callers keep graphs tiny.

import (
	"repro/internal/graph"
	"repro/internal/pattern"
)

// BruteCount counts distinct copies of p in g. induced selects
// vertex-induced semantics.
func BruteCount(g *graph.Graph, p *pattern.Pattern, induced bool) int64 {
	k := p.Size()
	n := g.NumVertices()
	if k > n {
		return 0
	}
	maps := bruteEmbeddings(g, p, induced, k, n)
	return maps / int64(p.AutomorphismCount())
}

// bruteEmbeddings counts injective homomorphisms via straightforward
// backtracking over pattern vertices in label order.
func bruteEmbeddings(g *graph.Graph, p *pattern.Pattern, induced bool, k, n int) int64 {
	assign := make([]graph.VID, k)
	used := make(map[graph.VID]bool, k)
	var total int64
	var rec func(i int)
	rec = func(i int) {
		if i == k {
			total++
			return
		}
		for v := 0; v < n; v++ {
			w := graph.VID(v)
			if used[w] {
				continue
			}
			ok := true
			for j := 0; j < i && ok; j++ {
				pe := p.HasEdge(i, j)
				ge := g.Connected(assign[j], w)
				if pe && !ge {
					ok = false
				}
				if induced && !pe && ge {
					ok = false
				}
			}
			if !ok {
				continue
			}
			assign[i] = w
			used[w] = true
			rec(i + 1)
			used[w] = false
		}
	}
	rec(0)
	return total
}

// BruteMotifCensus counts every connected k-motif (vertex-induced) by brute
// force, returned in pattern.Motifs(k) order.
func BruteMotifCensus(g *graph.Graph, k int) []int64 {
	motifs := pattern.Motifs(k)
	out := make([]int64, len(motifs))
	for i, m := range motifs {
		out[i] = BruteCount(g, m, true)
	}
	return out
}
