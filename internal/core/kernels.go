package core

// Adaptive set-operation kernels for the CPU engine. The merge loop is the
// right cost model for the accelerator's SIU/SDU (one element per cycle,
// Fig 9) but a poor use of a CPU when operand sizes are skewed: power-law
// adjacency makes |candidates| ≪ deg(hub) the common case. The engine
// therefore picks, per chained set operation, among
//
//   - merge        — the classic two-pointer loop (SIU/SDU model),
//   - galloping    — iterate the small side, gallop a stateful cursor over
//     the large side (O(small·log gap), see setops.Seeker),
//   - hub bitmap   — one word probe per element against a precomputed dense
//     bitmap of a top-K-degree vertex (graph.HubIndex).
//
// All kernels compute bit-identical candidate sets, so mined counts are
// invariant under Options.Kernel (enforced by TestKernelInvariance). Kernel
// selection is a CPU-engine concern only: the simulator always charges
// merge-model SIU/SDU cycles regardless of this option (DESIGN.md "Software
// kernels vs SIU/SDU").

import (
	"fmt"

	"repro/internal/cmap"
	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/setops"
)

// KernelPolicy selects the CPU engine's set-operation kernels.
type KernelPolicy int

const (
	// KernelAuto (the default) picks per operation by operand shape:
	// galloping for skewed sizes, bitmap probes against indexed hubs, merge
	// otherwise.
	KernelAuto KernelPolicy = iota
	// KernelMergeOnly always runs the two-pointer merge loop — the exact
	// software model of the accelerator's SIU/SDU and the configuration of
	// the merge-based baselines (GraphZero/AutoMine).
	KernelMergeOnly
	// KernelGallop forces galloping whenever one operand is smaller,
	// without hub bitmaps (isolates the galloping win in A/B runs).
	KernelGallop
	// KernelBitmap uses hub bitmaps when available and merge otherwise,
	// without galloping (isolates the bitmap win in A/B runs).
	KernelBitmap
)

func (k KernelPolicy) String() string {
	switch k {
	case KernelAuto:
		return "auto"
	case KernelMergeOnly:
		return "merge"
	case KernelGallop:
		return "gallop"
	case KernelBitmap:
		return "bitmap"
	}
	return fmt.Sprintf("KernelPolicy(%d)", int(k))
}

// ParseKernelPolicy resolves a CLI/config spelling of a kernel policy.
func ParseKernelPolicy(s string) (KernelPolicy, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "merge", "merge-only":
		return KernelMergeOnly, nil
	case "gallop", "galloping":
		return KernelGallop, nil
	case "bitmap":
		return KernelBitmap, nil
	}
	return 0, fmt.Errorf("core: unknown kernel policy %q (want auto, merge, gallop, or bitmap)", s)
}

// gallopRatio is the size skew at which galloping beats merging under
// KernelAuto: iterate-and-gallop costs ≈ small·log(large/small) comparisons
// versus small+large for the merge loop, so 16× is comfortably past the
// crossover for the adjacency sizes the stand-ins produce.
const gallopRatio = 16

// kernelKind is the per-operation choice made by chooseKernel.
type kernelKind int

const (
	kMerge      kernelKind = iota
	kGallop                // iterate cur, gallop over adj
	kGallopSwap            // iterate adj, gallop over cur (intersection only)
	kBitmap                // probe adj's hub bitmap per cur element
)

// chooseKernel picks the kernel for one chained operation cur ∘ adj.
// hubBM is adj's dense bitmap (nil when the ancestor is not an indexed hub).
//
//flexlint:noalloc
func (w *worker) chooseKernel(curLen, adjLen int, hubBM []uint64, diff bool) kernelKind {
	switch w.o.Kernel {
	case KernelMergeOnly:
		return kMerge
	case KernelBitmap:
		if hubBM != nil {
			return kBitmap
		}
		return kMerge
	case KernelGallop:
		if !diff && adjLen < curLen {
			return kGallopSwap
		}
		if curLen < adjLen {
			return kGallop
		}
		return kMerge
	}
	// KernelAuto. A swapped gallop (iterate the adjacency, probe the
	// candidate list) only exists for intersection — difference is not
	// symmetric — and beats even a bitmap probe when adj is tiny.
	if !diff && adjLen*gallopRatio <= curLen {
		return kGallopSwap
	}
	if hubBM != nil {
		return kBitmap
	}
	if curLen*gallopRatio <= adjLen {
		return kGallop
	}
	return kMerge
}

// hubBitmap resolves the hub bitmap of an ancestor vertex under the active
// policy (nil when bitmaps are disabled or v is not an indexed hub).
//
//flexlint:noalloc
func (w *worker) hubBitmap(v graph.VID) []uint64 {
	if w.hub == nil {
		return nil
	}
	return w.hub.Bitmap(v)
}

// setOp appends (cur ∘ adj(anc)) bounded by bound to dst, where ∘ is
// intersection (diff=false) or difference (diff=true), dispatching to the
// policy-selected kernel and charging the matching Stats counter.
//
//flexlint:noalloc
func (w *worker) setOp(dst, cur []graph.VID, anc graph.VID, diff bool, bound graph.VID) []graph.VID {
	adj := w.g.Adj(anc)
	hubBM := w.hubBitmap(anc)
	var cost int64
	switch w.chooseKernel(len(cur), len(adj), hubBM, diff) {
	case kGallop:
		if diff {
			dst, cost = setops.DifferenceGallopingCost(dst, cur, adj, bound)
		} else {
			dst, cost = setops.IntersectGallopingCost(dst, cur, adj, bound)
		}
		w.stats.GallopProbes += cost
	case kGallopSwap:
		dst, cost = setops.IntersectGallopingCost(dst, adj, cur, bound)
		w.stats.GallopProbes += cost
	case kBitmap:
		if diff {
			dst, cost = setops.DifferenceBitmap(dst, cur, hubBM, bound)
		} else {
			dst, cost = setops.IntersectBitmap(dst, cur, hubBM, bound)
		}
		w.stats.BitmapProbes += cost
	default:
		if diff {
			dst, cost = setops.DifferenceCost(dst, cur, adj, bound)
		} else {
			dst, cost = setops.IntersectCost(dst, cur, adj, bound)
		}
		w.stats.SetOpIterations += cost
	}
	return dst
}

// setOpCount is setOp without materialization: it returns |cur ∘ adj(anc)|
// under bound. Used by the count-only leaf path for the final chained
// operation.
//
//flexlint:noalloc
func (w *worker) setOpCount(cur []graph.VID, anc graph.VID, diff bool, bound graph.VID) int64 {
	adj := w.g.Adj(anc)
	hubBM := w.hubBitmap(anc)
	var n, cost int64
	switch w.chooseKernel(len(cur), len(adj), hubBM, diff) {
	case kGallop:
		if diff {
			n, cost = setops.DifferenceGallopingCount(cur, adj, bound)
		} else {
			n, cost = setops.IntersectGallopingCount(cur, adj, bound)
		}
		w.stats.GallopProbes += cost
	case kGallopSwap:
		n, cost = setops.IntersectGallopingCount(adj, cur, bound)
		w.stats.GallopProbes += cost
	case kBitmap:
		if diff {
			n, cost = setops.DifferenceBitmapCount(cur, hubBM, bound)
		} else {
			n, cost = setops.IntersectBitmapCount(cur, hubBM, bound)
		}
		w.stats.BitmapProbes += cost
	default:
		if diff {
			n, cost = setops.DifferenceCountCost(cur, adj, bound)
		} else {
			n, cost = setops.IntersectCountCost(cur, adj, bound)
		}
		w.stats.SetOpIterations += cost
	}
	return n
}

// leafCount computes the qualified-candidate count for a leaf op without
// materializing w.levels[depth] — the count-only leaf kernel. It mirrors
// candidates() exactly: same base resolution, same c-map coverage decision,
// same chained operations; only the final operation runs as a counting
// kernel and the distinctness filter becomes a membership adjustment.
//
//flexlint:noalloc
func (w *worker) leafCount(op plan.VertexOp, depth int) int64 {
	bound := w.bound(op)
	base, intersect, difference := w.baseFor(op, depth, bound)
	if w.cmapCovers(intersect, difference) {
		return w.countViaCMap(base, op, intersect, difference)
	}
	nOps := len(intersect) + len(difference)
	if nOps == 0 {
		// Plain adjacency/frontier leaf: the count is the bounded length
		// minus excluded ancestors present in it.
		cnt := int64(len(base))
		for _, j := range op.NotEqual {
			if v := w.emb[j]; v < bound && setops.Contains(base, v) {
				cnt--
			}
		}
		return cnt
	}

	// Materialize every chained operation except the last, then count.
	cur := base
	useA := true
	step := func(j int, diff bool) {
		dst := w.mergeB[:0]
		if useA {
			dst = w.mergeA[:0]
		}
		dst = w.setOp(dst, cur, w.emb[j], diff, bound)
		if useA {
			w.mergeA = dst
		} else {
			w.mergeB = dst
		}
		cur = dst
		useA = !useA
	}
	lastIdx, lastDiff := 0, false
	if len(difference) > 0 {
		lastIdx, lastDiff = difference[len(difference)-1], true
		difference = difference[:len(difference)-1]
	} else {
		lastIdx = intersect[len(intersect)-1]
		intersect = intersect[:len(intersect)-1]
	}
	for _, j := range intersect {
		step(j, false)
	}
	for _, j := range difference {
		step(j, true)
	}
	last := w.emb[lastIdx]
	cnt := w.setOpCount(cur, last, lastDiff, bound)

	// Distinctness adjustment: emb[j] is in the counted set iff it survived
	// the materialized prefix (∈ cur), the final operation, and the bound.
	lastAdj := w.g.Adj(last)
	for _, j := range op.NotEqual {
		v := w.emb[j]
		if v >= bound || !setops.Contains(cur, v) {
			continue
		}
		in := setops.Contains(lastAdj, v)
		if lastDiff {
			in = !in
		}
		if in {
			cnt--
		}
	}
	return cnt
}

// countViaCMap is filterViaCMap without materialization: identical c-map
// lookups (so c-map statistics stay invariant), summed instead of appended.
//
//flexlint:noalloc
func (w *worker) countViaCMap(base []graph.VID, op plan.VertexOp, intersect, difference []int) int64 {
	var need, avoid cmap.Bits
	for _, j := range intersect {
		need |= 1 << uint(j)
	}
	for _, j := range difference {
		avoid |= 1 << uint(j)
	}
	var cnt int64
	for _, v := range base {
		bits := w.cm.Lookup(v)
		if bits&need != need || bits&avoid != 0 {
			continue
		}
		if !w.distinct(v, op) {
			continue
		}
		cnt++
	}
	return cnt
}
