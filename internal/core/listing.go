package core

// Embedding listing. The counting engine stops at leaf candidate lists (the
// last-level optimization); subgraph *listing* (SL proper) materializes each
// match. The visitor runs inside the worker, so it must be fast and must not
// retain the embedding slice.

import (
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/plan"
)

// Visitor receives one embedding per match: emb[i] is the data vertex
// matched at plan level i, and patternIdx indexes Plan.Patterns. The slice
// is reused; copy it to retain. Visitors may be called concurrently from
// different workers.
type Visitor func(emb []graph.VID, patternIdx int)

// List enumerates every match of the plan in g, invoking visit once per
// embedding, and returns the per-pattern counts (which always equal Mine's).
// Listing plans must use symmetry breaking (CountDivisor 1), since an
// automorphism-deduplicating visitor cannot be synthesized generically.
func List(g *graph.Graph, pl *plan.Plan, o Options, visit Visitor) (Result, error) {
	e, err := NewEngine(g, pl, o)
	if err != nil {
		return Result{}, err
	}
	for i, d := range pl.CountDivisor {
		if d != 1 {
			return Result{}, errDivisor(pl.Patterns[i].Name())
		}
	}
	return e.mineVisit(visit), nil
}

type errDivisor string

func (e errDivisor) Error() string {
	return "core: listing requires a symmetry-broken plan (pattern " + string(e) + ")"
}

// mineVisit is Engine.Mine with a leaf visitor.
func (e *Engine) mineVisit(visit Visitor) Result {
	n := e.g.NumVertices()
	threads := e.o.Threads
	if threads > n && n > 0 {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	var next int64
	const chunk = 16
	results := make([]Result, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			w := newWorker(e.g, e.pl, e.o)
			w.visit = visit
			for {
				start := atomic.AddInt64(&next, chunk) - chunk
				if start >= int64(n) {
					break
				}
				end := start + chunk
				if end > int64(n) {
					end = int64(n)
				}
				for v := start; v < end; v++ {
					w.runTask(graph.VID(v))
				}
			}
			results[t] = Result{Counts: w.counts, Stats: w.stats}
		}(t)
	}
	wg.Wait()
	total := Result{Counts: make([]int64, len(e.pl.Patterns))}
	for _, r := range results {
		for i, c := range r.Counts {
			total.Counts[i] += c
		}
		total.Stats.add(&r.Stats)
	}
	return total
}
