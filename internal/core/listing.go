package core

// Embedding listing. The counting engine stops at leaf candidate lists (the
// last-level optimization); subgraph *listing* (SL proper) materializes each
// match. The visitor runs inside the worker, so it must be fast and must not
// retain the embedding slice. Listing rides the same task-scheduling runtime
// as counting (internal/sched): hub slicing, degree-descending seeding, work
// stealing and context cancellation all apply.

import (
	"context"

	"repro/internal/graph"
	"repro/internal/plan"
)

// Visitor receives one embedding per match: emb[i] is the data vertex
// matched at plan level i, and patternIdx indexes Plan.Patterns. The slice
// is reused; copy it to retain. Visitors may be called concurrently from
// different workers.
type Visitor func(emb []graph.VID, patternIdx int)

// List enumerates every match of the plan in g, invoking visit once per
// embedding, and returns the per-pattern counts (which always equal Mine's).
// Listing plans must use symmetry breaking (CountDivisor 1), since an
// automorphism-deduplicating visitor cannot be synthesized generically.
func List(g graph.Store, pl *plan.Plan, o Options, visit Visitor) (Result, error) {
	return ListContext(context.Background(), g, pl, o, visit)
}

// ListContext is List under a context: once ctx is cancelled the enumeration
// stops promptly, returning the partial counts alongside ctx's error. Every
// embedding delivered to visit before that point was a genuine match.
func ListContext(ctx context.Context, g graph.Store, pl *plan.Plan, o Options, visit Visitor) (Result, error) {
	e, err := NewEngine(g, pl, o)
	if err != nil {
		return Result{}, err
	}
	for i, d := range pl.CountDivisor {
		if d != 1 {
			return Result{}, errDivisor(pl.Patterns[i].Name())
		}
	}
	return e.mine(ctx, visit)
}

type errDivisor string

func (e errDivisor) Error() string {
	return "core: listing requires a symmetry-broken plan (pattern " + string(e) + ")"
}
