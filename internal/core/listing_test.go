package core

import (
	"sort"
	"sync"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// canonicalizeEmbedding turns an embedding into a sorted-vertex key so
// listings can be compared as sets of subgraphs.
func canonicalizeEmbedding(emb []graph.VID) [8]graph.VID {
	var key [8]graph.VID
	s := append([]graph.VID(nil), emb...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	copy(key[:], s)
	return key
}

// TestListingMatchesCounting: List must visit exactly Count() embeddings,
// each a genuine match, each subgraph at most once for vertex-determined
// patterns (cliques, cycles).
func TestListingMatchesCounting(t *testing.T) {
	g := graph.ErdosRenyi(40, 160, 31)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.FourCycle(), pattern.KClique(4), pattern.Diamond()} {
		pl, err := plan.Compile(p, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		var seen []([]graph.VID)
		res, err := List(g, pl, Options{Threads: 4}, func(emb []graph.VID, idx int) {
			cp := append([]graph.VID(nil), emb...)
			mu.Lock()
			seen = append(seen, cp)
			mu.Unlock()
		})
		if err != nil {
			t.Fatal(err)
		}
		if int64(len(seen)) != res.Count() {
			t.Errorf("%s: visited %d, counted %d", p.Name(), len(seen), res.Count())
		}
		base, err := Mine(g, pl, Options{Threads: 4})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != base.Count() {
			t.Errorf("%s: listing count %d != mining count %d", p.Name(), res.Count(), base.Count())
		}
		// Every visited embedding must actually match the pattern
		// edge-wise, with distinct vertices.
		q := relabelForCheck(p)
		for _, emb := range seen {
			verifyEmbedding(t, g, q, emb)
		}
		// Cliques are vertex-determined: vertex sets must be unique.
		if p.IsClique() {
			keys := map[[8]graph.VID]bool{}
			for _, emb := range seen {
				k := canonicalizeEmbedding(emb)
				if keys[k] {
					t.Errorf("%s: duplicate subgraph %v", p.Name(), emb)
				}
				keys[k] = true
			}
		}
	}
}

// relabelForCheck reproduces the compiler's level labeling so embeddings can
// be validated edge-by-edge.
func relabelForCheck(p *pattern.Pattern) *pattern.Pattern {
	// The plan matches pattern vertex order[i] at level i; rebuild that
	// relabeled pattern via the exported compile path: recompile and read
	// the connectivity from the ops.
	pl, err := plan.Compile(p, plan.Options{})
	if err != nil {
		panic(err)
	}
	q := pattern.New(p.Size())
	for _, op := range pl.Chain() {
		if op.Level == 0 {
			continue
		}
		q.AddEdge(op.Level, op.Extender)
		for _, j := range op.Connected {
			q.AddEdge(op.Level, j)
		}
	}
	return q
}

func verifyEmbedding(t *testing.T, g *graph.Graph, q *pattern.Pattern, emb []graph.VID) {
	t.Helper()
	for i := 0; i < len(emb); i++ {
		for j := 0; j < i; j++ {
			if emb[i] == emb[j] {
				t.Fatalf("embedding %v repeats a vertex", emb)
			}
			if q.HasEdge(i, j) && !g.Connected(emb[i], emb[j]) {
				t.Fatalf("embedding %v misses edge (%d,%d)", emb, i, j)
			}
		}
	}
}

// TestListingMultiPattern routes embeddings to the right pattern index.
func TestListingMultiPattern(t *testing.T) {
	g := graph.ErdosRenyi(30, 110, 33)
	ps := []*pattern.Pattern{pattern.Diamond(), pattern.TailedTriangle()}
	pl, err := plan.CompileMulti(ps, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	perPattern := make([]int64, len(ps))
	res, err := List(g, pl, Options{Threads: 3}, func(emb []graph.VID, idx int) {
		mu.Lock()
		perPattern[idx]++
		mu.Unlock()
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range ps {
		if perPattern[i] != res.Counts[i] {
			t.Errorf("%s: visited %d counted %d", ps[i].Name(), perPattern[i], res.Counts[i])
		}
	}
}

// TestListingRejectsNoSymmetryPlans: listing through an automorphism-divided
// plan would emit duplicates; the API must refuse.
func TestListingRejectsNoSymmetryPlans(t *testing.T) {
	g := graph.Clique(5)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{NoSymmetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := List(g, pl, Options{}, func([]graph.VID, int) {}); err == nil {
		t.Error("no-symmetry plan accepted for listing")
	}
}
