// Package core contains the paper's algorithmic core running on the CPU: the
// plan-driven pattern-aware DFS engine (the software baseline FlexMiner is
// compared against — GraphZero [57] with symmetry breaking and frontier
// memoization, or AutoMine [58] when the plan is compiled without symmetry),
// plus the pattern-oblivious ESU engine and a brute-force reference counter
// used as test oracles, and the four GPM applications of §II-A.
package core

import (
	"context"
	"fmt"
	"runtime"

	"repro/internal/cmap"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/setops"
)

// CMapMode selects the connectivity-map implementation used by the engine.
type CMapMode int

const (
	// CMapNone performs all connectivity checks with merge-based set
	// operations (the GraphZero baseline configuration).
	CMapNone CMapMode = iota
	// CMapVector uses the dense |V|-sized software c-map of prior work.
	CMapVector
	// CMapHash uses the paper's banked linear-probing hash map model, with
	// overflow fallback to set operations.
	CMapHash
)

// SliceOff disables hub-vertex task slicing (Options.SliceElems).
const SliceOff = -1

// autoSliceElems is the slice width the auto policy picks for parallel
// runs; it matches the accelerator harness (bench.SimConfig) so baseline
// and simulator schedules stay comparable.
const autoSliceElems = 32

// Options configure a mining run.
type Options struct {
	// Threads is the worker count; 0 means GOMAXPROCS. The paper's CPU
	// baseline runs 20 threads.
	Threads int

	// SliceElems controls hub-vertex task slicing (§IV task dispatch): a
	// start vertex whose adjacency exceeds this many elements is split into
	// several independent sub-tasks, so one power-law hub cannot serialize
	// a worker. 0 (the default) picks automatically — slicing at
	// autoSliceElems for parallel runs, none single-threaded; SliceOff
	// disables slicing; any positive value is used as-is. Counts are
	// invariant under slicing; only scheduling (and Stats.Tasks) changes.
	SliceElems int

	// CMap selects the connectivity-map mode (default CMapNone).
	CMap CMapMode

	// CMapBytes sizes the hash c-map (default 8 kB, the paper's choice);
	// only used with CMapHash.
	CMapBytes int

	// CMapBanks is the hash c-map bank count (default 4).
	CMapBanks int

	// Kernel selects the set-operation kernels (default KernelAuto:
	// input-aware galloping/bitmap/merge selection). Counts are invariant
	// under this policy; only CPU wall-clock and the per-kernel Stats
	// counters change. The simulator ignores it — SIU/SDU cycle accounting
	// is always merge-model (see kernels.go).
	Kernel KernelPolicy

	// HubBitmaps caps how many top-degree vertices get precomputed dense
	// adjacency bitmaps (KernelAuto/KernelBitmap only). 0 picks
	// graph.DefaultHubBitmaps; negative disables the index.
	HubBitmaps int

	// AuxGraph enables plan-directed auxiliary graphs (default AuxOff, see
	// aux.go): materialize the pruned adjacency row of a deep op's extender
	// once per shallow activation and substitute it for the full Adj row in
	// every descendant lookup. Counts are invariant under this mode; only
	// CPU wall-clock and the Aux* Stats counters change. The simulator
	// ignores it — cycle accounting never reads the aux directives — and the
	// paper-figure runners pin it off (enforced by the kernelpin analyzer).
	AuxGraph AuxMode

	// Trace, when non-nil, receives scheduler events (task completions,
	// work steals) and per-task kernel-dispatch summaries. Tracing never
	// changes counts, stats, or scheduling — a nil Trace costs each task one
	// pointer test. With >1 threads, event interleaving (and therefore
	// virtual-clock timestamps) is schedule-dependent; byte-stable traces
	// come from the simulator, whose coordinator serializes emission.
	Trace *obs.Tracer

	// ShardOblivious disables shard-local task placement for sharded stores:
	// tasks are dealt round-robin across all workers regardless of which
	// shard owns their start vertex, exactly like a non-sharded run. Counts
	// and Stats are invariant under this switch — only steal traffic (and
	// wall-clock) changes — so it is the baseline leg of locality A/Bs
	// (experiments bench-storage). Ignored for non-sharded stores.
	ShardOblivious bool

	// SchedHooks observe the work-stealing scheduler (steals, task
	// retirements) during the run — the live-progress feed of serve mode.
	// Callbacks run on worker goroutines and are merged with (fire before)
	// the tracer's own steal instrumentation; like tracing, they must not
	// mutate engine state and never affect counts or stats.
	SchedHooks sched.Hooks

	// OnTaskDone, when non-nil, fires after every completed task with the
	// worker index and the number of raw (pre-divisor) matches the task
	// produced — the partial-count signal behind /debug/progress. It runs
	// on worker goroutines; implementations must be cheap and
	// concurrency-safe (atomics).
	OnTaskDone func(worker int, matches int64)
}

func (o Options) withDefaults() Options {
	if o.Threads <= 0 {
		o.Threads = runtime.GOMAXPROCS(0)
	}
	if o.CMapBytes <= 0 {
		o.CMapBytes = 8 << 10
	}
	if o.CMapBanks <= 0 {
		o.CMapBanks = 4
	}
	return o
}

// Stats aggregates per-run instrumentation. The three kernel counters
// attribute set-operation work to the kernel that did it, so -kernel A/B
// runs are comparable: SetOpIterations counts only merge-loop iterations
// actually executed (the SIU/SDU work proxy), GallopProbes counts galloping
// element comparisons, and BitmapProbes counts hub-bitmap word probes.
type Stats struct {
	Tasks           int64 // scheduled tasks executed (sub-tasks when slicing)
	Extensions      int64 // vertices pushed onto ancestor stacks
	Candidates      int64 // candidates emitted after pruning
	SetOpIterations int64 // merge-loop iterations (SIU/SDU work proxy)
	GallopProbes    int64 // galloping-kernel element comparisons
	BitmapProbes    int64 // hub-bitmap word probes
	FrontierReuses  int64 // candidate lists built from a memoized frontier

	// LeafCountsSkippedMaterialize counts leaf evaluations that produced
	// their count via a counting kernel without materializing the
	// candidate list (the count-only leaf optimization).
	LeafCountsSkippedMaterialize int64

	// Auxiliary-graph counters (Options.AuxGraph, aux.go): rows
	// materialized into the arena, lookups served from a live row, and
	// activations the auto cost model declined.
	AuxBuilt            int64
	AuxReused           int64
	AuxSkippedCostModel int64

	// AuxBytesPeak is the largest number of live auxiliary-row bytes any
	// single task reached. Workers run tasks concurrently, so peaks merge by
	// max, not sum — a sum would depend on which worker ran which task.
	AuxBytesPeak int64

	CMap cmap.Stats
}

func (s *Stats) add(o *Stats) {
	s.Tasks += o.Tasks
	s.Extensions += o.Extensions
	s.Candidates += o.Candidates
	s.SetOpIterations += o.SetOpIterations
	s.GallopProbes += o.GallopProbes
	s.BitmapProbes += o.BitmapProbes
	s.FrontierReuses += o.FrontierReuses
	s.LeafCountsSkippedMaterialize += o.LeafCountsSkippedMaterialize
	s.AuxBuilt += o.AuxBuilt
	s.AuxReused += o.AuxReused
	s.AuxSkippedCostModel += o.AuxSkippedCostModel
	if o.AuxBytesPeak > s.AuxBytesPeak {
		s.AuxBytesPeak = o.AuxBytesPeak
	}
	s.CMap.Add(o.CMap)
}

// Result is the outcome of a mining run: one count per plan pattern.
type Result struct {
	Counts []int64
	Stats  Stats
}

// Count returns the single-pattern count, or 0 when the run produced no
// counts (a cancelled run, or an empty multi-pattern plan).
func (r Result) Count() int64 {
	if len(r.Counts) == 0 {
		return 0
	}
	return r.Counts[0]
}

// Engine mines a graph according to a compiled plan.
type Engine struct {
	g  graph.Store
	pl *plan.Plan
	o  Options
}

// NewEngine validates the plan/graph pairing and returns an engine. Under a
// bitmap-capable kernel policy this also builds (or reuses) the graph's
// hub-adjacency bitmap index, so the one-time build cost is paid at engine
// construction, not inside the mining hot path.
func NewEngine(g graph.Store, pl *plan.Plan, o Options) (*Engine, error) {
	if err := pl.Validate(); err != nil {
		return nil, err
	}
	if pl.RequiresDAG && !g.IsDAG() {
		return nil, fmt.Errorf("core: plan %q requires an oriented DAG input (use graph.Orient)", pl.Patterns[0].Name())
	}
	if !pl.RequiresDAG && g.IsDAG() {
		return nil, fmt.Errorf("core: plan %q requires a symmetric graph, got a DAG", pl.Patterns[0].Name())
	}
	o = o.withDefaults()
	hubIndexFor(g, o)
	return &Engine{g: g, pl: pl, o: o}, nil
}

// hubIndexFor resolves the hub-bitmap index the options call for: nil when
// the policy never probes bitmaps or the index is disabled, or when the
// store cannot host one; the store's shared (lazily built) index otherwise.
// All built-in backends implement graph.HubIndexer with one shared build
// routine, so engine statistics stay invariant across storage backends.
func hubIndexFor(g graph.Store, o Options) *graph.HubIndex {
	if o.HubBitmaps < 0 || (o.Kernel != KernelAuto && o.Kernel != KernelBitmap) {
		return nil
	}
	hi, ok := g.(graph.HubIndexer)
	if !ok {
		return nil
	}
	return hi.EnsureHubIndex(o.HubBitmaps)
}

// sliceElems resolves the slicing policy against the engine's input graph.
func (e *Engine) sliceElems() int {
	switch {
	case e.o.SliceElems > 0:
		return e.o.SliceElems
	case e.o.SliceElems < 0:
		return 0
	}
	// Auto: a lone worker gains nothing from sub-vertex tasks, and slicing
	// only matters when hubs exist at all.
	if e.o.Threads <= 1 || e.g.MaxDegree() <= autoSliceElems {
		return 0
	}
	return autoSliceElems
}

// TaskCount reports how many scheduler tasks a Mine call will dispatch under
// the engine's slicing policy — serve mode uses it to size the
// /debug/progress denominator before the run starts.
func (e *Engine) TaskCount() int {
	return len(sched.Expand(e.g, e.sliceElems()))
}

// Mine runs the parallel DFS over all start vertices and returns per-pattern
// counts. It is MineContext without cancellation.
func (e *Engine) Mine() Result {
	r, _ := e.mine(context.Background(), nil)
	return r
}

// MineContext is Mine under a context: the run stops promptly once ctx is
// cancelled or its deadline passes, returning the partial counts and stats
// accumulated so far together with ctx's error.
func (e *Engine) MineContext(ctx context.Context) (Result, error) {
	return e.mine(ctx, nil)
}

// mine is the shared execution path of Mine, MineContext, List and
// ListContext: expand the vertex set into (possibly hub-sliced) tasks, seed
// them degree-descending, and drain them with the work-stealing scheduler.
func (e *Engine) mine(ctx context.Context, visit Visitor) (Result, error) {
	tasks := sched.Expand(e.g, e.sliceElems())
	sched.OrderByDegreeDesc(e.g, tasks)
	threads := e.o.Threads
	if threads > len(tasks) && len(tasks) > 0 {
		threads = len(tasks)
	}
	if threads < 1 {
		threads = 1
	}
	workers := make([]*worker, threads)
	for t := range workers {
		workers[t] = newWorker(e.g, e.pl, e.o)
		workers[t].visit = visit
		workers[t].ctxDone = ctx.Done()
		workers[t].widx = t
	}
	hooks := e.o.SchedHooks
	if tr := e.o.Trace; tr.Enabled() {
		prev := hooks.OnSteal
		hooks.OnSteal = func(thief, victim, ntasks int) {
			if prev != nil {
				prev(thief, victim, ntasks)
			}
			tr.Emit(obs.CatSched, "steal", thief, 0,
				obs.Arg{Key: "victim", Val: int64(victim)},
				obs.Arg{Key: "tasks", Val: int64(ntasks)})
		}
	}
	onDone := e.o.OnTaskDone
	run := func(t int, task sched.Task) bool {
		w := workers[t]
		if onDone == nil {
			return w.runTask(task)
		}
		var before int64
		for _, c := range w.counts {
			before += c
		}
		ok := w.runTask(task)
		var after int64
		for _, c := range w.counts {
			after += c
		}
		onDone(t, after-before)
		return ok
	}
	var err error
	if sm, ok := e.g.(sched.ShardMap); ok && sm.NumShards() > 1 {
		// Sharded store: seed each root task onto the worker group bound to
		// its start vertex's shard so a task's first adjacency read stays in
		// local pages, and steal cross-group only as a last resort. Counts
		// and Stats are placement-invariant; only steal traffic changes.
		err = sched.RunSharded(ctx, threads, tasks,
			sched.ShardOptions{Map: sm, Oblivious: e.o.ShardOblivious}, run, hooks)
	} else {
		err = sched.RunHooked(ctx, threads, tasks, run, hooks)
	}
	total := Result{Counts: make([]int64, len(e.pl.Patterns))}
	for _, w := range workers {
		for i, c := range w.counts {
			total.Counts[i] += c
		}
		total.Stats.add(&w.stats)
	}
	for i := range total.Counts {
		total.Counts[i] /= e.pl.CountDivisor[i]
	}
	return total, err
}

// Mine is the convenience one-shot: build an engine and run it.
func Mine(g graph.Store, pl *plan.Plan, o Options) (Result, error) {
	e, err := NewEngine(g, pl, o)
	if err != nil {
		return Result{}, err
	}
	return e.Mine(), nil
}

// MineContext is the one-shot with cancellation/deadline support; on ctx
// expiry it returns the partial counts mined so far plus ctx's error.
func MineContext(ctx context.Context, g graph.Store, pl *plan.Plan, o Options) (Result, error) {
	e, err := NewEngine(g, pl, o)
	if err != nil {
		return Result{}, err
	}
	return e.MineContext(ctx)
}

// worker holds the per-thread DFS state: the ancestor stack, per-level
// candidate buffers (which double as memoized frontiers), and the c-map.
type worker struct {
	g  graph.Store
	pl *plan.Plan
	o  Options

	emb       []graph.VID   // ancestor stack
	levels    [][]graph.VID // per-level candidate buffers / frontiers
	mergeA    []graph.VID   // ping-pong scratch for chained set operations
	mergeB    []graph.VID
	hub       *graph.HubIndex // shared hub-adjacency bitmaps (nil if unused)
	cm        cmap.Map
	cmLevelOK []bool // c-map insertion succeeded at level (no overflow)

	// Auxiliary-graph runtime (aux.go): one pooled state per plan.AuxSpec
	// (nil when the mode or plan disable the layer), the static cost gate,
	// and the live-row byte ledger behind Stats.AuxBytesPeak.
	aux     []auxState
	auxGate []bool
	auxLive int64

	// sliceLo/sliceHi restrict the current task's level-1 adjacency range
	// (hub slicing; sliceHi < 0 means unrestricted).
	sliceLo, sliceHi int

	counts []int64
	stats  Stats

	// trace receives this worker's per-task events (nil when disabled);
	// widx is the worker index used as the trace thread id.
	trace *obs.Tracer
	widx  int

	// Cooperative cancellation: ctxDone is polled every cancelPollPeriod
	// extensions; once it fires, stopped short-circuits the DFS.
	ctxDone    <-chan struct{}
	stopped    bool
	cancelPoll uint

	// visit, when set, is invoked once per full match instead of bulk
	// leaf counting (see List).
	visit Visitor
}

// cancelPollPeriod spaces the cancellation polls (a power of two): frequent
// enough to abandon a hub subtree within microseconds, rare enough to stay
// off the extension hot path.
const cancelPollPeriod = 1 << 10

// cancelled polls the run's cancellation signal at most once per
// cancelPollPeriod calls and latches the result into w.stopped.
//
//flexlint:noalloc
func (w *worker) cancelled() bool {
	if w.stopped {
		return true
	}
	if w.cancelPoll++; w.cancelPoll&(cancelPollPeriod-1) != 0 || w.ctxDone == nil {
		return false
	}
	select {
	case <-w.ctxDone:
		w.stopped = true
	default:
	}
	return w.stopped
}

func newWorker(g graph.Store, pl *plan.Plan, o Options) *worker {
	w := &worker{
		g:         g,
		pl:        pl,
		o:         o,
		emb:       make([]graph.VID, pl.K),
		levels:    make([][]graph.VID, pl.K),
		hub:       hubIndexFor(g, o),
		cmLevelOK: make([]bool, pl.K),
		counts:    make([]int64, len(pl.Patterns)),
		trace:     o.Trace,
	}
	for i := range w.levels {
		w.levels[i] = make([]graph.VID, 0, g.MaxDegree())
	}
	// Pre-size the chained-merge scratch to the largest possible operand so
	// the first hub task doesn't regrow it inside the DFS hot path.
	w.mergeA = make([]graph.VID, 0, g.MaxDegree())
	w.mergeB = make([]graph.VID, 0, g.MaxDegree())
	w.aux, w.auxGate = newAuxStates(g, pl, o)
	switch o.CMap {
	case CMapVector:
		w.cm = cmap.NewVector(g.NumVertices())
	case CMapHash:
		w.cm = cmap.NewHashMapBytes(o.CMapBytes, o.CMapBanks)
	}
	return w
}

// runTask explores the subtree rooted at the task's start vertex (restricted
// to its level-1 adjacency slice when the task is a hub sub-task) and reports
// whether the worker may continue (false once cancellation latched).
//
//flexlint:noalloc
func (w *worker) runTask(t sched.Task) bool {
	var before Stats
	if w.trace.Enabled() {
		before = w.stats
	}
	w.stats.Tasks++
	root := w.pl.Root
	w.emb[0] = t.V0
	w.sliceLo, w.sliceHi = t.Lo, t.Hi
	w.stats.Extensions++
	inserted := w.cmapInsert(root.Op, 0, t.V0)
	w.auxActivate(root.Op)
	for _, c := range root.Children {
		w.walk(c, 1)
	}
	w.auxRelease(root.Op)
	if inserted {
		// Self-cleaning during backtracking (§VI): removing the root level
		// leaves the map empty for the next task.
		w.cmapRemove(root.Op, 0, t.V0)
	}
	if w.trace.Enabled() {
		w.emitTaskTrace(t, &before)
	}
	return !w.stopped
}

// emitTaskTrace records the finished task and its kernel-dispatch summary:
// one sched event per task, plus one kernel event attributing the task's
// set-operation work to the kernels that executed it (the delta of the
// per-kernel Stats counters across the task).
func (w *worker) emitTaskTrace(t sched.Task, before *Stats) {
	w.trace.Emit(obs.CatSched, "task", w.widx, 0,
		obs.Arg{Key: "v0", Val: int64(t.V0)},
		obs.Arg{Key: "extensions", Val: w.stats.Extensions - before.Extensions},
		obs.Arg{Key: "candidates", Val: w.stats.Candidates - before.Candidates})
	w.trace.Emit(obs.CatKernel, "dispatch", w.widx, 0,
		obs.Arg{Key: "merge_iters", Val: w.stats.SetOpIterations - before.SetOpIterations},
		obs.Arg{Key: "gallop_probes", Val: w.stats.GallopProbes - before.GallopProbes},
		obs.Arg{Key: "bitmap_probes", Val: w.stats.BitmapProbes - before.BitmapProbes})
}

// walk matches the vertex for node n at the given depth and recurses.
//
//flexlint:noalloc
func (w *worker) walk(n *plan.Node, depth int) {
	if w.stopped {
		return
	}
	if n.IsLeaf() && w.visit == nil && !n.Op.MemoizeFrontier {
		// Count-only leaf: nothing below this level reads the candidate
		// list, so compute its size with a counting kernel instead of
		// materializing w.levels[depth] just to take the length.
		cnt := w.leafCount(n.Op, depth)
		w.stats.Candidates += cnt
		w.stats.LeafCountsSkippedMaterialize++
		w.counts[n.PatternIdx] += cnt
		return
	}
	cands := w.candidates(n.Op, depth)
	w.stats.Candidates += int64(len(cands))
	if n.IsLeaf() {
		w.counts[n.PatternIdx] += int64(len(cands))
		if w.visit != nil {
			for _, v := range cands {
				w.emb[depth] = v
				w.visit(w.emb[:depth+1], n.PatternIdx)
			}
		}
		return
	}
	for _, v := range cands {
		if w.cancelled() {
			return
		}
		w.emb[depth] = v
		w.stats.Extensions++
		inserted := w.cmapInsert(n.Op, depth, v)
		w.auxActivate(n.Op)
		for _, c := range n.Children {
			w.walk(c, depth+1)
		}
		w.auxRelease(n.Op)
		if inserted {
			w.cmapRemove(n.Op, depth, v)
		}
	}
}

//flexlint:noalloc
func (w *worker) cmapInsert(op plan.VertexOp, depth int, v graph.VID) bool {
	if w.cm == nil || !op.InsertCMap {
		return false
	}
	ok := w.cm.TryInsertLevel(w.g.Adj(v), depth, w.cmapBound(op))
	w.cmLevelOK[depth] = ok
	return ok
}

//flexlint:noalloc
func (w *worker) cmapRemove(op plan.VertexOp, depth int, v graph.VID) {
	w.cm.RemoveLevel(w.g.Adj(v), depth, w.cmapBound(op))
	w.cmLevelOK[depth] = false
}

//flexlint:noalloc
func (w *worker) cmapBound(op plan.VertexOp) graph.VID {
	if op.CMapBound == plan.NoLevel {
		return cmap.NoBound
	}
	return w.emb[op.CMapBound]
}

// bound returns the effective ID upper bound: the minimum over the op's
// symmetry-order bounds, or NoBound.
//
//flexlint:noalloc
func (w *worker) bound(op plan.VertexOp) graph.VID {
	b := setops.NoBound
	for _, idx := range op.UpperBounds {
		if v := w.emb[idx]; v < b {
			b = v
		}
	}
	return b
}

// candidates computes the qualified candidate list for op into the per-level
// buffer, applying (in order) the frontier/adjacency base, the symmetry
// bound, connectivity constraints (via c-map queries when covered, set
// operations otherwise) and explicit distinctness checks.
//
//flexlint:noalloc
func (w *worker) candidates(op plan.VertexOp, depth int) []graph.VID {
	bound := w.bound(op)
	base, intersect, difference := w.baseFor(op, depth, bound)
	out := w.levels[depth][:0]
	if w.cmapCovers(intersect, difference) {
		out = w.filterViaCMap(out, base, op, intersect, difference)
	} else {
		out = w.filterViaSetOps(out, base, op, intersect, difference, bound)
	}
	w.levels[depth] = out
	return out
}

// baseFor resolves op's starting candidate set under bound — a memoized
// frontier or the extender's (possibly hub-sliced) adjacency — together with
// the residual intersect/difference source levels. Shared by the
// materializing (candidates) and count-only (leafCount) paths so both see
// identical inputs.
//
//flexlint:noalloc
func (w *worker) baseFor(op plan.VertexOp, depth int, bound graph.VID) (base []graph.VID, intersect, difference []int) {
	if op.FrontierBase != plan.NoLevel {
		w.stats.FrontierReuses++
		return setops.Bounded(w.levels[op.FrontierBase], bound), op.IntersectWith, op.DifferenceWith
	}
	if w.aux != nil && op.AuxBase != plan.NoLevel {
		// Auxiliary-graph substitution (aux.go): swap the extender's full
		// adjacency for the materialized pruned row; the spec's folded
		// sources are already applied, leaving only the residuals.
		if row, ok := w.auxRow(op); ok {
			return setops.Bounded(row, bound), op.AuxIntersect, op.AuxDifference
		}
	}
	adj := w.g.Adj(w.emb[op.Extender])
	if depth == 1 && w.sliceHi >= 0 {
		// Hub slicing: this task covers only elements [sliceLo, sliceHi)
		// of the start vertex's adjacency (mirrors the PE's slice path).
		lo, hi := w.sliceLo, w.sliceHi
		if lo > len(adj) {
			lo = len(adj)
		}
		if hi > len(adj) {
			hi = len(adj)
		}
		adj = adj[lo:hi]
	}
	return setops.Bounded(adj, bound), op.Connected, op.Disconnected
}

// cmapCovers reports whether every queried level was successfully inserted
// into the c-map (hint present and no overflow).
//
//flexlint:noalloc
func (w *worker) cmapCovers(intersect, difference []int) bool {
	if w.cm == nil {
		return false
	}
	if len(intersect) == 0 && len(difference) == 0 {
		return false // nothing to query; plain iteration is cheaper
	}
	for _, j := range intersect {
		if !w.cmLevelOK[j] {
			return false
		}
	}
	for _, j := range difference {
		if !w.cmLevelOK[j] {
			return false
		}
	}
	return true
}

// filterViaCMap checks each base element's connectivity with single c-map
// lookups (§VI: "all the set operations can be replaced by querying the
// c-map").
//
//flexlint:noalloc
func (w *worker) filterViaCMap(out, base []graph.VID, op plan.VertexOp, intersect, difference []int) []graph.VID {
	var need, avoid cmap.Bits
	for _, j := range intersect {
		need |= 1 << uint(j)
	}
	for _, j := range difference {
		avoid |= 1 << uint(j)
	}
	for _, v := range base {
		bits := w.cm.Lookup(v)
		if bits&need != need || bits&avoid != 0 {
			continue
		}
		if !w.distinct(v, op) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// filterViaSetOps applies chained set intersections/differences through the
// policy-selected kernels (merge = the SIU/SDU path, galloping, hub bitmap;
// see kernels.go) and then the distinctness filter. Under KernelMergeOnly
// this is exactly the classic merge chain.
//
//flexlint:noalloc
func (w *worker) filterViaSetOps(out, base []graph.VID, op plan.VertexOp, intersect, difference []int, bound graph.VID) []graph.VID {
	// Chained operations ping-pong between two worker-owned scratch
	// buffers; base (graph adjacency or a memoized frontier) is never
	// written.
	cur := base
	useA := true
	step := func(j int, diff bool) {
		dst := w.mergeB[:0]
		if useA {
			dst = w.mergeA[:0]
		}
		dst = w.setOp(dst, cur, w.emb[j], diff, bound)
		if useA {
			w.mergeA = dst
		} else {
			w.mergeB = dst
		}
		cur = dst
		useA = !useA
	}
	for _, j := range intersect {
		step(j, false)
	}
	for _, j := range difference {
		step(j, true)
	}
	for _, v := range cur {
		if w.distinct(v, op) {
			out = append(out, v)
		}
	}
	return out
}

// distinct applies the explicit inequality checks the compiler could not
// prove away.
//
//flexlint:noalloc
func (w *worker) distinct(v graph.VID, op plan.VertexOp) bool {
	for _, j := range op.NotEqual {
		if w.emb[j] == v {
			return false
		}
	}
	return true
}
