package core

// Old-vs-new scheduler comparison on the Table-I stand-ins (TC and 4-CL on
// the livejournal/orkut stand-ins, 16 workers — the acceptance workloads).
//
// Two instruments:
//
//   - BenchmarkScheduler* measures wall clock. On a multicore host the
//     work-stealing scheduler wins by eliminating the serial hub tail; on a
//     single-core host both degenerate to total-work time and measure only
//     scheduler overhead.
//   - TestSchedulerMakespanModel* are deterministic on any host: they
//     measure the true per-task work of every task, then replay both
//     schedulers' dispatch in virtual time with 16 ideal workers. The
//     modeled makespan is what wall clock converges to on a 16-core machine.
//
// The acceptance workloads run the GraphZero-class plans (plan.Compile with
// symmetry breaking) on the symmetric graphs, where power-law hubs
// (dmax 944 on Lj, 1242 on Or) serialize whole chunks; there the sliced
// LPT-seeded schedule wins 27–61%. The orientation-optimized DAG variants
// are covered separately: orientation caps the max out-degree at 52/35, so
// the contiguous-chunk schedule is already within 6–8% of the total/16
// lower bound — the near-optimality test pins the steal schedule to that
// bound instead of an unattainable relative gap.

import (
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sched"
)

// benchWorkload mirrors the bench-package stand-ins without importing it
// (bench imports core).
type benchWorkload struct {
	name string
	g    *graph.Graph
	pl   *plan.Plan
}

// standIns returns the Lj and Or stand-ins of bench/datasets.go.
func standIns() (lj, or *graph.Graph) {
	lj = graph.RMAT(12, 34000, 0.57, 0.19, 0.19, 0x17)
	or = graph.ChungLu(2400, 48000, 2.5, 0x08)
	return lj, or
}

// schedWorkloads are the acceptance workloads: TC and 4-CL via the
// symmetry-breaking plans on the symmetric stand-ins.
func schedWorkloads(tb testing.TB) []benchWorkload {
	tb.Helper()
	tc, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	cl4, err := plan.Compile(pattern.KClique(4), plan.Options{})
	if err != nil {
		tb.Fatal(err)
	}
	lj, or := standIns()
	return []benchWorkload{
		{name: "TC-Lj", g: lj, pl: tc},
		{name: "TC-Or", g: or, pl: tc},
		{name: "4CL-Lj", g: lj, pl: cl4},
		{name: "4CL-Or", g: or, pl: cl4},
	}
}

// dagWorkloads are the same apps on the §V-C orientation path
// (CompileCliqueDAG on degree-oriented DAGs).
func dagWorkloads(tb testing.TB) []benchWorkload {
	tb.Helper()
	tc, err := plan.CompileCliqueDAG(3)
	if err != nil {
		tb.Fatal(err)
	}
	cl4, err := plan.CompileCliqueDAG(4)
	if err != nil {
		tb.Fatal(err)
	}
	lj, or := standIns()
	return []benchWorkload{
		{name: "TC-Lj-DAG", g: lj.Orient(), pl: tc},
		{name: "4CL-Or-DAG", g: or.Orient(), pl: cl4},
	}
}

const benchThreads = 16

func BenchmarkSchedulerChunk(b *testing.B) {
	for _, w := range schedWorkloads(b) {
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				chunkMine(w.g, w.pl, benchThreads)
			}
		})
	}
}

func BenchmarkSchedulerSteal(b *testing.B) {
	for _, w := range schedWorkloads(b) {
		b.Run(w.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Mine(w.g, w.pl, Options{Threads: benchThreads}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// taskCosts measures each task's true work (extensions + merge iterations +
// candidates) by running it on a sequential worker.
func taskCosts(g *graph.Graph, pl *plan.Plan, tasks []sched.Task) []int64 {
	w := newWorker(g, pl, Options{Threads: 1}.withDefaults())
	costs := make([]int64, len(tasks))
	var prev int64
	for i, t := range tasks {
		w.runTask(t)
		total := w.stats.Extensions + w.stats.SetOpIterations + w.stats.Candidates
		costs[i] = total - prev + 1 // +1: dispatch overhead floor
		prev = total
	}
	return costs
}

// modelChunkMakespan replays the old scheduler in virtual time: contiguous
// 16-vertex chunks handed to whichever ideal worker is free first.
func modelChunkMakespan(costs []int64, workers, chunk int) int64 {
	clocks := make([]int64, workers)
	for lo := 0; lo < len(costs); lo += chunk {
		hi := lo + chunk
		if hi > len(costs) {
			hi = len(costs)
		}
		var sum int64
		for _, c := range costs[lo:hi] {
			sum += c
		}
		*minClock(clocks) += sum
	}
	return maxClock(clocks)
}

// modelStealMakespan replays the new scheduler in virtual time: sliced
// tasks, heaviest first, each claimed by whichever worker is free first —
// the schedule degree-descending seeding plus work stealing converges to.
func modelStealMakespan(costs []int64, order []int, workers int) int64 {
	clocks := make([]int64, workers)
	for _, i := range order {
		*minClock(clocks) += costs[i]
	}
	return maxClock(clocks)
}

func minClock(clocks []int64) *int64 {
	m := 0
	for i := 1; i < len(clocks); i++ {
		if clocks[i] < clocks[m] {
			m = i
		}
	}
	return &clocks[m]
}

func maxClock(clocks []int64) int64 {
	var m int64
	for _, c := range clocks {
		if c > m {
			m = c
		}
	}
	return m
}

// modelWorkload returns the modeled makespans of both schedulers plus the
// total/workers lower bound for one workload.
func modelWorkload(w benchWorkload) (chunkSpan, stealSpan, lowerBound int64, nWhole, nSliced int) {
	// Old scheduler: whole-vertex tasks, contiguous chunks of 16.
	whole := sched.Expand(w.g, 0)
	wholeCosts := taskCosts(w.g, w.pl, whole)
	chunkSpan = modelChunkMakespan(wholeCosts, benchThreads, 16)

	// New scheduler: hub-sliced tasks, degree-descending greedy.
	sliced := sched.Expand(w.g, autoSliceElems)
	sched.OrderByDegreeDesc(w.g, sliced)
	slicedCosts := taskCosts(w.g, w.pl, sliced)
	order := make([]int, len(sliced))
	for i := range order {
		order[i] = i
	}
	stealSpan = modelStealMakespan(slicedCosts, order, benchThreads)

	var total int64
	for _, c := range wholeCosts {
		total += c
	}
	lowerBound = total / benchThreads
	return chunkSpan, stealSpan, lowerBound, len(whole), len(sliced)
}

// TestSchedulerMakespanModel: with 16 ideal workers, the sliced LPT-seeded
// schedule must beat the contiguous-chunk schedule by ≥ 15% on every
// acceptance workload (measured: TC-Lj 49%, TC-Or 27%, 4CL-Lj 61%,
// 4CL-Or 33%).
func TestSchedulerMakespanModel(t *testing.T) {
	for _, w := range schedWorkloads(t) {
		chunkSpan, stealSpan, lb, nWhole, nSliced := modelWorkload(w)
		improvement := 1 - float64(stealSpan)/float64(chunkSpan)
		t.Logf("%s: chunk makespan %d, steal makespan %d, lower bound %d (%.1f%% better, %d→%d tasks)",
			w.name, chunkSpan, stealSpan, lb, improvement*100, nWhole, nSliced)
		if improvement < 0.15 {
			t.Errorf("%s: modeled improvement %.1f%% < 15%%", w.name, improvement*100)
		}
	}
}

// TestSchedulerMakespanModelOriented: on the orientation-optimized DAG
// variants the hubs are already flattened (max out-degree 52/35), so the
// chunk schedule sits within 6–8% of the total/16 lower bound and no 15%
// relative gap exists. The stronger property that does hold: the steal
// schedule achieves the lower bound to within 2%, i.e. it is near-optimal.
func TestSchedulerMakespanModelOriented(t *testing.T) {
	for _, w := range dagWorkloads(t) {
		chunkSpan, stealSpan, lb, nWhole, nSliced := modelWorkload(w)
		improvement := 1 - float64(stealSpan)/float64(chunkSpan)
		t.Logf("%s: chunk makespan %d, steal makespan %d, lower bound %d (%.1f%% better, %d→%d tasks)",
			w.name, chunkSpan, stealSpan, lb, improvement*100, nWhole, nSliced)
		if stealSpan > lb+lb/50 {
			t.Errorf("%s: steal makespan %d not within 2%% of lower bound %d", w.name, stealSpan, lb)
		}
		if improvement < 0 {
			t.Errorf("%s: steal schedule worse than chunk (%.1f%%)", w.name, improvement*100)
		}
	}
}
