package core

// The pattern-oblivious baseline (§III): like Gramer [90] and the
// pattern-oblivious software systems (RStream, Fractal), it enumerates the
// full connected-subgraph search tree and applies isomorphism tests at the
// leaves, with no matching order and no symmetry order. We use the ESU
// (FANMOD) enumeration, which visits every connected vertex-induced
// k-subgraph exactly once, then classifies each leaf by canonical code.
//
// Besides serving as the Table II baseline, this engine is the test oracle
// for the pattern-aware engines.

import (
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/graph"
	"repro/internal/pattern"
)

// ObliviousResult maps canonical pattern codes to induced-subgraph counts.
type ObliviousResult struct {
	// CountsByCode maps pattern.CanonicalCode() to the number of connected
	// vertex-induced subgraphs with that shape.
	CountsByCode map[uint64]int64
	// Enumerated is the total number of connected induced k-subgraphs
	// visited — the search-space size the pattern-aware plans avoid.
	Enumerated int64
	// IsoTests is the number of isomorphism classifications performed.
	IsoTests int64
}

// CountInduced returns the induced count for p (zero if none found).
func (r ObliviousResult) CountInduced(p *pattern.Pattern) int64 {
	return r.CountsByCode[p.CanonicalCode()]
}

// MineOblivious enumerates every connected vertex-induced k-subgraph of g
// (each exactly once, via ESU) and classifies it. threads ≤ 0 uses
// GOMAXPROCS.
func MineOblivious(g *graph.Graph, k int, threads int) ObliviousResult {
	if threads <= 0 {
		threads = runtime.GOMAXPROCS(0)
	}
	n := g.NumVertices()
	if threads > n && n > 0 {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	partial := make([]ObliviousResult, threads)
	var next int64
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			w := &esuWorker{
				g:     g,
				k:     k,
				codes: map[uint64]int64{},
				cache: map[string]uint64{},
			}
			for {
				v := atomic.AddInt64(&next, 1) - 1
				if v >= int64(n) {
					break
				}
				w.root(graph.VID(v))
			}
			partial[t] = ObliviousResult{CountsByCode: w.codes, Enumerated: w.enumerated, IsoTests: w.isoTests}
		}(t)
	}
	wg.Wait()
	total := ObliviousResult{CountsByCode: map[uint64]int64{}}
	for _, p := range partial {
		for c, n := range p.CountsByCode {
			total.CountsByCode[c] += n
		}
		total.Enumerated += p.Enumerated
		total.IsoTests += p.IsoTests
	}
	return total
}

type esuWorker struct {
	g          *graph.Graph
	k          int
	sub        []graph.VID
	codes      map[uint64]int64
	cache      map[string]uint64 // adjacency-signature → canonical code
	enumerated int64
	isoTests   int64
}

// root starts the ESU enumeration anchored at v: only vertices with larger
// IDs may join the extension, which is what guarantees uniqueness.
func (w *esuWorker) root(v graph.VID) {
	w.sub = w.sub[:0]
	w.sub = append(w.sub, v)
	var ext []graph.VID
	for _, u := range w.g.Adj(v) {
		if u > v {
			ext = append(ext, u)
		}
	}
	w.extend(v, ext)
}

// extend implements the ESU recursion: pick each extension vertex in turn,
// build the next extension set from exclusive neighbors (> anchor, not
// adjacent to the current subgraph except through the new vertex).
func (w *esuWorker) extend(anchor graph.VID, ext []graph.VID) {
	if len(w.sub) == w.k {
		w.enumerated++
		w.classify()
		return
	}
	for i := 0; i < len(ext); i++ {
		u := ext[i]
		// Next extension: remaining ext plus exclusive new neighbors of u.
		next := make([]graph.VID, 0, len(ext)-i-1+w.g.Degree(u))
		next = append(next, ext[i+1:]...)
		for _, x := range w.g.Adj(u) {
			if x <= anchor || x == u {
				continue
			}
			if w.inSub(x) || w.adjacentToSub(x) {
				continue
			}
			next = append(next, x)
		}
		w.sub = append(w.sub, u)
		w.extend(anchor, next)
		w.sub = w.sub[:len(w.sub)-1]
	}
}

func (w *esuWorker) inSub(x graph.VID) bool {
	for _, s := range w.sub {
		if s == x {
			return true
		}
	}
	return false
}

// adjacentToSub reports whether x neighbors any current subgraph vertex —
// such vertices are already in ext (or were skipped) and must not be
// re-added, or ESU would enumerate duplicates.
func (w *esuWorker) adjacentToSub(x graph.VID) bool {
	for _, s := range w.sub {
		if w.g.Connected(s, x) {
			return true
		}
	}
	return false
}

// classify performs the leaf isomorphism test: build the induced pattern and
// bucket by canonical code. The signature cache amortizes canonicalization
// across identical local shapes.
func (w *esuWorker) classify() {
	k := len(w.sub)
	var sig [pattern.MaxVertices]uint32
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			if w.g.Connected(w.sub[i], w.sub[j]) {
				sig[i] |= 1 << uint(j)
				sig[j] |= 1 << uint(i)
			}
		}
	}
	key := string(sigBytes(sig[:k]))
	code, ok := w.cache[key]
	if !ok {
		p := pattern.New(k)
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if sig[i]&(1<<uint(j)) != 0 {
					p.AddEdge(i, j)
				}
			}
		}
		w.isoTests++
		code = p.CanonicalCode()
		w.cache[key] = code
	}
	w.codes[code]++
}

func sigBytes(sig []uint32) []byte {
	b := make([]byte, 0, len(sig)*4)
	for _, s := range sig {
		b = append(b, byte(s), byte(s>>8), byte(s>>16), byte(s>>24))
	}
	return b
}
