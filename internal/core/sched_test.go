package core

// Tests for the engine's integration with the internal/sched runtime:
// scheduler invariance (counts must not depend on threads, slicing, or the
// scheduler itself), context cancellation (prompt return, no goroutine
// leak, balanced c-map), and the empty-result Count guard.

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sched"
)

// chunkMine reproduces the pre-sched scheduler exactly — an atomic counter
// handing out contiguous 16-vertex chunks — as the old-vs-new reference.
func chunkMine(g *graph.Graph, pl *plan.Plan, threads int) Result {
	n := g.NumVertices()
	if threads > n && n > 0 {
		threads = n
	}
	if threads < 1 {
		threads = 1
	}
	var next int64
	const chunk = 16
	results := make([]Result, threads)
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			w := newWorker(g, pl, Options{Threads: threads}.withDefaults())
			for {
				start := atomic.AddInt64(&next, chunk) - chunk
				if start >= int64(n) {
					break
				}
				end := start + chunk
				if end > int64(n) {
					end = int64(n)
				}
				for v := start; v < end; v++ {
					w.runTask(sched.Task{V0: graph.VID(v), Lo: 0, Hi: sched.All})
				}
			}
			results[t] = Result{Counts: w.counts, Stats: w.stats}
		}(t)
	}
	wg.Wait()
	total := Result{Counts: make([]int64, len(pl.Patterns))}
	for _, r := range results {
		for i, c := range r.Counts {
			total.Counts[i] += c
		}
	}
	for i := range total.Counts {
		total.Counts[i] /= pl.CountDivisor[i]
	}
	return total
}

// TestSchedulerInvariance: on RMAT stand-ins, counts must be identical
// across thread counts, slice sizes, and old-vs-new scheduler.
func TestSchedulerInvariance(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"rmat10": graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 0x17),
		"rmat9":  graph.RMAT(9, 3500, 0.55, 0.2, 0.2, 0x42),
	}
	plans := map[string]*plan.Plan{}
	if pl, err := plan.Compile(pattern.Triangle(), plan.Options{}); err == nil {
		plans["triangle"] = pl
	} else {
		t.Fatal(err)
	}
	if pl, err := plan.Compile(pattern.Diamond(), plan.Options{}); err == nil {
		plans["diamond"] = pl
	} else {
		t.Fatal(err)
	}
	for gname, g := range graphs {
		for plname, pl := range plans {
			want := chunkMine(g, pl, 4).Counts
			for _, threads := range []int{1, 4, 16} {
				for _, slice := range []int{SliceOff, 0, 8, 64} {
					res, err := Mine(g, pl, Options{Threads: threads, SliceElems: slice})
					if err != nil {
						t.Fatal(err)
					}
					for i := range want {
						if res.Counts[i] != want[i] {
							t.Errorf("%s/%s threads=%d slice=%d: count[%d]=%d, chunk scheduler got %d",
								gname, plname, threads, slice, i, res.Counts[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestSchedulerInvarianceDAG covers the oriented-DAG clique path (TC-style
// workloads) under the same sweep.
func TestSchedulerInvarianceDAG(t *testing.T) {
	g := graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 0x17).Orient()
	pl, err := plan.CompileCliqueDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	want := chunkMine(g, pl, 4).Counts[0]
	for _, threads := range []int{1, 4, 16} {
		for _, slice := range []int{SliceOff, 0, 8, 64} {
			res, err := Mine(g, pl, Options{Threads: threads, SliceElems: slice})
			if err != nil {
				t.Fatal(err)
			}
			if res.Counts[0] != want {
				t.Errorf("threads=%d slice=%d: 4-CL=%d want %d", threads, slice, res.Counts[0], want)
			}
		}
	}
}

// TestMineContextCancel: a cancelled context must stop the run promptly,
// return partial results with ctx's error, and leak no goroutines.
func TestMineContextCancel(t *testing.T) {
	before := runtime.NumGoroutine()
	g := graph.ChungLu(1500, 30000, 2.2, 5)
	pl, err := plan.Compile(pattern.KClique(5), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	res, err := MineContext(ctx, g, pl, Options{Threads: 4})
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(res.Counts) != 1 {
		t.Fatalf("partial result missing counts: %+v", res)
	}
	// A full 5-clique run on this graph takes far longer than the
	// cancellation budget; promptness means we came back within a small
	// multiple of the cancel delay even on a loaded host.
	if elapsed > 2*time.Second {
		t.Errorf("cancellation not prompt: took %v", elapsed)
	}
	// Workers must have exited: poll briefly, then compare goroutine counts.
	deadline := time.Now().Add(2 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if after := runtime.NumGoroutine(); after > before+1 {
		t.Errorf("goroutine leak: %d before, %d after", before, after)
	}
}

// TestMineContextDeadline covers the timeout flavor end to end.
func TestMineContextDeadline(t *testing.T) {
	g := graph.ChungLu(1500, 30000, 2.2, 6)
	pl, err := plan.Compile(pattern.KClique(5), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Millisecond)
	defer cancel()
	_, err = MineContext(ctx, g, pl, Options{Threads: 2})
	if err != context.DeadlineExceeded {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
}

// TestMineContextComplete: an unexercised context must not disturb a run.
func TestMineContextComplete(t *testing.T) {
	g := graph.Clique(6)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := MineContext(context.Background(), g, pl, Options{Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Count() != 20 {
		t.Errorf("triangles = %d, want 20", res.Count())
	}
}

// TestListContextCancel: the listing path shares the cancellation machinery.
func TestListContextCancel(t *testing.T) {
	g := graph.ChungLu(1500, 30000, 2.2, 7)
	pl, err := plan.Compile(pattern.KClique(4), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	var seen atomic.Int64
	_, err = ListContext(ctx, g, pl, Options{Threads: 4}, func(emb []graph.VID, idx int) {
		if seen.Add(1) == 100 {
			cancel()
		}
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestResultCountEmpty: Count on an empty result must not panic.
func TestResultCountEmpty(t *testing.T) {
	if c := (Result{}).Count(); c != 0 {
		t.Errorf("empty Result.Count() = %d, want 0", c)
	}
}

// TestListMatchesMineUnderSlicing: the visitor must see each match exactly
// once regardless of hub slicing.
func TestListMatchesMineUnderSlicing(t *testing.T) {
	g := graph.ChungLu(200, 1400, 2.3, 9)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := Mine(g, pl, Options{Threads: 1, SliceElems: SliceOff})
	if err != nil {
		t.Fatal(err)
	}
	for _, slice := range []int{SliceOff, 8, 64} {
		var visits atomic.Int64
		res, err := List(g, pl, Options{Threads: 4, SliceElems: slice}, func([]graph.VID, int) {
			visits.Add(1)
		})
		if err != nil {
			t.Fatal(err)
		}
		if res.Count() != want.Count() || visits.Load() != want.Count() {
			t.Errorf("slice=%d: count=%d visits=%d want %d",
				slice, res.Count(), visits.Load(), want.Count())
		}
	}
}
