package core

// Metamorphic counter invariants backing the observability layer: the obs
// registry exports engine Stats as deterministic artifacts, which is only
// sound if the counters themselves are invariant under thread count and
// kernel policy, and if tracing never perturbs a run. Each test states one
// such invariant and sweeps it over power-law inputs where kernel choice and
// work stealing actually vary.

import (
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
)

func metamorphicWorkload(t *testing.T) (*graph.Graph, *plan.Plan) {
	t.Helper()
	g := graph.ChungLu(600, 4800, 2.3, 9)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return g, pl
}

// TestMetamorphicWorkerStatsInvariance: with the slice width pinned, the
// whole Stats block — not just the counts — is identical across worker
// counts. This is what licenses exporting Stats counters into golden-tested
// metrics files from parallel runs.
func TestMetamorphicWorkerStatsInvariance(t *testing.T) {
	g, pl := metamorphicWorkload(t)
	var ref *Result
	for _, workers := range []int{1, 4, 16} {
		res, err := Mine(g, pl, Options{Threads: workers, SliceElems: 16})
		if err != nil {
			t.Fatal(err)
		}
		if ref == nil {
			ref = &res
			continue
		}
		if !reflect.DeepEqual(res.Counts, ref.Counts) {
			t.Errorf("workers=%d: counts %v, want %v", workers, res.Counts, ref.Counts)
		}
		if !reflect.DeepEqual(res.Stats, ref.Stats) {
			t.Errorf("workers=%d: stats diverge from 1-worker run:\n got %+v\nwant %+v",
				workers, res.Stats, ref.Stats)
		}
	}
}

// TestMetamorphicKernelCostBound: every adaptive policy must (a) reproduce
// the merge-only counts and search shape exactly and (b) spend no more total
// probe work than the merge baseline — the adaptive kernels exist to cut the
// SIU-work proxy, never to inflate it.
func TestMetamorphicKernelCostBound(t *testing.T) {
	g, pl := metamorphicWorkload(t)
	base, err := Mine(g, pl, Options{Threads: 4, SliceElems: 16, Kernel: KernelMergeOnly})
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.GallopProbes != 0 || base.Stats.BitmapProbes != 0 {
		t.Fatalf("merge-only run used adaptive kernels: %+v", base.Stats)
	}
	for _, k := range []KernelPolicy{KernelAuto, KernelGallop, KernelBitmap} {
		res, err := Mine(g, pl, Options{Threads: 4, SliceElems: 16, Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(res.Counts, base.Counts) {
			t.Errorf("%s: counts %v, want %v", k, res.Counts, base.Counts)
		}
		if res.Stats.Extensions != base.Stats.Extensions || res.Stats.Candidates != base.Stats.Candidates {
			t.Errorf("%s: search shape changed: ext=%d cand=%d, want ext=%d cand=%d",
				k, res.Stats.Extensions, res.Stats.Candidates,
				base.Stats.Extensions, base.Stats.Candidates)
		}
		work := res.Stats.SetOpIterations + res.Stats.GallopProbes + res.Stats.BitmapProbes
		if work > base.Stats.SetOpIterations {
			t.Errorf("%s: total probe work %d exceeds merge bound %d", k, work, base.Stats.SetOpIterations)
		}
	}
}

// TestMetamorphicTracingIsInert: attaching a tracer must not change counts
// or any Stats counter (the CPU half of the zero-overhead contract; the sim
// half is TestSimCyclesInvariantUnderTracing).
func TestMetamorphicTracingIsInert(t *testing.T) {
	g, pl := metamorphicWorkload(t)
	plain, err := Mine(g, pl, Options{Threads: 4, SliceElems: 16})
	if err != nil {
		t.Fatal(err)
	}
	tr := obs.NewTracer(obs.NewVirtualClock(), 1<<12)
	traced, err := Mine(g, pl, Options{Threads: 4, SliceElems: 16, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(traced.Counts, plain.Counts) || !reflect.DeepEqual(traced.Stats, plain.Stats) {
		t.Errorf("tracing changed the run:\ntraced %+v %+v\nplain  %+v %+v",
			traced.Counts, traced.Stats, plain.Counts, plain.Stats)
	}
	if len(tr.Events()) == 0 {
		t.Error("tracer attached to a parallel mine recorded nothing")
	}
	cats := tr.Categories()
	if len(cats) < 2 {
		t.Errorf("expected sched + kernel categories, got %v", cats)
	}
}
