//go:build unix

package core

import (
	"context"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// storageBackends materializes g in every storage backend: the heap graph
// itself, a zero-copy mmap of its binary file, and mmap-backed shard
// directories at 1 and 4 shards. Cleanup closes the mapped stores.
func storageBackends(t *testing.T, g *graph.Graph) map[string]graph.Store {
	t.Helper()
	dir := t.TempDir()
	bin := filepath.Join(dir, "g.bin")
	if err := graph.SaveBinary(bin, g); err != nil {
		t.Fatal(err)
	}
	m, err := graph.OpenMapped(bin)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	stores := map[string]graph.Store{"heap": g, "mmap": m}
	for _, shards := range []int{1, 4} {
		sdir := filepath.Join(dir, "shards", string(rune('0'+shards)))
		if err := graph.WriteSharded(sdir, g, shards); err != nil {
			t.Fatal(err)
		}
		s, err := graph.OpenSharded(sdir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { s.Close() })
		if shards == 1 {
			stores["shard1"] = s
		} else {
			stores["shard4"] = s
		}
	}
	return stores
}

// equivPlans compiles the workload catalog the equivalence suite mines:
// the full 3-motif census, two subgraph-listing patterns, a generic 4-clique
// plan, and (for oriented inputs) the DAG clique plan.
func equivPlans(t *testing.T, dag bool) map[string]*plan.Plan {
	t.Helper()
	plans := map[string]*plan.Plan{}
	compile := func(name string, pl *plan.Plan, err error) {
		if err != nil {
			t.Fatalf("compile %s: %v", name, err)
		}
		plans[name] = pl
	}
	if dag {
		pl, err := plan.CompileCliqueDAG(4)
		compile("4-CL-dag", pl, err)
		return plans
	}
	pl, err := plan.CompileMotifs(3, plan.Options{})
	compile("3-MC", pl, err)
	pl, err = plan.Compile(pattern.Diamond(), plan.Options{})
	compile("SL-diamond", pl, err)
	pl, err = plan.Compile(pattern.FourCycle(), plan.Options{})
	compile("SL-4cycle", pl, err)
	pl, err = plan.Compile(pattern.KClique(4), plan.Options{})
	compile("4-CL-sym", pl, err)
	return plans
}

// TestStorageBackendEquivalence is the acceptance suite: for every workload
// in the catalog, Counts AND the full Stats block must be DeepEqual across
// heap, mmap, 1-shard, and 4-shard backends — storage (and shard-local
// placement) may move bytes and tasks around, but never the computation.
func TestStorageBackendEquivalence(t *testing.T) {
	inputs := map[string]*graph.Graph{
		"er":   graph.ErdosRenyi(400, 3000, 17),
		"rmat": graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 5),
	}
	opts := []Options{
		{Threads: 4},
		{Threads: 8, Kernel: KernelMergeOnly, SliceElems: 16},
		{Threads: 4, CMap: CMapHash},
	}
	for gname, g := range inputs {
		for dag := 0; dag < 2; dag++ {
			base := g
			if dag == 1 {
				base = g.Orient()
			}
			stores := storageBackends(t, base)
			for pname, pl := range equivPlans(t, dag == 1) {
				for oi, o := range opts {
					want, err := Mine(stores["heap"], pl, o)
					if err != nil {
						t.Fatal(err)
					}
					for sname, st := range stores {
						if sname == "heap" {
							continue
						}
						got, err := Mine(st, pl, o)
						if err != nil {
							t.Fatal(err)
						}
						if !reflect.DeepEqual(got.Counts, want.Counts) {
							t.Fatalf("%s/%s/opt%d: %s counts %v != heap %v", gname, pname, oi, sname, got.Counts, want.Counts)
						}
						if !reflect.DeepEqual(got.Stats, want.Stats) {
							t.Fatalf("%s/%s/opt%d: %s stats diverge from heap:\n%+v\n%+v", gname, pname, oi, sname, got.Stats, want.Stats)
						}
					}
				}
			}
		}
	}
}

// TestStorageBackendShardObliviousEquivalence checks the A/B switch only
// moves tasks, never results: oblivious and shard-local placement produce
// identical Counts and Stats on a 4-shard store.
func TestStorageBackendShardObliviousEquivalence(t *testing.T) {
	g := graph.RMAT(10, 6000, 0.57, 0.19, 0.19, 5)
	stores := storageBackends(t, g)
	pl, err := plan.CompileMotifs(3, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	local, err := Mine(stores["shard4"], pl, Options{Threads: 8})
	if err != nil {
		t.Fatal(err)
	}
	obliv, err := Mine(stores["shard4"], pl, Options{Threads: 8, ShardOblivious: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(local.Counts, obliv.Counts) || !reflect.DeepEqual(local.Stats, obliv.Stats) {
		t.Fatalf("shard-oblivious placement changed results:\nlocal %+v %+v\nobliv %+v %+v",
			local.Counts, local.Stats, obliv.Counts, obliv.Stats)
	}
}

// TestStorageBackendCancellation checks cancellation-with-partial-results
// works on every backend: the run returns the context error, and the partial
// counts never exceed the full run's.
func TestStorageBackendCancellation(t *testing.T) {
	g := graph.RMAT(11, 40000, 0.57, 0.19, 0.19, 23)
	stores := storageBackends(t, g)
	pl, err := plan.CompileMotifs(3, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	full, err := Mine(stores["heap"], pl, Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	for name, st := range stores {
		var fired int64
		ctx, cancel := context.WithCancel(context.Background())
		o := Options{Threads: 4, OnTaskDone: func(w int, matches int64) {
			if fired++; fired == 10 {
				cancel()
			}
		}}
		// OnTaskDone runs on worker goroutines; single increment per task is
		// racy across workers but only needs to fire cancel roughly early.
		got, err := MineContext(ctx, st, pl, o)
		cancel()
		if err == nil {
			// The run may legitimately finish before poll latency bites on
			// tiny inputs, but this fixture is large enough that it must not.
			t.Fatalf("%s: cancelled run returned nil error", name)
		}
		for i := range got.Counts {
			if got.Counts[i] < 0 || got.Counts[i] > full.Counts[i] {
				t.Fatalf("%s: partial count %d = %d outside [0, %d]", name, i, got.Counts[i], full.Counts[i])
			}
		}
		if got.Stats.Tasks == 0 || got.Stats.Tasks >= full.Stats.Tasks {
			t.Fatalf("%s: cancelled run executed %d tasks, want partial progress below %d", name, got.Stats.Tasks, full.Stats.Tasks)
		}
	}
}

// TestMappedMineConstantHeap is the acceptance bound end-to-end: mining a
// multi-megabyte graph through OpenMapped must allocate per-worker scratch
// only — O(maxDegree), not O(|E|) — so heap growth stays far below the file
// size.
func TestMappedMineConstantHeap(t *testing.T) {
	g := graph.RMAT(14, 250_000, 0.57, 0.19, 0.19, 11)
	bin := filepath.Join(t.TempDir(), "g.bin")
	if err := graph.SaveBinary(bin, g); err != nil {
		t.Fatal(err)
	}
	fi, err := os.Stat(bin)
	if err != nil {
		t.Fatal(err)
	}
	want, err := TriangleCountStoreFixture(g)
	if err != nil {
		t.Fatal(err)
	}
	g = nil
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	m, err := graph.OpenMapped(bin)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Mine(m, pl, Options{Threads: 2, HubBitmaps: -1, Kernel: KernelMergeOnly})
	if err != nil {
		t.Fatal(err)
	}
	// Collect transient run-time garbage (task lists, sort scratch) so the
	// delta measures what mining through the mapped store keeps live — which
	// must not include any copy of the adjacency arrays.
	runtime.GC()
	runtime.ReadMemStats(&after)
	if res.Count() != want {
		t.Fatalf("mapped mine count %d != heap count %d", res.Count(), want)
	}
	// Workers allocate O(K · maxDegree) scratch; bound generously but far
	// below the adjacency arrays (the file is several MB).
	grew := int64(after.HeapAlloc) - int64(before.HeapAlloc)
	if bound := fi.Size() / 4; grew > bound {
		t.Fatalf("mapped mine grew heap by %d bytes for a %d-byte graph; want < %d", grew, fi.Size(), bound)
	}
}

// TriangleCountStoreFixture computes the reference triangle count on the
// heap store before the MemStats window opens.
func TriangleCountStoreFixture(g *graph.Graph) (int64, error) {
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		return 0, err
	}
	res, err := Mine(g, pl, Options{Threads: 2, HubBitmaps: -1, Kernel: KernelMergeOnly})
	if err != nil {
		return 0, err
	}
	return res.Count(), nil
}

// TestStorageBackendListEquivalence drives the listing path (per-embedding
// visitor) through a mapped store, confirming visitors see identical
// embeddings regardless of backend.
func TestStorageBackendListEquivalence(t *testing.T) {
	g := graph.ErdosRenyi(200, 1200, 29)
	stores := storageBackends(t, g)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	collect := func(st graph.Store) map[[3]graph.VID]int {
		seen := map[[3]graph.VID]int{}
		var mu = make(chan struct{}, 1)
		mu <- struct{}{}
		_, err := List(st, pl, Options{Threads: 4}, func(emb []graph.VID, pat int) {
			var k [3]graph.VID
			copy(k[:], emb)
			<-mu
			seen[k]++
			mu <- struct{}{}
		})
		if err != nil {
			t.Fatal(err)
		}
		return seen
	}
	want := collect(stores["heap"])
	for _, name := range []string{"mmap", "shard1", "shard4"} {
		if got := collect(stores[name]); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: listed embeddings differ from heap (%d vs %d distinct)", name, len(got), len(want))
		}
	}
}
