package core

// Auxiliary-graph runtime (Options.AuxGraph; DESIGN.md decision 14). The
// compiler marks, per plan, which deep ops re-intersect against adjacency
// rows whose pruned form depends only on shallow ancestors (plan.AuxSpecs,
// computed by assignAuxDirectives). This file is the engine half: when a DFS
// enters the activation level of a spec, the worker opens an "activation
// scope"; the first descendant lookup of each extender value x materializes
// the pruned row
//
//	aux[x] = adj(x) ∩ adj(emb[j]) … ∖ adj(emb[j]) …   (bounded by emb[RowBound])
//
// into a per-worker arena through the same policy-dispatched kernels as any
// other set operation, and every later lookup of x in the subtree reuses it —
// the GraphMini insight that deep DFS loops repeat shallow intersections once
// per intermediate embedding.
//
// Rows are keyed by x's position in the universe row adj(emb[Universe])
// (always ⊇ the extender's candidate set, see plan/aux.go), so the stamp and
// offset arrays are MaxDegree-sized and pooled in the worker — activation is
// O(1): bump an epoch, reset the arena length. Nothing here is charged by the
// simulator, which never reads the aux directives; mined counts are invariant
// under AuxMode (cross-mode tests), only wall-clock and the Aux* Stats move.

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/plan"
	"repro/internal/setops"
)

// AuxMode selects the auxiliary-graph layer (Options.AuxGraph).
type AuxMode int

const (
	// AuxOff (the zero value) ignores the plan's aux directives entirely —
	// the configuration of the paper-figure runners, enforced by the
	// kernelpin analyzer.
	AuxOff AuxMode = iota
	// AuxAuto (the CLI default) honors directives when the per-activation
	// cost model predicts enough reuse: Uses × avgdeg^Gap ≥ 2 and a nonzero
	// fold operand. Skipped activations count as AuxSkippedCostModel.
	AuxAuto
	// AuxOn honors every directive unconditionally (A/B and test leg).
	AuxOn
)

func (m AuxMode) String() string {
	switch m {
	case AuxOff:
		return "off"
	case AuxAuto:
		return "auto"
	case AuxOn:
		return "on"
	}
	return fmt.Sprintf("AuxMode(%d)", int(m))
}

// ParseAuxMode resolves a CLI/config spelling of an aux-graph mode.
func ParseAuxMode(s string) (AuxMode, error) {
	switch s {
	case "off":
		return AuxOff, nil
	case "auto", "":
		return AuxAuto, nil
	case "on":
		return AuxOn, nil
	}
	return 0, fmt.Errorf("core: unknown aux-graph mode %q (want off, auto, or on)", s)
}

// auxState is the per-worker runtime of one plan.AuxSpec. The arrays are
// allocated once in newWorker (MaxDegree-sized, like the merge scratch) and
// live for the worker's lifetime; per-activation reset is the epoch bump plus
// an arena length reset, never an allocation.
type auxState struct {
	universe  []graph.VID // adj(emb[Universe]) view of the live activation
	active    bool        // inside an activation scope
	build     bool        // activation passed the cost gate
	epoch     uint64      // stamps[pos]==epoch ⇒ row for universe[pos] is live
	stamps    []uint64
	offs      []int32 // arena offsets (indices survive arena regrowth)
	lens      []int32
	arena     []graph.VID // append-only row storage, reset per activation
	liveBytes int64       // bytes of live rows (arena length × 4)
}

// newAuxStates builds the pooled per-spec runtime, or nil when the mode or
// plan make the layer inert. auxGate is the static half of the cost model:
// with d = avg degree, an activation is looked up ≈ Uses × d^Gap times, so
// anything below 2 expected uses cannot amortize even one row copy.
func newAuxStates(g graph.Store, pl *plan.Plan, o Options) ([]auxState, []bool) {
	if o.AuxGraph == AuxOff || len(pl.AuxSpecs) == 0 {
		return nil, nil
	}
	states := make([]auxState, len(pl.AuxSpecs))
	gate := make([]bool, len(pl.AuxSpecs))
	maxd := g.MaxDegree()
	d := g.AvgDegree()
	if d < 1 {
		d = 1
	}
	for i, s := range pl.AuxSpecs {
		states[i].stamps = make([]uint64, maxd)
		states[i].offs = make([]int32, maxd)
		states[i].lens = make([]int32, maxd)
		reuse := float64(s.Uses)
		for k := 0; k < s.Gap; k++ {
			reuse *= d
		}
		gate[i] = o.AuxGraph == AuxOn || reuse >= 2
	}
	return states, gate
}

// auxActivate opens the activation scope of every spec built at this op: the
// universe and fold ancestors are fixed from here until auxRelease, so rows
// stamped under the new epoch stay valid for the whole subtree. Under
// AuxAuto an activation whose fold operand is empty is skipped — the rows
// would be plain copies (difference against nothing) or trivially empty, and
// the normal per-step path handles both for free.
//
//flexlint:noalloc
func (w *worker) auxActivate(op plan.VertexOp) {
	if w.aux == nil || len(op.BuildAux) == 0 {
		return
	}
	for _, i := range op.BuildAux {
		st := &w.aux[i]
		spec := &w.pl.AuxSpecs[i]
		st.epoch++
		w.auxLive -= st.liveBytes
		st.liveBytes = 0
		st.arena = st.arena[:0]
		st.active = true
		st.build = w.auxGate[i]
		if st.build && w.o.AuxGraph == AuxAuto {
			operand := 0
			for _, j := range spec.Intersect {
				operand += len(w.g.Adj(w.emb[j]))
			}
			for _, j := range spec.Difference {
				operand += len(w.g.Adj(w.emb[j]))
			}
			if operand == 0 {
				st.build = false
			}
		}
		if !st.build {
			w.stats.AuxSkippedCostModel++
			continue
		}
		st.universe = w.g.Adj(w.emb[spec.Universe])
	}
}

// auxRelease closes the activation scopes opened by auxActivate. Paired with
// it on every path — including cancellation unwinds — so live-byte accounting
// returns to zero between tasks and nothing leaks across them.
//
//flexlint:noalloc
func (w *worker) auxRelease(op plan.VertexOp) {
	if w.aux == nil || len(op.BuildAux) == 0 {
		return
	}
	for _, i := range op.BuildAux {
		st := &w.aux[i]
		st.active = false
		st.build = false
		w.auxLive -= st.liveBytes
		st.liveBytes = 0
		st.arena = st.arena[:0]
		st.universe = nil
	}
}

// auxRow resolves the materialized pruned row for the consumer's extender
// value, building it on first lookup within the live activation. ok=false
// falls back to the plain adjacency path: spec inactive (hand-built plan or
// cost-gated activation) or — defensively — a key outside the universe.
//
//flexlint:noalloc
func (w *worker) auxRow(op plan.VertexOp) ([]graph.VID, bool) {
	if op.AuxBase < 0 || op.AuxBase >= len(w.aux) {
		return nil, false
	}
	st := &w.aux[op.AuxBase]
	if !st.active || !st.build {
		return nil, false
	}
	x := w.emb[op.Extender]
	pos := setops.Index(st.universe, x)
	if pos < 0 {
		return nil, false
	}
	if st.stamps[pos] == st.epoch {
		w.stats.AuxReused++
		return st.arena[st.offs[pos] : st.offs[pos]+int32(st.lens[pos])], true
	}
	return w.auxBuild(st, &w.pl.AuxSpecs[op.AuxBase], x, pos), true
}

// auxBuild materializes aux[x] into the arena tail through the same
// policy-dispatched kernels as the per-step path (Options.Kernel applies,
// kernel Stats counters charge normally) and stamps its position.
//
//flexlint:noalloc
func (w *worker) auxBuild(st *auxState, spec *plan.AuxSpec, x graph.VID, pos int) []graph.VID {
	bound := setops.NoBound
	if spec.RowBound != plan.NoLevel {
		bound = w.emb[spec.RowBound]
	}
	cur := setops.Bounded(w.g.Adj(x), bound)
	off := int32(len(st.arena))
	if len(spec.Intersect)+len(spec.Difference) == 1 {
		// Single chained operation: materialize straight into the arena.
		if len(spec.Intersect) == 1 {
			st.arena = w.setOp(st.arena, cur, w.emb[spec.Intersect[0]], false, bound)
		} else {
			st.arena = w.setOp(st.arena, cur, w.emb[spec.Difference[0]], true, bound)
		}
	} else {
		// Chain through the ping-pong scratch, then copy the final row out —
		// the scratch is clobbered by the consumer's residual operations.
		useA := true
		step := func(j int, diff bool) {
			dst := w.mergeB[:0]
			if useA {
				dst = w.mergeA[:0]
			}
			dst = w.setOp(dst, cur, w.emb[j], diff, bound)
			if useA {
				w.mergeA = dst
			} else {
				w.mergeB = dst
			}
			cur = dst
			useA = !useA
		}
		for _, j := range spec.Intersect {
			step(j, false)
		}
		for _, j := range spec.Difference {
			step(j, true)
		}
		st.arena = setops.AppendBounded(st.arena, cur, bound)
	}
	n := int32(len(st.arena)) - off
	st.offs[pos], st.lens[pos] = off, n
	st.stamps[pos] = st.epoch
	st.liveBytes += int64(n) * 4
	w.auxLive += int64(n) * 4
	if w.auxLive > w.stats.AuxBytesPeak {
		w.stats.AuxBytesPeak = w.auxLive
	}
	w.stats.AuxBuilt++
	return st.arena[off : off+n]
}
