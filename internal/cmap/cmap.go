// Package cmap implements the connectivity map of §VI: a key-value store
// mapping a data-vertex ID to a bitset of embedding depths it is connected
// to. Two implementations are provided:
//
//   - HashMap: the paper's hardware design — a banked, simplified
//     linear-probing hash table whose deletions just invalidate entries
//     (correct because GPM updates it in a bulk, stack-disciplined fashion,
//     §VI-A) with occupancy-based overflow signaling (§VI-B);
//   - Vector: the |V|-sized software c-map of prior work [15, 21], kept for
//     comparison and as a test oracle.
package cmap

import (
	"fmt"

	"repro/internal/graph"
)

// Bits is the connectivity bitset: bit d set means "connected to the vertex
// at embedding depth d". The paper's hardware uses one byte; we widen to 16
// to allow patterns past 10 vertices in software experiments.
type Bits uint16

// Stats counts c-map activity for the evaluation (read ratios in §VII-C,
// overflow rates).
type Stats struct {
	Lookups   int64 // queries
	Hits      int64 // queries that found the key
	Inserts   int64 // entries inserted or updated
	Removes   int64 // entries removed or downgraded
	Probes    int64 // hardware probe steps (bank-parallel groups)
	Overflows int64 // bulk insertions rejected by the occupancy estimate
}

// Add accumulates another stats block into s (per-worker / per-PE merge).
func (s *Stats) Add(o Stats) {
	s.Lookups += o.Lookups
	s.Hits += o.Hits
	s.Inserts += o.Inserts
	s.Removes += o.Removes
	s.Probes += o.Probes
	s.Overflows += o.Overflows
}

// ReadRatio returns reads / (reads + writes), the metric of §VII-C.
func (s Stats) ReadRatio() float64 {
	total := s.Lookups + s.Inserts + s.Removes
	if total == 0 {
		return 0
	}
	return float64(s.Lookups) / float64(total)
}

// Map is the interface shared by the hardware model and the vector oracle.
type Map interface {
	// TryInsertLevel bulk-inserts neighbor list adj at depth, keeping only
	// IDs < bound (NoBound disables filtering). It reports false — without
	// inserting anything — when the occupancy estimate predicts overflow
	// (§VI-B fallback).
	//
	//flexlint:noalloc
	TryInsertLevel(adj []graph.VID, depth int, bound graph.VID) bool
	// RemoveLevel undoes TryInsertLevel for the same arguments (stack
	// discipline: depths are removed in reverse insertion order).
	//
	//flexlint:noalloc
	RemoveLevel(adj []graph.VID, depth int, bound graph.VID)
	// Lookup returns the connectivity bitset for key (zero if absent).
	//
	//flexlint:noalloc
	Lookup(key graph.VID) Bits
	// Reset invalidates all entries (end of a task).
	Reset()
	// Stats returns accumulated counters.
	Stats() Stats
}

// NoBound disables the insertion ID filter.
const NoBound = ^graph.VID(0)

// EntryBytes is the storage cost per entry in the paper's design: 4-byte key
// plus 1-byte value.
const EntryBytes = 5

// HashMap is the hardware c-map: linear probing over a fixed array of
// entries, partitioned into banks probed in parallel (m successive entries
// per cycle). Deletion invalidates in place; see §VI-A for why that is
// correct under bulk stack-disciplined updates.
type HashMap struct {
	keys []graph.VID
	vals []Bits

	banks     int
	threshold float64 // max occupancy fraction before overflow is signaled
	occupied  int
	stats     Stats
}

// NewHashMap builds a hardware c-map with the given entry capacity and bank
// count. The paper's prototype is 2K entries (4 banks × 512 lines × 5 B);
// occupancy is kept below 75%.
func NewHashMap(entries, banks int) *HashMap {
	if entries <= 0 || banks <= 0 {
		panic(fmt.Sprintf("cmap: bad geometry entries=%d banks=%d", entries, banks))
	}
	return &HashMap{
		keys:      make([]graph.VID, entries),
		vals:      make([]Bits, entries),
		banks:     banks,
		threshold: 0.75,
	}
}

// NewHashMapBytes sizes the c-map from a byte budget at EntryBytes per entry
// — the way the paper quotes sizes (1 kB … 16 kB scratchpads, Fig 14).
func NewHashMapBytes(bytes, banks int) *HashMap {
	entries := bytes / EntryBytes
	if entries < 1 {
		entries = 1
	}
	return NewHashMap(entries, banks)
}

// Capacity returns the entry count.
func (m *HashMap) Capacity() int { return len(m.keys) }

// Occupancy returns the live-entry count.
func (m *HashMap) Occupancy() int { return m.occupied }

//flexlint:noalloc
func (m *HashMap) hash(key graph.VID) int {
	// Multiplicative hashing (Knuth); cheap in hardware, good spread.
	h := uint64(key) * 0x9e3779b97f4a7c15
	return int(h % uint64(len(m.keys)))
}

// probe walks the table from key's home slot. It returns the slot holding
// key, or the first invalid slot, or -1 when the table wrapped around full.
// The probe-step count charged to stats models the banked hardware: each
// cycle examines `banks` successive entries.
//
//flexlint:noalloc
func (m *HashMap) probe(key graph.VID) int {
	n := len(m.keys)
	start := m.hash(key)
	steps := 0
	for i := 0; i < n; i++ {
		slot := (start + i) % n
		if i%m.banks == 0 {
			steps++
		}
		if m.vals[slot] == 0 || m.keys[slot] == key {
			m.stats.Probes += int64(steps)
			return slot
		}
	}
	m.stats.Probes += int64(steps)
	return -1
}

// TryInsertLevel implements Map. The footprint estimate is the paper's: the
// degree (after the compiler's ID-bound filter) is known before the list is
// fetched, so the PE can predict overflow and fall back to SIU/SDU without
// touching the map.
//
//flexlint:noalloc
func (m *HashMap) TryInsertLevel(adj []graph.VID, depth int, bound graph.VID) bool {
	filtered := boundedPrefix(adj, bound)
	if float64(m.occupied+len(filtered)) > m.threshold*float64(len(m.keys)) {
		m.stats.Overflows++
		return false
	}
	bit := Bits(1) << uint(depth)
	for i, w := range filtered {
		slot := m.probe(w)
		if slot < 0 {
			// Estimation said it fits but the table is full (can only
			// happen with threshold ≥ 1 in stress tests): undo exactly
			// the keys inserted so far.
			m.removeKeys(filtered[:i], bit)
			m.stats.Overflows++
			return false
		}
		if m.vals[slot] == 0 {
			m.keys[slot] = w
			m.occupied++
		}
		m.vals[slot] |= bit
		m.stats.Inserts++
	}
	return true
}

// RemoveLevel implements Map: clear this depth's bit on every inserted key
// and invalidate entries whose value drops to zero.
//
//flexlint:noalloc
func (m *HashMap) RemoveLevel(adj []graph.VID, depth int, bound graph.VID) {
	m.removeKeys(boundedPrefix(adj, bound), Bits(1)<<uint(depth))
}

//flexlint:noalloc
func (m *HashMap) removeKeys(keys []graph.VID, bit Bits) {
	for _, w := range keys {
		slot := m.findForDelete(w)
		if slot < 0 || m.vals[slot]&bit == 0 {
			continue
		}
		m.vals[slot] &^= bit
		m.stats.Removes++
		if m.vals[slot] == 0 {
			m.occupied--
		}
	}
}

// findForDelete probes for an existing key. Unlike Lookup it continues past
// invalidated slots: a bulk removal invalidates entries whose probe chains
// interleave, so holes opened earlier in the same bulk must be skipped
// (§VI-A — "we never delete a key that does not exist in the map, thus the
// deletion operation will always find the entry").
//
//flexlint:noalloc
func (m *HashMap) findForDelete(key graph.VID) int {
	n := len(m.keys)
	start := m.hash(key)
	steps := 0
	for i := 0; i < n; i++ {
		slot := (start + i) % n
		if i%m.banks == 0 {
			steps++
		}
		if m.vals[slot] != 0 && m.keys[slot] == key {
			m.stats.Probes += int64(steps)
			return slot
		}
	}
	m.stats.Probes += int64(steps)
	return -1
}

// findExisting is the lookup probe: it terminates at the first invalid slot.
// Remaining probe chains stay intact across stack-disciplined bulk removals
// (later-inserted entries are always removed first), so lookups never need
// to skip holes.
//
//flexlint:noalloc
func (m *HashMap) findExisting(key graph.VID) int {
	n := len(m.keys)
	start := m.hash(key)
	steps := 0
	for i := 0; i < n; i++ {
		slot := (start + i) % n
		if i%m.banks == 0 {
			steps++
		}
		if m.vals[slot] != 0 && m.keys[slot] == key {
			m.stats.Probes += int64(steps)
			return slot
		}
		if m.vals[slot] == 0 {
			m.stats.Probes += int64(steps)
			return -1
		}
	}
	m.stats.Probes += int64(steps)
	return -1
}

// Lookup implements Map.
//
//flexlint:noalloc
func (m *HashMap) Lookup(key graph.VID) Bits {
	m.stats.Lookups++
	slot := m.findExisting(key)
	if slot < 0 {
		return 0
	}
	m.stats.Hits++
	return m.vals[slot]
}

// Reset implements Map ("when a task is completed, all entries in c-map are
// invalidated").
func (m *HashMap) Reset() {
	for i := range m.vals {
		m.vals[i] = 0
	}
	m.occupied = 0
}

// Stats implements Map.
func (m *HashMap) Stats() Stats { return m.stats }

// Vector is the dense software c-map of prior work: one byte per graph
// vertex. Constant-time accesses, but |V| space per worker and poor cache
// behavior (§VI) — the motivation for the hardware hash map.
type Vector struct {
	vals  []Bits
	stats Stats
}

// NewVector builds a vector c-map for an n-vertex graph.
func NewVector(n int) *Vector { return &Vector{vals: make([]Bits, n)} }

// TryInsertLevel implements Map; the vector never overflows.
//
//flexlint:noalloc
func (v *Vector) TryInsertLevel(adj []graph.VID, depth int, bound graph.VID) bool {
	bit := Bits(1) << uint(depth)
	for _, w := range boundedPrefix(adj, bound) {
		v.vals[w] |= bit
		v.stats.Inserts++
	}
	return true
}

// RemoveLevel implements Map.
//
//flexlint:noalloc
func (v *Vector) RemoveLevel(adj []graph.VID, depth int, bound graph.VID) {
	bit := Bits(1) << uint(depth)
	for _, w := range boundedPrefix(adj, bound) {
		v.vals[w] &^= bit
		v.stats.Removes++
	}
}

// Lookup implements Map.
//
//flexlint:noalloc
func (v *Vector) Lookup(key graph.VID) Bits {
	v.stats.Lookups++
	b := v.vals[key]
	if b != 0 {
		v.stats.Hits++
	}
	return b
}

// Reset implements Map.
func (v *Vector) Reset() {
	for i := range v.vals {
		v.vals[i] = 0
	}
}

// Stats implements Map.
func (v *Vector) Stats() Stats { return v.stats }

// boundedPrefix returns the prefix of the ascending-sorted list with IDs
// strictly below bound.
//
//flexlint:noalloc
func boundedPrefix(adj []graph.VID, bound graph.VID) []graph.VID {
	if bound == NoBound {
		return adj
	}
	lo, hi := 0, len(adj)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if adj[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return adj[:lo]
}
