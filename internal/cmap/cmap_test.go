package cmap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/graph"
)

func sortedList(r *rand.Rand, n, space int) []graph.VID {
	seen := map[graph.VID]bool{}
	var out []graph.VID
	for i := 0; i < n; i++ {
		v := graph.VID(r.Intn(space))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// TestHashMapBasics exercises insert/lookup/remove on a single level.
func TestHashMapBasics(t *testing.T) {
	m := NewHashMap(64, 4)
	adj := []graph.VID{3, 7, 11, 42}
	if !m.TryInsertLevel(adj, 1, NoBound) {
		t.Fatal("insert rejected")
	}
	for _, v := range adj {
		if m.Lookup(v) != 1<<1 {
			t.Errorf("Lookup(%d) = %b, want bit 1", v, m.Lookup(v))
		}
	}
	if m.Lookup(5) != 0 {
		t.Error("absent key has bits")
	}
	m.RemoveLevel(adj, 1, NoBound)
	for _, v := range adj {
		if m.Lookup(v) != 0 {
			t.Errorf("after remove, Lookup(%d) = %b", v, m.Lookup(v))
		}
	}
	if m.Occupancy() != 0 {
		t.Errorf("occupancy %d after full removal", m.Occupancy())
	}
}

// TestHashMapBoundFilter: only IDs below the bound are inserted (§VI-B).
func TestHashMapBoundFilter(t *testing.T) {
	m := NewHashMap(64, 4)
	adj := []graph.VID{1, 5, 9, 13, 17}
	if !m.TryInsertLevel(adj, 0, 10) {
		t.Fatal("insert rejected")
	}
	for _, v := range adj {
		want := Bits(0)
		if v < 10 {
			want = 1
		}
		if m.Lookup(v) != want {
			t.Errorf("Lookup(%d) = %b want %b", v, m.Lookup(v), want)
		}
	}
	m.RemoveLevel(adj, 0, 10)
	if m.Occupancy() != 0 {
		t.Errorf("occupancy %d", m.Occupancy())
	}
}

// TestHashMapOverflowEstimate: the occupancy estimate must reject bulk
// inserts that would exceed the threshold, leaving the map untouched.
func TestHashMapOverflowEstimate(t *testing.T) {
	m := NewHashMap(16, 4) // 75% threshold = 12 entries
	small := []graph.VID{1, 2, 3}
	if !m.TryInsertLevel(small, 0, NoBound) {
		t.Fatal("small insert rejected")
	}
	big := make([]graph.VID, 11)
	for i := range big {
		big[i] = graph.VID(100 + i)
	}
	if m.TryInsertLevel(big, 1, NoBound) {
		t.Fatal("oversized insert accepted")
	}
	if m.Stats().Overflows == 0 {
		t.Error("overflow not counted")
	}
	for _, v := range big {
		if m.Lookup(v) != 0 {
			t.Errorf("rejected insert leaked key %d", v)
		}
	}
	// The earlier level must be intact.
	for _, v := range small {
		if m.Lookup(v) != 1 {
			t.Errorf("level-0 key %d lost", v)
		}
	}
}

// TestHashMapSharedKeysAcrossLevels: a key inserted at two levels keeps the
// other level's bit when one is removed (the '011' example of Fig 12).
func TestHashMapSharedKeysAcrossLevels(t *testing.T) {
	m := NewHashMap(64, 4)
	m.TryInsertLevel([]graph.VID{4, 5, 6}, 0, NoBound)
	m.TryInsertLevel([]graph.VID{5, 6, 7}, 1, NoBound)
	if got := m.Lookup(5); got != 0b11 {
		t.Errorf("Lookup(5) = %b want 11", got)
	}
	m.RemoveLevel([]graph.VID{5, 6, 7}, 1, NoBound)
	if got := m.Lookup(5); got != 0b01 {
		t.Errorf("after remove, Lookup(5) = %b want 01", got)
	}
}

// TestHashMapAgainstVectorOracle drives both implementations through random
// stack-disciplined workloads (the only access pattern GPM generates, §VI-A)
// and demands identical lookup results throughout.
func TestHashMapAgainstVectorOracle(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const space = 256
		hm := NewHashMap(1024, 4)
		vec := NewVector(space)

		type frame struct {
			adj   []graph.VID
			depth int
			bound graph.VID
			inHM  bool
		}
		var stack []frame
		for step := 0; step < 300; step++ {
			switch {
			case len(stack) > 0 && r.Intn(3) == 0: // pop
				fr := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if fr.inHM {
					hm.RemoveLevel(fr.adj, fr.depth, fr.bound)
				}
				vec.RemoveLevel(fr.adj, fr.depth, fr.bound)
			case len(stack) < 8: // push
				fr := frame{
					adj:   sortedList(r, r.Intn(30), space),
					depth: len(stack),
					bound: NoBound,
				}
				if r.Intn(2) == 0 {
					fr.bound = graph.VID(r.Intn(space))
				}
				fr.inHM = hm.TryInsertLevel(fr.adj, fr.depth, fr.bound)
				vec.TryInsertLevel(fr.adj, fr.depth, fr.bound)
				stack = append(stack, fr)
			}
			// Compare lookups over inserted-at-HM levels: levels the hash
			// map rejected are tracked by the caller (the engine falls back
			// to set ops), so mask them out of the oracle's answer.
			var hmMask Bits
			for _, fr := range stack {
				if fr.inHM {
					hmMask |= 1 << uint(fr.depth)
				}
			}
			for probe := 0; probe < 20; probe++ {
				key := graph.VID(r.Intn(space))
				if hm.Lookup(key) != vec.Lookup(key)&hmMask {
					return false
				}
			}
		}
		// Unwind everything; the map must end empty.
		for len(stack) > 0 {
			fr := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if fr.inHM {
				hm.RemoveLevel(fr.adj, fr.depth, fr.bound)
			}
		}
		return hm.Occupancy() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestHashMapProbeChainsSurviveBulkRemoval reproduces the §VI-A subtlety:
// keys colliding into one probe chain, removed in insertion order, must all
// be found (deletion probes skip holes opened within the same bulk).
func TestHashMapProbeChainsSurviveBulkRemoval(t *testing.T) {
	m := NewHashMap(8, 1)
	// Fill most of a tiny single-bank table so chains interleave heavily.
	adj := []graph.VID{1, 2, 3, 4, 5}
	if !m.TryInsertLevel(adj, 0, NoBound) {
		t.Fatal("insert rejected")
	}
	m.RemoveLevel(adj, 0, NoBound)
	if m.Occupancy() != 0 {
		t.Fatalf("stale entries after bulk removal: occupancy=%d", m.Occupancy())
	}
	for _, v := range adj {
		if m.Lookup(v) != 0 {
			t.Errorf("stale bits for %d", v)
		}
	}
}

// TestHashMapReset clears everything.
func TestHashMapReset(t *testing.T) {
	m := NewHashMap(32, 4)
	m.TryInsertLevel([]graph.VID{1, 2, 3}, 2, NoBound)
	m.Reset()
	if m.Occupancy() != 0 || m.Lookup(2) != 0 {
		t.Error("Reset left state behind")
	}
}

// TestHashMapReadRatio sanity-checks the §VII-C metric.
func TestHashMapReadRatio(t *testing.T) {
	m := NewHashMap(64, 4)
	m.TryInsertLevel([]graph.VID{1, 2}, 0, NoBound) // 2 writes
	for i := 0; i < 18; i++ {
		m.Lookup(graph.VID(i))
	}
	rr := m.Stats().ReadRatio()
	if rr < 0.89 || rr > 0.91 { // 18 reads / 20 accesses
		t.Errorf("read ratio %.3f want 0.90", rr)
	}
}

// TestNewHashMapBytes checks the 5-byte-per-entry sizing of §VI-A.
func TestNewHashMapBytes(t *testing.T) {
	m := NewHashMapBytes(10<<10, 4) // the paper's 2K-entry prototype
	if m.Capacity() != 2048 {
		t.Errorf("capacity %d want 2048", m.Capacity())
	}
}

func BenchmarkHashMapInsertRemove(b *testing.B) {
	m := NewHashMapBytes(8<<10, 4)
	adj := make([]graph.VID, 64)
	for i := range adj {
		adj[i] = graph.VID(i * 7)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.TryInsertLevel(adj, 1, NoBound)
		m.RemoveLevel(adj, 1, NoBound)
	}
}

func BenchmarkHashMapLookup(b *testing.B) {
	m := NewHashMapBytes(8<<10, 4)
	adj := make([]graph.VID, 512)
	for i := range adj {
		adj[i] = graph.VID(i * 3)
	}
	m.TryInsertLevel(adj, 1, NoBound)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Lookup(graph.VID(i % 2048))
	}
}
