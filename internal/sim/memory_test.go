package sim

import (
	"testing"

	"repro/internal/sched"
)

func TestConfigValidation(t *testing.T) {
	good := DefaultConfig()
	if err := good.validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Config{
		good.WithPEs(0),
		func() Config { c := good; c.FreqGHz = 0; return c }(),
		func() Config { c := good; c.LineBytes = 48; return c }(),
		func() Config { c := good; c.PrivateCacheBytes = 0; return c }(),
		func() Config { c := good; c.SharedBanks = 0; return c }(),
		func() Config { c := good; c.DRAMChannels = 0; return c }(),
		func() Config { c := good; c.CMapBytes = -1; return c }(),
	}
	for i, c := range bad {
		if err := c.validate(); err == nil {
			t.Errorf("bad config %d accepted", i)
		}
	}
}

func TestConfigWithers(t *testing.T) {
	c := DefaultConfig().WithPEs(7).WithCMapBytes(123)
	if c.PEs != 7 || c.CMapBytes != 123 || c.CMapUnlimited {
		t.Errorf("withers broken: %+v", c)
	}
	u := c.WithUnlimitedCMap()
	if !u.CMapUnlimited {
		t.Error("unlimited not set")
	}
	if c.CMapUnlimited {
		t.Error("wither mutated receiver")
	}
}

func TestCacheHitMiss(t *testing.T) {
	c := newCache(1024, 4, 64) // 16 lines, 4-way, 4 sets
	if c.access(0) {
		t.Error("cold access hit")
	}
	if !c.access(0) || !c.access(32) {
		t.Error("warm access missed (same line)")
	}
	if c.access(64) {
		t.Error("different line hit")
	}
	if c.hits != 2 || c.misses != 2 {
		t.Errorf("hits=%d misses=%d", c.hits, c.misses)
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := newCache(4*64, 4, 64) // one set of 4 ways
	for i := uint64(0); i < 4; i++ {
		c.access(i * 64)
	}
	c.access(0)      // refresh line 0 → MRU
	c.access(4 * 64) // evicts LRU = line 1
	if !c.access(0) {
		t.Error("line 0 evicted despite MRU refresh")
	}
	if c.access(1 * 64) {
		t.Error("line 1 should have been evicted")
	}
}

func TestCacheTinyGeometry(t *testing.T) {
	c := newCache(64, 8, 64) // fewer lines than ways
	if c.sets < 1 || c.ways < 1 {
		t.Errorf("degenerate geometry: %d sets %d ways", c.sets, c.ways)
	}
	c.access(0)
	if !c.access(0) {
		t.Error("single-line cache broken")
	}
}

func TestResourceReservation(t *testing.T) {
	var r resource
	if got := r.reserve(10, 4); got != 10 {
		t.Errorf("idle grant at %d", got)
	}
	if got := r.reserve(11, 4); got != 14 {
		t.Errorf("queued grant at %d, want 14", got)
	}
	if got := r.reserve(100, 4); got != 100 {
		t.Errorf("late grant at %d", got)
	}
	if r.busy != 12 {
		t.Errorf("busy=%d", r.busy)
	}
}

func TestAddressMapLayout(t *testing.T) {
	am := newAddressMap(1000)
	if am.colBase%4096 != 0 {
		t.Error("col array not page aligned")
	}
	if am.rowAddr(10) != 80 {
		t.Errorf("rowAddr(10) = %d", am.rowAddr(10))
	}
	if am.colAddr(0) != am.colBase || am.colAddr(3) != am.colBase+12 {
		t.Error("colAddr arithmetic")
	}
	// Frontier regions must not alias the graph or each other.
	f1 := frontierAddr(0, 1, 0)
	f2 := frontierAddr(1, 1, 0)
	f3 := frontierAddr(0, 2, 0)
	if f1 == f2 || f1 == f3 || f1 < am.colAddr(1<<30) {
		t.Error("frontier region aliasing")
	}
}

func TestBuildTasksSlicing(t *testing.T) {
	g := simGraphs()["er"]
	whole := sched.Expand(g, 0)
	if len(whole) != g.NumVertices() {
		t.Errorf("per-vertex tasks = %d", len(whole))
	}
	sliced := sched.Expand(g, 8)
	if len(sliced) <= len(whole) {
		t.Errorf("slicing produced %d tasks (≤ %d)", len(sliced), len(whole))
	}
	// Coverage: every vertex's full degree must be covered exactly once.
	cover := map[uint32]int{}
	for _, ts := range sliced {
		if !ts.Sliced() {
			cover[ts.V0] += g.Degree(ts.V0) // whole-vertex task
			continue
		}
		cover[ts.V0] += ts.Hi - ts.Lo
		if ts.Hi-ts.Lo > 8 {
			t.Errorf("slice too big: %+v", ts)
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		if d := g.Degree(uint32(v)); d > 0 && cover[uint32(v)] != d {
			t.Errorf("vertex %d covered %d of %d", v, cover[uint32(v)], d)
		}
	}
}

// TestSlicedCountsMatchUnsliced: task slicing must not change results.
func TestSlicedCountsMatchUnsliced(t *testing.T) {
	g := simGraphs()["cl"]
	for _, name := range []string{"triangle", "diamond"} {
		pl := mustPlan(t, name)
		a, err := Simulate(g, pl, DefaultConfig().WithPEs(4))
		if err != nil {
			t.Fatal(err)
		}
		cfg := DefaultConfig().WithPEs(4)
		cfg.TaskSliceElems = 16
		b, err := Simulate(g, pl, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if a.Count() != b.Count() {
			t.Errorf("%s: sliced=%d unsliced=%d", name, b.Count(), a.Count())
		}
		if b.Stats.Tasks <= a.Stats.Tasks {
			t.Errorf("%s: slicing did not increase task count", name)
		}
	}
}
