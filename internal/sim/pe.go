package sim

// The processing element (§IV-A): extender FSM + pruner + SIU/SDU + ancestor
// stack + private cache with frontier-list table + c-map scratchpad. The
// walker mirrors the CPU engine's candidate logic exactly (the equality of
// their counts is enforced by tests) while charging cycles for every
// microarchitectural event.

import (
	"repro/internal/cmap"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/setops"
)

type pe struct {
	id  int
	sim *simulator

	clock int64
	busy  int64 // cycles doing useful work
	stall int64 // cycles waiting for memory

	// bkt attributes every clock advance to one Breakdown bucket (Idle is
	// filled in by collect, from the retirement-to-makespan gap). lineDRAM
	// is set by the coordinator before answering an evNeedLine request and
	// tells the stall accounting whether the line came from DRAM or the L2;
	// the write happens-before the reply-channel receive, so it is race-free.
	bkt      Breakdown
	lineDRAM bool

	l1       *cache
	l1Hits   int64
	l1Misses int64

	cm        cmap.Map
	cmLevelOK []bool

	emb    []graph.VID
	levels [][]graph.VID
	mergeA []graph.VID
	mergeB []graph.VID

	reply chan int64 // coordinator → PE resume channel

	// sliceLo/sliceHi restrict the current task's level-1 adjacency range
	// (task slicing; hi == -1 means unrestricted).
	sliceLo, sliceHi int

	counts   []int64
	siuIters int64
	sduIters int64
	tasks    int64
	extends  int64

	// retired flips once the scheduler runs dry and the PE sends evDone;
	// the coordinator reads it for the pes_active time-series value.
	retired bool
}

func newPE(id int, s *simulator) *pe {
	cfg := s.cfg
	p := &pe{
		id:        id,
		sim:       s,
		l1:        newCache(cfg.PrivateCacheBytes, cfg.PrivateWays, cfg.LineBytes),
		cmLevelOK: make([]bool, s.pl.K),
		emb:       make([]graph.VID, s.pl.K),
		levels:    make([][]graph.VID, s.pl.K),
		counts:    make([]int64, len(s.pl.Patterns)),
		reply:     make(chan int64),
	}
	for i := range p.levels {
		p.levels[i] = make([]graph.VID, 0, s.g.MaxDegree())
	}
	switch {
	case cfg.CMapUnlimited:
		p.cm = cmap.NewVector(s.g.NumVertices())
	case cfg.CMapBytes > 0:
		p.cm = cmap.NewHashMapBytes(cfg.CMapBytes, cfg.CMapBanks)
	}
	return p
}

// tick charges n busy cycles of algorithmic work (the Compute bucket).
func (p *pe) tick(n int64) {
	p.clock += n
	p.busy += n
	p.bkt.Compute += n
}

// tickCMap charges n busy cycles of c-map scratchpad activity.
func (p *pe) tickCMap(n int64) {
	p.clock += n
	p.busy += n
	p.bkt.CMapProbe += n
}

// tickL1 charges n busy cycles of private-cache access latency.
func (p *pe) tickL1(n int64) {
	p.clock += n
	p.busy += n
	p.bkt.L1Stall += n
}

// tickSched charges n busy cycles of scheduler hand-off.
func (p *pe) tickSched(n int64) {
	p.clock += n
	p.busy += n
	p.bkt.DispatchWait += n
}

// readRange streams [addr, addr+bytes) through the private cache; misses go
// to the shared side and stall the PE until the line returns (simple
// in-order blocking PE, matching the FSM design).
func (p *pe) readRange(addr uint64, bytes int64) {
	if bytes <= 0 {
		return
	}
	line := uint64(p.sim.cfg.LineBytes)
	first := addr / line
	last := (addr + uint64(bytes) - 1) / line
	for l := first; l <= last; l++ {
		if p.l1.access(l * line) {
			p.l1Hits++
			p.tickL1(int64(p.sim.cfg.L1Latency))
			continue
		}
		p.l1Misses++
		p.memLine(l * line)
	}
}

// touchLocal models private-only accesses (frontier-list reads/writes):
// cache-tag maintained, but misses cost only the L1 latency since the data
// is PE-local scratch (spills are charged when the region no longer fits,
// via normal shared-side reads).
func (p *pe) touchLocal(addr uint64, bytes int64, spillable bool) {
	if bytes <= 0 {
		return
	}
	line := uint64(p.sim.cfg.LineBytes)
	first := addr / line
	last := (addr + uint64(bytes) - 1) / line
	for l := first; l <= last; l++ {
		if p.l1.access(l * line) {
			p.l1Hits++
			p.tickL1(int64(p.sim.cfg.L1Latency))
			continue
		}
		p.l1Misses++
		if spillable {
			// The frontier was evicted to the shared cache (§IV: "written
			// to the shared cache when evicted from the private cache").
			p.memLine(l * line)
		} else {
			p.tickL1(int64(p.sim.cfg.L1Latency))
		}
	}
}

// readAdjPrefix fetches vertex v's degree bounds (Row) and streams the
// neighbor-list prefix below bound; it returns the prefix slice.
func (p *pe) readAdjPrefix(v graph.VID, bound graph.VID) []graph.VID {
	am := p.sim.am
	p.readRange(am.rowAddr(v), 16) // Row[v], Row[v+1]
	adj := p.sim.g.Adj(v)
	prefix := setops.Bounded(adj, bound)
	// The hardware streams elements until the bound is exceeded: one extra
	// element read detects the bound.
	read := len(prefix)
	if read < len(adj) {
		read++
	}
	p.readRange(am.colAddr(p.sim.g.AdjStart(v)), int64(read)*4)
	return prefix
}

// runTask executes the search subtree rooted at the task's start vertex
// (restricted to its level-1 adjacency slice, when slicing is enabled),
// mirroring core.worker.runTask.
func (p *pe) runTask(t sched.Task) {
	start := p.clock
	p.tasks++
	p.tickSched(int64(p.sim.cfg.SchedLatency))
	root := p.sim.pl.Root
	p.emb[0] = t.V0
	p.sliceLo, p.sliceHi = t.Lo, t.Hi
	p.extends++
	p.tick(1) // push onto ancestor stack
	inserted := p.cmapInsert(root.Op, 0, t.V0)
	for _, c := range root.Children {
		p.walk(c, 1)
	}
	if inserted {
		p.cmapRemove(root.Op, 0, t.V0)
	}
	if tr := p.sim.cfg.Trace; tr.Enabled() {
		// PE state transition span: Working from task acceptance through the
		// last backtrack (timestamps are PE cycles; tracing charges none).
		tr.EmitAt(obs.CatSimPE, "task", p.id, start, p.clock-start,
			obs.Arg{Key: "v0", Val: int64(t.V0)})
	}
}

func (p *pe) walk(n *plan.Node, depth int) {
	cands := p.candidates(n.Op, depth)
	if n.IsLeaf() {
		// Reducer: one counter bump; candidates were already charged.
		p.counts[n.PatternIdx] += int64(len(cands))
		p.tick(1)
		return
	}
	for _, v := range cands {
		p.emb[depth] = v
		p.extends++
		p.tick(2) // FSM: push + state transition to Extending
		inserted := p.cmapInsert(n.Op, depth, v)
		for _, c := range n.Children {
			p.walk(c, depth+1)
		}
		if inserted {
			p.cmapRemove(n.Op, depth, v)
		}
		p.tick(1) // backtrack pop
	}
}

func (p *pe) cmapBoundVal(op plan.VertexOp) graph.VID {
	if op.CMapBound == plan.NoLevel {
		return cmap.NoBound
	}
	return p.emb[op.CMapBound]
}

// cmapInsert bulk-inserts the new vertex's neighbor list (§VI): the list is
// streamed from the private cache and each surviving entry costs one map
// write (plus extra probe groups).
func (p *pe) cmapInsert(op plan.VertexOp, depth int, v graph.VID) bool {
	if p.cm == nil || !op.InsertCMap {
		return false
	}
	bound := p.cmapBoundVal(op)
	before := p.cm.Stats()
	ok := p.cm.TryInsertLevel(p.sim.g.Adj(v), depth, bound)
	p.cmLevelOK[depth] = ok
	after := p.cm.Stats()
	if ok {
		// Stream the (bounded) neighbor list; degree was known from Row.
		prefix := setops.Bounded(p.sim.g.Adj(v), bound)
		p.readRange(p.sim.am.colAddr(p.sim.g.AdjStart(v)), int64(len(prefix))*4)
		p.chargeCMap(before, after)
	} else {
		p.tickCMap(1) // occupancy estimate rejected the insertion
	}
	return ok
}

func (p *pe) cmapRemove(op plan.VertexOp, depth int, v graph.VID) {
	bound := p.cmapBoundVal(op)
	before := p.cm.Stats()
	p.cm.RemoveLevel(p.sim.g.Adj(v), depth, bound)
	p.cmLevelOK[depth] = false
	after := p.cm.Stats()
	// The list is still resident in the private cache on the common path;
	// charge the map-side work.
	p.chargeCMap(before, after)
}

// chargeCMap converts c-map activity deltas into cycles: one cycle per
// access plus one per extra probe group beyond the first (§VI-A: "most
// accesses take only a single cycle").
func (p *pe) chargeCMap(before, after cmap.Stats) {
	accesses := (after.Inserts - before.Inserts) + (after.Removes - before.Removes) + (after.Lookups - before.Lookups)
	probes := after.Probes - before.Probes
	extra := probes - accesses
	if extra < 0 {
		extra = 0
	}
	p.tickCMap(accesses + extra)
}

// bound mirrors core.worker.bound.
func (p *pe) bound(op plan.VertexOp) graph.VID {
	b := setops.NoBound
	for _, idx := range op.UpperBounds {
		if v := p.emb[idx]; v < b {
			b = v
		}
	}
	if len(op.UpperBounds) > 0 {
		p.tick(1) // bound comparators operate in parallel
	}
	return b
}

// candidates mirrors core.worker.candidates with cycle charging.
func (p *pe) candidates(op plan.VertexOp, depth int) []graph.VID {
	bound := p.bound(op)

	var base []graph.VID
	var intersect, difference []int
	fromFrontier := false
	if op.FrontierBase != plan.NoLevel {
		full := p.levels[op.FrontierBase]
		base = setops.Bounded(full, bound)
		intersect, difference = op.IntersectWith, op.DifferenceWith
		fromFrontier = true
		// Frontier-list table lookup + stream the memoized list from the
		// private cache (spillable to L2).
		p.tick(1)
		p.touchLocal(frontierAddr(p.id, op.FrontierBase, 0), int64(len(base))*4, true)
	} else if depth == 1 && p.sliceHi >= 0 {
		// Task slicing: this task covers only elements [sliceLo, sliceHi)
		// of the start vertex's adjacency; stream (and pay for) just those.
		v := p.emb[op.Extender]
		adj := p.sim.g.Adj(v)
		lo, hi := p.sliceLo, p.sliceHi
		if lo > len(adj) {
			lo = len(adj)
		}
		if hi > len(adj) {
			hi = len(adj)
		}
		p.readRange(p.sim.am.rowAddr(v), 16)
		base = setops.Bounded(adj[lo:hi], bound)
		read := len(base)
		if read < hi-lo {
			read++ // one extra element detects the bound
		}
		p.readRange(p.sim.am.colAddr(p.sim.g.AdjStart(v)+int64(lo)), int64(read)*4)
		intersect, difference = op.Connected, op.Disconnected
	} else {
		base = p.readAdjPrefix(p.emb[op.Extender], bound)
		intersect, difference = op.Connected, op.Disconnected
	}

	out := p.levels[depth][:0]
	if p.cmapCovers(intersect, difference) {
		out = p.filterViaCMap(out, base, op, intersect, difference)
	} else {
		out = p.filterViaMerge(out, base, op, intersect, difference, bound)
	}
	p.levels[depth] = out

	if op.MemoizeFrontier {
		// Write the qualified list into the frontier region and update the
		// frontier-list table entry.
		p.touchLocal(frontierAddr(p.id, depth, 0), int64(len(out))*4, false)
		p.tick(1)
	}
	_ = fromFrontier
	return out
}

func (p *pe) cmapCovers(intersect, difference []int) bool {
	if p.cm == nil || (len(intersect) == 0 && len(difference) == 0) {
		return false
	}
	for _, j := range intersect {
		if !p.cmLevelOK[j] {
			return false
		}
	}
	for _, j := range difference {
		if !p.cmLevelOK[j] {
			return false
		}
	}
	return true
}

// filterViaCMap prunes each streamed candidate with a c-map query: one cycle
// per element plus extra probe groups, all in the pruner.
func (p *pe) filterViaCMap(out, base []graph.VID, op plan.VertexOp, intersect, difference []int) []graph.VID {
	var need, avoid cmap.Bits
	for _, j := range intersect {
		need |= 1 << uint(j)
	}
	for _, j := range difference {
		avoid |= 1 << uint(j)
	}
	for _, v := range base {
		before := p.cm.Stats()
		bits := p.cm.Lookup(v)
		p.chargeCMap(before, p.cm.Stats())
		if bits&need != need || bits&avoid != 0 {
			continue
		}
		if !p.distinct(v, op) {
			continue
		}
		out = append(out, v)
	}
	return out
}

// filterViaMerge runs the SIU/SDU path (Fig 9): both operand lists stream
// from memory and the merge advances one iteration per cycle.
func (p *pe) filterViaMerge(out, base []graph.VID, op plan.VertexOp, intersect, difference []int, bound graph.VID) []graph.VID {
	cur := base
	useA := true
	scalar := int64(p.sim.cfg.ScalarSetOpCycles)
	step := func(j int, diff bool) {
		opStart := p.clock
		// Stream the second operand (the first is cur, just produced).
		p.readAdjPrefix(p.emb[j], bound)
		dst := p.mergeB[:0]
		if useA {
			dst = p.mergeA[:0]
		}
		var iters int64
		if diff {
			dst, iters = setops.DifferenceCost(dst, cur, p.sim.g.Adj(p.emb[j]), bound)
			p.sduIters += iters
		} else {
			dst, iters = setops.IntersectCost(dst, cur, p.sim.g.Adj(p.emb[j]), bound)
			p.siuIters += iters
		}
		p.tick(iters * (1 + scalar))
		if tr := p.sim.cfg.Trace; tr.Enabled() {
			name := "siu"
			if diff {
				name = "sdu"
			}
			// Span covers operand streaming plus the merge loop.
			tr.EmitAt(obs.CatKernel, name, p.id, opStart, p.clock-opStart,
				obs.Arg{Key: "iters", Val: iters})
		}
		if useA {
			p.mergeA = dst
		} else {
			p.mergeB = dst
		}
		cur = dst
		useA = !useA
	}
	for _, j := range intersect {
		step(j, false)
	}
	for _, j := range difference {
		step(j, true)
	}
	if len(intersect) == 0 && len(difference) == 0 {
		// Pure bound/distinctness filtering still inspects each element.
		p.tick(int64(len(cur)))
	} else {
		p.tick(int64(len(cur))) // emit + distinctness pass
	}
	for _, v := range cur {
		if p.distinct(v, op) {
			out = append(out, v)
		}
	}
	return out
}

func (p *pe) distinct(v graph.VID, op plan.VertexOp) bool {
	for _, j := range op.NotEqual {
		if p.emb[j] == v {
			return false
		}
	}
	return true
}
