package sim

// Top-level simulator: a conservative discrete-event engine. Each PE runs as
// a coroutine (goroutine) that blocks at every *shared* event — a scheduler
// task request or a shared-memory line fetch — while pure compute and
// private-cache hits advance its local clock without synchronization. The
// coordinator always resumes the pending event with the smallest simulated
// time (ties broken by PE id), so shared resources observe requests in
// global time order and their queueing is exact and deterministic.

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/cmap"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
)

// Stats is the full instrumentation of one simulated run.
type Stats struct {
	Cycles  int64   // end-to-end makespan (max PE completion)
	Seconds float64 // Cycles / (FreqGHz × 1e9)

	Tasks      int64
	Extensions int64

	// Memory-system counters (Fig 16).
	NoCRequests  int64 // PE→shared-side requests (== L2 accesses)
	DRAMAccesses int64
	L1Hits       int64
	L1Misses     int64
	L2Hits       int64
	L2Misses     int64

	// Compute-unit counters.
	SIUIters int64
	SDUIters int64
	CMap     cmap.Stats

	// Per-PE utilization.
	BusyCycles  int64
	StallCycles int64
	Utilization float64 // busy / (PEs × makespan)

	// Breakdown attributes every one of the PEs × makespan cycles to
	// exactly one bucket (compute, c-map, L1/L2/DRAM stall, dispatch,
	// idle); the sum invariant is checked on every Simulate return.
	Breakdown Breakdown

	// Shared-resource occupancy, exported from the reservation cursors
	// (resource.busy): total occupied cycles plus derived utilization over
	// the makespan. The per-channel / per-bank detail rides in the slices,
	// which obs.AddStats deliberately skips — the scalar totals are the
	// machine-invariant exports, and the timeseries artifact carries the
	// per-channel series.
	DRAMBusyCycles  int64
	L2BusyCycles    int64
	DRAMChannelBusy []int64
	L2BankBusy      []int64
	DRAMUtilization float64 // DRAMBusyCycles / (channels × makespan)
	L2Utilization   float64 // L2BusyCycles / (banks × makespan)
}

// Result carries per-pattern counts (identical to the CPU engine's, by
// construction and by test) and the timing statistics.
type Result struct {
	Counts []int64
	Stats  Stats
}

// Count returns the single-pattern count, or 0 when the run produced no
// counts (a cancelled run, or an empty multi-pattern plan).
func (r Result) Count() int64 {
	if len(r.Counts) == 0 {
		return 0
	}
	return r.Counts[0]
}

// Speedup returns how much faster this run is than a baseline wall-clock
// duration in seconds.
func (r Result) Speedup(baselineSeconds float64) float64 {
	if r.Stats.Seconds == 0 {
		return 0
	}
	return baselineSeconds / r.Stats.Seconds
}

// event kinds exchanged between PE coroutines and the coordinator.
const (
	evNeedTask = iota // PE idle, wants the next start vertex
	evNeedLine        // PE blocked on a shared-memory line fetch
	evDone            // PE retired (no more tasks)
)

type event struct {
	pe   *pe
	kind int
	t    int64  // PE clock at the event
	addr uint64 // for evNeedLine
}

type simulator struct {
	cfg Config
	g   *graph.Graph
	pl  *plan.Plan
	am  addressMap
	mem *memSystem
	pes []*pe

	evCh     chan event
	tasks    []sched.Task
	nextTask int
	done     <-chan struct{} // run context's cancellation signal
}

// Simulate runs the accelerator model over the whole graph and returns
// counts plus statistics. The simulation is deterministic.
func Simulate(g *graph.Graph, pl *plan.Plan, cfg Config) (Result, error) {
	return SimulateContext(context.Background(), g, pl, cfg)
}

// SimulateContext is Simulate under a context: once ctx is cancelled the
// scheduler stops dispatching tasks, the PEs drain, and the partial counts
// and statistics accumulated so far are returned with ctx's error. An
// uncancelled run stays fully deterministic.
func SimulateContext(ctx context.Context, g *graph.Graph, pl *plan.Plan, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	if pl.RequiresDAG && !g.IsDAG() {
		return Result{}, fmt.Errorf("sim: plan %q requires an oriented DAG input", pl.Patterns[0].Name())
	}
	if !pl.RequiresDAG && g.IsDAG() {
		return Result{}, fmt.Errorf("sim: plan %q requires a symmetric graph, got a DAG", pl.Patterns[0].Name())
	}
	s := &simulator{
		cfg:  cfg,
		g:    g,
		pl:   pl,
		am:   newAddressMap(g.NumVertices()),
		mem:  newMemSystem(cfg),
		evCh: make(chan event),
		done: ctx.Done(),
	}
	s.tasks = sched.Expand(g, cfg.TaskSliceElems)
	s.pes = make([]*pe, cfg.PEs)
	for i := range s.pes {
		s.pes[i] = newPE(i, s)
	}
	s.run()
	res := s.collect()
	// The accounting invariant is a hard postcondition: every cycle of
	// every PE lands in exactly one Breakdown bucket. A violation is an
	// internal charging bug, surfaced rather than silently reported as a
	// skewed attribution.
	if err := res.Stats.Breakdown.CheckTotal(len(s.pes), res.Stats.Cycles); err != nil {
		return res, err
	}
	return res, ctx.Err()
}

// cancelled reports whether the run context has fired.
func (s *simulator) cancelled() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// run launches the PE coroutines and processes events in simulated-time
// order until every PE has retired.
func (s *simulator) run() {
	for _, p := range s.pes {
		go p.loop()
	}
	// Every live PE has exactly one outstanding event; keep them in a
	// min-(time, id) heap and always service the earliest.
	pq := make(eventHeap, 0, len(s.pes))
	for range s.pes {
		ev := <-s.evCh
		pq = append(pq, ev)
	}
	heap.Init(&pq)
	live := len(s.pes)
	for live > 0 {
		ev := heap.Pop(&pq).(event)
		// Sampling rides the global event order: before the earliest pending
		// event executes, snapshot every window boundary it crosses. All
		// live PEs are blocked on their reply channels here, so reading
		// their counters is race-free, and sampling only reads — cycle
		// counts are provably invariant under it.
		if sp := s.cfg.Sample; sp.Enabled() {
			for sp.Due(ev.t) {
				sp.Record(s.snapshot())
			}
		}
		switch ev.kind {
		case evDone:
			live--
			continue
		case evNeedTask:
			if s.nextTask < len(s.tasks) && !s.cancelled() {
				if tr := s.cfg.Trace; tr.Enabled() {
					tr.EmitAt(obs.CatSched, "dispatch", ev.pe.id, ev.t, 0,
						obs.Arg{Key: "task", Val: int64(s.nextTask)},
						obs.Arg{Key: "v0", Val: int64(s.tasks[s.nextTask].V0)})
				}
				ev.pe.reply <- int64(s.nextTask)
				s.nextTask++
			} else {
				ev.pe.reply <- -1
			}
		case evNeedLine:
			done, fromDRAM := s.mem.line(ev.addr, ev.t)
			ev.pe.lineDRAM = fromDRAM
			ev.pe.reply <- done
		}
		// The resumed PE runs until its next shared event; no other PE is
		// runnable meanwhile, so this receive is race-free.
		heap.Push(&pq, <-s.evCh)
	}
}

// await sends an event and blocks for the coordinator's answer.
func (p *pe) await(kind int, addr uint64) int64 {
	p.sim.evCh <- event{pe: p, kind: kind, t: p.clock, addr: addr}
	return <-p.reply
}

// loop is the PE coroutine body: fetch tasks until the scheduler runs dry.
func (p *pe) loop() {
	for {
		id := p.await(evNeedTask, 0)
		if id < 0 {
			if tr := p.sim.cfg.Trace; tr.Enabled() {
				tr.EmitAt(obs.CatSimPE, "retire", p.id, p.clock, 0)
			}
			p.retired = true
			p.sim.evCh <- event{pe: p, kind: evDone, t: p.clock}
			return
		}
		p.runTask(p.sim.tasks[id])
	}
}

// memLine blocks the PE until the line containing addr arrives from the
// shared side, advancing its clock to the completion time. The stall is
// attributed to the L2 or DRAM bucket according to where the line was
// served (lineDRAM, set by the coordinator before the reply).
func (p *pe) memLine(addr uint64) {
	done := p.await(evNeedLine, addr)
	if done > p.clock {
		d := done - p.clock
		p.stall += d
		if p.lineDRAM {
			p.bkt.DRAMStall += d
		} else {
			p.bkt.L2Stall += d
		}
		p.clock = done
	}
}

func (s *simulator) collect() Result {
	res := Result{Counts: make([]int64, len(s.pl.Patterns))}
	st := &res.Stats
	for _, p := range s.pes {
		if p.clock > st.Cycles {
			st.Cycles = p.clock
		}
		for i, c := range p.counts {
			res.Counts[i] += c
		}
		st.Tasks += p.tasks
		st.Extensions += p.extends
		st.L1Hits += p.l1Hits
		st.L1Misses += p.l1Misses
		st.SIUIters += p.siuIters
		st.SDUIters += p.sduIters
		st.BusyCycles += p.busy
		st.StallCycles += p.stall
		if p.cm != nil {
			st.CMap.Add(p.cm.Stats())
		}
	}
	for i := range res.Counts {
		res.Counts[i] /= s.pl.CountDivisor[i]
	}
	st.NoCRequests = s.mem.nocReqs
	st.DRAMAccesses = s.mem.dramReqs
	st.L2Hits = s.mem.l2Hits
	st.L2Misses = s.mem.l2Misses
	st.DRAMChannelBusy = s.mem.dramBusy()
	st.L2BankBusy = s.mem.l2BankBusy()
	for _, b := range st.DRAMChannelBusy {
		st.DRAMBusyCycles += b
	}
	for _, b := range st.L2BankBusy {
		st.L2BusyCycles += b
	}
	// Second PE pass for the breakdown: Idle is the retirement-to-makespan
	// gap, which needs the final makespan from the first pass.
	for _, p := range s.pes {
		st.Breakdown.Add(p.bkt)
		st.Breakdown.Idle += st.Cycles - p.clock
	}
	st.Seconds = float64(st.Cycles) / (s.cfg.FreqGHz * 1e9)
	if st.Cycles > 0 {
		st.Utilization = float64(st.BusyCycles) / (float64(st.Cycles) * float64(len(s.pes)))
		st.DRAMUtilization = float64(st.DRAMBusyCycles) / (float64(st.Cycles) * float64(len(s.mem.dram)))
		st.L2Utilization = float64(st.L2BusyCycles) / (float64(st.Cycles) * float64(len(s.mem.l2Banks)))
	}
	// Terminal sampler flush: one last snapshot at the makespan so the
	// series always ends on the run's final totals.
	if sp := s.cfg.Sample; sp.Enabled() {
		sp.RecordFinal(st.Cycles, s.snapshot())
	}
	return res
}

// snapshot captures the simulator's cumulative activity counters for one
// time-series sample. It only reads state: every live PE is parked on its
// reply channel when the coordinator calls this, and the memory-side
// cursors belong to the coordinator itself.
func (s *simulator) snapshot() map[string]int64 {
	vals := map[string]int64{
		"tasks_dispatched": int64(s.nextTask),
		"noc_requests":     s.mem.nocReqs,
		"dram_accesses":    s.mem.dramReqs,
		"l2_hits":          s.mem.l2Hits,
		"l2_misses":        s.mem.l2Misses,
	}
	var busy, stall, active, siu, sdu int64
	var cm cmap.Stats
	for _, p := range s.pes {
		busy += p.busy
		stall += p.stall
		if !p.retired {
			active++
		}
		siu += p.siuIters
		sdu += p.sduIters
		if p.cm != nil {
			cm.Add(p.cm.Stats())
		}
	}
	vals["pe_busy_cycles"] = busy
	vals["pe_stall_cycles"] = stall
	vals["pes_active"] = active
	vals["siu_iters"] = siu
	vals["sdu_iters"] = sdu
	vals["c_map_lookups"] = cm.Lookups
	vals["c_map_hits"] = cm.Hits
	var l2busy int64
	for _, b := range s.mem.l2BankBusy() {
		l2busy += b
	}
	vals["l2_busy_cycles"] = l2busy
	for ch, b := range s.mem.dramBusy() {
		vals[fmt.Sprintf("dram_busy_cycles.%d", ch)] = b
	}
	return vals
}

// eventHeap orders pending events by (time, PE id) for determinism.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].pe.id < h[j].pe.id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
