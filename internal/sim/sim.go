package sim

// Top-level simulator: a conservative discrete-event engine. Each PE runs as
// a coroutine (goroutine) that blocks at every *shared* event — a scheduler
// task request or a shared-memory line fetch — while pure compute and
// private-cache hits advance its local clock without synchronization. The
// coordinator always resumes the pending event with the smallest simulated
// time (ties broken by PE id), so shared resources observe requests in
// global time order and their queueing is exact and deterministic.

import (
	"container/heap"
	"context"
	"fmt"

	"repro/internal/cmap"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
	"repro/internal/sched"
)

// Stats is the full instrumentation of one simulated run.
type Stats struct {
	Cycles  int64   // end-to-end makespan (max PE completion)
	Seconds float64 // Cycles / (FreqGHz × 1e9)

	Tasks      int64
	Extensions int64

	// Memory-system counters (Fig 16).
	NoCRequests  int64 // PE→shared-side requests (== L2 accesses)
	DRAMAccesses int64
	L1Hits       int64
	L1Misses     int64
	L2Hits       int64
	L2Misses     int64

	// Compute-unit counters.
	SIUIters int64
	SDUIters int64
	CMap     cmap.Stats

	// Per-PE utilization.
	BusyCycles  int64
	StallCycles int64
	Utilization float64 // busy / (PEs × makespan)
}

// Result carries per-pattern counts (identical to the CPU engine's, by
// construction and by test) and the timing statistics.
type Result struct {
	Counts []int64
	Stats  Stats
}

// Count returns the single-pattern count, or 0 when the run produced no
// counts (a cancelled run, or an empty multi-pattern plan).
func (r Result) Count() int64 {
	if len(r.Counts) == 0 {
		return 0
	}
	return r.Counts[0]
}

// Speedup returns how much faster this run is than a baseline wall-clock
// duration in seconds.
func (r Result) Speedup(baselineSeconds float64) float64 {
	if r.Stats.Seconds == 0 {
		return 0
	}
	return baselineSeconds / r.Stats.Seconds
}

// event kinds exchanged between PE coroutines and the coordinator.
const (
	evNeedTask = iota // PE idle, wants the next start vertex
	evNeedLine        // PE blocked on a shared-memory line fetch
	evDone            // PE retired (no more tasks)
)

type event struct {
	pe   *pe
	kind int
	t    int64  // PE clock at the event
	addr uint64 // for evNeedLine
}

type simulator struct {
	cfg Config
	g   *graph.Graph
	pl  *plan.Plan
	am  addressMap
	mem *memSystem
	pes []*pe

	evCh     chan event
	tasks    []sched.Task
	nextTask int
	done     <-chan struct{} // run context's cancellation signal
}

// Simulate runs the accelerator model over the whole graph and returns
// counts plus statistics. The simulation is deterministic.
func Simulate(g *graph.Graph, pl *plan.Plan, cfg Config) (Result, error) {
	return SimulateContext(context.Background(), g, pl, cfg)
}

// SimulateContext is Simulate under a context: once ctx is cancelled the
// scheduler stops dispatching tasks, the PEs drain, and the partial counts
// and statistics accumulated so far are returned with ctx's error. An
// uncancelled run stays fully deterministic.
func SimulateContext(ctx context.Context, g *graph.Graph, pl *plan.Plan, cfg Config) (Result, error) {
	if err := cfg.validate(); err != nil {
		return Result{}, err
	}
	if err := pl.Validate(); err != nil {
		return Result{}, err
	}
	if pl.RequiresDAG && !g.IsDAG {
		return Result{}, fmt.Errorf("sim: plan %q requires an oriented DAG input", pl.Patterns[0].Name())
	}
	if !pl.RequiresDAG && g.IsDAG {
		return Result{}, fmt.Errorf("sim: plan %q requires a symmetric graph, got a DAG", pl.Patterns[0].Name())
	}
	s := &simulator{
		cfg:  cfg,
		g:    g,
		pl:   pl,
		am:   newAddressMap(g.NumVertices()),
		mem:  newMemSystem(cfg),
		evCh: make(chan event),
		done: ctx.Done(),
	}
	s.tasks = sched.Expand(g, cfg.TaskSliceElems)
	s.pes = make([]*pe, cfg.PEs)
	for i := range s.pes {
		s.pes[i] = newPE(i, s)
	}
	s.run()
	return s.collect(), ctx.Err()
}

// cancelled reports whether the run context has fired.
func (s *simulator) cancelled() bool {
	select {
	case <-s.done:
		return true
	default:
		return false
	}
}

// run launches the PE coroutines and processes events in simulated-time
// order until every PE has retired.
func (s *simulator) run() {
	for _, p := range s.pes {
		go p.loop()
	}
	// Every live PE has exactly one outstanding event; keep them in a
	// min-(time, id) heap and always service the earliest.
	pq := make(eventHeap, 0, len(s.pes))
	for range s.pes {
		ev := <-s.evCh
		pq = append(pq, ev)
	}
	heap.Init(&pq)
	live := len(s.pes)
	for live > 0 {
		ev := heap.Pop(&pq).(event)
		switch ev.kind {
		case evDone:
			live--
			continue
		case evNeedTask:
			if s.nextTask < len(s.tasks) && !s.cancelled() {
				if tr := s.cfg.Trace; tr.Enabled() {
					tr.EmitAt(obs.CatSched, "dispatch", ev.pe.id, ev.t, 0,
						obs.Arg{Key: "task", Val: int64(s.nextTask)},
						obs.Arg{Key: "v0", Val: int64(s.tasks[s.nextTask].V0)})
				}
				ev.pe.reply <- int64(s.nextTask)
				s.nextTask++
			} else {
				ev.pe.reply <- -1
			}
		case evNeedLine:
			ev.pe.reply <- s.mem.line(ev.addr, ev.t)
		}
		// The resumed PE runs until its next shared event; no other PE is
		// runnable meanwhile, so this receive is race-free.
		heap.Push(&pq, <-s.evCh)
	}
}

// await sends an event and blocks for the coordinator's answer.
func (p *pe) await(kind int, addr uint64) int64 {
	p.sim.evCh <- event{pe: p, kind: kind, t: p.clock, addr: addr}
	return <-p.reply
}

// loop is the PE coroutine body: fetch tasks until the scheduler runs dry.
func (p *pe) loop() {
	for {
		id := p.await(evNeedTask, 0)
		if id < 0 {
			if tr := p.sim.cfg.Trace; tr.Enabled() {
				tr.EmitAt(obs.CatSimPE, "retire", p.id, p.clock, 0)
			}
			p.sim.evCh <- event{pe: p, kind: evDone, t: p.clock}
			return
		}
		p.runTask(p.sim.tasks[id])
	}
}

// memLine blocks the PE until the line containing addr arrives from the
// shared side, advancing its clock to the completion time.
func (p *pe) memLine(addr uint64) {
	done := p.await(evNeedLine, addr)
	if done > p.clock {
		p.stall += done - p.clock
		p.clock = done
	}
}

func (s *simulator) collect() Result {
	res := Result{Counts: make([]int64, len(s.pl.Patterns))}
	st := &res.Stats
	for _, p := range s.pes {
		if p.clock > st.Cycles {
			st.Cycles = p.clock
		}
		for i, c := range p.counts {
			res.Counts[i] += c
		}
		st.Tasks += p.tasks
		st.Extensions += p.extends
		st.L1Hits += p.l1Hits
		st.L1Misses += p.l1Misses
		st.SIUIters += p.siuIters
		st.SDUIters += p.sduIters
		st.BusyCycles += p.busy
		st.StallCycles += p.stall
		if p.cm != nil {
			st.CMap.Add(p.cm.Stats())
		}
	}
	for i := range res.Counts {
		res.Counts[i] /= s.pl.CountDivisor[i]
	}
	st.NoCRequests = s.mem.nocReqs
	st.DRAMAccesses = s.mem.dramReqs
	st.L2Hits = s.mem.l2Hits
	st.L2Misses = s.mem.l2Misses
	st.Seconds = float64(st.Cycles) / (s.cfg.FreqGHz * 1e9)
	if st.Cycles > 0 {
		st.Utilization = float64(st.BusyCycles) / (float64(st.Cycles) * float64(len(s.pes)))
	}
	return res
}

// eventHeap orders pending events by (time, PE id) for determinism.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].pe.id < h[j].pe.id
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
