package sim

import (
	"reflect"
	"testing"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

func simGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"er":   graph.ErdosRenyi(200, 900, 11),
		"cl":   graph.ChungLu(300, 1500, 2.3, 12),
		"rmat": graph.RMAT(8, 1200, 0.57, 0.19, 0.19, 13),
		"grid": graph.Grid(8, 8),
	}
}

func simPatterns() []*pattern.Pattern {
	return []*pattern.Pattern{
		pattern.Triangle(),
		pattern.FourCycle(),
		pattern.Diamond(),
		pattern.TailedTriangle(),
		pattern.KClique(4),
	}
}

// TestSimulatorCountsMatchEngine enforces the central invariant: the
// accelerator model and the CPU engine find exactly the same matches, for
// every c-map configuration.
func TestSimulatorCountsMatchEngine(t *testing.T) {
	for gname, g := range simGraphs() {
		for _, p := range simPatterns() {
			pl, err := plan.Compile(p, plan.Options{})
			if err != nil {
				t.Fatal(err)
			}
			want, err := core.Mine(g, pl, core.Options{Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			for _, cfg := range []Config{
				DefaultConfig().WithPEs(4).WithCMapBytes(0),
				DefaultConfig().WithPEs(4),
				DefaultConfig().WithPEs(4).WithCMapBytes(1 << 10),
				DefaultConfig().WithPEs(4).WithCMapBytes(64), // constant overflow
				DefaultConfig().WithPEs(4).WithUnlimitedCMap(),
			} {
				got, err := Simulate(g, pl, cfg)
				if err != nil {
					t.Fatal(err)
				}
				if got.Count() != want.Count() {
					t.Errorf("%s on %s (cmap=%d,unl=%v): sim=%d engine=%d",
						p.Name(), gname, cfg.CMapBytes, cfg.CMapUnlimited, got.Count(), want.Count())
				}
			}
		}
	}
}

// TestSimulatorDAGCliques checks the oriented k-clique path in the simulator.
func TestSimulatorDAGCliques(t *testing.T) {
	for gname, g := range simGraphs() {
		for k := 3; k <= 5; k++ {
			pl, err := plan.CompileCliqueDAG(k)
			if err != nil {
				t.Fatal(err)
			}
			dag := g.Orient()
			want, err := core.Mine(dag, pl, core.Options{Threads: 4})
			if err != nil {
				t.Fatal(err)
			}
			got, err := Simulate(dag, pl, DefaultConfig().WithPEs(8))
			if err != nil {
				t.Fatal(err)
			}
			if got.Count() != want.Count() {
				t.Errorf("%d-CL on %s: sim=%d engine=%d", k, gname, got.Count(), want.Count())
			}
		}
	}
}

// TestSimulatorMotifs checks the multi-pattern tree in the simulator.
func TestSimulatorMotifs(t *testing.T) {
	g := simGraphs()["cl"]
	pl, err := plan.CompileMotifs(3, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Mine(g, pl, core.Options{Threads: 4})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Simulate(g, pl, DefaultConfig().WithPEs(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Counts {
		if got.Counts[i] != want.Counts[i] {
			t.Errorf("3-MC %s: sim=%d engine=%d", pl.Patterns[i].Name(), got.Counts[i], want.Counts[i])
		}
	}
}

// TestSimulatorDeterminism: identical runs must produce identical cycles and
// stats.
func TestSimulatorDeterminism(t *testing.T) {
	g := simGraphs()["cl"]
	pl, err := plan.Compile(pattern.FourCycle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithPEs(16)
	a, err := Simulate(g, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Simulate(g, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.Stats, b.Stats) {
		t.Errorf("nondeterministic stats:\n%+v\n%+v", a.Stats, b.Stats)
	}
}

// TestSimulatorPEScaling: more PEs must not slow the accelerator down, and
// parallel efficiency over a modest range should be substantial.
func TestSimulatorPEScaling(t *testing.T) {
	g := graph.ChungLu(800, 6000, 2.3, 21)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	prev := int64(0)
	var oneCycles int64
	for _, pes := range []int{1, 2, 4, 8} {
		r, err := Simulate(g, pl, DefaultConfig().WithPEs(pes))
		if err != nil {
			t.Fatal(err)
		}
		if pes == 1 {
			oneCycles = r.Stats.Cycles
		} else if r.Stats.Cycles > prev {
			t.Errorf("%d PEs slower than %d: %d > %d cycles", pes, pes/2, r.Stats.Cycles, prev)
		}
		prev = r.Stats.Cycles
	}
	speedup8 := float64(oneCycles) / float64(prev)
	if speedup8 < 3 {
		t.Errorf("8-PE speedup over 1-PE too low: %.2f", speedup8)
	}
}

// TestSimulatorCMapReducesWork: with a c-map, 4-cycle mining should issue
// fewer NoC requests and finish in fewer cycles than without (Fig 14/16).
func TestSimulatorCMapReducesWork(t *testing.T) {
	// The graph must exceed the 32 kB private cache or there is no repeated
	// edgelist traffic for the c-map to save (the paper's graphs are orders
	// of magnitude past that).
	g := graph.ChungLu(4000, 40000, 2.3, 22)
	pl, err := plan.Compile(pattern.FourCycle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	no, err := Simulate(g, pl, DefaultConfig().WithPEs(8).WithCMapBytes(0))
	if err != nil {
		t.Fatal(err)
	}
	with, err := Simulate(g, pl, DefaultConfig().WithPEs(8).WithCMapBytes(8<<10))
	if err != nil {
		t.Fatal(err)
	}
	if with.Count() != no.Count() {
		t.Fatalf("counts diverge: %d vs %d", with.Count(), no.Count())
	}
	if with.Stats.Cycles >= no.Stats.Cycles {
		t.Errorf("cmap did not speed up 4-cycle: %d >= %d cycles", with.Stats.Cycles, no.Stats.Cycles)
	}
	if with.Stats.NoCRequests >= no.Stats.NoCRequests {
		t.Errorf("cmap did not reduce NoC traffic: %d >= %d", with.Stats.NoCRequests, no.Stats.NoCRequests)
	}
	if with.Stats.CMap.Lookups == 0 {
		t.Error("cmap unused")
	}
	if rr := with.Stats.CMap.ReadRatio(); rr < 0.5 {
		t.Errorf("unexpectedly low cmap read ratio: %.2f", rr)
	}
}

// TestSimulatorUtilization sanity-checks the utilization accounting.
func TestSimulatorUtilization(t *testing.T) {
	g := simGraphs()["er"]
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	r, err := Simulate(g, pl, DefaultConfig().WithPEs(4))
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats.Utilization <= 0 || r.Stats.Utilization > 1 {
		t.Errorf("utilization out of range: %v", r.Stats.Utilization)
	}
	if r.Stats.Cycles <= 0 || r.Stats.Seconds <= 0 {
		t.Errorf("no time elapsed: %+v", r.Stats)
	}
	if r.Stats.Tasks != int64(g.NumVertices()) {
		t.Errorf("tasks=%d want %d", r.Stats.Tasks, g.NumVertices())
	}
}

func mustPlan(t *testing.T, name string) *plan.Plan {
	t.Helper()
	p, err := pattern.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(p, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}
