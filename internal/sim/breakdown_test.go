package sim

// Tests for the cycle-accounting layer: every PE cycle must land in exactly
// one Breakdown bucket (the sum invariant), the attribution must mirror the
// coarse Busy/Stall/Idle split, and — the metamorphic contract backing the
// observability layer — attaching a tracer or a sampler must not move a
// single cycle between buckets.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// breakdownConfigs sweeps the attribution-relevant axes: c-map off (merge
// path, no CMapProbe), banked c-map (probe charging), unlimited c-map, task
// slicing, and the scalar-set-op ablation.
func breakdownConfigs() []Config {
	sliced := DefaultConfig().WithPEs(4)
	sliced.TaskSliceElems = 16
	scalar := DefaultConfig().WithPEs(4).WithCMapBytes(0)
	scalar.ScalarSetOpCycles = 3
	return []Config{
		DefaultConfig().WithPEs(4).WithCMapBytes(0),
		DefaultConfig().WithPEs(4),
		DefaultConfig().WithPEs(2).WithUnlimitedCMap(),
		sliced,
		scalar,
	}
}

func TestBreakdownSumsToMakespan(t *testing.T) {
	g := graph.ChungLu(500, 4000, 2.3, 17)
	for _, p := range []*pattern.Pattern{pattern.Triangle(), pattern.Diamond()} {
		pl, err := plan.Compile(p, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		for _, cfg := range breakdownConfigs() {
			res, err := Simulate(g, pl, cfg)
			if err != nil {
				t.Fatalf("%s cmap=%d: %v", p.Name(), cfg.CMapBytes, err)
			}
			b := res.Stats.Breakdown
			if err := b.CheckTotal(cfg.PEs, res.Stats.Cycles); err != nil {
				t.Errorf("%s cmap=%d: %v", p.Name(), cfg.CMapBytes, err)
			}
			// The buckets refine Busy/Stall/Idle: busy work is compute +
			// c-map + L1 + dispatch, stalls are L2 + DRAM, and the remainder
			// of PEs × makespan is idle tail.
			if busy := b.Compute + b.CMapProbe + b.L1Stall + b.DispatchWait; busy != res.Stats.BusyCycles {
				t.Errorf("%s cmap=%d: busy buckets sum to %d, Stats.BusyCycles=%d",
					p.Name(), cfg.CMapBytes, busy, res.Stats.BusyCycles)
			}
			if stall := b.L2Stall + b.DRAMStall; stall != res.Stats.StallCycles {
				t.Errorf("%s cmap=%d: stall buckets sum to %d, Stats.StallCycles=%d",
					p.Name(), cfg.CMapBytes, stall, res.Stats.StallCycles)
			}
			if b.Compute <= 0 || b.DispatchWait <= 0 || b.L1Stall <= 0 {
				t.Errorf("%s cmap=%d: degenerate breakdown %+v", p.Name(), cfg.CMapBytes, b)
			}
			if cfg.CMapBytes == 0 && !cfg.CMapUnlimited && b.CMapProbe != 0 {
				t.Errorf("%s: c-map disabled but CMapProbe=%d", p.Name(), b.CMapProbe)
			}
			if (cfg.CMapBytes > 0 || cfg.CMapUnlimited) && b.CMapProbe == 0 {
				t.Errorf("%s cmap=%d: c-map enabled but no CMapProbe cycles", p.Name(), cfg.CMapBytes)
			}
		}
	}
}

// TestBreakdownDRAMStallAppears: a graph far beyond the private caches must
// show DRAM-attributed stalls, and a single-PE run has no idle tail.
func TestBreakdownDRAMStallAppears(t *testing.T) {
	g := graph.ChungLu(4000, 40000, 2.3, 22)
	pl, err := plan.Compile(pattern.FourCycle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(g, pl, DefaultConfig().WithPEs(1).WithCMapBytes(0))
	if err != nil {
		t.Fatal(err)
	}
	b := res.Stats.Breakdown
	if b.DRAMStall == 0 {
		t.Errorf("no DRAM-attributed stall on a cache-exceeding graph: %+v", b)
	}
	if b.L2Stall == 0 {
		t.Errorf("no L2-attributed stall: %+v", b)
	}
	if b.Idle != 0 {
		t.Errorf("single-PE run reports idle tail %d", b.Idle)
	}
}

// TestBreakdownInvariantUnderObservers is the metamorphic half of the
// acceptance criterion: tracing and sampling (separately and together) must
// leave the whole Stats block — the Breakdown included — untouched.
func TestBreakdownInvariantUnderObservers(t *testing.T) {
	g := graph.ChungLu(500, 4000, 2.3, 17)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithPEs(4)
	cfg.TaskSliceElems = 16
	plain, err := Simulate(g, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	observers := map[string]func(*Config){
		"traced":  func(c *Config) { c.Trace = obs.NewTracer(obs.NewVirtualClock(), 1<<17) },
		"sampled": func(c *Config) { c.Sample = obs.NewSampler(1 << 10) },
		"both": func(c *Config) {
			c.Trace = obs.NewTracer(obs.NewVirtualClock(), 1<<17)
			c.Sample = obs.NewSampler(1 << 10)
		},
	}
	for name, attach := range observers {
		c := cfg
		attach(&c)
		got, err := Simulate(g, pl, c)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !reflect.DeepEqual(got.Counts, plain.Counts) {
			t.Errorf("%s: observer changed counts: %v vs %v", name, got.Counts, plain.Counts)
		}
		if !reflect.DeepEqual(got.Stats, plain.Stats) {
			t.Errorf("%s: observer changed stats:\nwith    %+v\nwithout %+v", name, got.Stats, plain.Stats)
		}
		if c.Sample.Enabled() && len(c.Sample.Samples()) == 0 {
			t.Errorf("%s: sampler attached but recorded nothing", name)
		}
	}
}

// TestBreakdownHoldsOnCancelledRun: partial results from a cancelled
// simulation still account for every cycle.
func TestBreakdownHoldsOnCancelledRun(t *testing.T) {
	g := graph.ChungLu(500, 4000, 2.3, 17)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already expired: the scheduler dispatches nothing
	cfg := DefaultConfig().WithPEs(4)
	res, err := SimulateContext(ctx, g, pl, cfg)
	if err == nil {
		t.Fatal("cancelled run returned nil error")
	}
	if ierr := res.Stats.Breakdown.CheckTotal(cfg.PEs, res.Stats.Cycles); ierr != nil {
		t.Error(ierr)
	}
}

func TestBreakdownShare(t *testing.T) {
	b := Breakdown{Compute: 50, CMapProbe: 10, L1Stall: 10, L2Stall: 10, DRAMStall: 10, DispatchWait: 5, Idle: 5}
	names, shares := b.Share()
	if len(names) != len(shares) || len(names) != 7 {
		t.Fatalf("share shape: %v %v", names, shares)
	}
	var sum float64
	for _, s := range shares {
		sum += s
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("shares sum to %v, want 1", sum)
	}
	if names[0] != "compute" || shares[0] != 0.5 {
		t.Errorf("compute share = %v (%v)", shares[0], names[0])
	}
	zNames, zShares := Breakdown{}.Share()
	for i := range zShares {
		if zShares[i] != 0 {
			t.Errorf("zero breakdown has nonzero share %s=%v", zNames[i], zShares[i])
		}
	}
}
