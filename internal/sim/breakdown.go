package sim

import "fmt"

// Breakdown attributes every PE cycle of a run to exactly one bucket — the
// per-resource cycle decomposition the paper's evaluation reasons with
// (PE utilization, c-map effectiveness, DRAM saturation, §VI–§VII). The
// buckets are orthogonal to the Busy/Stall split of Stats: Busy cycles
// spread over Compute, CMapProbe, L1Stall and DispatchWait, Stall cycles
// over L2Stall and DRAMStall, and the cycles a retired PE spends waiting
// for the makespan land in Idle. The accounting is total: the bucket sum
// equals PEs × makespan on every run, enforced by CheckTotal on every
// Simulate return.
type Breakdown struct {
	// Compute is extender-FSM, pruner, SIU/SDU merge and bound-comparator
	// work — the cycles the PE spends doing the algorithm.
	Compute int64
	// CMapProbe is c-map scratchpad activity: insert/remove/lookup accesses
	// plus extra probe groups and rejected-insertion checks.
	CMapProbe int64
	// L1Stall is private-cache access latency: hit latency on reads and the
	// local-scratch charge for frontier-table traffic that never leaves
	// the PE.
	L1Stall int64
	// L2Stall is time blocked on a shared-side line that the L2 served.
	L2Stall int64
	// DRAMStall is time blocked on a shared-side line that missed the L2
	// and went to a DRAM channel.
	DRAMStall int64
	// DispatchWait is the scheduler hand-off cost paid at every task
	// acceptance (Config.SchedLatency per task).
	DispatchWait int64
	// Idle is the tail: cycles between a PE's retirement and the global
	// makespan, during which the PE has no work left.
	Idle int64
}

// Add accumulates o into b, field by field (every bucket — the statsum
// discipline, even though Breakdown is aggregated here rather than through
// a Stats.Add).
func (b *Breakdown) Add(o Breakdown) {
	b.Compute += o.Compute
	b.CMapProbe += o.CMapProbe
	b.L1Stall += o.L1Stall
	b.L2Stall += o.L2Stall
	b.DRAMStall += o.DRAMStall
	b.DispatchWait += o.DispatchWait
	b.Idle += o.Idle
}

// Total returns the bucket sum.
func (b Breakdown) Total() int64 {
	return b.Compute + b.CMapProbe + b.L1Stall + b.L2Stall + b.DRAMStall +
		b.DispatchWait + b.Idle
}

// CheckTotal enforces the accounting invariant: the buckets must sum to
// pes × makespan, i.e. every cycle of every PE is attributed to exactly one
// bucket. A non-nil error means the simulator's cycle charging and its
// attribution diverged — an internal bug, never an input problem.
func (b Breakdown) CheckTotal(pes int, makespan int64) error {
	want := int64(pes) * makespan
	if got := b.Total(); got != want {
		return fmt.Errorf("sim: cycle accounting broken: breakdown sums to %d, want PEs×makespan = %d×%d = %d (%+v)",
			got, pes, makespan, want, b)
	}
	return nil
}

// Share returns each bucket's fraction of the total as parallel slices of
// (name, fraction), in declaration order — the rendering order used by the
// experiments report and the -stats printout. A zero-total breakdown yields
// zero shares.
func (b Breakdown) Share() ([]string, []float64) {
	names := []string{"compute", "c-map", "l1", "l2", "dram", "dispatch", "idle"}
	vals := []int64{b.Compute, b.CMapProbe, b.L1Stall, b.L2Stall, b.DRAMStall, b.DispatchWait, b.Idle}
	shares := make([]float64, len(vals))
	if total := b.Total(); total > 0 {
		for i, v := range vals {
			shares[i] = float64(v) / float64(total)
		}
	}
	return names, shares
}
