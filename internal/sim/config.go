// Package sim models the FlexMiner accelerator of §IV at cycle level: a
// scheduler dispatching per-vertex tasks to a collection of processing
// elements (PEs), each with the extender finite-state machine, a pruner
// backed by the banked c-map scratchpad, SIU/SDU set-operation units, an
// ancestor stack, a private cache with a frontier-list table — all behind a
// NoC, a shared L2 and a DDR4-like DRAM model.
//
// Timing model: the simulation is event-driven over a global cycle timeline.
// Each PE advances a local cycle counter as it executes; the scheduler always
// dispatches the next task to the PE whose clock is smallest (dynamic
// assignment to idle PEs, §IV-A). Shared resources — L2 banks and DRAM
// channels — are modeled as next-free-cycle reservations, so bandwidth
// contention between PEs is captured without lockstep iteration. Unit costs
// mirror the paper: 1 merge-loop iteration per SIU/SDU cycle (Fig 9), 1 c-map
// access per cycle for single-group probes (§VI-A), 1.3 GHz PEs.
package sim

import "repro/internal/obs"

// Config describes an accelerator configuration. The zero value is unusable;
// start from DefaultConfig.
type Config struct {
	// PEs is the processing-element count (the paper scales 1..64).
	PEs int

	// FreqGHz converts cycles to seconds; the paper's PE runs at 1.3 GHz
	// (synthesized, Silvaco 15nm, 0.18 mm² per PE — recorded here for
	// reference; area is not modeled).
	FreqGHz float64

	// LineBytes is the cache-line size.
	LineBytes int

	// PrivateCacheBytes/PrivateWays size each PE's private cache (32 kB).
	PrivateCacheBytes int
	PrivateWays       int

	// SharedCacheBytes/SharedWays/SharedBanks size the shared L2 (4 MB).
	SharedCacheBytes int
	SharedWays       int
	SharedBanks      int

	// CMapBytes sizes each PE's c-map scratchpad at 5 B/entry (§VI-A);
	// 0 disables the c-map (the "no-cmap" configurations of Fig 13).
	// CMapUnlimited overrides with an unbounded map ("cmap-unlimited").
	CMapBytes     int
	CMapBanks     int
	CMapUnlimited bool

	// Latencies, in PE cycles.
	L1Latency    int // private cache hit
	NoCLatency   int // one-way PE↔L2 hop
	L2Latency    int // L2 array access on hit
	DRAMLatency  int // row access after channel grant
	SchedLatency int // task dispatch

	// Occupancy/service costs.
	L2ServiceCycles   int // L2 bank busy per request
	DRAMServiceCycles int // DRAM channel busy per line (bandwidth)
	DRAMChannels      int

	// ScalarSetOps charges extra cycles per merge iteration, modeling a
	// general-purpose core without the specialized SIU/SDU (the PE
	// specialization ablation of §VII-E).
	ScalarSetOpCycles int

	// TaskSliceElems, when positive, splits each start-vertex task into
	// slices of at most this many level-1 adjacency elements. The paper
	// schedules whole vertices (its graphs supply millions of tasks); our
	// scaled stand-ins have only thousands, so a single hub subtree would
	// otherwise dominate the makespan and mask every other effect. Slicing
	// restores the paper's task-count-to-PE ratio. 0 = per-vertex tasks.
	TaskSliceElems int

	// Trace, when non-nil, receives scheduler dispatch decisions, SIU/SDU
	// operation spans, and PE task/retire transitions, all timestamped in PE
	// cycles (obs.Tracer.EmitAt — the tracer clock is never consulted).
	// Tracing never calls tick(), so cycle counts are invariant under it,
	// and because the coordinator serializes PE execution the emission
	// sequence — hence the exported trace — is deterministic.
	Trace *obs.Tracer

	// Sample, when non-nil, receives fixed-window snapshots of cumulative
	// activity counters (PE occupancy, SIU/SDU iterations, c-map hit
	// totals, per-channel DRAM busy, NoC requests), timestamped in global
	// simulated cycles. The coordinator drives it in event order, so the
	// recorded series is deterministic, and sampling only reads simulator
	// state — cycle counts are invariant under it (tested alongside the
	// tracing invariance).
	Sample *obs.Sampler
}

// DefaultConfig mirrors the paper's evaluation setup (§VII-A): 1.3 GHz PEs,
// 32 kB private caches, 8 kB c-map with 4 banks, 4 MB shared L2 and
// DDR4-2666 with 4 channels.
func DefaultConfig() Config {
	return Config{
		PEs:               16,
		FreqGHz:           1.3,
		LineBytes:         64,
		PrivateCacheBytes: 32 << 10,
		PrivateWays:       4,
		SharedCacheBytes:  4 << 20,
		SharedWays:        8,
		SharedBanks:       16,
		CMapBytes:         8 << 10,
		CMapBanks:         4,
		L1Latency:         1,
		NoCLatency:        8,
		L2Latency:         12,
		DRAMLatency:       120,
		SchedLatency:      16,
		L2ServiceCycles:   2,
		DRAMServiceCycles: 4, // 64 B line at ~21 GB/s/channel, 1.3 GHz
		DRAMChannels:      4,
		ScalarSetOpCycles: 0,
	}
}

// WithPEs returns a copy with the PE count replaced.
func (c Config) WithPEs(n int) Config { c.PEs = n; return c }

// WithCMapBytes returns a copy with the c-map size replaced (0 disables).
func (c Config) WithCMapBytes(b int) Config {
	c.CMapBytes = b
	c.CMapUnlimited = false
	return c
}

// WithUnlimitedCMap returns a copy using the impractical unlimited c-map
// upper bound of Fig 14.
func (c Config) WithUnlimitedCMap() Config {
	c.CMapUnlimited = true
	return c
}

func (c Config) validate() error {
	switch {
	case c.PEs < 1:
		return errf("PEs=%d", c.PEs)
	case c.FreqGHz <= 0:
		return errf("FreqGHz=%v", c.FreqGHz)
	case c.LineBytes < 8 || c.LineBytes&(c.LineBytes-1) != 0:
		return errf("LineBytes=%d (want power of two ≥ 8)", c.LineBytes)
	case c.PrivateCacheBytes < c.LineBytes || c.PrivateWays < 1:
		return errf("private cache %dB/%d-way", c.PrivateCacheBytes, c.PrivateWays)
	case c.SharedCacheBytes < c.LineBytes || c.SharedWays < 1 || c.SharedBanks < 1:
		return errf("shared cache %dB/%d-way/%d banks", c.SharedCacheBytes, c.SharedWays, c.SharedBanks)
	case c.DRAMChannels < 1:
		return errf("DRAMChannels=%d", c.DRAMChannels)
	case c.CMapBytes < 0:
		return errf("CMapBytes=%d", c.CMapBytes)
	}
	return nil
}

type configError string

func (e configError) Error() string { return "sim: bad config: " + string(e) }

func errf(format string, args ...any) error {
	return configError(sprintf(format, args...))
}
