package sim

import (
	"context"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// TestSimulateContextCancelled: with a pre-cancelled context the scheduler
// dispatches nothing, the PEs drain immediately, and the partial (empty)
// result comes back with ctx's error.
func TestSimulateContextCancelled(t *testing.T) {
	g := graph.ChungLu(400, 3000, 2.3, 5)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := SimulateContext(ctx, g, pl, DefaultConfig().WithPEs(4))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if res.Stats.Tasks != 0 {
		t.Errorf("cancelled run dispatched %d tasks", res.Stats.Tasks)
	}
	if res.Count() != 0 {
		t.Errorf("cancelled run counted %d", res.Count())
	}
}

// TestSimulateContextComplete: a background context must leave the
// simulation and its determinism untouched.
func TestSimulateContextComplete(t *testing.T) {
	g := graph.ChungLu(400, 3000, 2.3, 5)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Simulate(g, pl, DefaultConfig().WithPEs(4))
	if err != nil {
		t.Fatal(err)
	}
	ctxed, err := SimulateContext(context.Background(), g, pl, DefaultConfig().WithPEs(4))
	if err != nil {
		t.Fatal(err)
	}
	if plain.Count() != ctxed.Count() || plain.Stats.Cycles != ctxed.Stats.Cycles {
		t.Errorf("context changed the run: %d/%d cycles vs %d/%d",
			plain.Count(), plain.Stats.Cycles, ctxed.Count(), ctxed.Stats.Cycles)
	}
}

// TestSimResultCountEmpty: Count on an empty result must not panic.
func TestSimResultCountEmpty(t *testing.T) {
	if c := (Result{}).Count(); c != 0 {
		t.Errorf("empty Result.Count() = %d, want 0", c)
	}
}
