package sim

// Golden-file lockdown of the simulator time-series artifact, mirroring the
// trace goldens: the coordinator drives the sampler in global event order,
// so an identical simulation records an identical series every run and the
// flexminer-timeseries/v1 export is byte-comparable. Regenerate with:
//
//	go test ./internal/sim -run TimeseriesGolden -update
//
// and review the diff like any other golden change.

import (
	"bytes"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

func runSampled(t *testing.T, window int64) (*obs.Sampler, Result) {
	t.Helper()
	g, pl, cfg := tracedWorkload(t)
	sp := obs.NewSampler(window)
	cfg.Sample = sp
	res, err := Simulate(g, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sp, res
}

func TestSimTimeseriesGolden(t *testing.T) {
	const window = 1 << 8
	sp, res := runSampled(t, window)
	samples := sp.Samples()
	if len(samples) < 2 {
		t.Fatalf("only %d samples; shrink the window", len(samples))
	}
	// The series is monotone in time and every cumulative counter is
	// non-decreasing across samples.
	for i := 1; i < len(samples); i++ {
		if samples[i].T <= samples[i-1].T {
			t.Fatalf("sample %d at t=%d not after t=%d", i, samples[i].T, samples[i-1].T)
		}
		for k, v := range samples[i-1].Values {
			if k == "pes_active" {
				continue // occupancy falls as PEs retire
			}
			if samples[i].Values[k] < v {
				t.Errorf("series %q decreased: %d -> %d at t=%d", k, v, samples[i].Values[k], samples[i].T)
			}
		}
	}
	// The terminal flush lands exactly on the makespan with the final
	// totals, so the last sample agrees with Stats.
	last := samples[len(samples)-1]
	if last.T != res.Stats.Cycles {
		t.Errorf("last sample at t=%d, makespan %d", last.T, res.Stats.Cycles)
	}
	if got := last.Values["noc_requests"]; got != res.Stats.NoCRequests {
		t.Errorf("final noc_requests=%d, Stats=%d", got, res.Stats.NoCRequests)
	}
	if got := last.Values["pe_busy_cycles"]; got != res.Stats.BusyCycles {
		t.Errorf("final pe_busy_cycles=%d, Stats=%d", got, res.Stats.BusyCycles)
	}
	if got := last.Values["tasks_dispatched"]; got != res.Stats.Tasks {
		t.Errorf("final tasks_dispatched=%d, Stats.Tasks=%d", got, res.Stats.Tasks)
	}
	var dramBusy int64
	for ch := range res.Stats.DRAMChannelBusy {
		dramBusy += last.Values[sprintf("dram_busy_cycles.%d", ch)]
	}
	if dramBusy != res.Stats.DRAMBusyCycles {
		t.Errorf("final per-channel dram busy sums to %d, Stats=%d", dramBusy, res.Stats.DRAMBusyCycles)
	}

	var out bytes.Buffer
	if err := sp.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	// Same workload, fresh simulator: the exported bytes must be identical.
	sp2, _ := runSampled(t, window)
	var out2 bytes.Buffer
	if err := sp2.WriteJSON(&out2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), out2.Bytes()) {
		t.Error("two identical simulations exported different timeseries bytes")
	}
	checkGolden(t, filepath.Join("testdata", "golden", "diamond_er60.timeseries.json"), out.Bytes())
}
