package sim

import "fmt"

func sprintf(format string, args ...any) string { return fmt.Sprintf(format, args...) }

// cache is a tag-only set-associative LRU cache. The simulator tracks which
// lines would be resident, not their contents (the functional data comes
// from the in-memory graph).
type cache struct {
	sets      int
	ways      int
	lineShift uint
	tags      []uint64 // sets×ways, 0 = invalid (tag stored +1)
	hits      int64
	misses    int64
}

func newCache(bytes, ways, lineBytes int) *cache {
	lines := bytes / lineBytes
	if lines < ways {
		ways = lines
	}
	if ways < 1 {
		ways = 1
	}
	sets := lines / ways
	if sets < 1 {
		sets = 1
	}
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &cache{sets: sets, ways: ways, lineShift: shift, tags: make([]uint64, sets*ways)}
}

// access probes (and fills) the line containing addr, maintaining LRU order
// within the set (most recent first). It reports a hit.
func (c *cache) access(addr uint64) bool {
	line := addr >> c.lineShift
	set := int(line % uint64(c.sets))
	tag := line + 1
	base := set * c.ways
	ways := c.tags[base : base+c.ways]
	for i, t := range ways {
		if t == tag {
			copy(ways[1:i+1], ways[:i]) // move to MRU
			ways[0] = tag
			c.hits++
			return true
		}
	}
	copy(ways[1:], ways[:c.ways-1]) // evict LRU
	ways[0] = tag
	c.misses++
	return false
}

// resource models a pipelined shared unit (L2 bank, DRAM channel) with a
// next-free-cycle cursor. The discrete-event coordinator delivers requests
// in global simulated-time order (each PE blocks at every shared-memory
// event and the minimum-time event runs next), so the cursor is an exact
// FCFS queueing model.
type resource struct {
	nextFree int64
	busy     int64 // total occupied cycles, for utilization stats
}

// reserve books svc cycles at or after t and returns the grant time.
func (r *resource) reserve(t, svc int64) int64 {
	start := t
	if r.nextFree > start {
		start = r.nextFree
	}
	r.nextFree = start + svc
	r.busy += svc
	return start
}

// memSystem is the shared memory side: NoC + banked L2 + DRAM channels.
// PEs call read with their local clock; the return value is the cycle at
// which the last requested line arrives.
type memSystem struct {
	cfg       Config
	l2        *cache
	l2Banks   []resource
	dram      []resource
	nocReqs   int64 // PE→L2 requests (the paper's "NoC traffic", Fig 16)
	dramReqs  int64
	l2Hits    int64
	l2Misses  int64
	lineBytes uint64
}

func newMemSystem(cfg Config) *memSystem {
	return &memSystem{
		cfg:       cfg,
		l2:        newCache(cfg.SharedCacheBytes, cfg.SharedWays, cfg.LineBytes),
		l2Banks:   make([]resource, cfg.SharedBanks),
		dram:      make([]resource, cfg.DRAMChannels),
		lineBytes: uint64(cfg.LineBytes),
	}
}

// line fetches one line (by address) for a request issued at time t,
// returning the completion time and whether the line missed the L2 and was
// served by a DRAM channel (the stall-attribution signal for Breakdown).
func (m *memSystem) line(addr uint64, t int64) (done int64, fromDRAM bool) {
	m.nocReqs++
	arrive := t + int64(m.cfg.NoCLatency)
	bank := int(addr / m.lineBytes % uint64(len(m.l2Banks)))
	grant := m.l2Banks[bank].reserve(arrive, int64(m.cfg.L2ServiceCycles))
	done = grant + int64(m.cfg.L2Latency)
	if m.l2.access(addr) {
		m.l2Hits++
	} else {
		m.l2Misses++
		m.dramReqs++
		fromDRAM = true
		ch := int(addr / m.lineBytes / 8 % uint64(len(m.dram)))
		dgrant := m.dram[ch].reserve(done, int64(m.cfg.DRAMServiceCycles))
		done = dgrant + int64(m.cfg.DRAMLatency)
	}
	return done + int64(m.cfg.NoCLatency), fromDRAM
}

// dramBusy returns the per-channel occupied cycles of the reservation
// cursors.
func (m *memSystem) dramBusy() []int64 {
	out := make([]int64, len(m.dram))
	for i := range m.dram {
		out[i] = m.dram[i].busy
	}
	return out
}

// l2BankBusy returns the per-bank occupied cycles of the L2 reservation
// cursors.
func (m *memSystem) l2BankBusy() []int64 {
	out := make([]int64, len(m.l2Banks))
	for i := range m.l2Banks {
		out[i] = m.l2Banks[i].busy
	}
	return out
}

// Address map: the simulator lays the CSR arrays out in a flat physical
// space — Row (8 B entries), then Col (4 B entries) — and gives each PE a
// private scratch region for frontier lists.
type addressMap struct {
	rowBase uint64
	colBase uint64
}

func newAddressMap(numVertices int) addressMap {
	rowBytes := uint64(numVertices+1) * 8
	// Align the edge array to a fresh 4 kB page.
	colBase := (rowBytes + 4095) &^ 4095
	return addressMap{rowBase: 0, colBase: colBase}
}

func (a addressMap) rowAddr(v uint32) uint64 { return a.rowBase + uint64(v)*8 }

func (a addressMap) colAddr(idx int64) uint64 { return a.colBase + uint64(idx)*4 }

// frontierAddr places PE-local frontier regions far above the graph, one
// 1 MB region per (PE, level); they never alias graph lines.
func frontierAddr(pe, level int, elem int) uint64 {
	return 1<<40 | uint64(pe)<<28 | uint64(level)<<20 | uint64(elem)*4
}
