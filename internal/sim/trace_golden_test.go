package sim

// Golden-file lockdown of the simulator event trace. The coordinator
// serializes PE coroutines, so a traced simulation emits an identical event
// sequence every run — which makes the Chrome trace_event export and the
// text summary byte-comparable artifacts. The golden files pin them; any
// change to PE cycle accounting, dispatch order, or the exporters shows up
// as a diff here. Regenerate with:
//
//	go test ./internal/sim -run TraceGolden -update
//
// and review the diff like any other golden change.

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
)

var updateGolden = flag.Bool("update", false, "rewrite golden trace artifacts")

// tracedWorkload is small enough for a reviewable golden yet exercises every
// traced path: the induced diamond plan has both intersections (SIU spans)
// and differences (SDU spans), the c-map is disabled so the merge path runs,
// and task slicing plus 4 PEs produce dispatch and retire events on several
// timelines.
func tracedWorkload(t *testing.T) (*graph.Graph, *plan.Plan, Config) {
	t.Helper()
	g := graph.ErdosRenyi(60, 180, 5)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{Induced: true})
	if err != nil {
		t.Fatal(err)
	}
	cfg := DefaultConfig().WithPEs(4).WithCMapBytes(0)
	cfg.TaskSliceElems = 16
	return g, pl, cfg
}

func runTraced(t *testing.T) (*obs.Tracer, Result) {
	t.Helper()
	g, pl, cfg := tracedWorkload(t)
	tr := obs.NewTracer(obs.NewVirtualClock(), 1<<17)
	cfg.Trace = tr
	res, err := Simulate(g, pl, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return tr, res
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden (%d vs %d bytes); rerun with -update and review the diff",
			path, len(got), len(want))
	}
}

func TestSimTraceGolden(t *testing.T) {
	tr, res := runTraced(t)
	if d := tr.Dropped(); d != 0 {
		t.Fatalf("trace ring dropped %d events; raise the test capacity", d)
	}
	// The golden run also carries the cycle-accounting postcondition: the
	// breakdown buckets of the pinned workload sum to PEs × makespan.
	if err := res.Stats.Breakdown.CheckTotal(4, res.Stats.Cycles); err != nil {
		t.Error(err)
	}
	cats := tr.Categories()
	want := map[string]bool{obs.CatSched: false, obs.CatKernel: false, obs.CatSimPE: false}
	for _, c := range cats {
		want[c] = true
	}
	for c, seen := range want {
		if !seen {
			t.Errorf("trace missing category %q (got %v)", c, cats)
		}
	}

	var chrome, summary bytes.Buffer
	if err := tr.WriteChromeJSON(&chrome); err != nil {
		t.Fatal(err)
	}
	if err := tr.WriteSummary(&summary); err != nil {
		t.Fatal(err)
	}

	// Same workload, fresh simulator: the exported bytes must be identical.
	tr2, _ := runTraced(t)
	var chrome2 bytes.Buffer
	if err := tr2.WriteChromeJSON(&chrome2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(chrome.Bytes(), chrome2.Bytes()) {
		t.Error("two identical simulations exported different trace bytes")
	}

	checkGolden(t, filepath.Join("testdata", "golden", "diamond_er60.trace.json"), chrome.Bytes())
	checkGolden(t, filepath.Join("testdata", "golden", "diamond_er60.trace.txt"), summary.Bytes())
}

// TestSimCyclesInvariantUnderTracing is the simulator half of the
// zero-overhead contract: attaching a tracer must leave every cycle count,
// memory counter, and mined count untouched.
func TestSimCyclesInvariantUnderTracing(t *testing.T) {
	g, pl, cfg := tracedWorkload(t)
	for _, c := range []Config{cfg, DefaultConfig().WithPEs(4)} {
		plain, err := Simulate(g, pl, c)
		if err != nil {
			t.Fatal(err)
		}
		traced := c
		traced.Trace = obs.NewTracer(obs.NewVirtualClock(), 1<<17)
		withTr, err := Simulate(g, pl, traced)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(withTr.Counts, plain.Counts) {
			t.Errorf("cmap=%d: tracing changed counts: %v vs %v", c.CMapBytes, withTr.Counts, plain.Counts)
		}
		if !reflect.DeepEqual(withTr.Stats, plain.Stats) {
			t.Errorf("cmap=%d: tracing changed stats:\nwith    %+v\nwithout %+v",
				c.CMapBytes, withTr.Stats, plain.Stats)
		}
	}
}
