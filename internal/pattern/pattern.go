// Package pattern represents the small query graphs ("patterns") that GPM
// searches for, together with the analyses the FlexMiner compiler needs:
// subgraph-isomorphism tests, automorphism groups, canonical codes and
// connected-pattern enumeration (for k-motif counting).
//
// Patterns are tiny (the paper evaluates up to 9 vertices and the hardware
// c-map supports up to 10), so we store adjacency as per-vertex bitsets in a
// fixed array and use exhaustive permutation algorithms freely.
package pattern

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// MaxVertices bounds pattern size. The paper's c-map value field is 8 bits,
// supporting patterns within 10 vertices; 16 gives headroom for experiments.
const MaxVertices = 16

// Pattern is an undirected simple graph on k ≤ MaxVertices vertices labeled
// 0..k-1. adj[i] is a bitmask of i's neighbors.
type Pattern struct {
	k    int
	adj  [MaxVertices]uint32
	name string
}

// New creates an empty (edgeless) pattern with k vertices.
func New(k int) *Pattern {
	if k < 1 || k > MaxVertices {
		panic(fmt.Sprintf("pattern: size %d out of range [1,%d]", k, MaxVertices))
	}
	return &Pattern{k: k}
}

// FromEdges builds a pattern from an explicit edge list.
func FromEdges(k int, edges [][2]int) *Pattern {
	p := New(k)
	for _, e := range edges {
		p.AddEdge(e[0], e[1])
	}
	return p
}

// Size returns the number of vertices k.
func (p *Pattern) Size() int { return p.k }

// Name returns the human-readable name, if one was assigned.
func (p *Pattern) Name() string {
	if p.name != "" {
		return p.name
	}
	return fmt.Sprintf("pattern-k%d-e%d", p.k, p.NumEdges())
}

// WithName returns p after assigning a display name.
func (p *Pattern) WithName(name string) *Pattern { p.name = name; return p }

// AddEdge inserts the undirected edge {u, v}.
func (p *Pattern) AddEdge(u, v int) {
	if u == v || u < 0 || v < 0 || u >= p.k || v >= p.k {
		panic(fmt.Sprintf("pattern: bad edge (%d,%d) for k=%d", u, v, p.k))
	}
	p.adj[u] |= 1 << uint(v)
	p.adj[v] |= 1 << uint(u)
}

// HasEdge reports whether u and v are adjacent.
func (p *Pattern) HasEdge(u, v int) bool { return p.adj[u]&(1<<uint(v)) != 0 }

// AdjMask returns the neighbor bitmask of u.
func (p *Pattern) AdjMask(u int) uint32 { return p.adj[u] }

// Degree returns the degree of u.
func (p *Pattern) Degree(u int) int { return bits.OnesCount32(p.adj[u]) }

// NumEdges returns the number of undirected edges.
func (p *Pattern) NumEdges() int {
	total := 0
	for i := 0; i < p.k; i++ {
		total += p.Degree(i)
	}
	return total / 2
}

// Edges returns the undirected edge list with u < v, sorted.
func (p *Pattern) Edges() [][2]int {
	var out [][2]int
	for u := 0; u < p.k; u++ {
		m := p.adj[u] >> uint(u+1) << uint(u+1)
		for m != 0 {
			v := bits.TrailingZeros32(m)
			out = append(out, [2]int{u, v})
			m &= m - 1
		}
	}
	return out
}

// Clone returns a deep copy.
func (p *Pattern) Clone() *Pattern {
	q := *p
	return &q
}

// Relabel returns the pattern with vertex i renamed to perm[i].
func (p *Pattern) Relabel(perm []int) *Pattern {
	q := New(p.k)
	q.name = p.name
	for _, e := range p.Edges() {
		q.AddEdge(perm[e[0]], perm[e[1]])
	}
	return q
}

// IsConnected reports whether the pattern is connected. GPM is defined over
// connected patterns; the compiler rejects disconnected ones.
func (p *Pattern) IsConnected() bool {
	if p.k == 1 {
		return true
	}
	seen := uint32(1)
	frontier := uint32(1)
	for frontier != 0 {
		next := uint32(0)
		for m := frontier; m != 0; m &= m - 1 {
			v := bits.TrailingZeros32(m)
			next |= p.adj[v]
		}
		next &^= seen
		seen |= next
		frontier = next
	}
	return bits.OnesCount32(seen) == p.k
}

// IsClique reports whether the pattern is the complete graph K_k.
func (p *Pattern) IsClique() bool {
	return p.NumEdges() == p.k*(p.k-1)/2
}

// Equal reports structural equality under the identity labeling.
func (p *Pattern) Equal(q *Pattern) bool {
	if p.k != q.k {
		return false
	}
	for i := 0; i < p.k; i++ {
		if p.adj[i] != q.adj[i] {
			return false
		}
	}
	return true
}

// String renders the pattern as name + edge list, e.g. "4-cycle{0-1 1-2 2-3 0-3}".
func (p *Pattern) String() string {
	var sb strings.Builder
	sb.WriteString(p.Name())
	sb.WriteByte('{')
	for i, e := range p.Edges() {
		if i > 0 {
			sb.WriteByte(' ')
		}
		fmt.Fprintf(&sb, "%d-%d", e[0], e[1])
	}
	sb.WriteByte('}')
	return sb.String()
}

// permutations invokes f with every permutation of 0..n-1. f must not retain
// the slice. Heap's algorithm, iterative.
func permutations(n int, f func(perm []int) bool) {
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	c := make([]int, n)
	if !f(perm) {
		return
	}
	i := 0
	for i < n {
		if c[i] < i {
			if i%2 == 0 {
				perm[0], perm[i] = perm[i], perm[0]
			} else {
				perm[c[i]], perm[i] = perm[i], perm[c[i]]
			}
			if !f(perm) {
				return
			}
			c[i]++
			i = 0
		} else {
			c[i] = 0
			i++
		}
	}
}

// Automorphisms returns every permutation φ of the vertices with
// φ(P) = P, as freshly allocated slices. The identity is always included.
func (p *Pattern) Automorphisms() [][]int {
	var out [][]int
	permutations(p.k, func(perm []int) bool {
		if p.isAutomorphism(perm) {
			cp := make([]int, p.k)
			copy(cp, perm)
			out = append(out, cp)
		}
		return true
	})
	return out
}

func (p *Pattern) isAutomorphism(perm []int) bool {
	for u := 0; u < p.k; u++ {
		for m := p.adj[u]; m != 0; m &= m - 1 {
			v := bits.TrailingZeros32(m)
			if !p.HasEdge(perm[u], perm[v]) {
				return false
			}
		}
		if p.Degree(u) != p.Degree(perm[u]) {
			return false
		}
	}
	return true
}

// AutomorphismCount returns |Aut(P)|.
func (p *Pattern) AutomorphismCount() int { return len(p.Automorphisms()) }

// IsIsomorphic reports whether p and q are isomorphic (exhaustive, fine for
// pattern sizes).
func (p *Pattern) IsIsomorphic(q *Pattern) bool {
	if p.k != q.k || p.NumEdges() != q.NumEdges() {
		return false
	}
	if p.degreeSig() != q.degreeSig() {
		return false
	}
	found := false
	permutations(p.k, func(perm []int) bool {
		ok := true
		for u := 0; u < p.k && ok; u++ {
			for m := p.adj[u]; m != 0; m &= m - 1 {
				v := bits.TrailingZeros32(m)
				if !q.HasEdge(perm[u], perm[v]) {
					ok = false
					break
				}
			}
		}
		if ok {
			found = true
			return false
		}
		return true
	})
	return found
}

func (p *Pattern) degreeSig() string {
	d := make([]int, p.k)
	for i := range d {
		d[i] = p.Degree(i)
	}
	sort.Ints(d)
	return fmt.Sprint(d)
}

// CanonicalCode returns a label-invariant canonical form: the lexicographically
// smallest upper-triangular adjacency bit string over all relabelings. Two
// patterns are isomorphic iff their codes are equal. Used to classify motifs.
func (p *Pattern) CanonicalCode() uint64 {
	best := uint64(1<<63 - 1)
	first := true
	permutations(p.k, func(perm []int) bool {
		var code uint64
		bit := 0
		for i := 0; i < p.k; i++ {
			for j := i + 1; j < p.k; j++ {
				if p.HasEdge(perm[i], perm[j]) {
					code |= 1 << uint(bit)
				}
				bit++
			}
		}
		if first || code < best {
			best = code
			first = false
		}
		return true
	})
	return best | uint64(p.k)<<48 // disambiguate sizes
}
