package pattern

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestCatalogShapes(t *testing.T) {
	cases := []struct {
		p        *Pattern
		k, edges int
		auts     int
	}{
		{Triangle(), 3, 3, 6},
		{Wedge(), 3, 2, 2},
		{FourCycle(), 4, 4, 8},
		{Diamond(), 4, 5, 4},
		{TailedTriangle(), 4, 4, 2},
		{KClique(4), 4, 6, 24},
		{KClique(5), 5, 10, 120},
		{KPath(4), 4, 3, 2},
		{KStar(4), 4, 3, 6},
		{KCycle(5), 5, 5, 10},
		{House(), 5, 6, 2},
	}
	for _, c := range cases {
		if c.p.Size() != c.k {
			t.Errorf("%s: size %d want %d", c.p.Name(), c.p.Size(), c.k)
		}
		if c.p.NumEdges() != c.edges {
			t.Errorf("%s: edges %d want %d", c.p.Name(), c.p.NumEdges(), c.edges)
		}
		if got := c.p.AutomorphismCount(); got != c.auts {
			t.Errorf("%s: |Aut| = %d want %d", c.p.Name(), got, c.auts)
		}
		if !c.p.IsConnected() {
			t.Errorf("%s: not connected", c.p.Name())
		}
	}
}

func TestIsCliqueAndConnected(t *testing.T) {
	if !KClique(4).IsClique() || Diamond().IsClique() {
		t.Error("IsClique wrong")
	}
	disc := New(4)
	disc.AddEdge(0, 1)
	disc.AddEdge(2, 3)
	if disc.IsConnected() {
		t.Error("disconnected pattern reported connected")
	}
	if !New(1).IsConnected() {
		t.Error("single vertex must be connected")
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	p := Diamond()
	q := p.Relabel([]int{3, 2, 1, 0})
	if !p.IsIsomorphic(q) {
		t.Error("relabel broke isomorphism")
	}
	if p.NumEdges() != q.NumEdges() {
		t.Error("relabel changed edge count")
	}
}

func TestIsomorphismBasics(t *testing.T) {
	if !FourCycle().IsIsomorphic(FromEdges(4, [][2]int{{0, 2}, {2, 1}, {1, 3}, {3, 0}})) {
		t.Error("relabeled 4-cycle not isomorphic")
	}
	if FourCycle().IsIsomorphic(Diamond()) {
		t.Error("4-cycle ≅ diamond?")
	}
	if KPath(4).IsIsomorphic(KStar(4)) {
		t.Error("path ≅ star?")
	}
}

// TestCanonicalCodeIsoInvariant: isomorphic iff equal canonical codes, under
// random relabelings.
func TestCanonicalCodeIsoInvariant(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		k := 2 + r.Intn(4)
		p := New(k)
		for u := 0; u < k; u++ {
			for v := u + 1; v < k; v++ {
				if r.Intn(2) == 0 {
					p.AddEdge(u, v)
				}
			}
		}
		perm := r.Perm(k)
		q := p.Relabel(perm)
		return p.CanonicalCode() == q.CanonicalCode()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestCanonicalCodeSeparates(t *testing.T) {
	distinct := []*Pattern{Wedge(), Triangle(), KPath(4), KStar(4), FourCycle(), TailedTriangle(), Diamond(), KClique(4)}
	seen := map[uint64]string{}
	for _, p := range distinct {
		code := p.CanonicalCode()
		if other, ok := seen[code]; ok {
			t.Errorf("%s and %s share a canonical code", p.Name(), other)
		}
		seen[code] = p.Name()
	}
}

func TestMotifsCounts(t *testing.T) {
	// Known counts of connected k-vertex graphs up to isomorphism.
	want := map[int]int{2: 1, 3: 2, 4: 6, 5: 21}
	for k, n := range want {
		ms := Motifs(k)
		if len(ms) != n {
			t.Errorf("Motifs(%d) = %d patterns, want %d", k, len(ms), n)
		}
		for i, m := range ms {
			if m.Size() != k || !m.IsConnected() {
				t.Errorf("Motifs(%d)[%d] malformed: %s", k, i, m)
			}
			for j := 0; j < i; j++ {
				if ms[j].IsIsomorphic(m) {
					t.Errorf("Motifs(%d): %d and %d isomorphic", k, j, i)
				}
			}
		}
	}
}

func TestMotifNames(t *testing.T) {
	ms := Motifs(3)
	if ms[0].Name() != "wedge" && ms[1].Name() != "wedge" {
		t.Error("3-motifs missing wedge name")
	}
	found := map[string]bool{}
	for _, m := range Motifs(4) {
		found[m.Name()] = true
	}
	for _, name := range []string{"4-path", "4-star", "4-cycle", "tailed-triangle", "diamond", "4-clique"} {
		if !found[name] {
			t.Errorf("4-motifs missing %s (have %v)", name, found)
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"triangle", "wedge", "diamond", "tailed-triangle", "house",
		"4-cycle", "5-clique", "6-path", "4-star"} {
		p, err := ByName(name)
		if err != nil {
			t.Errorf("ByName(%q): %v", name, err)
			continue
		}
		if p.Name() != name {
			t.Errorf("ByName(%q).Name() = %q", name, p.Name())
		}
	}
	for _, bad := range []string{"heptagon", "2-cycle", "99-clique", ""} {
		if _, err := ByName(bad); err == nil {
			t.Errorf("ByName(%q) accepted", bad)
		}
	}
}

func TestAutomorphismsAreAutomorphisms(t *testing.T) {
	for _, p := range []*Pattern{Triangle(), FourCycle(), Diamond(), TailedTriangle(), House()} {
		for _, a := range p.Automorphisms() {
			q := p.Relabel(a)
			if !p.Equal(q) {
				t.Errorf("%s: %v is not an automorphism", p.Name(), a)
			}
		}
	}
}

func TestEdgesRoundTrip(t *testing.T) {
	p := Diamond()
	q := FromEdges(p.Size(), p.Edges())
	if !p.Equal(q) {
		t.Error("Edges/FromEdges round trip failed")
	}
}

func TestDegreeAndAdjMask(t *testing.T) {
	p := TailedTriangle() // edges 01 02 12 23
	wantDeg := []int{2, 2, 3, 1}
	for v, d := range wantDeg {
		if p.Degree(v) != d {
			t.Errorf("degree(%d) = %d want %d", v, p.Degree(v), d)
		}
	}
	if p.AdjMask(3) != 1<<2 {
		t.Errorf("AdjMask(3) = %b", p.AdjMask(3))
	}
}

func TestBadConstruction(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("self loop accepted")
		}
	}()
	p := New(3)
	p.AddEdge(1, 1)
}

func TestStringOutput(t *testing.T) {
	s := Triangle().String()
	if s != "triangle{0-1 0-2 1-2}" {
		t.Errorf("String() = %q", s)
	}
}
