package pattern

// The pattern catalog: named patterns used throughout the paper (Fig 3,
// Fig 11) plus generators for pattern families and the connected k-pattern
// enumeration behind k-motif counting.

import "fmt"

// Triangle returns K_3.
func Triangle() *Pattern { return KClique(3).WithName("triangle") }

// KClique returns the complete pattern K_k (TC is 3-CL).
func KClique(k int) *Pattern {
	p := New(k)
	for u := 0; u < k; u++ {
		for v := u + 1; v < k; v++ {
			p.AddEdge(u, v)
		}
	}
	return p.WithName(fmt.Sprintf("%d-clique", k))
}

// KCycle returns the simple cycle C_k (k ≥ 3). The 4-cycle is the paper's
// running example (Fig 4, Listing 1).
func KCycle(k int) *Pattern {
	p := New(k)
	for v := 0; v < k; v++ {
		p.AddEdge(v, (v+1)%k)
	}
	return p.WithName(fmt.Sprintf("%d-cycle", k))
}

// KPath returns the simple path P_k on k vertices (k-1 edges).
func KPath(k int) *Pattern {
	p := New(k)
	for v := 0; v+1 < k; v++ {
		p.AddEdge(v, v+1)
	}
	return p.WithName(fmt.Sprintf("%d-path", k))
}

// KStar returns the star S_k: one center connected to k-1 leaves.
func KStar(k int) *Pattern {
	p := New(k)
	for v := 1; v < k; v++ {
		p.AddEdge(0, v)
	}
	return p.WithName(fmt.Sprintf("%d-star", k))
}

// Wedge returns the 3-path (two edges sharing a vertex) — the sparse 3-motif.
func Wedge() *Pattern { return KPath(3).WithName("wedge") }

// Diamond returns K_4 minus one edge (Fig 11b).
func Diamond() *Pattern {
	return FromEdges(4, [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}}).WithName("diamond")
}

// TailedTriangle returns a triangle with a pendant edge (Fig 11c).
func TailedTriangle() *Pattern {
	return FromEdges(4, [][2]int{{0, 1}, {0, 2}, {1, 2}, {2, 3}}).WithName("tailed-triangle")
}

// House returns the 5-vertex "house": a 4-cycle with a triangle roof.
func House() *Pattern {
	return FromEdges(5, [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}, {0, 4}, {1, 4}}).WithName("house")
}

// FourCycle returns C_4.
func FourCycle() *Pattern { return KCycle(4) }

// FiveClique returns K_5.
func FiveClique() *Pattern { return KClique(5) }

// ByName resolves a pattern from its catalog name; it understands the fixed
// names above plus "k-clique", "k-cycle", "k-path", "k-star" forms such as
// "6-clique".
func ByName(name string) (*Pattern, error) {
	switch name {
	case "triangle":
		return Triangle(), nil
	case "wedge":
		return Wedge(), nil
	case "diamond":
		return Diamond(), nil
	case "tailed-triangle":
		return TailedTriangle(), nil
	case "house":
		return House(), nil
	}
	var k int
	var kind string
	if n, err := fmt.Sscanf(name, "%d-%s", &k, &kind); n == 2 && err == nil {
		if k < 1 || k > MaxVertices {
			return nil, fmt.Errorf("pattern: size %d out of range in %q", k, name)
		}
		switch kind {
		case "clique":
			return KClique(k), nil
		case "cycle":
			if k < 3 {
				return nil, fmt.Errorf("pattern: cycle needs k>=3, got %q", name)
			}
			return KCycle(k), nil
		case "path":
			return KPath(k), nil
		case "star":
			return KStar(k), nil
		}
	}
	return nil, fmt.Errorf("pattern: unknown pattern %q", name)
}

// Motifs enumerates all connected patterns on k vertices up to isomorphism,
// in a deterministic order (by canonical code). For k=3 this yields the wedge
// and triangle; for k=4 the six 4-motifs of Fig 3.
func Motifs(k int) []*Pattern {
	if k < 2 || k > 6 {
		panic(fmt.Sprintf("pattern: Motifs supports 2..6 vertices, got %d", k))
	}
	nPairs := k * (k - 1) / 2
	seen := map[uint64]*Pattern{}
	var codes []uint64
	for mask := 0; mask < 1<<uint(nPairs); mask++ {
		p := New(k)
		bit := 0
		for i := 0; i < k; i++ {
			for j := i + 1; j < k; j++ {
				if mask&(1<<uint(bit)) != 0 {
					p.AddEdge(i, j)
				}
				bit++
			}
		}
		if !p.IsConnected() {
			continue
		}
		code := p.CanonicalCode()
		if _, ok := seen[code]; !ok {
			seen[code] = p
			codes = append(codes, code)
		}
	}
	sortUint64(codes)
	out := make([]*Pattern, 0, len(codes))
	for i, c := range codes {
		p := seen[c]
		p.name = motifName(k, p, i)
		out = append(out, p)
	}
	return out
}

// motifName assigns stable human-readable names to small motifs, falling back
// to an indexed name for larger k.
func motifName(k int, p *Pattern, idx int) string {
	named := []*Pattern{
		Wedge(), Triangle(),
		KPath(4), KStar(4), KCycle(4), TailedTriangle(), Diamond(), KClique(4),
	}
	for _, q := range named {
		if q.Size() == k && p.IsIsomorphic(q) {
			return q.Name()
		}
	}
	return fmt.Sprintf("%d-motif-%d", k, idx)
}

func sortUint64(s []uint64) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
