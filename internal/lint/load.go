package lint

// Package loading and type checking on the standard library alone. The
// loader walks the module, parses every non-test package, topologically
// resolves intra-module imports itself and delegates out-of-module (stdlib)
// imports to the go/importer source importer, so it works with an empty
// module cache and no network — the environment flexlint must run in.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"runtime"
	"sort"
	"strings"
)

// Package is one parsed and type-checked package.
type Package struct {
	Path      string // import path ("repro/internal/sim")
	Dir       string // absolute directory
	Name      string // package name
	Files     []*ast.File
	Filenames []string
	Types     *types.Package
	Info      *types.Info

	// Testdata marks packages loaded explicitly from a testdata directory
	// (analyzer fixtures); pattern expansion skips them like the go tool
	// does.
	Testdata bool
}

// Program is a loaded module: every package plus the shared FileSet.
type Program struct {
	Fset   *token.FileSet
	Root   string // module root (directory containing go.mod)
	Module string // module path

	pkgs     map[string]*Package
	checking map[string]bool // import-cycle detection
	stdlib   types.Importer
}

var moduleRE = regexp.MustCompile(`(?m)^module\s+(\S+)`)

// Load parses and type-checks every non-test, non-testdata package under
// root (the directory containing go.mod).
func Load(root string) (*Program, error) {
	root, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	mod, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: %v (is %s a module root?)", err, root)
	}
	m := moduleRE.FindSubmatch(mod)
	if m == nil {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	prog := &Program{
		Fset:     fset,
		Root:     root,
		Module:   string(m[1]),
		pkgs:     map[string]*Package{},
		checking: map[string]bool{},
		stdlib:   importer.ForCompiler(fset, "source", nil),
	}
	dirs, err := prog.packageDirs()
	if err != nil {
		return nil, err
	}
	for _, dir := range dirs {
		if _, err := prog.load(dir, prog.importPathFor(dir), false); err != nil {
			return nil, err
		}
	}
	return prog, nil
}

// packageDirs finds every directory under the root holding non-test Go
// files, skipping testdata, vendor, and hidden directories.
func (p *Program) packageDirs() ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(p.Root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != p.Root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		ok, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if ok {
			dirs = append(dirs, path)
		}
		return nil
	})
	sort.Strings(dirs)
	return dirs, err
}

func hasGoFiles(dir string) (bool, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range ents {
		if goSource(e.Name()) {
			return true, nil
		}
	}
	return false, nil
}

func goSource(name string) bool {
	return strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go")
}

// Build-constraint handling: the loader analyzes one platform — the host's —
// the way `go build` would, so per-platform file pairs (mmap_unix.go /
// mmap_stub.go) don't collide as duplicate declarations.

var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "js": true, "linux": true,
	"netbsd": true, "openbsd": true, "plan9": true, "solaris": true,
	"wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true, "loong64": true,
	"mips": true, "mipsle": true, "mips64": true, "mips64le": true,
	"ppc64": true, "ppc64le": true, "riscv64": true, "s390x": true,
	"wasm": true,
}

var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "illumos": true, "ios": true, "linux": true,
	"netbsd": true, "openbsd": true, "solaris": true,
}

// filenameExcluded applies the go tool's _GOOS / _GOARCH / _GOOS_GOARCH
// filename rule against the host platform. A leading component is required —
// "linux.go" is unconstrained, "x_linux.go" is not.
func filenameExcluded(name string) bool {
	parts := strings.Split(strings.TrimSuffix(name, ".go"), "_")
	if len(parts) < 2 {
		return false
	}
	last := parts[len(parts)-1]
	if knownGOARCH[last] {
		if last != runtime.GOARCH {
			return true
		}
		if len(parts) >= 3 && knownGOOS[parts[len(parts)-2]] {
			return parts[len(parts)-2] != runtime.GOOS
		}
		return false
	}
	if knownGOOS[last] {
		return last != runtime.GOOS
	}
	return false
}

// buildTagsExclude evaluates the file's //go:build line (if any) for the host
// platform. Only tags the loader understands — GOOS, GOARCH, unix, language
// versions — satisfy; anything else (custom tags, cgo) reads as unset.
func buildTagsExclude(f *ast.File) bool {
	for _, cg := range f.Comments {
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				continue
			}
			return !expr.Eval(func(tag string) bool {
				switch {
				case tag == runtime.GOOS || tag == runtime.GOARCH:
					return true
				case tag == "unix":
					return unixGOOS[runtime.GOOS]
				case strings.HasPrefix(tag, "go1"):
					return true
				}
				return false
			})
		}
	}
	return false
}

// importPathFor maps an absolute directory under the root to its import
// path.
func (p *Program) importPathFor(dir string) string {
	rel, err := filepath.Rel(p.Root, dir)
	if err != nil || rel == "." {
		return p.Module
	}
	return p.Module + "/" + filepath.ToSlash(rel)
}

// Package returns the loaded package with the given import path, or nil.
func (p *Program) Package(path string) *Package { return p.pkgs[path] }

// Packages returns every loaded package sorted by import path.
func (p *Program) Packages() []*Package {
	out := make([]*Package, 0, len(p.pkgs))
	for _, pkg := range p.pkgs {
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out
}

// LoadDir loads one extra directory (an analyzer testdata fixture) into the
// program. Its intra-module imports must resolve to already-loadable
// packages.
func (p *Program) LoadDir(dir string) (*Package, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	pkg, err := p.load(dir, p.importPathFor(dir), true)
	if err != nil {
		return nil, err
	}
	pkg.Testdata = true
	return pkg, nil
}

// load parses and type-checks one package directory, recursively loading
// intra-module dependencies first.
func (p *Program) load(dir, path string, testdata bool) (*Package, error) {
	if pkg, ok := p.pkgs[path]; ok {
		return pkg, nil
	}
	if p.checking[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	p.checking[path] = true
	defer delete(p.checking, path)

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	var names []string
	for _, e := range ents {
		if !goSource(e.Name()) || filenameExcluded(e.Name()) {
			continue
		}
		fn := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(p.Fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if buildTagsExclude(f) {
			continue
		}
		files = append(files, f)
		names = append(names, fn)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}

	// Resolve intra-module imports first so the importer below only ever
	// sees ready packages.
	for _, f := range files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == p.Module || strings.HasPrefix(ip, p.Module+"/") {
				sub := filepath.Join(p.Root, filepath.FromSlash(strings.TrimPrefix(ip, p.Module)))
				if _, err := p.load(sub, ip, false); err != nil {
					return nil, err
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	var errs []error
	cfg := &types.Config{
		Importer: importerFunc(func(ip string) (*types.Package, error) {
			if ip == p.Module || strings.HasPrefix(ip, p.Module+"/") {
				pkg, ok := p.pkgs[ip]
				if !ok {
					return nil, fmt.Errorf("lint: unresolved module import %s", ip)
				}
				return pkg.Types, nil
			}
			return p.stdlib.Import(ip)
		}),
		Error: func(err error) { errs = append(errs, err) },
	}
	tpkg, _ := cfg.Check(path, p.Fset, files, info)
	if len(errs) > 0 {
		return nil, fmt.Errorf("lint: type errors in %s: %v", path, errs[0])
	}
	pkg := &Package{
		Path:      path,
		Dir:       dir,
		Name:      files[0].Name.Name,
		Files:     files,
		Filenames: names,
		Types:     tpkg,
		Info:      info,
		// Fixture packages can also arrive as import dependencies of other
		// fixtures, so classify by location, not by entry point.
		Testdata: testdata || strings.Contains(filepath.ToSlash(dir), "/testdata/"),
	}
	p.pkgs[path] = pkg
	return pkg, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
