package lint

// atomichygiene enforces the sync/atomic contract the race detector only
// catches when a test happens to interleave: once any code touches a struct
// field or package-level variable through sync/atomic (serve.Progress
// counters, sched steal counters), *every* access must be atomic. A mixed
// plain read sees torn or stale values; a mixed plain write races the
// atomic RMW it bypasses.
//
// The analyzer is program-wide in two passes: pass 1 collects every variable
// whose address is taken as a sync/atomic argument (atomic.AddInt64(&x.f, 1))
// and remembers those sanctioned identifier uses; pass 2 flags every other
// use of the same variables. Typed atomics (atomic.Int64 fields) are immune
// by construction — their state is unexported — and are the recommended fix.
// Local variables are skipped: they are goroutine-confined unless captured,
// which the goroleak/lockorder scopes own. Composite-literal keys are exempt
// (construction precedes sharing).

import (
	"go/ast"
	"go/types"
)

// AtomicHygiene is the production instance. The analyzer is annotation-free
// and module-wide: any package that adopts sync/atomic buys the invariant.
var AtomicHygiene = NewAtomicHygiene()

// NewAtomicHygiene builds an atomichygiene instance.
func NewAtomicHygiene() *Analyzer {
	return &Analyzer{
		Name:        "atomichygiene",
		Doc:         "a field or package-level var ever passed to sync/atomic must be accessed atomically at every site; mixing atomic and plain access races",
		ProgramWide: true,
		Run:         runAtomicHygiene,
	}
}

func runAtomicHygiene(pass *Pass) {
	// Pass 1: variables sanctified by sync/atomic usage, and the identifier
	// nodes inside those atomic calls (sanctioned uses).
	atomicVars := map[*types.Var]bool{}
	sanctioned := map[*ast.Ident]bool{}
	for _, pkg := range pass.Prog.Packages() {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeOf(pkg, call)
				if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
					return true
				}
				for _, arg := range call.Args {
					un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
					if !ok || un.Op.String() != "&" {
						continue
					}
					v, id := trackedVarOf(pkg, un.X)
					if v == nil {
						continue
					}
					atomicVars[v] = true
					sanctioned[id] = true
				}
				return true
			})
		}
	}
	if len(atomicVars) == 0 {
		return
	}

	// Pass 2: every other use of a sanctified variable is a plain access.
	for _, pkg := range pass.Prog.Packages() {
		for _, f := range pkg.Files {
			litKeys := compositeLitKeys(f)
			ast.Inspect(f, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok || sanctioned[id] || litKeys[id] {
					return true
				}
				v, ok := pkg.Info.Uses[id].(*types.Var)
				if !ok || !atomicVars[v] {
					return true
				}
				kind := "package-level var"
				if v.IsField() {
					kind = "field"
				}
				pass.Reportf(id.Pos(), "%s %s is accessed via sync/atomic elsewhere; this plain access races — use sync/atomic at every site (or migrate to a typed atomic)",
					kind, v.Name())
				return true
			})
		}
	}
}

// trackedVarOf resolves the variable an atomic operand addresses: the field
// of a selector chain (behind indexing) or a package-level identifier. Local
// variables return nil — they are goroutine-confined until captured.
func trackedVarOf(pkg *Package, e ast.Expr) (*types.Var, *ast.Ident) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if v, ok := pkg.Info.Uses[x.Sel].(*types.Var); ok && v.IsField() {
				return v, x.Sel
			}
			return nil, nil
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident:
			v, ok := pkg.Info.Uses[x].(*types.Var)
			if !ok || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
				return nil, nil
			}
			return v, x
		default:
			return nil, nil
		}
	}
}

// compositeLitKeys collects identifiers used as composite-literal keys
// (Progress{done: 0} initializes before sharing; not a racy access).
func compositeLitKeys(f *ast.File) map[*ast.Ident]bool {
	keys := map[*ast.Ident]bool{}
	ast.Inspect(f, func(n ast.Node) bool {
		lit, ok := n.(*ast.CompositeLit)
		if !ok {
			return true
		}
		for _, elt := range lit.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				if id, ok := kv.Key.(*ast.Ident); ok {
					keys[id] = true
				}
			}
		}
		return true
	})
	return keys
}
