package lint

// lockorder is the whole-repo deadlock analyzer: it builds a lock-acquisition
// order graph over the concurrency-bearing packages (graph's hub-index cache,
// sched's work-stealing deques, serve, core) and reports every edge that lies
// on a cycle — two call paths acquiring the same mutexes in opposite orders
// can deadlock under contention, which no per-function analyzer (lockcheck)
// or runtime tool short of a lucky -race interleaving can see.
//
// A mutex *identity* is a package-level sync.Mutex/RWMutex variable
// ("sched.globalMu") or a struct field ("sched.deque.mu") — all instances of
// a field share one identity, which is exactly the abstraction that makes the
// shard-local steal sweep analyzable: every per-worker deque is "deque.mu",
// and the sweep is safe because stealTail releases it (via defer, at return)
// before push reacquires it.
//
// The analysis is a callee-summary fixpoint in the style of kernelpin:
//
//  1. each function (and each function literal, as an anonymous unit) is
//     walked in source order tracking the held set: Lock/RLock acquires, a
//     non-deferred Unlock releases in place, a deferred Unlock holds for the
//     body's remainder but releases at return (so it never enters the
//     function's holds-at-return summary);
//  2. holds-at-return summaries are iterated to a fixpoint and injected at
//     callsites, so split lock/unlock helpers still produce edges in their
//     callers;
//  3. acquires-anywhere summaries are closed transitively over static calls,
//     and every callsite contributes (held lock) → (callee-acquired lock)
//     edges.
//
// `go` statements are excluded (a goroutine's acquisitions are concurrent
// with, not nested under, the spawner's held set — goroleak owns that class),
// as are calls through function values (dynamic). Local mutex variables have
// no cross-function identity and are ignored. The walk linearizes branches,
// and a callee that releases its caller's lock is not modeled; both are
// deliberate approximations kept sound for the repo's lock shapes by
// lockcheck's defer-only-Unlock discipline.
//
// lockorder also flags the non-deferred Unlock shape it has to model
// specially; the diagnostic shares a dedupe key with lockcheck's so the same
// call reports once.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockorderConfig scopes the analyzer: both the functions walked and the
// mutex identities tracked must live in a matching package (exact or suffix
// import-path match, like Analyzer.Scope).
type LockorderConfig struct {
	Scope []string
}

// Lockorder is the production instance, covering every package that holds a
// lock on or near the mining hot path.
var Lockorder = NewLockorder(LockorderConfig{Scope: []string{
	"repro/internal/graph",
	"repro/internal/sched",
	"repro/internal/serve",
	"repro/internal/core",
}})

// NewLockorder builds a lockorder instance (tests re-scope it at fixture
// packages).
func NewLockorder(cfg LockorderConfig) *Analyzer {
	return &Analyzer{
		Name:        "lockorder",
		Doc:         "lock-acquisition order graph over graph/sched/serve/core; a cycle means two paths can deadlock",
		ProgramWide: true,
		Run:         func(pass *Pass) { runLockorder(pass, cfg) },
	}
}

// nondefUnlockKey is the shared lockcheck/lockorder dedupe key for one
// non-deferred Unlock call.
func nondefUnlockKey(call *ast.CallExpr) string {
	return fmt.Sprintf("nondef-unlock:%d", int(call.Pos()))
}

// loCall is one static callsite with the lock set held when it executes.
type loCall struct {
	callee *types.Func
	held   []string
	pos    token.Pos
}

// loEdge is one "to acquired while from held" observation.
type loEdge struct {
	from, to string
	pos      token.Pos
}

// loUnlock is one non-deferred Unlock/RUnlock on an identified mutex.
type loUnlock struct {
	pos  token.Pos
	name string
	id   string
	key  string
}

// loResult is one unit's walk summary.
type loResult struct {
	acquires      map[string]bool
	holdsAtReturn map[string]bool
	calls         []loCall
	edges         []loEdge
	unlocks       []loUnlock
}

// loUnit is one analyzed body: a declared function (fn set) or a function
// literal (fn nil — goroutine bodies and callbacks still produce edges, but
// their summaries are unreachable through static calls).
type loUnit struct {
	fn   *types.Func
	pkg  *Package
	body *ast.BlockStmt
}

func runLockorder(pass *Pass, cfg LockorderConfig) {
	bodies := indexFuncs(pass.Prog)

	var units []loUnit
	for fn, fb := range bodies {
		if !inScope(cfg.Scope, fb.pkg.Path) {
			continue
		}
		units = append(units, loUnit{fn: fn, pkg: fb.pkg, body: fb.decl.Body})
	}
	sort.Slice(units, func(i, j int) bool { return units[i].body.Pos() < units[j].body.Pos() })
	var lits []loUnit
	for _, u := range units {
		pkg := u.pkg
		ast.Inspect(u.body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				lits = append(lits, loUnit{pkg: pkg, body: lit.Body})
			}
			return true
		})
	}
	units = append(units, lits...)

	// Phase 1+2: walk every unit, iterating holds-at-return summaries to a
	// fixpoint (Gauss–Seidel; the iteration cap is a safety net, repo shapes
	// converge in two rounds).
	holdsRet := map[*types.Func]map[string]bool{}
	results := make([]*loResult, len(units))
	for iter := 0; iter < 10; iter++ {
		changed := false
		for i, u := range units {
			r := loWalk(u.pkg, u.body, cfg.Scope, bodies, holdsRet)
			results[i] = r
			if u.fn != nil && !sameStringSet(holdsRet[u.fn], r.holdsAtReturn) {
				holdsRet[u.fn] = r.holdsAtReturn
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Phase 3: close acquires-anywhere over static calls.
	acqAll := map[*types.Func]map[string]bool{}
	for i, u := range units {
		if u.fn != nil {
			acqAll[u.fn] = copyStringSet(results[i].acquires)
		}
	}
	for changed := true; changed; {
		changed = false
		for i, u := range units {
			if u.fn == nil {
				continue
			}
			for _, c := range results[i].calls {
				for id := range acqAll[c.callee] {
					if !acqAll[u.fn][id] {
						acqAll[u.fn][id] = true
						changed = true
					}
				}
			}
		}
	}

	// Edge set: direct nested acquisitions plus held × callee-acquires at
	// every callsite, deduped to the earliest source position per pair.
	edgePos := map[[2]string]token.Pos{}
	addEdge := func(from, to string, pos token.Pos) {
		k := [2]string{from, to}
		if p, ok := edgePos[k]; !ok || pos < p {
			edgePos[k] = pos
		}
	}
	for i := range units {
		for _, e := range results[i].edges {
			addEdge(e.from, e.to, e.pos)
		}
		for _, c := range results[i].calls {
			for _, h := range c.held {
				for id := range acqAll[c.callee] {
					addEdge(h, id, c.pos)
				}
			}
		}
	}

	adj := map[string][]string{}
	for k := range edgePos {
		adj[k[0]] = append(adj[k[0]], k[1])
	}
	// An edge is on a cycle iff its head reaches back to its tail.
	cyclic := func(from, to string) bool {
		if from == to {
			return true
		}
		seen := map[string]bool{}
		stack := []string{to}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if n == from {
				return true
			}
			if seen[n] {
				continue
			}
			seen[n] = true
			stack = append(stack, adj[n]...)
		}
		return false
	}
	keys := make([][2]string, 0, len(edgePos))
	for k := range edgePos {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return edgePos[keys[i]] < edgePos[keys[j]] })
	for _, k := range keys {
		if !cyclic(k[0], k[1]) {
			continue
		}
		if k[0] == k[1] {
			pass.Reportf(edgePos[k], "acquiring %s while an instance of it is already held (recursive or nested acquisition); self-deadlock is possible",
				displayLockID(k[1]))
		} else {
			pass.Reportf(edgePos[k], "acquiring %s while holding %s creates a lock-order cycle; another path acquires them in the opposite order and can deadlock",
				displayLockID(k[1]), displayLockID(k[0]))
		}
	}

	for i := range units {
		for _, ul := range results[i].unlocks {
			pass.ReportDeduped(ul.pos, ul.key,
				"%s of %s outside defer; lockorder treats the lock as released here, but a panic in the critical section leaks it",
				ul.name, displayLockID(ul.id))
		}
	}
}

// loWalk computes one unit's summary: a source-order scan of the body
// tracking the held set, recording acquisition edges, callsite snapshots and
// non-deferred unlocks. holdsRet carries the previous fixpoint iteration's
// callee summaries, injected after each callsite.
func loWalk(pkg *Package, body *ast.BlockStmt, scope []string, bodies map[*types.Func]funcBody, holdsRet map[*types.Func]map[string]bool) *loResult {
	res := &loResult{acquires: map[string]bool{}, holdsAtReturn: map[string]bool{}}
	deferCalls := map[*ast.CallExpr]bool{}
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.DeferStmt:
			deferCalls[s.Call] = true
		case *ast.GoStmt:
			goCalls[s.Call] = true
		}
		return true
	})

	var held []string
	deferredRelease := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // analyzed as its own unit
		case *ast.CallExpr:
			if goCalls[n] {
				return true // concurrent with the spawner, not nested under its locks
			}
			callee := calleeOf(pkg, n)
			if callee == nil {
				return true
			}
			if callee.Pkg() != nil && callee.Pkg().Path() == "sync" {
				pkgPath, id, ok := lockIdentOf(pkg, n)
				if !ok || !inScope(scope, pkgPath) {
					return true
				}
				switch callee.Name() {
				case "Lock", "RLock":
					for _, h := range held {
						res.edges = append(res.edges, loEdge{from: h, to: id, pos: n.Pos()})
					}
					held = append(held, id)
					res.acquires[id] = true
				case "Unlock", "RUnlock":
					if deferCalls[n] {
						deferredRelease[id] = true
					} else {
						res.unlocks = append(res.unlocks, loUnlock{pos: n.Pos(), name: callee.Name(), id: id, key: nondefUnlockKey(n)})
						held = removeLastString(held, id)
					}
				}
				return true
			}
			if _, declared := bodies[callee]; declared {
				var snap []string
				if !deferCalls[n] {
					// Deferred calls run at return, after the deferred
					// unlocks; approximate their held set as empty.
					snap = append([]string(nil), held...)
				}
				res.calls = append(res.calls, loCall{callee: callee, held: snap, pos: n.Pos()})
				for id := range holdsRet[callee] {
					held = append(held, id)
				}
			}
		}
		return true
	})
	for _, h := range held {
		if !deferredRelease[h] {
			res.holdsAtReturn[h] = true
		}
	}
	return res
}

// lockIdentOf resolves the mutex identity a sync lock-op call operates on,
// along with its defining package path. call.Fun is expected to be
// <mutex-expr>.Lock (and friends).
func lockIdentOf(pkg *Package, call *ast.CallExpr) (pkgPath, id string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return mutexIdentity(pkg, sel.X)
}

// mutexIdentity names a mutex expression: "pkg.Type.field" for struct fields
// (every instance of the field is one identity), "pkg.var" for package-level
// mutexes, and the embedded field's type name for promoted Lock calls. Local
// mutex variables have no cross-function identity.
func mutexIdentity(pkg *Package, e ast.Expr) (pkgPath, id string, ok bool) {
	e = ast.Unparen(e)
	if tv, found := pkg.Info.Types[e]; found && !isSyncLockType(tv.Type) {
		if named, fname, has := embeddedLockOf(tv.Type); has {
			obj := named.Obj()
			if obj.Pkg() == nil {
				return "", "", false
			}
			return obj.Pkg().Path(), obj.Pkg().Path() + "." + obj.Name() + "." + fname, true
		}
	}
	switch x := e.(type) {
	case *ast.Ident:
		v, isVar := pkg.Info.Uses[x].(*types.Var)
		if !isVar || v.IsField() || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
			return "", "", false
		}
		return v.Pkg().Path(), v.Pkg().Path() + "." + v.Name(), true
	case *ast.SelectorExpr:
		v, isVar := pkg.Info.Uses[x.Sel].(*types.Var)
		if !isVar || !v.IsField() {
			return "", "", false
		}
		named := namedTypeOf(pkg, x.X)
		if named == nil || named.Obj().Pkg() == nil {
			return "", "", false
		}
		obj := named.Obj()
		return obj.Pkg().Path(), obj.Pkg().Path() + "." + obj.Name() + "." + v.Name(), true
	}
	return "", "", false
}

// isSyncLockType reports whether t (possibly behind a pointer) is
// sync.Mutex or sync.RWMutex.
func isSyncLockType(t types.Type) bool {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// embeddedLockOf finds the embedded sync lock field of a named struct type
// (the promoted-method case: `t.Lock()` where t embeds sync.Mutex).
func embeddedLockOf(t types.Type) (*types.Named, string, bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return nil, "", false
	}
	st, isStruct := named.Underlying().(*types.Struct)
	if !isStruct {
		return nil, "", false
	}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() && isSyncLockType(f.Type()) {
			return named, f.Name(), true
		}
	}
	return nil, "", false
}

// namedTypeOf resolves the named type of an expression, behind pointers.
func namedTypeOf(pkg *Package, e ast.Expr) *types.Named {
	tv, found := pkg.Info.Types[e]
	if !found {
		return nil
	}
	t := tv.Type
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// displayLockID strips the import-path directory from a lock identity for
// reporting: "repro/internal/sched.deque.mu" → "sched.deque.mu".
func displayLockID(id string) string {
	if i := strings.LastIndex(id, "/"); i >= 0 {
		return id[i+1:]
	}
	return id
}

func sameStringSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func copyStringSet(s map[string]bool) map[string]bool {
	out := make(map[string]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func removeLastString(s []string, v string) []string {
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == v {
			return append(s[:i:i], s[i+1:]...)
		}
	}
	return s
}
