package lint

import "testing"

// Each analyzer runs against its seeded-violation fixture package; the
// fixture's `// want` comments are the golden expectations. Test instances
// re-scope (or re-root) the analyzers at the fixture packages so the
// production Scope/Roots configuration stays untouched.

func TestDetlint(t *testing.T) {
	prog := testProgram(t)
	a := NewDetlint(DetlintConfig{Scope: []string{fixturePath(prog, "detlint")}})
	runWantTest(t, a, "detlint")
}

func TestStatsum(t *testing.T) {
	runWantTest(t, Statsum, "statsum")
}

func TestStatsumCompleteMergeIsClean(t *testing.T) {
	runWantTest(t, Statsum, "statsumok") // no want comments: asserts zero diagnostics
}

func TestKernelpin(t *testing.T) {
	prog := testProgram(t)
	a := NewKernelpin(KernelpinConfig{
		RootsPkg:    fixturePath(prog, "kernelpin"),
		Roots:       []string{"Table2", "Fig7", "BaselineSeconds"},
		OptionsPkg:  "repro/internal/core",
		OptionsType: "Options",
		Pins: []FieldPin{
			{Field: "Kernel", Want: "KernelMergeOnly"},
			{Field: "AuxGraph", Want: "AuxOff", ZeroIsPinned: true},
		},
	})
	runWantTest(t, a, "kernelpin")
}

func TestLockcheck(t *testing.T) {
	prog := testProgram(t)
	a := NewLockcheck(LockcheckConfig{Scope: []string{fixturePath(prog, "lockcheck")}})
	runWantTest(t, a, "lockcheck")
}

func TestBoundarg(t *testing.T) {
	runWantTest(t, Boundarg, "boundarg")
}

func TestAdjwrite(t *testing.T) {
	runWantTest(t, Adjwrite, "adjwrite")
}

// TestRepoIsClean is the acceptance gate: the production suite must report
// nothing on the repo itself (fixtures excluded). A regression that trips an
// analyzer fails here before it fails in CI.
func TestRepoIsClean(t *testing.T) {
	prog := testProgram(t)
	var targets []*Package
	for _, pkg := range prog.Packages() {
		if pkg.Testdata {
			continue
		}
		targets = append(targets, pkg)
	}
	if len(targets) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range Run(prog, DefaultAnalyzers(), targets) {
		t.Errorf("repo violation: %s", Format(prog, d))
	}
}
