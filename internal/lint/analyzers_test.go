package lint

import "testing"

// Each analyzer runs against its seeded-violation fixture package; the
// fixture's `// want` comments are the golden expectations. Test instances
// re-scope (or re-root) the analyzers at the fixture packages so the
// production Scope/Roots configuration stays untouched.

func TestDetlint(t *testing.T) {
	prog := testProgram(t)
	a := NewDetlint(DetlintConfig{Scope: []string{fixturePath(prog, "detlint")}})
	runWantTest(t, a, "detlint")
}

func TestStatsum(t *testing.T) {
	runWantTest(t, Statsum, "statsum")
}

func TestStatsumCompleteMergeIsClean(t *testing.T) {
	runWantTest(t, Statsum, "statsumok") // no want comments: asserts zero diagnostics
}

func TestKernelpin(t *testing.T) {
	prog := testProgram(t)
	a := NewKernelpin(KernelpinConfig{
		RootsPkg:    fixturePath(prog, "kernelpin"),
		Roots:       []string{"Table2", "Fig7", "BaselineSeconds"},
		OptionsPkg:  "repro/internal/core",
		OptionsType: "Options",
		Pins: []FieldPin{
			{Field: "Kernel", Want: "KernelMergeOnly"},
			{Field: "AuxGraph", Want: "AuxOff", ZeroIsPinned: true},
		},
	})
	runWantTest(t, a, "kernelpin")
}

func TestLockcheck(t *testing.T) {
	prog := testProgram(t)
	a := NewLockcheck(LockcheckConfig{Scope: []string{fixturePath(prog, "lockcheck")}})
	runWantTest(t, a, "lockcheck")
}

func TestBoundarg(t *testing.T) {
	runWantTest(t, Boundarg, "boundarg")
}

func TestAdjwrite(t *testing.T) {
	runWantTest(t, Adjwrite, "adjwrite")
}

func TestLockorder(t *testing.T) {
	prog := testProgram(t)
	a := NewLockorder(LockorderConfig{Scope: []string{fixturePath(prog, "lockorder")}})
	runWantTest(t, a, "lockorder")
}

func TestAtomicHygiene(t *testing.T) {
	runWantTest(t, AtomicHygiene, "atomichygiene")
}

func TestGoroleak(t *testing.T) {
	prog := testProgram(t)
	a := NewGoroleak(GoroleakConfig{Scope: []string{fixturePath(prog, "goroleak")}})
	runWantTest(t, a, "goroleak")
}

func TestNoalloc(t *testing.T) {
	prog := testProgram(t)
	// Mirror production's allowlist shape: the fixture's ops.pinned field
	// plays the role of core's worker.visit.
	a := NewNoalloc(NoallocConfig{Allow: []string{
		"(" + fixturePath(prog, "noalloc") + ".ops).pinned",
	}})
	runWantTest(t, a, "noalloc")
}

// TestNoallocHotPathCoverage pins the production annotation set: the paper's
// per-task inner loop must stay inside the prover. Dropping a directive (or
// renaming a function out from under one) fails here.
func TestNoallocHotPathCoverage(t *testing.T) {
	prog := testProgram(t)
	got := NoallocAnnotated(prog)
	if len(got) < 8 {
		t.Fatalf("want at least 8 //flexlint:noalloc functions, got %d: %v", len(got), got)
	}
	set := map[string]bool{}
	for _, k := range got {
		set[k] = true
	}
	for _, want := range []string{
		"(repro/internal/core.worker).walk",
		"(repro/internal/core.worker).runTask",
		"(repro/internal/core.worker).leafCount",
		"(repro/internal/cmap.HashMap).Lookup",
		"(repro/internal/cmap.Map).Lookup",
		"repro/internal/setops.IntersectCost",
		"repro/internal/setops.DifferenceCost",
	} {
		if !set[want] {
			t.Errorf("hot-path function %s is not //flexlint:noalloc", want)
		}
	}
}

// TestLockcheckLockorderDedupe: one seeded non-deferred Unlock, two
// analyzers that each flag it, one surviving report.
func TestLockcheckLockorderDedupe(t *testing.T) {
	prog := testProgram(t)
	path := fixturePath(prog, "lockdedupe")
	pkg := prog.Package(path)
	if pkg == nil {
		t.Fatal("lockdedupe fixture not loaded")
	}
	lc := NewLockcheck(LockcheckConfig{Scope: []string{path}})
	lo := NewLockorder(LockorderConfig{Scope: []string{path}})

	// Each analyzer alone sees the bug...
	for _, a := range []*Analyzer{lc, lo} {
		if got := Run(prog, []*Analyzer{a}, []*Package{pkg}); len(got) != 1 {
			for _, d := range got {
				t.Logf("  %s", Format(prog, d))
			}
			t.Fatalf("%s alone: want 1 diagnostic, got %d", a.Name, len(got))
		}
	}
	// ...together they report it once, with lockcheck's wording.
	diags := Run(prog, []*Analyzer{lc, lo}, []*Package{pkg})
	if len(diags) != 1 {
		for _, d := range diags {
			t.Logf("  %s", Format(prog, d))
		}
		t.Fatalf("dedupe: want exactly 1 diagnostic, got %d", len(diags))
	}
	if diags[0].Analyzer != "lockcheck" {
		t.Fatalf("dedupe should keep the first-registered analyzer's wording (lockcheck), got %s", diags[0].Analyzer)
	}
}

// TestRepoIsClean is the acceptance gate: the production suite must report
// nothing on the repo itself (fixtures excluded). A regression that trips an
// analyzer fails here before it fails in CI.
func TestRepoIsClean(t *testing.T) {
	prog := testProgram(t)
	var targets []*Package
	for _, pkg := range prog.Packages() {
		if pkg.Testdata {
			continue
		}
		targets = append(targets, pkg)
	}
	if len(targets) == 0 {
		t.Fatal("no packages loaded")
	}
	for _, d := range Run(prog, DefaultAnalyzers(), targets) {
		t.Errorf("repo violation: %s", Format(prog, d))
	}
}
