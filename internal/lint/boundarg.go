package lint

// boundarg guards the symmetry-bound plumbing through the set-operation
// kernels. Every bound-aware kernel takes the ID upper bound as its final
// parameter, conventionally named `bound`; the recurring bug shape (the one
// the internal/setops property tests probe dynamically) is calling such a
// kernel with a constant bound — usually NoBound — from a context where the
// real variable bound is sitting in scope, silently disabling symmetry
// breaking and inflating counts. boundarg flags exactly that shape: a call
// whose final `bound` parameter receives a compile-time constant while a
// variable named `bound` assignable to that parameter is visible at the call
// site.

import (
	"go/ast"
	"go/types"
)

// Boundarg is the production instance (all packages).
var Boundarg = NewBoundarg()

// NewBoundarg builds a boundarg instance.
func NewBoundarg() *Analyzer {
	return &Analyzer{
		Name: "boundarg",
		Doc:  "flag constant bounds passed to bound-aware kernels while a variable bound is in scope",
		Run:  runBoundarg,
	}
}

func runBoundarg(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			checkBoundArg(pass, call)
			return true
		})
	}
}

func checkBoundArg(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.Pkg, call)
	if fn == nil {
		return
	}
	sig := fn.Type().(*types.Signature)
	params := sig.Params()
	if sig.Variadic() || params.Len() == 0 || len(call.Args) != params.Len() {
		return
	}
	last := params.At(params.Len() - 1)
	if last.Name() != "bound" {
		return
	}
	arg := call.Args[len(call.Args)-1]
	tv, ok := pass.Pkg.Info.Types[arg]
	if !ok || tv.Value == nil {
		return // not a compile-time constant
	}
	// A variable named `bound` visible at the call site that could have been
	// passed instead makes the constant suspicious.
	scope := pass.Pkg.Types.Scope().Innermost(call.Pos())
	if scope == nil {
		return
	}
	_, obj := scope.LookupParent("bound", call.Pos())
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return
	}
	if !types.AssignableTo(v.Type(), last.Type()) {
		return
	}
	pass.Reportf(arg.Pos(), "passes a constant bound to %s while variable `bound` is in scope; dropping the symmetry bound inflates counts — pass bound", fn.Name())
}
