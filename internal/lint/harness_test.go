package lint

// A miniature analysistest: fixture packages under testdata/src carry
// `// want` comments whose quoted regexps must match the diagnostics the
// analyzer reports on that line, one to one. The whole module (plus every
// fixture) is loaded and type-checked once and shared across tests — the
// load is the expensive part (the stdlib is type-checked from source).

import (
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"
)

var (
	progOnce sync.Once
	progVal  *Program
	progErr  error
)

func repoRoot(t *testing.T) string {
	t.Helper()
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	return filepath.Dir(filepath.Dir(wd)) // internal/lint -> repo root
}

// testProgram loads the module and every fixture package, once per process.
func testProgram(t *testing.T) *Program {
	t.Helper()
	root := repoRoot(t)
	progOnce.Do(func() {
		progVal, progErr = Load(root)
		if progErr != nil {
			return
		}
		fixtures, err := filepath.Glob(filepath.Join(root, "internal", "lint", "testdata", "src", "*"))
		if err != nil {
			progErr = err
			return
		}
		for _, dir := range fixtures {
			if _, err := progVal.LoadDir(dir); err != nil {
				progErr = err
				return
			}
		}
	})
	if progErr != nil {
		t.Fatalf("loading test program: %v", progErr)
	}
	return progVal
}

// fixturePath returns the import path of a fixture directory name.
func fixturePath(prog *Program, name string) string {
	return prog.Module + "/internal/lint/testdata/src/" + name
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// wantsIn extracts the `// want` expectations of a package: file/line →
// list of regexps.
func wantsIn(t *testing.T, prog *Program, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	out := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := prog.Fset.Position(c.Pos())
				key := posKey(pos)
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, pat, err)
					}
					out[key] = append(out[key], re)
				}
			}
		}
	}
	return out
}

func posKey(pos token.Position) string {
	return pos.Filename + ":" + itoa(pos.Line)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// runWantTest runs one analyzer over one fixture package and matches
// diagnostics against the package's want comments.
func runWantTest(t *testing.T, a *Analyzer, fixture string) {
	t.Helper()
	prog := testProgram(t)
	pkg := prog.Package(fixturePath(prog, fixture))
	if pkg == nil {
		t.Fatalf("fixture package %s not loaded", fixture)
	}
	diags := Run(prog, []*Analyzer{a}, []*Package{pkg})
	wants := wantsIn(t, prog, pkg)

	matched := map[string][]bool{}
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := posKey(prog.Fset.Position(d.Pos))
		res := wants[key]
		ok := false
		for i, re := range res {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("missing diagnostic at %s: no report matching %q", key, re)
			}
		}
	}
}
