package lint

// The multichecker driver: run a set of analyzers over a set of target
// packages and collect position-sorted diagnostics.

import (
	"fmt"
	"go/token"
	"path/filepath"
	"sort"
)

// DefaultAnalyzers returns the production flexlint suite, in the order the
// diagnostics documentation lists them. Lockcheck precedes Lockorder so that
// when both flag the same non-deferred Unlock, dedupe keeps lockcheck's
// (per-function, more precise) wording.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		Detlint, Statsum, Kernelpin, Lockcheck, Boundarg, Adjwrite,
		Lockorder, AtomicHygiene, Noalloc, Goroleak,
	}
}

// Run executes the analyzers against the target packages (which must belong
// to prog). Program-wide analyzers run once; their diagnostics are kept only
// when they land in a target package's files, so `flexlint ./internal/...`
// behaves like the go tool's package selection.
func Run(prog *Program, analyzers []*Analyzer, targets []*Package) []Diagnostic {
	var diags []Diagnostic
	targetFiles := map[string]bool{}
	for _, pkg := range targets {
		for _, fn := range pkg.Filenames {
			targetFiles[fn] = true
		}
	}
	for _, a := range analyzers {
		if a.ProgramWide {
			var got []Diagnostic
			a.Run(&Pass{Prog: prog, analyzer: a, diags: &got})
			for _, d := range got {
				if targetFiles[prog.Fset.Position(d.Pos).Filename] {
					diags = append(diags, d)
				}
			}
			continue
		}
		for _, pkg := range targets {
			if !a.applies(pkg.Path) {
				continue
			}
			a.Run(&Pass{Prog: prog, Pkg: pkg, analyzer: a, diags: &diags})
		}
	}
	// Cross-analyzer dedupe: one underlying bug, one report. Keys are
	// assigned by the analyzers (e.g. "nondef-unlock:<pos>" from both
	// lockcheck and lockorder); the first report in analyzer registration
	// order survives.
	seen := map[string]bool{}
	kept := diags[:0]
	for _, d := range diags {
		if d.Dedupe != "" {
			if seen[d.Dedupe] {
				continue
			}
			seen[d.Dedupe] = true
		}
		kept = append(kept, d)
	}
	diags = kept
	sort.Slice(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// Format renders one diagnostic as "path:line:col: analyzer: message", with
// the path relative to the module root when possible.
func Format(prog *Program, d Diagnostic) string {
	pos := prog.Fset.Position(d.Pos)
	name := pos.Filename
	if rel, err := filepath.Rel(prog.Root, name); err == nil && !filepath.IsAbs(rel) {
		name = rel
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", name, pos.Line, pos.Column, d.Analyzer, d.Message)
}

// position is a small helper for analyzers that need line lookups.
func (p *Program) position(pos token.Pos) token.Position { return p.Fset.Position(pos) }
