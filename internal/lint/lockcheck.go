package lint

// lockcheck guards the two shared mutable structures on the mining hot path:
// graph's lazily built hub-bitmap index and sched's work-stealing deques.
// Both are guarded by plain mutexes, and both are reached from panicking
// contexts (append can grow, user callbacks run under the scheduler), so two
// bug shapes are flagged:
//
//  1. copied locks — a sync.Mutex (or a struct containing one) passed,
//     received, ranged or assigned by value splits the lock into two
//     independent ones and silently unsynchronizes the critical sections;
//  2. non-deferred Unlock — an Unlock not issued via defer leaks the lock on
//     any panic or early return added between Lock and Unlock.

import (
	"go/ast"
	"go/types"
)

// LockcheckConfig scopes the analyzer.
type LockcheckConfig struct {
	Scope []string
}

// Lockcheck is the production instance: originally scoped to the hub-index
// and deque packages, extended to serve and core once those grew goroutine
// fan-out of their own (the serve job loop and the engine's worker state are
// the next places a copied lock or leaked Unlock would land).
var Lockcheck = NewLockcheck(LockcheckConfig{
	Scope: []string{
		"repro/internal/graph", "repro/internal/sched",
		"repro/internal/serve", "repro/internal/core",
	},
})

// NewLockcheck builds a lockcheck instance.
func NewLockcheck(cfg LockcheckConfig) *Analyzer {
	return &Analyzer{
		Name:  "lockcheck",
		Doc:   "flag copied mutexes and non-deferred Unlock in the hub-index and deque paths",
		Scope: cfg.Scope,
		Run:   runLockcheck,
	}
}

func runLockcheck(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		deferred := map[*ast.CallExpr]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if d, ok := n.(*ast.DeferStmt); ok {
				deferred[d.Call] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkUnlock(pass, n, deferred)
			case *ast.FuncDecl:
				checkLockSignature(pass, n)
			case *ast.AssignStmt:
				checkLockAssign(pass, n)
			case *ast.RangeStmt:
				checkLockRange(pass, n)
			}
			return true
		})
	}
}

// checkUnlock flags sync (RW)Mutex Unlock/RUnlock calls not issued through
// defer.
func checkUnlock(pass *Pass, call *ast.CallExpr, deferred map[*ast.CallExpr]bool) {
	if deferred[call] {
		return
	}
	fn := calleeOf(pass.Pkg, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return
	}
	if fn.Name() != "Unlock" && fn.Name() != "RUnlock" {
		return
	}
	// Keyed so lockorder's view of the same call dedupes against this one.
	pass.ReportDeduped(call.Pos(), nondefUnlockKey(call),
		"%s outside defer leaks the lock on panic or early return; use `defer %s`", fn.Name(), fn.Name())
}

// checkLockSignature flags by-value receivers and parameters of
// lock-containing types.
func checkLockSignature(pass *Pass, decl *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if containsLock(tv.Type, nil) {
				pass.Reportf(field.Pos(), "%s copies a lock-containing value (%s); use a pointer", what, tv.Type.String())
			}
		}
	}
	check(decl.Recv, "receiver")
	if decl.Type.Params != nil {
		check(decl.Type.Params, "parameter")
	}
}

// checkLockAssign flags statements that copy an existing lock-containing
// value. Fresh construction (composite literals, calls) is allowed — a value
// that has never guarded anything can still be moved.
func checkLockAssign(pass *Pass, n *ast.AssignStmt) {
	if allBlank(n.Lhs) {
		return // `_ = d` discards the value; nothing aliases the lock
	}
	for _, rhs := range n.Rhs {
		switch ast.Unparen(rhs).(type) {
		case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		default:
			continue
		}
		tv, ok := pass.Pkg.Info.Types[rhs]
		if ok && containsLock(tv.Type, nil) {
			pass.Reportf(rhs.Pos(), "assignment copies a lock-containing value (%s); share a pointer instead", tv.Type.String())
		}
	}
}

func allBlank(exprs []ast.Expr) bool {
	for _, e := range exprs {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name != "_" {
			return false
		}
	}
	return true
}

// checkLockRange flags `for _, v := range xs` where v copies a
// lock-containing element.
func checkLockRange(pass *Pass, rng *ast.RangeStmt) {
	if rng.Value == nil {
		return
	}
	// With `:=` the value is a fresh definition, recorded in Defs rather
	// than Types; with `=` it is a plain expression.
	var typ types.Type
	if id, ok := ast.Unparen(rng.Value).(*ast.Ident); ok {
		if obj, ok := pass.Pkg.Info.Defs[id]; ok && obj != nil {
			typ = obj.Type()
		}
	}
	if typ == nil {
		tv, ok := pass.Pkg.Info.Types[rng.Value]
		if !ok {
			return
		}
		typ = tv.Type
	}
	if containsLock(typ, nil) {
		pass.Reportf(rng.Value.Pos(), "range copies lock-containing elements (%s); index the slice or store pointers", typ.String())
	}
}

// containsLock reports whether t directly embeds a sync.Mutex/RWMutex (as
// itself, a struct field, or an array element — the shapes a plain copy
// duplicates).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
			(obj.Name() == "Mutex" || obj.Name() == "RWMutex" || obj.Name() == "WaitGroup" || obj.Name() == "Once" || obj.Name() == "Cond") {
			return true
		}
		return containsLock(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}
