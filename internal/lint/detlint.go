package lint

// detlint guards the determinism of the cycle model: the simulator, the
// c-map model and the plan compiler must produce bit-identical output for
// identical input, or the paper figures (Table II, Fig 7, Figs 13–16) stop
// reproducing. Three bug shapes are forbidden inside the scoped packages:
//
//  1. time.Now — wall-clock leaking into modeled state;
//  2. the unseeded global math/rand source (package-level rand.Intn & co.;
//     rand.New(rand.NewSource(seed)) is the sanctioned spelling);
//  3. map iteration whose body's effects depend on iteration order: appends
//     to slices declared outside the loop (candidate lists, constraint
//     lists, returned slices), writes to fields of a Stats struct, and
//     channel sends (simulator events).

import (
	"go/ast"
	"go/types"
)

// DetlintConfig scopes the analyzer.
type DetlintConfig struct {
	Scope []string
}

// Detlint is the production instance, scoped to the deterministic core. The
// graph substrate is included because its on-disk artifacts — binary CSR
// files, shard partitions, manifests — must be byte-reproducible for the
// golden and equivalence suites.
var Detlint = NewDetlint(DetlintConfig{
	Scope: []string{"repro/internal/sim", "repro/internal/cmap", "repro/internal/plan", "repro/internal/graph"},
})

// NewDetlint builds a detlint instance with the given scope (tests point it
// at fixture packages).
func NewDetlint(cfg DetlintConfig) *Analyzer {
	return &Analyzer{
		Name:  "detlint",
		Doc:   "forbid wall-clock, unseeded randomness, and order-dependent map iteration in the deterministic core",
		Scope: cfg.Scope,
		Run:   runDetlint,
	}
}

// seededRandCtors are the math/rand package-level functions that do not
// touch the unseeded global source.
var seededRandCtors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true}

func runDetlint(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDetCall(pass, n)
			case *ast.RangeStmt:
				checkMapRange(pass, f, n)
			}
			return true
		})
	}
}

func checkDetCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeOf(pass.Pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" && fn.Type().(*types.Signature).Recv() == nil {
			pass.Reportf(call.Pos(), "time.Now breaks cycle-model determinism; thread simulated time instead")
		}
	case "math/rand", "math/rand/v2":
		if fn.Type().(*types.Signature).Recv() == nil && !seededRandCtors[fn.Name()] {
			pass.Reportf(call.Pos(), "rand.%s uses the unseeded global source; use rand.New(rand.NewSource(seed)) for reproducible runs", fn.Name())
		}
	}
}

// checkMapRange flags order-dependent effects inside `range m` loops over
// maps. The one sanctioned append shape is the determinism idiom itself —
// collect the keys, sort them after the loop — so appends whose target is
// passed to a sort/slices call after the range are allowed.
func checkMapRange(pass *Pass, file *ast.File, rng *ast.RangeStmt) {
	tv, ok := pass.Pkg.Info.Types[rng.X]
	if !ok {
		return
	}
	if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
		return
	}
	declaredOutside := func(e ast.Expr) bool {
		id := rootIdent(e)
		if id == nil {
			return false
		}
		obj := pass.Pkg.Info.Uses[id]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[id]
		}
		if obj == nil {
			return false
		}
		return obj.Pos() < rng.Pos() || obj.Pos() > rng.End()
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && statsField(pass.Pkg, sel) {
					pass.Reportf(n.Pos(), "writes %s.%s in map-iteration order; Stats must accumulate deterministically — iterate sorted keys", statsRecvName(sel), sel.Sel.Name)
					continue
				}
				if i < len(n.Rhs) && isAppendCall(n.Rhs[i]) && declaredOutside(lhs) &&
					!sortedAfterRange(pass, file, rng, lhs) {
					pass.Reportf(n.Pos(), "appends to %q in map-iteration order; collect keys, sort them, then append", rootIdent(lhs).Name)
				}
			}
		case *ast.IncDecStmt:
			if sel, ok := ast.Unparen(n.X).(*ast.SelectorExpr); ok && statsField(pass.Pkg, sel) {
				pass.Reportf(n.Pos(), "writes %s.%s in map-iteration order; Stats must accumulate deterministically — iterate sorted keys", statsRecvName(sel), sel.Sel.Name)
			}
		case *ast.SendStmt:
			pass.Reportf(n.Pos(), "sends events in map-iteration order; drain a sorted key slice instead")
		}
		return true
	})
}

// sortedAfterRange reports whether the variable behind lhs is handed to a
// sort (or slices) call after the range statement inside the same file — the
// collect-then-sort determinism idiom.
func sortedAfterRange(pass *Pass, file *ast.File, rng *ast.RangeStmt, lhs ast.Expr) bool {
	target := rootIdent(lhs)
	if target == nil {
		return false
	}
	obj := pass.Pkg.Info.Uses[target]
	if obj == nil {
		obj = pass.Pkg.Info.Defs[target]
	}
	if obj == nil {
		return false
	}
	sorted := false
	ast.Inspect(file, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || call.Pos() < rng.End() {
			return !sorted
		}
		fn := calleeOf(pass.Pkg, call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id := rootIdent(arg); id != nil && pass.Pkg.Info.Uses[id] == obj {
				sorted = true
			}
			// sort.Slice(x, func(i, j int) bool { return x[i] < x[j] })
			// mentions x inside the comparator too; catch either spelling.
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return !sorted
	})
	return sorted
}

func isAppendCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "append"
}

// statsField reports whether sel selects a field whose receiver is a struct
// type named Stats.
func statsField(pkg *Package, sel *ast.SelectorExpr) bool {
	s, ok := pkg.Info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return false
	}
	recv := s.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	return ok && named.Obj().Name() == "Stats"
}

func statsRecvName(sel *ast.SelectorExpr) string {
	if id := rootIdent(sel.X); id != nil {
		return id.Name
	}
	return "Stats"
}
