// Package noallocfix seeds violations of every noalloc rule — heap
// composites, growing appends, interface boxing, string copies, escaping
// closures, goroutine spawns, unproven callees — next to the clean pooled
// shapes the production hot path uses (caller-owned dst, field scratch
// buffers, direct-called step closures).
package noallocfix

// handler exists so a closure has somewhere to escape to.
var handler func()

// helper is deliberately un-annotated: calling it from a noalloc context is
// a violation even though its body happens to be empty.
func helper() {}

// sink is annotated and takes an interface: the call is allowed, the boxing
// at each call site is not.
//
//flexlint:noalloc
func sink(v any) { _ = v }

// pool mirrors worker's pooled scratch buffers.
type pool struct{ buf []int }

// gather appends into caller-owned dst: growth is the caller's budget.
//
//flexlint:noalloc
func (p *pool) gather(dst, xs []int) []int {
	dst = dst[:0]
	for _, x := range xs {
		if x > 0 {
			dst = append(dst, x)
		}
	}
	return dst
}

// fill appends into the pooled field buffer.
//
//flexlint:noalloc
func (p *pool) fill(xs []int) {
	p.buf = p.buf[:0]
	p.buf = append(p.buf, xs...)
}

// derived appends into a local view of the pooled buffer.
//
//flexlint:noalloc
func (p *pool) derived(xs []int) int {
	out := p.buf[:0]
	out = append(out, xs...)
	return len(out)
}

// steps uses the leafCount idiom: an IIFE and a direct-called local closure,
// both non-escaping.
//
//flexlint:noalloc
func (p *pool) steps(xs []int) int {
	total := func() int { return 0 }()
	step := func(x int) { total += x }
	for _, x := range xs {
		step(x)
	}
	return total
}

//flexlint:noalloc
func allocates(n int) int {
	m := make([]int, n) // want `make allocates`
	q := new(pool)      // want `new allocates`
	xs := []int{1, 2}   // want `slice literal \[\]int allocates`
	h := map[int]int{}  // want `map literal map\[int\]int allocates`
	pp := &pool{}       // want `&noallocfix\.pool literal escapes`
	return len(m) + len(q.buf) + len(xs) + len(h) + len(pp.buf)
}

//flexlint:noalloc
func grows(xs []int) int {
	var buf []int
	for _, x := range xs {
		buf = append(buf, x) // want `append grows a slice`
	}
	return len(buf)
}

//flexlint:noalloc
func boxes(x int) {
	sink(x) // want `passing int to interface parameter boxes it`
	sink(nil)
}

//flexlint:noalloc
func assignBox(x int) any {
	var v any
	v = x // want `storing int into interface`
	return v
}

//flexlint:noalloc
func retBox(x int) any {
	return x // want `storing int into interface`
}

//flexlint:noalloc
func concat(a, b string) string {
	return a + b // want `string concatenation allocates`
}

//flexlint:noalloc
func toStr(b []byte) string {
	return string(b) // want `conversion copies`
}

//flexlint:noalloc
func storeClosure() {
	handler = func() {} // want `closure escapes`
}

//flexlint:noalloc
func spawns() {
	go helper() // want `go statement allocates a goroutine stack`
}

//flexlint:noalloc
func mustPos(x int) {
	if x < 0 {
		panic("neg") // want `panic boxes its argument`
	}
}

//flexlint:noalloc
func callsHelper() {
	helper() // want `neither //flexlint:noalloc nor allowlisted`
}

// ops mirrors worker's function-typed visit field: dynamic calls are only
// legal through an Allow entry.
type ops struct {
	fast   func(int) int
	pinned func(int) int
}

//flexlint:noalloc
func callsField(o *ops) int {
	return o.fast(1) // want `dynamic call through fast`
}

// callsPinned is clean: the test instance allowlists (noallocfix.ops).pinned
// the way production allowlists (core.worker).visit.
//
//flexlint:noalloc
func callsPinned(o *ops) int {
	return o.pinned(1)
}

//flexlint:noalloc
func callsValue(f func() int) int {
	return f() // want `dynamic call through function value f`
}

// kernel is the cmap.Map shape: annotating the interface method obligates
// every implementing type in the package.
type kernel interface {
	//flexlint:noalloc
	apply(xs []int) int
}

type good struct{}

//flexlint:noalloc
func (good) apply(xs []int) int {
	t := 0
	for _, x := range xs {
		t += x
	}
	return t
}

type bad struct{}

func (bad) apply(xs []int) int { // want `bad implements kernel\.apply, which is //flexlint:noalloc`
	return len(xs)
}

var _ = []kernel{good{}, bad{}}
