// Package statsfix seeds an incomplete Stats aggregation for the statsum
// analyzer tests: Add covers Tasks and one nested sub-stats but drops the
// two newest counters and one nested aggregate — exactly the cmap.Stats.Add
// bug class of PR 1.
package statsfix

import "repro/internal/lint/testdata/src/statsumok"

// Stats has two counters and one nested Stats its Add forgets. Label is
// non-numeric and exempt.
type Stats struct {
	Tasks        int64
	GallopProbes int64 // never aggregated
	BitmapProbes int64 // never aggregated
	Label        string
	Sub          statsumok.Stats // aggregated
	Dropped      statsumok.Stats // never aggregated
}

// Add forgets GallopProbes, BitmapProbes and Dropped.
func (s *Stats) Add(o *Stats) { // want `Stats\.Add does not aggregate field\(s\) GallopProbes, BitmapProbes, Dropped`
	s.Tasks += o.Tasks
	s.Sub.Tasks += o.Sub.Tasks
	s.Sub.Extensions += o.Sub.Extensions
}
