// Package lockorderfix seeds lock-ordering violations for the lockorder
// analyzer tests: an A→B / B→A cycle through callee summaries, a
// holds-at-return split-helper cycle, a recursive self-deadlock, and the
// clean release-then-reacquire shape of sched's steal sweep.
package lockorderfix

import "sync"

type a struct{ mu sync.Mutex }
type b struct{ mu sync.Mutex }

var ga a
var gb b

// abPath and baPath acquire the two mutexes in opposite orders through
// helpers — the classic cross-path deadlock lockorder exists to catch.
func abPath() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	lockB() // want `acquiring lockorder\.b\.mu while holding lockorder\.a\.mu`
}

func lockB() {
	gb.mu.Lock()
	defer gb.mu.Unlock()
}

func baPath() {
	gb.mu.Lock()
	defer gb.mu.Unlock()
	lockA() // want `acquiring lockorder\.a\.mu while holding lockorder\.b\.mu`
}

func lockA() {
	ga.mu.Lock()
	defer ga.mu.Unlock()
}

// node.chain recurses while holding its own mutex identity: two goroutines
// walking overlapping chains from opposite ends deadlock.
type node struct {
	mu   sync.Mutex
	next *node
}

func (n *node) chain() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.next != nil {
		n.next.chain() // want `already held`
	}
}

// c/d exercise the holds-at-return summary: acquireC leaks its lock to the
// caller, so cdPath's direct gd acquisition nests under c.mu, and dcPath
// closes the cycle with inline non-deferred unlocks.
type c struct{ mu sync.Mutex }
type d struct{ mu sync.Mutex }

var gc c
var gd d

func acquireC() { gc.mu.Lock() }

func releaseC() {
	gc.mu.Unlock() // want `Unlock of lockorder\.c\.mu outside defer`
}

func cdPath() {
	acquireC()
	gd.mu.Lock()   // want `acquiring lockorder\.d\.mu while holding lockorder\.c\.mu`
	gd.mu.Unlock() // want `Unlock of lockorder\.d\.mu outside defer`
	releaseC()
}

func dcPath() {
	gd.mu.Lock()
	defer gd.mu.Unlock()
	gc.mu.Lock()   // want `acquiring lockorder\.c\.mu while holding lockorder\.d\.mu`
	gc.mu.Unlock() // want `Unlock of lockorder\.c\.mu outside defer`
}

// mixed shows the non-deferred Unlock diagnostic on a package-level mutex;
// the release is tracked, so the following helper call creates no edge.
var mixed sync.Mutex

func releaseEarly() {
	mixed.Lock()
	mixed.Unlock() // want `Unlock of lockorder\.mixed outside defer`
	lockA()
}

// dq mirrors sched's deque: take releases dq.mu at return (deferred), so
// move's sequential take/put — the steal sweep shape — forms no self-edge.
type dq struct {
	mu sync.Mutex
	ts []int
}

func (q *dq) take() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.ts) == 0 {
		return 0, false
	}
	t := q.ts[len(q.ts)-1]
	q.ts = q.ts[:len(q.ts)-1]
	return t, true
}

func (q *dq) put(x int) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.ts = append(q.ts, x)
}

func move(src, dst *dq) {
	if x, ok := src.take(); ok {
		dst.put(x)
	}
}

// spawnClean: a goroutine's acquisitions are concurrent with the spawner's
// held set, not nested under it — no a→b edge forms here.
func spawnClean(wg *sync.WaitGroup) {
	ga.mu.Lock()
	defer ga.mu.Unlock()
	wg.Add(1)
	go func() {
		defer wg.Done()
		lockB()
	}()
}
