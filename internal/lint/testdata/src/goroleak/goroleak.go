// Package goroleakfix seeds goroutine-leak shapes for the goroleak analyzer
// tests, mirroring sched's worker pool, serve's listener goroutine and sim's
// PE coroutines.
package goroleakfix

import (
	"context"
	"sync"
)

// leak has no join, no cancellation, no completion signal.
func leak() {
	go func() { // want `no provable join or cancellation path`
		for i := 0; ; i++ {
			_ = i
		}
	}()
}

// joined is the sched worker-pool shape: Add before spawn, deferred Done.
func joined(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
		}()
	}
	wg.Wait()
}

// doneNoAdd calls Done on a local WaitGroup the spawner never Adds to.
func doneNoAdd() {
	var wg sync.WaitGroup
	go func() { // want `never calls Add`
		defer wg.Done()
	}()
	wg.Wait()
}

// fieldGroup: a WaitGroup owned by a struct is presumed paired at its owner.
type pool struct {
	wg sync.WaitGroup
}

func (p *pool) spawn() {
	go func() {
		defer p.wg.Done()
	}()
}

// cancellable exits via ctx.Done — serve's shutdown shape.
func cancellable(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// doneChan exits via a struct{} done channel handed in by the spawner.
func doneChan(done chan struct{}) {
	go func() {
		<-done
	}()
}

// ownChan makes its own channel: nobody outside can ever signal it.
func ownChan() {
	go func() { // want `no provable join or cancellation path`
		stop := make(chan struct{})
		<-stop
	}()
}

// signals is serve's listener shape: the error send doubles as the join.
func signals() chan error {
	errCh := make(chan error, 1)
	go func() { errCh <- nil }()
	return errCh
}

// pe mirrors sim's PE coroutine: a method spawn whose body sends a
// completion event on a coordinator-owned channel.
type pe struct {
	evCh chan int
}

func (p *pe) loop() {
	p.evCh <- 1
}

func run() {
	p := &pe{evCh: make(chan int, 1)}
	go p.loop()
	<-p.evCh
}

// orphan is a method spawn whose body has no termination signal.
func (p *pe) orphan() {
	for {
		_ = p
	}
}

func runOrphan() {
	p := &pe{}
	go p.orphan() // want `no provable join or cancellation path`
}

// delegated terminates through a helper one call level deep.
func helperDone(wg *sync.WaitGroup) {
	wg.Done()
}

func delegates() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer helperDone(&wg)
	}()
	wg.Wait()
}

// dynamic spawns a function value: the body is invisible to the analyzer.
func dynamic(f func()) {
	go f() // want `dynamic function value`
}
