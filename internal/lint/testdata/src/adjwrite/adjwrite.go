// Package adjfix seeds adjacency-write violations for the adjwrite analyzer
// tests, mirroring the graph.Store accessor shape on a local type so the
// fixture stays decoupled from the real substrate.
package adjfix

import (
	"sort"

	"repro/internal/graph"
)

type vid = graph.VID

// store mirrors the storage-seam accessor shape: Adj is a method with one
// parameter returning a slice view over shared memory.
type store struct {
	row []int64
	col []vid
}

func (s *store) Adj(v vid) []vid { return s.col[s.row[v]:s.row[v+1]] }

// adjLike has the Adj name but not the accessor shape (two params): not a
// storage-seam accessor, so writes through it are fine.
type adjLike struct{}

func (adjLike) Adj(v vid, pad int) []vid { return make([]vid, pad) }

// directWrite mutates the view in place.
func directWrite(s *store) {
	s.Adj(0)[0] = 1 // want `writes into an adjacency slice returned by Adj`
}

// aliasedWrites reach the view through a variable and a re-slice.
func aliasedWrites(s *store) {
	adj := s.Adj(1)
	adj[2] = 3 // want `writes into an adjacency slice returned by Adj`
	adj[0]++   // want `writes into an adjacency slice returned by Adj`
	sub := adj[1:]
	sub[0] = 4 // want `writes into an adjacency slice returned by Adj`
}

// rebound taints a variable assigned (not just declared) from Adj.
func rebound(s *store) {
	var view []vid
	view = s.Adj(2)
	view[0] = 7 // want `writes into an adjacency slice returned by Adj`
}

// builtinWrites mutate through copy and append.
func builtinWrites(s *store) {
	adj := s.Adj(0)
	copy(adj, []vid{9})    // want `copies into an adjacency slice returned by Adj`
	_ = append(adj[:0], 9) // want `appends onto the backing of an adjacency slice returned by Adj`
	_ = append(adj, 9)     // want `appends onto the backing of an adjacency slice returned by Adj`
}

// sortsInPlace reorders the view.
func sortsInPlace(s *store) {
	adj := s.Adj(3)
	sort.Slice(adj, func(i, j int) bool { return adj[i] < adj[j] }) // want `reorders an adjacency slice returned by Adj in place`
}

// interfaceWrite goes through the real storage seam.
func interfaceWrite(g graph.Store) {
	g.Adj(0)[0] = 1 // want `writes into an adjacency slice returned by Adj`
}

// cleanReads exercise every sanctioned shape: reads, copy-then-mutate, and
// append into fresh storage.
func cleanReads(s *store) vid {
	adj := s.Adj(0)
	var sum vid
	for _, u := range adj {
		sum += u
	}
	cp := append([]vid(nil), adj...)
	cp[0] = 1
	sort.Slice(cp, func(i, j int) bool { return cp[i] < cp[j] })
	copy(cp, adj)
	var local []vid
	local = append(local, adj...)
	if len(local) > 0 {
		local[0] = 2
	}
	_ = s.Adj(0)[0] // reading an element is fine
	other := adjLike{}
	w := other.Adj(0, 4)
	w[0] = 5 // not the accessor shape: allowed
	return sum + cp[0]
}
