// Package statsumok is the statsum control fixture: a complete merge (no
// diagnostics expected), including an unexported merge name and a non-numeric
// field that needs no aggregation.
package statsumok

// Stats is fully aggregated by its unexported merge method.
type Stats struct {
	Tasks      int64
	Extensions int64
	Name       string // non-numeric: exempt
}

func (s *Stats) add(o *Stats) {
	s.Tasks += o.Tasks
	s.Extensions += o.Extensions
}

// Summary has no Add/Merge method at all (a graph.Stats-style report
// struct): exempt from the check. It is not named Stats so it also
// exercises the name filter.
type Summary struct {
	Vertices int
}
