// Package detfix seeds determinism violations for the detlint analyzer
// tests. It is a fixture: never imported, only type-checked and linted.
package detfix

import (
	"math/rand"
	"sort"
	"time"
)

// Stats mimics an instrumentation block whose writes must be
// order-independent.
type Stats struct {
	Hits int64
}

func wallClock() int64 {
	return time.Now().UnixNano() // want `time\.Now breaks cycle-model determinism`
}

func unseeded() int {
	r := rand.New(rand.NewSource(42)) // seeded source: allowed
	return r.Intn(10) + rand.Intn(10) // want `rand\.Intn uses the unseeded global source`
}

func mapOrder(m map[int]int, s *Stats) []int {
	var out []int
	for k, v := range m {
		out = append(out, k) // want `appends to "out" in map-iteration order`
		s.Hits += int64(v)   // want `map-iteration order`
	}
	return out
}

func mapOrderInc(m map[int]int, s *Stats) {
	for range m {
		s.Hits++ // want `map-iteration order`
	}
}

func mapEvents(m map[int]int, ch chan int) {
	for k := range m {
		ch <- k // want `sends events in map-iteration order`
	}
}

// mapSortedKeys is the sanctioned determinism idiom: collect, sort, use.
func mapSortedKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k) // collect-then-sort: allowed
	}
	sort.Ints(keys)
	return keys
}

// sliceOrder ranges a slice, not a map: appends are in input order.
func sliceOrder(xs []int) []int {
	var out []int
	for _, x := range xs {
		out = append(out, x)
	}
	return out
}

// localAppend appends to a slice declared inside the loop body: no escape.
func localAppend(m map[int][]int) int {
	n := 0
	for _, vs := range m {
		var tmp []int
		tmp = append(tmp, vs...)
		n += len(tmp)
	}
	return n
}
