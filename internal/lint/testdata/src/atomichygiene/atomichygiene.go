// Package atomicfix seeds mixed atomic/plain accesses for the atomichygiene
// analyzer tests, mirroring the serve.Progress / sched steal-counter shapes.
package atomicfix

import "sync/atomic"

// counters mirrors a progress block: done is maintained with sync/atomic,
// plain is never touched atomically (and so never tracked).
type counters struct {
	done  int64
	plain int64
}

// hits is a package-level counter maintained atomically.
var hits int64

func bump(c *counters) {
	atomic.AddInt64(&c.done, 1)
	atomic.AddInt64(&hits, 1)
}

func loadOK(c *counters) int64 {
	return atomic.LoadInt64(&c.done) + atomic.LoadInt64(&hits)
}

// snapshot reads the atomic field without sync/atomic: a torn/stale read.
func snapshot(c *counters) int64 {
	return c.done // want `field done is accessed via sync/atomic elsewhere`
}

// reset writes the atomic field plainly: races every concurrent AddInt64.
func reset(c *counters) {
	c.done = 0 // want `field done is accessed via sync/atomic elsewhere`
}

// readHits mixes a plain read of the package-level counter.
func readHits() int64 {
	return hits // want `package-level var hits is accessed via sync/atomic elsewhere`
}

// plainOnly never goes through sync/atomic, so plain access is fine.
func plainOnly(c *counters) {
	c.plain++
}

// construct initializes by composite-literal key: construction precedes
// sharing, exempt by design.
func construct() *counters {
	return &counters{done: 0, plain: 0}
}
