// Package lockdedupe seeds exactly one bug — a non-deferred Unlock — that
// both lockcheck and lockorder detect independently. The driver's dedupe
// must collapse the pair to a single report (lockcheck's wording, since it
// registers first).
package lockdedupe

import "sync"

var mu sync.Mutex

func touch() {
	mu.Lock()
	mu.Unlock()
}
