// Package kernelfix seeds kernel-pinning violations for the kernelpin
// analyzer tests. The test instance of the analyzer roots its reachability
// at this package's Table2/Fig7/BaselineSeconds, mirroring the real
// paper-figure runners, and the fixture constructs real
// repro/internal/core.Options literals so type identity is exercised
// end to end.
package kernelfix

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// Table2 constructs one pinned literal, one literal missing the Kernel
// field, and one pinned to the wrong constant. AuxGraph's zero value IS the
// pinned AuxOff, so literals that omit it are fine; writing any other
// constant is a violation.
func Table2() {
	use(core.Options{Threads: 20, Kernel: core.KernelMergeOnly})            // pinned: ok (AuxGraph absent = AuxOff)
	use(core.Options{Threads: 20})                                          // want `without Kernel: KernelMergeOnly`
	use(core.Options{Kernel: core.KernelAuto})                              // want `must be the KernelMergeOnly constant`
	use(core.Options{Kernel: core.KernelMergeOnly, AuxGraph: core.AuxOff})  // explicit AuxOff: ok
	use(core.Options{Kernel: core.KernelMergeOnly, AuxGraph: core.AuxAuto}) // want `Options.AuxGraph on a paper-runner path must be the AuxOff constant`
	use2(plan.Options{})                                                    // different Options type: ignored
}

// Fig7 forwards through a parameter that every reachable caller pins: the
// BaselineSeconds → KernelSeconds plumbing shape, for both pinned fields.
func Fig7() {
	kernelSeconds(core.KernelMergeOnly) // ok: pins the forwarded parameter
	auxSeconds(core.AuxOff)             // ok: pins the forwarded aux mode
}

// BaselineSeconds forwards unpinned values into the same plumbing. Its own
// parameters cannot be pinned by the checked graph (runners are entry
// points), so forwarding them is reported at the runner itself — once per
// pinned field.
func BaselineSeconds(k core.KernelPolicy, m core.AuxMode) { // want `runner BaselineSeconds forwards a caller-supplied Kernel` `runner BaselineSeconds forwards a caller-supplied AuxGraph`
	kernelSeconds(core.KernelAuto) // want `passes an unpinned Kernel value`
	kernelSeconds(k)
	auxSeconds(core.AuxOn) // want `passes an unpinned AuxGraph value`
	auxSeconds(m)
}

// kernelSeconds is reachable plumbing whose Options literal takes its Kernel
// from a parameter, so every reachable call site must pin it.
func kernelSeconds(kernel core.KernelPolicy) {
	use(core.Options{Threads: 1, Kernel: kernel})
}

// auxSeconds is the same plumbing shape for the aux-graph mode.
func auxSeconds(mode core.AuxMode) {
	use(core.Options{Threads: 1, Kernel: core.KernelMergeOnly, AuxGraph: mode})
}

// unreachable is never referenced from a runner: its unpinned literal is not
// a paper-figure concern.
func unreachable() {
	use(core.Options{})
}

func use(core.Options)  {}
func use2(plan.Options) {}
