// Package kernelfix seeds kernel-pinning violations for the kernelpin
// analyzer tests. The test instance of the analyzer roots its reachability
// at this package's Table2/Fig7/BaselineSeconds, mirroring the real
// paper-figure runners, and the fixture constructs real
// repro/internal/core.Options literals so type identity is exercised
// end to end.
package kernelfix

import (
	"repro/internal/core"
	"repro/internal/plan"
)

// Table2 constructs one pinned literal, one literal missing the Kernel
// field, and one pinned to the wrong constant.
func Table2() {
	use(core.Options{Threads: 20, Kernel: core.KernelMergeOnly}) // pinned: ok
	use(core.Options{Threads: 20})                               // want `without Kernel: KernelMergeOnly`
	use(core.Options{Kernel: core.KernelAuto})                   // want `must be the KernelMergeOnly constant`
	use2(plan.Options{})                                         // different Options type: ignored
}

// Fig7 forwards through a parameter that every reachable caller pins: the
// BaselineSeconds → KernelSeconds plumbing shape.
func Fig7() {
	kernelSeconds(core.KernelMergeOnly) // ok: pins the forwarded parameter
}

// BaselineSeconds forwards an unpinned policy into the same plumbing. Its
// own parameter cannot be pinned by the checked graph (runners are entry
// points), so forwarding it is reported at the runner itself.
func BaselineSeconds(k core.KernelPolicy) { // want `runner BaselineSeconds forwards a caller-supplied kernel policy`
	kernelSeconds(core.KernelAuto) // want `passes an unpinned kernel policy`
	kernelSeconds(k)
}

// kernelSeconds is reachable plumbing whose Options literal takes its Kernel
// from a parameter, so every reachable call site must pin it.
func kernelSeconds(kernel core.KernelPolicy) {
	use(core.Options{Threads: 1, Kernel: kernel})
}

// unreachable is never referenced from a runner: its unpinned literal is not
// a paper-figure concern.
func unreachable() {
	use(core.Options{})
}

func use(core.Options)  {}
func use2(plan.Options) {}
