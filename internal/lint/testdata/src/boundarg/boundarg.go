// Package boundfix seeds bound-argument violations for the boundarg
// analyzer tests, mirroring the setops kernel signatures.
package boundfix

import "repro/internal/setops"

type vid = setops.VID

const noBound = ^vid(0)

// intersectCount mirrors a bound-aware counting kernel.
func intersectCount(a, b []vid, bound vid) int64 {
	var n int64
	s := &setops.Seeker{}
	for _, x := range a {
		if x >= bound {
			break
		}
		if s.Seek(b, x) {
			n++
		}
	}
	return n
}

// dropsBound calls the kernel with a constant while the real bound sits in
// scope — the bug shape the setops property tests probe dynamically.
func dropsBound(a, b []vid, bound vid) int64 {
	return intersectCount(a, b, noBound) // want `passes a constant bound to intersectCount while variable .bound. is in scope`
}

// dropsRealKernel does the same against the real setops API.
func dropsRealKernel(a, b []vid, bound vid) int64 {
	return setops.IntersectCount(a, b, setops.NoBound) // want `passes a constant bound to IntersectCount while variable .bound. is in scope`
}

// passesBound forwards the variable: the sanctioned shape.
func passesBound(a, b []vid, bound vid) int64 {
	return intersectCount(a, b, bound)
}

// unboundedWrapper has no bound in scope, so the constant is the caller's
// explicit, legitimate choice (the setops.Intersect → IntersectCost shape).
func unboundedWrapper(a, b []vid) int64 {
	return intersectCount(a, b, noBound)
}

// innerShadow declares its own bound after the call; the earlier call must
// not see it.
func innerShadow(a, b []vid) int64 {
	n := intersectCount(a, b, noBound)
	bound := vid(10)
	return n + intersectCount(a, b, bound)
}
