// Package lockfix seeds lock-discipline violations for the lockcheck
// analyzer tests, mirroring the deque/hub-index shapes.
package lockfix

import "sync"

// deque mirrors sched's mutex-guarded work queue.
type deque struct {
	mu sync.Mutex
	ts []int
}

// push holds the lock across an append without defer.
func (d *deque) push(x int) {
	d.mu.Lock()
	d.ts = append(d.ts, x)
	d.mu.Unlock() // want `Unlock outside defer leaks the lock`
}

// pop is the sanctioned shape.
func (d *deque) pop() (int, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.ts) == 0 {
		return 0, false
	}
	t := d.ts[len(d.ts)-1]
	d.ts = d.ts[:len(d.ts)-1]
	return t, true
}

// byValue copies the mutex with its container.
func byValue(d deque) int { // want `parameter copies a lock-containing value`
	return len(d.ts)
}

// valueReceiver copies the mutex on every call.
func (d deque) size() int { // want `receiver copies a lock-containing value`
	return len(d.ts)
}

func copies(ds []deque) {
	d := ds[0] // want `assignment copies a lock-containing value`
	_ = d
	for _, e := range ds { // want `range copies lock-containing elements`
		_ = e
	}
	// Pointers and indexing share the lock: allowed.
	p := &ds[0]
	_ = p
	for i := range ds {
		_ = ds[i].ts
	}
	// Fresh construction is a move of a never-used lock: allowed.
	fresh := deque{}
	_ = fresh.ts
}

// rw exercises RUnlock.
type rw struct {
	mu sync.RWMutex
	n  int
}

func (r *rw) read() int {
	r.mu.RLock()
	n := r.n
	r.mu.RUnlock() // want `RUnlock outside defer leaks the lock`
	return n
}

func (r *rw) readOK() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.n
}
