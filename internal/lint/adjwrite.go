package lint

// adjwrite guards the storage seam's aliasing contract: graph.Store.Adj (and
// the concrete backends' Adj methods) return views over the store's own
// memory — for in-heap graphs a slice of the shared Col array, for mapped
// and sharded stores a window into a PROT_READ mmap where a write is an
// unrecoverable SIGSEGV. Callers must treat the result as read-only and copy
// before mutating. adjwrite flags every write reached through an Adj result:
// direct element assignment, assignment or ++/-- through a variable (or
// re-slice of one) holding an Adj result, copy with such a slice as
// destination, in-place sorts (sort.Slice & friends, package slices), and
// append onto the Adj backing (the adj[:0] reuse idiom).

import (
	"go/ast"
	"go/types"
)

// Adjwrite is the production instance (all packages; the contract binds every
// caller of any backend).
var Adjwrite = NewAdjwrite()

// NewAdjwrite builds an adjwrite instance.
func NewAdjwrite() *Analyzer {
	return &Analyzer{
		Name: "adjwrite",
		Doc:  "forbid writes into adjacency slices returned by Adj (read-only views; mmap-backed stores fault)",
		Run:  runAdjwrite,
	}
}

func runAdjwrite(pass *Pass) {
	tainted := adjTainted(pass)
	derived := func(e ast.Expr) bool { return adjDerived(pass, e, tainted) }
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if idx, ok := ast.Unparen(lhs).(*ast.IndexExpr); ok && derived(idx.X) {
						pass.Reportf(lhs.Pos(), "writes into an adjacency slice returned by Adj; the result is a read-only view (mmap-backed stores fault) — copy before mutating")
					}
				}
			case *ast.IncDecStmt:
				if idx, ok := ast.Unparen(n.X).(*ast.IndexExpr); ok && derived(idx.X) {
					pass.Reportf(n.Pos(), "writes into an adjacency slice returned by Adj; the result is a read-only view (mmap-backed stores fault) — copy before mutating")
				}
			case *ast.CallExpr:
				checkAdjCall(pass, n, derived)
			}
			return true
		})
	}
}

// checkAdjCall flags calls that mutate an Adj-derived argument: builtin copy
// (destination) and append (backing reuse), and the in-place sorts of the
// sort and slices packages (first argument).
func checkAdjCall(pass *Pass, call *ast.CallExpr, derived func(ast.Expr) bool) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.Pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "copy":
				if derived(call.Args[0]) {
					pass.Reportf(call.Pos(), "copies into an adjacency slice returned by Adj; the result is a read-only view (mmap-backed stores fault) — allocate a destination")
				}
			case "append":
				if derived(call.Args[0]) {
					pass.Reportf(call.Pos(), "appends onto the backing of an adjacency slice returned by Adj; the result is a read-only view (mmap-backed stores fault) — append to a fresh slice")
				}
			}
			return
		}
	}
	fn := calleeOf(pass.Pkg, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
		return
	}
	if derived(call.Args[0]) {
		pass.Reportf(call.Pos(), "%s.%s reorders an adjacency slice returned by Adj in place; the result is a read-only view (mmap-backed stores fault) — sort a copy", fn.Pkg().Name(), fn.Name())
	}
}

// adjTainted computes, to a fixpoint, the set of variables holding an Adj
// result (directly or through re-slicing/re-assignment) anywhere in the
// package. Flow-insensitive on purpose: a variable that ever aliases
// adjacency is treated as adjacency everywhere.
func adjTainted(pass *Pass) map[types.Object]bool {
	tainted := map[types.Object]bool{}
	taint := func(lhs ast.Expr, changed *bool) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Pkg.Info.Defs[id]
		if obj == nil {
			obj = pass.Pkg.Info.Uses[id]
		}
		if obj != nil && !tainted[obj] {
			tainted[obj] = true
			*changed = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.AssignStmt:
					if len(n.Lhs) == len(n.Rhs) {
						for i, rhs := range n.Rhs {
							if adjDerived(pass, rhs, tainted) {
								taint(n.Lhs[i], &changed)
							}
						}
					}
				case *ast.ValueSpec:
					if len(n.Names) == len(n.Values) {
						for i, rhs := range n.Values {
							if adjDerived(pass, rhs, tainted) {
								taint(n.Names[i], &changed)
							}
						}
					}
				}
				return true
			})
		}
	}
	return tainted
}

// adjDerived reports whether e evaluates to (a re-slice of) an Adj result:
// a direct call to an Adj method, a tainted variable, or a slice expression
// over either.
func adjDerived(pass *Pass, e ast.Expr, tainted map[types.Object]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CallExpr:
		return isAdjMethodCall(pass, x)
	case *ast.Ident:
		obj := pass.Pkg.Info.Uses[x]
		if obj == nil {
			obj = pass.Pkg.Info.Defs[x]
		}
		return obj != nil && tainted[obj]
	case *ast.SliceExpr:
		return adjDerived(pass, x.X, tainted)
	}
	return false
}

// isAdjMethodCall matches the storage-seam accessor shape: a method named
// Adj with one parameter returning a slice — graph.Store.Adj and every
// backend's concrete implementation, without hard-coding the package.
func isAdjMethodCall(pass *Pass, call *ast.CallExpr) bool {
	fn := calleeOf(pass.Pkg, call)
	if fn == nil || fn.Name() != "Adj" {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || sig.Params().Len() != 1 || sig.Results().Len() != 1 {
		return false
	}
	_, isSlice := sig.Results().At(0).Type().Underlying().(*types.Slice)
	return isSlice
}
