// Package lint is flexlint: a suite of static analyzers that machine-check
// the repo's convention-only invariants — simulator determinism, stats
// aggregation completeness, paper-runner kernel pinning, lock discipline and
// bound-argument plumbing. The paper's figures (Table II, Fig 7, Figs 13–16)
// are only trustworthy when these invariants hold, so they are enforced at
// the Go-source level and wired into CI, the same way GPM systems
// machine-check symmetry/ordering invariants instead of hand-maintaining
// them.
//
// The suite is built directly on go/ast and go/types (the build environment
// has no module proxy, so golang.org/x/tools/go/analysis is unavailable);
// the Analyzer/Pass/Diagnostic shapes deliberately mirror that API so the
// analyzers can be ported to a multichecker if x/tools ever becomes
// available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string

	// Dedupe, when non-empty, names the underlying bug independently of the
	// analyzer that spotted it. Run keeps only the first diagnostic per key,
	// so overlapping analyzers (lockcheck and lockorder both flag a
	// non-deferred Unlock) report one bug once.
	Dedupe string
}

// Analyzer is one invariant checker. Per-package analyzers receive one Pass
// per target package; program-wide analyzers (kernelpin's call-graph
// reachability) run once with Pass.Pkg == nil and inspect Pass.Prog.
type Analyzer struct {
	Name string
	Doc  string

	// Scope restricts a per-package analyzer to packages whose import path
	// matches one of the entries (exact or suffix). Empty means every
	// package.
	Scope []string

	// ProgramWide runs the analyzer once over the whole program instead of
	// once per package.
	ProgramWide bool

	Run func(*Pass)
}

// applies reports whether the analyzer's scope covers pkgPath.
func (a *Analyzer) applies(pkgPath string) bool {
	return inScope(a.Scope, pkgPath)
}

// inScope reports whether pkgPath matches one of the scope entries (exact or
// suffix). An empty scope covers every package. Program-wide analyzers that
// take a package scope (lockorder) share this matcher with the per-package
// driver path.
func inScope(scope []string, pkgPath string) bool {
	if len(scope) == 0 {
		return true
	}
	for _, s := range scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer invocation's inputs and its report sink.
type Pass struct {
	Prog *Program
	Pkg  *Package // nil for program-wide analyzers

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportDeduped records a diagnostic carrying a cross-analyzer dedupe key;
// Run keeps the first report per key (analyzer registration order wins).
func (p *Pass) ReportDeduped(pos token.Pos, dedupe, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Dedupe:   dedupe,
	})
}

// funcBody pairs a declared function with its defining package.
type funcBody struct {
	pkg  *Package
	decl *ast.FuncDecl
}

// indexFuncs indexes every declared function (with a body) in the program by
// its types object. The interprocedural analyzers (kernelpin, lockorder,
// noalloc, goroleak) all resolve callsites through this one map, so a callee
// found via Info.Uses in one package is the same *types.Func key a Defs
// lookup produced in its defining package.
func indexFuncs(prog *Program) map[*types.Func]funcBody {
	bodies := map[*types.Func]funcBody{}
	for _, pkg := range prog.Packages() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					bodies[fn] = funcBody{pkg: pkg, decl: fd}
				}
			}
		}
	}
	return bodies
}

// calleeOf resolves the static callee of a call expression in pkg, or nil
// when the callee is not a declared function/method (function values,
// builtins, conversions).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// rootIdent returns the base identifier of an lvalue-ish expression chain
// (a, a.b.c, a[i].b, *a), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
