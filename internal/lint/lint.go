// Package lint is flexlint: a suite of static analyzers that machine-check
// the repo's convention-only invariants — simulator determinism, stats
// aggregation completeness, paper-runner kernel pinning, lock discipline and
// bound-argument plumbing. The paper's figures (Table II, Fig 7, Figs 13–16)
// are only trustworthy when these invariants hold, so they are enforced at
// the Go-source level and wired into CI, the same way GPM systems
// machine-check symmetry/ordering invariants instead of hand-maintaining
// them.
//
// The suite is built directly on go/ast and go/types (the build environment
// has no module proxy, so golang.org/x/tools/go/analysis is unavailable);
// the Analyzer/Pass/Diagnostic shapes deliberately mirror that API so the
// analyzers can be ported to a multichecker if x/tools ever becomes
// available.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Diagnostic is one reported violation.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Analyzer is one invariant checker. Per-package analyzers receive one Pass
// per target package; program-wide analyzers (kernelpin's call-graph
// reachability) run once with Pass.Pkg == nil and inspect Pass.Prog.
type Analyzer struct {
	Name string
	Doc  string

	// Scope restricts a per-package analyzer to packages whose import path
	// matches one of the entries (exact or suffix). Empty means every
	// package.
	Scope []string

	// ProgramWide runs the analyzer once over the whole program instead of
	// once per package.
	ProgramWide bool

	Run func(*Pass)
}

// applies reports whether the analyzer's scope covers pkgPath.
func (a *Analyzer) applies(pkgPath string) bool {
	if len(a.Scope) == 0 {
		return true
	}
	for _, s := range a.Scope {
		if pkgPath == s || strings.HasSuffix(pkgPath, s) {
			return true
		}
	}
	return false
}

// Pass carries one analyzer invocation's inputs and its report sink.
type Pass struct {
	Prog *Program
	Pkg  *Package // nil for program-wide analyzers

	analyzer *Analyzer
	diags    *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      pos,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// calleeOf resolves the static callee of a call expression in pkg, or nil
// when the callee is not a declared function/method (function values,
// builtins, conversions).
func calleeOf(pkg *Package, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pkg.Info.Uses[id].(*types.Func)
	return fn
}

// rootIdent returns the base identifier of an lvalue-ish expression chain
// (a, a.b.c, a[i].b, *a), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isPkgFunc reports whether fn is the package-level function pkgPath.name.
func isPkgFunc(fn *types.Func, pkgPath, name string) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath &&
		fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
