package lint

import (
	"go/parser"
	"go/token"
	"runtime"
	"testing"
)

func TestFilenameExcluded(t *testing.T) {
	cases := map[string]bool{
		"mmap_unix.go":                 false, // "unix" is not a filename GOOS
		"io.go":                        false,
		"linux.go":                     false, // no leading component
		"x_windows.go":                 runtime.GOOS != "windows",
		"x_" + runtime.GOOS + ".go":    false,
		"x_" + runtime.GOARCH + ".go":  false,
		"x_plan9_386.go":               runtime.GOOS != "plan9" || runtime.GOARCH != "386",
		"x_wasm.go":                    runtime.GOARCH != "wasm",
		"deque_test_helper_windows.go": runtime.GOOS != "windows",
	}
	for name, want := range cases {
		if got := filenameExcluded(name); got != want {
			t.Errorf("filenameExcluded(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestBuildTagsExclude(t *testing.T) {
	parse := func(src string) bool {
		t.Helper()
		f, err := parser.ParseFile(token.NewFileSet(), "x.go", src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatal(err)
		}
		return buildTagsExclude(f)
	}
	hostIsUnix := unixGOOS[runtime.GOOS]
	cases := []struct {
		src  string
		want bool
	}{
		{"package x\n", false},
		{"//go:build unix\n\npackage x\n", !hostIsUnix},
		{"//go:build !unix\n\npackage x\n", hostIsUnix},
		{"//go:build " + runtime.GOOS + "\n\npackage x\n", false},
		{"//go:build !" + runtime.GOOS + "\n\npackage x\n", true},
		{"//go:build sometag\n\npackage x\n", true},
		{"//go:build go1.21\n\npackage x\n", false},
		// A build comment after the package clause constrains nothing.
		{"package x\n\n//go:build unix\nvar V int\n", false},
	}
	for _, tc := range cases {
		if got := parse(tc.src); got != tc.want {
			t.Errorf("buildTagsExclude(%q) = %v, want %v", tc.src, got, tc.want)
		}
	}
}
