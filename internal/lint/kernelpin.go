package lint

// kernelpin guards the meaning of the paper figures. Table II, Fig 7 and the
// accelerator speedup baselines model merge-based systems (GraphZero,
// AutoMine) and the SIU/SDU cycle model, so every core.Options constructed
// on a path reachable from the paper-figure runners must pin
// Kernel: KernelMergeOnly — the adaptive kernels (PR 2) are benchmarked
// separately and must never leak into the figures. The analyzer builds a
// static call/reference graph from the runner roots, finds every reachable
// core.Options composite literal, and accepts exactly two shapes: the
// KernelMergeOnly constant, or a parameter of the enclosing function that is
// itself pinned to KernelMergeOnly at every reachable call site (the
// BaselineSeconds → KernelSeconds plumbing).

import (
	"go/ast"
	"go/types"
)

// KernelpinConfig names the roots and the pinned option.
type KernelpinConfig struct {
	RootsPkg    string   // package defining the paper-figure runners
	Roots       []string // function/method names of the runners
	OptionsPkg  string   // package defining the Options struct
	OptionsType string   // "Options"
	Field       string   // "Kernel"
	Want        string   // "KernelMergeOnly"
}

// Kernelpin is the production instance.
var Kernelpin = NewKernelpin(KernelpinConfig{
	RootsPkg:    "repro/internal/bench",
	Roots:       []string{"Table2", "Fig7", "BaselineSeconds"},
	OptionsPkg:  "repro/internal/core",
	OptionsType: "Options",
	Field:       "Kernel",
	Want:        "KernelMergeOnly",
})

// NewKernelpin builds a kernelpin instance (tests point the roots at fixture
// packages).
func NewKernelpin(cfg KernelpinConfig) *Analyzer {
	return &Analyzer{
		Name:        "kernelpin",
		Doc:         "paper-figure runner paths must construct core.Options with Kernel: KernelMergeOnly",
		ProgramWide: true,
		Run:         func(pass *Pass) { runKernelpin(pass, cfg) },
	}
}

// funcBody pairs a declared function with its defining package.
type funcBody struct {
	pkg  *Package
	decl *ast.FuncDecl
}

func runKernelpin(pass *Pass, cfg KernelpinConfig) {
	// Index every declared function in the program.
	bodies := map[*types.Func]funcBody{}
	for _, pkg := range pass.Prog.Packages() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					bodies[fn] = funcBody{pkg: pkg, decl: fd}
				}
			}
		}
	}

	// Reachability from the runner roots: any referenced function counts
	// (calls, and function values handed to schedulers/closures).
	reachable := map[*types.Func]bool{}
	roots := map[*types.Func]bool{}
	var queue []*types.Func
	for fn := range bodies {
		if fn.Pkg() != nil && fn.Pkg().Path() == cfg.RootsPkg && hasName(cfg.Roots, fn.Name()) {
			reachable[fn] = true
			roots[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		b := bodies[fn]
		ast.Inspect(b.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := b.pkg.Info.Uses[id].(*types.Func); ok {
				if _, declared := bodies[callee]; declared && !reachable[callee] {
					reachable[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	// needs[fn] = parameter indices that must receive the Want constant at
	// every reachable call site. Grown to a fixpoint: a call site that
	// forwards its own parameter adds a need one level up.
	needs := map[*types.Func]map[int]bool{}
	addNeed := func(fn *types.Func, idx int) bool {
		if needs[fn] == nil {
			needs[fn] = map[int]bool{}
		}
		if needs[fn][idx] {
			return false
		}
		needs[fn][idx] = true
		return true
	}

	// Phase 1: find Options literals in reachable functions; literals whose
	// Kernel value is a parameter seed the needs set.
	type litSite struct {
		fn  *types.Func
		pkg *Package
		lit *ast.CompositeLit
	}
	var lits []litSite
	for fn := range reachable {
		b := bodies[fn]
		ast.Inspect(b.decl.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if ok && isOptionsType(b.pkg, lit, cfg) {
				lits = append(lits, litSite{fn: fn, pkg: b.pkg, lit: lit})
			}
			return true
		})
	}
	for _, s := range lits {
		val := kernelFieldValue(s.lit, cfg.Field)
		if val == nil {
			continue // reported in phase 2
		}
		if idx, ok := paramIndexOf(s.pkg, s.fn, val); ok {
			addNeed(s.fn, idx)
		}
	}
	// Propagate: a reachable call that forwards a caller parameter into a
	// needed position extends the need to the caller.
	for changed := true; changed; {
		changed = false
		for fn := range reachable {
			b := bodies[fn]
			ast.Inspect(b.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(b.pkg, call)
				if callee == nil || len(needs[callee]) == 0 {
					return true
				}
				for idx := range needs[callee] {
					if idx >= len(call.Args) {
						continue
					}
					if pidx, ok := paramIndexOf(b.pkg, fn, call.Args[idx]); ok {
						if addNeed(fn, pidx) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}

	// Phase 2: report. Literals must pin the constant or forward a needed
	// parameter; needed parameters must receive the constant (or another
	// needed parameter) at every reachable call site.
	for _, s := range lits {
		val := kernelFieldValue(s.lit, cfg.Field)
		if val == nil {
			pass.Reportf(s.lit.Pos(), "%s.%s constructed on a paper-runner path without %s: %s (zero value selects the adaptive kernels and changes what the figures measure)",
				pkgBase(cfg.OptionsPkg), cfg.OptionsType, cfg.Field, cfg.Want)
			continue
		}
		if isWantConst(s.pkg, val, cfg) {
			continue
		}
		if idx, ok := paramIndexOf(s.pkg, s.fn, val); ok && needs[s.fn][idx] {
			continue // pinned transitively at every reachable call site
		}
		pass.Reportf(val.Pos(), "%s.%s on a paper-runner path must be the %s constant (or a parameter pinned to it by every caller)",
			cfg.OptionsType, cfg.Field, cfg.Want)
	}
	// A root runner that itself receives the policy as a parameter is never
	// pinned by the checked graph — its callers (CLIs, tests) are outside
	// it — so the need surfacing at a root is itself the violation.
	for fn := range roots {
		if len(needs[fn]) > 0 {
			pass.Reportf(bodies[fn].decl.Pos(), "paper-figure runner %s forwards a caller-supplied kernel policy into %s.%s; runners must pin %s internally",
				fn.Name(), pkgBase(cfg.OptionsPkg), cfg.OptionsType, cfg.Want)
		}
	}
	for fn := range reachable {
		b := bodies[fn]
		ast.Inspect(b.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(b.pkg, call)
			if callee == nil || len(needs[callee]) == 0 {
				return true
			}
			for idx := range needs[callee] {
				if idx >= len(call.Args) {
					pass.Reportf(call.Pos(), "call to %s cannot be proven to pin %s (argument %d missing)", callee.Name(), cfg.Field, idx)
					continue
				}
				arg := call.Args[idx]
				if isWantConst(b.pkg, arg, cfg) {
					continue
				}
				if pidx, ok := paramIndexOf(b.pkg, fn, arg); ok && needs[fn][pidx] {
					continue
				}
				pass.Reportf(arg.Pos(), "call to %s on a paper-runner path passes an unpinned kernel policy; pass %s", callee.Name(), cfg.Want)
			}
			return true
		})
	}
}

func hasName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// isOptionsType reports whether lit constructs cfg.OptionsPkg.OptionsType.
func isOptionsType(pkg *Package, lit *ast.CompositeLit, cfg KernelpinConfig) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == cfg.OptionsType && obj.Pkg() != nil && obj.Pkg().Path() == cfg.OptionsPkg
}

// kernelFieldValue returns the expression assigned to the Kernel field in a
// keyed composite literal, or nil when the field is absent.
func kernelFieldValue(lit *ast.CompositeLit, field string) ast.Expr {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return kv.Value
		}
	}
	return nil
}

// isWantConst reports whether e resolves to the cfg.Want constant of the
// options package.
func isWantConst(pkg *Package, e ast.Expr, cfg KernelpinConfig) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	c, ok := pkg.Info.Uses[id].(*types.Const)
	return ok && c.Name() == cfg.Want && c.Pkg() != nil && c.Pkg().Path() == cfg.OptionsPkg
}

// paramIndexOf reports whether e is a direct reference to one of fn's
// parameters, and which.
func paramIndexOf(pkg *Package, fn *types.Func, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return 0, false
	}
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return i, true
		}
	}
	return 0, false
}
