package lint

// kernelpin guards the meaning of the paper figures. Table II, Fig 7 and the
// accelerator speedup baselines model merge-based systems (GraphZero,
// AutoMine) and the SIU/SDU cycle model, so every core.Options constructed
// on a path reachable from the paper-figure runners must pin each configured
// field (KernelpinConfig.Pins): Kernel: KernelMergeOnly — the adaptive
// kernels (PR 2) are benchmarked separately — and AuxGraph: AuxOff — the
// auxiliary-graph layer (PR 7) prunes adjacency rows the baselines must read
// in full. The analyzer builds a static call/reference graph from the runner
// roots, finds every reachable core.Options composite literal, and accepts,
// per pin: the pinned constant, an absent field when the zero value is the
// constant (AuxOff), or a parameter of the enclosing function that is itself
// pinned at every reachable call site (the BaselineSeconds → KernelSeconds
// plumbing).

import (
	"go/ast"
	"go/types"
)

// FieldPin names one Options field and the constant it must be pinned to on
// every paper-runner path.
type FieldPin struct {
	Field string // e.g. "Kernel"
	Want  string // e.g. "KernelMergeOnly"
	// ZeroIsPinned marks fields whose zero value is the pinned constant
	// (AuxGraph: the zero AuxMode is AuxOff), so an absent field is proof
	// enough. Fields whose zero value selects adaptive behavior (Kernel:
	// zero is KernelAuto) must be written explicitly.
	ZeroIsPinned bool
}

// KernelpinConfig names the roots and the pinned options.
type KernelpinConfig struct {
	RootsPkg    string   // package defining the paper-figure runners
	Roots       []string // function/method names of the runners
	OptionsPkg  string   // package defining the Options struct
	OptionsType string   // "Options"
	Pins        []FieldPin
}

// Kernelpin is the production instance: figure runners model merge-based
// baselines with full adjacency rows, so both the adaptive kernels and the
// auxiliary-graph layer must be provably off on their paths.
var Kernelpin = NewKernelpin(KernelpinConfig{
	RootsPkg:    "repro/internal/bench",
	Roots:       []string{"Table2", "Fig7", "BaselineSeconds"},
	OptionsPkg:  "repro/internal/core",
	OptionsType: "Options",
	Pins: []FieldPin{
		{Field: "Kernel", Want: "KernelMergeOnly"},
		{Field: "AuxGraph", Want: "AuxOff", ZeroIsPinned: true},
	},
})

// NewKernelpin builds a kernelpin instance (tests point the roots at fixture
// packages).
func NewKernelpin(cfg KernelpinConfig) *Analyzer {
	return &Analyzer{
		Name:        "kernelpin",
		Doc:         "paper-figure runner paths must construct core.Options with every configured field pinned (Kernel: KernelMergeOnly, AuxGraph: AuxOff)",
		ProgramWide: true,
		Run:         func(pass *Pass) { runKernelpin(pass, cfg) },
	}
}

// litSite is one core.Options composite literal found in a reachable
// function.
type litSite struct {
	fn  *types.Func
	pkg *Package
	lit *ast.CompositeLit
}

func runKernelpin(pass *Pass, cfg KernelpinConfig) {
	// Index every declared function in the program.
	bodies := indexFuncs(pass.Prog)

	// Reachability from the runner roots: any referenced function counts
	// (calls, and function values handed to schedulers/closures).
	reachable := map[*types.Func]bool{}
	roots := map[*types.Func]bool{}
	var queue []*types.Func
	for fn := range bodies {
		if fn.Pkg() != nil && fn.Pkg().Path() == cfg.RootsPkg && hasName(cfg.Roots, fn.Name()) {
			reachable[fn] = true
			roots[fn] = true
			queue = append(queue, fn)
		}
	}
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		b := bodies[fn]
		ast.Inspect(b.decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if callee, ok := b.pkg.Info.Uses[id].(*types.Func); ok {
				if _, declared := bodies[callee]; declared && !reachable[callee] {
					reachable[callee] = true
					queue = append(queue, callee)
				}
			}
			return true
		})
	}

	// Options literals are pin-independent: collect them once, then prove
	// each configured pin over the same reachable graph.
	var lits []litSite
	for fn := range reachable {
		b := bodies[fn]
		ast.Inspect(b.decl.Body, func(n ast.Node) bool {
			lit, ok := n.(*ast.CompositeLit)
			if ok && isOptionsType(b.pkg, lit, cfg) {
				lits = append(lits, litSite{fn: fn, pkg: b.pkg, lit: lit})
			}
			return true
		})
	}

	for _, pin := range cfg.Pins {
		checkPin(pass, cfg, pin, bodies, reachable, roots, lits)
	}
}

// checkPin proves one FieldPin over the reachable graph: every collected
// Options literal either pins pin.Field to the pin.Want constant (or omits
// it, for zero-pinned fields), or forwards a parameter that every reachable
// call site pins transitively.
func checkPin(pass *Pass, cfg KernelpinConfig, pin FieldPin,
	bodies map[*types.Func]funcBody, reachable, roots map[*types.Func]bool,
	lits []litSite) {
	// needs[fn] = parameter indices that must receive the Want constant at
	// every reachable call site. Grown to a fixpoint: a call site that
	// forwards its own parameter adds a need one level up.
	needs := map[*types.Func]map[int]bool{}
	addNeed := func(fn *types.Func, idx int) bool {
		if needs[fn] == nil {
			needs[fn] = map[int]bool{}
		}
		if needs[fn][idx] {
			return false
		}
		needs[fn][idx] = true
		return true
	}

	// Phase 1: literals whose pinned-field value is a parameter seed the
	// needs set.
	for _, s := range lits {
		val := pinFieldValue(s.lit, pin.Field)
		if val == nil {
			continue // reported in phase 2
		}
		if idx, ok := paramIndexOf(s.pkg, s.fn, val); ok {
			addNeed(s.fn, idx)
		}
	}
	// Propagate: a reachable call that forwards a caller parameter into a
	// needed position extends the need to the caller.
	for changed := true; changed; {
		changed = false
		for fn := range reachable {
			b := bodies[fn]
			ast.Inspect(b.decl.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := calleeOf(b.pkg, call)
				if callee == nil || len(needs[callee]) == 0 {
					return true
				}
				for idx := range needs[callee] {
					if idx >= len(call.Args) {
						continue
					}
					if pidx, ok := paramIndexOf(b.pkg, fn, call.Args[idx]); ok {
						if addNeed(fn, pidx) {
							changed = true
						}
					}
				}
				return true
			})
		}
	}

	// Phase 2: report. Literals must pin the constant or forward a needed
	// parameter; needed parameters must receive the constant (or another
	// needed parameter) at every reachable call site.
	for _, s := range lits {
		val := pinFieldValue(s.lit, pin.Field)
		if val == nil {
			if pin.ZeroIsPinned {
				continue // the zero value is the pinned constant
			}
			pass.Reportf(s.lit.Pos(), "%s.%s constructed on a paper-runner path without %s: %s (zero value selects the adaptive kernels and changes what the figures measure)",
				pkgBase(cfg.OptionsPkg), cfg.OptionsType, pin.Field, pin.Want)
			continue
		}
		if isWantConst(s.pkg, val, cfg, pin) {
			continue
		}
		if idx, ok := paramIndexOf(s.pkg, s.fn, val); ok && needs[s.fn][idx] {
			continue // pinned transitively at every reachable call site
		}
		pass.Reportf(val.Pos(), "%s.%s on a paper-runner path must be the %s constant (or a parameter pinned to it by every caller)",
			cfg.OptionsType, pin.Field, pin.Want)
	}
	// A root runner that itself receives the policy as a parameter is never
	// pinned by the checked graph — its callers (CLIs, tests) are outside
	// it — so the need surfacing at a root is itself the violation.
	for fn := range roots {
		if len(needs[fn]) > 0 {
			pass.Reportf(bodies[fn].decl.Pos(), "paper-figure runner %s forwards a caller-supplied %s into %s.%s; runners must pin %s internally",
				fn.Name(), pin.Field, pkgBase(cfg.OptionsPkg), cfg.OptionsType, pin.Want)
		}
	}
	for fn := range reachable {
		b := bodies[fn]
		ast.Inspect(b.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := calleeOf(b.pkg, call)
			if callee == nil || len(needs[callee]) == 0 {
				return true
			}
			for idx := range needs[callee] {
				if idx >= len(call.Args) {
					pass.Reportf(call.Pos(), "call to %s cannot be proven to pin %s (argument %d missing)", callee.Name(), pin.Field, idx)
					continue
				}
				arg := call.Args[idx]
				if isWantConst(b.pkg, arg, cfg, pin) {
					continue
				}
				if pidx, ok := paramIndexOf(b.pkg, fn, arg); ok && needs[fn][pidx] {
					continue
				}
				pass.Reportf(arg.Pos(), "call to %s on a paper-runner path passes an unpinned %s value; pass %s", callee.Name(), pin.Field, pin.Want)
			}
			return true
		})
	}
}

func hasName(names []string, name string) bool {
	for _, n := range names {
		if n == name {
			return true
		}
	}
	return false
}

func pkgBase(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// isOptionsType reports whether lit constructs cfg.OptionsPkg.OptionsType.
func isOptionsType(pkg *Package, lit *ast.CompositeLit, cfg KernelpinConfig) bool {
	tv, ok := pkg.Info.Types[lit]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == cfg.OptionsType && obj.Pkg() != nil && obj.Pkg().Path() == cfg.OptionsPkg
}

// pinFieldValue returns the expression assigned to the pinned field in a
// keyed composite literal, or nil when the field is absent.
func pinFieldValue(lit *ast.CompositeLit, field string) ast.Expr {
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		if id, ok := kv.Key.(*ast.Ident); ok && id.Name == field {
			return kv.Value
		}
	}
	return nil
}

// isWantConst reports whether e resolves to the pin.Want constant of the
// options package.
func isWantConst(pkg *Package, e ast.Expr, cfg KernelpinConfig, pin FieldPin) bool {
	var id *ast.Ident
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		id = x
	case *ast.SelectorExpr:
		id = x.Sel
	default:
		return false
	}
	c, ok := pkg.Info.Uses[id].(*types.Const)
	return ok && c.Name() == pin.Want && c.Pkg() != nil && c.Pkg().Path() == cfg.OptionsPkg
}

// paramIndexOf reports whether e is a direct reference to one of fn's
// parameters, and which.
func paramIndexOf(pkg *Package, fn *types.Func, e ast.Expr) (int, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return 0, false
	}
	obj, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return 0, false
	}
	params := fn.Type().(*types.Signature).Params()
	for i := 0; i < params.Len(); i++ {
		if params.At(i) == obj {
			return i, true
		}
	}
	return 0, false
}
