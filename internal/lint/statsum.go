package lint

// statsum guards stats-completeness: every struct named Stats that has an
// aggregation method (Add/Merge, exported or not) must reference every
// numeric field — and every nested Stats-typed field — inside that method.
// This is the cmap.Stats.Add bug class (PR 1) made impossible: adding a new
// counter like GallopProbes (PR 2) without extending the merge silently
// drops it from every multi-worker total.

import (
	"go/ast"
	"go/types"
	"sort"
	"strings"
)

// Statsum is the production instance (all packages).
var Statsum = NewStatsum()

// NewStatsum builds a statsum instance.
func NewStatsum() *Analyzer {
	return &Analyzer{
		Name: "statsum",
		Doc:  "every Stats struct's Add/Merge method must aggregate every numeric field",
		Run:  runStatsum,
	}
}

// mergeMethodNames are the method names treated as "the aggregation method".
var mergeMethodNames = []string{"Add", "add", "Merge", "merge"}

func runStatsum(pass *Pass) {
	scope := pass.Pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.Name() != "Stats" {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		st, ok := named.Underlying().(*types.Struct)
		if !ok {
			continue
		}
		method := mergeMethod(named)
		if method == nil {
			continue // summary-only Stats (graph.Stats) or externally aggregated (sim.Stats)
		}
		decl := methodDecl(pass.Pkg, method)
		if decl == nil || decl.Body == nil {
			continue
		}
		missing := missingFields(pass.Pkg, st, decl)
		if len(missing) > 0 {
			pass.Reportf(decl.Pos(), "%s.%s does not aggregate field(s) %s; new counters must be merged or multi-worker totals silently drop them",
				tn.Name(), method.Name(), strings.Join(missing, ", "))
		}
	}
}

func mergeMethod(named *types.Named) *types.Func {
	for _, name := range mergeMethodNames {
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				return m
			}
		}
	}
	return nil
}

// methodDecl locates fn's declaration in pkg.
func methodDecl(pkg *Package, fn *types.Func) *ast.FuncDecl {
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Name.Name != fn.Name() {
				continue
			}
			if pkg.Info.Defs[fd.Name] == fn {
				return fd
			}
		}
	}
	return nil
}

// missingFields returns the names of aggregatable fields of st never
// referenced inside decl's body, sorted by declaration order.
func missingFields(pkg *Package, st *types.Struct, decl *ast.FuncDecl) []string {
	required := map[*types.Var]int{}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if aggregatable(f.Type()) {
			required[f] = i
		}
	}
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.FieldVal {
				delete(required, s.Obj().(*types.Var))
			}
		}
		return true
	})
	var out []string
	for f := range required {
		out = append(out, f.Name())
	}
	sort.Slice(out, func(i, j int) bool {
		return fieldIndex(st, out[i]) < fieldIndex(st, out[j])
	})
	return out
}

func fieldIndex(st *types.Struct, name string) int {
	for i := 0; i < st.NumFields(); i++ {
		if st.Field(i).Name() == name {
			return i
		}
	}
	return -1
}

// aggregatable reports whether a field must appear in the merge: numeric
// counters, and nested structs named Stats (sub-aggregates like
// core.Stats.CMap).
func aggregatable(t types.Type) bool {
	if b, ok := t.Underlying().(*types.Basic); ok {
		return b.Info()&types.IsNumeric != 0
	}
	if named, ok := t.(*types.Named); ok {
		_, isStruct := named.Underlying().(*types.Struct)
		return isStruct && named.Obj().Name() == "Stats"
	}
	return false
}
