package lint

// goroleak guards the repo's three goroutine launch sites (sched's worker
// pool, serve's listener, sim's PE coroutines) and every one the serve job
// queue will add: a `go` statement with no join or cancellation path leaks
// the goroutine — it outlives its Run call, holds its captured state, and
// under the multi-tenant serve loop accumulates per request.
//
// A spawn is accepted when the spawned function provably terminates into the
// spawner's control structure by one of:
//
//  1. WaitGroup discipline — the body calls wg.Done() (usually deferred) on a
//     WaitGroup the spawning function calls Add on (or one that reaches the
//     spawner from outside: a field or parameter paired elsewhere);
//  2. cancellation — the body receives from ctx.Done() or from a
//     struct{}-typed done channel declared outside the body;
//  3. completion signalling — the body sends on a channel rooted outside the
//     body (serve's `errCh <- srv.Serve(ln)`, sim's evDone event send), so
//     some coordinator observes termination.
//
// Static method/function spawns (`go p.loop()`) are resolved through the
// program-wide function index and their bodies checked the same way, one
// call level deep: a body that immediately delegates to a helper is checked
// through the helper. Spawns of dynamic function values are flagged — the
// analyzer cannot see the body, and neither can a reviewer.

import (
	"go/ast"
	"go/types"
)

// GoroleakConfig scopes the analyzer.
type GoroleakConfig struct {
	Scope []string
}

// Goroleak is the production instance, scoped to the goroutine-spawning
// packages.
var Goroleak = NewGoroleak(GoroleakConfig{
	Scope: []string{"repro/internal/sched", "repro/internal/serve", "repro/internal/sim"},
})

// NewGoroleak builds a goroleak instance.
func NewGoroleak(cfg GoroleakConfig) *Analyzer {
	return &Analyzer{
		Name:  "goroleak",
		Doc:   "every go statement in sched/serve/sim needs a provable join (WaitGroup pairing) or cancellation/completion path",
		Scope: cfg.Scope,
		Run:   runGoroleak,
	}
}

func runGoroleak(pass *Pass) {
	bodies := indexFuncs(pass.Prog)
	for _, f := range pass.Pkg.Files {
		// Track the enclosing declared function of each go statement: the
		// WaitGroup Add pairing is checked against it.
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				g, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkSpawn(pass, bodies, fd, g)
				return true
			})
		}
	}
}

// checkSpawn verifies one go statement inside spawner.
func checkSpawn(pass *Pass, bodies map[*types.Func]funcBody, spawner *ast.FuncDecl, g *ast.GoStmt) {
	var body *ast.BlockStmt
	var bodyPkg *Package
	switch fun := ast.Unparen(g.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
		bodyPkg = pass.Pkg
	default:
		callee := calleeOf(pass.Pkg, g.Call)
		if callee == nil {
			pass.Reportf(g.Pos(), "go statement spawns a dynamic function value; its join/cancellation path cannot be verified — spawn a named function or a literal")
			return
		}
		fb, ok := bodies[callee]
		if !ok {
			pass.Reportf(g.Pos(), "go statement spawns %s, whose body is outside the program; its join/cancellation path cannot be verified", callee.Name())
			return
		}
		body = fb.decl.Body
		bodyPkg = fb.pkg
	}
	if ok, doneObj := joinable(bodyPkg, bodies, body, 1); ok {
		if doneObj != nil && !waitGroupPaired(pass, spawner, doneObj) {
			pass.Reportf(g.Pos(), "spawned goroutine calls %s.Done but the spawning function never calls Add on it; a missing Add panics Wait or skews the join count", doneObj.Name())
		}
		return
	}
	pass.Reportf(g.Pos(), "go statement has no provable join or cancellation path (no WaitGroup.Done, no ctx.Done()/done-channel receive, no completion send on an external channel); the goroutine can leak")
}

// joinable scans a spawned body for a termination signal, descending one
// level into static callees. When the signal is a WaitGroup.Done, the
// WaitGroup variable is returned for Add pairing (nil for local-to-spawner
// groups that are checked, or non-locals presumed paired at their owner).
func joinable(pkg *Package, bodies map[*types.Func]funcBody, body *ast.BlockStmt, depth int) (bool, *types.Var) {
	found := false
	var doneObj *types.Var
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			if fn := calleeOf(pkg, n); fn != nil {
				if isWaitGroupMethod(fn, "Done") {
					found = true
					doneObj = receiverRootVar(pkg, n)
					return false
				}
				if fb, ok := bodies[fn]; ok && depth > 0 {
					if ok2, obj := joinable(fb.pkg, bodies, fb.decl.Body, depth-1); ok2 {
						found = true
						doneObj = obj
						return false
					}
				}
			}
		case *ast.UnaryExpr:
			// <-ch receive: accepted for ctx.Done() results and
			// struct{}-typed done channels rooted outside the body.
			if n.Op.String() == "<-" && isCancelReceive(pkg, body, n.X) {
				found = true
				return false
			}
		case *ast.SendStmt:
			// A completion send observed by a coordinator outside the body.
			if rootOutsideBody(pkg, body, n.Chan) {
				found = true
				return false
			}
		}
		return true
	})
	return found, doneObj
}

// isWaitGroupMethod reports whether fn is sync.WaitGroup's named method.
func isWaitGroupMethod(fn *types.Func, name string) bool {
	if fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return false
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}

// receiverRootVar resolves the root variable of a method call's receiver
// chain (wg.Done() → wg; s.wg.Done() → s).
func receiverRootVar(pkg *Package, call *ast.CallExpr) *types.Var {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id := rootIdent(sel.X)
	if id == nil {
		return nil
	}
	v, _ := pkg.Info.Uses[id].(*types.Var)
	return v
}

// waitGroupPaired reports whether the spawning function calls Add on the
// same root variable the spawned body calls Done on. A Done receiver that is
// not a local of the spawner (a field, or a parameter owned by a caller) is
// presumed paired at its owner.
func waitGroupPaired(pass *Pass, spawner *ast.FuncDecl, doneObj *types.Var) bool {
	if !declaredWithin(doneObj, spawner.Body) {
		return true
	}
	paired := false
	ast.Inspect(spawner.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(pass.Pkg, call)
		if fn == nil || !isWaitGroupMethod(fn, "Add") {
			return true
		}
		if receiverRootVar(pass.Pkg, call) == doneObj {
			paired = true
		}
		return true
	})
	return paired
}

// isCancelReceive reports whether a receive operand is a cancellation
// signal: a ctx.Done() call, or a struct{}-element channel rooted outside
// the body.
func isCancelReceive(pkg *Package, body *ast.BlockStmt, ch ast.Expr) bool {
	ch = ast.Unparen(ch)
	if call, ok := ch.(*ast.CallExpr); ok {
		fn := calleeOf(pkg, call)
		return fn != nil && fn.Name() == "Done" && fn.Pkg() != nil && fn.Pkg().Path() == "context"
	}
	tv, ok := pkg.Info.Types[ch]
	if !ok {
		return false
	}
	cht, ok := tv.Type.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, isStruct := cht.Elem().Underlying().(*types.Struct)
	if !isStruct || st.NumFields() != 0 {
		return false
	}
	return rootOutsideBody(pkg, body, ch)
}

// rootOutsideBody reports whether an expression's root variable is declared
// outside the spawned body — a channel the goroutine made for itself proves
// nothing, one handed in from the spawner is observed by a coordinator.
func rootOutsideBody(pkg *Package, body *ast.BlockStmt, e ast.Expr) bool {
	id := rootIdent(e)
	if id == nil {
		return false
	}
	v, ok := pkg.Info.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	return !declaredWithin(v, body)
}

// declaredWithin reports whether v's declaration lies inside body.
func declaredWithin(v *types.Var, body *ast.BlockStmt) bool {
	return v.Pos() >= body.Pos() && v.Pos() < body.End()
}
