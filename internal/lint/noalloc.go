package lint

// noalloc is the annotation-driven zero-alloc prover. The paper's throughput
// claims (Fig 13-16) assume the per-task inner loop — the set-operation
// kernels, the extension walk, the cMap probes, the auxiliary-graph
// activation — never touches the heap: the AllocsPerRun tests pin that at
// runtime for the inputs they happen to run, and noalloc pins it at the
// source level for every input.
//
// A function opts in by carrying the directive comment
//
//	//flexlint:noalloc
//
// immediately above its declaration (or above an interface method, which
// obligates every implementing type in the module). Inside an annotated
// body the prover rejects every construct that can allocate:
//
//   - make/new and slice/map composite literals, and &T{...} (heap escape);
//     plain value struct/array literals are fine;
//   - append whose destination does not trace to a parameter, a struct field
//     (the pooled scratch buffers: worker.mergeA, auxState.arena), or a
//     value derived from one — growing a fresh local slice allocates;
//   - interface boxing at call arguments, assignments, and returns;
//   - string concatenation and string<->[]byte conversions (numeric and
//     named-type conversions are free);
//   - closures, except immediately-invoked literals and literals bound to a
//     local that is only ever called directly (the `step := func(...)` idiom
//     in leafCount/filterViaSetOps/auxBuild — non-escaping, stack-allocated);
//   - go statements and panic.
//
// Calls are closed over the annotation: a callee must itself be annotated or
// appear on the Allow list. Allow entries use the types.Func FullName with
// pointers stripped — "(repro/internal/cmap.HashMap).Lookup",
// "repro/internal/setops.Bounded" — plus "(pkg.Type).field" for dynamic
// calls through a function-typed field (worker.visit). Allowlisting is the
// escape hatch for functions that are zero-alloc on the hot path but not
// provably so (Store.Adj implementations, the trace-gated emitTaskTrace).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

const noallocDirective = "//flexlint:noalloc"

// NoallocConfig parameterizes the prover.
type NoallocConfig struct {
	// Allow lists callee keys that annotated functions may call without the
	// callee being annotated: normalized FullName ("pkg.Func",
	// "(pkg.Type).Method" with '*' stripped) or "(pkg.Type).field" for
	// dynamic calls through function-typed fields.
	Allow []string
}

// Noalloc is the production instance. The allowlist is deliberately tiny and
// every entry carries its justification here:
//
//   - (repro/internal/graph.Store).Adj: the interface's implementations are
//     zero-alloc slice views, but Sharded.Adj routes through sort.Search
//     (a non-escaping closure the prover cannot see through);
//   - (repro/internal/core.worker).visit: a dynamic function-typed field; the
//     engine's own visitors are zero-alloc, user listeners are out of scope;
//   - (repro/internal/core.worker).emitTaskTrace: builds obs.Arg literals,
//     but only behind Tracer.Enabled — off the measured path by construction.
var Noalloc = NewNoalloc(NoallocConfig{
	Allow: []string{
		"(repro/internal/graph.Store).Adj",
		"(repro/internal/core.worker).visit",
		"(repro/internal/core.worker).emitTaskTrace",
	},
})

// NewNoalloc builds a noalloc instance.
func NewNoalloc(cfg NoallocConfig) *Analyzer {
	allow := map[string]bool{}
	for _, k := range cfg.Allow {
		allow[k] = true
	}
	return &Analyzer{
		Name:        "noalloc",
		Doc:         "//flexlint:noalloc functions must be provably heap-allocation-free and may only call annotated or allowlisted functions",
		ProgramWide: true,
		Run:         func(pass *Pass) { runNoalloc(pass, allow) },
	}
}

// noallocObligation records one annotated interface method: every module
// type implementing the interface owes an annotated implementation.
type noallocObligation struct {
	pkg       *Package
	ifaceName string
	iface     *types.Interface
	meth      *types.Func
}

func runNoalloc(pass *Pass, allow map[string]bool) {
	prog := pass.Prog
	bodies := indexFuncs(prog)
	annotated := map[*types.Func]bool{}
	var obligations []noallocObligation

	// Pass 1: collect the annotated set — function/method declarations and
	// interface method specs carrying the directive.
	for _, pkg := range prog.Packages() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if hasNoallocDirective(d.Doc) {
						if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
							annotated[fn] = true
						}
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						it, ok := ts.Type.(*ast.InterfaceType)
						if !ok || it.Methods == nil {
							continue
						}
						for _, m := range it.Methods.List {
							if len(m.Names) != 1 || !hasNoallocDirective(m.Doc) {
								continue
							}
							fn, ok := pkg.Info.Defs[m.Names[0]].(*types.Func)
							if !ok {
								continue
							}
							annotated[fn] = true
							tn, ok := pkg.Info.Defs[ts.Name].(*types.TypeName)
							if !ok {
								continue
							}
							iface, ok := tn.Type().Underlying().(*types.Interface)
							if !ok {
								continue
							}
							obligations = append(obligations, noallocObligation{
								pkg: pkg, ifaceName: ts.Name.Name, iface: iface, meth: fn,
							})
						}
					}
				}
			}
		}
	}
	if len(annotated) == 0 {
		return
	}

	// Pass 2: prove every annotated body.
	for _, pkg := range prog.Packages() {
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				fd, ok := d.(*ast.FuncDecl)
				if !ok || fd.Body == nil || !hasNoallocDirective(fd.Doc) {
					continue
				}
				c := &noallocChecker{
					pass:      pass,
					pkg:       pkg,
					allow:     allow,
					annotated: annotated,
				}
				c.checkFunc(fd)
			}
		}
	}

	// Pass 3: interface obligations. A type implementing an annotated
	// interface method must annotate (and thereby prove) its implementation,
	// or calls through the interface silently void the contract.
	reported := map[*types.Func]bool{}
	for _, pkg := range prog.Packages() {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			for _, ob := range obligations {
				// Fixture interfaces obligate fixture types only (and vice
				// versa) so testdata packages never leak diagnostics into the
				// production tree.
				if ob.pkg.Testdata != pkg.Testdata {
					continue
				}
				if !types.Implements(named, ob.iface) &&
					!types.Implements(types.NewPointer(named), ob.iface) {
					continue
				}
				obj, _, _ := types.LookupFieldOrMethod(types.NewPointer(named), true, ob.meth.Pkg(), ob.meth.Name())
				concrete, ok := obj.(*types.Func)
				if !ok || annotated[concrete] || reported[concrete] {
					continue
				}
				reported[concrete] = true
				pos := tn.Pos()
				if fb, ok := bodies[concrete]; ok {
					pos = fb.decl.Name.Pos()
				}
				pass.Reportf(pos, "%s implements %s.%s, which is //flexlint:noalloc; annotate this method so the interface contract stays provable",
					named.Obj().Name(), ob.ifaceName, ob.meth.Name())
			}
		}
	}
}

// hasNoallocDirective reports whether a doc group carries the directive.
func hasNoallocDirective(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.TrimSpace(c.Text) == noallocDirective {
			return true
		}
	}
	return false
}

// noallocKey is the Allow/annotation lookup key of a declared function:
// FullName with pointer markers stripped, so "(*pkg.T).M" and "(pkg.T).M"
// name the same method.
func noallocKey(fn *types.Func) string {
	return strings.ReplaceAll(fn.FullName(), "*", "")
}

// NoallocAnnotated returns the sorted keys of every annotated declaration in
// the production (non-testdata) packages — declared functions and interface
// methods. The hot-path coverage test asserts against this set.
func NoallocAnnotated(prog *Program) []string {
	var out []string
	for _, pkg := range prog.Packages() {
		if pkg.Testdata {
			continue
		}
		for _, f := range pkg.Files {
			for _, d := range f.Decls {
				switch d := d.(type) {
				case *ast.FuncDecl:
					if hasNoallocDirective(d.Doc) {
						if fn, ok := pkg.Info.Defs[d.Name].(*types.Func); ok {
							out = append(out, noallocKey(fn))
						}
					}
				case *ast.GenDecl:
					if d.Tok != token.TYPE {
						continue
					}
					for _, spec := range d.Specs {
						ts, ok := spec.(*ast.TypeSpec)
						if !ok {
							continue
						}
						it, ok := ts.Type.(*ast.InterfaceType)
						if !ok || it.Methods == nil {
							continue
						}
						for _, m := range it.Methods.List {
							if len(m.Names) == 1 && hasNoallocDirective(m.Doc) {
								if fn, ok := pkg.Info.Defs[m.Names[0]].(*types.Func); ok {
									out = append(out, noallocKey(fn))
								}
							}
						}
					}
				}
			}
		}
	}
	sort.Strings(out)
	return out
}

// noallocChecker proves one annotated function body.
type noallocChecker struct {
	pass      *Pass
	pkg       *Package
	allow     map[string]bool
	annotated map[*types.Func]bool

	paramVars   map[*types.Var]bool   // params + receivers, incl. closure params
	closureVars map[*types.Var]bool   // locals bound to a FuncLit and only called
	allowedLits map[*ast.FuncLit]bool // IIFEs and direct-called closure bodies
	varOrigins  map[*types.Var][]ast.Expr
	handledLits map[*ast.CompositeLit]bool // already reported at an enclosing &
	returnSigs  map[*ast.ReturnStmt]*types.Tuple
}

func (c *noallocChecker) reportf(pos token.Pos, format string, args ...any) {
	c.pass.Reportf(pos, format, args...)
}

func (c *noallocChecker) checkFunc(fd *ast.FuncDecl) {
	c.paramVars = map[*types.Var]bool{}
	c.closureVars = map[*types.Var]bool{}
	c.allowedLits = map[*ast.FuncLit]bool{}
	c.varOrigins = map[*types.Var][]ast.Expr{}
	c.handledLits = map[*ast.CompositeLit]bool{}
	c.returnSigs = map[*ast.ReturnStmt]*types.Tuple{}

	c.collectParams(fd.Recv)
	c.collectParams(fd.Type.Params)
	c.prepass(fd)
	if fn, ok := c.pkg.Info.Defs[fd.Name].(*types.Func); ok {
		c.collectReturns(fd.Body, fn.Type().(*types.Signature))
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if !c.allowedLits[x] {
				c.reportf(x.Pos(), "closure escapes (stored or passed as a value); an escaping closure allocates — hoist it to a named //flexlint:noalloc function or call it directly")
				return false
			}
			return true
		case *ast.GoStmt:
			c.reportf(x.Pos(), "go statement allocates a goroutine stack; not allowed in a //flexlint:noalloc function")
			return false
		case *ast.UnaryExpr:
			if x.Op == token.AND {
				if lit, ok := ast.Unparen(x.X).(*ast.CompositeLit); ok {
					c.handledLits[lit] = true
					c.reportf(x.Pos(), "&%s literal escapes to the heap", c.typeString(lit))
				}
			}
		case *ast.CompositeLit:
			c.checkCompositeLit(x)
		case *ast.CallExpr:
			c.checkCall(x)
		case *ast.BinaryExpr:
			c.checkBinary(x)
		case *ast.AssignStmt:
			c.checkAssign(x)
		case *ast.ValueSpec:
			c.checkValueSpec(x)
		case *ast.ReturnStmt:
			c.checkReturn(x)
		}
		return true
	})
}

// collectParams marks a field list's names as allocation-free append roots.
func (c *noallocChecker) collectParams(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, name := range f.Names {
			if v, ok := c.pkg.Info.Defs[name].(*types.Var); ok {
				c.paramVars[v] = true
			}
		}
	}
}

// prepass walks the whole declaration once to classify closures, record
// local-variable origins for the append rule, and pick up closure params.
func (c *noallocChecker) prepass(fd *ast.FuncDecl) {
	// Identifiers appearing in call-function position.
	calledIdents := map[*ast.Ident]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			calledIdents[id] = true
		}
		if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
			c.allowedLits[lit] = true // immediately-invoked: never escapes
		}
		return true
	})

	// Closure candidates: `step := func(...) {...}` single-assignments.
	litOf := map[*types.Var]*ast.FuncLit{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			c.collectParams(x.Type.Params)
		case *ast.AssignStmt:
			c.recordOrigins(x)
			if x.Tok == token.DEFINE && len(x.Lhs) == 1 && len(x.Rhs) == 1 {
				id, ok := x.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				lit, ok := x.Rhs[0].(*ast.FuncLit)
				if !ok {
					return true
				}
				if v, ok := c.pkg.Info.Defs[id].(*types.Var); ok {
					litOf[v] = lit
				}
			}
		case *ast.ValueSpec:
			c.recordSpecOrigins(x)
		case *ast.RangeStmt:
			c.recordRangeOrigins(x)
		}
		return true
	})

	// A closure var is direct-called when every use is a call head.
	for v, lit := range litOf {
		direct := true
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || c.pkg.Info.Uses[id] != v {
				return true
			}
			if !calledIdents[id] {
				direct = false
			}
			return true
		})
		if direct {
			c.closureVars[v] = true
			c.allowedLits[lit] = true
		}
	}
}

// recordOrigins maps assigned local slice variables to their source
// expressions for the append-root rule.
func (c *noallocChecker) recordOrigins(a *ast.AssignStmt) {
	if len(a.Lhs) != len(a.Rhs) {
		// Multi-value from a single call: the origin is callee-produced.
		if len(a.Rhs) == 1 {
			for _, lhs := range a.Lhs {
				if v := c.lhsVar(lhs, a.Tok); v != nil {
					c.varOrigins[v] = append(c.varOrigins[v], a.Rhs[0])
				}
			}
		}
		return
	}
	for i, lhs := range a.Lhs {
		if v := c.lhsVar(lhs, a.Tok); v != nil {
			c.varOrigins[v] = append(c.varOrigins[v], a.Rhs[i])
		}
	}
}

func (c *noallocChecker) recordSpecOrigins(s *ast.ValueSpec) {
	for i, name := range s.Names {
		v, ok := c.pkg.Info.Defs[name].(*types.Var)
		if !ok {
			continue
		}
		if i < len(s.Values) {
			c.varOrigins[v] = append(c.varOrigins[v], s.Values[i])
		}
	}
}

func (c *noallocChecker) recordRangeOrigins(r *ast.RangeStmt) {
	// `for _, row := range field` derives row from the ranged container.
	if r.Value == nil {
		return
	}
	id, ok := r.Value.(*ast.Ident)
	if !ok {
		return
	}
	if v, ok := c.pkg.Info.Defs[id].(*types.Var); ok {
		c.varOrigins[v] = append(c.varOrigins[v], r.X)
	}
}

func (c *noallocChecker) lhsVar(lhs ast.Expr, tok token.Token) *types.Var {
	id, ok := ast.Unparen(lhs).(*ast.Ident)
	if !ok {
		return nil
	}
	if tok == token.DEFINE {
		if v, ok := c.pkg.Info.Defs[id].(*types.Var); ok {
			return v
		}
	}
	v, _ := c.pkg.Info.Uses[id].(*types.Var)
	return v
}

// collectReturns records the result tuple governing each return statement,
// descending into allowed closures with their own signatures.
func (c *noallocChecker) collectReturns(body *ast.BlockStmt, sig *types.Signature) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			if litSig, ok := c.pkg.Info.Types[x].Type.(*types.Signature); ok {
				c.collectReturns(x.Body, litSig)
			}
			return false
		case *ast.ReturnStmt:
			c.returnSigs[x] = sig.Results()
		}
		return true
	})
}

func (c *noallocChecker) typeString(e ast.Expr) string {
	if tv, ok := c.pkg.Info.Types[e]; ok && tv.Type != nil {
		return types.TypeString(tv.Type, func(p *types.Package) string { return p.Name() })
	}
	return "composite"
}

func (c *noallocChecker) checkCompositeLit(lit *ast.CompositeLit) {
	if c.handledLits[lit] {
		return
	}
	tv, ok := c.pkg.Info.Types[lit]
	if !ok || tv.Type == nil {
		return
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		c.reportf(lit.Pos(), "slice literal %s allocates its backing array", c.typeString(lit))
	case *types.Map:
		c.reportf(lit.Pos(), "map literal %s allocates", c.typeString(lit))
	}
	// Value struct/array literals live in registers or on the stack: allowed.
}

func (c *noallocChecker) checkCall(call *ast.CallExpr) {
	fun := ast.Unparen(call.Fun)
	if tv, ok := c.pkg.Info.Types[fun]; ok && tv.IsType() {
		c.checkConversion(call, tv.Type)
		return
	}
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := c.pkg.Info.Uses[id].(*types.Builtin); ok {
			c.checkBuiltin(call, b.Name())
			return
		}
	}
	c.checkArgBoxing(call)
	if fn := calleeOf(c.pkg, call); fn != nil {
		if c.annotated[fn] || c.allow[noallocKey(fn)] {
			return
		}
		c.reportf(call.Pos(), "call to %s, which is neither //flexlint:noalloc nor allowlisted; its allocations are unproven", noallocKey(fn))
		return
	}
	switch fun := fun.(type) {
	case *ast.FuncLit:
		return // immediately-invoked; body is checked in place
	case *ast.Ident:
		if v, ok := c.pkg.Info.Uses[fun].(*types.Var); ok && c.closureVars[v] {
			return // direct-called local closure; body is checked in place
		}
		c.reportf(call.Pos(), "dynamic call through function value %s; the callee cannot be proven allocation-free", fun.Name)
	case *ast.SelectorExpr:
		if v, ok := c.pkg.Info.Uses[fun.Sel].(*types.Var); ok && v.IsField() {
			if named := namedTypeOf(c.pkg, fun.X); named != nil && named.Obj().Pkg() != nil {
				key := fmt.Sprintf("(%s.%s).%s", named.Obj().Pkg().Path(), named.Obj().Name(), fun.Sel.Name)
				if c.allow[key] {
					return
				}
			}
		}
		c.reportf(call.Pos(), "dynamic call through %s; the callee cannot be proven allocation-free (allowlist it if every installed value is zero-alloc)", fun.Sel.Name)
	default:
		c.reportf(call.Pos(), "dynamic call; the callee cannot be proven allocation-free")
	}
}

func (c *noallocChecker) checkBuiltin(call *ast.CallExpr, name string) {
	switch name {
	case "append":
		if len(call.Args) > 0 && !c.allowedSliceExpr(call.Args[0], map[*types.Var]bool{}) {
			c.reportf(call.Pos(), "append grows a slice that does not trace to a parameter or pooled field buffer; growth allocates")
		}
	case "make":
		c.reportf(call.Pos(), "make allocates")
	case "new":
		c.reportf(call.Pos(), "new allocates")
	case "panic":
		c.reportf(call.Pos(), "panic boxes its argument and unwinds; not allowed in a //flexlint:noalloc function")
	case "print", "println":
		c.reportf(call.Pos(), "%s allocates; not allowed in a //flexlint:noalloc function", name)
	}
	// len/cap/copy/delete/close/min/max/real/imag/complex/recover are free.
}

func (c *noallocChecker) checkConversion(call *ast.CallExpr, to types.Type) {
	if len(call.Args) != 1 {
		return
	}
	arg := call.Args[0]
	from := c.pkg.Info.Types[arg].Type
	if from == nil {
		return
	}
	if isInterfaceType(to) && !isInterfaceType(from) && !c.pkg.Info.Types[arg].IsNil() {
		c.reportf(call.Pos(), "conversion of %s to interface %s boxes it", from, to)
		return
	}
	toU, fromU := to.Underlying(), from.Underlying()
	if tb, ok := toU.(*types.Basic); ok && tb.Info()&types.IsString != 0 {
		if _, ok := fromU.(*types.Slice); ok {
			c.reportf(call.Pos(), "[]byte/[]rune-to-string conversion copies; not allowed in a //flexlint:noalloc function")
		}
		return
	}
	if ts, ok := toU.(*types.Slice); ok {
		if fb, ok := fromU.(*types.Basic); ok && fb.Info()&types.IsString != 0 {
			c.reportf(call.Pos(), "string-to-%s conversion copies; not allowed in a //flexlint:noalloc function", types.TypeString(ts, nil))
		}
	}
}

// checkArgBoxing flags non-interface arguments passed to interface
// parameters — each such pass boxes the value.
func (c *noallocChecker) checkArgBoxing(call *ast.CallExpr) {
	tv, ok := c.pkg.Info.Types[ast.Unparen(call.Fun)]
	if !ok || tv.Type == nil {
		return
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type()
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !isInterfaceType(pt) {
			continue
		}
		at := c.pkg.Info.Types[arg]
		if at.Type == nil || isInterfaceType(at.Type) || at.IsNil() {
			continue
		}
		c.reportf(arg.Pos(), "passing %s to interface parameter boxes it; every call allocates", at.Type)
	}
}

func (c *noallocChecker) checkBinary(x *ast.BinaryExpr) {
	if x.Op != token.ADD {
		return
	}
	tv, ok := c.pkg.Info.Types[x]
	if !ok || tv.Type == nil || tv.Value != nil { // constant folding is free
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.reportf(x.Pos(), "string concatenation allocates; not allowed in a //flexlint:noalloc function")
	}
}

func (c *noallocChecker) checkAssign(a *ast.AssignStmt) {
	if a.Tok == token.ADD_ASSIGN && len(a.Lhs) == 1 {
		if tv, ok := c.pkg.Info.Types[a.Lhs[0]]; ok && tv.Type != nil {
			if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
				c.reportf(a.Pos(), "string concatenation allocates; not allowed in a //flexlint:noalloc function")
			}
		}
	}
	if len(a.Lhs) != len(a.Rhs) {
		return
	}
	for i := range a.Lhs {
		var lt types.Type
		if a.Tok == token.DEFINE {
			if id, ok := a.Lhs[i].(*ast.Ident); ok {
				if v, ok := c.pkg.Info.Defs[id].(*types.Var); ok {
					lt = v.Type()
				}
			}
		} else if tv, ok := c.pkg.Info.Types[a.Lhs[i]]; ok {
			lt = tv.Type
		}
		c.checkBoxedInto(lt, a.Rhs[i])
	}
}

func (c *noallocChecker) checkValueSpec(s *ast.ValueSpec) {
	if s.Type == nil {
		return
	}
	tv, ok := c.pkg.Info.Types[s.Type]
	if !ok {
		return
	}
	for _, val := range s.Values {
		c.checkBoxedInto(tv.Type, val)
	}
}

func (c *noallocChecker) checkReturn(r *ast.ReturnStmt) {
	results := c.returnSigs[r]
	if results == nil || len(r.Results) != results.Len() {
		return
	}
	for i, e := range r.Results {
		c.checkBoxedInto(results.At(i).Type(), e)
	}
}

// checkBoxedInto flags storing a concrete value into an interface slot.
func (c *noallocChecker) checkBoxedInto(into types.Type, val ast.Expr) {
	if into == nil || !isInterfaceType(into) {
		return
	}
	tv := c.pkg.Info.Types[val]
	if tv.Type == nil || isInterfaceType(tv.Type) || tv.IsNil() {
		return
	}
	c.reportf(val.Pos(), "storing %s into interface %s boxes it", tv.Type, into)
}

// allowedSliceExpr reports whether an append destination traces to a
// parameter, a field (pooled scratch), or a value derived from one — the
// shapes whose growth the caller owns and the AllocsPerRun tests measure.
func (c *noallocChecker) allowedSliceExpr(e ast.Expr, seen map[*types.Var]bool) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		v, ok := c.pkg.Info.Uses[x].(*types.Var)
		if !ok {
			return false
		}
		return c.allowedSliceVar(v, seen)
	case *ast.SelectorExpr:
		v, ok := c.pkg.Info.Uses[x.Sel].(*types.Var)
		return ok && v.IsField()
	case *ast.SliceExpr:
		return c.allowedSliceExpr(x.X, seen)
	case *ast.IndexExpr:
		return c.allowedSliceExpr(x.X, seen)
	case *ast.StarExpr:
		return c.allowedSliceExpr(x.X, seen)
	case *ast.CallExpr:
		// `buf = append(buf, x)` must not launder buf through the call rule:
		// trace builtins and conversions through their operand instead.
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, ok := c.pkg.Info.Uses[id].(*types.Builtin); ok {
				if b.Name() == "append" && len(x.Args) > 0 {
					return c.allowedSliceExpr(x.Args[0], seen)
				}
				return false
			}
		}
		if tv, ok := c.pkg.Info.Types[ast.Unparen(x.Fun)]; ok && tv.IsType() {
			return len(x.Args) == 1 && c.allowedSliceExpr(x.Args[0], seen)
		}
		// A callee-produced buffer: the callee is proven (or flagged)
		// separately, and by the noalloc contract it returns caller-owned
		// storage (dst = w.setOp(dst, ...)).
		return true
	}
	return false
}

func (c *noallocChecker) allowedSliceVar(v *types.Var, seen map[*types.Var]bool) bool {
	if v.IsField() || c.paramVars[v] {
		return true
	}
	if seen[v] {
		return false
	}
	seen[v] = true
	for _, origin := range c.varOrigins[v] {
		if c.allowedSliceExpr(origin, seen) {
			return true
		}
	}
	return false
}

func isInterfaceType(t types.Type) bool {
	_, ok := t.Underlying().(*types.Interface)
	return ok
}
