package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metrics is the parsed form of a flexminer-metrics/v1 document — what
// Registry.WriteJSON emits and ReadMetricsJSON loads back for reporting.
type Metrics struct {
	Schema   string           `json:"schema"`
	Counters map[string]int64 `json:"counters"`
	Phases   []Phase          `json:"phases"`
}

// ReadMetricsJSON parses a flexminer-metrics/v1 document, rejecting other
// schemas.
func ReadMetricsJSON(r io.Reader) (*Metrics, error) {
	var doc Metrics
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: parse metrics: %w", err)
	}
	if doc.Schema != MetricsSchema {
		return nil, fmt.Errorf("obs: metrics schema %q, want %q", doc.Schema, MetricsSchema)
	}
	return &doc, nil
}

// RenderReport writes a markdown dashboard for one run from its metrics
// artifact and (optionally, may be nil) its time-series artifact: phase
// timers, the cycle-breakdown attribution table per engine prefix, every
// counter grouped by top-level prefix, and a time-series summary. The output
// is deterministic — sections and rows are emitted in sorted order — so
// reports diff cleanly across runs.
func RenderReport(w io.Writer, m *Metrics, ts *Timeseries) error {
	bw := &errWriter{w: w}
	bw.printf("# FlexMiner run report\n\n")
	bw.printf("Source: `%s`", m.Schema)
	if ts != nil {
		bw.printf(" + `%s` (window %d, %d samples)", ts.Schema, ts.Window, len(ts.Samples))
	}
	bw.printf("\n")

	if len(m.Phases) > 0 {
		bw.printf("\n## Phases\n\n| phase | ticks | share |\n|---|---:|---:|\n")
		var total int64
		for _, p := range m.Phases {
			if p.End >= 0 {
				total += p.Dur
			}
		}
		for _, p := range m.Phases {
			if p.End < 0 {
				bw.printf("| %s | (open) | |\n", p.Name)
				continue
			}
			bw.printf("| %s | %d | %s |\n", p.Name, p.Dur, pct(p.Dur, total))
		}
	}

	renderBreakdowns(bw, m.Counters)
	renderCounterGroups(bw, m.Counters)
	renderTimeseries(bw, ts)
	return bw.err
}

// renderBreakdowns emits one attribution table per "<prefix>.breakdown.*"
// counter family — the per-bucket cycle shares that answer "where did the
// cycles go".
func renderBreakdowns(bw *errWriter, counters map[string]int64) {
	groups := map[string]map[string]int64{}
	for name, v := range counters {
		i := strings.Index(name, ".breakdown.")
		if i < 0 {
			continue
		}
		prefix, bucket := name[:i], name[i+len(".breakdown."):]
		if groups[prefix] == nil {
			groups[prefix] = map[string]int64{}
		}
		groups[prefix][bucket] = v
	}
	for _, prefix := range sortedKeys(groups) {
		buckets := groups[prefix]
		var total int64
		for _, v := range buckets {
			total += v
		}
		bw.printf("\n## Cycle breakdown: %s\n\n| bucket | cycles | share |\n|---|---:|---:|\n", prefix)
		for _, b := range sortedKeys(buckets) {
			bw.printf("| %s | %d | %s |\n", b, buckets[b], pct(buckets[b], total))
		}
		bw.printf("| **total** | **%d** | 100.0%% |\n", total)
	}
}

// renderCounterGroups emits the full counter inventory, one table per
// top-level prefix (the segment before the first dot), skipping the
// breakdown families already rendered as attribution tables.
func renderCounterGroups(bw *errWriter, counters map[string]int64) {
	groups := map[string][]string{}
	for name := range counters {
		if strings.Contains(name, ".breakdown.") {
			continue
		}
		g := name
		if i := strings.Index(name, "."); i >= 0 {
			g = name[:i]
		}
		groups[g] = append(groups[g], name)
	}
	for _, g := range sortedKeys(groups) {
		names := groups[g]
		sort.Strings(names)
		bw.printf("\n## Counters: %s\n\n| counter | value |\n|---|---:|\n", g)
		for _, name := range names {
			bw.printf("| %s | %d |\n", name, counters[name])
		}
	}
}

// renderTimeseries summarizes the sampled series: for every sampled key, the
// final cumulative value and the per-window peak delta (the saturation
// signal — a resource whose peak window is far above its average is bursty).
func renderTimeseries(bw *errWriter, ts *Timeseries) {
	if ts == nil || len(ts.Samples) == 0 {
		return
	}
	last := ts.Samples[len(ts.Samples)-1]
	bw.printf("\n## Time series\n\n%d samples over %d cycles (window %d).\n\n| series | final | peak Δ/window |\n|---|---:|---:|\n",
		len(ts.Samples), last.T, ts.Window)
	for _, key := range sortedKeys(last.Values) {
		var prev, peak int64
		for _, s := range ts.Samples {
			if d := s.Values[key] - prev; d > peak {
				peak = d
			}
			prev = s.Values[key]
		}
		bw.printf("| %s | %d | %d |\n", key, last.Values[key], peak)
	}
}

// pct formats part/total as a percentage, tolerating a zero total.
func pct(part, total int64) string {
	if total == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// errWriter latches the first write error so the renderers stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
