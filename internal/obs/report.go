package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Metrics is the parsed form of a flexminer-metrics/v1 document — what
// Registry.WriteJSON emits and ReadMetricsJSON loads back for reporting.
type Metrics struct {
	Schema          string                            `json:"schema"`
	Counters        map[string]int64                  `json:"counters"`
	LabeledCounters map[string]LabeledCounterSnapshot `json:"labeled_counters,omitempty"`
	Histograms      map[string]HistogramSnapshot      `json:"histograms,omitempty"`
	Phases          []Phase                           `json:"phases"`
}

// ReadMetricsJSON parses a flexminer-metrics/v1 document, rejecting other
// schemas.
func ReadMetricsJSON(r io.Reader) (*Metrics, error) {
	var doc Metrics
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: parse metrics: %w", err)
	}
	if doc.Schema != MetricsSchema {
		return nil, fmt.Errorf("obs: metrics schema %q, want %q", doc.Schema, MetricsSchema)
	}
	return &doc, nil
}

// RenderReport writes a markdown dashboard for one run from its metrics
// artifact and (optionally, may be nil) its time-series artifact: phase
// timers, the cycle-breakdown attribution table per engine prefix, every
// counter grouped by top-level prefix, and a time-series summary. The output
// is deterministic — sections and rows are emitted in sorted order — so
// reports diff cleanly across runs.
func RenderReport(w io.Writer, m *Metrics, ts *Timeseries) error {
	bw := &errWriter{w: w}
	bw.printf("# FlexMiner run report\n\n")
	bw.printf("Source: `%s`", m.Schema)
	if ts != nil {
		bw.printf(" + `%s` (window %d, %d samples)", ts.Schema, ts.Window, len(ts.Samples))
	}
	bw.printf("\n")

	if len(m.Phases) > 0 {
		bw.printf("\n## Phases\n\n| phase | ticks | share |\n|---|---:|---:|\n")
		var total int64
		for _, p := range m.Phases {
			if p.End >= 0 {
				total += p.Dur
			}
		}
		for _, p := range m.Phases {
			if p.End < 0 {
				bw.printf("| %s | (open) | |\n", p.Name)
				continue
			}
			bw.printf("| %s | %d | %s |\n", p.Name, p.Dur, pct(p.Dur, total))
		}
	}

	renderBreakdowns(bw, m.Counters)
	renderHistograms(bw, m.Histograms)
	renderLabeledCounters(bw, m.LabeledCounters)
	renderCounterGroups(bw, m.Counters)
	renderTimeseries(bw, ts)
	return bw.err
}

// HistogramQuantile returns the estimated q-quantile (0 < q <= 1) of one
// exported series: the upper bound of the first bucket at which the
// cumulative count reaches ceil(q * count). Because buckets are log2-spaced
// the estimate is an upper bound with at most 2x resolution error — the
// standard Prometheus histogram_quantile trade, made deterministic by never
// interpolating. The +Inf bucket reports the largest finite bound (there is
// no meaningful upper bound to print). Returns 0 for an empty series.
func HistogramQuantile(bounds []int64, s HistogramSeries, q float64) int64 {
	if s.Count == 0 {
		return 0
	}
	target := int64(q * float64(s.Count))
	if float64(target) < q*float64(s.Count) {
		target++
	}
	if target < 1 {
		target = 1
	}
	var cum int64
	for i, b := range s.Buckets {
		cum += b
		if cum >= target {
			if i < len(bounds) {
				return bounds[i]
			}
			break
		}
	}
	if len(bounds) == 0 {
		return 0
	}
	return bounds[len(bounds)-1] // +Inf bucket: report the largest finite bound
}

// renderHistograms emits one latency table per histogram family: a row per
// series (per tenant for labeled families) with count, mean and
// p50/p95/p99 upper-bound estimates.
func renderHistograms(bw *errWriter, hists map[string]HistogramSnapshot) {
	for _, name := range sortedKeys(hists) {
		fam := hists[name]
		label := fam.Label
		if label == "" {
			label = "series"
		}
		bw.printf("\n## Histogram: %s\n\n", name)
		if fam.Help != "" {
			bw.printf("%s\n\n", fam.Help)
		}
		bw.printf("| %s | count | mean | p50 | p95 | p99 |\n|---|---:|---:|---:|---:|---:|\n", label)
		for _, lv := range sortedKeys(fam.Series) {
			s := fam.Series[lv]
			row := lv
			if row == "" {
				row = "(all)"
			}
			mean := "—"
			if s.Count > 0 {
				mean = fmt.Sprintf("%.1f", float64(s.Sum)/float64(s.Count))
			}
			bw.printf("| %s | %d | %s | %d | %d | %d |\n", row, s.Count, mean,
				HistogramQuantile(fam.Bounds, s, 0.50),
				HistogramQuantile(fam.Bounds, s, 0.95),
				HistogramQuantile(fam.Bounds, s, 0.99))
		}
	}
}

// renderLabeledCounters emits one table per labeled counter family, a row
// per label value plus a total — the per-tenant throughput/fairness view.
func renderLabeledCounters(bw *errWriter, lcs map[string]LabeledCounterSnapshot) {
	for _, name := range sortedKeys(lcs) {
		fam := lcs[name]
		bw.printf("\n## Labeled counter: %s\n\n", name)
		if fam.Help != "" {
			bw.printf("%s\n\n", fam.Help)
		}
		var total int64
		for _, v := range fam.Values {
			total += v
		}
		bw.printf("| %s | value | share |\n|---|---:|---:|\n", fam.Label)
		for _, lv := range sortedKeys(fam.Values) {
			bw.printf("| %s | %d | %s |\n", lv, fam.Values[lv], pct(fam.Values[lv], total))
		}
		bw.printf("| **total** | **%d** | 100.0%% |\n", total)
	}
}

// renderBreakdowns emits one attribution table per "<prefix>.breakdown.*"
// counter family — the per-bucket cycle shares that answer "where did the
// cycles go".
func renderBreakdowns(bw *errWriter, counters map[string]int64) {
	groups := map[string]map[string]int64{}
	for name, v := range counters {
		i := strings.Index(name, ".breakdown.")
		if i < 0 {
			continue
		}
		prefix, bucket := name[:i], name[i+len(".breakdown."):]
		if groups[prefix] == nil {
			groups[prefix] = map[string]int64{}
		}
		groups[prefix][bucket] = v
	}
	for _, prefix := range sortedKeys(groups) {
		buckets := groups[prefix]
		var total int64
		for _, v := range buckets {
			total += v
		}
		bw.printf("\n## Cycle breakdown: %s\n\n| bucket | cycles | share |\n|---|---:|---:|\n", prefix)
		for _, b := range sortedKeys(buckets) {
			bw.printf("| %s | %d | %s |\n", b, buckets[b], pct(buckets[b], total))
		}
		bw.printf("| **total** | **%d** | 100.0%% |\n", total)
	}
}

// renderCounterGroups emits the full counter inventory, one table per
// top-level prefix (the segment before the first dot), skipping the
// breakdown families already rendered as attribution tables.
func renderCounterGroups(bw *errWriter, counters map[string]int64) {
	groups := map[string][]string{}
	for name := range counters {
		if strings.Contains(name, ".breakdown.") {
			continue
		}
		g := name
		if i := strings.Index(name, "."); i >= 0 {
			g = name[:i]
		}
		groups[g] = append(groups[g], name)
	}
	for _, g := range sortedKeys(groups) {
		names := groups[g]
		sort.Strings(names)
		bw.printf("\n## Counters: %s\n\n| counter | value |\n|---|---:|\n", g)
		for _, name := range names {
			bw.printf("| %s | %d |\n", name, counters[name])
		}
	}
}

// renderTimeseries summarizes the sampled series: for every sampled key, the
// final cumulative value and the per-window peak delta (the saturation
// signal — a resource whose peak window is far above its average is bursty).
func renderTimeseries(bw *errWriter, ts *Timeseries) {
	if ts == nil || len(ts.Samples) == 0 {
		return
	}
	last := ts.Samples[len(ts.Samples)-1]
	bw.printf("\n## Time series\n\n%d samples over %d cycles (window %d).\n\n| series | final | peak Δ/window |\n|---|---:|---:|\n",
		len(ts.Samples), last.T, ts.Window)
	for _, key := range sortedKeys(last.Values) {
		var prev, peak int64
		for _, s := range ts.Samples {
			if d := s.Values[key] - prev; d > peak {
				peak = d
			}
			prev = s.Values[key]
		}
		bw.printf("| %s | %d | %d |\n", key, last.Values[key], peak)
	}
}

// pct formats part/total as a percentage, tolerating a zero total.
func pct(part, total int64) string {
	if total == 0 {
		return "—"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// errWriter latches the first write error so the renderers stay linear.
type errWriter struct {
	w   io.Writer
	err error
}

func (e *errWriter) printf(format string, args ...any) {
	if e.err != nil {
		return
	}
	_, e.err = fmt.Fprintf(e.w, format, args...)
}
