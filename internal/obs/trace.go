package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event categories emitted by the instrumented layers. The Chrome trace
// groups timelines by these, and the acceptance tests assert all three appear
// in a simulator trace.
const (
	// CatSched covers scheduling: CPU work-steals and task starts, and the
	// simulator's global task-dispatch decisions.
	CatSched = "sched"
	// CatKernel covers set-operation kernel work: per-task kernel-dispatch
	// summaries on the CPU, per-operation SIU/SDU spans in the simulator.
	CatKernel = "kernel"
	// CatSimPE covers simulated-PE state transitions: task-execution spans
	// and retirement.
	CatSimPE = "sim-pe"
	// CatPhase covers driver-level phase markers (plan/build/mine/simulate).
	CatPhase = "phase"
	// CatJobs covers job-service lifecycle spans: per-job queued/compiling/
	// running intervals and the flow events tying batched jobs to their
	// shared engine run.
	CatJobs = "jobs"
)

// DefaultTraceCap is the ring capacity used when NewTracer is given a
// non-positive one: large enough for the evaluation workloads' full traces,
// small enough (~64k events) to bound memory on unbounded runs.
const DefaultTraceCap = 1 << 16

// Arg is one key/value annotation on a trace event.
type Arg struct {
	Key string
	Val int64
}

// Event is one trace record. TS and Dur are in the tracer clock's units
// (virtual ticks, or simulated PE cycles for events emitted via EmitAt);
// Dur == 0 marks an instant event. TID identifies the worker or PE. Ph, when
// non-empty, forces the Chrome phase character instead of the X/i inference —
// the flow-event path ("s"/"f"), where BindID pairs the start with its
// finish across timelines.
type Event struct {
	TS     int64
	Dur    int64
	Cat    string
	Name   string
	TID    int
	Ph     string
	BindID int64
	Args   []Arg
}

// Tracer is a bounded ring buffer of events. Emissions past the capacity
// overwrite the oldest events (the drop count is reported by the summary), so
// tracing an unbounded run cannot exhaust memory. All methods are safe for
// concurrent use, and every method tolerates a nil receiver — a nil *Tracer
// is the disabled tracer, costing instrumentation sites one pointer test.
type Tracer struct {
	mu      sync.Mutex
	clock   Clock
	buf     []Event
	cap     int
	head    int   // index of the oldest event once the ring wrapped
	wrapped bool  // ring has overwritten at least once
	dropped int64 // events overwritten
}

// NewTracer builds a tracer with the given ring capacity (<= 0 selects
// DefaultTraceCap) reading timestamps from clock (nil selects a
// VirtualClock).
func NewTracer(clock Clock, capacity int) *Tracer {
	if clock == nil {
		clock = NewVirtualClock()
	}
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Tracer{clock: clock, cap: capacity}
}

// Enabled reports whether emissions are recorded; it is the nil test
// instrumentation sites use to skip argument construction.
//
//flexlint:noalloc
func (t *Tracer) Enabled() bool { return t != nil }

// Emit records an event stamped with the tracer clock.
func (t *Tracer) Emit(cat, name string, tid int, dur int64, args ...Arg) {
	if t == nil {
		return
	}
	t.insert(Event{TS: t.clock.Now(), Dur: dur, Cat: cat, Name: name, TID: tid, Args: args})
}

// EmitAt records an event with an explicit timestamp — the simulator path,
// where timestamps are PE-clock cycles and must not consult the tracer clock.
func (t *Tracer) EmitAt(cat, name string, tid int, ts, dur int64, args ...Arg) {
	if t == nil {
		return
	}
	t.insert(Event{TS: ts, Dur: dur, Cat: cat, Name: name, TID: tid, Args: args})
}

// EmitFlowAt records one endpoint of a flow arrow at an explicit timestamp:
// start=true emits the Chrome "s" (flow begin) phase on the given timeline,
// start=false the matching "f" (flow end); id pairs the two endpoints. The
// job service uses one flow per batched job, drawn from the job's lane to
// the engine-run span of the batch that carried it.
func (t *Tracer) EmitFlowAt(cat, name string, tid int, ts, id int64, start bool, args ...Arg) {
	if t == nil {
		return
	}
	ph := "f"
	if start {
		ph = "s"
	}
	t.insert(Event{TS: ts, Cat: cat, Name: name, TID: tid, Ph: ph, BindID: id, Args: args})
}

func (t *Tracer) insert(e Event) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if len(t.buf) < t.cap {
		t.buf = append(t.buf, e)
		return
	}
	t.buf[t.head] = e
	t.head = (t.head + 1) % t.cap
	t.wrapped = true
	t.dropped++
}

// Events returns the retained events in emission order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, 0, len(t.buf))
	if t.wrapped {
		out = append(out, t.buf[t.head:]...)
		out = append(out, t.buf[:t.head]...)
	} else {
		out = append(out, t.buf...)
	}
	return out
}

// Dropped returns how many events the ring overwrote.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Categories returns the sorted set of categories present in the retained
// events.
func (t *Tracer) Categories() []string {
	seen := map[string]bool{}
	for _, e := range t.Events() {
		seen[e.Cat] = true
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// chromeEvent is one entry of the Chrome trace_event JSON array
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" is a complete (duration) event, ph "i" an instant one. Args marshal
// as a map, which encoding/json emits with sorted keys — deterministic.
type chromeEvent struct {
	Name string           `json:"name"`
	Cat  string           `json:"cat"`
	Ph   string           `json:"ph"`
	TS   int64            `json:"ts"`
	Dur  int64            `json:"dur,omitempty"`
	PID  int              `json:"pid"`
	TID  int              `json:"tid"`
	S    string           `json:"s,omitempty"`
	ID   int64            `json:"id,omitempty"`
	BP   string           `json:"bp,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

type chromeDoc struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeJSON exports the retained events in Chrome trace_event JSON,
// loadable in chrome://tracing and Perfetto. Output is deterministic for a
// deterministic emission sequence.
func (t *Tracer) WriteChromeJSON(w io.Writer) error {
	events := t.Events()
	doc := chromeDoc{TraceEvents: make([]chromeEvent, 0, len(events)), DisplayTimeUnit: "ms"}
	for _, e := range events {
		ce := chromeEvent{Name: e.Name, Cat: e.Cat, TS: e.TS, Dur: e.Dur, TID: e.TID}
		switch {
		case e.Ph != "":
			ce.Ph = e.Ph
			ce.ID = e.BindID
			if e.Ph == "f" {
				ce.BP = "e" // bind the arrow to the enclosing slice's end
			}
		case e.Dur > 0:
			ce.Ph = "X"
		default:
			ce.Ph = "i"
			ce.S = "t" // thread-scoped instant
		}
		if len(e.Args) > 0 {
			ce.Args = make(map[string]int64, len(e.Args))
			for _, a := range e.Args {
				ce.Args[a.Key] = a.Val
			}
		}
		doc.TraceEvents = append(doc.TraceEvents, ce)
	}
	buf, err := json.MarshalIndent(doc, "", " ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// WriteSummary renders a human-readable digest: per (category, name) event
// counts and duration totals, sorted, plus the drop count — the quick-look
// companion to the Chrome export.
func (t *Tracer) WriteSummary(w io.Writer) error {
	events := t.Events()
	type key struct{ cat, name string }
	type agg struct {
		n   int64
		dur int64
	}
	byKey := map[key]*agg{}
	var keys []key
	for _, e := range events {
		k := key{e.Cat, e.Name}
		a, ok := byKey[k]
		if !ok {
			a = &agg{}
			byKey[k] = a
			keys = append(keys, k)
		}
		a.n++
		a.dur += e.Dur
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].cat != keys[j].cat {
			return keys[i].cat < keys[j].cat
		}
		return keys[i].name < keys[j].name
	})
	if _, err := fmt.Fprintf(w, "trace summary: %d events retained, %d dropped, %d categories\n",
		len(events), t.Dropped(), len(t.Categories())); err != nil {
		return err
	}
	for _, k := range keys {
		a := byKey[k]
		if _, err := fmt.Fprintf(w, "  %-10s %-16s %8d events %12d total dur\n",
			k.cat, k.name, a.n, a.dur); err != nil {
			return err
		}
	}
	return nil
}
