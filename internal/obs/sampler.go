package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TimeseriesSchema names the exported time-series JSON layout; bump it when
// the document shape changes so downstream diff tooling can detect drift.
const TimeseriesSchema = "flexminer-timeseries/v1"

// Sample is one snapshot of named cumulative values at timestamp T (virtual
// ticks, or simulated cycles when the simulator drives the sampler).
type Sample struct {
	T      int64            `json:"t"`
	Values map[string]int64 `json:"values"`
}

// Sampler accumulates fixed-window snapshots of named int64 values — the
// time-series companion to the Registry's end-of-run totals. The driver
// (the simulator coordinator, or a serving loop snapshotting a Registry)
// owns the clock: it asks Due(t) whether the next window boundary has been
// reached and calls Record with a value snapshot for each boundary crossed.
// Like the Tracer, a nil *Sampler is inert, and recording never feeds back
// into the driver — the cycle model is provably invariant under sampling.
type Sampler struct {
	mu      sync.Mutex
	window  int64
	next    int64
	samples []Sample
}

// NewSampler builds a sampler with the given window width (in the driver's
// time unit); widths below 1 are clamped to 1. The first boundary is at one
// window, so a sample at time 0 is never emitted.
func NewSampler(window int64) *Sampler {
	if window < 1 {
		window = 1
	}
	return &Sampler{window: window, next: window}
}

// Enabled reports whether the sampler records; it is the nil test drivers
// use to skip snapshot construction.
func (s *Sampler) Enabled() bool { return s != nil }

// Window returns the configured window width.
func (s *Sampler) Window() int64 {
	if s == nil {
		return 0
	}
	return s.window
}

// Due reports whether time t has reached the next window boundary — the
// driver should Record a snapshot (possibly several, one per boundary
// crossed) before advancing past t.
func (s *Sampler) Due(t int64) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return t >= s.next
}

// NextBoundary returns the timestamp the next sample will be attributed to.
func (s *Sampler) NextBoundary() int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.next
}

// Record appends a snapshot at the next window boundary and advances it one
// window. The sampler owns values from this point; callers must pass a
// fresh map per call.
func (s *Sampler) Record(values map[string]int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.samples = append(s.samples, Sample{T: s.next, Values: values})
	s.next += s.window
}

// RecordFinal appends a terminal snapshot at time t regardless of window
// alignment — the end-of-run flush that captures the final totals — unless
// the last recorded sample already sits at or past t.
func (s *Sampler) RecordFinal(t int64, values map[string]int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if n := len(s.samples); n > 0 && s.samples[n-1].T >= t {
		return
	}
	s.samples = append(s.samples, Sample{T: t, Values: values})
	s.next = t + s.window
}

// Samples returns a copy of the recorded snapshots in time order.
func (s *Sampler) Samples() []Sample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Sample(nil), s.samples...)
}

// SnapshotRegistry returns a copy of every counter currently in r — the
// value set a serving loop records on each wall-clock window.
func SnapshotRegistry(r *Registry) map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		out[k] = v
	}
	return out
}

// Timeseries is the parsed form of a flexminer-timeseries/v1 document —
// what WriteJSON emits and ReadTimeseriesJSON loads back for reporting.
type Timeseries struct {
	Schema  string   `json:"schema"`
	Window  int64    `json:"window"`
	Samples []Sample `json:"samples"`
}

// WriteJSON exports the recorded series as an indented
// flexminer-timeseries/v1 document. Sample values marshal as maps, which
// encoding/json emits with sorted keys, so two samplers fed the same
// snapshot sequence export byte-identical files (the golden-test contract,
// mirroring Registry.WriteJSON).
func (s *Sampler) WriteJSON(w io.Writer) error {
	doc := Timeseries{Schema: TimeseriesSchema, Window: s.Window(), Samples: s.Samples()}
	if doc.Samples == nil {
		doc.Samples = []Sample{}
	}
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// ReadTimeseriesJSON parses a flexminer-timeseries/v1 document, rejecting
// other schemas.
func ReadTimeseriesJSON(r io.Reader) (*Timeseries, error) {
	var doc Timeseries
	if err := json.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("obs: parse timeseries: %w", err)
	}
	if doc.Schema != TimeseriesSchema {
		return nil, fmt.Errorf("obs: timeseries schema %q, want %q", doc.Schema, TimeseriesSchema)
	}
	return &doc, nil
}
