package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"reflect"
	"sort"
	"strings"
	"sync"
	"unicode"
)

// MetricsSchema names the exported metrics JSON layout; bump it when the
// document shape changes so downstream diff tooling can detect drift.
const MetricsSchema = "flexminer-metrics/v1"

// Registry is a named-counter store plus a phase-timer log. Counters are
// int64 and accumulate via Add; the existing Stats structs of core, sim and
// cmap register their fields through AddStats. Export (WriteJSON) is
// deterministic: counters are emitted under sorted names and phases in begin
// order.
type Registry struct {
	mu       sync.Mutex
	clock    Clock
	counters map[string]int64
	help     map[string]string // optional per-counter HELP text (Prometheus)
	phases   []Phase

	// Distribution/labeled families (histogram.go). Kept in the same
	// registry so the decision-12 rule holds for them too: the Prometheus
	// exposition and the JSON artifact are two views of one store.
	hists     map[string]*Histogram
	lhists    map[string]*LabeledHistogram
	lcounters map[string]*LabeledCounter
}

// Phase is one closed phase-timer interval, in the registry clock's units.
type Phase struct {
	Name  string `json:"name"`
	Start int64  `json:"start"`
	End   int64  `json:"end"`
	Dur   int64  `json:"dur"`
}

// NewRegistry builds a registry reading timestamps from clock; a nil clock
// defaults to a VirtualClock, the deterministic choice.
func NewRegistry(clock Clock) *Registry {
	if clock == nil {
		clock = NewVirtualClock()
	}
	return &Registry{
		clock:     clock,
		counters:  map[string]int64{},
		help:      map[string]string{},
		hists:     map[string]*Histogram{},
		lhists:    map[string]*LabeledHistogram{},
		lcounters: map[string]*LabeledCounter{},
	}
}

// Clock returns the clock the registry stamps phases with, so subsystems
// that record their own timestamps (the job service's lifecycle clock) can
// share the registry's virtual/wall choice.
func (r *Registry) Clock() Clock { return r.clock }

// SetHelp attaches Prometheus HELP text to the named plain counter; the
// exposition falls back to a generic line when none is set.
func (r *Registry) SetHelp(name, help string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.help[name] = help
}

// Add accumulates delta into the named counter, creating it at zero first.
func (r *Registry) Add(name string, delta int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] += delta
}

// Set replaces the named counter's value (gauge semantics).
func (r *Registry) Set(name string, v int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.counters[name] = v
}

// Get returns the named counter's value (zero when absent).
func (r *Registry) Get(name string) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Names returns every registered counter name, sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for name := range r.counters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// StartPhase opens a scoped phase timer and returns its closer. Phases are
// recorded in begin order; nesting is allowed (the log is an interval list,
// not a stack). Under a VirtualClock the recorded interval counts clock reads
// between begin and end, which is deterministic for a deterministic
// instrumentation sequence.
func (r *Registry) StartPhase(name string) func() {
	start := r.clock.Now()
	r.mu.Lock()
	r.phases = append(r.phases, Phase{Name: name, Start: start, End: -1})
	idx := len(r.phases) - 1
	r.mu.Unlock()
	return func() {
		end := r.clock.Now()
		r.mu.Lock()
		defer r.mu.Unlock()
		if r.phases[idx].End >= 0 {
			return // double close: keep the first interval
		}
		r.phases[idx].End = end
		r.phases[idx].Dur = end - start
	}
}

// Phases returns a copy of the phase log in begin order. Phases still open
// are reported with End == -1 and Dur == 0.
func (r *Registry) Phases() []Phase {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Phase(nil), r.phases...)
}

// metricsDoc is the exported JSON document. Counters, histogram series and
// labeled values marshal as maps — encoding/json sorts map keys, which keeps
// the bytes deterministic. The labeled/histogram sections are omitted when
// empty, so documents from registries without them (every artifact golden
// recorded before they existed) are byte-identical to the pre-histogram
// layout — the reason the schema stays flexminer-metrics/v1.
type metricsDoc struct {
	Schema          string                            `json:"schema"`
	Counters        map[string]int64                  `json:"counters"`
	LabeledCounters map[string]LabeledCounterSnapshot `json:"labeled_counters,omitempty"`
	Histograms      map[string]HistogramSnapshot      `json:"histograms,omitempty"`
	Phases          []Phase                           `json:"phases"`
}

// WriteJSON exports the registry as indented JSON. Two exports of registries
// fed the same instrumentation sequence are byte-identical (the golden-test
// contract).
func (r *Registry) WriteJSON(w io.Writer) error {
	r.mu.Lock()
	doc := metricsDoc{
		Schema:   MetricsSchema,
		Counters: make(map[string]int64, len(r.counters)),
		Phases:   append([]Phase{}, r.phases...),
	}
	for k, v := range r.counters {
		doc.Counters[k] = v
	}
	r.mu.Unlock()
	doc.LabeledCounters = r.labeledCounterSnapshots()
	doc.Histograms = r.histogramSnapshots()
	buf, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	_, err = w.Write(buf)
	return err
}

// AddStats registers every aggregatable field of a Stats-like struct into r
// under prefix: exported integer fields become counters named
// prefix.snake_case_field, and nested struct fields recurse with the field
// name appended to the prefix. Float fields are skipped deliberately — they
// hold wall-clock-derived measurements (sim.Stats.Seconds, Utilization) that
// would break artifact determinism. The field enumeration mirrors the
// statsum lint's aggregatable() rule, and TestRegisteredMetricEnumeration
// pins the resulting name sets so a new Stats field cannot land without a
// registration decision.
func AddStats(r *Registry, prefix string, stats any) {
	walkStats(prefix, stats, func(name string, v int64) { r.Add(name, v) })
}

// StatsMetricNames returns the counter names AddStats would register for the
// given struct, sorted — the registry-side field enumeration used by the
// drift tests.
func StatsMetricNames(prefix string, stats any) []string {
	var names []string
	walkStats(prefix, stats, func(name string, _ int64) { names = append(names, name) })
	sort.Strings(names)
	return names
}

// walkStats visits every registrable field of a struct (recursing into nested
// structs) in declaration order.
func walkStats(prefix string, stats any, visit func(name string, v int64)) {
	v := reflect.ValueOf(stats)
	for v.Kind() == reflect.Pointer {
		if v.IsNil() {
			return
		}
		v = v.Elem()
	}
	if v.Kind() != reflect.Struct {
		panic(fmt.Sprintf("obs: AddStats wants a struct or *struct, got %T", stats))
	}
	walkStructFields(prefix, v, visit)
}

func walkStructFields(prefix string, v reflect.Value, visit func(string, int64)) {
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		f := t.Field(i)
		if !f.IsExported() {
			continue
		}
		name := prefix + "." + SnakeCase(f.Name)
		fv := v.Field(i)
		switch fv.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			visit(name, fv.Int())
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			visit(name, int64(fv.Uint()))
		case reflect.Bool:
			var b int64
			if fv.Bool() {
				b = 1
			}
			visit(name, b)
		case reflect.Struct:
			walkStructFields(name, fv, visit)
		}
		// Floats, strings, slices, maps, pointers: not metrics — skipped.
	}
}

// SnakeCase converts a Go identifier to snake_case, keeping acronym runs
// together: SetOpIterations → set_op_iterations, SIUIters → siu_iters,
// DRAMAccesses → dram_accesses, L1Hits → l1_hits, CMap → c_map.
func SnakeCase(name string) string {
	runes := []rune(name)
	var sb strings.Builder
	for i, r := range runes {
		if unicode.IsUpper(r) && i > 0 {
			prev := runes[i-1]
			nextLower := i+1 < len(runes) && unicode.IsLower(runes[i+1])
			if !unicode.IsUpper(prev) || nextLower {
				sb.WriteByte('_')
			}
		}
		sb.WriteRune(unicode.ToLower(r))
	}
	return sb.String()
}
