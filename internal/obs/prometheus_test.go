package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("sim.cycles", 100)
	r.Add("sim.breakdown.c_map_probe", 40)
	r.Add("cpu.count.0", 7)
	end := r.StartPhase("mine")
	end()
	r.StartPhase("open-phase") // never closed: must not be exposed

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "flexminer"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Counters are emitted sorted and dot-sanitized under the namespace.
	wantOrder := []string{
		"flexminer_cpu_count_0 7",
		"flexminer_sim_breakdown_c_map_probe 40",
		"flexminer_sim_cycles 100",
		`flexminer_phase_duration_ticks{phase="mine"}`,
	}
	pos := -1
	for _, want := range wantOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
		if i < pos {
			t.Errorf("%q out of order in:\n%s", want, out)
		}
		pos = i
	}
	if strings.Contains(out, "open-phase") {
		t.Errorf("open phase exposed:\n%s", out)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2, "flexminer"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}

func TestWritePrometheusTypedFamilies(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("jobs.completed", 3)
	r.SetHelp("jobs.completed", "jobs that reached done")
	r.Add("sim.cycles", 9)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "flexminer"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Every counter is its own family: HELP (custom text when set, generated
	// otherwise) immediately followed by TYPE counter and the sample.
	wantBlocks := []string{
		"# HELP flexminer_jobs_completed jobs that reached done\n# TYPE flexminer_jobs_completed counter\nflexminer_jobs_completed 3\n",
		"# TYPE flexminer_sim_cycles counter\nflexminer_sim_cycles 9\n",
	}
	for _, want := range wantBlocks {
		if !strings.Contains(out, want) {
			t.Errorf("missing block %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "untyped") {
		t.Errorf("untyped family survived:\n%s", out)
	}
}

func TestWritePrometheusLabeledCounter(t *testing.T) {
	r := NewRegistry(nil)
	lc := r.LabeledCounter("jobs.submitted", "jobs accepted by Submit", "tenant", 4)
	lc.Add("beta", 2)
	lc.Add("alpha", 5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "flexminer"); err != nil {
		t.Fatal(err)
	}
	want := "# HELP flexminer_jobs_submitted jobs accepted by Submit\n" +
		"# TYPE flexminer_jobs_submitted counter\n" +
		"flexminer_jobs_submitted{tenant=\"alpha\"} 5\n" +
		"flexminer_jobs_submitted{tenant=\"beta\"} 2\n"
	if got := buf.String(); got != want {
		t.Errorf("labeled counter exposition:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestWritePrometheusHistogram(t *testing.T) {
	r := NewRegistry(nil)
	h := r.LabeledHistogram("jobs.queue_wait_ms", "queue wait, ms", "tenant", 4)
	h.Observe("t0", 1) // bucket le=1
	h.Observe("t0", 3) // bucket le=4
	h.Observe("t0", 3) // bucket le=4

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "flexminer"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	wantLines := []string{
		"# TYPE flexminer_jobs_queue_wait_ms histogram",
		`flexminer_jobs_queue_wait_ms_bucket{tenant="t0",le="1"} 1`,
		`flexminer_jobs_queue_wait_ms_bucket{tenant="t0",le="2"} 1`,
		`flexminer_jobs_queue_wait_ms_bucket{tenant="t0",le="4"} 3`, // cumulative
		`flexminer_jobs_queue_wait_ms_bucket{tenant="t0",le="1048576"} 3`,
		`flexminer_jobs_queue_wait_ms_bucket{tenant="t0",le="+Inf"} 3`,
		`flexminer_jobs_queue_wait_ms_sum{tenant="t0"} 7`,
		`flexminer_jobs_queue_wait_ms_count{tenant="t0"} 3`,
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, out)
		}
	}

	// Single-series histogram: bare samples, no label pair.
	r2 := NewRegistry(nil)
	r2.Histogram("compile_ms", "").Observe(5)
	buf.Reset()
	if err := r2.WritePrometheus(&buf, "ns"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"# TYPE ns_compile_ms histogram",
		`ns_compile_ms_bucket{le="8"} 1`,
		`ns_compile_ms_bucket{le="+Inf"} 1`,
		"ns_compile_ms_sum 5",
		"ns_compile_ms_count 1",
	} {
		if !strings.Contains(buf.String(), want+"\n") {
			t.Errorf("missing line %q in:\n%s", want, buf.String())
		}
	}
}

func TestWritePrometheusDefaultNamespace(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("x", 1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flexminer_x 1") {
		t.Errorf("default namespace not applied:\n%s", buf.String())
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry(nil).WritePrometheus(&buf, "ns"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q", buf.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sim.c_map.hits":      "sim_c_map_hits",
		"fig14.TC.As.size.64": "fig14_TC_As_size_64",
		"weird-name/σ":        "weird_name__",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// failWriter errors after n bytes, exercising the exposition's error paths.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWritePrometheusPropagatesWriteErrors(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("a", 1)
	end := r.StartPhase("p")
	end()
	for _, budget := range []int{0, 60, 120} {
		if err := r.WritePrometheus(&failWriter{n: budget}, "ns"); err == nil {
			t.Errorf("budget %d: write error swallowed", budget)
		}
	}
}
