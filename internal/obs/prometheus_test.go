package obs

import (
	"bytes"
	"errors"
	"strings"
	"testing"
)

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("sim.cycles", 100)
	r.Add("sim.breakdown.c_map_probe", 40)
	r.Add("cpu.count.0", 7)
	end := r.StartPhase("mine")
	end()
	r.StartPhase("open-phase") // never closed: must not be exposed

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, "flexminer"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Counters are emitted sorted and dot-sanitized under the namespace.
	wantOrder := []string{
		"flexminer_cpu_count_0 7",
		"flexminer_sim_breakdown_c_map_probe 40",
		"flexminer_sim_cycles 100",
		`flexminer_phase_duration_ticks{phase="mine"}`,
	}
	pos := -1
	for _, want := range wantOrder {
		i := strings.Index(out, want)
		if i < 0 {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
		if i < pos {
			t.Errorf("%q out of order in:\n%s", want, out)
		}
		pos = i
	}
	if strings.Contains(out, "open-phase") {
		t.Errorf("open phase exposed:\n%s", out)
	}
	// Deterministic: a second render is byte-identical.
	var buf2 bytes.Buffer
	if err := r.WritePrometheus(&buf2, "flexminer"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("two renders of the same registry differ")
	}
}

func TestWritePrometheusDefaultNamespace(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("x", 1)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf, ""); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "flexminer_x 1") {
		t.Errorf("default namespace not applied:\n%s", buf.String())
	}
}

func TestWritePrometheusEmptyRegistry(t *testing.T) {
	var buf bytes.Buffer
	if err := NewRegistry(nil).WritePrometheus(&buf, "ns"); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Errorf("empty registry rendered %q", buf.String())
	}
}

func TestSanitizeMetricName(t *testing.T) {
	cases := map[string]string{
		"sim.c_map.hits":      "sim_c_map_hits",
		"fig14.TC.As.size.64": "fig14_TC_As_size_64",
		"weird-name/σ":        "weird_name__",
	}
	for in, want := range cases {
		if got := sanitizeMetricName(in); got != want {
			t.Errorf("sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// failWriter errors after n bytes, exercising the exposition's error paths.
type failWriter struct{ n int }

func (f *failWriter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestWritePrometheusPropagatesWriteErrors(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("a", 1)
	end := r.StartPhase("p")
	end()
	for _, budget := range []int{0, 60, 120} {
		if err := r.WritePrometheus(&failWriter{n: budget}, "ns"); err == nil {
			t.Errorf("budget %d: write error swallowed", budget)
		}
	}
}
