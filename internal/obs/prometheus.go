package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WritePrometheus renders every registry counter — and one duration sample
// per closed phase — in the Prometheus text exposition format (version
// 0.0.4), under the given namespace prefix. This is the /metrics surface of
// serve mode: the exposition is a *view* of the one Registry every layer
// already reports into, never a second counter system (DESIGN.md decision
// 12), so a value visible on /metrics is by construction the value the JSON
// artifact would export.
//
// Counter names map to metric names by prefixing the namespace and
// sanitizing: dots (the registry's hierarchy separator) become underscores,
// as does any other character outside [a-zA-Z0-9_]. Counters are emitted in
// sorted order and phases in begin order, so the page is deterministic for
// a deterministic instrumentation sequence.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if namespace == "" {
		namespace = "flexminer"
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	phases := append([]Phase(nil), r.phases...)
	r.mu.Unlock()

	names := make([]string, 0, len(counters))
	for name := range counters {
		names = append(names, name)
	}
	sort.Strings(names)
	if len(names) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP %s registry counters (see flexminer-metrics/v1 for the JSON form)\n# TYPE %s untyped\n",
			namespace, namespace); err != nil {
			return err
		}
	}
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "%s_%s %d\n", namespace, sanitizeMetricName(name), counters[name]); err != nil {
			return err
		}
	}
	if len(phases) > 0 {
		if _, err := fmt.Fprintf(w, "# HELP %s_phase_duration_ticks closed phase-timer spans, clock units\n# TYPE %s_phase_duration_ticks gauge\n",
			namespace, namespace); err != nil {
			return err
		}
		for _, p := range phases {
			if p.End < 0 {
				continue // still open; duration unknown
			}
			if _, err := fmt.Fprintf(w, "%s_phase_duration_ticks{phase=%q} %d\n",
				namespace, p.Name, p.Dur); err != nil {
				return err
			}
		}
	}
	return nil
}

// sanitizeMetricName maps a registry counter name onto the Prometheus metric
// name charset: [a-zA-Z0-9_], everything else replaced by '_'.
func sanitizeMetricName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
