package obs

import (
	"fmt"
	"io"
	"strings"
)

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4) under the given namespace prefix: every plain
// counter as its own `counter` family with per-family HELP text, every
// labeled counter family as one `counter` family with a label pair per
// series, every histogram family as a proper `histogram` (cumulative
// `_bucket` series plus `_sum`/`_count`), and one duration sample per closed
// phase. This is the /metrics surface of serve mode: the exposition is a
// *view* of the one Registry every layer already reports into, never a
// second counter system (DESIGN.md decision 12), so a value visible on
// /metrics is by construction the value the JSON artifact would export.
//
// Counter names map to metric names by prefixing the namespace and
// sanitizing: dots (the registry's hierarchy separator) become underscores,
// as does any other character outside [a-zA-Z0-9_]. Families are emitted in
// sorted name order (plain counters, then labeled counters, then
// histograms, then phases), series within a family in sorted label order,
// so the page is deterministic for a deterministic instrumentation
// sequence.
func (r *Registry) WritePrometheus(w io.Writer, namespace string) error {
	if namespace == "" {
		namespace = "flexminer"
	}
	r.mu.Lock()
	counters := make(map[string]int64, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	help := make(map[string]string, len(r.help))
	for k, v := range r.help {
		help[k] = v
	}
	phases := append([]Phase(nil), r.phases...)
	r.mu.Unlock()
	labeled := r.labeledCounterSnapshots()
	hists := r.histogramSnapshots()

	bw := &errWriter{w: w}
	for _, name := range sortedKeys(counters) {
		metric := namespace + "_" + sanitizeMetricName(name)
		h := help[name]
		if h == "" {
			h = fmt.Sprintf("registry counter %s (flexminer-metrics/v1 counters[%q])", name, name)
		}
		bw.printf("# HELP %s %s\n# TYPE %s counter\n%s %d\n", metric, h, metric, metric, counters[name])
	}
	for _, name := range sortedKeys(labeled) {
		fam := labeled[name]
		metric := namespace + "_" + sanitizeMetricName(name)
		h := fam.Help
		if h == "" {
			h = fmt.Sprintf("labeled registry counter %s", name)
		}
		bw.printf("# HELP %s %s\n# TYPE %s counter\n", metric, h, metric)
		label := sanitizeMetricName(fam.Label)
		for _, lv := range sortedKeys(fam.Values) {
			bw.printf("%s{%s=%q} %d\n", metric, label, lv, fam.Values[lv])
		}
	}
	for _, name := range sortedKeys(hists) {
		writeHistogramFamily(bw, namespace, name, hists[name])
	}
	if len(phases) > 0 {
		bw.printf("# HELP %s_phase_duration_ticks closed phase-timer spans, clock units\n# TYPE %s_phase_duration_ticks gauge\n",
			namespace, namespace)
		for _, p := range phases {
			if p.End < 0 {
				continue // still open; duration unknown
			}
			bw.printf("%s_phase_duration_ticks{phase=%q} %d\n", namespace, p.Name, p.Dur)
		}
	}
	return bw.err
}

// writeHistogramFamily renders one histogram family: cumulative `le` bucket
// series per label value, then `_sum` and `_count`. Unlabeled families emit
// bare series; labeled ones carry their label pair on every sample.
func writeHistogramFamily(bw *errWriter, namespace, name string, fam HistogramSnapshot) {
	metric := namespace + "_" + sanitizeMetricName(name)
	h := fam.Help
	if h == "" {
		h = fmt.Sprintf("registry histogram %s", name)
	}
	bw.printf("# HELP %s %s\n# TYPE %s histogram\n", metric, h, metric)
	label := sanitizeMetricName(fam.Label)
	for _, lv := range sortedKeys(fam.Series) {
		s := fam.Series[lv]
		pair := ""
		if fam.Label != "" {
			pair = fmt.Sprintf("%s=%q,", label, lv)
		}
		var cum int64
		for i, b := range s.Buckets {
			cum += b
			le := "+Inf"
			if i < len(fam.Bounds) {
				le = fmt.Sprintf("%d", fam.Bounds[i])
			}
			bw.printf("%s_bucket{%sle=%q} %d\n", metric, pair, le, cum)
		}
		suffix := strings.TrimSuffix(pair, ",")
		if suffix != "" {
			suffix = "{" + suffix + "}"
		}
		bw.printf("%s_sum%s %d\n", metric, suffix, s.Sum)
		bw.printf("%s_count%s %d\n", metric, suffix, s.Count)
	}
}

// sanitizeMetricName maps a registry counter name onto the Prometheus metric
// name charset: [a-zA-Z0-9_], everything else replaced by '_'.
func sanitizeMetricName(name string) string {
	var sb strings.Builder
	sb.Grow(len(name))
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}
