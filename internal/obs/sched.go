package obs

import "repro/internal/sched"

// Scheduler counter names registered by SchedHooks. The cross-shard count is
// the locality figure of merit for the sharded substrate: shard-local seeding
// exists to drive it down, and bench-storage records it per backend.
const (
	SchedSteals           = "sched.steals"
	SchedTasksStolen      = "sched.tasks_stolen"
	SchedStealsLocal      = "sched.steals_local"
	SchedStealsCrossShard = "sched.steals_cross_shard"
)

// SchedHooks returns scheduler hooks that accumulate steal traffic into r:
// total steals and tasks moved for every run, plus the locality split
// (steals_local / steals_cross_shard) when the run is sharded. Steal counts
// are schedule-dependent — they belong on live surfaces (serve mode's
// /metrics) and locality A/B artifacts, never in golden-tested documents.
// Combine with other observers via sched.MergeHooks.
func SchedHooks(r *Registry) sched.Hooks {
	if r == nil {
		return sched.Hooks{}
	}
	return sched.Hooks{
		OnSteal: func(thief, victim, ntasks int) {
			r.Add(SchedSteals, 1)
			r.Add(SchedTasksStolen, int64(ntasks))
		},
		OnStealTier: func(thief, victim, ntasks, tier int) {
			if tier == sched.StealCross {
				r.Add(SchedStealsCrossShard, 1)
			} else {
				r.Add(SchedStealsLocal, 1)
			}
		},
	}
}
