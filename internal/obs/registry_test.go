package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestCountersAddSetGet(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("a.x", 3)
	r.Add("a.x", 4)
	r.Set("a.y", 9)
	r.Set("a.y", 2)
	if got := r.Get("a.x"); got != 7 {
		t.Errorf("Get(a.x) = %d, want 7", got)
	}
	if got := r.Get("a.y"); got != 2 {
		t.Errorf("Get(a.y) = %d, want 2", got)
	}
	if got := r.Get("absent"); got != 0 {
		t.Errorf("Get(absent) = %d, want 0", got)
	}
	if names := r.Names(); len(names) != 2 || names[0] != "a.x" || names[1] != "a.y" {
		t.Errorf("Names() = %v, want [a.x a.y]", names)
	}
}

func TestSnakeCase(t *testing.T) {
	cases := map[string]string{
		"Tasks":                        "tasks",
		"SetOpIterations":              "set_op_iterations",
		"LeafCountsSkippedMaterialize": "leaf_counts_skipped_materialize",
		"SIUIters":                     "siu_iters",
		"SDUIters":                     "sdu_iters",
		"DRAMAccesses":                 "dram_accesses",
		"NoCRequests":                  "no_c_requests",
		"L1Hits":                       "l1_hits",
		"L2Misses":                     "l2_misses",
		"CMap":                         "c_map",
		"X":                            "x",
		"":                             "",
	}
	for in, want := range cases {
		if got := SnakeCase(in); got != want {
			t.Errorf("SnakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

type innerStats struct {
	Lookups int64
	Hits    int64
}

type fakeStats struct {
	Tasks      int64
	SIUIters   int64
	Seconds    float64 // must be skipped: wall-clock measurement
	Name       string  // must be skipped: not a metric
	Flag       bool
	Inner      innerStats
	unexported int64 // must be skipped
}

func TestAddStatsReflection(t *testing.T) {
	r := NewRegistry(nil)
	s := fakeStats{Tasks: 5, SIUIters: 7, Seconds: 1.25, Flag: true,
		Inner: innerStats{Lookups: 11, Hits: 3}, unexported: 99}
	AddStats(r, "fake", &s)
	AddStats(r, "fake", s) // value and pointer forms both work; accumulates
	want := map[string]int64{
		"fake.tasks":         10,
		"fake.siu_iters":     14,
		"fake.flag":          2,
		"fake.inner.lookups": 22,
		"fake.inner.hits":    6,
	}
	names := r.Names()
	if len(names) != len(want) {
		t.Fatalf("registered %v, want exactly %d counters", names, len(want))
	}
	for name, v := range want {
		if got := r.Get(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

func TestStatsMetricNames(t *testing.T) {
	got := StatsMetricNames("p", fakeStats{})
	want := []string{"p.flag", "p.inner.hits", "p.inner.lookups", "p.siu_iters", "p.tasks"}
	if len(got) != len(want) {
		t.Fatalf("names = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("names = %v, want %v", got, want)
		}
	}
}

func TestAddStatsNilPointerAndNonStruct(t *testing.T) {
	r := NewRegistry(nil)
	AddStats(r, "nil", (*fakeStats)(nil)) // no-op, no panic
	if n := r.Names(); len(n) != 0 {
		t.Errorf("nil pointer registered %v", n)
	}
	defer func() {
		if recover() == nil {
			t.Error("non-struct input did not panic")
		}
	}()
	AddStats(r, "bad", 42)
}

func TestPhasesVirtualClockDeterminism(t *testing.T) {
	mk := func() []byte {
		r := NewRegistry(NewVirtualClock())
		end := r.StartPhase("plan")
		r.Add("x", 1)
		end()
		end() // double close keeps the first interval
		endMine := r.StartPhase("mine")
		endMine()
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := mk(), mk()
	if !bytes.Equal(a, b) {
		t.Fatalf("virtual-clock exports differ:\n%s\nvs\n%s", a, b)
	}
	var doc struct {
		Schema   string           `json:"schema"`
		Counters map[string]int64 `json:"counters"`
		Phases   []Phase          `json:"phases"`
	}
	if err := json.Unmarshal(a, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != MetricsSchema {
		t.Errorf("schema = %q, want %q", doc.Schema, MetricsSchema)
	}
	if len(doc.Phases) != 2 || doc.Phases[0].Name != "plan" || doc.Phases[1].Name != "mine" {
		t.Fatalf("phases = %+v", doc.Phases)
	}
	p := doc.Phases[0]
	if p.Start != 1 || p.End != 2 || p.Dur != 1 {
		t.Errorf("plan phase = %+v, want start=1 end=2 dur=1", p)
	}
}

func TestPhasesOpenReported(t *testing.T) {
	r := NewRegistry(nil)
	_ = r.StartPhase("never-closed")
	ph := r.Phases()
	if len(ph) != 1 || ph[0].End != -1 {
		t.Fatalf("open phase = %+v, want End=-1", ph)
	}
}

func TestWriteJSONSortedAndStable(t *testing.T) {
	r := NewRegistry(NewVirtualClock())
	r.Add("z.last", 1)
	r.Add("a.first", 2)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasSuffix(out, "\n") {
		t.Error("export missing trailing newline")
	}
	if strings.Index(out, "a.first") > strings.Index(out, "z.last") {
		t.Errorf("counters not sorted:\n%s", out)
	}
}

func TestWallClockMonotonic(t *testing.T) {
	c := NewWallClock()
	a := c.Now()
	b := c.Now()
	if a < 0 || b < a {
		t.Errorf("wall clock not monotonic: %d then %d", a, b)
	}
}
