package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// EventLog is the structured log of the serving path: one record per job
// lifecycle transition, ring-buffered like the Tracer so an unbounded run
// cannot exhaust memory, nil-inert so instrumentation sites cost one pointer
// test when logging is off. The export (WriteNDJSON) is one compact JSON
// object per line — LogRecord's fields are a fixed struct plus one
// sorted-key map, so two runs fed the same record sequence flush
// byte-identical NDJSON (the golden-test contract the rest of the
// observability layer already honors).

// DefaultEventLogCap is the ring capacity used when NewEventLog is given a
// non-positive one: ~16k transitions, several thousand jobs of history.
const DefaultEventLogCap = 1 << 14

// LogRecord is one structured log line. TS is in the producer's clock units
// (virtual ticks in tests, wall milliseconds in serve mode). Event names the
// transition (submitted/compiling/running/done/failed/cancelled), State the
// job state after it. Fields carries the numeric payload (queue_wait_ms,
// run_ms, batch_width, matches, …) and marshals with sorted keys.
type LogRecord struct {
	TS     int64            `json:"ts"`
	Event  string           `json:"event"`
	Job    string           `json:"job,omitempty"`
	Tenant string           `json:"tenant,omitempty"`
	Batch  string           `json:"batch,omitempty"`
	State  string           `json:"state,omitempty"`
	Error  string           `json:"error,omitempty"`
	Fields map[string]int64 `json:"fields,omitempty"`
}

// EventLog is a bounded ring buffer of LogRecords. All methods are safe for
// concurrent use and tolerate a nil receiver (the disabled log).
type EventLog struct {
	mu      sync.Mutex
	buf     []LogRecord
	cap     int
	head    int   // index of the oldest record once the ring wrapped
	wrapped bool  // ring has overwritten at least once
	dropped int64 // records overwritten
}

// NewEventLog builds an event log with the given ring capacity (<= 0 selects
// DefaultEventLogCap).
func NewEventLog(capacity int) *EventLog {
	if capacity <= 0 {
		capacity = DefaultEventLogCap
	}
	return &EventLog{cap: capacity}
}

// Enabled reports whether appends are recorded — the nil test producers use
// to skip record construction.
func (l *EventLog) Enabled() bool { return l != nil }

// Append records one log line, overwriting the oldest when the ring is full.
func (l *EventLog) Append(rec LogRecord) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if len(l.buf) < l.cap {
		l.buf = append(l.buf, rec)
		return
	}
	l.buf[l.head] = rec
	l.head = (l.head + 1) % l.cap
	l.wrapped = true
	l.dropped++
}

// Records returns the retained records in append order.
func (l *EventLog) Records() []LogRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]LogRecord, 0, len(l.buf))
	if l.wrapped {
		out = append(out, l.buf[l.head:]...)
		out = append(out, l.buf[:l.head]...)
	} else {
		out = append(out, l.buf...)
	}
	return out
}

// Tail returns the newest n retained records in append order (all of them
// when fewer are retained) — the /debug/jobs live view.
func (l *EventLog) Tail(n int) []LogRecord {
	recs := l.Records()
	if n >= 0 && len(recs) > n {
		recs = recs[len(recs)-n:]
	}
	return recs
}

// Len returns the number of retained records.
func (l *EventLog) Len() int {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buf)
}

// Dropped returns how many records the ring overwrote.
func (l *EventLog) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// WriteNDJSON flushes the retained records as newline-delimited JSON, one
// compact object per line. Deterministic for a deterministic append sequence.
func (l *EventLog) WriteNDJSON(w io.Writer) error {
	for _, rec := range l.Records() {
		buf, err := json.Marshal(rec)
		if err != nil {
			return err
		}
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}
