package obs

import (
	"testing"

	"repro/internal/sched"
)

func TestSchedHooksCounters(t *testing.T) {
	r := NewRegistry(nil)
	h := SchedHooks(r)
	h.OnSteal(1, 0, 3)
	h.OnSteal(2, 0, 2)
	h.OnStealTier(1, 0, 3, sched.StealLocal)
	h.OnStealTier(2, 0, 2, sched.StealCross)
	h.OnStealTier(3, 0, 1, sched.StealCross)
	want := map[string]int64{
		SchedSteals:           2,
		SchedTasksStolen:      5,
		SchedStealsLocal:      1,
		SchedStealsCrossShard: 2,
	}
	for name, v := range want {
		if got := r.Get(name); got != v {
			t.Errorf("%s = %d, want %d", name, got, v)
		}
	}
}

func TestSchedHooksNilRegistry(t *testing.T) {
	h := SchedHooks(nil)
	if h.OnSteal != nil || h.OnStealTier != nil || h.OnTask != nil {
		t.Fatal("SchedHooks(nil) must be the zero Hooks")
	}
}
