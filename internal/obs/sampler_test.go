package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestSamplerWindows(t *testing.T) {
	s := NewSampler(10)
	if !s.Enabled() || s.Window() != 10 {
		t.Fatalf("Enabled=%v Window=%d", s.Enabled(), s.Window())
	}
	if s.Due(9) {
		t.Error("due before the first boundary")
	}
	if s.NextBoundary() != 10 {
		t.Errorf("first boundary %d, want 10", s.NextBoundary())
	}
	// Crossing several boundaries at once: the driver records one sample per
	// boundary, each stamped at the boundary, not at the driver's clock.
	for s.Due(35) {
		s.Record(map[string]int64{"x": 1})
	}
	got := s.Samples()
	if len(got) != 3 || got[0].T != 10 || got[1].T != 20 || got[2].T != 30 {
		t.Fatalf("samples %+v, want T=10,20,30", got)
	}
	s.RecordFinal(37, map[string]int64{"x": 2})
	if got := s.Samples(); len(got) != 4 || got[3].T != 37 {
		t.Fatalf("final sample %+v, want T=37", got)
	}
	// A final at or before the last recorded sample is dropped, so a run
	// ending exactly on a boundary doesn't emit a duplicate.
	s.RecordFinal(37, map[string]int64{"x": 3})
	if got := s.Samples(); len(got) != 4 {
		t.Fatalf("duplicate terminal sample recorded: %+v", got)
	}
}

func TestSamplerClampsWindow(t *testing.T) {
	if w := NewSampler(0).Window(); w != 1 {
		t.Errorf("window 0 clamped to %d, want 1", w)
	}
	if w := NewSampler(-5).Window(); w != 1 {
		t.Errorf("window -5 clamped to %d, want 1", w)
	}
}

func TestSamplerNilIsInert(t *testing.T) {
	var s *Sampler
	if s.Enabled() || s.Due(100) || s.Window() != 0 || s.NextBoundary() != 0 {
		t.Error("nil sampler not inert")
	}
	s.Record(map[string]int64{"x": 1})
	s.RecordFinal(5, nil)
	if s.Samples() != nil {
		t.Error("nil sampler recorded samples")
	}
}

func TestSamplerJSONRoundTrip(t *testing.T) {
	s := NewSampler(100)
	s.Record(map[string]int64{"b": 2, "a": 1})
	s.RecordFinal(150, map[string]int64{"b": 4, "a": 3})
	var buf1, buf2 bytes.Buffer
	if err := s.WriteJSON(&buf1); err != nil {
		t.Fatal(err)
	}
	if err := s.WriteJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf1.Bytes(), buf2.Bytes()) {
		t.Error("two exports of the same sampler differ")
	}
	ts, err := ReadTimeseriesJSON(&buf1)
	if err != nil {
		t.Fatal(err)
	}
	if ts.Schema != TimeseriesSchema || ts.Window != 100 || len(ts.Samples) != 2 {
		t.Errorf("round trip lost data: %+v", ts)
	}
	if ts.Samples[1].T != 150 || ts.Samples[1].Values["a"] != 3 {
		t.Errorf("round trip sample: %+v", ts.Samples[1])
	}
}

func TestSamplerEmptyJSON(t *testing.T) {
	var buf bytes.Buffer
	if err := NewSampler(8).WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"samples": []`) {
		t.Errorf("empty sampler should export an empty array, not null:\n%s", buf.String())
	}
}

func TestReadTimeseriesJSONRejectsSchema(t *testing.T) {
	if _, err := ReadTimeseriesJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := ReadTimeseriesJSON(strings.NewReader(`not json`)); err == nil {
		t.Error("malformed document accepted")
	}
}

func TestSnapshotRegistry(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("a", 1)
	r.Add("b", 2)
	snap := SnapshotRegistry(r)
	r.Add("a", 10) // the snapshot must be a copy, not a live view
	if snap["a"] != 1 || snap["b"] != 2 || len(snap) != 2 {
		t.Errorf("snapshot %v, want a=1 b=2", snap)
	}
}
