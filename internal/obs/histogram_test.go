package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBounds(t *testing.T) {
	b := HistogramBounds()
	if len(b) != histNumBounds {
		t.Fatalf("len(bounds) = %d, want %d", len(b), histNumBounds)
	}
	if b[0] != 1 || b[len(b)-1] != 1<<histMaxLog2 {
		t.Errorf("bounds span [%d, %d], want [1, %d]", b[0], b[len(b)-1], 1<<histMaxLog2)
	}
	for i := 1; i < len(b); i++ {
		if b[i] != 2*b[i-1] {
			t.Errorf("bounds not log2-spaced at %d: %d after %d", i, b[i], b[i-1])
		}
	}
}

func TestBucketFor(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 2}, {4, 2}, {5, 3},
		{1024, 10}, {1025, 11},
		{1 << 20, histNumBounds - 1},
		{1<<20 + 1, histNumBounds}, // +Inf
		{1 << 40, histNumBounds},
	}
	for _, c := range cases {
		if got := bucketFor(c.v); got != c.want {
			t.Errorf("bucketFor(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry(nil)
	h := r.Histogram("lat", "latency")
	h.Observe(1)
	h.Observe(7)
	h.Observe(1 << 30) // +Inf bucket
	if h.Count() != 3 {
		t.Errorf("count = %d, want 3", h.Count())
	}
	snap := h.Snapshot()
	s := snap.Series[""]
	if s.Sum != 8+1<<30 || s.Count != 3 {
		t.Errorf("sum/count = %d/%d", s.Sum, s.Count)
	}
	if s.Buckets[0] != 1 || s.Buckets[3] != 1 || s.Buckets[histNumBounds] != 1 {
		t.Errorf("bucket placement wrong: %v", s.Buckets)
	}
	// Same name returns the same instance; a different kind under the same
	// name panics.
	if r.Histogram("lat", "ignored") != h {
		t.Error("get-or-create returned a second instance")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("cross-kind name reuse did not panic")
			}
		}()
		r.LabeledCounter("lat", "", "tenant", 0)
	}()
}

func TestLabeledCardinalityBound(t *testing.T) {
	r := NewRegistry(nil)
	lc := r.LabeledCounter("c", "", "tenant", 2)
	lc.Add("a", 1)
	lc.Add("b", 1)
	lc.Add("c", 1) // over the cap: folds into the overflow label
	lc.Add("d", 1)
	lc.Add("a", 1) // existing labels keep accumulating after the cap
	vals := lc.Values()
	if vals["a"] != 2 || vals["b"] != 1 || vals[OverflowLabel] != 2 {
		t.Errorf("values = %v", vals)
	}
	if _, ok := vals["c"]; ok {
		t.Error("over-cap label minted its own series")
	}
	if lc.Get("a") != 2 || lc.Get("zzz") != 0 {
		t.Errorf("Get: a=%d zzz=%d", lc.Get("a"), lc.Get("zzz"))
	}

	lh := r.LabeledHistogram("h", "", "tenant", 2)
	lh.Observe("a", 1)
	lh.Observe("b", 1)
	lh.Observe("c", 9) // over the cap
	lh.Observe("c", 9)
	if lh.Count("a") != 1 || lh.Count(OverflowLabel) != 2 || lh.Count("c") != 0 {
		t.Errorf("counts: a=%d other=%d c=%d", lh.Count("a"), lh.Count(OverflowLabel), lh.Count("c"))
	}
}

func TestHistogramNilInert(t *testing.T) {
	var h *Histogram
	var lh *LabeledHistogram
	var lc *LabeledCounter
	h.Observe(1)
	lh.Observe("a", 1)
	lc.Add("a", 1)
	if h.Count() != 0 || lh.Count("a") != 0 || lc.Get("a") != 0 || lc.Values() != nil {
		t.Error("nil receivers recorded state")
	}
	if len(h.Snapshot().Series) != 0 || len(lh.Snapshot().Series) != 0 {
		t.Error("nil snapshots non-empty")
	}
}

func TestHistogramJSONExportDeterministic(t *testing.T) {
	export := func() []byte {
		r := NewRegistry(NewVirtualClock())
		lh := r.LabeledHistogram("jobs.queue_wait_ms", "wait", "tenant", 4)
		lc := r.LabeledCounter("jobs.submitted", "submitted", "tenant", 4)
		for i, tenant := range []string{"b", "a", "c", "a", "b"} {
			lh.Observe(tenant, int64(i*7+1))
			lc.Add(tenant, 1)
		}
		r.Histogram("compile_ms", "").Observe(42)
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical instrumentation sequences exported different bytes")
	}
	for _, want := range []string{
		`"histograms"`, `"labeled_counters"`, `"jobs.queue_wait_ms"`,
		`"label": "tenant"`, `"bounds"`, `"compile_ms"`,
	} {
		if !strings.Contains(string(a), want) {
			t.Errorf("export missing %s:\n%s", want, a)
		}
	}
}

// The JSON document of a registry without histogram/labeled families must
// not change shape — every golden recorded before these families existed
// stays byte-valid (the reason the schema is still flexminer-metrics/v1).
func TestMetricsJSONOmitsEmptyFamilies(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("x", 1)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "histograms") || strings.Contains(out, "labeled_counters") {
		t.Errorf("empty families serialized:\n%s", out)
	}
}

func TestHistogramConcurrency(t *testing.T) {
	r := NewRegistry(nil)
	lh := r.LabeledHistogram("h", "", "tenant", 8)
	lc := r.LabeledCounter("c", "", "tenant", 8)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			tenant := string(rune('a' + w%4))
			for i := 0; i < 1000; i++ {
				lh.Observe(tenant, int64(i))
				lc.Add(tenant, 1)
			}
		}(w)
	}
	wg.Wait()
	var total int64
	for _, v := range lc.Values() {
		total += v
	}
	if total != 8000 {
		t.Errorf("labeled counter total = %d, want 8000", total)
	}
	var obsTotal int64
	for _, s := range lh.Snapshot().Series {
		obsTotal += s.Count
	}
	if obsTotal != 8000 {
		t.Errorf("histogram observation total = %d, want 8000", obsTotal)
	}
}
