package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	tr.Emit(CatSched, "steal", 0, 0)      // must not panic
	tr.EmitAt(CatSimPE, "task", 1, 10, 5) // must not panic
	if ev := tr.Events(); len(ev) != 0 {
		t.Errorf("nil tracer has events: %v", ev)
	}
	if tr.Dropped() != 0 {
		t.Error("nil tracer dropped != 0")
	}
}

func TestEmitAndEvents(t *testing.T) {
	tr := NewTracer(NewVirtualClock(), 8)
	tr.Emit(CatSched, "steal", 2, 0, Arg{Key: "victim", Val: 1}, Arg{Key: "tasks", Val: 4})
	tr.EmitAt(CatSimPE, "task", 0, 100, 40, Arg{Key: "v0", Val: 7})
	ev := tr.Events()
	if len(ev) != 2 {
		t.Fatalf("events = %d, want 2", len(ev))
	}
	if ev[0].Cat != CatSched || ev[0].Name != "steal" || ev[0].TID != 2 || ev[0].TS != 1 {
		t.Errorf("event[0] = %+v", ev[0])
	}
	if ev[1].TS != 100 || ev[1].Dur != 40 || ev[1].Args[0].Val != 7 {
		t.Errorf("event[1] = %+v", ev[1])
	}
	cats := tr.Categories()
	if len(cats) != 2 || cats[0] != CatSched || cats[1] != CatSimPE {
		t.Errorf("categories = %v", cats)
	}
}

func TestRingOverflowKeepsNewest(t *testing.T) {
	tr := NewTracer(NewVirtualClock(), 4)
	for i := 0; i < 10; i++ {
		tr.EmitAt(CatKernel, "op", 0, int64(i), 0)
	}
	ev := tr.Events()
	if len(ev) != 4 {
		t.Fatalf("retained %d, want 4", len(ev))
	}
	for i, e := range ev {
		if want := int64(6 + i); e.TS != want {
			t.Errorf("event[%d].TS = %d, want %d (oldest dropped first)", i, e.TS, want)
		}
	}
	if d := tr.Dropped(); d != 6 {
		t.Errorf("dropped = %d, want 6", d)
	}
}

func TestDefaultCapacityAndClock(t *testing.T) {
	tr := NewTracer(nil, 0)
	if tr.cap != DefaultTraceCap {
		t.Errorf("cap = %d, want %d", tr.cap, DefaultTraceCap)
	}
	tr.Emit(CatPhase, "load", 0, 0)
	if ev := tr.Events(); len(ev) != 1 || ev[0].TS != 1 {
		t.Errorf("default clock not virtual: %+v", ev)
	}
}

func TestWriteChromeJSON(t *testing.T) {
	tr := NewTracer(NewVirtualClock(), 16)
	tr.EmitAt(CatSimPE, "task", 3, 10, 25, Arg{Key: "v0", Val: 42})
	tr.Emit(CatSched, "steal", 1, 0)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string           `json:"name"`
			Cat  string           `json:"cat"`
			Ph   string           `json:"ph"`
			TS   int64            `json:"ts"`
			Dur  int64            `json:"dur"`
			TID  int              `json:"tid"`
			S    string           `json:"s"`
			Args map[string]int64 `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("traceEvents = %d, want 2", len(doc.TraceEvents))
	}
	span := doc.TraceEvents[0]
	if span.Ph != "X" || span.Dur != 25 || span.TS != 10 || span.Args["v0"] != 42 {
		t.Errorf("span event = %+v", span)
	}
	inst := doc.TraceEvents[1]
	if inst.Ph != "i" || inst.S != "t" {
		t.Errorf("instant event = %+v", inst)
	}
	// Byte determinism for an identical emission sequence.
	tr2 := NewTracer(NewVirtualClock(), 16)
	tr2.EmitAt(CatSimPE, "task", 3, 10, 25, Arg{Key: "v0", Val: 42})
	tr2.Emit(CatSched, "steal", 1, 0)
	var buf2 bytes.Buffer
	if err := tr2.WriteChromeJSON(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("identical emission sequences exported different bytes")
	}
}

func TestWriteSummary(t *testing.T) {
	tr := NewTracer(NewVirtualClock(), 4)
	for i := 0; i < 6; i++ {
		tr.EmitAt(CatKernel, "siu", 0, int64(i), 3)
	}
	tr.EmitAt(CatSched, "dispatch", 0, 99, 0)
	var buf bytes.Buffer
	if err := tr.WriteSummary(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"4 events retained", "3 dropped", "kernel", "siu", "dispatch"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func BenchmarkTraceOverheadDisabled(b *testing.B) {
	var tr *Tracer
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(CatKernel, "op", 0, 0, Arg{Key: "iters", Val: int64(i)})
		}
	}
}

func BenchmarkTraceOverheadEnabled(b *testing.B) {
	tr := NewTracer(NewVirtualClock(), 1<<10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if tr.Enabled() {
			tr.Emit(CatKernel, "op", 0, 0, Arg{Key: "iters", Val: int64(i)})
		}
	}
}
