package obs

// Latency-distribution primitives for the serving path: a deterministic
// log2-bucketed Histogram, and label-keyed counter/histogram families with
// bounded cardinality (per-tenant metrics, DESIGN.md decision 17). Like
// everything else in the registry, they are designed to be golden-tested:
// bucket layout is fixed at compile time, all state is int64, and exports
// emit series and labels in sorted order, so two runs fed the same
// observation sequence produce byte-identical artifacts.
//
// Cardinality is bounded by construction: a labeled family accepts at most
// its configured number of distinct label values; observations for any label
// beyond that are folded into the OverflowLabel series. A tenant name is
// client-controlled input, so without the bound a hostile client could mint
// one Prometheus series per request and run the exposition (and the
// registry) out of memory.

import (
	"fmt"
	"sort"
	"sync"
)

// Histogram bucket layout: finite upper bounds 2^0 .. 2^histMaxLog2 in the
// observed unit (milliseconds on the serving path), plus an implicit +Inf
// bucket. 1 ms .. ~17 min of finite resolution covers every latency a job
// can plausibly have; anything slower lands in +Inf and still counts toward
// sum/count.
const (
	histMaxLog2    = 20
	histNumBounds  = histMaxLog2 + 1 // finite bounds: 1, 2, 4, …, 2^20
	histNumBuckets = histNumBounds + 1
)

// OverflowLabel is the series that absorbs observations for label values
// beyond a labeled family's cardinality bound.
const OverflowLabel = "other"

// DefaultLabelCap is the distinct-label bound applied when a labeled family
// is created with a non-positive cap.
const DefaultLabelCap = 32

// HistogramBounds returns the finite bucket upper bounds (ascending); the
// last bucket of every series is the implicit +Inf bucket.
func HistogramBounds() []int64 {
	out := make([]int64, histNumBounds)
	for i := range out {
		out[i] = int64(1) << i
	}
	return out
}

// histSeries is one (label value → distribution) cell. Buckets are
// NON-cumulative per-bucket counts; the Prometheus exposition accumulates
// them into the cumulative `le` form on render.
type histSeries struct {
	buckets [histNumBuckets]int64
	sum     int64
	count   int64
}

func (s *histSeries) observe(v int64) {
	s.buckets[bucketFor(v)]++
	s.sum += v
	s.count++
}

// bucketFor returns the index of the first bucket whose upper bound is >= v;
// values past the last finite bound land in the +Inf bucket.
func bucketFor(v int64) int {
	for i := 0; i < histNumBounds; i++ {
		if v <= int64(1)<<i {
			return i
		}
	}
	return histNumBounds // +Inf
}

// Histogram is a single-series latency distribution. Observe is safe for
// concurrent use and a nil *Histogram ignores it — the disabled-histogram
// idiom matching the nil *Tracer.
type Histogram struct {
	name string
	help string
	mu   sync.Mutex
	s    histSeries
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.s.observe(v)
	h.mu.Unlock()
}

// Count returns the number of recorded observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.s.count
}

// LabeledHistogram is a histogram family keyed by one label (tenant on the
// serving path), bounded to maxCard distinct label values with an
// OverflowLabel spill series. A nil *LabeledHistogram ignores Observe.
type LabeledHistogram struct {
	name    string
	help    string
	label   string
	maxCard int
	mu      sync.Mutex
	series  map[string]*histSeries
}

// Observe records one value for the given label value, folding values beyond
// the cardinality bound into OverflowLabel.
func (h *LabeledHistogram) Observe(labelValue string, v int64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.seriesFor(labelValue).observe(v)
	h.mu.Unlock()
}

func (h *LabeledHistogram) seriesFor(labelValue string) *histSeries {
	s := h.series[labelValue]
	if s == nil {
		if labelValue != OverflowLabel && len(h.series) >= h.maxCard {
			labelValue = OverflowLabel
			if s = h.series[labelValue]; s != nil {
				return s
			}
		}
		s = &histSeries{}
		h.series[labelValue] = s
	}
	return s
}

// Count returns the observation count for one label value (zero when the
// series does not exist).
func (h *LabeledHistogram) Count(labelValue string) int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if s := h.series[labelValue]; s != nil {
		return s.count
	}
	return 0
}

// LabeledCounter is a counter family keyed by one label, with the same
// bounded-cardinality contract as LabeledHistogram. A nil *LabeledCounter
// ignores Add.
type LabeledCounter struct {
	name    string
	help    string
	label   string
	maxCard int
	mu      sync.Mutex
	vals    map[string]int64
}

// Add accumulates delta for the given label value, folding values beyond the
// cardinality bound into OverflowLabel.
func (c *LabeledCounter) Add(labelValue string, delta int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	if _, ok := c.vals[labelValue]; !ok && labelValue != OverflowLabel && len(c.vals) >= c.maxCard {
		labelValue = OverflowLabel
	}
	c.vals[labelValue] += delta
	c.mu.Unlock()
}

// Get returns the value for one label (zero when absent).
func (c *LabeledCounter) Get(labelValue string) int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.vals[labelValue]
}

// Values returns a copy of every (label value → count) pair.
func (c *LabeledCounter) Values() map[string]int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]int64, len(c.vals))
	for k, v := range c.vals {
		out[k] = v
	}
	return out
}

// HistogramSeries is the exported form of one series: non-cumulative
// per-bucket counts (len(Bounds)+1, the last being +Inf), total sum and
// observation count.
type HistogramSeries struct {
	Buckets []int64 `json:"buckets"`
	Sum     int64   `json:"sum"`
	Count   int64   `json:"count"`
}

// HistogramSnapshot is the exported form of a histogram family. Label is the
// label key ("" for a single-series histogram); Series is keyed by label
// value ("" for the single series).
type HistogramSnapshot struct {
	Help   string                     `json:"help,omitempty"`
	Label  string                     `json:"label,omitempty"`
	Bounds []int64                    `json:"bounds"`
	Series map[string]HistogramSeries `json:"series"`
}

// LabeledCounterSnapshot is the exported form of a labeled counter family.
type LabeledCounterSnapshot struct {
	Help   string           `json:"help,omitempty"`
	Label  string           `json:"label"`
	Values map[string]int64 `json:"values"`
}

func exportSeries(s *histSeries) HistogramSeries {
	return HistogramSeries{
		Buckets: append([]int64(nil), s.buckets[:]...),
		Sum:     s.sum,
		Count:   s.count,
	}
}

func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HistogramSnapshot{
		Help:   h.help,
		Bounds: HistogramBounds(),
		Series: map[string]HistogramSeries{"": exportSeries(&h.s)},
	}
}

// Snapshot exports the histogram's current state; a nil receiver exports an
// empty single-series snapshot.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{Bounds: HistogramBounds(), Series: map[string]HistogramSeries{}}
	}
	return h.snapshot()
}

// Snapshot exports the family's current state; a nil receiver exports an
// empty family.
func (h *LabeledHistogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{Bounds: HistogramBounds(), Series: map[string]HistogramSeries{}}
	}
	return h.snapshot()
}

func (h *LabeledHistogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := HistogramSnapshot{
		Help:   h.help,
		Label:  h.label,
		Bounds: HistogramBounds(),
		Series: make(map[string]HistogramSeries, len(h.series)),
	}
	for label, s := range h.series {
		out.Series[label] = exportSeries(s)
	}
	return out
}

func (c *LabeledCounter) snapshot() LabeledCounterSnapshot {
	return LabeledCounterSnapshot{Help: c.help, Label: c.label, Values: c.Values()}
}

// Registry-side construction. Families are get-or-create by name so every
// layer observing the same metric shares one instance; a name may hold only
// one metric kind (the decision-12 one-registry rule applied to families).

// Histogram returns the single-series histogram registered under name,
// creating it with the given help text on first use.
func (r *Registry) Histogram(name, help string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKindLocked(name, kindHist)
	h := r.hists[name]
	if h == nil {
		h = &Histogram{name: name, help: help}
		r.hists[name] = h
	}
	return h
}

// LabeledHistogram returns the histogram family registered under name, keyed
// by the given label, creating it on first use. maxCard bounds the distinct
// label values (<= 0 selects DefaultLabelCap); later observations for new
// labels fold into OverflowLabel.
func (r *Registry) LabeledHistogram(name, help, label string, maxCard int) *LabeledHistogram {
	if maxCard <= 0 {
		maxCard = DefaultLabelCap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKindLocked(name, kindLabeledHist)
	h := r.lhists[name]
	if h == nil {
		h = &LabeledHistogram{name: name, help: help, label: label, maxCard: maxCard, series: map[string]*histSeries{}}
		r.lhists[name] = h
	}
	return h
}

// LabeledCounter returns the counter family registered under name, keyed by
// the given label, creating it on first use with the same cardinality
// contract as LabeledHistogram.
func (r *Registry) LabeledCounter(name, help, label string, maxCard int) *LabeledCounter {
	if maxCard <= 0 {
		maxCard = DefaultLabelCap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.checkKindLocked(name, kindLabeledCounter)
	c := r.lcounters[name]
	if c == nil {
		c = &LabeledCounter{name: name, help: help, label: label, maxCard: maxCard, vals: map[string]int64{}}
		r.lcounters[name] = c
	}
	return c
}

type metricKind int

const (
	kindHist metricKind = iota
	kindLabeledHist
	kindLabeledCounter
)

// checkKindLocked panics when name is already registered as a different
// metric kind — a programming error that would otherwise surface as two
// Prometheus families with one name.
func (r *Registry) checkKindLocked(name string, want metricKind) {
	if _, ok := r.hists[name]; ok && want != kindHist {
		panic(fmt.Sprintf("obs: metric %q already registered as a histogram", name))
	}
	if _, ok := r.lhists[name]; ok && want != kindLabeledHist {
		panic(fmt.Sprintf("obs: metric %q already registered as a labeled histogram", name))
	}
	if _, ok := r.lcounters[name]; ok && want != kindLabeledCounter {
		panic(fmt.Sprintf("obs: metric %q already registered as a labeled counter", name))
	}
}

// HistogramNames returns every registered histogram family name (single and
// labeled), sorted — the enumeration the drift tests pin.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists)+len(r.lhists))
	for name := range r.hists {
		out = append(out, name)
	}
	for name := range r.lhists {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// LabeledCounterNames returns every registered labeled-counter family name,
// sorted.
func (r *Registry) LabeledCounterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.lcounters))
	for name := range r.lcounters {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// histogramSnapshots collects every histogram family (single-series and
// labeled, merged under their registry names) for export.
func (r *Registry) histogramSnapshots() map[string]HistogramSnapshot {
	r.mu.Lock()
	hs := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hs = append(hs, h)
	}
	lhs := make([]*LabeledHistogram, 0, len(r.lhists))
	for _, h := range r.lhists {
		lhs = append(lhs, h)
	}
	r.mu.Unlock()
	if len(hs)+len(lhs) == 0 {
		return nil
	}
	out := make(map[string]HistogramSnapshot, len(hs)+len(lhs))
	for _, h := range hs {
		out[h.name] = h.snapshot()
	}
	for _, h := range lhs {
		out[h.name] = h.snapshot()
	}
	return out
}

// labeledCounterSnapshots collects every labeled-counter family for export.
func (r *Registry) labeledCounterSnapshots() map[string]LabeledCounterSnapshot {
	r.mu.Lock()
	cs := make([]*LabeledCounter, 0, len(r.lcounters))
	for _, c := range r.lcounters {
		cs = append(cs, c)
	}
	r.mu.Unlock()
	if len(cs) == 0 {
		return nil
	}
	out := make(map[string]LabeledCounterSnapshot, len(cs))
	for _, c := range cs {
		out[c.name] = c.snapshot()
	}
	return out
}
