package obs_test

// Registry-side field-enumeration drift test: pins the exact counter names
// AddStats derives from every Stats struct the CLIs export. Adding a field
// to core.Stats, sim.Stats, cmap.Stats, or bench.Table2Row fails this test
// until the expectation here — and the golden metrics artifacts — are
// updated, so no field can land without an explicit registration decision.
// (The statsum lint guarantees Add/Merge coverage; this guarantees export
// coverage.)

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/bench"
	"repro/internal/cmap"
	"repro/internal/core"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/sim"
)

var cmapMetricNames = []string{
	"hits", "inserts", "lookups", "overflows", "probes", "removes",
}

var coreStatsMetricNames = []string{
	"aux_built", "aux_bytes_peak", "aux_reused", "aux_skipped_cost_model",
	"bitmap_probes",
	"c_map.hits", "c_map.inserts", "c_map.lookups",
	"c_map.overflows", "c_map.probes", "c_map.removes",
	"candidates",
	"extensions",
	"frontier_reuses",
	"gallop_probes",
	"leaf_counts_skipped_materialize",
	"set_op_iterations",
	"tasks",
}

var simStatsMetricNames = []string{
	// The cycle-accounting buckets (PR5). Per-channel slices and derived
	// utilization floats live in Stats too but are deliberately absent here:
	// AddStats exports only scalar ints, and the slices reach artifacts
	// through the timeseries sampler instead.
	"breakdown.c_map_probe", "breakdown.compute", "breakdown.dispatch_wait",
	"breakdown.dram_stall", "breakdown.idle", "breakdown.l1_stall",
	"breakdown.l2_stall",
	"busy_cycles",
	"c_map.hits", "c_map.inserts", "c_map.lookups",
	"c_map.overflows", "c_map.probes", "c_map.removes",
	"cycles",
	"dram_accesses",
	"dram_busy_cycles",
	"extensions",
	"l1_hits", "l1_misses",
	"l2_busy_cycles",
	"l2_hits", "l2_misses",
	"no_c_requests",
	"sdu_iters",
	"siu_iters",
	"stall_cycles",
	"tasks",
}

func prefixed(prefix string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		out[i] = prefix + "." + n
	}
	return out
}

func TestRegisteredMetricEnumeration(t *testing.T) {
	cases := []struct {
		label string
		stats any
		want  []string
	}{
		{"cmap.Stats", cmap.Stats{}, prefixed("p", cmapMetricNames)},
		{"core.Stats", core.Stats{}, prefixed("p", coreStatsMetricNames)},
		{"sim.Stats", sim.Stats{}, prefixed("p", simStatsMetricNames)},
		{"bench.Table2Row", bench.Table2Row{}, func() []string {
			// The row embeds both baselines' engine stats plus its own
			// schedule-invariant scalars; wall-clock seconds and the
			// App/Dataset labels must NOT appear.
			var names []string
			names = append(names, prefixed("p.auto_mine_stats", coreStatsMetricNames)...)
			names = append(names, "p.count")
			names = append(names, prefixed("p.graph_zero_stats", coreStatsMetricNames)...)
			names = append(names, "p.search_aware", "p.search_oblivious")
			return names
		}()},
	}
	for _, c := range cases {
		got := obs.StatsMetricNames("p", c.stats)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("%s metric enumeration drifted:\n got %v\nwant %v\n"+
				"a Stats field was added/renamed without updating this registration contract (and the golden metrics artifacts)",
				c.label, got, c.want)
		}
	}
}

// TestJobsMetricFamilyEnumeration pins the metric families the job service
// registers eagerly at construction: the plain jobs.* counters, the
// tenant-labeled counters, and the tenant-labeled latency histograms.
// Adding a family to internal/jobs fails here until the expectation — and
// the jobs observability goldens — are updated.
func TestJobsMetricFamilyEnumeration(t *testing.T) {
	reg := obs.NewRegistry(obs.NewVirtualClock())
	s := jobs.New(jobs.Config{Registry: reg, Clock: obs.NewVirtualClock()})
	defer s.Close(context.Background()) //nolint:errcheck // empty server; nothing to drain

	wantCounters := []string{
		"jobs.batch_width", "jobs.batched", "jobs.cancelled", "jobs.completed",
		"jobs.failed", "jobs.queued", "jobs.rejected_queue_full",
	}
	if got := reg.Names(); !reflect.DeepEqual(got, wantCounters) {
		t.Errorf("plain jobs counters drifted:\n got %v\nwant %v", got, wantCounters)
	}
	wantLabeled := []string{"jobs.finished", "jobs.submitted"}
	if got := reg.LabeledCounterNames(); !reflect.DeepEqual(got, wantLabeled) {
		t.Errorf("labeled counter families drifted:\n got %v\nwant %v", got, wantLabeled)
	}
	wantHists := []string{"jobs.queue_wait_ms", "jobs.run_ms"}
	if got := reg.HistogramNames(); !reflect.DeepEqual(got, wantHists) {
		t.Errorf("histogram families drifted:\n got %v\nwant %v", got, wantHists)
	}
}
