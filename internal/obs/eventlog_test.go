package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestEventLogRingAndDropCounter(t *testing.T) {
	l := NewEventLog(3)
	for i := 1; i <= 5; i++ {
		l.Append(LogRecord{TS: int64(i), Event: "e"})
	}
	recs := l.Records()
	if len(recs) != 3 || recs[0].TS != 3 || recs[2].TS != 5 {
		t.Errorf("ring kept %v, want TS 3..5", recs)
	}
	if l.Dropped() != 2 || l.Len() != 3 {
		t.Errorf("dropped=%d len=%d, want 2/3", l.Dropped(), l.Len())
	}
	if tail := l.Tail(2); len(tail) != 2 || tail[0].TS != 4 {
		t.Errorf("tail = %v", tail)
	}
	if tail := l.Tail(99); len(tail) != 3 {
		t.Errorf("oversized tail = %v", tail)
	}
}

func TestEventLogNilInert(t *testing.T) {
	var l *EventLog
	if l.Enabled() {
		t.Error("nil log reports enabled")
	}
	l.Append(LogRecord{Event: "x"})
	if l.Records() != nil || l.Tail(5) != nil || l.Len() != 0 || l.Dropped() != 0 {
		t.Error("nil log recorded state")
	}
	var buf bytes.Buffer
	if err := l.WriteNDJSON(&buf); err != nil || buf.Len() != 0 {
		t.Errorf("nil log flushed %q, %v", buf.String(), err)
	}
}

func TestEventLogNDJSONDeterministic(t *testing.T) {
	flush := func() []byte {
		l := NewEventLog(0)
		l.Append(LogRecord{TS: 1, Event: "queued", Job: "job-1", Tenant: "alpha", State: "queued"})
		l.Append(LogRecord{TS: 2, Event: "running", Job: "job-1", Tenant: "alpha", Batch: "batch-1",
			State: "running", Fields: map[string]int64{"batch_width": 2, "a": 1}})
		l.Append(LogRecord{TS: 3, Event: "failed", Job: "job-1", Tenant: "alpha", Batch: "batch-1",
			State: "failed", Error: "boom", Fields: map[string]int64{"queue_wait_ms": 1}})
		var buf bytes.Buffer
		if err := l.WriteNDJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := flush(), flush()
	if !bytes.Equal(a, b) {
		t.Fatal("two identical append sequences flushed different bytes")
	}
	lines := strings.Split(strings.TrimSuffix(string(a), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("flushed %d lines, want 3", len(lines))
	}
	// One compact JSON object per line, fields map with sorted keys.
	if lines[1] != `{"ts":2,"event":"running","job":"job-1","tenant":"alpha","batch":"batch-1","state":"running","fields":{"a":1,"batch_width":2}}` {
		t.Errorf("line layout drifted: %s", lines[1])
	}
	if !strings.Contains(lines[2], `"error":"boom"`) {
		t.Errorf("terminal line missing error: %s", lines[2])
	}
}

func TestTracerFlowEvents(t *testing.T) {
	tr := NewTracer(NewVirtualClock(), 0)
	tr.EmitAt(CatJobs, "running", 3, 10, 5)
	tr.EmitFlowAt(CatJobs, "batched-into", 3, 10, 42, true)
	tr.EmitFlowAt(CatJobs, "batched-into", 1000001, 15, 42, false)

	events := tr.Events()
	if len(events) != 3 {
		t.Fatalf("retained %d events, want 3", len(events))
	}
	if events[1].Ph != "s" || events[2].Ph != "f" || events[1].BindID != 42 || events[2].BindID != 42 {
		t.Errorf("flow endpoints wrong: %+v %+v", events[1], events[2])
	}

	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`"ph": "X"`, `"ph": "s"`, `"ph": "f"`, `"id": 42`, `"bp": "e"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("chrome export missing %s in:\n%s", want, out)
		}
	}
	// The flow start must not carry bp (only the finish binds to the
	// enclosing slice end).
	if strings.Count(out, `"bp": "e"`) != 1 {
		t.Errorf("bp emitted on the wrong endpoints:\n%s", out)
	}

	// A nil tracer ignores flow emission like everything else.
	var nilT *Tracer
	nilT.EmitFlowAt(CatJobs, "x", 0, 0, 1, true)
	if nilT.Events() != nil {
		t.Error("nil tracer recorded a flow event")
	}
}

// Flow support must not change the serialization of pre-existing events —
// the sim trace goldens pin X/i events byte-for-byte.
func TestChromeJSONBackwardCompatible(t *testing.T) {
	tr := NewTracer(NewVirtualClock(), 0)
	tr.Emit(CatSched, "steal", 1, 0, Arg{Key: "from", Val: 2})
	tr.EmitAt(CatKernel, "op", 2, 100, 7)
	var buf bytes.Buffer
	if err := tr.WriteChromeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, `"id"`) || strings.Contains(out, `"bp"`) {
		t.Errorf("non-flow events grew flow fields:\n%s", out)
	}
	doc := struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}{}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("exported %d events, want 2", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0]["ph"] != "i" || doc.TraceEvents[1]["ph"] != "X" {
		t.Errorf("phase inference drifted: %v", doc.TraceEvents)
	}
}
