// Package obs is the observability spine of the system: a deterministic
// metrics registry, scoped phase timers, and a ring-buffered event trace with
// a Chrome trace_event exporter. Every execution layer — the CPU engine
// (internal/core), the work-stealing scheduler (internal/sched), the
// cycle-level accelerator model (internal/sim) and the evaluation harness
// (internal/bench) — reports through it, replacing ad-hoc printf-style stats
// plumbing with one exportable surface.
//
// Determinism is the design center (DESIGN.md decision 11): metrics and trace
// files are meant to be golden-tested and diffed across commits, so every
// artifact written through this package is reproducible byte-for-byte given a
// deterministic instrumentation sequence. Timestamps come from a Clock; the
// VirtualClock — a pure tick counter — is the default for file artifacts,
// while WallClock exists for interactive profiling. Counter values themselves
// are schedule-invariant by construction (they aggregate work totals, not
// timings), so a 20-thread run registers the same numbers as a 1-thread run.
//
// Everything is nil-tolerant: a nil *Tracer ignores Emit calls, so
// instrumentation points in hot paths cost a single pointer test when
// observation is off (the zero-overhead-when-disabled property proven by
// BenchmarkTraceOverhead and the sim cycle-invariance tests).
package obs

import (
	"sync"
	"time"
)

// Clock supplies timestamps for phases and trace events. Implementations must
// be safe for concurrent use.
type Clock interface {
	// Now returns the current timestamp. Units are implementation-defined:
	// microseconds for WallClock, abstract ticks for VirtualClock.
	Now() int64
}

// VirtualClock is a deterministic clock: each Now call advances a tick
// counter by one. Durations measured against it count instrumentation events,
// not wall time, which makes every derived artifact reproducible — the
// virtual-clock mode required by the golden tests.
type VirtualClock struct {
	mu sync.Mutex
	t  int64
}

// NewVirtualClock returns a virtual clock starting at tick 0.
func NewVirtualClock() *VirtualClock { return &VirtualClock{} }

// Now advances the clock one tick and returns it.
func (c *VirtualClock) Now() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t++
	return c.t
}

// WallClock reports microseconds elapsed since its creation. Use it for
// interactive runs; artifacts derived from it are not reproducible.
type WallClock struct {
	start time.Time
}

// NewWallClock returns a wall clock anchored at the current instant.
func NewWallClock() *WallClock { return &WallClock{start: time.Now()} }

// Now returns microseconds since the clock was created.
func (c *WallClock) Now() int64 { return time.Since(c.start).Microseconds() }
