package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadMetricsJSONRoundTrip(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("sim.cycles", 123)
	end := r.StartPhase("mine")
	end()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMetricsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != MetricsSchema || m.Counters["sim.cycles"] != 123 || len(m.Phases) != 1 {
		t.Errorf("round trip lost data: %+v", m)
	}
}

func TestReadMetricsJSONRejectsSchema(t *testing.T) {
	if _, err := ReadMetricsJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := ReadMetricsJSON(strings.NewReader(`{`)); err == nil {
		t.Error("malformed document accepted")
	}
}

func reportFixture() (*Metrics, *Timeseries) {
	m := &Metrics{
		Schema: MetricsSchema,
		Counters: map[string]int64{
			"sim.breakdown.compute":    30,
			"sim.breakdown.dram_stall": 60,
			"sim.breakdown.idle":       10,
			"sim.cycles":               100,
			"cpu.count.0":              7,
		},
		Phases: []Phase{
			{Name: "load", Start: 0, End: 2, Dur: 2},
			{Name: "mine", Start: 2, End: 10, Dur: 8},
			{Name: "open", Start: 10, End: -1},
		},
	}
	ts := &Timeseries{
		Schema: TimeseriesSchema,
		Window: 50,
		Samples: []Sample{
			{T: 50, Values: map[string]int64{"dram_accesses": 5}},
			{T: 100, Values: map[string]int64{"dram_accesses": 30}},
		},
	}
	return m, ts
}

func TestRenderReport(t *testing.T) {
	m, ts := reportFixture()
	var buf bytes.Buffer
	if err := RenderReport(&buf, m, ts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# FlexMiner run report",
		"| load | 2 | 20.0% |",
		"| mine | 8 | 80.0% |",
		"| open | (open) | |",
		"## Cycle breakdown: sim",
		"| compute | 30 | 30.0% |",
		"| dram_stall | 60 | 60.0% |",
		"| **total** | **100** | 100.0% |",
		"## Counters: cpu",
		"| cpu.count.0 | 7 |",
		"## Counters: sim",
		"| sim.cycles | 100 |",
		"## Time series",
		"2 samples over 100 cycles (window 50).",
		"| dram_accesses | 30 | 25 |", // final 30, peak window delta 30-5=25
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
	// Breakdown counters must not be duplicated in the plain counter tables.
	if strings.Contains(out, "| sim.breakdown.compute |") {
		t.Errorf("breakdown counter leaked into the counter inventory:\n%s", out)
	}
}

func TestHistogramQuantile(t *testing.T) {
	bounds := HistogramBounds()
	r := NewRegistry(nil)
	h := r.Histogram("lat", "")
	// 99 observations at 1ms, one at 1000ms: p50 is the first bucket, p99
	// still the first bucket (cum 99 >= 99), and p100 lands at le=1024.
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	h.Observe(1000)
	s := r.histogramSnapshots()["lat"].Series[""]
	for _, tc := range []struct {
		q    float64
		want int64
	}{{0.50, 1}, {0.95, 1}, {0.99, 1}, {1.0, 1024}} {
		if got := HistogramQuantile(bounds, s, tc.q); got != tc.want {
			t.Errorf("q=%v: got %d, want %d", tc.q, got, tc.want)
		}
	}
	if got := HistogramQuantile(bounds, HistogramSeries{}, 0.5); got != 0 {
		t.Errorf("empty series quantile = %d, want 0", got)
	}
	// An observation past every finite bound reports the largest finite bound.
	var inf HistogramSeries
	inf.Buckets = make([]int64, len(bounds)+1)
	inf.Buckets[len(bounds)] = 1
	inf.Count = 1
	if got := HistogramQuantile(bounds, inf, 0.5); got != bounds[len(bounds)-1] {
		t.Errorf("+Inf quantile = %d, want %d", got, bounds[len(bounds)-1])
	}
}

func TestRenderReportHistogramsAndLabeledCounters(t *testing.T) {
	r := NewRegistry(nil)
	qw := r.LabeledHistogram("jobs.queue_wait_ms", "queue wait per tenant, ms", "tenant", 8)
	for i := 0; i < 10; i++ {
		qw.Observe("alpha", 3)
	}
	qw.Observe("alpha", 120)
	qw.Observe("beta", 7)
	lc := r.LabeledCounter("jobs.submitted", "jobs accepted", "tenant", 8)
	lc.Add("alpha", 11)
	lc.Add("beta", 1)

	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMetricsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := RenderReport(&out, m, nil); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{
		"## Histogram: jobs.queue_wait_ms",
		"queue wait per tenant, ms",
		"| tenant | count | mean | p50 | p95 | p99 |",
		"| alpha | 11 | 13.6 | 4 | 128 | 128 |",
		"| beta | 1 | 7.0 | 8 | 8 | 8 |",
		"## Labeled counter: jobs.submitted",
		"| alpha | 11 | 91.7% |",
		"| **total** | **12** | 100.0% |",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q in:\n%s", want, got)
		}
	}
}

func TestRenderReportWithoutTimeseries(t *testing.T) {
	m, _ := reportFixture()
	var buf bytes.Buffer
	if err := RenderReport(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "## Time series") {
		t.Error("time-series section rendered with no data")
	}
}

func TestRenderReportZeroTotals(t *testing.T) {
	m := &Metrics{
		Schema:   MetricsSchema,
		Counters: map[string]int64{"sim.breakdown.compute": 0},
		Phases:   []Phase{{Name: "p", Start: 0, End: 0, Dur: 0}},
	}
	var buf bytes.Buffer
	if err := RenderReport(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "—") {
		t.Errorf("zero totals should render the em-dash placeholder:\n%s", buf.String())
	}
}

func TestRenderReportPropagatesWriteErrors(t *testing.T) {
	m, ts := reportFixture()
	if err := RenderReport(&failWriter{n: 0}, m, ts); err == nil {
		t.Error("write error swallowed")
	}
}
