package obs

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadMetricsJSONRoundTrip(t *testing.T) {
	r := NewRegistry(nil)
	r.Add("sim.cycles", 123)
	end := r.StartPhase("mine")
	end()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	m, err := ReadMetricsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m.Schema != MetricsSchema || m.Counters["sim.cycles"] != 123 || len(m.Phases) != 1 {
		t.Errorf("round trip lost data: %+v", m)
	}
}

func TestReadMetricsJSONRejectsSchema(t *testing.T) {
	if _, err := ReadMetricsJSON(strings.NewReader(`{"schema":"other/v9"}`)); err == nil {
		t.Error("foreign schema accepted")
	}
	if _, err := ReadMetricsJSON(strings.NewReader(`{`)); err == nil {
		t.Error("malformed document accepted")
	}
}

func reportFixture() (*Metrics, *Timeseries) {
	m := &Metrics{
		Schema: MetricsSchema,
		Counters: map[string]int64{
			"sim.breakdown.compute":    30,
			"sim.breakdown.dram_stall": 60,
			"sim.breakdown.idle":       10,
			"sim.cycles":               100,
			"cpu.count.0":              7,
		},
		Phases: []Phase{
			{Name: "load", Start: 0, End: 2, Dur: 2},
			{Name: "mine", Start: 2, End: 10, Dur: 8},
			{Name: "open", Start: 10, End: -1},
		},
	}
	ts := &Timeseries{
		Schema: TimeseriesSchema,
		Window: 50,
		Samples: []Sample{
			{T: 50, Values: map[string]int64{"dram_accesses": 5}},
			{T: 100, Values: map[string]int64{"dram_accesses": 30}},
		},
	}
	return m, ts
}

func TestRenderReport(t *testing.T) {
	m, ts := reportFixture()
	var buf bytes.Buffer
	if err := RenderReport(&buf, m, ts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# FlexMiner run report",
		"| load | 2 | 20.0% |",
		"| mine | 8 | 80.0% |",
		"| open | (open) | |",
		"## Cycle breakdown: sim",
		"| compute | 30 | 30.0% |",
		"| dram_stall | 60 | 60.0% |",
		"| **total** | **100** | 100.0% |",
		"## Counters: cpu",
		"| cpu.count.0 | 7 |",
		"## Counters: sim",
		"| sim.cycles | 100 |",
		"## Time series",
		"2 samples over 100 cycles (window 50).",
		"| dram_accesses | 30 | 25 |", // final 30, peak window delta 30-5=25
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
	// Breakdown counters must not be duplicated in the plain counter tables.
	if strings.Contains(out, "| sim.breakdown.compute |") {
		t.Errorf("breakdown counter leaked into the counter inventory:\n%s", out)
	}
}

func TestRenderReportWithoutTimeseries(t *testing.T) {
	m, _ := reportFixture()
	var buf bytes.Buffer
	if err := RenderReport(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "## Time series") {
		t.Error("time-series section rendered with no data")
	}
}

func TestRenderReportZeroTotals(t *testing.T) {
	m := &Metrics{
		Schema:   MetricsSchema,
		Counters: map[string]int64{"sim.breakdown.compute": 0},
		Phases:   []Phase{{Name: "p", Start: 0, End: 0, Dur: 0}},
	}
	var buf bytes.Buffer
	if err := RenderReport(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "—") {
		t.Errorf("zero totals should render the em-dash placeholder:\n%s", buf.String())
	}
}

func TestRenderReportPropagatesWriteErrors(t *testing.T) {
	m, ts := reportFixture()
	if err := RenderReport(&failWriter{n: 0}, m, ts); err == nil {
		t.Error("write error swallowed")
	}
}
