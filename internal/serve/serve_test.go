package serve

// httptest smoke for the serving surface, exercised concurrently with a
// real engine run so the -race CI step covers the hook path: scheduler
// workers write the Progress atomics while HTTP handlers read them.

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sched"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestServeSmoke(t *testing.T) {
	reg := obs.NewRegistry(nil)
	reg.Add("cpu.tasks", 42)
	reg.Add("sim.breakdown.compute", 1000)
	end := reg.StartPhase("mine")
	end()
	var prog Progress
	srv := httptest.NewServer(NewMux(reg, &prog, "flexminer"))
	defer srv.Close()

	code, body := get(t, srv, "/healthz")
	if code != http.StatusOK || strings.TrimSpace(body) != "ok" {
		t.Errorf("/healthz: %d %q", code, body)
	}

	code, body = get(t, srv, "/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics: status %d", code)
	}
	for _, want := range []string{
		"flexminer_cpu_tasks 42",
		"flexminer_sim_breakdown_compute 1000",
		`flexminer_phase_duration_ticks{phase="mine"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q in:\n%s", want, body)
		}
	}

	code, body = get(t, srv, "/debug/progress")
	if code != http.StatusOK {
		t.Fatalf("/debug/progress: status %d", code)
	}
	var snap Snapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		t.Fatalf("/debug/progress not JSON: %v\n%s", err, body)
	}

	if code, _ := get(t, srv, "/debug/pprof/"); code != http.StatusOK {
		t.Errorf("/debug/pprof/: status %d", code)
	}
}

// TestServeProgressDuringRun drives a real parallel mine with the Progress
// hooks wired while hammering /debug/progress — the race detector proves
// the hook path is sound, and the final snapshot must agree with the run.
func TestServeProgressDuringRun(t *testing.T) {
	g := graph.ChungLu(600, 4800, 2.3, 9)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	srv := httptest.NewServer(NewMux(obs.NewRegistry(nil), &prog, "flexminer"))
	defer srv.Close()

	tasks := sched.Expand(g, 16)
	prog.BeginRun(len(tasks))
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				get(t, srv, "/debug/progress")
				get(t, srv, "/metrics")
			}
		}
	}()
	res, err := core.Mine(g, pl, core.Options{
		Threads:    4,
		SliceElems: 16,
		SchedHooks: prog.Hooks(),
		OnTaskDone: prog.OnTaskDone,
	})
	prog.EndRun()
	close(stop)
	wg.Wait()
	if err != nil {
		t.Fatal(err)
	}

	snap := prog.Snapshot()
	if snap.Running {
		t.Error("snapshot still running after EndRun")
	}
	if snap.TasksDone != int64(len(tasks)) {
		t.Errorf("tasks_done=%d, want %d", snap.TasksDone, len(tasks))
	}
	if snap.TasksDone != res.Stats.Tasks {
		t.Errorf("tasks_done=%d disagrees with Stats.Tasks=%d", snap.TasksDone, res.Stats.Tasks)
	}
	// PartialMatches is pre-divisor: counts × the plan's symmetry divisor.
	if want := res.Counts[0] * pl.CountDivisor[0]; snap.PartialMatches != want {
		t.Errorf("partial_matches=%d, want %d (count %d × divisor %d)",
			snap.PartialMatches, want, res.Counts[0], pl.CountDivisor[0])
	}
	if snap.RunsCompleted != 1 {
		t.Errorf("runs_completed=%d, want 1", snap.RunsCompleted)
	}
}

// TestProgressStealTiers checks the sharded-run locality split reaches the
// snapshot and the /debug/progress document under the documented field names.
func TestProgressStealTiers(t *testing.T) {
	var prog Progress
	h := prog.Hooks()
	h.OnSteal(1, 0, 3)
	h.OnStealTier(1, 0, 3, sched.StealLocal)
	h.OnSteal(2, 0, 2)
	h.OnStealTier(2, 0, 2, sched.StealCross)
	h.OnSteal(3, 0, 1)
	h.OnStealTier(3, 0, 1, sched.StealCross)

	snap := prog.Snapshot()
	if snap.Steals != 3 || snap.TasksStolen != 6 {
		t.Errorf("steals=%d stolen=%d, want 3/6", snap.Steals, snap.TasksStolen)
	}
	if snap.StealsLocal != 1 || snap.StealsCross != 2 {
		t.Errorf("local=%d cross=%d, want 1/2", snap.StealsLocal, snap.StealsCross)
	}
	if snap.StealsLocal+snap.StealsCross != snap.Steals {
		t.Errorf("tier split %d+%d does not account for all %d steals",
			snap.StealsLocal, snap.StealsCross, snap.Steals)
	}

	srv := httptest.NewServer(NewMux(nil, &prog, ""))
	defer srv.Close()
	_, body := get(t, srv, "/debug/progress")
	var doc map[string]any
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/debug/progress not JSON: %v", err)
	}
	if got := doc["steals_local"]; got != float64(1) {
		t.Errorf("steals_local = %v, want 1", got)
	}
	if got := doc["steals_cross_shard"]; got != float64(2) {
		t.Errorf("steals_cross_shard = %v, want 2", got)
	}
}

// TestProgressHooksAreInert: wiring progress observation must not change
// counts or stats (the serve-mode half of the observers-never-perturb
// contract).
func TestProgressHooksAreInert(t *testing.T) {
	g := graph.ChungLu(600, 4800, 2.3, 9)
	pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := core.Mine(g, pl, core.Options{Threads: 4, SliceElems: 16})
	if err != nil {
		t.Fatal(err)
	}
	var prog Progress
	hooked, err := core.Mine(g, pl, core.Options{
		Threads: 4, SliceElems: 16,
		SchedHooks: prog.Hooks(), OnTaskDone: prog.OnTaskDone,
	})
	if err != nil {
		t.Fatal(err)
	}
	if hooked.Count() != plain.Count() || hooked.Stats != plain.Stats {
		t.Errorf("progress hooks changed the run:\nhooked %+v\nplain  %+v", hooked.Stats, plain.Stats)
	}
}

// TestListenAndServeDrainsBeforeShutdown: after ctx cancellation the
// drainers must (a) run to completion before the listener closes — the
// server must still answer requests while in-flight mining work finishes —
// and (b) receive a DrainGrace-bounded context. This is the SIGINT fix: the
// old path stopped the listener immediately, orphaning the in-flight mine.
func TestListenAndServeDrainsBeforeShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	drainEntered := make(chan struct{})
	releaseDrain := make(chan struct{})
	var deadlineOK bool
	drain := func(dctx context.Context) error {
		if _, ok := dctx.Deadline(); ok && dctx.Err() == nil {
			deadlineOK = true
		}
		close(drainEntered)
		<-releaseDrain
		return nil
	}
	go func() {
		done <- ListenAndServe(ctx, "127.0.0.1:0", NewMux(nil, nil, ""), func(addr string) { ready <- addr }, drain)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}
	cancel()
	select {
	case <-drainEntered:
	case <-time.After(10 * time.Second):
		t.Fatal("drainer never ran after ctx cancellation")
	}
	// Mid-drain the listener must still serve: in-flight work stays
	// observable on /metrics until the drain completes.
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatalf("server stopped serving during drain: %v", err)
	}
	resp.Body.Close()
	select {
	case err := <-done:
		t.Fatalf("ListenAndServe returned %v before the drainer finished", err)
	case <-time.After(50 * time.Millisecond):
	}
	close(releaseDrain)
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("shutdown after drain returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete after drain")
	}
	if !deadlineOK {
		t.Error("drainer context carried no deadline (DrainGrace not applied)")
	}
}

// TestListenAndServeDrainErrorPropagates: a drainer that gives up (deadline
// expired with work still running) must not abort the shutdown, but its
// error must surface to the caller.
func TestListenAndServeDrainErrorPropagates(t *testing.T) {
	old := DrainGrace
	DrainGrace = 30 * time.Millisecond
	defer func() { DrainGrace = old }()

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	drain := func(dctx context.Context) error {
		<-dctx.Done() // simulate work outlasting the grace period
		return dctx.Err()
	}
	go func() {
		done <- ListenAndServe(ctx, "127.0.0.1:0", NewMux(nil, nil, ""), func(addr string) { ready <- addr }, drain)
	}()
	select {
	case <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}
	cancel()
	select {
	case err := <-done:
		if err != context.DeadlineExceeded {
			t.Errorf("drain overrun returned %v, want DeadlineExceeded", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown hung on an overrunning drainer")
	}
}

func TestListenAndServeGracefulShutdown(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- ListenAndServe(ctx, "127.0.0.1:0", NewMux(nil, nil, ""), func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited before ready: %v", err)
	}
	resp, err := http.Get("http://" + addr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("graceful shutdown returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("shutdown did not complete")
	}
}
