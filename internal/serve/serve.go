// Package serve is the live observation surface of the system: an HTTP
// server exposing the obs.Registry in Prometheus text format (/metrics), a
// liveness probe (/healthz), a live mining-progress snapshot fed by
// scheduler hooks (/debug/progress), and the standard net/http/pprof
// endpoints — the serving half of the ROADMAP's production-service goal.
// Everything rendered here is a view over the observability spine
// (internal/obs) and the scheduler's hook stream (internal/sched); the
// server introduces no counters of its own (DESIGN.md decision 12).
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/sched"
)

// Progress is a race-free live view of a mining run, updated from scheduler
// hooks on worker goroutines and read by the /debug/progress handler. The
// zero value is ready to use.
type Progress struct {
	tasksDone   atomic.Int64
	steals      atomic.Int64
	stolen      atomic.Int64 // tasks moved by steals
	stealsLocal atomic.Int64 // sharded runs: steals within the thief's group
	stealsCross atomic.Int64 // sharded runs: steals across shard groups
	matches     atomic.Int64 // raw (pre-divisor) matches found so far
	tasks       atomic.Int64 // total tasks of the current run
	runs        atomic.Int64 // completed engine runs
	running     atomic.Bool
}

// Hooks returns the scheduler hooks that feed p — wire them into
// core.Options.SchedHooks.
func (p *Progress) Hooks() sched.Hooks {
	return sched.Hooks{
		OnSteal: func(thief, victim, ntasks int) {
			p.steals.Add(1)
			p.stolen.Add(int64(ntasks))
		},
		OnStealTier: func(thief, victim, ntasks, tier int) {
			if tier == sched.StealCross {
				p.stealsCross.Add(1)
			} else {
				p.stealsLocal.Add(1)
			}
		},
		OnTask: func(worker int, t sched.Task) {
			p.tasksDone.Add(1)
		},
	}
}

// OnTaskDone is the core.Options.OnTaskDone callback accumulating partial
// match counts.
func (p *Progress) OnTaskDone(worker int, matches int64) {
	p.matches.Add(matches)
}

// BeginRun marks a run of total tasks as in flight.
func (p *Progress) BeginRun(totalTasks int) {
	p.tasks.Store(int64(totalTasks))
	p.running.Store(true)
}

// EndRun marks the current run finished.
func (p *Progress) EndRun() {
	p.running.Store(false)
	p.runs.Add(1)
}

// Snapshot is the JSON document served on /debug/progress.
type Snapshot struct {
	Running        bool  `json:"running"`
	Tasks          int64 `json:"tasks"`
	TasksDone      int64 `json:"tasks_done"`
	Steals         int64 `json:"steals"`
	TasksStolen    int64 `json:"tasks_stolen"`
	StealsLocal    int64 `json:"steals_local"`       // sharded runs only
	StealsCross    int64 `json:"steals_cross_shard"` // sharded runs only
	PartialMatches int64 `json:"partial_matches"`    // raw, before symmetry divisors
	RunsCompleted  int64 `json:"runs_completed"`
}

// Snapshot returns a consistent-enough point-in-time view (each field is
// individually atomic; the run advances between loads, which is the nature
// of a live endpoint).
func (p *Progress) Snapshot() Snapshot {
	return Snapshot{
		Running:        p.running.Load(),
		Tasks:          p.tasks.Load(),
		TasksDone:      p.tasksDone.Load(),
		Steals:         p.steals.Load(),
		TasksStolen:    p.stolen.Load(),
		StealsLocal:    p.stealsLocal.Load(),
		StealsCross:    p.stealsCross.Load(),
		PartialMatches: p.matches.Load(),
		RunsCompleted:  p.runs.Load(),
	}
}

// NewMux builds the serving surface over a registry and a progress tracker
// (either may be nil; the corresponding endpoint then serves an empty
// document):
//
//	/metrics         Prometheus text exposition of every registry counter
//	/healthz         liveness: always "ok"
//	/debug/progress  live task/steal/partial-count snapshot (JSON)
//	/debug/pprof/    the standard net/http/pprof endpoints
func NewMux(reg *obs.Registry, prog *Progress, namespace string) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		if reg == nil {
			return
		}
		if err := reg.WritePrometheus(w, namespace); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/debug/progress", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		var snap Snapshot
		if prog != nil {
			snap = prog.Snapshot()
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(snap); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// shutdownGrace bounds how long a graceful shutdown waits for in-flight
// requests before forcing connections closed.
const shutdownGrace = 5 * time.Second

// DrainGrace bounds how long ListenAndServe waits for drainers (in-flight
// mining work) after ctx is cancelled, before abandoning them and shutting
// the listener down anyway. A variable so tests and operators with known-long
// workloads can tune it.
var DrainGrace = 30 * time.Second

// ListenAndServe serves handler on addr until ctx is cancelled (the SIGINT
// path in the CLI), then shuts down gracefully. onReady, when non-nil, is
// invoked with the bound address once the listener is accepting — the hook
// tests and callers use to learn the port when addr ends in ":0".
//
// Each drain function, when given, is invoked after ctx is cancelled but
// BEFORE the HTTP listener shuts down, with a context bounded by DrainGrace;
// this is how in-flight mining work (the serve-mode workload, the job
// queue's running batches) finishes — and stays observable on /metrics and
// /debug/progress — instead of being orphaned the instant SIGINT lands.
// Drainers run in order; the first error is returned after the listener
// closes, but never aborts the shutdown itself.
func ListenAndServe(ctx context.Context, addr string, handler http.Handler, onReady func(boundAddr string), drain ...func(context.Context) error) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: handler}
	if onReady != nil {
		onReady(ln.Addr().String())
	}
	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	var drainErr error
	if len(drain) > 0 {
		drainCtx, cancel := context.WithTimeout(context.Background(), DrainGrace)
		for _, d := range drain {
			if err := d(drainCtx); err != nil && drainErr == nil {
				drainErr = err
			}
		}
		cancel()
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	<-errCh // Serve has returned http.ErrServerClosed
	return drainErr
}
