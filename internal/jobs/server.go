// Package jobs is the asynchronous multi-tenant mining-job subsystem layered
// on the serving surface (internal/serve) and the CPU engine (internal/core):
// tenants submit jobs (tenant + graph reference + pattern + engine options)
// over HTTP, poll their state through queued → compiling → running → done /
// failed / cancelled, fetch results, and cancel mid-run (wired through
// MineContext's cancellation, which returns partial counts).
//
// Two properties distinguish it from a plain work queue:
//
//   - Per-tenant fairness: the bounded queue is drained by deficit
//     round-robin over per-tenant FIFOs (queue.go), so one tenant flooding
//     the queue cannot starve another's single job.
//
//   - Query batching: before launching a job, the dispatcher scans the queue
//     for co-queued jobs on the same graph with the same pattern size and
//     engine options, and compiles them jointly through the plan layer's
//     multi-pattern dependency-tree merge (plan.CompileMulti, the paper's
//     Listing 2). Shared matching-order prefixes — and the c-map contents
//     and memoized frontiers hanging off them — are then computed once for
//     the whole batch instead of once per job, and the per-pattern counts
//     are demultiplexed back to each job's result. Isomorphic co-queued
//     patterns collapse onto one plan leg ("free" deduplication). Batching
//     is metadata-compatibility-gated (DESIGN.md decision 16): a merged
//     plan runs on one engine, so graph, matching semantics and every
//     engine knob must agree before two jobs may share it.
//
// The subsystem introduces only live counters (jobs.* in the shared
// obs.Registry) and never touches the paper runners, whose options are
// pinned by the kernelpin analyzer.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/serve"
)

// State is a job's lifecycle position.
type State string

const (
	StateQueued    State = "queued"
	StateCompiling State = "compiling"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Registry counter names the subsystem feeds (live surfaces only, never
// golden-tested documents — queue traffic is load-dependent).
const (
	MetricQueued            = "jobs.queued"      // jobs accepted into the queue
	MetricBatched           = "jobs.batched"     // jobs dispatched in a ≥2-job batch
	MetricBatchWidth        = "jobs.batch_width" // sum of dispatched batch widths
	MetricRejectedQueueFull = "jobs.rejected_queue_full"
	MetricCancelled         = "jobs.cancelled"
	MetricCompleted         = "jobs.completed"
	MetricFailed            = "jobs.failed"
)

// Sentinel errors mapped onto HTTP statuses by the handlers.
var (
	ErrQueueFull = errors.New("jobs: queue full")
	ErrClosed    = errors.New("jobs: server is shutting down")
	ErrNotFound  = errors.New("jobs: no such job")
)

// Config parameterizes a Server. The zero value is usable: private registry,
// queue of 64, batches up to 8 plan legs, one batch in flight, quantum 1,
// GOMAXPROCS workers, named graphs only.
type Config struct {
	// Registry receives the jobs.* counters (and, via scheduler hooks, the
	// sched.* steal counters of job runs). Nil creates a private registry.
	Registry *obs.Registry

	// MaxQueue bounds the number of queued (not yet dispatched) jobs;
	// submits beyond it are rejected with ErrQueueFull. Default 64.
	MaxQueue int

	// MaxBatch caps the number of distinct-pattern legs merged into one
	// plan (isomorphic duplicates ride on existing legs for free).
	// 1 disables batching. Default 8.
	MaxBatch int

	// MaxRunning caps concurrently executing batches. Default 1 — the
	// engine already parallelizes across workers, so queueing discipline,
	// not batch concurrency, is the scaling knob.
	MaxRunning int

	// Quantum is the DRR quantum in jobs per tenant per round. Default 1.
	Quantum int

	// DefaultWorkers is the engine thread count applied when a request
	// leaves Options.Workers at 0. Default GOMAXPROCS.
	DefaultWorkers int

	// Graphs are the preregistered named graphs (GraphRef.Name). The map is
	// read-only after New.
	Graphs map[string]graph.Store

	// GraphDir, when non-empty, enables GraphRef.Path references: paths
	// resolve relative to this directory and may not escape it. Empty
	// rejects all path references (the safe default for a network-facing
	// server).
	GraphDir string

	// StartPaused starts the dispatcher paused (Resume() releases it) —
	// jobs queue up but nothing dispatches, which is how tests and
	// maintenance windows make batching deterministic.
	StartPaused bool

	// Clock stamps job lifecycle timestamps (submitted/dispatched/started/
	// finished) and is the source of the queue-wait and run-time histogram
	// observations. Nil selects wall-clock milliseconds; tests pass an
	// obs.VirtualClock so timestamps — and every artifact derived from them
	// — are deterministic. All reads happen with the server mutex held, so
	// a serialized submission order yields one timestamp sequence.
	Clock obs.Clock

	// Tracer, when non-nil, receives lifecycle spans (queued/compiling/
	// running per job on its own lane, engine-run per batch) plus the flow
	// events linking batched jobs to their shared engine run. Nil disables
	// span emission at the cost of one pointer test per job.
	Tracer *obs.Tracer

	// EventLog, when non-nil, receives one structured NDJSON record per job
	// state transition. Nil disables the log.
	EventLog *obs.EventLog

	// TenantLabelCap bounds the distinct tenant values on the per-tenant
	// metric families (jobs.submitted, jobs.finished, jobs.queue_wait_ms,
	// jobs.run_ms); tenants beyond it fold into obs.OverflowLabel. <= 0
	// selects obs.DefaultLabelCap.
	TenantLabelCap int

	// OnTransition, when non-nil, observes every job state change. It runs
	// outside server locks, in dispatch order per job; implementations must
	// be concurrency-safe. Observation only — it must not call back into
	// the server synchronously with unbounded blocking.
	OnTransition func(id string, state State)
}

func (c Config) withDefaults() Config {
	if c.Registry == nil {
		c.Registry = obs.NewRegistry(nil)
	}
	if c.MaxQueue <= 0 {
		c.MaxQueue = 64
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 8
	}
	if c.MaxRunning <= 0 {
		c.MaxRunning = 1
	}
	if c.Quantum <= 0 {
		c.Quantum = 1
	}
	if c.DefaultWorkers <= 0 {
		c.DefaultWorkers = runtime.GOMAXPROCS(0)
	}
	if c.Clock == nil {
		c.Clock = wallMillis{}
	}
	return c
}

// Job is one submitted mining job. All mutable fields are guarded by the
// server mutex; the public accessors return snapshots.
type Job struct {
	id      string
	seq     int // numeric suffix of id; the job's trace lane
	tenant  string
	pat     *pattern.Pattern
	induced bool
	gref    GraphRef
	gkey    string
	opts    EngineOptions

	state     State
	errMsg    string
	res       *Result
	cancelled bool   // cancellation requested while dispatched
	batch     *batch // non-nil from gather until finalization
	finalized chan struct{}

	// Lifecycle timestamps in Config.Clock units (wall ms in production,
	// virtual ticks in tests). Zero means "never reached". All writes and
	// reads happen under the server mutex.
	submittedAt  int64
	dispatchedAt int64 // popped from the queue into a batch
	startedAt    int64 // batch's engine run began
	finishedAt   int64 // terminal state recorded
}

// Result is a finished job's outcome. Stats are the whole batch's engine
// statistics (a merged plan runs as one engine pass, so per-job attribution
// of shared work would be arbitrary); Count is this job's own pattern count.
type Result struct {
	Pattern       string     `json:"pattern"`
	Count         int64      `json:"count"`
	Partial       bool       `json:"partial"`
	BatchWidth    int        `json:"batch_width"`
	BatchPatterns []string   `json:"batch_patterns,omitempty"`
	Stats         core.Stats `json:"stats"`
}

// batch is one dispatch unit: a set of jobs compiled into a single
// (possibly multi-pattern) plan and run on one engine.
type batch struct {
	legs      []*leg // one per distinct (non-isomorphic) pattern, in gather order
	seq       int    // dispatch order; names the batch in logs and traces
	width     int    // total jobs across legs
	gref      GraphRef
	gkey      string
	induced   bool
	opts      EngineOptions
	ctx       context.Context
	cancel    context.CancelFunc
	live      int   // jobs not yet individually cancelled
	startedAt int64 // engine run began (Config.Clock units)
	prog      serve.Progress
}

type leg struct {
	pat  *pattern.Pattern
	jobs []*Job
}

// Server owns the queue, the dispatcher and the job table.
type Server struct {
	cfg Config
	reg *obs.Registry

	// Observability surfaces (observe.go). clock is never nil; tracer and
	// elog may be nil (inert).
	clock      obs.Clock
	tracer     *obs.Tracer
	elog       *obs.EventLog
	mSubmitted *obs.LabeledCounter
	mFinished  *obs.LabeledCounter
	hQueueWait *obs.LabeledHistogram
	hRun       *obs.LabeledHistogram

	rootCtx context.Context
	stopAll context.CancelFunc

	mu        sync.Mutex
	cond      *sync.Cond
	q         *drrQueue
	jobs      map[string]*Job
	order     []string // submission order, for deterministic listings
	nextID    int
	nextBatch int
	running   int
	paused    bool
	closing   bool
	notes     []transition

	gmu    sync.Mutex
	graphs map[string]resolvedGraph

	dispatcherDone chan struct{}
}

type transition struct {
	id    string
	state State
}

type resolvedGraph struct {
	store graph.Store
	close func() error
}

// New starts a job server (and its dispatcher goroutine). Callers must Close
// it to release the dispatcher and any graphs opened through GraphDir.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:            cfg,
		reg:            cfg.Registry,
		clock:          cfg.Clock,
		tracer:         cfg.Tracer,
		elog:           cfg.EventLog,
		rootCtx:        ctx,
		stopAll:        cancel,
		q:              newDRRQueue(cfg.MaxQueue, cfg.Quantum),
		jobs:           map[string]*Job{},
		paused:         cfg.StartPaused,
		graphs:         map[string]resolvedGraph{},
		dispatcherDone: make(chan struct{}),
	}
	s.registerMetrics()
	s.cond = sync.NewCond(&s.mu)
	go s.dispatch()
	return s
}

// Registry returns the registry the server reports into.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Pause stops dispatching new batches; queued jobs accumulate. Running
// batches are unaffected.
func (s *Server) Pause() {
	s.mu.Lock()
	s.paused = true
	s.mu.Unlock()
}

// Resume releases a paused dispatcher.
func (s *Server) Resume() {
	s.mu.Lock()
	s.paused = false
	s.cond.Broadcast()
	s.mu.Unlock()
}

// Submit validates the (already parsed) request against server state and
// enqueues a job, returning its ID. The request must come from ParseSubmit —
// Submit assumes normalized options.
func (s *Server) Submit(req SubmitRequest, pat *pattern.Pattern) (string, error) {
	opts := req.Options
	if opts.Workers == 0 {
		opts.Workers = s.cfg.DefaultWorkers
	}
	if req.Graph.Name != "" {
		if _, ok := s.cfg.Graphs[req.Graph.Name]; !ok {
			return "", fmt.Errorf("jobs: unknown graph %q", req.Graph.Name)
		}
	} else if s.cfg.GraphDir == "" {
		return "", fmt.Errorf("jobs: graph path references are disabled (no graph root configured); use a named graph")
	} else if _, err := confinePath(s.cfg.GraphDir, req.Graph.Path); err != nil {
		return "", err
	}

	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return "", ErrClosed
	}
	j := &Job{
		id:        fmt.Sprintf("job-%d", s.nextID+1),
		seq:       s.nextID + 1,
		tenant:    req.Tenant,
		pat:       pat,
		induced:   req.Pattern.Induced,
		gref:      req.Graph,
		gkey:      req.Graph.key(),
		opts:      opts,
		state:     StateQueued,
		finalized: make(chan struct{}),
	}
	if err := s.q.push(j); err != nil {
		s.mu.Unlock()
		s.reg.Add(MetricRejectedQueueFull, 1)
		return "", err
	}
	s.nextID++
	s.jobs[j.id] = j
	s.order = append(s.order, j.id)
	j.submittedAt = s.clock.Now()
	s.logTransition(j, j.submittedAt, StateQueued, nil)
	s.notes = append(s.notes, transition{j.id, StateQueued})
	notes := s.takeNotesLocked()
	s.cond.Broadcast()
	s.mu.Unlock()
	s.reg.Add(MetricQueued, 1)
	s.mSubmitted.Add(req.Tenant, 1)
	s.fire(notes)
	return j.id, nil
}

// Cancel requests cancellation of a job. Queued jobs leave the queue
// immediately; dispatched jobs cancel through the engine context — the last
// live job of a batch to be cancelled tears the whole engine run down, which
// returns the partial counts accumulated so far. Cancelling a job whose
// batch continues for other tenants detaches it without a result (the
// shared engine pass cannot stop one plan leg). Cancelling a terminal job is
// a no-op. Returns the job's state after the call.
func (s *Server) Cancel(id string) (State, error) {
	s.mu.Lock()
	j := s.jobs[id]
	if j == nil {
		s.mu.Unlock()
		return "", ErrNotFound
	}
	if j.state.Terminal() {
		st := j.state
		s.mu.Unlock()
		return st, nil
	}
	if j.batch == nil {
		s.q.remove(j)
		s.finishLocked(j, StateCancelled, "cancelled while queued", nil)
	} else if !j.cancelled {
		j.cancelled = true
		b := j.batch
		b.live--
		if b.live == 0 {
			b.cancel() // engine unwinds; the runner finalizes with partials
		} else {
			s.finishLocked(j, StateCancelled, "cancelled; batch continues for co-batched jobs", nil)
		}
	}
	st := j.state
	notes := s.takeNotesLocked()
	s.mu.Unlock()
	s.fire(notes)
	return st, nil
}

// Wait blocks until the job is finalized (terminal state reached and any
// result recorded) or ctx expires.
func (s *Server) Wait(ctx context.Context, id string) error {
	s.mu.Lock()
	j := s.jobs[id]
	s.mu.Unlock()
	if j == nil {
		return ErrNotFound
	}
	select {
	case <-j.finalized:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Drain stops accepting submissions, cancels every still-queued job, and
// waits for in-flight batches to finish. If ctx expires first, the running
// engines are cancelled (they return partial results promptly) and Drain
// returns ctx's error after they unwind. Safe to call more than once.
func (s *Server) Drain(ctx context.Context) error {
	s.mu.Lock()
	s.closing = true
	s.cond.Broadcast()
	s.mu.Unlock()
	select {
	case <-s.dispatcherDone:
		return nil
	case <-ctx.Done():
		s.stopAll()
		<-s.dispatcherDone
		return ctx.Err()
	}
}

// Close drains the server (bounded by ctx) and releases every graph opened
// through GraphDir. The drain error, if any, is returned after cleanup.
func (s *Server) Close(ctx context.Context) error {
	err := s.Drain(ctx)
	s.stopAll()
	s.gmu.Lock()
	for key, r := range s.graphs {
		if r.close != nil {
			if cerr := r.close(); cerr != nil && err == nil {
				err = cerr
			}
		}
		delete(s.graphs, key)
	}
	s.gmu.Unlock()
	return err
}

// dispatch is the scheduler loop: it pops the DRR head, gathers a compatible
// batch around it, and hands the batch to a runner goroutine, keeping at most
// MaxRunning batches in flight.
func (s *Server) dispatch() {
	defer close(s.dispatcherDone)
	s.mu.Lock()
	for {
		for !s.closing && (s.paused || s.q.size == 0 || s.running >= s.cfg.MaxRunning) {
			s.cond.Wait()
		}
		if s.closing {
			for j := s.q.pop(); j != nil; j = s.q.pop() {
				s.finishLocked(j, StateCancelled, "server shutting down", nil)
			}
			if s.running == 0 {
				break
			}
			s.cond.Wait()
			continue
		}
		head := s.q.pop()
		b := s.gatherLocked(head)
		s.running++
		notes := s.takeNotesLocked()
		s.mu.Unlock()
		s.reg.Add(MetricBatchWidth, int64(b.width))
		if b.width > 1 {
			s.reg.Add(MetricBatched, int64(b.width))
		}
		s.fire(notes)
		go s.runBatch(b)
		s.mu.Lock()
	}
	notes := s.takeNotesLocked()
	s.mu.Unlock()
	s.fire(notes)
}

// gatherLocked builds the dispatch batch around the DRR head: every queued
// job on the same graph with the same pattern size, matching semantics and
// engine options joins, up to MaxBatch distinct plan legs. Isomorphic
// patterns share a leg (one compiled chain, one count, many recipients).
// Called with s.mu held.
func (s *Server) gatherLocked(head *Job) *batch {
	b := &batch{
		legs:    []*leg{{pat: head.pat, jobs: []*Job{head}}},
		width:   1,
		gref:    head.gref,
		gkey:    head.gkey,
		induced: head.induced,
		opts:    head.opts,
	}
	if s.cfg.MaxBatch > 1 {
		s.q.collect(func(j *Job) bool {
			if j.gkey != b.gkey || j.induced != b.induced || j.opts != b.opts ||
				j.pat.Size() != head.pat.Size() {
				return false
			}
			for _, l := range b.legs {
				if l.pat.IsIsomorphic(j.pat) {
					l.jobs = append(l.jobs, j)
					b.width++
					return true
				}
			}
			if len(b.legs) >= s.cfg.MaxBatch {
				return false
			}
			b.legs = append(b.legs, &leg{pat: j.pat, jobs: []*Job{j}})
			b.width++
			return true
		})
	}
	s.nextBatch++
	b.seq = s.nextBatch
	b.ctx, b.cancel = context.WithCancel(s.rootCtx)
	b.live = b.width
	dispatched := s.clock.Now() // one read per batch: members share the instant
	for _, l := range b.legs {
		for _, j := range l.jobs {
			j.batch = b
			j.dispatchedAt = dispatched
		}
	}
	return b
}

// runBatch compiles and executes one batch, then demultiplexes the
// per-pattern counts back onto the member jobs.
func (s *Server) runBatch(b *batch) {
	defer func() {
		b.cancel()
		s.mu.Lock()
		s.running--
		s.cond.Broadcast()
		s.mu.Unlock()
	}()

	store, err := s.graphFor(b.gref)
	if err != nil {
		s.failBatch(b, fmt.Errorf("resolving graph: %w", err))
		return
	}
	s.setBatchState(b, StateCompiling)
	pats := make([]*pattern.Pattern, len(b.legs))
	for i, l := range b.legs {
		pats[i] = l.pat
	}
	var pl *plan.Plan
	popt := plan.Options{Induced: b.induced}
	if len(pats) == 1 {
		pl, err = plan.Compile(pats[0], popt)
	} else {
		pl, err = plan.CompileMulti(pats, popt)
	}
	if err != nil {
		s.failBatch(b, err)
		return
	}
	copts, err := b.opts.coreOptions()
	if err != nil {
		s.failBatch(b, err)
		return
	}
	copts.SchedHooks = sched.MergeHooks(b.prog.Hooks(), obs.SchedHooks(s.reg))
	copts.OnTaskDone = b.prog.OnTaskDone
	eng, err := core.NewEngine(store, pl, copts)
	if err != nil {
		s.failBatch(b, err)
		return
	}
	ctx := b.ctx
	if b.opts.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(b.ctx, time.Duration(b.opts.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	s.setBatchState(b, StateRunning)
	b.prog.BeginRun(eng.TaskCount())
	res, mineErr := eng.MineContext(ctx)
	b.prog.EndRun()

	names := make([]string, len(b.legs))
	for i, l := range b.legs {
		names[i] = l.pat.Name()
	}
	s.mu.Lock()
	for li, l := range b.legs {
		var count int64
		if li < len(res.Counts) {
			count = res.Counts[li]
		}
		for _, j := range l.jobs {
			if j.state.Terminal() {
				continue // cancelled mid-batch while others continued
			}
			r := &Result{
				Pattern:       j.pat.Name(),
				Count:         count,
				Partial:       mineErr != nil,
				BatchWidth:    b.width,
				BatchPatterns: names,
				Stats:         res.Stats,
			}
			switch {
			case mineErr == nil:
				s.finishLocked(j, StateDone, "", r)
			case errors.Is(mineErr, context.Canceled) || errors.Is(mineErr, context.DeadlineExceeded):
				s.finishLocked(j, StateCancelled, mineErr.Error(), r)
			default:
				s.finishLocked(j, StateFailed, mineErr.Error(), r)
			}
		}
	}
	s.batchRunObs(b, s.clock.Now())
	notes := s.takeNotesLocked()
	s.mu.Unlock()
	s.fire(notes)
}

// failBatch finalizes every non-terminal member as failed.
func (s *Server) failBatch(b *batch, err error) {
	s.mu.Lock()
	for _, l := range b.legs {
		for _, j := range l.jobs {
			if !j.state.Terminal() {
				s.finishLocked(j, StateFailed, err.Error(), nil)
			}
		}
	}
	notes := s.takeNotesLocked()
	s.mu.Unlock()
	s.fire(notes)
}

// setBatchState advances every non-terminal member of b (compiling, running).
func (s *Server) setBatchState(b *batch, st State) {
	s.mu.Lock()
	now := s.clock.Now() // one read per transition: members share the instant
	if st == StateRunning {
		b.startedAt = now
	}
	for _, l := range b.legs {
		for _, j := range l.jobs {
			if !j.state.Terminal() {
				j.state = st
				if st == StateRunning {
					j.startedAt = now
				}
				s.logTransition(j, now, st, map[string]int64{"batch_width": int64(b.width)})
				s.notes = append(s.notes, transition{j.id, st})
			}
		}
	}
	notes := s.takeNotesLocked()
	s.mu.Unlock()
	s.fire(notes)
}

// finishLocked moves a job to a terminal state exactly once, records the
// result, closes the finalized channel and counts the outcome. Called with
// s.mu held.
func (s *Server) finishLocked(j *Job, st State, msg string, r *Result) {
	if j.state.Terminal() {
		return
	}
	j.state = st
	j.errMsg = msg
	j.res = r
	j.finishedAt = s.clock.Now()
	close(j.finalized)
	s.notes = append(s.notes, transition{j.id, st})
	s.finalizeObs(j)
	switch st {
	case StateDone:
		s.reg.Add(MetricCompleted, 1)
	case StateFailed:
		s.reg.Add(MetricFailed, 1)
	case StateCancelled:
		s.reg.Add(MetricCancelled, 1)
	}
}

func (s *Server) takeNotesLocked() []transition {
	notes := s.notes
	s.notes = nil
	return notes
}

func (s *Server) fire(notes []transition) {
	if s.cfg.OnTransition == nil {
		return
	}
	for _, n := range notes {
		s.cfg.OnTransition(n.id, n.state)
	}
}

// graphFor resolves a graph reference: named graphs come straight from the
// config; path references open (and cache, keyed by the canonical ref) a
// file or sharded directory under GraphDir.
func (s *Server) graphFor(ref GraphRef) (graph.Store, error) {
	if ref.Name != "" {
		g := s.cfg.Graphs[ref.Name]
		if g == nil {
			return nil, fmt.Errorf("jobs: unknown graph %q", ref.Name)
		}
		return g, nil
	}
	s.gmu.Lock()
	defer s.gmu.Unlock()
	if r, ok := s.graphs[ref.key()]; ok {
		return r.store, nil
	}
	full, err := confinePath(s.cfg.GraphDir, ref.Path)
	if err != nil {
		return nil, err
	}
	var r resolvedGraph
	switch {
	case graph.IsShardedDir(full):
		sg, err := graph.OpenSharded(full)
		if err != nil {
			return nil, err
		}
		r = resolvedGraph{store: sg, close: sg.Close}
	case ref.Mmap:
		m, err := graph.OpenMapped(full)
		if err != nil {
			return nil, err
		}
		r = resolvedGraph{store: m, close: m.Close}
	default:
		g, err := graph.Load(full)
		if err != nil {
			return nil, err
		}
		r = resolvedGraph{store: g}
	}
	s.graphs[ref.key()] = r
	return r.store, nil
}

// confinePath resolves rel under root, rejecting absolute paths and any
// traversal that would escape the root.
func confinePath(root, rel string) (string, error) {
	if root == "" {
		return "", fmt.Errorf("jobs: graph path references are disabled")
	}
	if filepath.IsAbs(rel) {
		return "", fmt.Errorf("jobs: graph path must be relative to the graph root")
	}
	clean := filepath.Clean(rel)
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) {
		return "", fmt.Errorf("jobs: graph path escapes the graph root")
	}
	return filepath.Join(root, clean), nil
}
