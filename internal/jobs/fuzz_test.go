package jobs

// FuzzJobSubmitJSON locks down the hardened edge of the service: no byte
// sequence POSTed at /jobs may panic the decoder. Malformed JSON, absurd
// sizes, bad graph references and degenerate patterns must all come back as
// clean errors, and anything the decoder accepts must be internally
// consistent (a usable pattern, normalized options).

import (
	"testing"

	"repro/internal/pattern"
)

func FuzzJobSubmitJSON(f *testing.F) {
	seeds := []string{
		// The happy paths.
		`{"tenant":"alice","graph":{"name":"default"},"pattern":{"name":"triangle"}}`,
		`{"graph":{"path":"web.bin","mmap":true},"pattern":{"name":"diamond"},"options":{"workers":4,"kernel":"merge","aux":"off","slice":1024,"timeout_ms":5000}}`,
		`{"graph":{"name":"g"},"pattern":{"vertices":4,"edges":[[0,1],[1,2],[2,3],[3,0]],"induced":true}}`,
		`{"graph":{"name":"g"},"pattern":{"name":"5-clique"}}`,
		// The documented failure modes.
		`{"graph":{},"pattern":{"name":"triangle"}}`,
		`{"graph":{"name":"g","path":"also.bin"},"pattern":{"name":"triangle"}}`,
		`{"graph":{"name":"g"},"pattern":{"name":"no-such-pattern"}}`,
		`{"graph":{"name":"g"},"pattern":{"vertices":99,"edges":[[0,1]]}}`,
		`{"graph":{"name":"g"},"pattern":{"vertices":4,"edges":[[0,7]]}}`,
		`{"graph":{"name":"g"},"pattern":{"vertices":4,"edges":[[1,1]]}}`,
		`{"graph":{"name":"g"},"pattern":{"vertices":4,"edges":[[0,1],[2,3]]}}`,
		`{"graph":{"name":"g"},"pattern":{"name":"triangle"},"options":{"workers":-1}}`,
		`{"graph":{"name":"g"},"pattern":{"name":"triangle"},"options":{"kernel":"warp"}}`,
		`{"graph":{"name":"g"},"pattern":{"name":"triangle"},"unknown_field":1}`,
		`{"graph":{"name":"g"},"pattern":{"name":"triangle"}} trailing`,
		`{not json`,
		``,
		`null`,
		`[]`,
		"{\"tenant\":\"\u0000\",\"graph\":{\"name\":\"g\"},\"pattern\":{\"name\":\"wedge\"}}",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		req, pat, err := ParseSubmit(data)
		if err != nil {
			return
		}
		// Accepted requests must be fully usable downstream.
		if pat == nil {
			t.Fatal("accepted request with nil pattern")
		}
		if pat.Size() < 2 || pat.Size() > pattern.MaxVertices {
			t.Fatalf("accepted pattern of size %d", pat.Size())
		}
		if !pat.IsConnected() {
			t.Fatal("accepted disconnected pattern")
		}
		if req.Tenant == "" {
			t.Fatal("accepted request with empty tenant after normalization")
		}
		if (req.Graph.Name == "") == (req.Graph.Path == "") {
			t.Fatalf("accepted ambiguous graph ref %+v", req.Graph)
		}
		if req.Options.Kernel == "" || req.Options.Aux == "" {
			t.Fatalf("accepted un-normalized options %+v", req.Options)
		}
		if _, err := req.Options.coreOptions(); err != nil {
			t.Fatalf("accepted options that don't map to core: %v", err)
		}
	})
}
