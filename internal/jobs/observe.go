package jobs

// Request-level observability for the job service (DESIGN.md decision 17):
// per-tenant labeled counters and latency histograms in the shared registry,
// lifecycle spans in the Chrome tracer, and one structured event-log line
// per transition. Everything here is nil-inert — a server configured without
// a tracer or event log pays one pointer test per site — and deterministic
// under a virtual clock: every clock read happens with s.mu held, so a
// serialized submission/dispatch order yields one timestamp sequence, and
// the flushed artifacts (histogram JSON, event-log NDJSON, trace) are
// byte-identical across runs.

import (
	"fmt"
	"time"

	"repro/internal/obs"
)

// Labeled metric families and latency histograms, all keyed by tenant with
// bounded cardinality (Config.TenantLabelCap, obs.OverflowLabel spill).
const (
	MetricSubmitted   = "jobs.submitted"     // labeled counter: jobs accepted, by tenant
	MetricFinished    = "jobs.finished"      // labeled counter: jobs reaching a terminal state, by tenant
	MetricQueueWaitMS = "jobs.queue_wait_ms" // labeled histogram: submit → dispatch, ms
	MetricRunMS       = "jobs.run_ms"        // labeled histogram: engine start → finalize, ms
)

// wallMillis is the production job clock: Unix milliseconds, the unit the
// lifecycle histograms are bucketed for. Tests substitute an
// obs.VirtualClock via Config.Clock so timestamps are deterministic.
type wallMillis struct{}

func (wallMillis) Now() int64 { return time.Now().UnixMilli() }

// batchLaneBase offsets batch (engine-run) trace lanes away from the
// per-job lanes, whose TIDs are small job sequence numbers.
const batchLaneBase = 1_000_000

// registerMetrics creates the server's metric families in the shared
// registry eagerly — scrape-before-traffic shows zeroed families rather
// than nothing — and attaches HELP text to the plain jobs.* counters.
func (s *Server) registerMetrics() {
	cap := s.cfg.TenantLabelCap
	s.mSubmitted = s.reg.LabeledCounter(MetricSubmitted, "jobs accepted into the queue, by tenant", "tenant", cap)
	s.mFinished = s.reg.LabeledCounter(MetricFinished, "jobs reaching a terminal state, by tenant", "tenant", cap)
	s.hQueueWait = s.reg.LabeledHistogram(MetricQueueWaitMS, "job queue wait (submit to dispatch), milliseconds, by tenant", "tenant", cap)
	s.hRun = s.reg.LabeledHistogram(MetricRunMS, "job run time (engine start to finalize), milliseconds, by tenant", "tenant", cap)
	for name, help := range map[string]string{
		MetricQueued:            "jobs accepted into the queue",
		MetricBatched:           "jobs dispatched in a multi-job batch",
		MetricBatchWidth:        "sum of dispatched batch widths",
		MetricRejectedQueueFull: "submissions rejected because the queue was full",
		MetricCancelled:         "jobs finalized cancelled",
		MetricCompleted:         "jobs finalized done",
		MetricFailed:            "jobs finalized failed",
	} {
		s.reg.Add(name, 0)
		s.reg.SetHelp(name, help)
	}
}

// batchID renders a batch's stable identifier for logs and trace args.
func batchID(seq int) string { return fmt.Sprintf("batch-%d", seq) }

// logTransition appends one structured line for a job state change. Called
// with s.mu held (the event log has its own short lock; lock order is
// strictly jobs → obs, never back).
func (s *Server) logTransition(j *Job, ts int64, st State, fields map[string]int64) {
	if !s.elog.Enabled() {
		return
	}
	rec := obs.LogRecord{
		TS:     ts,
		Event:  string(st),
		Job:    j.id,
		Tenant: j.tenant,
		State:  string(st),
		Error:  j.errMsg,
		Fields: fields,
	}
	if j.batch != nil {
		rec.Batch = batchID(j.batch.seq)
	}
	s.elog.Append(rec)
}

// finalizeObs records everything derived from a job's completed lifecycle:
// the per-tenant outcome counter, queue-wait and run-time observations, the
// terminal event-log line, and the job's trace spans. Called from
// finishLocked with s.mu held, after the terminal state and finishedAt are
// set, so each job emits exactly once.
func (s *Server) finalizeObs(j *Job) {
	s.mFinished.Add(j.tenant, 1)

	// Queue wait: submit → dispatch for jobs that left the queue, submit →
	// finalize for jobs that died queued (their whole life was queue wait).
	waitEnd := j.dispatchedAt
	if waitEnd == 0 {
		waitEnd = j.finishedAt
	}
	queueWait := waitEnd - j.submittedAt
	s.hQueueWait.Observe(j.tenant, queueWait)

	fields := map[string]int64{"queue_wait_ms": queueWait}
	var runDur int64
	if j.startedAt > 0 {
		runDur = j.finishedAt - j.startedAt
		s.hRun.Observe(j.tenant, runDur)
		fields["run_ms"] = runDur
	}
	if j.batch != nil {
		fields["batch_width"] = int64(j.batch.width)
	}
	if j.res != nil {
		fields["matches"] = j.res.Count
	}
	s.logTransition(j, j.finishedAt, j.state, fields)

	if !s.tracer.Enabled() {
		return
	}
	// Lifecycle spans on the job's own lane, EmitAt-stamped from the
	// recorded timestamps so the trace is deterministic under the virtual
	// clock. Zero-duration phases still emit (Chrome renders them as
	// instants), keeping the span count per job a function of how far the
	// job got, not of timing.
	if j.dispatchedAt > 0 {
		s.tracer.EmitAt(obs.CatJobs, "queued", j.seq, j.submittedAt, j.dispatchedAt-j.submittedAt)
		compileEnd := j.startedAt
		if compileEnd == 0 {
			compileEnd = j.finishedAt
		}
		s.tracer.EmitAt(obs.CatJobs, "compiling", j.seq, j.dispatchedAt, compileEnd-j.dispatchedAt)
	} else {
		s.tracer.EmitAt(obs.CatJobs, "queued", j.seq, j.submittedAt, j.finishedAt-j.submittedAt)
	}
	if j.startedAt > 0 {
		s.tracer.EmitAt(obs.CatJobs, "running", j.seq, j.startedAt, runDur,
			obs.Arg{Key: "batch_width", Val: int64(j.batch.width)})
		// Flow arrow from this job's running span to the shared engine-run
		// span on the batch lane; the job's sequence number is the bind id.
		s.tracer.EmitFlowAt(obs.CatJobs, "batched-into", j.seq, j.startedAt, int64(j.seq), true)
		s.tracer.EmitFlowAt(obs.CatJobs, "batched-into", batchLaneBase+j.batch.seq, j.finishedAt, int64(j.seq), false)
	}
}

// batchRunObs emits the shared engine-run span on the batch's lane. Called
// with s.mu held after the batch's members are finalized.
func (s *Server) batchRunObs(b *batch, endAt int64) {
	if !s.tracer.Enabled() || b.startedAt == 0 {
		return
	}
	s.tracer.EmitAt(obs.CatJobs, "engine-run", batchLaneBase+b.seq, b.startedAt, endAt-b.startedAt,
		obs.Arg{Key: "batch", Val: int64(b.seq)},
		obs.Arg{Key: "width", Val: int64(b.width)},
		obs.Arg{Key: "legs", Val: int64(len(b.legs))})
}
