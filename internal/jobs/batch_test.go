package jobs

// The work-sharing acceptance criteria: batching must PROVABLY share work,
// both statically (the merged plan is smaller than the two individual plans
// combined) and dynamically (the engine performs fewer set-op iterations
// under batching than the sum of the individual runs).

import (
	"context"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
	"repro/internal/plan"
)

func countNodes(n *plan.Node) int {
	if n == nil {
		return 0
	}
	total := 1
	for _, c := range n.Children {
		total += countNodes(c)
	}
	return total
}

// TestMergedPlanSmallerThanSum: the merged dependency tree for the paper's
// Listing 2 pair (diamond + tailed-triangle) must have strictly fewer ops
// than the two individual plans combined — the shared v0,v1,v2 prefix is
// materialized once.
func TestMergedPlanSmallerThanSum(t *testing.T) {
	diamond, tailed := pattern.Diamond(), pattern.TailedTriangle()
	opt := plan.Options{}
	plD, err := plan.Compile(diamond, opt)
	if err != nil {
		t.Fatal(err)
	}
	plT, err := plan.Compile(tailed, opt)
	if err != nil {
		t.Fatal(err)
	}
	merged, err := plan.CompileMulti([]*pattern.Pattern{diamond, tailed}, opt)
	if err != nil {
		t.Fatal(err)
	}
	sum := countNodes(plD.Root) + countNodes(plT.Root)
	got := countNodes(merged.Root)
	if got >= sum {
		t.Fatalf("merged plan has %d ops, individual plans total %d — no sharing", got, sum)
	}
	t.Logf("merged plan: %d ops vs %d individual (saved %d)", got, sum, sum-got)
}

// TestBatchedRunSharesWork: a batched diamond + tailed-triangle run must
// perform strictly fewer set-op iterations (the SIU/SDU work proxy) than the
// same two jobs mined individually, while producing identical counts.
// Deterministic knobs: merge kernel, aux off, one worker.
func TestBatchedRunSharesWork(t *testing.T) {
	g := graph.ChungLu(300, 2100, 2.3, 11)
	mineOne := func(name string) (int64, core.Stats) {
		pat, err := pattern.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		pl, err := plan.Compile(pat, plan.Options{})
		if err != nil {
			t.Fatal(err)
		}
		eng, err := core.NewEngine(g, pl, core.Options{
			Threads: 1, Kernel: core.KernelMergeOnly, AuxGraph: core.AuxOff,
		})
		if err != nil {
			t.Fatal(err)
		}
		res := eng.Mine()
		return res.Counts[0], res.Stats
	}
	countD, statsD := mineOne("diamond")
	countT, statsT := mineOne("tailed-triangle")

	reg := obs.NewRegistry(nil)
	s := New(Config{Registry: reg, Graphs: map[string]graph.Store{"g": g}, StartPaused: true})
	defer closeServer(t, s)

	opts := EngineOptions{Workers: 1, Kernel: "merge", Aux: "off"}
	idD := submitNamed(t, s, "A", "g", "diamond", opts)
	idT := submitNamed(t, s, "B", "g", "tailed-triangle", opts)
	s.Resume()

	for _, id := range []string{idD, idT} {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
	}
	resD, _ := s.Result(idD)
	resT, _ := s.Result(idT)
	if resD.BatchWidth != 2 || resT.BatchWidth != 2 {
		t.Fatalf("batch widths %d/%d, want 2/2 — batching did not engage", resD.BatchWidth, resT.BatchWidth)
	}
	if resD.Count != countD || resT.Count != countT {
		t.Fatalf("batched counts (%d, %d) != individual counts (%d, %d)",
			resD.Count, resT.Count, countD, countT)
	}
	// Both jobs carry the same whole-batch stats document.
	batched := resD.Stats.SetOpIterations
	individual := statsD.SetOpIterations + statsT.SetOpIterations
	if batched >= individual {
		t.Fatalf("batched run: %d set-op iterations, individual runs total %d — batching shared no work",
			batched, individual)
	}
	t.Logf("set-op iterations: batched %d vs individual %d (saved %.1f%%)",
		batched, individual, 100*float64(individual-batched)/float64(individual))

	if v := reg.Get(MetricBatched); v != 2 {
		t.Fatalf("%s = %d, want 2", MetricBatched, v)
	}
	if v := reg.Get(MetricBatchWidth); v != 2 {
		t.Fatalf("%s = %d, want 2", MetricBatchWidth, v)
	}
}

// TestIsomorphicJobsShareALeg: two tenants submitting isomorphic patterns
// (triangle and 3-clique) batch onto ONE plan leg — the plan compiles a
// single chain and both jobs receive the same count.
func TestIsomorphicJobsShareALeg(t *testing.T) {
	g := graph.ChungLu(200, 1200, 2.3, 4)
	s := New(Config{Graphs: map[string]graph.Store{"g": g}, StartPaused: true})
	defer closeServer(t, s)

	opts := EngineOptions{Workers: 2}
	id1 := submitNamed(t, s, "A", "g", "triangle", opts)
	id2 := submitNamed(t, s, "B", "g", "3-clique", opts)
	s.Resume()
	res := make([]*Result, 2)
	for i, id := range []string{id1, id2} {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		res[i], _ = s.Result(id)
	}
	if res[0].BatchWidth != 2 || res[1].BatchWidth != 2 {
		t.Fatalf("batch widths %d/%d, want 2/2", res[0].BatchWidth, res[1].BatchWidth)
	}
	if len(res[0].BatchPatterns) != 1 {
		t.Fatalf("isomorphic jobs used %d plan legs, want 1 (shared)", len(res[0].BatchPatterns))
	}
	if res[0].Count != res[1].Count || res[0].Count <= 0 {
		t.Fatalf("isomorphic jobs disagree: %d vs %d", res[0].Count, res[1].Count)
	}
}

// TestIncompatibleJobsDoNotBatch: different engine options (worker counts)
// must keep same-graph jobs in separate batches.
func TestIncompatibleJobsDoNotBatch(t *testing.T) {
	g := graph.ChungLu(150, 900, 2.3, 6)
	s := New(Config{Graphs: map[string]graph.Store{"g": g}, StartPaused: true})
	defer closeServer(t, s)

	id1 := submitNamed(t, s, "A", "g", "diamond", EngineOptions{Workers: 1})
	id2 := submitNamed(t, s, "A", "g", "tailed-triangle", EngineOptions{Workers: 2})
	s.Resume()
	for _, id := range []string{id1, id2} {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		res, _ := s.Result(id)
		if res.BatchWidth != 1 {
			t.Fatalf("job %s batch width %d, want 1 (options differ)", id, res.BatchWidth)
		}
	}
}

// TestBatchingDisabledByMaxBatchOne: MaxBatch 1 must dispatch co-queued
// compatible jobs separately.
func TestBatchingDisabledByMaxBatchOne(t *testing.T) {
	g := graph.ChungLu(150, 900, 2.3, 6)
	s := New(Config{Graphs: map[string]graph.Store{"g": g}, MaxBatch: 1, StartPaused: true})
	defer closeServer(t, s)

	id1 := submitNamed(t, s, "A", "g", "diamond", EngineOptions{Workers: 2})
	id2 := submitNamed(t, s, "A", "g", "tailed-triangle", EngineOptions{Workers: 2})
	s.Resume()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	for _, id := range []string{id1, id2} {
		if err := s.Wait(ctx, id); err != nil {
			t.Fatal(err)
		}
		res, _ := s.Result(id)
		if res == nil || res.BatchWidth != 1 {
			t.Fatalf("job %s: %+v, want unbatched result", id, res)
		}
	}
}
