package jobs

// Unit tests for the submit-request surface: decoder acceptance/rejection
// tables, option normalization, and the canonical graph-ref identity that
// gates batching.

import (
	"strings"
	"testing"
)

func TestParseSubmitAccepts(t *testing.T) {
	cases := []struct {
		name string
		body string
		size int
	}{
		{"named pattern", `{"graph":{"name":"g"},"pattern":{"name":"triangle"}}`, 3},
		{"family pattern", `{"graph":{"name":"g"},"pattern":{"name":"5-clique"}}`, 5},
		{"edge list", `{"graph":{"name":"g"},"pattern":{"vertices":4,"edges":[[0,1],[1,2],[2,3],[3,0]]}}`, 4},
		{"path graph", `{"graph":{"path":"web.bin","mmap":true},"pattern":{"name":"wedge"}}`, 3},
		{"full options", `{"tenant":"t","graph":{"name":"g"},"pattern":{"name":"diamond"},"options":{"workers":8,"kernel":"gallop","aux":"on","slice":64,"timeout_ms":1000}}`, 4},
	}
	for _, c := range cases {
		req, pat, err := ParseSubmit([]byte(c.body))
		if err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
			continue
		}
		if pat.Size() != c.size {
			t.Errorf("%s: pattern size %d, want %d", c.name, pat.Size(), c.size)
		}
		if req.Tenant == "" || req.Options.Kernel == "" || req.Options.Aux == "" {
			t.Errorf("%s: request not normalized: %+v", c.name, req)
		}
		if _, err := req.Options.coreOptions(); err != nil {
			t.Errorf("%s: options don't map to core: %v", c.name, err)
		}
	}
}

func TestParseSubmitRejects(t *testing.T) {
	cases := []struct {
		name, body, wantErr string
	}{
		{"bad json", `{not json`, "bad request"},
		{"trailing data", `{"graph":{"name":"g"},"pattern":{"name":"triangle"}} junk`, "trailing data"},
		{"unknown field", `{"graph":{"name":"g"},"pattern":{"name":"triangle"},"zzz":1}`, "bad request"},
		{"no graph", `{"pattern":{"name":"triangle"}}`, "name or a path"},
		{"both graph refs", `{"graph":{"name":"g","path":"p"},"pattern":{"name":"triangle"}}`, "both"},
		{"mmap on named", `{"graph":{"name":"g","mmap":true},"pattern":{"name":"triangle"}}`, "mmap"},
		{"unknown pattern", `{"graph":{"name":"g"},"pattern":{"name":"dodecahedron"}}`, "unknown pattern"},
		{"name and edges", `{"graph":{"name":"g"},"pattern":{"name":"triangle","vertices":3}}`, "both a name and an edge list"},
		{"no edges", `{"graph":{"name":"g"},"pattern":{"vertices":4}}`, "edge list is empty"},
		{"absurd vertices", `{"graph":{"name":"g"},"pattern":{"vertices":1000000,"edges":[[0,1]]}}`, "out of range"},
		{"edge out of range", `{"graph":{"name":"g"},"pattern":{"vertices":3,"edges":[[0,5]]}}`, "out of range"},
		{"self loop", `{"graph":{"name":"g"},"pattern":{"vertices":3,"edges":[[1,1]]}}`, "self loop"},
		{"disconnected", `{"graph":{"name":"g"},"pattern":{"vertices":4,"edges":[[0,1],[2,3]]}}`, "disconnected"},
		{"negative workers", `{"graph":{"name":"g"},"pattern":{"name":"triangle"},"options":{"workers":-1}}`, "workers"},
		{"absurd timeout", `{"graph":{"name":"g"},"pattern":{"name":"triangle"},"options":{"timeout_ms":99999999999}}`, "timeout_ms"},
		{"bad kernel", `{"graph":{"name":"g"},"pattern":{"name":"triangle"},"options":{"kernel":"warp"}}`, "kernel"},
		{"bad aux", `{"graph":{"name":"g"},"pattern":{"name":"triangle"},"options":{"aux":"maybe"}}`, "aux"},
		{"bad slice", `{"graph":{"name":"g"},"pattern":{"name":"triangle"},"options":{"slice":-2}}`, "slice"},
		{"long tenant", `{"tenant":"` + strings.Repeat("x", 100) + `","graph":{"name":"g"},"pattern":{"name":"triangle"}}`, "tenant"},
		{"control chars", "{\"tenant\":\"a\\nb\",\"graph\":{\"name\":\"g\"},\"pattern\":{\"name\":\"triangle\"}}", "non-printable"},
	}
	for _, c := range cases {
		_, _, err := ParseSubmit([]byte(c.body))
		if err == nil {
			t.Errorf("%s: accepted %q", c.name, c.body)
			continue
		}
		if !strings.Contains(err.Error(), c.wantErr) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.wantErr)
		}
	}
	if _, _, err := ParseSubmit(make([]byte, MaxBodyBytes+1)); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized body: %v", err)
	}
}

func TestGraphRefKeyAndDisplay(t *testing.T) {
	named := GraphRef{Name: "g"}
	plain := GraphRef{Path: "a.bin"}
	mapped := GraphRef{Path: "a.bin", Mmap: true}
	keys := map[string]bool{named.key(): true, plain.key(): true, mapped.key(): true}
	if len(keys) != 3 {
		t.Fatalf("graph-ref keys collide: %q %q %q", named.key(), plain.key(), mapped.key())
	}
	if named.key() != (GraphRef{Name: "g"}).key() {
		t.Fatal("equal refs must share a key")
	}
	if named.Display() != "g" || plain.Display() != "a.bin" {
		t.Fatalf("displays: %q %q", named.Display(), plain.Display())
	}
}
