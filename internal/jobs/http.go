package jobs

// The HTTP face of the job service, registered onto the serve.NewMux router
// (Go 1.22 method+wildcard patterns):
//
//	POST   /jobs               submit → {"id": "job-1", "state": "queued"}
//	GET    /jobs               list all jobs (submission order)
//	GET    /jobs/{id}          poll status (+ live progress while running)
//	GET    /jobs/{id}/result   fetch the result of a finished job
//	POST   /jobs/{id}/cancel   request cancellation
//	POST   /jobs/queue/pause   stop dispatching (admin/maintenance)
//	POST   /jobs/queue/resume  resume dispatching
//	GET    /debug/jobs         per-tenant summary + structured event-log tail
//
// Handlers translate the Server's sentinel errors onto statuses: queue full
// → 429, shutting down → 503, unknown job → 404, bad request → 400.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
)

// Routes registers the job API onto mux.
func (s *Server) Routes(mux *http.ServeMux) {
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs", s.handleList)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("POST /jobs/queue/pause", s.handlePause)
	mux.HandleFunc("POST /jobs/queue/resume", s.handleResume)
	mux.HandleFunc("GET /debug/jobs", s.handleDebug)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // headers are out; nothing left to signal
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, MaxBodyBytes+1))
	if err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("jobs: reading request: %w", err))
		return
	}
	req, pat, err := ParseSubmit(body)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	id, err := s.Submit(req, pat)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			writeErr(w, http.StatusTooManyRequests, err)
		case errors.Is(err, ErrClosed):
			writeErr(w, http.StatusServiceUnavailable, err)
		default:
			writeErr(w, http.StatusBadRequest, err)
		}
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"id": id, "state": string(StateQueued)})
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.List()})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	st, err := s.Status(r.PathValue("id"))
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, st)
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	res, err := s.Result(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	if res == nil {
		st, _ := s.Status(id)
		if st.State.Terminal() {
			writeErr(w, http.StatusGone, fmt.Errorf("jobs: job %s finished %s with no result", id, st.State))
		} else {
			writeErr(w, http.StatusConflict, fmt.Errorf("jobs: job %s is still %s", id, st.State))
		}
		return
	}
	writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	st, err := s.Cancel(id)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"id": id, "state": string(st)})
}

func (s *Server) handlePause(w http.ResponseWriter, r *http.Request) {
	s.Pause()
	writeJSON(w, http.StatusOK, map[string]string{"queue": "paused"})
}

func (s *Server) handleResume(w http.ResponseWriter, r *http.Request) {
	s.Resume()
	writeJSON(w, http.StatusOK, map[string]string{"queue": "running"})
}
