package jobs

// DRR schedule tests: fairness must hold deterministically, as an exact
// property of the dequeue order, not as a statistical tendency.

import (
	"fmt"
	"testing"
)

func qjob(tenant string, n int) *Job {
	return &Job{id: fmt.Sprintf("%s-%d", tenant, n), tenant: tenant}
}

// TestDRRFloodedTenantCannotStarve is the fairness acceptance criterion at
// the queue level: tenant A floods 50 jobs before tenant B's single job
// arrives, yet B's job is the SECOND dequeue — within the documented
// (T-1)·Q + 1 = 2 pops — and the full schedule matches DRR exactly.
func TestDRRFloodedTenantCannotStarve(t *testing.T) {
	q := newDRRQueue(100, 1)
	for i := 1; i <= 50; i++ {
		if err := q.push(qjob("A", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := q.push(qjob("B", 1)); err != nil {
		t.Fatal(err)
	}

	// Exact DRR schedule with quantum 1: one A, one B (its whole backlog),
	// then the remaining 49 A jobs in FIFO order.
	want := []string{"A-1", "B-1"}
	for i := 2; i <= 50; i++ {
		want = append(want, fmt.Sprintf("A-%d", i))
	}
	for pos, id := range want {
		j := q.pop()
		if j == nil {
			t.Fatalf("pop %d: queue empty, want %s", pos+1, id)
		}
		if j.id != id {
			t.Fatalf("pop %d: got %s, want %s (DRR schedule violated)", pos+1, j.id, id)
		}
	}
	if q.pop() != nil {
		t.Fatal("queue should be empty")
	}
}

// TestDRRRoundRobinAcrossThreeTenants checks the rotation with quantum 2 and
// the no-banking rule: a tenant whose FIFO empties forfeits its remaining
// deficit.
func TestDRRRoundRobinAcrossThreeTenants(t *testing.T) {
	q := newDRRQueue(100, 2)
	// A: 5 jobs, B: 1 job, C: 3 jobs — registered in that ring order.
	for i := 1; i <= 5; i++ {
		mustPush(t, q, qjob("A", i))
	}
	mustPush(t, q, qjob("B", 1))
	for i := 1; i <= 3; i++ {
		mustPush(t, q, qjob("C", i))
	}
	want := []string{
		"A-1", "A-2", // A's quantum of 2
		"B-1",        // B empties, forfeits its second unit
		"C-1", "C-2", // C's quantum
		"A-3", "A-4", // round 2
		"C-3", // C empties
		"A-5", // only A remains
	}
	for pos, id := range want {
		j := q.pop()
		if j == nil || j.id != id {
			got := "<nil>"
			if j != nil {
				got = j.id
			}
			t.Fatalf("pop %d: got %s, want %s", pos+1, got, id)
		}
	}
}

func TestDRRQueueBoundAndRemove(t *testing.T) {
	q := newDRRQueue(3, 1)
	a, b, c := qjob("A", 1), qjob("A", 2), qjob("B", 1)
	mustPush(t, q, a)
	mustPush(t, q, b)
	mustPush(t, q, c)
	if err := q.push(qjob("C", 1)); err != ErrQueueFull {
		t.Fatalf("push beyond bound: got %v, want ErrQueueFull", err)
	}
	if !q.remove(b) {
		t.Fatal("remove of queued job failed")
	}
	if q.remove(b) {
		t.Fatal("second remove of same job should report absence")
	}
	// Bound freed: a new job fits again.
	mustPush(t, q, qjob("C", 1))
	if got := []string{q.pop().id, q.pop().id, q.pop().id}; got[0] != "A-1" || got[1] != "B-1" || got[2] != "C-1" {
		t.Fatalf("unexpected schedule after remove: %v", got)
	}
}

func TestDRRCollectPullsMatchingJobs(t *testing.T) {
	q := newDRRQueue(10, 1)
	a1, a2, b1 := qjob("A", 1), qjob("A", 2), qjob("B", 1)
	mustPush(t, q, a1)
	mustPush(t, q, a2)
	mustPush(t, q, b1)
	got := q.collect(func(j *Job) bool { return j.tenant == "A" })
	if len(got) != 2 || got[0] != a1 || got[1] != a2 {
		t.Fatalf("collect returned %v", got)
	}
	if q.size != 1 {
		t.Fatalf("size after collect = %d, want 1", q.size)
	}
	if j := q.pop(); j != b1 {
		t.Fatalf("survivor = %v, want B-1", j)
	}
}

func mustPush(t *testing.T, q *drrQueue, j *Job) {
	t.Helper()
	if err := q.push(j); err != nil {
		t.Fatal(err)
	}
}
