package jobs

// Observability tests for the job service: byte-equal double-run goldens for
// the metrics JSON (histograms + labeled counters) and the event-log NDJSON
// under the virtual clock, the "instrumentation is inert" metamorphic suite,
// the /debug/jobs document, and the Status timestamp surface. Regenerate the
// goldens with:
//
//	go test ./internal/jobs -run JobObservabilityGolden -update
//
// after any deliberate change to the instrumentation points, the histogram
// layout, or the event-log schema.

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden observability artifacts")

// obsScenario runs the canonical observability workload — five jobs from
// three tenants, four of which batch into one engine run, one (triangle,
// size 3) dispatching alone — on a paused server with deterministic clocks.
// The caller owns closing the returned server.
func obsScenario(t *testing.T, g graph.Store, tracer *obs.Tracer, elog *obs.EventLog) (*Server, *obs.Registry, []string) {
	t.Helper()
	reg := obs.NewRegistry(obs.NewVirtualClock())
	s := New(Config{
		Registry:    reg,
		Clock:       obs.NewVirtualClock(),
		Tracer:      tracer,
		EventLog:    elog,
		Graphs:      map[string]graph.Store{"g": g},
		StartPaused: true,
	})
	opts := EngineOptions{Workers: 1}
	var ids []string
	ids = append(ids, submitNamed(t, s, "alpha", "g", "4-path", opts))
	ids = append(ids, submitNamed(t, s, "beta", "g", "4-star", opts))
	ids = append(ids, submitNamed(t, s, "alpha", "g", "4-path", opts)) // isomorphic: shares a leg
	ids = append(ids, submitNamed(t, s, "gamma", "g", "diamond", opts))
	ids = append(ids, submitNamed(t, s, "beta", "g", "triangle", opts)) // size 3: its own batch
	s.Resume()
	for _, id := range ids {
		waitDone(t, s, id)
	}
	return s, reg, ids
}

func TestJobObservabilityGolden(t *testing.T) {
	g := graph.ChungLu(200, 1200, 2.3, 3)
	run := func() (metrics, events, trace []byte) {
		tracer := obs.NewTracer(nil, 0)
		elog := obs.NewEventLog(0)
		s, reg, _ := obsScenario(t, g, tracer, elog)
		closeServer(t, s)
		var mb, eb, tb bytes.Buffer
		if err := reg.WriteJSON(&mb); err != nil {
			t.Fatal(err)
		}
		if err := elog.WriteNDJSON(&eb); err != nil {
			t.Fatal(err)
		}
		if err := tracer.WriteChromeJSON(&tb); err != nil {
			t.Fatal(err)
		}
		return mb.Bytes(), eb.Bytes(), tb.Bytes()
	}
	m1, e1, tr1 := run()
	m2, e2, tr2 := run()
	if !bytes.Equal(m1, m2) {
		t.Error("metrics JSON differs across identical runs")
	}
	if !bytes.Equal(e1, e2) {
		t.Error("event-log NDJSON differs across identical runs")
	}
	if !bytes.Equal(tr1, tr2) {
		t.Error("lifecycle trace differs across identical runs")
	}

	// The trace carries the full span vocabulary plus the flow endpoints
	// linking batched jobs to their shared engine run.
	for _, want := range []string{`"queued"`, `"compiling"`, `"running"`, `"engine-run"`, `"batched-into"`, `"ph": "s"`, `"ph": "f"`} {
		if !bytes.Contains(tr1, []byte(want)) {
			t.Errorf("trace missing %s", want)
		}
	}

	goldens := []struct {
		name string
		got  []byte
	}{
		{"observability.metrics.json", m1},
		{"observability.events.ndjson", e1},
	}
	for _, gf := range goldens {
		path := filepath.Join("testdata", "golden", gf.name)
		if *updateGolden {
			if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, gf.got, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
		}
		if !bytes.Equal(gf.got, want) {
			t.Errorf("%s drifted from golden (%d vs %d bytes); rerun with -update and review the diff",
				gf.name, len(gf.got), len(want))
		}
	}
}

// The committed metrics golden must drive the `experiments report` renderer:
// per-tenant p50/p95/p99 latency tables and labeled-counter shares — the
// acceptance surface of the observability layer.
func TestReportRendersCommittedGolden(t *testing.T) {
	f, err := os.Open(filepath.Join("testdata", "golden", "observability.metrics.json"))
	if err != nil {
		t.Fatalf("missing golden (run TestJobObservabilityGolden with -update): %v", err)
	}
	defer f.Close()
	m, err := obs.ReadMetricsJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := obs.RenderReport(&buf, m, nil); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"## Histogram: jobs.queue_wait_ms",
		"## Histogram: jobs.run_ms",
		"| tenant | count | mean | p50 | p95 | p99 |",
		"## Labeled counter: jobs.submitted",
		"## Labeled counter: jobs.finished",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q in:\n%s", want, out)
		}
	}
}

// TestInstrumentationInert is the metamorphic acceptance suite: per-job
// counts and the whole-batch engine statistics must be identical with every
// new instrumentation surface enabled vs all of it disabled.
func TestInstrumentationInert(t *testing.T) {
	g := graph.ChungLu(200, 1200, 2.3, 3)
	run := func(instrumented bool) []Result {
		var tracer *obs.Tracer
		var elog *obs.EventLog
		if instrumented {
			tracer = obs.NewTracer(nil, 0)
			elog = obs.NewEventLog(0)
		}
		s, _, ids := obsScenario(t, g, tracer, elog)
		defer closeServer(t, s)
		out := make([]Result, 0, len(ids))
		for _, id := range ids {
			res, err := s.Result(id)
			if err != nil || res == nil {
				t.Fatalf("result %s: %v, %v", id, res, err)
			}
			out = append(out, *res)
		}
		return out
	}
	on, off := run(true), run(false)
	if !reflect.DeepEqual(on, off) {
		t.Errorf("instrumentation changed results:\n on: %+v\noff: %+v", on, off)
	}
	for i, r := range on {
		if r.Count <= 0 {
			t.Errorf("job %d counted %d patterns, want > 0", i, r.Count)
		}
	}
}

func TestDebugJobsEndpoint(t *testing.T) {
	g := graph.ChungLu(200, 1200, 2.3, 3)
	elog := obs.NewEventLog(0)
	s, reg, ids := obsScenario(t, g, nil, elog)
	defer closeServer(t, s)

	mux := http.NewServeMux()
	s.Routes(mux)
	srv := httptest.NewServer(mux)
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	var doc DebugDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Tenants) != 3 {
		t.Fatalf("tenants = %v, want alpha/beta/gamma", doc.Tenants)
	}
	alpha := doc.Tenants["alpha"]
	if alpha.Submitted != 2 || alpha.Done != 2 {
		t.Errorf("alpha summary %+v, want submitted=2 done=2", alpha)
	}
	if alpha.QueueWaitP50 <= 0 || alpha.RunP50 <= 0 {
		t.Errorf("alpha percentiles unset: %+v", alpha)
	}
	// Every transition of every job is in the tail: 5 submits + per-job
	// compiling/running/done.
	if len(doc.Events) != 4*len(ids) {
		t.Errorf("event tail has %d records, want %d", len(doc.Events), 4*len(ids))
	}
	if doc.EventsDropped != 0 {
		t.Errorf("dropped = %d, want 0", doc.EventsDropped)
	}
	terminal := doc.Events[len(doc.Events)-1]
	if terminal.State != string(StateDone) || terminal.Fields["matches"] < 0 || terminal.Batch == "" {
		t.Errorf("terminal record malformed: %+v", terminal)
	}

	// The per-tenant metric families carry the same totals.
	if v := reg.Get(MetricQueued); v != int64(len(ids)) {
		t.Errorf("%s = %d, want %d", MetricQueued, v, len(ids))
	}
	var mdoc struct {
		LabeledCounters map[string]obs.LabeledCounterSnapshot `json:"labeled_counters"`
	}
	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(buf.Bytes(), &mdoc); err != nil {
		t.Fatal(err)
	}
	sub := mdoc.LabeledCounters[MetricSubmitted].Values
	if sub["alpha"] != 2 || sub["beta"] != 2 || sub["gamma"] != 1 {
		t.Errorf("%s values = %v", MetricSubmitted, sub)
	}
}

func TestStatusTimestamps(t *testing.T) {
	g := graph.ChungLu(120, 600, 2.3, 5)
	s := New(Config{
		Clock:       obs.NewVirtualClock(),
		Graphs:      map[string]graph.Store{"g": g},
		StartPaused: true,
	})
	defer closeServer(t, s)

	done := submitNamed(t, s, "alice", "g", "triangle", EngineOptions{Workers: 1})
	victim := submitNamed(t, s, "bob", "g", "4-path", EngineOptions{Workers: 1})

	// Cancelled while queued: its whole life is queue wait, no run time.
	if _, err := s.Cancel(victim); err != nil {
		t.Fatal(err)
	}
	vs := waitDone(t, s, victim)
	if vs.State != StateCancelled {
		t.Fatalf("victim state %s, want cancelled", vs.State)
	}
	if vs.SubmittedAt <= 0 || vs.FinishedAt <= vs.SubmittedAt {
		t.Errorf("victim timestamps: %+v", vs)
	}
	if vs.QueueWaitMS != vs.FinishedAt-vs.SubmittedAt || vs.RunMS != 0 || vs.StartedAt != 0 {
		t.Errorf("victim derived intervals wrong: %+v", vs)
	}

	s.Resume()
	st := waitDone(t, s, done)
	if st.State != StateDone {
		t.Fatalf("state %s (%s), want done", st.State, st.Error)
	}
	if !(st.SubmittedAt > 0 && st.StartedAt > st.SubmittedAt && st.FinishedAt > st.StartedAt) {
		t.Errorf("timestamps not ordered: %+v", st)
	}
	if st.QueueWaitMS <= 0 || st.QueueWaitMS >= st.StartedAt-st.SubmittedAt+1 {
		t.Errorf("queue wait %d out of range: %+v", st.QueueWaitMS, st)
	}
	if st.RunMS != st.FinishedAt-st.StartedAt {
		t.Errorf("run_ms %d != finished-started: %+v", st.RunMS, st)
	}
}
