package jobs

// Path-based graph resolution: jobs referencing graphs by path under the
// configured root, across the heap / mmap / sharded backends, plus the
// failure path (a bad path fails the batch cleanly) and cache reuse.

import (
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
)

func writeGraphDir(t *testing.T) (string, *graph.Graph) {
	t.Helper()
	g := graph.ChungLu(200, 1200, 2.3, 3)
	dir := t.TempDir()
	if err := graph.SaveBinary(filepath.Join(dir, "g.bin"), g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteSharded(filepath.Join(dir, "shards"), g, 2); err != nil {
		t.Fatal(err)
	}
	return dir, g
}

func submitPath(t *testing.T, s *Server, path string, mmap bool) string {
	t.Helper()
	pat, _ := pattern.ByName("triangle")
	id, err := s.Submit(SubmitRequest{
		Tenant:  "A",
		Graph:   GraphRef{Path: path, Mmap: mmap},
		Pattern: PatternRef{Name: "triangle"},
		Options: EngineOptions{Workers: 2, Kernel: "auto", Aux: "auto"},
	}, pat)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func TestGraphPathBackends(t *testing.T) {
	dir, g := writeGraphDir(t)
	want := mineIndividually(t, g, "triangle", "auto", 2)
	s := New(Config{GraphDir: dir})
	defer closeServer(t, s)
	if s.Registry() == nil {
		t.Fatal("Registry() returned nil")
	}

	for _, ref := range []struct {
		path string
		mmap bool
	}{
		{"g.bin", false},
		{"g.bin", true},
		{"shards", false},
	} {
		id := submitPath(t, s, ref.path, ref.mmap)
		st := waitDone(t, s, id)
		if st.State != StateDone {
			t.Fatalf("path %q mmap=%v: state %s (%s)", ref.path, ref.mmap, st.State, st.Error)
		}
		res, _ := s.Result(id)
		if res.Count != want {
			t.Fatalf("path %q mmap=%v: count %d, want %d", ref.path, ref.mmap, res.Count, want)
		}
	}
}

// TestGraphPathCacheAndBatching: two co-queued jobs with the same path ref
// resolve to one cached store and batch together.
func TestGraphPathCacheAndBatching(t *testing.T) {
	dir, _ := writeGraphDir(t)
	s := New(Config{GraphDir: dir, StartPaused: true})
	defer closeServer(t, s)

	pat1, _ := pattern.ByName("diamond")
	pat2, _ := pattern.ByName("tailed-triangle")
	opts := EngineOptions{Workers: 2, Kernel: "auto", Aux: "auto"}
	id1, err := s.Submit(SubmitRequest{Tenant: "A", Graph: GraphRef{Path: "g.bin"}, Pattern: PatternRef{Name: "diamond"}, Options: opts}, pat1)
	if err != nil {
		t.Fatal(err)
	}
	id2, err := s.Submit(SubmitRequest{Tenant: "B", Graph: GraphRef{Path: "g.bin"}, Pattern: PatternRef{Name: "tailed-triangle"}, Options: opts}, pat2)
	if err != nil {
		t.Fatal(err)
	}
	s.Resume()
	for _, id := range []string{id1, id2} {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: %s (%s)", id, st.State, st.Error)
		}
		res, _ := s.Result(id)
		if res.BatchWidth != 2 {
			t.Fatalf("job %s: batch width %d, want 2 (same path ref must share a batch)", id, res.BatchWidth)
		}
	}
	s.gmu.Lock()
	cached := len(s.graphs)
	s.gmu.Unlock()
	if cached != 1 {
		t.Fatalf("graph cache holds %d entries, want 1", cached)
	}
}

// TestGraphPathOpenFailureFailsJob: a path that passes submit-time
// confinement but doesn't exist must fail the job at dispatch, cleanly.
func TestGraphPathOpenFailureFailsJob(t *testing.T) {
	dir, _ := writeGraphDir(t)
	reg := obs.NewRegistry(nil)
	s := New(Config{Registry: reg, GraphDir: dir})
	defer closeServer(t, s)

	id := submitPath(t, s, "missing.bin", false)
	st := waitDone(t, s, id)
	if st.State != StateFailed {
		t.Fatalf("state = %s, want failed", st.State)
	}
	if st.Error == "" {
		t.Fatal("failed job carries no error message")
	}
	if res, _ := s.Result(id); res != nil {
		t.Fatalf("failed-before-run job should have no result, got %+v", res)
	}
	if v := reg.Get(MetricFailed); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricFailed, v)
	}
}
