package jobs

// The bounded, tenant-fair job queue: one FIFO per tenant, drained by deficit
// round-robin (DRR). Every job costs one unit; each tenant in turn receives
// `quantum` units of deficit and dequeues until its deficit or its FIFO is
// exhausted, so a tenant flooding the queue cannot starve the others — with T
// active tenants and quantum Q, any tenant's head job is dequeued within
// (T-1)·Q + 1 pops of reaching the front of its FIFO. The schedule is a
// deterministic function of the arrival order (ring order is first-submission
// order, ties never consult map iteration), which is what lets the fairness
// test assert exact dequeue positions.
//
// The queue is not goroutine-safe: the Server serializes access under its
// mutex.

type drrQueue struct {
	max     int // bound on total queued jobs
	quantum int // dequeues granted per tenant per round

	tenants map[string]*tenantQ
	ring    []*tenantQ // first-submission order; never reordered
	cur     int        // ring index of the tenant currently being served
	deficit int        // remaining dequeues for ring[cur] this round
	size    int
}

type tenantQ struct {
	name string
	fifo []*Job
}

func newDRRQueue(max, quantum int) *drrQueue {
	if quantum < 1 {
		quantum = 1
	}
	return &drrQueue{max: max, quantum: quantum, tenants: map[string]*tenantQ{}, deficit: quantum}
}

// push appends j to its tenant's FIFO, registering the tenant at the back of
// the ring on first contact. Returns ErrQueueFull at the bound.
func (q *drrQueue) push(j *Job) error {
	if q.size >= q.max {
		return ErrQueueFull
	}
	t := q.tenants[j.tenant]
	if t == nil {
		t = &tenantQ{name: j.tenant}
		q.tenants[j.tenant] = t
		q.ring = append(q.ring, t)
	}
	t.fifo = append(t.fifo, j)
	q.size++
	return nil
}

// pop removes and returns the next job under the DRR schedule, or nil when
// the queue is empty. A tenant whose FIFO empties forfeits its remaining
// deficit (no banking while idle — the classic DRR rule).
func (q *drrQueue) pop() *Job {
	if q.size == 0 {
		return nil
	}
	for {
		t := q.ring[q.cur]
		if q.deficit > 0 && len(t.fifo) > 0 {
			j := t.fifo[0]
			t.fifo[0] = nil // release the reference
			t.fifo = t.fifo[1:]
			q.deficit--
			q.size--
			return j
		}
		q.cur = (q.cur + 1) % len(q.ring)
		q.deficit = q.quantum
	}
}

// remove deletes j from its tenant's FIFO (a queued-job cancellation).
// Reports whether the job was present.
func (q *drrQueue) remove(j *Job) bool {
	t := q.tenants[j.tenant]
	if t == nil {
		return false
	}
	for i, x := range t.fifo {
		if x == j {
			t.fifo = append(t.fifo[:i], t.fifo[i+1:]...)
			q.size--
			return true
		}
	}
	return false
}

// collect removes and returns, in ring-then-FIFO order, every queued job the
// callback accepts. The batch gatherer uses it to pull same-graph compatible
// jobs out of the queue; accepted jobs skip the DRR schedule entirely (they
// ride along with the batch being dispatched, which only ever shortens their
// wait).
func (q *drrQueue) collect(accept func(*Job) bool) []*Job {
	var out []*Job
	for _, t := range q.ring {
		kept := t.fifo[:0]
		for _, j := range t.fifo {
			if accept(j) {
				out = append(out, j)
				q.size--
			} else {
				kept = append(kept, j)
			}
		}
		for i := len(kept); i < len(t.fifo); i++ {
			t.fifo[i] = nil
		}
		t.fifo = kept
	}
	return out
}
