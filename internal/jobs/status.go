package jobs

// Read-side accessors: point-in-time job status documents (with live
// progress for running batches, fed by the batch's serve.Progress) and
// result retrieval. These are what the HTTP polling handlers serialize.

import "repro/internal/serve"

// Status is a job's poll document.
type Status struct {
	ID      string `json:"id"`
	Tenant  string `json:"tenant"`
	Graph   string `json:"graph"`
	Pattern string `json:"pattern"`
	State   State  `json:"state"`
	Error   string `json:"error,omitempty"`

	// BatchWidth is the number of jobs sharing this job's engine run
	// (0 until dispatched, 1 for an unbatched run).
	BatchWidth int `json:"batch_width,omitempty"`

	// Lifecycle timestamps in the server clock's units (wall milliseconds
	// in production, virtual ticks under a test clock); zero means the job
	// has not reached that point. SubmittedAt is set on accept, StartedAt
	// when the batch's engine run begins, FinishedAt on finalization.
	SubmittedAt int64 `json:"submitted_at,omitempty"`
	StartedAt   int64 `json:"started_at,omitempty"`
	FinishedAt  int64 `json:"finished_at,omitempty"`

	// QueueWaitMS is submit → dispatch (or submit → finalize for jobs that
	// died queued); RunMS is engine start → finalize. Both appear once the
	// interval they measure has closed.
	QueueWaitMS int64 `json:"queue_wait_ms,omitempty"`
	RunMS       int64 `json:"run_ms,omitempty"`

	// Progress is the live engine snapshot while the batch is compiling or
	// running (task totals appear once the engine is built). Nil otherwise.
	Progress *serve.Snapshot `json:"progress,omitempty"`
}

func (s *Server) statusLocked(j *Job) Status {
	st := Status{
		ID:          j.id,
		Tenant:      j.tenant,
		Graph:       j.gref.Display(),
		Pattern:     j.pat.Name(),
		State:       j.state,
		Error:       j.errMsg,
		SubmittedAt: j.submittedAt,
		StartedAt:   j.startedAt,
		FinishedAt:  j.finishedAt,
	}
	switch {
	case j.dispatchedAt > 0:
		st.QueueWaitMS = j.dispatchedAt - j.submittedAt
	case j.finishedAt > 0: // never dispatched: its whole life was queue wait
		st.QueueWaitMS = j.finishedAt - j.submittedAt
	}
	if j.startedAt > 0 && j.finishedAt > 0 {
		st.RunMS = j.finishedAt - j.startedAt
	}
	if j.batch != nil {
		st.BatchWidth = j.batch.width
		if !j.state.Terminal() {
			snap := j.batch.prog.Snapshot()
			st.Progress = &snap
		}
	} else if j.res != nil {
		st.BatchWidth = j.res.BatchWidth
	}
	return st
}

// Status returns the job's current status document.
func (s *Server) Status(id string) (Status, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return Status{}, ErrNotFound
	}
	return s.statusLocked(j), nil
}

// List returns every known job's status in submission order.
func (s *Server) List() []Status {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Status, 0, len(s.order))
	for _, id := range s.order {
		out = append(out, s.statusLocked(s.jobs[id]))
	}
	return out
}

// Result returns a finished job's result. ErrNotFound for unknown IDs;
// (nil, nil) while the job is still pending; terminal jobs without results
// (cancelled while queued, failed before running) also return (nil, nil) —
// callers distinguish via Status.
func (s *Server) Result(id string) (*Result, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j := s.jobs[id]
	if j == nil {
		return nil, ErrNotFound
	}
	return j.res, nil
}
