package jobs

// The metamorphic headline of the job service: batching is an optimization,
// never a semantics change. For every pair and triple drawn from the
// 4-vertex motif catalog, the counts a batched CompileMulti job returns must
// DeepEqual the counts of the same patterns mined individually on a bare
// engine — across set-kernel policies and worker counts, since neither may
// influence what is counted.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// catalog5 is the 5-motif catalog the suite draws combos from: the 4-vertex
// motifs minus the clique (whose auto plan may take the DAG route, a
// different engine configuration than multi-pattern plans allow).
var catalog5 = []string{"4-path", "4-star", "4-cycle", "tailed-triangle", "diamond"}

func metaGraph() *graph.Graph { return graph.ChungLu(240, 1400, 2.3, 7) }

// mineIndividually runs one pattern on a bare engine with the given knobs.
func mineIndividually(t *testing.T, g graph.Store, name, kernel string, workers int) int64 {
	t.Helper()
	pat, err := pattern.ByName(name)
	if err != nil {
		t.Fatal(err)
	}
	pl, err := plan.Compile(pat, plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	kp, err := core.ParseKernelPolicy(kernel)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := core.NewEngine(g, pl, core.Options{Threads: workers, Kernel: kp})
	if err != nil {
		t.Fatal(err)
	}
	return eng.Mine().Counts[0]
}

// submitCombo submits every pattern of the combo to a paused server, resumes
// it so the dispatcher gathers them into one batch, and returns the counts in
// combo order.
func submitCombo(t *testing.T, s *Server, combo []string, kernel string, workers int) []int64 {
	t.Helper()
	s.Pause()
	ids := make([]string, len(combo))
	for i, name := range combo {
		pat, err := pattern.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		id, err := s.Submit(SubmitRequest{
			Tenant:  "meta",
			Graph:   GraphRef{Name: "g"},
			Pattern: PatternRef{Name: name},
			Options: EngineOptions{Workers: workers, Kernel: kernel, Aux: "auto"},
		}, pat)
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	s.Resume()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	counts := make([]int64, len(ids))
	for i, id := range ids {
		if err := s.Wait(ctx, id); err != nil {
			t.Fatalf("waiting for %s: %v", id, err)
		}
		res, err := s.Result(id)
		if err != nil || res == nil {
			st, _ := s.Status(id)
			t.Fatalf("job %s (%s): state %s, error %q, result err %v", id, combo[i], st.State, st.Error, err)
		}
		if res.BatchWidth != len(combo) {
			t.Fatalf("job %s ran with batch width %d, want the whole combo %d — batching did not engage", id, res.BatchWidth, len(combo))
		}
		counts[i] = res.Count
	}
	return counts
}

// combos returns all size-2 and size-3 combinations of the catalog.
func combos(names []string) [][]string {
	var out [][]string
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			out = append(out, []string{names[i], names[j]})
			for k := j + 1; k < len(names); k++ {
				out = append(out, []string{names[i], names[j], names[k]})
			}
		}
	}
	return out
}

func TestMetamorphicBatchedEqualsIndividual(t *testing.T) {
	g := metaGraph()
	kernels := []string{"auto", "merge"}
	workerCounts := []int{1, 4, 16}
	if testing.Short() {
		kernels = []string{"auto"}
		workerCounts = []int{4}
	}

	// Individual baselines, computed once per (pattern, kernel, workers).
	type baseKey struct {
		name, kernel string
		workers      int
	}
	base := map[baseKey]int64{}
	for _, kern := range kernels {
		for _, w := range workerCounts {
			for _, name := range catalog5 {
				base[baseKey{name, kern, w}] = mineIndividually(t, g, name, kern, w)
			}
		}
	}

	for _, kern := range kernels {
		for _, w := range workerCounts {
			s := New(Config{
				Graphs:         map[string]graph.Store{"g": g},
				StartPaused:    true,
				MaxQueue:       32,
				DefaultWorkers: w,
			})
			for _, combo := range combos(catalog5) {
				got := submitCombo(t, s, combo, kern, w)
				want := make([]int64, len(combo))
				for i, name := range combo {
					want[i] = base[baseKey{name, kern, w}]
				}
				if !reflect.DeepEqual(got, want) {
					t.Errorf("kernel=%s workers=%d combo=%v: batched counts %v != individual counts %v",
						kern, w, combo, got, want)
				}
			}
			if err := s.Close(context.Background()); err != nil {
				t.Fatalf("closing server: %v", err)
			}
		}
	}
}
