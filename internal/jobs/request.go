package jobs

// The submit-request surface: the JSON document a tenant POSTs to /jobs and
// the decoder/validator that turns it into a runnable job. ParseSubmit is the
// hardened edge of the service — everything behind it (the queue, the batch
// compiler, the engine) may assume a well-formed request, so the decoder must
// reject malformed patterns, absurd sizes and bad graph references with a
// clean error and never panic (FuzzJobSubmitJSON locks this down).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"unicode"

	"repro/internal/core"
	"repro/internal/pattern"
)

// Request-validation bounds. They are deliberately far above anything a
// legitimate job needs: their only purpose is to turn absurd inputs into
// clean errors before they reach allocation-sized code paths.
const (
	// MaxBodyBytes bounds the submit-request document read off the wire.
	MaxBodyBytes = 1 << 20

	maxTenantLen = 64
	maxNameLen   = 128
	maxEdges     = 256
	maxWorkers   = 1024
	maxSliceLen  = 1 << 20
	maxTimeoutMS = 24 * 60 * 60 * 1000 // one day
)

// GraphRef names the input graph of a job. Exactly one of Name or Path must
// be set: Name selects a graph preregistered with the server (Config.Graphs,
// the `flexminer serve -graph` input is registered as "default"); Path opens
// a file or sharded store directory under the server's graph root
// (Config.GraphDir — path references are rejected when no root is
// configured). Mmap maps a binary CSR path zero-copy instead of loading it
// onto the heap; it is meaningless with Name.
type GraphRef struct {
	Name string `json:"name,omitempty"`
	Path string `json:"path,omitempty"`
	Mmap bool   `json:"mmap,omitempty"`
}

// key is the canonical batching identity: two jobs whose refs share a key
// resolve to the same graph.Store instance.
func (r GraphRef) key() string {
	if r.Name != "" {
		return "name\x00" + r.Name
	}
	k := "path\x00" + r.Path
	if r.Mmap {
		k += "\x00mmap"
	}
	return k
}

// Display renders the ref for status documents.
func (r GraphRef) Display() string {
	if r.Name != "" {
		return r.Name
	}
	return r.Path
}

// PatternRef names the mined pattern: either a catalog Name ("diamond",
// "5-clique", …) or an explicit edge list over Vertices vertices labeled
// 0..Vertices-1. Induced selects vertex-induced matching semantics.
type PatternRef struct {
	Name     string   `json:"name,omitempty"`
	Vertices int      `json:"vertices,omitempty"`
	Edges    [][2]int `json:"edges,omitempty"`
	Induced  bool     `json:"induced,omitempty"`
}

// EngineOptions are the per-job CPU-engine knobs (the CMinerAPI-style
// support/workers surface). The zero value picks server defaults. Two jobs
// batch together only when their normalized options are identical — a merged
// plan runs on one engine, so there is no way to honor two different worker
// counts in one batch.
type EngineOptions struct {
	// Workers is the engine thread count; 0 picks the server default.
	Workers int `json:"workers,omitempty"`
	// Kernel is the set-kernel policy: auto, merge, gallop, bitmap ("" = auto).
	Kernel string `json:"kernel,omitempty"`
	// Aux is the auxiliary-graph pruning mode: off, auto, on ("" = auto).
	Aux string `json:"aux,omitempty"`
	// Slice is the hub-slicing task size (0 auto, -1 off).
	Slice int `json:"slice,omitempty"`
	// TimeoutMS bounds the mining run; on expiry the job is cancelled with
	// partial results. 0 means no limit.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// coreOptions maps the validated knobs onto core.Options (scheduler hooks and
// progress callbacks are layered on by the batch runner).
func (o EngineOptions) coreOptions() (core.Options, error) {
	kernel, err := core.ParseKernelPolicy(o.Kernel)
	if err != nil {
		return core.Options{}, err
	}
	aux, err := core.ParseAuxMode(o.Aux)
	if err != nil {
		return core.Options{}, err
	}
	return core.Options{Threads: o.Workers, SliceElems: o.Slice, Kernel: kernel, AuxGraph: aux}, nil
}

// SubmitRequest is the POST /jobs document.
type SubmitRequest struct {
	// Tenant identifies the submitting tenant for fair scheduling; ""
	// maps to "default".
	Tenant  string        `json:"tenant,omitempty"`
	Graph   GraphRef      `json:"graph"`
	Pattern PatternRef    `json:"pattern"`
	Options EngineOptions `json:"options,omitempty"`
}

// ParseSubmit decodes and validates a submit-request document, returning the
// normalized request (defaults filled in, so equal requests compare equal for
// batching) and the resolved pattern. Every malformed input — bad JSON,
// unknown fields, out-of-range sizes, invalid edges, disconnected patterns,
// contradictory graph references — comes back as an error; ParseSubmit never
// panics (FuzzJobSubmitJSON).
func ParseSubmit(data []byte) (SubmitRequest, *pattern.Pattern, error) {
	var req SubmitRequest
	if len(data) > MaxBodyBytes {
		return req, nil, fmt.Errorf("jobs: request body exceeds %d bytes", MaxBodyBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return req, nil, fmt.Errorf("jobs: bad request: %w", err)
	}
	if dec.More() {
		return req, nil, fmt.Errorf("jobs: trailing data after request document")
	}
	if req.Tenant == "" {
		req.Tenant = "default"
	}
	if err := checkName("tenant", req.Tenant, maxTenantLen); err != nil {
		return req, nil, err
	}
	if err := checkGraphRef(req.Graph); err != nil {
		return req, nil, err
	}
	pat, err := resolvePattern(req.Pattern)
	if err != nil {
		return req, nil, err
	}
	req.Options, err = normalizeOptions(req.Options)
	if err != nil {
		return req, nil, err
	}
	return req, pat, nil
}

// checkName bounds an identifier-ish field: printable, no whitespace beyond
// interior spaces, bounded length.
func checkName(field, s string, max int) error {
	if len(s) > max {
		return fmt.Errorf("jobs: %s longer than %d bytes", field, max)
	}
	for _, r := range s {
		if !unicode.IsPrint(r) || r == '\n' || r == '\r' {
			return fmt.Errorf("jobs: %s contains non-printable characters", field)
		}
	}
	return nil
}

func checkGraphRef(r GraphRef) error {
	switch {
	case r.Name == "" && r.Path == "":
		return fmt.Errorf("jobs: graph reference needs a name or a path")
	case r.Name != "" && r.Path != "":
		return fmt.Errorf("jobs: graph reference cannot have both a name and a path")
	case r.Name != "" && r.Mmap:
		return fmt.Errorf("jobs: mmap applies to path references only")
	case r.Name != "":
		return checkName("graph name", r.Name, maxNameLen)
	default:
		if err := checkName("graph path", r.Path, 4096); err != nil {
			return err
		}
		if strings.ContainsRune(r.Path, 0) {
			return fmt.Errorf("jobs: graph path contains NUL")
		}
		return nil
	}
}

// resolvePattern turns the pattern reference into a *pattern.Pattern,
// validating every bound before touching constructors that panic on misuse.
func resolvePattern(r PatternRef) (*pattern.Pattern, error) {
	var p *pattern.Pattern
	switch {
	case r.Name != "" && (r.Vertices != 0 || len(r.Edges) > 0):
		return nil, fmt.Errorf("jobs: pattern reference cannot have both a name and an edge list")
	case r.Name != "":
		if err := checkName("pattern name", r.Name, maxNameLen); err != nil {
			return nil, err
		}
		q, err := pattern.ByName(r.Name)
		if err != nil {
			return nil, fmt.Errorf("jobs: %w", err)
		}
		p = q
	default:
		k := r.Vertices
		if k < 2 || k > pattern.MaxVertices {
			return nil, fmt.Errorf("jobs: pattern vertices %d out of range [2,%d]", k, pattern.MaxVertices)
		}
		if len(r.Edges) == 0 {
			return nil, fmt.Errorf("jobs: pattern edge list is empty")
		}
		if len(r.Edges) > maxEdges {
			return nil, fmt.Errorf("jobs: pattern has %d edges, limit %d", len(r.Edges), maxEdges)
		}
		for _, e := range r.Edges {
			u, v := e[0], e[1]
			if u < 0 || v < 0 || u >= k || v >= k {
				return nil, fmt.Errorf("jobs: pattern edge (%d,%d) out of range for %d vertices", u, v, k)
			}
			if u == v {
				return nil, fmt.Errorf("jobs: pattern edge (%d,%d) is a self loop", u, v)
			}
		}
		p = pattern.FromEdges(k, r.Edges)
	}
	// The compiler would reject these too, but failing at submit time gives
	// the tenant a 400 instead of a failed job.
	if p.Size() < 2 {
		return nil, fmt.Errorf("jobs: pattern %s too small to mine", p.Name())
	}
	if !p.IsConnected() {
		return nil, fmt.Errorf("jobs: pattern %s is disconnected", p.Name())
	}
	return p, nil
}

// normalizeOptions fills defaults and bounds every knob, so two requests that
// mean the same thing are bit-identical (the batching compatibility test is a
// plain struct comparison).
func normalizeOptions(o EngineOptions) (EngineOptions, error) {
	if o.Workers < 0 || o.Workers > maxWorkers {
		return o, fmt.Errorf("jobs: workers %d out of range [0,%d]", o.Workers, maxWorkers)
	}
	if o.Slice < -1 || o.Slice > maxSliceLen {
		return o, fmt.Errorf("jobs: slice %d out of range [-1,%d]", o.Slice, maxSliceLen)
	}
	if o.TimeoutMS < 0 || o.TimeoutMS > maxTimeoutMS {
		return o, fmt.Errorf("jobs: timeout_ms %d out of range [0,%d]", o.TimeoutMS, maxTimeoutMS)
	}
	if o.Kernel == "" {
		o.Kernel = "auto"
	}
	if o.Aux == "" {
		o.Aux = "auto"
	}
	if _, err := core.ParseKernelPolicy(o.Kernel); err != nil {
		return o, fmt.Errorf("jobs: %w", err)
	}
	if _, err := core.ParseAuxMode(o.Aux); err != nil {
		return o, fmt.Errorf("jobs: %w", err)
	}
	return o, nil
}
