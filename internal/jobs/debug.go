package jobs

// The /debug/jobs endpoint: one JSON document with a per-tenant summary
// (outcome counts plus queue-wait/run-time percentiles read from the shared
// histogram families) and the live tail of the structured event log. The
// operator's first stop when a tenant reports slow jobs — it answers "is the
// time going to queueing or to running, and for whom" without scraping and
// re-aggregating /metrics.

import (
	"net/http"

	"repro/internal/obs"
)

// DebugTailLimit caps the event-log tail served by /debug/jobs.
const DebugTailLimit = 256

// TenantSummary is one tenant's row of the /debug/jobs document.
type TenantSummary struct {
	Submitted int64 `json:"submitted"`
	Queued    int64 `json:"queued"`
	Compiling int64 `json:"compiling"`
	Running   int64 `json:"running"`
	Done      int64 `json:"done"`
	Failed    int64 `json:"failed"`
	Cancelled int64 `json:"cancelled"`

	// Percentile estimates (bucket upper bounds, server clock units) from
	// the per-tenant latency histograms; zero until the tenant has a
	// finalized job.
	QueueWaitP50 int64 `json:"queue_wait_ms_p50"`
	QueueWaitP95 int64 `json:"queue_wait_ms_p95"`
	RunP50       int64 `json:"run_ms_p50"`
	RunP95       int64 `json:"run_ms_p95"`
}

// DebugDoc is the /debug/jobs response body. Maps marshal with sorted keys,
// so the document layout is deterministic for a fixed server state.
type DebugDoc struct {
	Tenants       map[string]TenantSummary `json:"tenants"`
	Events        []obs.LogRecord          `json:"events"`
	EventsDropped int64                    `json:"events_dropped"`
}

// DebugSummary assembles the /debug/jobs document from the job table, the
// latency histograms and the event-log tail (at most tail records; tail <= 0
// selects DebugTailLimit).
func (s *Server) DebugSummary(tail int) DebugDoc {
	if tail <= 0 {
		tail = DebugTailLimit
	}
	doc := DebugDoc{Tenants: map[string]TenantSummary{}}

	s.mu.Lock()
	for _, id := range s.order {
		j := s.jobs[id]
		t := doc.Tenants[j.tenant]
		t.Submitted++
		switch j.state {
		case StateQueued:
			t.Queued++
		case StateCompiling:
			t.Compiling++
		case StateRunning:
			t.Running++
		case StateDone:
			t.Done++
		case StateFailed:
			t.Failed++
		case StateCancelled:
			t.Cancelled++
		}
		doc.Tenants[j.tenant] = t
	}
	s.mu.Unlock()

	qw, run := s.hQueueWait.Snapshot(), s.hRun.Snapshot()
	for tenant, t := range doc.Tenants {
		// A tenant past the label cap reads the overflow series — shared
		// percentiles, but still an answer.
		qs, ok := qw.Series[tenant]
		if !ok {
			qs = qw.Series[obs.OverflowLabel]
		}
		rs, ok := run.Series[tenant]
		if !ok {
			rs = run.Series[obs.OverflowLabel]
		}
		t.QueueWaitP50 = obs.HistogramQuantile(qw.Bounds, qs, 0.50)
		t.QueueWaitP95 = obs.HistogramQuantile(qw.Bounds, qs, 0.95)
		t.RunP50 = obs.HistogramQuantile(run.Bounds, rs, 0.50)
		t.RunP95 = obs.HistogramQuantile(run.Bounds, rs, 0.95)
		doc.Tenants[tenant] = t
	}

	doc.Events = s.elog.Tail(tail)
	if doc.Events == nil {
		doc.Events = []obs.LogRecord{} // serve [], not null, with no log
	}
	doc.EventsDropped = s.elog.Dropped()
	return doc
}

func (s *Server) handleDebug(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.DebugSummary(DebugTailLimit))
}
