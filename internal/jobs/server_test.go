package jobs

// Server-level lifecycle tests: dispatch, end-to-end tenant fairness,
// cancellation semantics (queued, mid-run, one-of-a-batch), drain behavior,
// and the jobs.* counters. These run under -race in CI.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/pattern"
)

func submitNamed(t *testing.T, s *Server, tenant, graphName, patName string, opts EngineOptions) string {
	t.Helper()
	pat, err := pattern.ByName(patName)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Kernel == "" {
		opts.Kernel = "auto"
	}
	if opts.Aux == "" {
		opts.Aux = "auto"
	}
	id, err := s.Submit(SubmitRequest{
		Tenant:  tenant,
		Graph:   GraphRef{Name: graphName},
		Pattern: PatternRef{Name: patName},
		Options: opts,
	}, pat)
	if err != nil {
		t.Fatal(err)
	}
	return id
}

func waitDone(t *testing.T, s *Server, id string) Status {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := s.Wait(ctx, id); err != nil {
		t.Fatalf("waiting for %s: %v", id, err)
	}
	st, err := s.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func closeServer(t *testing.T, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("closing server: %v", err)
	}
}

func TestJobLifecycleSingle(t *testing.T) {
	g := graph.ChungLu(200, 1200, 2.3, 3)
	reg := obs.NewRegistry(nil)
	s := New(Config{Registry: reg, Graphs: map[string]graph.Store{"g": g}})
	defer closeServer(t, s)

	id := submitNamed(t, s, "alice", "g", "triangle", EngineOptions{Workers: 2})
	st := waitDone(t, s, id)
	if st.State != StateDone {
		t.Fatalf("state = %s (%s), want done", st.State, st.Error)
	}
	res, err := s.Result(id)
	if err != nil || res == nil {
		t.Fatalf("result: %v, %v", res, err)
	}
	if res.Count <= 0 || res.Partial || res.BatchWidth != 1 {
		t.Fatalf("unexpected result %+v", res)
	}
	if got := mineIndividually(t, g, "triangle", "auto", 2); res.Count != got {
		t.Fatalf("job count %d != direct engine count %d", res.Count, got)
	}
	if v := reg.Get(MetricCompleted); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricCompleted, v)
	}
	if v := reg.Get(MetricQueued); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricQueued, v)
	}
}

// TestTenantFairnessEndToEnd is the fairness acceptance criterion at the
// server level: tenant A floods the queue with 20 jobs before tenant B's
// single job arrives; with batching disabled (MaxBatch 1) and one batch in
// flight, completion order equals DRR dequeue order, so B's job MUST be the
// second job to finish — deterministically, not probabilistically.
func TestTenantFairnessEndToEnd(t *testing.T) {
	g := graph.ChungLu(120, 600, 2.3, 5)
	var mu sync.Mutex
	var doneOrder []string
	s := New(Config{
		Graphs:      map[string]graph.Store{"g": g},
		MaxQueue:    64,
		MaxBatch:    1, // isolate fairness from batching
		StartPaused: true,
		OnTransition: func(id string, st State) {
			if st == StateDone {
				mu.Lock()
				doneOrder = append(doneOrder, id)
				mu.Unlock()
			}
		},
	})
	defer closeServer(t, s)

	var aIDs []string
	for i := 0; i < 20; i++ {
		aIDs = append(aIDs, submitNamed(t, s, "A", "g", "triangle", EngineOptions{Workers: 1}))
	}
	bID := submitNamed(t, s, "B", "g", "wedge", EngineOptions{Workers: 1})
	s.Resume()

	for _, id := range append(append([]string{}, aIDs...), bID) {
		if st := waitDone(t, s, id); st.State != StateDone {
			t.Fatalf("job %s: state %s (%s)", id, st.State, st.Error)
		}
	}
	mu.Lock()
	defer mu.Unlock()
	if len(doneOrder) != 21 {
		t.Fatalf("completions = %d, want 21", len(doneOrder))
	}
	// DRR with quantum 1: A's first job, then B's, then A's backlog.
	if doneOrder[0] != aIDs[0] || doneOrder[1] != bID {
		t.Fatalf("completion order %v: tenant B's job finished at position %d, want 2 (after exactly one A job)",
			doneOrder[:3], indexOf(doneOrder, bID)+1)
	}
}

func indexOf(s []string, x string) int {
	for i, v := range s {
		if v == x {
			return i
		}
	}
	return -1
}

func TestCancelQueuedJob(t *testing.T) {
	g := graph.ChungLu(100, 500, 2.3, 2)
	reg := obs.NewRegistry(nil)
	s := New(Config{Registry: reg, Graphs: map[string]graph.Store{"g": g}, StartPaused: true})
	defer closeServer(t, s)

	id := submitNamed(t, s, "A", "g", "triangle", EngineOptions{})
	st, err := s.Cancel(id)
	if err != nil || st != StateCancelled {
		t.Fatalf("cancel: state %s, err %v", st, err)
	}
	res, err := s.Result(id)
	if err != nil || res != nil {
		t.Fatalf("queued-cancelled job should have no result, got %+v, %v", res, err)
	}
	if v := reg.Get(MetricCancelled); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricCancelled, v)
	}
	// Cancelling a terminal job is a no-op.
	if st, err := s.Cancel(id); err != nil || st != StateCancelled {
		t.Fatalf("re-cancel: %s, %v", st, err)
	}
	if _, err := s.Cancel("job-999"); err != ErrNotFound {
		t.Fatalf("cancel of unknown job: %v, want ErrNotFound", err)
	}
}

// TestCancelMidRunReturnsPartials cancels a deliberately heavy job once the
// engine is running and asserts the cancelled state carries a partial result
// (MineContext returns the counts accumulated before cancellation).
func TestCancelMidRunReturnsPartials(t *testing.T) {
	// ~7s of single-thread work if left alone — cancelled almost immediately.
	g := graph.ChungLu(1000, 12000, 2.3, 13)
	running := make(chan string, 4)
	s := New(Config{
		Graphs: map[string]graph.Store{"big": g},
		OnTransition: func(id string, st State) {
			if st == StateRunning {
				running <- id
			}
		},
	})
	defer closeServer(t, s)

	id := submitNamed(t, s, "A", "big", "house", EngineOptions{Workers: 1})
	select {
	case <-running:
	case <-time.After(30 * time.Second):
		t.Fatal("job never reached running")
	}
	if st, err := s.Cancel(id); err != nil || st.Terminal() && st != StateCancelled {
		t.Fatalf("cancel: state %s, err %v", st, err)
	}
	st := waitDone(t, s, id)
	if st.State != StateCancelled {
		t.Fatalf("state after mid-run cancel = %s (%s), want cancelled", st.State, st.Error)
	}
	res, err := s.Result(id)
	if err != nil || res == nil {
		t.Fatalf("mid-run cancel must keep partial results, got %v, %v", res, err)
	}
	if !res.Partial {
		t.Fatal("result not marked partial")
	}
}

// TestCancelOneOfBatch cancels one member of a two-job batch and asserts the
// other member still completes with its full count.
func TestCancelOneOfBatch(t *testing.T) {
	// Big enough (~100ms of mining) that the cancel reliably lands mid-run.
	g := graph.ChungLu(4000, 48000, 2.3, 13)
	running := make(chan string, 8)
	s := New(Config{
		Graphs:      map[string]graph.Store{"g": g},
		StartPaused: true,
		OnTransition: func(id string, st State) {
			if st == StateRunning {
				running <- id
			}
		},
	})
	defer closeServer(t, s)

	opts := EngineOptions{Workers: 1}
	idA := submitNamed(t, s, "A", "g", "diamond", opts)
	idB := submitNamed(t, s, "B", "g", "tailed-triangle", opts)
	s.Resume()
	select {
	case <-running:
	case <-time.After(30 * time.Second):
		t.Fatal("batch never reached running")
	}
	if _, err := s.Cancel(idA); err != nil {
		t.Fatal(err)
	}
	stA := waitDone(t, s, idA)
	if stA.State != StateCancelled {
		t.Fatalf("cancelled member state = %s, want cancelled", stA.State)
	}
	stB := waitDone(t, s, idB)
	if stB.State != StateDone {
		t.Fatalf("surviving member state = %s (%s), want done", stB.State, stB.Error)
	}
	resB, err := s.Result(idB)
	if err != nil || resB == nil {
		t.Fatalf("surviving member result: %v, %v", resB, err)
	}
	if resB.Partial || resB.BatchWidth != 2 {
		t.Fatalf("surviving member result %+v: want full (non-partial) count from a width-2 batch", resB)
	}
	if want := mineIndividually(t, g, "tailed-triangle", "auto", 1); resB.Count != want {
		t.Fatalf("surviving member count %d != individual count %d", resB.Count, want)
	}
}

// TestDrainWaitsForRunningJobs: Drain must let the in-flight batch finish
// (done, full result), cancel everything still queued, and reject new
// submissions.
func TestDrainWaitsForRunningJobs(t *testing.T) {
	g := graph.ChungLu(400, 3200, 2.3, 9)
	running := make(chan string, 8)
	s := New(Config{
		Graphs:   map[string]graph.Store{"g": g},
		MaxBatch: 1,
		OnTransition: func(id string, st State) {
			if st == StateRunning {
				running <- id
			}
		},
	})

	idRun := submitNamed(t, s, "A", "g", "house", EngineOptions{Workers: 2})
	select {
	case <-running:
	case <-time.After(30 * time.Second):
		t.Fatal("first job never started")
	}
	idQueued := submitNamed(t, s, "A", "g", "triangle", EngineOptions{Workers: 2})

	ctx, cancel := context.WithTimeout(context.Background(), 120*time.Second)
	defer cancel()
	if err := s.Drain(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}

	if st, _ := s.Status(idRun); st.State != StateDone {
		t.Fatalf("running job after drain = %s (%s), want done", st.State, st.Error)
	}
	res, _ := s.Result(idRun)
	if res == nil || res.Partial {
		t.Fatalf("drained job result %+v, want full result", res)
	}
	if st, _ := s.Status(idQueued); st.State != StateCancelled {
		t.Fatalf("queued job after drain = %s, want cancelled", st.State)
	}
	pat, _ := pattern.ByName("triangle")
	if _, err := s.Submit(SubmitRequest{Tenant: "A", Graph: GraphRef{Name: "g"}, Pattern: PatternRef{Name: "triangle"}, Options: EngineOptions{Kernel: "auto", Aux: "auto"}}, pat); err != ErrClosed {
		t.Fatalf("submit after drain: %v, want ErrClosed", err)
	}
	closeServer(t, s)
}

// TestDrainDeadlineCancelsRunning: when the drain context expires first, the
// running engines are cancelled and unwind with partial results.
func TestDrainDeadlineCancelsRunning(t *testing.T) {
	g := graph.ChungLu(1000, 12000, 2.3, 13) // ~7s single-thread if left alone
	running := make(chan string, 4)
	s := New(Config{
		Graphs: map[string]graph.Store{"g": g},
		OnTransition: func(id string, st State) {
			if st == StateRunning {
				running <- id
			}
		},
	})
	id := submitNamed(t, s, "A", "g", "house", EngineOptions{Workers: 1})
	select {
	case <-running:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := s.Drain(ctx); err != context.DeadlineExceeded {
		t.Fatalf("drain past deadline: %v, want DeadlineExceeded", err)
	}
	if st, _ := s.Status(id); st.State != StateCancelled {
		t.Fatalf("job after deadline drain = %s, want cancelled", st.State)
	}
	res, _ := s.Result(id)
	if res == nil || !res.Partial {
		t.Fatalf("deadline-drained job result %+v, want partial result", res)
	}
	closeServer(t, s)
}

func TestJobTimeoutCancelsWithPartials(t *testing.T) {
	g := graph.ChungLu(1000, 12000, 2.3, 13)
	s := New(Config{Graphs: map[string]graph.Store{"g": g}})
	defer closeServer(t, s)

	id := submitNamed(t, s, "A", "g", "house", EngineOptions{Workers: 1, TimeoutMS: 100})
	st := waitDone(t, s, id)
	if st.State != StateCancelled {
		t.Fatalf("timed-out job state = %s (%s), want cancelled", st.State, st.Error)
	}
	res, _ := s.Result(id)
	if res == nil || !res.Partial {
		t.Fatalf("timed-out job result %+v, want partial", res)
	}
}

func TestSubmitValidation(t *testing.T) {
	g := graph.ChungLu(50, 200, 2.3, 1)
	s := New(Config{Graphs: map[string]graph.Store{"g": g}, StartPaused: true})
	defer closeServer(t, s)

	pat, _ := pattern.ByName("triangle")
	cases := []SubmitRequest{
		{Tenant: "A", Graph: GraphRef{Name: "nope"}, Pattern: PatternRef{Name: "triangle"}},  // unknown named graph
		{Tenant: "A", Graph: GraphRef{Path: "x.bin"}, Pattern: PatternRef{Name: "triangle"}}, // path refs disabled
	}
	for _, req := range cases {
		req.Options = EngineOptions{Kernel: "auto", Aux: "auto"}
		if _, err := s.Submit(req, pat); err == nil {
			t.Fatalf("submit %+v: expected error", req)
		}
	}
}

func TestGraphPathConfinement(t *testing.T) {
	for _, bad := range []string{"/etc/passwd", "../outside.bin", "a/../../b"} {
		if _, err := confinePath("/tmp/graphs", bad); err == nil {
			t.Errorf("confinePath(%q) accepted an escaping path", bad)
		}
	}
	if _, err := confinePath("/tmp/graphs", "sub/ok.bin"); err != nil {
		t.Errorf("confinePath rejected a legitimate path: %v", err)
	}
	if _, err := confinePath("", "ok.bin"); err == nil {
		t.Error("confinePath with no root should reject everything")
	}
}
