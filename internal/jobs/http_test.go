package jobs

// The -race httptest lifecycle suite: the job API end to end over real HTTP —
// concurrent multi-tenant submits with poll-until-done, queue-full
// rejection, cancellation, error statuses, and the admin pause/resume
// endpoints — layered on the serve mux so /metrics integration is exercised
// too.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/serve"
)

func newHTTPServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry(nil)
	}
	s := New(cfg)
	mux := serve.NewMux(cfg.Registry, nil, "flexminer")
	s.Routes(mux)
	ts := httptest.NewServer(mux)
	t.Cleanup(func() {
		ts.Close()
		closeServer(t, s)
	})
	return s, ts
}

func httpJSON(t *testing.T, method, url string, body any) (int, map[string]json.RawMessage) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	doc := map[string]json.RawMessage{}
	if len(data) > 0 {
		if err := json.Unmarshal(data, &doc); err != nil {
			t.Fatalf("%s %s: non-JSON response %q", method, url, data)
		}
	}
	return resp.StatusCode, doc
}

func jsonStr(t *testing.T, doc map[string]json.RawMessage, key string) string {
	t.Helper()
	var s string
	if raw, ok := doc[key]; ok {
		if err := json.Unmarshal(raw, &s); err != nil {
			t.Fatalf("field %q: %v", key, err)
		}
	}
	return s
}

func submitHTTP(t *testing.T, base, tenant, graphName, patName string, workers int) string {
	t.Helper()
	code, doc := httpJSON(t, "POST", base+"/jobs", map[string]any{
		"tenant":  tenant,
		"graph":   map[string]any{"name": graphName},
		"pattern": map[string]any{"name": patName},
		"options": map[string]any{"workers": workers},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: status %d (%s)", code, jsonStr(t, doc, "error"))
	}
	id := jsonStr(t, doc, "id")
	if id == "" {
		t.Fatal("submit returned no job ID")
	}
	return id
}

func pollUntilTerminal(t *testing.T, base, id string) (State, map[string]json.RawMessage) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		code, doc := httpJSON(t, "GET", base+"/jobs/"+id, nil)
		if code != http.StatusOK {
			t.Fatalf("poll %s: status %d", id, code)
		}
		st := State(jsonStr(t, doc, "state"))
		if st.Terminal() {
			return st, doc
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return "", nil
}

func TestHTTPSubmitPollResult(t *testing.T) {
	g := graph.ChungLu(200, 1200, 2.3, 3)
	reg := obs.NewRegistry(nil)
	_, ts := newHTTPServer(t, Config{Registry: reg, Graphs: map[string]graph.Store{"default": g}})

	id := submitHTTP(t, ts.URL, "alice", "default", "triangle", 2)
	st, _ := pollUntilTerminal(t, ts.URL, id)
	if st != StateDone {
		t.Fatalf("state = %s, want done", st)
	}
	code, doc := httpJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if code != http.StatusOK {
		t.Fatalf("result: status %d", code)
	}
	var count int64
	if err := json.Unmarshal(doc["count"], &count); err != nil || count <= 0 {
		t.Fatalf("result count %s: %v", doc["count"], err)
	}
	if want := mineIndividually(t, g, "triangle", "auto", 2); count != want {
		t.Fatalf("HTTP count %d != engine count %d", count, want)
	}

	// The jobs.* counters surface on /metrics through the shared registry.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, metric := range []string{"flexminer_jobs_queued 1", "flexminer_jobs_completed 1"} {
		if !strings.Contains(string(body), metric) {
			t.Fatalf("/metrics missing %q:\n%s", metric, body)
		}
	}
}

// TestHTTPConcurrentTenants hammers the API from many tenants at once — the
// -race headline. Every job must complete with the same correct count.
func TestHTTPConcurrentTenants(t *testing.T) {
	g := graph.ChungLu(150, 900, 2.3, 8)
	_, ts := newHTTPServer(t, Config{
		Graphs:   map[string]graph.Store{"default": g},
		MaxQueue: 256,
	})
	want := mineIndividually(t, g, "triangle", "auto", 2)

	const tenants, perTenant = 4, 5
	var wg sync.WaitGroup
	errs := make(chan error, tenants*perTenant)
	for tn := 0; tn < tenants; tn++ {
		for k := 0; k < perTenant; k++ {
			wg.Add(1)
			go func(tenant string) {
				defer wg.Done()
				code, doc := httpJSON(t, "POST", ts.URL+"/jobs", map[string]any{
					"tenant":  tenant,
					"graph":   map[string]any{"name": "default"},
					"pattern": map[string]any{"name": "triangle"},
					"options": map[string]any{"workers": 2},
				})
				if code != http.StatusAccepted {
					errs <- fmt.Errorf("tenant %s: submit status %d", tenant, code)
					return
				}
				id := jsonStr(t, doc, "id")
				st, _ := pollUntilTerminal(t, ts.URL, id)
				if st != StateDone {
					errs <- fmt.Errorf("tenant %s job %s: state %s", tenant, id, st)
					return
				}
				rcode, rdoc := httpJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
				if rcode != http.StatusOK {
					errs <- fmt.Errorf("tenant %s job %s: result status %d", tenant, id, rcode)
					return
				}
				var count int64
				if err := json.Unmarshal(rdoc["count"], &count); err != nil || count != want {
					errs <- fmt.Errorf("tenant %s job %s: count %d, want %d", tenant, id, count, want)
				}
			}(fmt.Sprintf("tenant-%d", tn))
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestHTTPQueueFullRejection(t *testing.T) {
	g := graph.ChungLu(100, 500, 2.3, 2)
	reg := obs.NewRegistry(nil)
	_, ts := newHTTPServer(t, Config{
		Registry:    reg,
		Graphs:      map[string]graph.Store{"default": g},
		MaxQueue:    2,
		StartPaused: true,
	})
	for i := 0; i < 2; i++ {
		submitHTTP(t, ts.URL, "A", "default", "triangle", 1)
	}
	code, doc := httpJSON(t, "POST", ts.URL+"/jobs", map[string]any{
		"graph":   map[string]any{"name": "default"},
		"pattern": map[string]any{"name": "triangle"},
	})
	if code != http.StatusTooManyRequests {
		t.Fatalf("submit beyond bound: status %d (%s), want 429", code, jsonStr(t, doc, "error"))
	}
	if v := reg.Get(MetricRejectedQueueFull); v != 1 {
		t.Fatalf("%s = %d, want 1", MetricRejectedQueueFull, v)
	}
}

func TestHTTPCancelMidRun(t *testing.T) {
	g := graph.ChungLu(1000, 12000, 2.3, 13) // heavy: ~7s single-thread
	running := make(chan string, 4)
	_, ts := newHTTPServer(t, Config{
		Graphs: map[string]graph.Store{"default": g},
		OnTransition: func(id string, st State) {
			if st == StateRunning {
				running <- id
			}
		},
	})
	code, doc := httpJSON(t, "POST", ts.URL+"/jobs", map[string]any{
		"graph":   map[string]any{"name": "default"},
		"pattern": map[string]any{"name": "house"},
		"options": map[string]any{"workers": 1},
	})
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d", code)
	}
	id := jsonStr(t, doc, "id")
	select {
	case <-running:
	case <-time.After(30 * time.Second):
		t.Fatal("job never started running")
	}
	ccode, _ := httpJSON(t, "POST", ts.URL+"/jobs/"+id+"/cancel", nil)
	if ccode != http.StatusOK {
		t.Fatalf("cancel: status %d", ccode)
	}
	st, _ := pollUntilTerminal(t, ts.URL, id)
	if st != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", st)
	}
	rcode, rdoc := httpJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if rcode != http.StatusOK {
		t.Fatalf("result after mid-run cancel: status %d, want 200 with partial result", rcode)
	}
	var partial bool
	if err := json.Unmarshal(rdoc["partial"], &partial); err != nil || !partial {
		t.Fatalf("partial = %s, want true", rdoc["partial"])
	}
}

func TestHTTPErrorStatuses(t *testing.T) {
	g := graph.ChungLu(100, 500, 2.3, 2)
	_, ts := newHTTPServer(t, Config{Graphs: map[string]graph.Store{"default": g}, StartPaused: true})

	// Unknown job: 404 on status, result, cancel.
	for _, probe := range []struct{ method, path string }{
		{"GET", "/jobs/job-999"},
		{"GET", "/jobs/job-999/result"},
		{"POST", "/jobs/job-999/cancel"},
	} {
		code, _ := httpJSON(t, probe.method, ts.URL+probe.path, nil)
		if code != http.StatusNotFound {
			t.Errorf("%s %s: status %d, want 404", probe.method, probe.path, code)
		}
	}
	// Malformed submit: 400.
	resp, err := http.Post(ts.URL+"/jobs", "application/json", strings.NewReader("{not json"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed submit: status %d, want 400", resp.StatusCode)
	}
	// Result of a pending job: 409.
	id := submitHTTP(t, ts.URL, "A", "default", "triangle", 1)
	code, _ := httpJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if code != http.StatusConflict {
		t.Errorf("result of queued job: status %d, want 409", code)
	}
	// Cancel it (queued → no result document): result then returns 410.
	httpJSON(t, "POST", ts.URL+"/jobs/"+id+"/cancel", nil)
	code, _ = httpJSON(t, "GET", ts.URL+"/jobs/"+id+"/result", nil)
	if code != http.StatusGone {
		t.Errorf("result of queued-cancelled job: status %d, want 410", code)
	}
}

func TestHTTPPauseResumeAndList(t *testing.T) {
	g := graph.ChungLu(150, 900, 2.3, 6)
	_, ts := newHTTPServer(t, Config{Graphs: map[string]graph.Store{"default": g}})

	code, _ := httpJSON(t, "POST", ts.URL+"/jobs/queue/pause", nil)
	if code != http.StatusOK {
		t.Fatalf("pause: %d", code)
	}
	id := submitHTTP(t, ts.URL, "A", "default", "wedge", 1)
	// Paused: the job must still be queued after a grace period.
	time.Sleep(50 * time.Millisecond)
	_, doc := httpJSON(t, "GET", ts.URL+"/jobs/"+id, nil)
	if st := State(jsonStr(t, doc, "state")); st != StateQueued {
		t.Fatalf("state while paused = %s, want queued", st)
	}
	code, _ = httpJSON(t, "POST", ts.URL+"/jobs/queue/resume", nil)
	if code != http.StatusOK {
		t.Fatalf("resume: %d", code)
	}
	if st, _ := pollUntilTerminal(t, ts.URL, id); st != StateDone {
		t.Fatalf("state after resume = %s, want done", st)
	}

	lcode, ldoc := httpJSON(t, "GET", ts.URL+"/jobs", nil)
	if lcode != http.StatusOK {
		t.Fatalf("list: %d", lcode)
	}
	var jobsList []Status
	if err := json.Unmarshal(ldoc["jobs"], &jobsList); err != nil || len(jobsList) != 1 {
		t.Fatalf("list: %s (%v)", ldoc["jobs"], err)
	}
}
