package bench

// Text renderers: each experiment prints rows/series in the same layout the
// paper's tables and figures report.

import (
	"fmt"
	"io"
)

// PrintTable1 renders the dataset statistics.
func PrintTable1(w io.Writer) {
	fmt.Fprintln(w, "Table I: input graphs (synthetic stand-ins; see DESIGN.md)")
	for _, s := range Table1() {
		fmt.Fprintf(w, "  %s\n", s)
	}
}

// PrintTable2 renders the software-baseline comparison.
func PrintTable2(w io.Writer, rows []Table2Row) {
	fmt.Fprintln(w, "Table II: Oblivious (Gramer-style) vs AutoMine vs GraphZero, seconds")
	fmt.Fprintf(w, "  %-6s %-4s %12s %12s %12s %14s %12s\n",
		"app", "g", "oblivious", "automine", "graphzero", "tree(obliv)", "tree(aware)")
	for _, r := range rows {
		obl, tree := "-", "-"
		if r.SearchOblivious > 0 {
			obl = fmt.Sprintf("%.4f", r.ObliviousSec)
			tree = fmt.Sprintf("%d", r.SearchOblivious)
		}
		fmt.Fprintf(w, "  %-6s %-4s %12s %12.4f %12.4f %14s %12d\n",
			r.App, r.Dataset, obl, r.AutoMineSec, r.GraphZeroSec,
			tree, r.SearchAware)
	}
}

// PrintFig7 renders the CPU thread-scaling series.
func PrintFig7(w io.Writer, rows []Fig7Row) {
	fmt.Fprintln(w, "Fig 7: 4-CL software scaling on Or")
	fmt.Fprintf(w, "  %-8s %10s %9s %14s\n", "threads", "seconds", "speedup", "Melem/s")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-8d %10.4f %9.2f %14.1f\n", r.Threads, r.Seconds, r.Speedup, r.MElemPerSec)
	}
}

// PrintFig13 renders the no-c-map speedups over the 20-thread baseline.
func PrintFig13(w io.Writer, rows []Fig13Row) {
	fmt.Fprintln(w, "Fig 13: FlexMiner (no c-map) speedup over GraphZero-20T")
	fmt.Fprintf(w, "  %-10s %-4s %12s", "app", "g", "baseline(s)")
	for _, pe := range Fig13PEs {
		fmt.Fprintf(w, " %8s", fmt.Sprintf("%d-PE", pe))
	}
	fmt.Fprintln(w)
	sums := map[int]float64{}
	n := 0
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-4s %12.4f", r.App, r.Dataset, r.BaselineSec)
		for _, pe := range Fig13PEs {
			if s, ok := r.Speedup[pe]; ok {
				fmt.Fprintf(w, " %7.2fx", s)
				sums[pe] += s
			} else {
				fmt.Fprintf(w, " %8s", "-")
			}
		}
		fmt.Fprintln(w)
		n++
	}
	if n > 0 {
		fmt.Fprintf(w, "  %-28s", "geomean-ish (arith avg)")
		for _, pe := range Fig13PEs {
			if sums[pe] > 0 {
				fmt.Fprintf(w, " %7.2fx", sums[pe]/float64(n))
			}
		}
		fmt.Fprintln(w)
	}
}

// PrintFig14 renders the c-map size sweep (speedup over no-cmap at 20 PE).
func PrintFig14(w io.Writer, rows []Fig14Row) {
	fmt.Fprintln(w, "Fig 14: c-map size sweep, 20 PE, speedup over no-cmap")
	fmt.Fprintf(w, "  %-10s %-4s", "app", "g")
	for _, s := range CMapSizes[1:] {
		fmt.Fprintf(w, " %9s", sizeLabel(s))
	}
	fmt.Fprintf(w, " %9s\n", "readratio")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-4s", r.App, r.Dataset)
		for _, s := range CMapSizes[1:] {
			if v, ok := r.Speedup[s]; ok {
				fmt.Fprintf(w, " %8.2fx", v)
			} else {
				fmt.Fprintf(w, " %9s", "-")
			}
		}
		fmt.Fprintf(w, " %8.0f%%\n", r.ReadRatio[8<<10]*100)
	}
}

// PrintFig15 renders PE scaling normalized to one PE.
func PrintFig15(w io.Writer, rows []Fig15Row) {
	fmt.Fprintln(w, "Fig 15: PE scaling with 8 kB c-map (normalized to 1 PE)")
	fmt.Fprintf(w, "  %-10s %-4s", "app", "g")
	for _, pe := range Fig15PEs {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("%dPE", pe))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-4s", r.App, r.Dataset)
		for _, pe := range Fig15PEs {
			if v, ok := r.Scaling[pe]; ok {
				fmt.Fprintf(w, " %6.2fx", v)
			} else {
				fmt.Fprintf(w, " %7s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// PrintFig16 renders NoC and DRAM traffic per c-map size.
func PrintFig16(w io.Writer, rows []Fig16Row) {
	fmt.Fprintln(w, "Fig 16: NoC traffic (L2 accesses) and DRAM accesses, 20 PE")
	sizes := []int{0, 1 << 10, 4 << 10, 8 << 10, 16 << 10}
	fmt.Fprintf(w, "  %-10s %-4s %-5s", "app", "g", "")
	for _, s := range sizes {
		fmt.Fprintf(w, " %10s", sizeLabel(s))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %-4s %-5s", r.App, r.Dataset, "NoC")
		for _, s := range sizes {
			fmt.Fprintf(w, " %10d", r.NoC[s])
		}
		fmt.Fprintln(w)
		fmt.Fprintf(w, "  %-10s %-4s %-5s", "", "", "DRAM")
		for _, s := range sizes {
			fmt.Fprintf(w, " %10d", r.DRAM[s])
		}
		fmt.Fprintln(w)
	}
}

// PrintLargePatterns renders the §VII-D rows.
func PrintLargePatterns(w io.Writer, rows []LargePatternRow) {
	fmt.Fprintln(w, "Large graphs & patterns (§VII-D): 20-PE FlexMiner vs GraphZero-20T")
	fmt.Fprintf(w, "  %-10s %12s %12s %9s\n", "workload", "baseline(s)", "sim(s)", "speedup")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %12.4f %12.6f %8.2fx\n", r.Label, r.BaselineSec, r.SimSec, r.Speedup)
	}
}

// PrintAblation renders the §VII-E attribution.
func PrintAblation(w io.Writer, rs []AblationResult) {
	fmt.Fprintln(w, "Attribution (§VII-E): specialization × multithreading × c-map")
	fmt.Fprintf(w, "  %-10s %-4s %15s %15s %10s\n", "app", "g", "specialization", "multithreading", "c-map")
	for _, r := range rs {
		fmt.Fprintf(w, "  %-10s %-4s %14.2fx %14.2fx %9.2fx\n",
			r.App, r.Dataset, r.SpecializationFactor, r.MultithreadFactor, r.CMapFactor)
	}
}

func sizeLabel(s int) string {
	switch {
	case s < 0:
		return "unlim"
	case s == 0:
		return "no-cmap"
	case s >= 1<<10:
		return fmt.Sprintf("%dkB", s>>10)
	default:
		return fmt.Sprintf("%dB", s)
	}
}
