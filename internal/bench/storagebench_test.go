//go:build unix

package bench

import (
	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// TestStorageBenchSmoke runs the substrate A/B on a reduced fixture: every
// backend must report the same count, the heap row anchors the speedup
// column, and sharded rows carry the steal split.
func TestStorageBenchSmoke(t *testing.T) {
	g := graph.RMAT(11, 30000, 0.57, 0.19, 0.19, 0x5B)
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := storageBench(g, pl, "TC-sym/rmat11", 4, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("%d rows, want 4", len(rep.Rows))
	}
	if rep.GraphBytes <= 0 {
		t.Errorf("graph_bytes = %d", rep.GraphBytes)
	}
	want := map[string]int{"heap": 1, "mmap": 1, "sharded-local": 4, "sharded-oblivious": 4}
	for i, row := range rep.Rows {
		if row.Workload != "TC-sym/rmat11" {
			t.Errorf("row %d workload %q", i, row.Workload)
		}
		shards, ok := want[row.Backend]
		if !ok {
			t.Fatalf("unexpected backend %q", row.Backend)
		}
		delete(want, row.Backend)
		if row.Shards != shards {
			t.Errorf("%s: shards = %d, want %d", row.Backend, row.Shards, shards)
		}
		if row.Count != rep.Rows[0].Count {
			t.Errorf("%s: count %d != heap count %d", row.Backend, row.Count, rep.Rows[0].Count)
		}
		if row.Seconds <= 0 || row.SpeedupVsHeap <= 0 {
			t.Errorf("%s: seconds=%v speedup=%v", row.Backend, row.Seconds, row.SpeedupVsHeap)
		}
		if row.CrossShardSteals > row.Steals {
			t.Errorf("%s: cross-shard steals %d exceed total steals %d", row.Backend, row.CrossShardSteals, row.Steals)
		}
		if row.Shards == 1 && row.CrossShardSteals != 0 {
			t.Errorf("%s: unsharded run reported %d cross-shard steals", row.Backend, row.CrossShardSteals)
		}
	}
	if rep.Rows[0].Backend != "heap" || rep.Rows[0].SpeedupVsHeap != 1 {
		t.Errorf("first row must be the heap anchor: %+v", rep.Rows[0])
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if _, ok := doc["rows"]; !ok {
		t.Error("report JSON missing rows")
	}
}
