package bench

// Auxiliary-graph benchmark: end-to-end engine A/B over Options.AuxGraph
// (off/auto/on) × Options.Kernel (merge/auto) on deep-pattern workloads —
// 4/5-clique and the 5-vertex house on the Table-I Lj/Or stand-ins plus the
// large oriented rmat15 graph the storage bench uses. The JSON this emits is
// committed as BENCH_aux.json so aux-layer regressions are visible in review;
// regenerate with `go run ./cmd/experiments bench-aux`. Times are
// host-dependent — the committed speedup_vs_off ratios, not the absolute
// seconds, are the baseline. Counts must match across every (aux, kernel)
// cell of a workload or the run errors out.
//
// The clique plans compile with zero AuxSpecs (every op is frontier-based),
// so their rows are the no-regression legs: aux_built stays 0 and the ratio
// should sit at ~1.0. The house rows are the win legs — the plan's one spec
// (prune level-4 candidates by the level-0/1 edge, built at level 1) turns
// the two deepest intersections into arena lookups.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/plan"
)

// AuxRow is one (workload, aux mode, kernel) measurement.
type AuxRow struct {
	Workload     string  `json:"workload"`
	Aux          string  `json:"aux"`    // off | auto | on
	Kernel       string  `json:"kernel"` // merge | auto
	Seconds      float64 `json:"seconds"`
	SpeedupVsOff float64 `json:"speedup_vs_off"` // vs aux=off under the same kernel
	Count        int64   `json:"count"`          // mined count: must match across all cells
	AuxBuilt     int64   `json:"aux_built"`
	AuxReused    int64   `json:"aux_reused"`
	AuxBytesPeak int64   `json:"aux_bytes_peak"`
	AuxSkipped   int64   `json:"aux_skipped_cost_model"`
}

// AuxBenchReport is the full auxiliary-graph benchmark record.
type AuxBenchReport struct {
	Note string   `json:"note"`
	Rows []AuxRow `json:"rows"`
}

// WriteJSON renders the report as indented JSON.
func (r *AuxBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

var (
	rmat15Once sync.Once
	rmat15G    *graph.Graph
)

// rmat15 returns (and caches) the large degree-oriented RMAT graph shared
// with StorageBench.
func rmat15() *graph.Graph {
	rmat15Once.Do(func() {
		rmat15G = graph.RMAT(15, 1_000_000, 0.57, 0.19, 0.19, 0x5B).Orient()
	})
	return rmat15G
}

// auxWorkloads builds the committed-artifact workload set. The house pattern
// runs on the symmetric Lj/Or stand-ins only: on the hub-heavy rmat15 graph a
// symmetric 5-vertex search is beyond the harness budget, while the oriented
// clique plans scale to it.
func auxWorkloads() ([]Workload, error) {
	var ws []Workload
	for _, app := range []string{"4-CL", "5-CL", "SL-house"} {
		for _, ds := range []string{"Lj", "Or"} {
			w, err := NewWorkload(app, ds)
			if err != nil {
				return nil, err
			}
			ws = append(ws, w)
		}
	}
	for _, k := range []int{4, 5} {
		pl, err := plan.CompileCliqueDAG(k)
		if err != nil {
			return nil, err
		}
		ws = append(ws, Workload{App: fmt.Sprintf("%d-CL", k), Dataset: "rmat15", G: rmat15(), Plan: pl})
	}
	return ws, nil
}

// AuxBench runs the committed-artifact configuration: best of 3 trials per
// cell, collapsed to a single trial once a cell proves slower than 5 s (on
// multi-second runs scheduler noise is proportionally negligible, and the
// slow cells dominate the harness budget).
func AuxBench(threads int) (*AuxBenchReport, error) {
	ws, err := auxWorkloads()
	if err != nil {
		return nil, err
	}
	return auxBench(ws, threads, 3, 5.0)
}

// auxBench measures every (aux, kernel) cell of every workload, anchoring
// each kernel's speedup column at its own aux=off row and cross-checking
// mined counts across the whole workload.
func auxBench(ws []Workload, threads, trials int, slowCutoff float64) (*AuxBenchReport, error) {
	if threads <= 0 {
		threads = 8
	}
	rep := &AuxBenchReport{
		Note: fmt.Sprintf("aux-graph A/B, best of %d trials (single trial past %.0f s); "+
			"seconds are host-dependent, speedup_vs_off at identical counts is the regression signal; "+
			"clique plans carry no aux directives, so their rows are the no-regression legs",
			trials, slowCutoff),
	}
	for _, w := range ws {
		label := w.App + "/" + w.Dataset
		var wantCount int64
		haveCount := false
		for _, kernel := range []core.KernelPolicy{core.KernelMergeOnly, core.KernelAuto} {
			var offSec float64
			for _, mode := range []core.AuxMode{core.AuxOff, core.AuxAuto, core.AuxOn} {
				eng, err := core.NewEngine(w.G, w.Plan, core.Options{
					Threads: threads, Kernel: kernel, AuxGraph: mode,
				})
				if err != nil {
					return nil, err
				}
				var best core.Result
				sec := 0.0
				for trial := 0; trial < trials; trial++ {
					start := now()
					res := eng.Mine()
					if s := since(start); trial == 0 || s < sec {
						sec, best = s, res
					}
					if sec >= slowCutoff {
						break
					}
				}
				row := AuxRow{
					Workload:     label,
					Aux:          mode.String(),
					Kernel:       kernel.String(),
					Seconds:      sec,
					Count:        best.Count(),
					AuxBuilt:     best.Stats.AuxBuilt,
					AuxReused:    best.Stats.AuxReused,
					AuxBytesPeak: best.Stats.AuxBytesPeak,
					AuxSkipped:   best.Stats.AuxSkippedCostModel,
				}
				if mode == core.AuxOff {
					offSec = sec
					row.SpeedupVsOff = 1
				} else {
					row.SpeedupVsOff = offSec / sec
				}
				if !haveCount {
					wantCount, haveCount = best.Count(), true
				} else if best.Count() != wantCount {
					return nil, fmt.Errorf("aux bench %s: aux=%v kernel=%v count %d != baseline count %d",
						label, mode, kernel, best.Count(), wantCount)
				}
				rep.Rows = append(rep.Rows, row)
			}
		}
	}
	return rep, nil
}
