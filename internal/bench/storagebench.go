package bench

// Storage-substrate benchmark: one workload mined end-to-end on every graph
// backend — in-heap CSR, zero-copy mmap, and the sharded store under both
// shard-local and shard-oblivious seeding — recording wall time and steal
// traffic. The JSON this emits is committed as BENCH_storage.json so substrate
// regressions (mmap overhead, locality loss) are visible in review; regenerate
// with `go run ./cmd/experiments bench-storage`. Times are host-dependent —
// the committed ratios and the cross-shard steal split, not the absolute
// seconds, are the baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/plan"
)

// StorageRow is one backend measurement.
type StorageRow struct {
	Backend          string  `json:"backend"` // heap | mmap | sharded-local | sharded-oblivious
	Workload         string  `json:"workload"`
	Shards           int     `json:"shards"`
	Seconds          float64 `json:"seconds"`
	SpeedupVsHeap    float64 `json:"speedup_vs_heap"`
	Count            int64   `json:"count"` // mined count: must match across backends
	Steals           int64   `json:"steals"`
	CrossShardSteals int64   `json:"cross_shard_steals"`
}

// StorageBenchReport is the full storage-substrate record.
type StorageBenchReport struct {
	Note       string       `json:"note"`
	GraphBytes int64        `json:"graph_bytes"` // binary CSR file size
	Rows       []StorageRow `json:"rows"`
}

// WriteJSON renders the report as indented JSON.
func (r *StorageBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// StorageBench runs the committed-artifact configuration: triangle counting
// on a multi-megabyte degree-oriented RMAT graph, 4 shards, best of 3 trials
// per backend. Orientation (§V-C) keeps per-vertex work near-proportional to
// arc count, so the arc-balanced shard partition is also work-balanced —
// the regime the shard-local scheduler is designed for.
func StorageBench(threads int) (*StorageBenchReport, error) {
	g := graph.RMAT(15, 1_000_000, 0.57, 0.19, 0.19, 0x5B).Orient()
	pl, err := plan.CompileCliqueDAG(3)
	if err != nil {
		return nil, err
	}
	return storageBench(g, pl, "TC-dag/rmat15", 4, 3, threads)
}

// storageBench materializes g in every backend under a temp directory, mines
// the triangle plan on each, and collects timing plus steal counters (read
// back through the obs registry feed, the same path serve mode exports).
// Steal counts are summed over the trials of a backend.
func storageBench(g *graph.Graph, pl *plan.Plan, label string, shards, trials, threads int) (*StorageBenchReport, error) {
	if threads <= 0 {
		threads = 8
	}
	dir, err := os.MkdirTemp("", "flexminer-storagebench-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	bin := filepath.Join(dir, "g.bin")
	if err := graph.SaveBinary(bin, g); err != nil {
		return nil, err
	}
	fi, err := os.Stat(bin)
	if err != nil {
		return nil, err
	}
	m, err := graph.OpenMapped(bin)
	if err != nil {
		return nil, err
	}
	defer m.Close()
	sdir := filepath.Join(dir, "shards")
	if err := graph.WriteSharded(sdir, g, shards); err != nil {
		return nil, err
	}
	s, err := graph.OpenSharded(sdir)
	if err != nil {
		return nil, err
	}
	defer s.Close()

	backends := []struct {
		name      string
		st        graph.Store
		shards    int
		oblivious bool
	}{
		{"heap", g, 1, false},
		{"mmap", m, 1, false},
		{"sharded-local", s, shards, false},
		{"sharded-oblivious", s, shards, true},
	}

	rep := &StorageBenchReport{
		Note: fmt.Sprintf("storage substrate A/B, best of %d trials; seconds are host-dependent, "+
			"the ratios and the cross-shard steal split are the regression signal; "+
			"steal counts are summed over trials", trials),
		GraphBytes: fi.Size(),
	}
	var heapSec float64
	var heapCount int64
	for _, b := range backends {
		reg := obs.NewRegistry(nil)
		eng, err := core.NewEngine(b.st, pl, core.Options{
			Threads:        threads,
			ShardOblivious: b.oblivious,
			SchedHooks:     obs.SchedHooks(reg),
		})
		if err != nil {
			return nil, err
		}
		var count int64
		sec := 0.0
		for trial := 0; trial < trials; trial++ {
			start := now()
			res := eng.Mine()
			if sc := since(start); trial == 0 || sc < sec {
				sec, count = sc, res.Count()
			}
		}
		row := StorageRow{
			Backend:          b.name,
			Workload:         label,
			Shards:           b.shards,
			Seconds:          sec,
			Count:            count,
			Steals:           reg.Get(obs.SchedSteals),
			CrossShardSteals: reg.Get(obs.SchedStealsCrossShard),
		}
		if b.name == "heap" {
			heapSec, heapCount = sec, count
			row.SpeedupVsHeap = 1
		} else {
			row.SpeedupVsHeap = heapSec / sec
			if count != heapCount {
				return nil, fmt.Errorf("storage bench %s: backend %s count %d != heap count %d",
					label, b.name, count, heapCount)
			}
		}
		rep.Rows = append(rep.Rows, row)
	}
	return rep, nil
}
