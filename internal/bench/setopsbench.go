package bench

// Set-operation kernel benchmark: micro-kernels (merge vs galloping vs hub
// bitmap on controlled operand shapes) plus end-to-end engine A/B runs
// (Kernel: Auto vs MergeOnly) on power-law Table-I stand-ins. The JSON this
// emits is committed as BENCH_setops.json so kernel regressions are visible
// in review; regenerate with `go run ./cmd/experiments bench-setops`.
// Times are host-dependent — the committed ratios, not the absolute ns,
// are the baseline.

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/setops"
)

// SetopsMicroRow is one micro-kernel measurement.
type SetopsMicroRow struct {
	Case           string  `json:"case"`   // operand shape, e.g. "skewed-1/64"
	Kernel         string  `json:"kernel"` // merge | gallop | bitmap
	NsPerOp        float64 `json:"ns_per_op"`
	SpeedupVsMerge float64 `json:"speedup_vs_merge"`
}

// SetopsE2ERow is one end-to-end engine measurement.
type SetopsE2ERow struct {
	Workload       string  `json:"workload"`
	Kernel         string  `json:"kernel"`
	Seconds        float64 `json:"seconds"`
	SpeedupVsMerge float64 `json:"speedup_vs_merge"`
	Count          int64   `json:"count"` // mined count: must match across kernels
	MergeIters     int64   `json:"merge_iters"`
	GallopProbes   int64   `json:"gallop_probes"`
	BitmapProbes   int64   `json:"bitmap_probes"`
	LeafCountSkips int64   `json:"leaf_count_skips"`
}

// SetopsBenchReport is the full kernel-benchmark record.
type SetopsBenchReport struct {
	Note     string           `json:"note"`
	Micro    []SetopsMicroRow `json:"micro"`
	EndToEnd []SetopsE2ERow   `json:"end_to_end"`
}

// WriteJSON renders the report as indented JSON.
func (r *SetopsBenchReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// timeOp measures ns/op of f, growing the batch until the sample is long
// enough to trust (≥ 20 ms).
func timeOp(f func()) float64 {
	f() // warm caches
	n := 1
	for {
		start := time.Now()
		for i := 0; i < n; i++ {
			f()
		}
		el := time.Since(start)
		if el >= 20*time.Millisecond {
			return float64(el.Nanoseconds()) / float64(n)
		}
		n *= 4
	}
}

// skewedSets builds |b| = n with |a| = n/ratio sorted unique elements drawn
// from b's value range.
func skewedSets(n, ratio int) (a, b []setops.VID) {
	r := rand.New(rand.NewSource(7))
	b = make([]setops.VID, n)
	for i := range b {
		b[i] = setops.VID(2 * i)
	}
	seen := map[setops.VID]bool{}
	for len(a) < n/ratio {
		x := setops.VID(r.Intn(2 * n))
		if !seen[x] {
			seen[x] = true
			a = append(a, x)
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return a, b
}

func microPair(caseName string, a, b []setops.VID, fast func(dst []setops.VID) []setops.VID, fastName string) []SetopsMicroRow {
	dst := make([]setops.VID, 0, len(a)+len(b))
	mergeNs := timeOp(func() { dst = setops.Intersect(dst[:0], a, b) })
	fastNs := timeOp(func() { dst = fast(dst[:0]) })
	return []SetopsMicroRow{
		{Case: caseName, Kernel: "merge", NsPerOp: mergeNs, SpeedupVsMerge: 1},
		{Case: caseName, Kernel: fastName, NsPerOp: fastNs, SpeedupVsMerge: mergeNs / fastNs},
	}
}

// e2eWorkloads are the engine A/B workloads: clique mining on power-law
// stand-ins, where skewed intersections and hubs dominate. The symmetric
// 4-clique plan keeps hub degrees intact; the oriented TC row shows the
// (smaller) win that survives degree orientation.
func e2eWorkloads() ([]Workload, error) {
	var ws []Workload
	symG, err := Get("Lj")
	if err != nil {
		return nil, err
	}
	pl, err := plan.Compile(pattern.KClique(4), plan.Options{})
	if err != nil {
		return nil, err
	}
	ws = append(ws, Workload{App: "4-CL-sym", Dataset: "Lj", G: symG, Plan: pl})
	tc, err := NewWorkload("TC", "Or")
	if err != nil {
		return nil, err
	}
	ws = append(ws, tc)
	return ws, nil
}

// SetopsBench runs the full kernel benchmark.
func SetopsBench(threads int) (*SetopsBenchReport, error) {
	if threads <= 0 {
		threads = 4
	}
	rep := &SetopsBenchReport{
		Note: "kernel A/B baseline; ns are host-dependent, ratios are the regression signal",
	}

	aSkew, bSkew := skewedSets(1<<14, 64)
	rep.Micro = append(rep.Micro, microPair("intersect-skewed-1/64", aSkew, bSkew,
		func(dst []setops.VID) []setops.VID {
			return setops.IntersectGalloping(dst, aSkew, bSkew, setops.NoBound)
		}, "gallop")...)

	aHub, bHub := skewedSets(1<<14, 128)
	bm := make([]uint64, setops.BitmapWords(int(bHub[len(bHub)-1])+1))
	for _, x := range bHub {
		bm[x>>6] |= 1 << (x & 63)
	}
	rep.Micro = append(rep.Micro, microPair("intersect-hub-bitmap", aHub, bHub,
		func(dst []setops.VID) []setops.VID {
			dst, _ = setops.IntersectBitmap(dst, aHub, bm, setops.NoBound)
			return dst
		}, "bitmap")...)

	ws, err := e2eWorkloads()
	if err != nil {
		return nil, err
	}
	for _, w := range ws {
		label := w.App + "/" + w.Dataset
		var mergeSec float64
		var mergeCount int64
		for _, kernel := range []core.KernelPolicy{core.KernelMergeOnly, core.KernelAuto} {
			eng, err := core.NewEngine(w.G, w.Plan, core.Options{Threads: threads, Kernel: kernel})
			if err != nil {
				return nil, err
			}
			// Best of three: wall-clock A/B on shared CI hosts is noisy.
			var best core.Result
			sec := 0.0
			for trial := 0; trial < 3; trial++ {
				start := now()
				res := eng.Mine()
				if s := since(start); trial == 0 || s < sec {
					sec, best = s, res
				}
			}
			row := SetopsE2ERow{
				Workload:       label,
				Kernel:         kernel.String(),
				Seconds:        sec,
				Count:          best.Count(),
				MergeIters:     best.Stats.SetOpIterations,
				GallopProbes:   best.Stats.GallopProbes,
				BitmapProbes:   best.Stats.BitmapProbes,
				LeafCountSkips: best.Stats.LeafCountsSkippedMaterialize,
			}
			if kernel == core.KernelMergeOnly {
				mergeSec, mergeCount = sec, best.Count()
				row.SpeedupVsMerge = 1
			} else {
				row.SpeedupVsMerge = mergeSec / sec
				if best.Count() != mergeCount {
					return nil, fmt.Errorf("setops bench %s: kernel %v count %d != merge count %d",
						label, kernel, best.Count(), mergeCount)
				}
			}
			rep.EndToEnd = append(rep.EndToEnd, row)
		}
	}
	return rep, nil
}
