// Package bench is the evaluation harness: it holds the dataset registry
// (synthetic stand-ins for the paper's Table I graphs) and one runner per
// table/figure of §VII, each returning typed rows that cmd/experiments and
// the bench_test.go benchmarks render.
package bench

import (
	"fmt"
	"sync"

	"repro/internal/graph"
)

// Dataset names a graph workload. The paper's six inputs (Table I) are
// SNAP/real graphs; our stand-ins are deterministic power-law generators
// whose *shape* — density, degree skew, relative size ordering — matches the
// originals at a scale the cycle-level simulator can run in seconds. (The
// simulator accepts real SNAP edge lists via graph.Load for full-scale runs.)
type Dataset struct {
	Name string // paper's abbreviation (As, Mi, Pa, Yo, Lj, Or)
	Desc string // what it stands in for
	Gen  func() *graph.Graph
}

// Datasets returns the Table I registry in the paper's order.
//
// Shape matching (original → stand-in): average degree is preserved, vertex
// counts are scaled down ~1000×, and the Chung–Lu exponent is tuned so each
// graph keeps a heavy tail (rare hubs), which drives both c-map reuse and
// cache behaviour.
func Datasets() []Dataset {
	return []Dataset{
		{
			Name: "As",
			Desc: "as-skitter stand-in: internet topology, 1.7M v / 11M e, avg deg 13",
			Gen:  func() *graph.Graph { return graph.ChungLu(2000, 13000, 2.3, 0xA5) },
		},
		{
			Name: "Mi",
			Desc: "mico stand-in: co-authorship, densest input (avg deg 21)",
			Gen:  func() *graph.Graph { return graph.ChungLu(1600, 16800, 2.7, 0x31) },
		},
		{
			Name: "Pa",
			Desc: "cit-patents stand-in: citation network, large and sparse (avg deg 5)",
			Gen:  func() *graph.Graph { return graph.ChungLu(4000, 10000, 2.2, 0x9A) },
		},
		{
			Name: "Yo",
			Desc: "com-youtube stand-in: social network, 7.1M v / 57M e (avg deg 16)",
			Gen:  func() *graph.Graph { return graph.ChungLu(3600, 28800, 2.35, 0x70) },
		},
		{
			Name: "Lj",
			Desc: "soc-livejournal stand-in: social network, avg deg 17, triangle-rich",
			Gen:  func() *graph.Graph { return graph.RMAT(12, 34000, 0.57, 0.19, 0.19, 0x17) },
		},
		{
			Name: "Or",
			Desc: "com-orkut stand-in: social network, heavy (avg deg 76, scaled to 40)",
			Gen:  func() *graph.Graph { return graph.ChungLu(2400, 48000, 2.5, 0x08) },
		},
	}
}

var (
	dsMu    sync.Mutex
	dsCache = map[string]*graph.Graph{}
)

// Get returns (and caches) a dataset by name.
func Get(name string) (*graph.Graph, error) {
	dsMu.Lock()
	defer dsMu.Unlock()
	if g, ok := dsCache[name]; ok {
		return g, nil
	}
	for _, d := range Datasets() {
		if d.Name == name {
			g := d.Gen()
			dsCache[name] = g
			return g, nil
		}
	}
	return nil, fmt.Errorf("bench: unknown dataset %q", name)
}

// MustGet is Get for registry names known at compile time.
func MustGet(name string) *graph.Graph {
	g, err := Get(name)
	if err != nil {
		panic(err)
	}
	return g
}

// Table1 computes the dataset statistics table.
func Table1() []graph.Stats {
	var out []graph.Stats
	for _, d := range Datasets() {
		g, _ := Get(d.Name)
		out = append(out, graph.ComputeStats(d.Name, g))
	}
	return out
}

// appDatasets mirrors the paper's per-application dataset selections
// (Fig 13): heavy apps skip the graphs they cannot finish.
var appDatasets = map[string][]string{
	"TC":         {"As", "Mi", "Pa", "Yo", "Lj"},
	"4-CL":       {"As", "Mi", "Pa", "Yo"},
	"5-CL":       {"As", "Pa"},
	"SL-4cycle":  {"As", "Mi", "Pa"},
	"SL-diamond": {"As", "Mi", "Pa"},
	"3-MC":       {"As", "Mi", "Pa", "Yo"},
}

// AppDatasets returns the dataset names evaluated for an app.
func AppDatasets(app string) []string {
	if ds, ok := appDatasets[app]; ok {
		return ds
	}
	return []string{"As", "Mi", "Pa"}
}
