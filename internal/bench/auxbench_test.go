package bench

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// TestAuxBenchSmoke runs the aux A/B on a reduced fixture: one workload with
// aux directives (house) and one without (oriented 4-clique). Every cell of a
// workload must report the same count, the aux=off rows anchor the speedup
// columns, the clique rows must never build a row, and the house aux rows
// must build and reuse.
func TestAuxBenchSmoke(t *testing.T) {
	g := graph.RMAT(9, 4500, 0.57, 0.19, 0.19, 0x5B)
	housePl, err := plan.Compile(pattern.House(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	clPl, err := plan.CompileCliqueDAG(4)
	if err != nil {
		t.Fatal(err)
	}
	ws := []Workload{
		{App: "SL-house", Dataset: "rmat9", G: g, Plan: housePl},
		{App: "4-CL", Dataset: "rmat9", G: g.Orient(), Plan: clPl},
	}
	rep, err := auxBench(ws, 4, 1, 5.0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rows) != 2*2*3 {
		t.Fatalf("%d rows, want 12", len(rep.Rows))
	}
	counts := map[string]int64{}
	for i, row := range rep.Rows {
		if row.Seconds <= 0 || row.SpeedupVsOff <= 0 {
			t.Errorf("row %d %s: seconds=%v speedup=%v", i, row.Workload, row.Seconds, row.SpeedupVsOff)
		}
		if row.Aux == "off" {
			if row.SpeedupVsOff != 1 {
				t.Errorf("%s %s/%s: off row speedup %v != 1", row.Workload, row.Kernel, row.Aux, row.SpeedupVsOff)
			}
			if row.AuxBuilt != 0 || row.AuxReused != 0 || row.AuxBytesPeak != 0 {
				t.Errorf("%s %s: off row carries aux stats %+v", row.Workload, row.Kernel, row)
			}
		}
		if prev, ok := counts[row.Workload]; ok && prev != row.Count {
			t.Errorf("%s: count drifted %d != %d", row.Workload, row.Count, prev)
		}
		counts[row.Workload] = row.Count
		switch row.Workload {
		case "4-CL/rmat9":
			if row.AuxBuilt != 0 {
				t.Errorf("clique leg built %d aux rows; plan has no directives", row.AuxBuilt)
			}
		case "SL-house/rmat9":
			if row.Aux == "on" && (row.AuxBuilt == 0 || row.AuxReused == 0) {
				t.Errorf("house aux=on row built=%d reused=%d, want both > 0", row.AuxBuilt, row.AuxReused)
			}
		default:
			t.Errorf("unexpected workload %q", row.Workload)
		}
	}
	if len(counts) != 2 {
		t.Errorf("workloads seen: %v", counts)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if _, ok := doc["rows"]; !ok {
		t.Error("report JSON missing rows")
	}
}

// TestAuxBenchCountMismatchRejected proves the harness refuses to emit a
// report whose cells disagree: two "workloads" sharing a label but mining
// different graphs must error, not average away the drift.
func TestAuxBenchCountMismatchRejected(t *testing.T) {
	pl, err := plan.Compile(pattern.Triangle(), plan.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g := graph.ErdosRenyi(200, 1400, 17)
	ws := []Workload{{App: "TC", Dataset: "er", G: g, Plan: pl}}
	if _, err := auxBench(ws, 2, 1, 5.0); err != nil {
		t.Fatalf("single consistent workload errored: %v", err)
	}
}

// TestCommittedAuxArtifact pins the acceptance property of the committed
// BENCH_aux.json: at least one deep-pattern workload (5-clique or house on a
// dense stand-in) shows ≥ 1.2x end-to-end speedup with aux=auto vs aux=off at
// identical counts, and no workload's counts drift across cells. Regenerate
// the artifact with `go run ./cmd/experiments bench-aux > BENCH_aux.json`
// after engine changes that shift the ratios.
func TestCommittedAuxArtifact(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("..", "..", "BENCH_aux.json"))
	if err != nil {
		t.Fatalf("committed artifact missing: %v", err)
	}
	var rep AuxBenchReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("BENCH_aux.json does not parse: %v", err)
	}
	if len(rep.Rows) == 0 {
		t.Fatal("BENCH_aux.json has no rows")
	}
	counts := map[string]int64{}
	bestAuto := 0.0
	bestAt := ""
	for _, row := range rep.Rows {
		if prev, ok := counts[row.Workload]; ok && prev != row.Count {
			t.Errorf("%s: committed counts drift across cells (%d != %d)", row.Workload, row.Count, prev)
		}
		counts[row.Workload] = row.Count
		deep := row.Workload == "5-CL/Lj" || row.Workload == "5-CL/Or" || row.Workload == "5-CL/rmat15" ||
			row.Workload == "SL-house/Lj" || row.Workload == "SL-house/Or"
		if deep && row.Aux == "auto" && row.SpeedupVsOff > bestAuto {
			bestAuto, bestAt = row.SpeedupVsOff, row.Workload+"/"+row.Kernel
		}
	}
	if bestAuto < 1.2 {
		t.Errorf("no deep-pattern workload reaches 1.2x with aux=auto: best %.3f at %s", bestAuto, bestAt)
	}
	t.Logf("best committed aux=auto speedup: %.2fx at %s", bestAuto, bestAt)
}
