package bench

// One runner per table/figure of the paper's evaluation (§VII). Runners that
// compare hardware configurations (Figs 14–16) are cycle-ratio based and
// fully deterministic; runners that compare against the CPU software
// baseline (Table II, Figs 7 and 13) measure wall-clock on the host, like
// the paper measured its Intel baseline.

import (
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sim"
)

func now() time.Time            { return time.Now() }
func since(t time.Time) float64 { return time.Since(t).Seconds() }

// SimConfig is the accelerator configuration the harness sweeps. It keeps
// the paper's latencies, bank counts and c-map geometry, but scales the
// cache *capacities* down with the ~1000×-scaled datasets so the
// working-set-to-cache ratios — which drive every memory-system effect the
// paper measures (L2 miss rates of 36–66%, c-map traffic savings, PE-count
// contention) — stay in the paper's regime. The c-map sizes are NOT scaled:
// the scratchpad competes with per-vertex degree (hub neighbor lists), and
// our stand-ins preserve absolute degree scale (hundreds to ~1.2k).
func SimConfig() sim.Config {
	cfg := sim.DefaultConfig()
	cfg.PrivateCacheBytes = 1 << 10
	cfg.SharedCacheBytes = 32 << 10
	cfg.TaskSliceElems = 32
	return cfg
}

// BaselineThreads is the software-baseline parallelism (the paper's
// GraphZero runs 20 threads on a 10-core i9).
const BaselineThreads = 20

// ------------------------------------------------------------------ Table II

// Table2Row compares the three software strategies on one (app, dataset):
// pattern-oblivious enumeration + isomorphism tests (the Gramer-style
// strategy), AutoMine mode (matching order, no symmetry breaking) and
// GraphZero mode (matching + symmetry order) — all in seconds.
type Table2Row struct {
	App, Dataset string
	ObliviousSec float64
	AutoMineSec  float64
	GraphZeroSec float64
	// SearchOblivious / SearchAware record enumerated tree sizes, the
	// paper's explanation for the gap.
	SearchOblivious int64
	SearchAware     int64

	// Count is the mined pattern count (identical for both baselines, by
	// check below). AutoMineStats/GraphZeroStats carry each run's full
	// engine instrumentation; all are schedule-invariant, so exporting the
	// row through obs.AddStats (which skips the wall-clock float fields
	// above) yields a machine-independent metrics artifact.
	Count          int64
	AutoMineStats  core.Stats
	GraphZeroStats core.Stats
}

// Table2Apps lists the apps of Table II (SL is excluded there because Gramer
// does not support it).
func Table2Apps() []string { return []string{"TC", "4-CL", "3-MC"} }

// Table2 runs the baseline comparison. quick restricts datasets to keep test
// runtime bounded.
func Table2(quick bool) ([]Table2Row, error) {
	var rows []Table2Row
	for _, app := range Table2Apps() {
		k := map[string]int{"TC": 3, "4-CL": 4, "3-MC": 3}[app]
		datasets := AppDatasets(app)
		if quick {
			datasets = datasets[:1]
		}
		for _, ds := range datasets {
			w, err := NewWorkload(app, ds)
			if err != nil {
				return nil, err
			}
			row := Table2Row{App: app, Dataset: ds}

			// The pattern-oblivious strategy enumerates every connected
			// induced k-subgraph — billions for k=4 on the denser inputs
			// (which is exactly Table II's point). Like the paper, which
			// quotes Gramer's published numbers rather than running it
			// everywhere, we run the oblivious engine only where it
			// terminates in reasonable time and report '-' elsewhere.
			if obliviousTractable(app, ds) {
				g := MustGet(ds) // oblivious wants the symmetric graph
				start := now()
				obl := core.MineOblivious(g, k, BaselineThreads)
				row.ObliviousSec = since(start)
				row.SearchOblivious = obl.Enumerated
			}

			amw, err := autoMineWorkload(app, ds)
			if err != nil {
				return nil, err
			}
			// Both software baselines are merge-based systems; pin the
			// kernel policy so Table II keeps modeling them (the adaptive
			// kernels are benchmarked separately in SetopsBench).
			start := now()
			amEng, err := core.NewEngine(amw.G, amw.Plan, core.Options{Threads: BaselineThreads, Kernel: core.KernelMergeOnly})
			if err != nil {
				return nil, err
			}
			amRes := amEng.Mine()
			row.AutoMineSec = since(start)

			start = now()
			gzEng, err := core.NewEngine(w.G, w.Plan, core.Options{Threads: BaselineThreads, Kernel: core.KernelMergeOnly})
			if err != nil {
				return nil, err
			}
			gzRes := gzEng.Mine()
			row.GraphZeroSec = since(start)
			row.SearchAware = gzRes.Stats.Extensions
			row.Count = gzRes.Counts[0]
			row.AutoMineStats = amRes.Stats
			row.GraphZeroStats = gzRes.Stats

			if amRes.Counts[0] != gzRes.Counts[0] {
				return nil, fmt.Errorf("table2 %s/%s: count mismatch automine=%d graphzero=%d",
					app, ds, amRes.Counts[0], gzRes.Counts[0])
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// obliviousTractable limits the pattern-oblivious column to runs that finish
// in seconds rather than hours: k=3 everywhere, k=4 only on the sparse
// patents stand-in.
func obliviousTractable(app, ds string) bool {
	if app == "4-CL" {
		return ds == "Pa"
	}
	return true
}

// autoMineWorkload builds the AutoMine-mode (no symmetry breaking) variant
// of an app. Cliques fall back to the generic symmetric-graph plan since
// orientation *is* a symmetry-breaking technique.
func autoMineWorkload(app, ds string) (Workload, error) {
	g, err := Get(ds)
	if err != nil {
		return Workload{}, err
	}
	pl, err := autoMinePlan(app)
	if err != nil {
		return Workload{}, err
	}
	return Workload{App: app, Dataset: ds, G: g, Plan: pl}, nil
}

// ------------------------------------------------------------------- Fig 7

// Fig7Row is one thread count of the software scaling experiment: 4-CL
// mining, wall time, speedup over 1 thread, and a memory-traffic proxy
// (set-operation element throughput).
type Fig7Row struct {
	Threads     int
	Seconds     float64
	Speedup     float64
	MElemPerSec float64 // merge elements consumed per second (bandwidth proxy)
}

// Fig7 sweeps thread counts for k-CL on the orkut stand-in.
func Fig7(threadCounts []int) ([]Fig7Row, error) {
	if len(threadCounts) == 0 {
		threadCounts = []int{1, 2, 4, 8, 12, 16, 20, 24}
	}
	w, err := NewWorkload("4-CL", "Or")
	if err != nil {
		return nil, err
	}
	var rows []Fig7Row
	var base float64
	for _, th := range threadCounts {
		// Merge-only: MElemPerSec is a merge-element throughput (bandwidth)
		// proxy, which only means something when every set op merges.
		eng, err := core.NewEngine(w.G, w.Plan, core.Options{Threads: th, Kernel: core.KernelMergeOnly})
		if err != nil {
			return nil, err
		}
		start := now()
		res := eng.Mine()
		sec := since(start)
		if th == threadCounts[0] {
			base = sec
		}
		elems := float64(res.Stats.SetOpIterations)
		rows = append(rows, Fig7Row{
			Threads:     th,
			Seconds:     sec,
			Speedup:     base / sec,
			MElemPerSec: elems / sec / 1e6,
		})
	}
	return rows, nil
}

// ------------------------------------------------------------------ Fig 13

// Fig13Row compares FlexMiner without c-map at several PE counts against the
// 20-thread CPU baseline on one (app, dataset).
type Fig13Row struct {
	App, Dataset string
	BaselineSec  float64
	SimSec       map[int]float64 // PE count → simulated seconds
	Speedup      map[int]float64 // PE count → baseline/sim
}

// Fig13PEs are the PE counts of Fig 13.
var Fig13PEs = []int{10, 20, 40}

// Fig13 runs the no-c-map comparison. quick restricts the sweep.
func Fig13(quick bool) ([]Fig13Row, error) {
	apps := []string{"TC", "4-CL", "5-CL", "SL-4cycle", "SL-diamond", "3-MC"}
	pes := Fig13PEs
	if quick {
		apps = []string{"TC", "SL-4cycle"}
		pes = []int{10}
	}
	var rows []Fig13Row
	for _, app := range apps {
		datasets := AppDatasets(app)
		if quick {
			datasets = datasets[:1]
		}
		for _, ds := range datasets {
			w, err := NewWorkload(app, ds)
			if err != nil {
				return nil, err
			}
			baseSec, baseCounts, err := w.BaselineSeconds(BaselineThreads)
			if err != nil {
				return nil, err
			}
			row := Fig13Row{App: app, Dataset: ds, BaselineSec: baseSec,
				SimSec: map[int]float64{}, Speedup: map[int]float64{}}
			for _, pe := range pes {
				cfg := SimConfig().WithPEs(pe).WithCMapBytes(0)
				r, err := sim.Simulate(w.G, w.Plan, cfg)
				if err != nil {
					return nil, err
				}
				if err := checkCounts(app, ds, r.Counts, baseCounts); err != nil {
					return nil, err
				}
				row.SimSec[pe] = r.Stats.Seconds
				row.Speedup[pe] = baseSec / r.Stats.Seconds
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ------------------------------------------------------------------ Fig 14

// CMapSizes are the swept scratchpad sizes of Fig 14; 0 is no-cmap and -1 is
// the unlimited upper bound.
var CMapSizes = []int{0, 1 << 10, 4 << 10, 8 << 10, 16 << 10, -1}

// Fig14Row holds, per (app, dataset), cycles for every c-map size and the
// speedup over no-cmap (cycle ratio — deterministic).
type Fig14Row struct {
	App, Dataset string
	Cycles       map[int]int64   // size → cycles (key -1 = unlimited)
	Speedup      map[int]float64 // size → noCmapCycles/cycles
	ReadRatio    map[int]float64 // size → c-map read ratio (§VII-C)
}

// Fig14 sweeps c-map sizes at 20 PEs.
func Fig14(quick bool) ([]Fig14Row, error) {
	apps := []string{"TC", "4-CL", "5-CL", "SL-4cycle", "SL-diamond", "3-MC"}
	sizes := CMapSizes
	if quick {
		apps = []string{"SL-4cycle"}
		sizes = []int{0, 4 << 10, -1}
	}
	var rows []Fig14Row
	for _, app := range apps {
		datasets := AppDatasets(app)
		if quick {
			datasets = datasets[:1]
		}
		for _, ds := range datasets {
			w, err := NewWorkload(app, ds)
			if err != nil {
				return nil, err
			}
			row := Fig14Row{App: app, Dataset: ds,
				Cycles: map[int]int64{}, Speedup: map[int]float64{}, ReadRatio: map[int]float64{}}
			var ref []int64
			for _, size := range sizes {
				cfg := SimConfig().WithPEs(20)
				switch {
				case size == 0:
					cfg = cfg.WithCMapBytes(0)
				case size < 0:
					cfg = cfg.WithUnlimitedCMap()
				default:
					cfg = cfg.WithCMapBytes(size)
				}
				r, err := sim.Simulate(w.G, w.Plan, cfg)
				if err != nil {
					return nil, err
				}
				if ref == nil {
					ref = r.Counts
				} else if err := checkCounts(app, ds, r.Counts, ref); err != nil {
					return nil, err
				}
				row.Cycles[size] = r.Stats.Cycles
				row.ReadRatio[size] = r.Stats.CMap.ReadRatio()
			}
			for _, size := range sizes {
				row.Speedup[size] = float64(row.Cycles[0]) / float64(row.Cycles[size])
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ------------------------------------------------------------------ Fig 15

// Fig15Row holds PE-scaling cycles (8 kB c-map), normalized to one PE.
type Fig15Row struct {
	App, Dataset string
	Cycles       map[int]int64
	Scaling      map[int]float64 // PE → cycles(1PE)/cycles(PE)
}

// Fig15PEs is the sweep of Fig 15.
var Fig15PEs = []int{1, 2, 4, 8, 16, 32, 64}

// Fig15 sweeps PE counts with the default 8 kB c-map.
func Fig15(quick bool) ([]Fig15Row, error) {
	apps := []string{"TC", "4-CL", "SL-4cycle", "3-MC"}
	pes := Fig15PEs
	if quick {
		apps = []string{"TC"}
		pes = []int{1, 4, 16}
	}
	var rows []Fig15Row
	for _, app := range apps {
		datasets := AppDatasets(app)
		if quick {
			datasets = datasets[:1]
		}
		for _, ds := range datasets {
			w, err := NewWorkload(app, ds)
			if err != nil {
				return nil, err
			}
			row := Fig15Row{App: app, Dataset: ds, Cycles: map[int]int64{}, Scaling: map[int]float64{}}
			for _, pe := range pes {
				r, err := sim.Simulate(w.G, w.Plan, SimConfig().WithPEs(pe))
				if err != nil {
					return nil, err
				}
				row.Cycles[pe] = r.Stats.Cycles
			}
			for _, pe := range pes {
				row.Scaling[pe] = float64(row.Cycles[pes[0]]) / float64(row.Cycles[pe])
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// ------------------------------------------------------------------ Fig 16

// Fig16Row holds memory-system traffic per c-map size: NoC requests (= L2
// accesses) and DRAM accesses.
type Fig16Row struct {
	App, Dataset string
	NoC          map[int]int64
	DRAM         map[int]int64
}

// Fig16 measures traffic at 20 PEs across c-map sizes.
func Fig16(quick bool) ([]Fig16Row, error) {
	apps := []string{"TC", "4-CL", "SL-4cycle", "SL-diamond"}
	sizes := []int{0, 1 << 10, 4 << 10, 8 << 10, 16 << 10}
	if quick {
		apps = []string{"SL-4cycle"}
		sizes = []int{0, 4 << 10}
	}
	var rows []Fig16Row
	for _, app := range apps {
		datasets := AppDatasets(app)
		if quick {
			datasets = datasets[:1]
		}
		for _, ds := range datasets {
			w, err := NewWorkload(app, ds)
			if err != nil {
				return nil, err
			}
			row := Fig16Row{App: app, Dataset: ds, NoC: map[int]int64{}, DRAM: map[int]int64{}}
			for _, size := range sizes {
				cfg := SimConfig().WithPEs(20).WithCMapBytes(size)
				r, err := sim.Simulate(w.G, w.Plan, cfg)
				if err != nil {
					return nil, err
				}
				row.NoC[size] = r.Stats.NoCRequests
				row.DRAM[size] = r.Stats.DRAMAccesses
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// --------------------------------------------------- §VII-D large patterns

// LargePatternRow compares 20-PE FlexMiner to the CPU baseline for k-CL on
// the patents stand-in (k ∈ [5,9]) plus TC on the orkut stand-in.
type LargePatternRow struct {
	Label       string
	BaselineSec float64
	SimSec      float64
	Speedup     float64
}

// LargePatterns runs the §VII-D sweep.
func LargePatterns(quick bool) ([]LargePatternRow, error) {
	ks := []int{5, 6, 7, 8, 9}
	if quick {
		ks = []int{5}
	}
	var rows []LargePatternRow
	for _, k := range ks {
		w, err := NewWorkload(fmt.Sprintf("%d-CL", k), "Pa")
		if err != nil {
			return nil, err
		}
		base, counts, err := w.BaselineSeconds(BaselineThreads)
		if err != nil {
			return nil, err
		}
		r, err := sim.Simulate(w.G, w.Plan, SimConfig().WithPEs(20))
		if err != nil {
			return nil, err
		}
		if err := checkCounts(w.App, "Pa", r.Counts, counts); err != nil {
			return nil, err
		}
		rows = append(rows, LargePatternRow{
			Label:       fmt.Sprintf("%d-CL/Pa", k),
			BaselineSec: base,
			SimSec:      r.Stats.Seconds,
			Speedup:     base / r.Stats.Seconds,
		})
	}
	if !quick {
		w, err := NewWorkload("TC", "Or")
		if err != nil {
			return nil, err
		}
		base, counts, err := w.BaselineSeconds(BaselineThreads)
		if err != nil {
			return nil, err
		}
		r, err := sim.Simulate(w.G, w.Plan, SimConfig().WithPEs(20))
		if err != nil {
			return nil, err
		}
		if err := checkCounts("TC", "Or", r.Counts, counts); err != nil {
			return nil, err
		}
		rows = append(rows, LargePatternRow{
			Label:       "TC/Or",
			BaselineSec: base,
			SimSec:      r.Stats.Seconds,
			Speedup:     base / r.Stats.Seconds,
		})
	}
	return rows, nil
}

// -------------------------------------------------------- §VII-E ablation

// AblationResult decomposes the speedup the way §VII-E does: PE
// specialization (specialized SIU/SDU vs scalar set ops), multithreading
// (1 → N PE), and the c-map contribution on top.
type AblationResult struct {
	App, Dataset         string
	SpecializationFactor float64 // scalar-set-op cycles / SIU cycles, 40 PE
	MultithreadFactor    float64 // 1-PE cycles / 40-PE cycles (no cmap)
	CMapFactor           float64 // no-cmap cycles / 8kB-cmap cycles, 40 PE
}

// Ablation runs the attribution experiment for one (app, dataset).
func Ablation(app, ds string, pes int) (AblationResult, error) {
	w, err := NewWorkload(app, ds)
	if err != nil {
		return AblationResult{}, err
	}
	base := SimConfig().WithPEs(pes).WithCMapBytes(0)

	spec, err := sim.Simulate(w.G, w.Plan, base)
	if err != nil {
		return AblationResult{}, err
	}
	scalarCfg := base
	scalarCfg.ScalarSetOpCycles = 3 // a branchy scalar core needs ~4 cycles/element
	scalar, err := sim.Simulate(w.G, w.Plan, scalarCfg)
	if err != nil {
		return AblationResult{}, err
	}
	one, err := sim.Simulate(w.G, w.Plan, base.WithPEs(1))
	if err != nil {
		return AblationResult{}, err
	}
	withCMap, err := sim.Simulate(w.G, w.Plan, SimConfig().WithPEs(pes))
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{
		App: app, Dataset: ds,
		SpecializationFactor: float64(scalar.Stats.Cycles) / float64(spec.Stats.Cycles),
		MultithreadFactor:    float64(one.Stats.Cycles) / float64(spec.Stats.Cycles),
		CMapFactor:           float64(spec.Stats.Cycles) / float64(withCMap.Stats.Cycles),
	}, nil
}

func checkCounts(app, ds string, got, want []int64) error {
	if len(got) != len(want) {
		return fmt.Errorf("%s/%s: count arity %d vs %d", app, ds, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			return fmt.Errorf("%s/%s: count[%d] mismatch: %d vs %d", app, ds, i, got[i], want[i])
		}
	}
	return nil
}
