package bench

// Golden lockdown of the `experiments table2 -metrics` artifact: Table II's
// registered counters are schedule-invariant and the datasets are seeded, so
// the exported JSON is byte-identical across runs and machines. This test
// mirrors exactly what cmd/experiments registers (one AddStats per row under
// a per-experiment phase) and pins the bytes. Regenerate with:
//
//	go test ./internal/bench -run Table2MetricsGolden -update
//
// after any deliberate change to Table2Row, core.Stats, or the JSON schema.

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/obs"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden metrics artifact")

func TestTable2MetricsGolden(t *testing.T) {
	rows, err := Table2(true)
	if err != nil {
		t.Fatal(err)
	}
	export := func() []byte {
		reg := obs.NewRegistry(obs.NewVirtualClock())
		end := reg.StartPhase("table2")
		for i := range rows {
			r := &rows[i]
			obs.AddStats(reg, fmt.Sprintf("table2.%s.%s", r.App, r.Dataset), r)
		}
		end()
		var buf bytes.Buffer
		if err := reg.WriteJSON(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("two exports of the same rows differ — registry export is nondeterministic")
	}

	path := filepath.Join("testdata", "golden", "table2_quick.metrics.json")
	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, a, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden %s (run with -update to create): %v", path, err)
	}
	if !bytes.Equal(a, want) {
		t.Errorf("table2 metrics drifted from golden %s; if the change is intended, rerun with -update and review", path)
	}
}
