package bench

import (
	"strings"
	"testing"
)

func TestDatasetsRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, d := range Datasets() {
		if seen[d.Name] {
			t.Errorf("duplicate dataset %s", d.Name)
		}
		seen[d.Name] = true
		g, err := Get(d.Name)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", d.Name, err)
		}
		if g2, _ := Get(d.Name); g2 != g {
			t.Errorf("%s: not cached", d.Name)
		}
	}
	for _, name := range []string{"As", "Mi", "Pa", "Yo", "Lj", "Or"} {
		if !seen[name] {
			t.Errorf("missing Table I dataset %s", name)
		}
	}
	if _, err := Get("Nope"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestTable1Stats(t *testing.T) {
	rows := Table1()
	if len(rows) != 6 {
		t.Fatalf("Table1 rows = %d", len(rows))
	}
	// Mi must be the densest input (§VII-C: "Mi is the most dense graph").
	var miAvg, maxOther float64
	for _, r := range rows {
		if r.Name == "Mi" {
			miAvg = r.AvgDegree
		} else if r.Name != "Or" && r.AvgDegree > maxOther {
			maxOther = r.AvgDegree
		}
	}
	if miAvg <= maxOther {
		t.Errorf("Mi avg degree %.1f not densest (other max %.1f)", miAvg, maxOther)
	}
}

func TestWorkloadsCompile(t *testing.T) {
	for _, app := range []string{"TC", "4-CL", "5-CL", "SL-4cycle", "SL-diamond", "SL-house", "3-MC", "7-CL"} {
		w, err := NewWorkload(app, "As")
		if err != nil {
			t.Fatalf("%s: %v", app, err)
		}
		if w.Plan.RequiresDAG != w.G.IsDAG() {
			t.Errorf("%s: plan/graph DAG mismatch", app)
		}
	}
	if _, err := NewWorkload("bogus", "As"); err == nil {
		t.Error("unknown app accepted")
	}
	if _, err := NewWorkload("TC", "bogus"); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestFig14QuickShapes(t *testing.T) {
	rows, err := Fig14(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup[0] != 1 {
			t.Errorf("%s/%s: no-cmap speedup %v != 1", r.App, r.Dataset, r.Speedup[0])
		}
		// The c-map must help 4-cycle (the paper's headline case).
		if r.App == "SL-4cycle" && r.Speedup[4<<10] <= 1.0 {
			t.Errorf("%s/%s: 4kB c-map speedup %.3f <= 1", r.App, r.Dataset, r.Speedup[4<<10])
		}
	}
}

func TestFig16QuickShapes(t *testing.T) {
	rows, err := Fig16(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.NoC[0] == 0 {
			t.Errorf("%s/%s: zero baseline traffic", r.App, r.Dataset)
		}
		if r.App == "SL-4cycle" && r.NoC[4<<10] >= r.NoC[0] {
			t.Errorf("%s/%s: c-map did not cut NoC traffic (%d >= %d)",
				r.App, r.Dataset, r.NoC[4<<10], r.NoC[0])
		}
	}
}

func TestFig15QuickScaling(t *testing.T) {
	rows, err := Fig15(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Scaling[1] != 1 {
			t.Errorf("%s/%s: 1-PE scaling %v", r.App, r.Dataset, r.Scaling[1])
		}
		if r.Scaling[16] < 2 {
			t.Errorf("%s/%s: 16-PE scaling only %.2fx", r.App, r.Dataset, r.Scaling[16])
		}
	}
}

func TestTable2QuickOrdering(t *testing.T) {
	rows, err := Table2(true)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.SearchOblivious == 0 {
			continue // oblivious skipped as intractable for this row
		}
		// Pattern-aware search trees must be no larger than oblivious ones.
		if r.SearchAware > r.SearchOblivious {
			t.Errorf("%s/%s: aware tree %d > oblivious %d",
				r.App, r.Dataset, r.SearchAware, r.SearchOblivious)
		}
	}
}

func TestAblationFactors(t *testing.T) {
	r, err := Ablation("SL-4cycle", "As", 8)
	if err != nil {
		t.Fatal(err)
	}
	if r.SpecializationFactor < 1 {
		t.Errorf("specialization factor %.2f < 1", r.SpecializationFactor)
	}
	if r.MultithreadFactor < 2 {
		t.Errorf("8-PE multithread factor %.2f < 2", r.MultithreadFactor)
	}
	if r.CMapFactor < 1 {
		t.Errorf("c-map factor %.2f < 1", r.CMapFactor)
	}
}

func TestPrinters(t *testing.T) {
	var sb strings.Builder
	PrintTable1(&sb)
	rows14, err := Fig14(true)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig14(&sb, rows14)
	rows16, err := Fig16(true)
	if err != nil {
		t.Fatal(err)
	}
	PrintFig16(&sb, rows16)
	out := sb.String()
	for _, want := range []string{"Table I", "Fig 14", "Fig 16", "As"} {
		if !strings.Contains(out, want) {
			t.Errorf("printer output missing %q", want)
		}
	}
}
