package bench

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
)

// Workload pairs a compiled plan with the (possibly orientation-preprocessed)
// graph it runs on, so the CPU engine and the simulator execute exactly the
// same search.
type Workload struct {
	App     string
	Dataset string
	G       *graph.Graph
	Plan    *plan.Plan
}

// planForApp compiles the plan used by one of the standard applications.
// Cliques (TC, k-CL) use the orientation optimization; SL uses edge-induced
// single-pattern plans; k-MC uses the vertex-induced motif tree.
func planForApp(app string) (*plan.Plan, bool, error) {
	switch app {
	case "TC":
		pl, err := plan.CompileCliqueDAG(3)
		return pl, true, err
	case "4-CL":
		pl, err := plan.CompileCliqueDAG(4)
		return pl, true, err
	case "5-CL":
		pl, err := plan.CompileCliqueDAG(5)
		return pl, true, err
	case "SL-4cycle":
		pl, err := plan.Compile(pattern.FourCycle(), plan.Options{})
		return pl, false, err
	case "SL-diamond":
		pl, err := plan.Compile(pattern.Diamond(), plan.Options{})
		return pl, false, err
	case "SL-house":
		pl, err := plan.Compile(pattern.House(), plan.Options{})
		return pl, false, err
	case "3-MC":
		pl, err := plan.CompileMotifs(3, plan.Options{})
		return pl, false, err
	case "4-MC":
		pl, err := plan.CompileMotifs(4, plan.Options{})
		return pl, false, err
	}
	var k int
	if _, err := fmt.Sscanf(app, "%d-CL", &k); err == nil && k >= 2 {
		pl, err := plan.CompileCliqueDAG(k)
		return pl, true, err
	}
	return nil, false, fmt.Errorf("bench: unknown app %q", app)
}

// autoMinePlan compiles the AutoMine-mode variant (no symmetry order) of an
// app's plan; it runs on the symmetric graph.
func autoMinePlan(app string) (*plan.Plan, error) {
	opt := plan.Options{NoSymmetry: true}
	switch app {
	case "TC":
		return plan.Compile(pattern.Triangle(), opt)
	case "4-CL":
		return plan.Compile(pattern.KClique(4), opt)
	case "5-CL":
		return plan.Compile(pattern.KClique(5), opt)
	case "SL-4cycle":
		return plan.Compile(pattern.FourCycle(), opt)
	case "SL-diamond":
		return plan.Compile(pattern.Diamond(), opt)
	case "3-MC":
		opt.Induced = true
		return plan.CompileMulti(pattern.Motifs(3), opt)
	}
	return nil, fmt.Errorf("bench: no AutoMine variant for %q", app)
}

var dagCache = map[string]*graph.Graph{}

// NewWorkload builds the workload for an (app, dataset) pair, caching the
// oriented DAG per dataset (the paper amortizes orientation the same way:
// "once converted, the graph can be used for any k-CL").
func NewWorkload(app, dataset string) (Workload, error) {
	pl, needsDAG, err := planForApp(app)
	if err != nil {
		return Workload{}, err
	}
	g, err := Get(dataset)
	if err != nil {
		return Workload{}, err
	}
	if needsDAG {
		dsMu.Lock()
		dag, ok := dagCache[dataset]
		if !ok {
			dag = g.Orient()
			dagCache[dataset] = dag
		}
		dsMu.Unlock()
		g = dag
	}
	return Workload{App: app, Dataset: dataset, G: g, Plan: pl}, nil
}

// BaselineSeconds times the CPU software baseline (GraphZero-equivalent) on
// this workload with the given thread count, returning the wall-clock
// seconds and the counts for cross-checking. The kernel policy is pinned to
// merge-only: the published baselines this models (GraphZero, AutoMine) are
// merge-based, so the accelerator speedup figures keep the paper's meaning.
// KernelSeconds times the modernized adaptive-kernel engine for A/B runs.
func (w Workload) BaselineSeconds(threads int) (float64, []int64, error) {
	return w.KernelSeconds(threads, core.KernelMergeOnly)
}

// KernelSeconds times the CPU engine under an explicit kernel policy.
func (w Workload) KernelSeconds(threads int, kernel core.KernelPolicy) (float64, []int64, error) {
	eng, err := core.NewEngine(w.G, w.Plan, core.Options{Threads: threads, Kernel: kernel})
	if err != nil {
		return 0, nil, err
	}
	start := now()
	res := eng.Mine()
	return since(start), res.Counts, nil
}
