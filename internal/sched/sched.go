package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Hooks observe scheduler-internal events for the observability layer
// (internal/obs). The zero value observes nothing; callbacks run on the
// worker goroutine that triggered the event, so implementations must be
// cheap and safe for concurrent use.
type Hooks struct {
	// OnSteal fires after a successful steal: thief took ntasks tasks from
	// victim's deque (both are worker indices).
	OnSteal func(thief, victim, ntasks int)

	// OnTask fires after fn returns for a task — the task was executed
	// (possibly partially, when cancellation latched mid-task). This is the
	// live-progress feed of serve mode's /debug/progress endpoint.
	OnTask func(worker int, t Task)
}

// Run executes every task at most once across workers goroutines using
// per-worker deques with work stealing, and exactly once when the run is
// neither cancelled nor stopped. fn is invoked with the worker index
// (0 ≤ w < workers) and the task; returning false halts the whole run
// (cooperative cancellation detected inside a task). Run returns ctx.Err()
// — nil unless the context was cancelled or expired, in which case callers
// hold partial results.
func Run(ctx context.Context, workers int, tasks []Task, fn func(worker int, t Task) bool) error {
	return RunHooked(ctx, workers, tasks, fn, Hooks{})
}

// RunHooked is Run with scheduler-event observation.
func RunHooked(ctx context.Context, workers int, tasks []Task, fn func(worker int, t Task) bool, h Hooks) error {
	if workers < 1 {
		workers = 1
	}
	deques := make([]deque, workers)
	for i := range deques {
		share := len(tasks)/workers + 1
		deques[i].ts = make([]Task, 0, share)
	}
	// Deal round-robin: after degree-descending ordering, every deque gets
	// an interleaved heavy-to-light run of the global LPT sequence.
	for i, t := range tasks {
		d := &deques[i%workers]
		d.ts = append(d.ts, t)
	}

	// unclaimed counts tasks not yet popped for execution. Steals move
	// tasks between deques without changing it, so unclaimed == 0 means no
	// deque will ever hold work again and idle workers may retire.
	var unclaimed atomic.Int64
	unclaimed.Store(int64(len(tasks)))

	var stopped atomic.Bool
	done := ctx.Done()
	halted := func() bool {
		if stopped.Load() {
			return true
		}
		select {
		case <-done:
			stopped.Store(true)
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			self := &deques[w]
			for !halted() {
				t, ok := self.popFront()
				if !ok {
					if unclaimed.Load() == 0 {
						return
					}
					victim, n := steal(deques, w, self)
					if n == 0 {
						// Work exists but is in flight (being executed, or
						// mid-transfer in a thief's hands); tasks never
						// respawn, so yield and re-sweep.
						runtime.Gosched()
					} else if h.OnSteal != nil {
						h.OnSteal(w, victim, n)
					}
					continue
				}
				unclaimed.Add(-1)
				ok = fn(w, t)
				if h.OnTask != nil {
					h.OnTask(w, t)
				}
				if !ok {
					stopped.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// steal sweeps the other deques from self+1 onward and moves the first
// non-empty victim's back half into the thief's own deque, reporting the
// victim index and the number of tasks taken (0 when every sweep came up
// empty).
func steal(deques []deque, self int, into *deque) (victim, n int) {
	for off := 1; off < len(deques); off++ {
		vi := (self + off) % len(deques)
		v := &deques[vi]
		if loot := v.stealTail(); len(loot) > 0 {
			into.push(loot)
			return vi, len(loot)
		}
	}
	return 0, 0
}
