package sched

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Hooks observe scheduler-internal events for the observability layer
// (internal/obs). The zero value observes nothing; callbacks run on the
// worker goroutine that triggered the event, so implementations must be
// cheap and safe for concurrent use.
type Hooks struct {
	// OnSteal fires after a successful steal: thief took ntasks tasks from
	// victim's deque (both are worker indices).
	OnSteal func(thief, victim, ntasks int)

	// OnStealTier fires after a successful steal under a sharded run, with
	// the locality tier: StealLocal when thief and victim share a worker
	// group, StealCross otherwise. Runs without shard grouping (Run /
	// RunHooked) never fire it.
	OnStealTier func(thief, victim, ntasks, tier int)

	// OnTask fires after fn returns for a task — the task was executed
	// (possibly partially, when cancellation latched mid-task). This is the
	// live-progress feed of serve mode's /debug/progress endpoint.
	OnTask func(worker int, t Task)
}

// MergeHooks fans every scheduler event out to each of hs in order, so two
// independent observers (say, a live Progress tracker and an obs.Registry
// feed) can watch one run. Nil callbacks are skipped; merging zero or one
// hook sets is the identity.
func MergeHooks(hs ...Hooks) Hooks {
	var out Hooks
	for _, h := range hs {
		h := h
		if h.OnSteal != nil {
			prev := out.OnSteal
			out.OnSteal = func(thief, victim, ntasks int) {
				if prev != nil {
					prev(thief, victim, ntasks)
				}
				h.OnSteal(thief, victim, ntasks)
			}
		}
		if h.OnStealTier != nil {
			prev := out.OnStealTier
			out.OnStealTier = func(thief, victim, ntasks, tier int) {
				if prev != nil {
					prev(thief, victim, ntasks, tier)
				}
				h.OnStealTier(thief, victim, ntasks, tier)
			}
		}
		if h.OnTask != nil {
			prev := out.OnTask
			out.OnTask = func(worker int, t Task) {
				if prev != nil {
					prev(worker, t)
				}
				h.OnTask(worker, t)
			}
		}
	}
	return out
}

// Run executes every task at most once across workers goroutines using
// per-worker deques with work stealing, and exactly once when the run is
// neither cancelled nor stopped. fn is invoked with the worker index
// (0 ≤ w < workers) and the task; returning false halts the whole run
// (cooperative cancellation detected inside a task). Run returns ctx.Err()
// — nil unless the context was cancelled or expired, in which case callers
// hold partial results.
func Run(ctx context.Context, workers int, tasks []Task, fn func(worker int, t Task) bool) error {
	return RunHooked(ctx, workers, tasks, fn, Hooks{})
}

// RunHooked is Run with scheduler-event observation.
func RunHooked(ctx context.Context, workers int, tasks []Task, fn func(worker int, t Task) bool, h Hooks) error {
	if workers < 1 {
		workers = 1
	}
	deques := make([]deque, workers)
	for i := range deques {
		share := len(tasks)/workers + 1
		deques[i].ts = make([]Task, 0, share)
	}
	// Deal round-robin: after degree-descending ordering, every deque gets
	// an interleaved heavy-to-light run of the global LPT sequence.
	for i, t := range tasks {
		d := &deques[i%workers]
		d.ts = append(d.ts, t)
	}
	// Victims swept cyclically from self+1; no locality grouping.
	order := make([][]int, workers)
	for w := 0; w < workers; w++ {
		ord := make([]int, 0, workers-1)
		for off := 1; off < workers; off++ {
			ord = append(ord, (w+off)%workers)
		}
		order[w] = ord
	}
	return runLoop(ctx, deques, order, nil, int64(len(tasks)), fn, h)
}

// runLoop is the work-stealing engine shared by RunHooked and RunSharded:
// deques are pre-seeded, order[w] is worker w's victim sweep sequence, and
// groupOf (nil for ungrouped runs) classifies steals into locality tiers.
func runLoop(ctx context.Context, deques []deque, order [][]int, groupOf []int, total int64, fn func(worker int, t Task) bool, h Hooks) error {
	// unclaimed counts tasks not yet popped for execution. Steals move
	// tasks between deques without changing it, so unclaimed == 0 means no
	// deque will ever hold work again and idle workers may retire.
	var unclaimed atomic.Int64
	unclaimed.Store(total)

	var stopped atomic.Bool
	done := ctx.Done()
	halted := func() bool {
		if stopped.Load() {
			return true
		}
		select {
		case <-done:
			stopped.Store(true)
			return true
		default:
			return false
		}
	}

	var wg sync.WaitGroup
	for w := range deques {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			self := &deques[w]
			for !halted() {
				t, ok := self.popFront()
				if !ok {
					if unclaimed.Load() == 0 {
						return
					}
					victim, n := steal(deques, order[w], self)
					if n == 0 {
						// Work exists but is in flight (being executed, or
						// mid-transfer in a thief's hands); tasks never
						// respawn, so yield and re-sweep.
						runtime.Gosched()
						continue
					}
					if h.OnSteal != nil {
						h.OnSteal(w, victim, n)
					}
					if h.OnStealTier != nil && groupOf != nil {
						tier := StealLocal
						if groupOf[w] != groupOf[victim] {
							tier = StealCross
						}
						h.OnStealTier(w, victim, n, tier)
					}
					continue
				}
				unclaimed.Add(-1)
				ok = fn(w, t)
				if h.OnTask != nil {
					h.OnTask(w, t)
				}
				if !ok {
					stopped.Store(true)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// steal sweeps the victim order and moves the first non-empty victim's back
// half into the thief's own deque, reporting the victim index and the number
// of tasks taken (0 when every sweep came up empty).
func steal(deques []deque, order []int, into *deque) (victim, n int) {
	for _, vi := range order {
		v := &deques[vi]
		if loot := v.stealTail(); len(loot) > 0 {
			into.push(loot)
			return vi, len(loot)
		}
	}
	return 0, 0
}
