package sched

import "sync"

// deque is a mutex-guarded work queue. The owner pops from the front — with
// degree-descending seeding that is heaviest-first — while thieves take the
// lighter back half in one grab, amortizing steal overhead. Tasks are never
// re-enqueued by the owner, so head only advances and the backing slice only
// shrinks (except when a thief deposits a stolen batch into its own deque).
type deque struct {
	mu   sync.Mutex
	head int
	ts   []Task
}

// push appends a batch (initial dealing, or the thief depositing loot).
func (d *deque) push(ts []Task) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ts = append(d.ts, ts...)
}

// popFront removes and returns the frontmost task.
func (d *deque) popFront() (Task, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.head == len(d.ts) {
		return Task{}, false
	}
	t := d.ts[d.head]
	d.head++
	return t, true
}

// stealTail removes up to half (at least one) of the remaining tasks from
// the back and returns them as a fresh slice — a copy, because the victim's
// backing array may later be appended over by its own push.
func (d *deque) stealTail() []Task {
	d.mu.Lock()
	defer d.mu.Unlock()
	avail := len(d.ts) - d.head
	if avail == 0 {
		return nil
	}
	take := avail / 2
	if take == 0 {
		take = 1
	}
	out := make([]Task, take)
	copy(out, d.ts[len(d.ts)-take:])
	d.ts = d.ts[:len(d.ts)-take]
	return out
}
