package sched

import (
	"context"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// coverage collects, per vertex, which adjacency elements the task list
// covers, to assert Expand partitions exactly.
func coverage(g *graph.Graph, tasks []Task) map[graph.VID][]bool {
	cov := map[graph.VID][]bool{}
	for _, t := range tasks {
		deg := g.Degree(t.V0)
		seen, ok := cov[t.V0]
		if !ok {
			seen = make([]bool, deg)
			cov[t.V0] = seen
		}
		lo, hi := t.Lo, t.Hi
		if !t.Sliced() {
			lo, hi = 0, deg
		}
		for i := lo; i < hi; i++ {
			if seen[i] {
				return nil // double cover
			}
			seen[i] = true
		}
	}
	return cov
}

func TestExpandPartitionsAdjacency(t *testing.T) {
	g := graph.ChungLu(200, 1500, 2.2, 11)
	for _, slice := range []int{0, 1, 7, 32, 1 << 20} {
		tasks := Expand(g, slice)
		cov := coverage(g, tasks)
		if cov == nil {
			t.Fatalf("slice=%d: overlapping tasks", slice)
		}
		if len(cov) != g.NumVertices() {
			t.Fatalf("slice=%d: %d vertices covered, want %d", slice, len(cov), g.NumVertices())
		}
		for v, seen := range cov {
			for i, ok := range seen {
				if !ok {
					t.Fatalf("slice=%d: vertex %d element %d uncovered", slice, v, i)
				}
			}
		}
		if slice > 0 {
			for _, task := range tasks {
				if task.Sliced() && task.Hi-task.Lo > slice {
					t.Fatalf("slice=%d: task %+v too wide", slice, task)
				}
			}
		}
	}
}

func TestExpandZeroDegree(t *testing.T) {
	g := graph.MustFromEdges(4, []graph.Edge{{U: 0, V: 1}}) // vertices 2, 3 isolated
	tasks := Expand(g, 4)
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks, want 4", len(tasks))
	}
	for _, task := range tasks {
		if task.Sliced() {
			t.Fatalf("small vertices must stay whole: %+v", task)
		}
	}
}

func TestOrderByDegreeDesc(t *testing.T) {
	g := graph.ChungLu(100, 600, 2.3, 5)
	tasks := Expand(g, 8)
	OrderByDegreeDesc(g, tasks)
	for i := 1; i < len(tasks); i++ {
		if g.Degree(tasks[i-1].V0) < g.Degree(tasks[i].V0) {
			t.Fatalf("not degree-descending at %d", i)
		}
	}
	// Stability: slices of one hub keep ascending Lo.
	lastLo := map[graph.VID]int{}
	for _, task := range tasks {
		if lo, ok := lastLo[task.V0]; ok && task.Lo <= lo {
			t.Fatalf("slice order broken for vertex %d", task.V0)
		}
		lastLo[task.V0] = task.Lo
	}
}

func TestRunExecutesEachTaskOnce(t *testing.T) {
	g := graph.ChungLu(300, 2400, 2.3, 9)
	tasks := Expand(g, 16)
	OrderByDegreeDesc(g, tasks)
	for _, workers := range []int{1, 3, 8, 64, len(tasks) + 5} {
		ran := make([]atomic.Int32, len(tasks))
		index := map[Task]int{}
		for i, task := range tasks {
			index[task] = i
		}
		err := Run(context.Background(), workers, tasks, func(w int, task Task) bool {
			if w < 0 || w >= workers {
				t.Errorf("worker index %d out of range", w)
			}
			ran[index[task]].Add(1)
			return true
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Fatalf("workers=%d: task %d ran %d times", workers, i, n)
			}
		}
	}
}

func TestRunEmptyTaskList(t *testing.T) {
	if err := Run(context.Background(), 4, nil, func(int, Task) bool { return true }); err != nil {
		t.Fatal(err)
	}
}

func TestRunCancelled(t *testing.T) {
	g := graph.ChungLu(400, 3000, 2.3, 3)
	tasks := Expand(g, 0)
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	err := Run(ctx, 4, tasks, func(w int, task Task) bool {
		if executed.Add(1) == 10 {
			cancel()
		}
		return true
	})
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := executed.Load(); n >= int64(len(tasks)) {
		t.Fatalf("cancellation did not cut the run short (%d/%d)", n, len(tasks))
	}
}

func TestRunStopsWhenFnReturnsFalse(t *testing.T) {
	g := graph.ChungLu(400, 3000, 2.3, 3)
	tasks := Expand(g, 0)
	var executed atomic.Int64
	err := Run(context.Background(), 4, tasks, func(w int, task Task) bool {
		return executed.Add(1) < 5
	})
	if err != nil {
		t.Fatal(err)
	}
	if n := executed.Load(); n >= int64(len(tasks)) {
		t.Fatalf("fn=false did not halt the run (%d/%d)", n, len(tasks))
	}
}

func TestRunHookedOnTaskFiresPerExecution(t *testing.T) {
	g := graph.ChungLu(300, 2400, 2.3, 9)
	tasks := Expand(g, 16)
	OrderByDegreeDesc(g, tasks)
	var executed, observed atomic.Int64
	seen := make([]atomic.Int32, len(tasks))
	index := map[Task]int{}
	for i, task := range tasks {
		index[task] = i
	}
	h := Hooks{OnTask: func(w int, task Task) {
		observed.Add(1)
		seen[index[task]].Add(1)
	}}
	err := RunHooked(context.Background(), 8, tasks, func(w int, task Task) bool {
		executed.Add(1)
		return true
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Load() != executed.Load() || observed.Load() != int64(len(tasks)) {
		t.Fatalf("OnTask fired %d times for %d executions of %d tasks",
			observed.Load(), executed.Load(), len(tasks))
	}
	for i := range seen {
		if n := seen[i].Load(); n != 1 {
			t.Fatalf("task %d observed %d times", i, n)
		}
	}
}

func TestRunHookedOnTaskFiresForHaltingTask(t *testing.T) {
	// The task whose fn returns false was still executed (partially), so the
	// live-progress feed must count it — OnTask fires before the halt.
	g := graph.ChungLu(300, 2400, 2.3, 9)
	tasks := Expand(g, 0)
	var executed, observed atomic.Int64
	h := Hooks{OnTask: func(int, Task) { observed.Add(1) }}
	err := RunHooked(context.Background(), 1, tasks, func(int, Task) bool {
		return executed.Add(1) < 5
	}, h)
	if err != nil {
		t.Fatal(err)
	}
	if observed.Load() != executed.Load() {
		t.Fatalf("OnTask fired %d times for %d executions", observed.Load(), executed.Load())
	}
}
