// Package sched is the shared task-generation and scheduling runtime that
// sits under every execution layer: the CPU engine (internal/core), the
// cycle-level accelerator model (internal/sim) and the benchmark harness
// (internal/bench). It owns two concerns the paper assigns to the global
// task scheduler of §IV:
//
//   - task expansion — turning the vertex set into schedulable units,
//     slicing hub vertices into several independent sub-tasks so one
//     power-law hub cannot serialize a whole worker or PE;
//   - task dispatch — for the CPU engine, a per-worker deque work-stealing
//     scheduler seeded degree-descending (longest-processing-time-first),
//     with first-class context cancellation. The simulator keeps its own
//     deterministic event-driven dispatch but consumes the same task list.
package sched

import (
	"sort"

	"repro/internal/graph"
)

// All marks a task that covers the full level-1 adjacency of its vertex.
const All = -1

// Task is one schedulable unit of mining work: a start vertex and, when hub
// slicing is enabled, the half-open level-1 adjacency element range
// [Lo, Hi) it covers. Hi == All means the task spans the whole adjacency.
type Task struct {
	V0     graph.VID
	Lo, Hi int
}

// Sliced reports whether the task is restricted to an adjacency sub-range.
func (t Task) Sliced() bool { return t.Hi >= 0 }

// Expand turns the vertex set of g into the task list, splitting each vertex
// whose adjacency exceeds slice elements into ceil(degree/slice) sub-tasks
// (the §IV task dispatch generalized with hub slicing). slice <= 0 yields
// one whole-vertex task per vertex.
func Expand(g graph.Store, slice int) []Task {
	n := g.NumVertices()
	if slice <= 0 {
		tasks := make([]Task, n)
		for v := 0; v < n; v++ {
			tasks[v] = Task{V0: graph.VID(v), Lo: 0, Hi: All}
		}
		return tasks
	}
	tasks := make([]Task, 0, n)
	for v := 0; v < n; v++ {
		deg := g.Degree(graph.VID(v))
		if deg <= slice {
			tasks = append(tasks, Task{V0: graph.VID(v), Lo: 0, Hi: All})
			continue
		}
		for lo := 0; lo < deg; lo += slice {
			hi := lo + slice
			if hi > deg {
				hi = deg
			}
			tasks = append(tasks, Task{V0: graph.VID(v), Lo: lo, Hi: hi})
		}
	}
	return tasks
}

// OrderByDegreeDesc reorders tasks heaviest-start-vertex-first (an LPT
// schedule seed): dealt round-robin across worker deques, every worker
// starts on a comparably heavy prefix and the cheap tail absorbs imbalance.
// The sort is stable so sub-tasks of one hub keep their Lo order.
func OrderByDegreeDesc(g graph.Store, tasks []Task) {
	sort.SliceStable(tasks, func(i, j int) bool {
		return g.Degree(tasks[i].V0) > g.Degree(tasks[j].V0)
	})
}
