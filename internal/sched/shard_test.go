package sched

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/graph"
)

// testShardMap partitions vertex IDs by explicit cut points.
type testShardMap struct {
	cuts []graph.VID // len shards+1
}

func (m testShardMap) NumShards() int { return len(m.cuts) - 1 }
func (m testShardMap) ShardOf(v graph.VID) int {
	for s := 0; s < m.NumShards(); s++ {
		if v < m.cuts[s+1] {
			return s
		}
	}
	return m.NumShards() - 1
}

// quarterMap splits [0, n) into 4 equal vertex ranges.
func quarterMap(n int) testShardMap {
	q := graph.VID(n / 4)
	return testShardMap{cuts: []graph.VID{0, q, 2 * q, 3 * q, graph.VID(n)}}
}

func TestWorkerGroups(t *testing.T) {
	cases := []struct {
		workers, shards int
		want            []int
	}{
		{8, 4, []int{0, 0, 1, 1, 2, 2, 3, 3}},
		{4, 4, []int{0, 1, 2, 3}},
		{2, 4, []int{0, 1}},
		{3, 4, []int{0, 1, 2}},
		{5, 2, []int{0, 0, 0, 1, 1}},
		{1, 4, []int{0}},
		{4, 1, []int{0, 0, 0, 0}},
	}
	for _, tc := range cases {
		got := WorkerGroups(tc.workers, tc.shards)
		if len(got) != len(tc.want) {
			t.Fatalf("WorkerGroups(%d,%d) len = %d", tc.workers, tc.shards, len(got))
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("WorkerGroups(%d,%d) = %v, want %v", tc.workers, tc.shards, got, tc.want)
			}
		}
		// Every group up to the max must be inhabited, and every shard's
		// group must exist among the workers.
		groups := got[len(got)-1] + 1
		for s := 0; s < tc.shards; s++ {
			if g := shardGroup(s, tc.shards, groups); g < 0 || g >= groups {
				t.Fatalf("shard %d maps to group %d of %d", s, g, groups)
			}
		}
	}
}

// TestRunShardedExactlyOnce checks the execution contract holds in both
// seeding modes: every task runs exactly once, no matter how stealing moves
// work around.
func TestRunShardedExactlyOnce(t *testing.T) {
	const n = 4000
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{V0: graph.VID(i % 1024), Lo: i, Hi: i + 1}
	}
	for _, oblivious := range []bool{false, true} {
		for _, workers := range []int{1, 3, 8} {
			var mu sync.Mutex
			seen := make(map[Task]int, n)
			err := RunSharded(context.Background(), workers, tasks,
				ShardOptions{Map: quarterMap(1024), Oblivious: oblivious},
				func(w int, tk Task) bool {
					mu.Lock()
					seen[tk]++
					mu.Unlock()
					return true
				}, Hooks{})
			if err != nil {
				t.Fatal(err)
			}
			if len(seen) != n {
				t.Fatalf("oblivious=%v workers=%d: %d distinct tasks ran, want %d", oblivious, workers, len(seen), n)
			}
			for tk, c := range seen {
				if c != 1 {
					t.Fatalf("oblivious=%v workers=%d: task %+v ran %d times", oblivious, workers, tk, c)
				}
			}
		}
	}
}

func TestRunShardedCancellation(t *testing.T) {
	tasks := make([]Task, 2000)
	for i := range tasks {
		tasks[i] = Task{V0: graph.VID(i % 256), Lo: 0, Hi: All}
	}
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := RunSharded(ctx, 4, tasks, ShardOptions{Map: quarterMap(256)},
		func(w int, tk Task) bool {
			if ran.Add(1) == 100 {
				cancel()
			}
			return ctx.Err() == nil
		}, Hooks{})
	if err == nil {
		t.Fatal("cancelled run returned nil")
	}
	if got := ran.Load(); got < 100 || got >= 2000 {
		t.Fatalf("ran %d tasks; want partial progress in [100, 2000)", got)
	}
}

// TestRunShardedTierClassification checks OnStealTier agrees with the
// exported WorkerGroups mapping for every reported steal.
func TestRunShardedTierClassification(t *testing.T) {
	const workers = 8
	sm := quarterMap(1024)
	groupOf := WorkerGroups(workers, sm.NumShards())
	tasks := make([]Task, 3000)
	for i := range tasks {
		tasks[i] = Task{V0: graph.VID((i * 31) % 1024), Lo: 0, Hi: All}
	}
	var bad atomic.Int64
	var steals atomic.Int64
	h := Hooks{OnStealTier: func(thief, victim, n, tier int) {
		steals.Add(1)
		want := StealLocal
		if groupOf[thief] != groupOf[victim] {
			want = StealCross
		}
		if tier != want {
			bad.Add(1)
		}
	}}
	// Uneven work so stealing actually happens.
	work := func(w int, tk Task) bool {
		spin := int(tk.V0%17) * 300
		for i := 0; i < spin; i++ {
			_ = i * i
		}
		return true
	}
	for run := 0; run < 4; run++ {
		if err := RunSharded(context.Background(), workers, tasks, ShardOptions{Map: sm}, work, h); err != nil {
			t.Fatal(err)
		}
	}
	if bad.Load() != 0 {
		t.Fatalf("%d of %d steals misclassified", bad.Load(), steals.Load())
	}
}

// TestMergeHooks checks fan-out order and that absent callbacks stay nil
// (so the scheduler's per-event nil test keeps skipping them).
func TestMergeHooks(t *testing.T) {
	if h := MergeHooks(); h.OnSteal != nil || h.OnStealTier != nil || h.OnTask != nil {
		t.Fatal("MergeHooks() of nothing must be the zero Hooks")
	}
	var log []string
	a := Hooks{
		OnSteal:     func(thief, victim, n int) { log = append(log, "a-steal") },
		OnStealTier: func(thief, victim, n, tier int) { log = append(log, "a-tier") },
	}
	b := Hooks{
		OnSteal: func(thief, victim, n int) { log = append(log, "b-steal") },
		OnTask:  func(w int, tk Task) { log = append(log, "b-task") },
	}
	m := MergeHooks(a, b)
	m.OnSteal(1, 0, 2)
	m.OnStealTier(1, 0, 2, StealCross)
	m.OnTask(0, Task{})
	want := []string{"a-steal", "b-steal", "a-tier", "b-task"}
	if len(log) != len(want) {
		t.Fatalf("log = %v, want %v", log, want)
	}
	for i := range want {
		if log[i] != want[i] {
			t.Fatalf("log = %v, want %v", log, want)
		}
	}
}

// countCrossSteals mines the task list under the given seeding mode and
// returns (cross, total) steal counts.
func countCrossSteals(t *testing.T, g *graph.Graph, sm ShardMap, workers int, oblivious bool, runs int) (int64, int64) {
	t.Helper()
	tasks := Expand(g, 0)
	OrderByDegreeDesc(g, tasks)
	var cross, total atomic.Int64
	h := Hooks{OnStealTier: func(thief, victim, n, tier int) {
		total.Add(1)
		if tier == StealCross {
			cross.Add(1)
		}
	}}
	// Work proportional to adjacency size times a per-vertex factor the
	// degree-descending deal cannot see: deque totals inside a group
	// diverge mid-run, so idle workers steal while their group still has
	// surplus — the case shard-local sweeping serves from the local tier
	// and shard-oblivious sweeping serves mostly cross-group.
	var sink atomic.Uint64
	work := func(w int, tk Task) bool {
		weight := 1 + (uint64(tk.V0)*2654435761)>>27&31
		sum := uint64(0)
		for _, u := range g.Adj(tk.V0) {
			for i := uint64(0); i < weight; i++ {
				sum += uint64(u) + i
			}
		}
		sink.Add(sum)
		return true
	}
	for run := 0; run < runs; run++ {
		if err := RunSharded(context.Background(), workers, tasks,
			ShardOptions{Map: sm, Oblivious: oblivious}, work, h); err != nil {
			t.Fatal(err)
		}
	}
	return cross.Load(), total.Load()
}

// arcBalancedMap cuts the vertex space into `shards` ranges with roughly
// equal arc counts — the same degree-aware partition graph.WriteSharded
// uses. Equal-vertex quarters would pile all of an RMAT graph's arcs into
// shard 0 and leave nothing local to balance.
func arcBalancedMap(g *graph.Graph, shards int) testShardMap {
	cuts := make([]graph.VID, shards+1)
	cuts[shards] = graph.VID(g.NumVertices())
	total := g.NumArcs()
	v := 0
	for s := 1; s < shards; s++ {
		target := total * int64(s) / int64(shards)
		for v < g.NumVertices() && g.Row[v+1] < target {
			v++
		}
		cuts[s] = graph.VID(v)
	}
	return testShardMap{cuts: cuts}
}

// TestShardLocalSeedingReducesCrossSteals is the locality acceptance check:
// on a 4-shard RMAT stand-in with two workers per shard group, shard-local
// seeding must produce strictly fewer cross-group steals than shard-oblivious
// seeding (summed over several runs to damp scheduling noise).
func TestShardLocalSeedingReducesCrossSteals(t *testing.T) {
	g := graph.RMAT(11, 16000, 0.57, 0.19, 0.19, 42)
	sm := arcBalancedMap(g, 4)
	const workers, runs = 8, 6
	localCross, _ := countCrossSteals(t, g, sm, workers, false, runs)
	oblivCross, oblivTotal := countCrossSteals(t, g, sm, workers, true, runs)
	if oblivTotal == 0 {
		t.Fatal("oblivious runs produced no steals at all; fixture too uniform to compare")
	}
	if localCross >= oblivCross {
		t.Fatalf("shard-local seeding did not reduce cross-shard steals: local=%d oblivious=%d (total oblivious steals %d)",
			localCross, oblivCross, oblivTotal)
	}
	t.Logf("cross-shard steals over %d runs: shard-local=%d shard-oblivious=%d", runs, localCross, oblivCross)
}
