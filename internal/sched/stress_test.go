package sched

// Race-directed stress tests: run with -race (CI has a dedicated
// `go test -race ./internal/sched` step). Steal timing is perturbed with
// per-worker seeded PRNG delays so interleavings vary across iterations but
// the test itself stays reproducible for a given seed.

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/graph"
)

// stressTasks builds a task list big enough that every worker both pops its
// own deque and steals from others.
func stressTasks(tb testing.TB, seed int64) (*graph.Graph, []Task) {
	tb.Helper()
	g := graph.ChungLu(500, 4000, 2.3, uint64(seed))
	tasks := Expand(g, 16)
	OrderByDegreeDesc(g, tasks)
	return g, tasks
}

func TestStressStealRaceSeeded(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		_, tasks := stressTasks(t, seed)
		const workers = 8
		// Per-worker PRNGs (a worker index is exclusive to one goroutine) so
		// the delay schedule is seeded, not shared-state racy.
		rngs := make([]*rand.Rand, workers)
		for w := range rngs {
			rngs[w] = rand.New(rand.NewSource(seed*101 + int64(w)))
		}
		ran := make([]atomic.Int32, len(tasks))
		index := map[Task]int{}
		for i, task := range tasks {
			index[task] = i
		}
		var steals, stolen atomic.Int64
		h := Hooks{OnSteal: func(thief, victim, ntasks int) {
			if thief < 0 || thief >= workers || victim < 0 || victim >= workers {
				t.Errorf("steal indices out of range: thief=%d victim=%d", thief, victim)
			}
			if thief == victim {
				t.Errorf("worker %d stole from itself", thief)
			}
			if ntasks <= 0 {
				t.Errorf("steal reported %d tasks", ntasks)
			}
			steals.Add(1)
			stolen.Add(int64(ntasks))
		}}
		err := RunHooked(context.Background(), workers, tasks, func(w int, task Task) bool {
			if d := rngs[w].Intn(50); d > 45 {
				time.Sleep(time.Duration(d) * time.Microsecond)
			}
			ran[index[task]].Add(1)
			return true
		}, h)
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n != 1 {
				t.Fatalf("seed=%d: task %d ran %d times", seed, i, n)
			}
		}
		if stolen.Load() > int64(len(tasks)) {
			t.Errorf("seed=%d: hooks reported %d tasks stolen, more than the %d scheduled",
				seed, stolen.Load(), len(tasks))
		}
		t.Logf("seed=%d: %d steals moved %d/%d tasks", seed, steals.Load(), stolen.Load(), len(tasks))
	}
}

// TestCancellationMidSteal is the regression for cancellation latching while
// thieves are mid-transfer: the run must terminate promptly, never execute a
// task twice, and never fire a hook with an emptied victim misreported.
func TestCancellationMidSteal(t *testing.T) {
	for _, seed := range []int64{3, 11} {
		_, tasks := stressTasks(t, seed)
		const workers = 8
		ctx, cancel := context.WithCancel(context.Background())
		ran := make([]atomic.Int32, len(tasks))
		index := map[Task]int{}
		for i, task := range tasks {
			index[task] = i
		}
		var executed atomic.Int64
		h := Hooks{OnSteal: func(thief, victim, ntasks int) {
			// Widen the mid-steal window so cancellation overlaps transfers.
			time.Sleep(20 * time.Microsecond)
			if ntasks <= 0 || thief == victim {
				t.Errorf("bad steal report: thief=%d victim=%d n=%d", thief, victim, ntasks)
			}
		}}
		err := RunHooked(ctx, workers, tasks, func(w int, task Task) bool {
			ran[index[task]].Add(1)
			if executed.Add(1) == 25 {
				cancel()
			}
			return true
		}, h)
		cancel()
		if err != context.Canceled {
			t.Fatalf("seed=%d: err = %v, want context.Canceled", seed, err)
		}
		for i := range ran {
			if n := ran[i].Load(); n > 1 {
				t.Fatalf("seed=%d: task %d ran %d times after mid-steal cancel", seed, i, n)
			}
		}
		if n := executed.Load(); n >= int64(len(tasks)) {
			t.Fatalf("seed=%d: cancellation did not cut the run short (%d/%d)", seed, n, len(tasks))
		}
	}
}

// TestRunHookedNilHooksEquivalent pins that Run is exactly RunHooked with
// zero Hooks — the hook plumbing must not change scheduling semantics.
func TestRunHookedNilHooksEquivalent(t *testing.T) {
	_, tasks := stressTasks(t, 5)
	var a, b atomic.Int64
	if err := Run(context.Background(), 4, tasks, func(int, Task) bool { a.Add(1); return true }); err != nil {
		t.Fatal(err)
	}
	if err := RunHooked(context.Background(), 4, tasks, func(int, Task) bool { b.Add(1); return true }, Hooks{}); err != nil {
		t.Fatal(err)
	}
	if a.Load() != b.Load() || a.Load() != int64(len(tasks)) {
		t.Fatalf("Run executed %d, RunHooked %d, want %d", a.Load(), b.Load(), len(tasks))
	}
}
