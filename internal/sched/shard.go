package sched

// Shard-local scheduling: when the graph lives in a sharded store
// (graph.Sharded), a root task's first — and usually dominant — adjacency
// read hits its start vertex's shard. Seeding each task onto workers bound
// to that shard's group keeps a worker's page working set inside one shard
// file, and demoting cross-group victims to a second steal tier keeps it
// that way until local work runs dry. Cross-shard steals remain possible
// (work conservation beats locality at the tail) but become a counted,
// observable event instead of the common case.

import (
	"context"

	"repro/internal/graph"
)

// ShardMap is the scheduler's view of a partitioned vertex space. It is the
// seam to graph.Sharded (which implements it) without a package dependency
// on any particular store.
type ShardMap interface {
	// NumShards returns the number of partitions.
	NumShards() int
	// ShardOf returns the partition owning vertex v.
	ShardOf(v graph.VID) int
}

// WorkerGroups assigns each of workers a locality group, with
// min(workers, shards) groups total: evenly sized, contiguous, and stable.
// Shard s maps to group s*G/shards (see shardGroup), so with more workers
// than shards a group is the worker pool of one shard, and with more shards
// than workers each group serves a contiguous shard range. The mapping is
// exported so hook consumers can classify thief/victim pairs exactly the way
// the scheduler does.
func WorkerGroups(workers, shards int) []int {
	groups := workers
	if shards < groups {
		groups = shards
	}
	if groups < 1 {
		groups = 1
	}
	out := make([]int, workers)
	for w := range out {
		out[w] = w * groups / workers
	}
	return out
}

// shardGroup maps shard s into one of `groups` contiguous shard ranges.
func shardGroup(s, shards, groups int) int { return s * groups / shards }

// StealLocal and StealCross name the tier argument of Hooks.OnStealTier.
const (
	StealLocal = 0 // thief and victim share a locality group
	StealCross = 1 // thief crossed into another group's shards
)

// ShardOptions configures RunSharded.
type ShardOptions struct {
	// Map partitions the vertex space; required.
	Map ShardMap
	// Oblivious disables shard-local placement: tasks are dealt round-robin
	// across all workers and steal sweeps are shard-blind, exactly like
	// RunHooked — but steals are still classified into tiers, making this
	// the baseline leg of a locality A/B.
	Oblivious bool
}

// RunSharded is RunHooked with a locality tier. Tasks are dealt to the
// worker group owning their start vertex's shard (round-robin within the
// group, preserving the degree-descending interleave), and an idle worker
// sweeps victims in its own group before crossing groups. Execution
// semantics are identical to RunHooked: every task runs at most once, exactly
// once without cancellation, and fn returning false halts the run.
func RunSharded(ctx context.Context, workers int, tasks []Task, so ShardOptions, fn func(worker int, t Task) bool, h Hooks) error {
	if workers < 1 {
		workers = 1
	}
	shards := so.Map.NumShards()
	groupOf := WorkerGroups(workers, shards)
	groups := 1
	if len(groupOf) > 0 {
		groups = groupOf[workers-1] + 1
	}

	deques := make([]deque, workers)
	for i := range deques {
		deques[i].ts = make([]Task, 0, len(tasks)/workers+1)
	}
	if so.Oblivious {
		for i, t := range tasks {
			deques[i%workers].ts = append(deques[i%workers].ts, t)
		}
	} else {
		// Per-group worker lists plus a rotating cursor each, so the global
		// heavy-to-light task order stays interleaved inside every group.
		members := make([][]int, groups)
		for w, g := range groupOf {
			members[g] = append(members[g], w)
		}
		cursor := make([]int, groups)
		for _, t := range tasks {
			g := shardGroup(so.Map.ShardOf(t.V0), shards, groups)
			ws := members[g]
			w := ws[cursor[g]%len(ws)]
			cursor[g]++
			deques[w].ts = append(deques[w].ts, t)
		}
	}

	// Victim sweep order per worker: own group first (cyclic from self+1
	// within the group), then the remaining workers (cyclic). Oblivious mode
	// sweeps shard-blind from self+1, matching RunHooked.
	order := make([][]int, workers)
	for w := 0; w < workers; w++ {
		ord := make([]int, 0, workers-1)
		if so.Oblivious {
			for off := 1; off < workers; off++ {
				ord = append(ord, (w+off)%workers)
			}
		} else {
			for off := 1; off < workers; off++ {
				if vi := (w + off) % workers; groupOf[vi] == groupOf[w] {
					ord = append(ord, vi)
				}
			}
			for off := 1; off < workers; off++ {
				if vi := (w + off) % workers; groupOf[vi] != groupOf[w] {
					ord = append(ord, vi)
				}
			}
		}
		order[w] = ord
	}

	return runLoop(ctx, deques, order, groupOf, int64(len(tasks)), fn, h)
}
