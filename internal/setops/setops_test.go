package setops

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// sortedSet is a quick.Generator producing ascending unique VID slices.
type sortedSet []VID

func (sortedSet) Generate(r *rand.Rand, size int) reflect.Value {
	n := r.Intn(size + 1)
	seen := map[VID]bool{}
	out := make(sortedSet, 0, n)
	for i := 0; i < n; i++ {
		v := VID(r.Intn(4 * (size + 1)))
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return reflect.ValueOf(out)
}

// reference implementations over maps.
func refIntersect(a, b []VID, bound VID) []VID {
	in := map[VID]bool{}
	for _, x := range b {
		in[x] = true
	}
	out := []VID{}
	for _, x := range a {
		if x < bound && in[x] {
			out = append(out, x)
		}
	}
	return out
}

func refDifference(a, b []VID, bound VID) []VID {
	in := map[VID]bool{}
	for _, x := range b {
		in[x] = true
	}
	out := []VID{}
	for _, x := range a {
		if x < bound && !in[x] {
			out = append(out, x)
		}
	}
	return out
}

func equalSets(a, b []VID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestIntersectMatchesReference(t *testing.T) {
	f := func(a, b sortedSet, rawBound uint32) bool {
		bound := VID(rawBound % 64)
		if rawBound%5 == 0 {
			bound = NoBound
		}
		got := IntersectBelow(nil, a, b, bound)
		return equalSets(got, refIntersect(a, b, bound))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDifferenceMatchesReference(t *testing.T) {
	f := func(a, b sortedSet, rawBound uint32) bool {
		bound := VID(rawBound % 64)
		if rawBound%5 == 0 {
			bound = NoBound
		}
		got := DifferenceBelow(nil, a, b, bound)
		return equalSets(got, refDifference(a, b, bound))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectCountMatchesMaterialized(t *testing.T) {
	f := func(a, b sortedSet) bool {
		return IntersectCount(a, b, NoBound) == int64(len(Intersect(nil, a, b)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestGallopingMatchesMerge(t *testing.T) {
	f := func(a, b sortedSet, rawBound uint32) bool {
		bound := VID(rawBound % 64)
		return equalSets(
			IntersectGalloping(nil, a, b, bound),
			IntersectBelow(nil, a, b, bound),
		)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestContains(t *testing.T) {
	a := []VID{2, 3, 5, 8, 13, 21, 34, 55}
	for _, x := range a {
		if !Contains(a, x) {
			t.Errorf("Contains(%d) = false", x)
		}
	}
	for _, x := range []VID{0, 1, 4, 9, 22, 56, 1000} {
		if Contains(a, x) {
			t.Errorf("Contains(%d) = true", x)
		}
	}
	if Contains(nil, 1) {
		t.Error("Contains on empty set")
	}
}

func TestBounded(t *testing.T) {
	a := []VID{1, 4, 9, 16, 25}
	cases := []struct {
		bound VID
		want  int
	}{{0, 0}, {1, 0}, {2, 1}, {9, 2}, {10, 3}, {26, 5}, {NoBound, 5}}
	for _, c := range cases {
		if got := Bounded(a, c.bound); len(got) != c.want {
			t.Errorf("Bounded(%d): len=%d want %d", c.bound, len(got), c.want)
		}
	}
}

func TestIndex(t *testing.T) {
	a := []VID{2, 3, 5, 8, 13, 21, 34, 55}
	for i, x := range a {
		if got := Index(a, x); got != i {
			t.Errorf("Index(%d) = %d, want %d", x, got, i)
		}
	}
	for _, x := range []VID{0, 1, 4, 9, 22, 56, 1000} {
		if got := Index(a, x); got != -1 {
			t.Errorf("Index(%d) = %d, want -1", x, got)
		}
	}
	if Index(nil, 1) != -1 {
		t.Error("Index on empty set")
	}
}

// TestIndexAgreesWithContains: Index ≥ 0 exactly when Contains, and the
// returned position holds the key.
func TestIndexAgreesWithContains(t *testing.T) {
	f := func(a sortedSet, x VID) bool {
		i := Index(a, x%64)
		if i != -1 {
			return Contains(a, x%64) && a[i] == x%64
		}
		return !Contains(a, x%64)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestAppendBounded(t *testing.T) {
	a := []VID{1, 4, 9, 16, 25}
	got := AppendBounded([]VID{7}, a, 10)
	want := []VID{7, 1, 4, 9}
	if !equalSets(got, want) {
		t.Errorf("AppendBounded = %v, want %v", got, want)
	}
	if got := AppendBounded(nil, a, NoBound); !equalSets(got, a) {
		t.Errorf("AppendBounded(NoBound) = %v, want %v", got, a)
	}
	if got := AppendBounded(nil, nil, NoBound); len(got) != 0 {
		t.Errorf("AppendBounded(nil src) = %v", got)
	}
	// The copy must not alias src: mutating the result leaves src intact.
	got = AppendBounded(make([]VID, 0, 8), a, NoBound)
	got[0] = 99
	if a[0] != 1 {
		t.Error("AppendBounded aliased its source")
	}
}

// TestCostAccounting: iteration counts must be positive when work happens and
// bounded by the merge-loop maximum len(a)+len(b).
func TestCostAccounting(t *testing.T) {
	f := func(a, b sortedSet) bool {
		_, iters := IntersectCost(nil, a, b, NoBound)
		if iters < 0 || iters > int64(len(a)+len(b)) {
			return false
		}
		_, diters := DifferenceCost(nil, a, b, NoBound)
		return diters >= 0 && diters <= int64(len(a)+len(b))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestIntersectEmptyAndDisjoint(t *testing.T) {
	if got := Intersect(nil, nil, []VID{1, 2}); len(got) != 0 {
		t.Errorf("empty ∩ set = %v", got)
	}
	if got := Intersect(nil, []VID{1, 3}, []VID{2, 4}); len(got) != 0 {
		t.Errorf("disjoint intersect = %v", got)
	}
	if got := Difference(nil, []VID{1, 3}, nil); !equalSets(got, []VID{1, 3}) {
		t.Errorf("a \\ empty = %v", got)
	}
}

func BenchmarkIntersectMerge(b *testing.B) {
	a := make([]VID, 1024)
	c := make([]VID, 1024)
	for i := range a {
		a[i] = VID(2 * i)
		c[i] = VID(3 * i)
	}
	dst := make([]VID, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], a, c)
	}
}

func BenchmarkIntersectGalloping(b *testing.B) {
	small := []VID{100, 500, 900, 1300, 1700}
	big := make([]VID, 4096)
	for i := range big {
		big[i] = VID(i)
	}
	dst := make([]VID, 0, 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = IntersectGalloping(dst[:0], small, big, NoBound)
	}
}

// TestKernelsZeroAlloc is the runtime half of the noalloc contract: every
// set-operation kernel carries //flexlint:noalloc (statically proven by
// flexlint to append only into caller-owned dst and never box, convert, or
// spawn), and this cross-check measures the same property on live data with
// pre-grown destinations. If either side fails alone, the other names the
// blind spot: the prover covers all inputs, the measurement covers the
// runtime the prover abstracts.
func TestKernelsZeroAlloc(t *testing.T) {
	a := make([]VID, 0, 512)
	b := make([]VID, 0, 512)
	for i := 0; i < 512; i++ {
		a = append(a, VID(2*i))
		b = append(b, VID(3*i))
	}
	bm := make([]uint64, BitmapWords(2048))
	for _, v := range b {
		bm[int(v)>>6] |= 1 << (uint(v) & 63)
	}
	dst := make([]VID, 0, 512)
	var s Seeker
	if avg := testing.AllocsPerRun(10, func() {
		dst, _ = IntersectCost(dst[:0], a, b, NoBound)
		dst, _ = DifferenceCost(dst[:0], a, b, NoBound)
		dst, _ = IntersectGallopingCost(dst[:0], a, b, NoBound)
		dst, _ = DifferenceGallopingCost(dst[:0], a, b, NoBound)
		dst, _ = IntersectBitmap(dst[:0], a, bm, NoBound)
		dst, _ = DifferenceBitmap(dst[:0], a, bm, NoBound)
		_, _ = IntersectCountCost(a, b, NoBound)
		_, _ = DifferenceCountCost(a, b, NoBound)
		s.Reset()
		_ = s.Seek(b, a[len(a)/2])
		dst = AppendBounded(dst[:0], a, 600)
	}); avg > 0 {
		t.Fatalf("set kernels allocate %.1f times per round; //flexlint:noalloc promises zero", avg)
	}
}
