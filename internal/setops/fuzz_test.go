package setops

// Fuzz targets cross-check every kernel family against the merge reference:
// the adaptive layer (galloping, bitmap, count-only) must agree with the
// two-pointer merge on every input, for every bound, or the engine's kernel
// auto-selection silently changes embedding counts. CI runs each target for a
// few seconds as a smoke test; longer local runs use
// `go test -fuzz FuzzIntersectKernels ./internal/setops`.

import (
	"sort"
	"testing"
)

// decodeSets splits raw fuzz bytes into two sorted, deduplicated VID sets
// plus a bound. The value domain is kept small (0..255) so collisions — the
// interesting case for set operations — are common.
func decodeSets(data []byte) (a, b []VID, bound VID) {
	if len(data) == 0 {
		return nil, nil, NoBound
	}
	split := int(data[0])
	data = data[1:]
	if split > len(data) {
		split = len(data)
	}
	mk := func(raw []byte) []VID {
		set := map[VID]bool{}
		for _, v := range raw {
			set[VID(v)] = true
		}
		out := make([]VID, 0, len(set))
		for v := range set {
			out = append(out, v)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}
	a, b = mk(data[:split]), mk(data[split:])
	// Derive a bound from the payload; exercise NoBound and the degenerate
	// bound==0 (nothing survives the filter) alongside ordinary bounds.
	switch {
	case len(data) == 0:
		bound = NoBound
	case data[len(data)-1]%3 == 0:
		bound = NoBound
	case data[len(data)-1]%5 == 0:
		bound = 0
	default:
		bound = VID(data[len(data)-1])
	}
	return a, b, bound
}

// refIntersect, refDifference and equalSets come from setops_test.go — the
// fuzz targets share the property tests' reference implementations.

// buildBitmap materializes b as a bitmap wide enough for every value in play.
func buildBitmap(b []VID) []uint64 {
	n := 256 // decodeSets caps the domain at 255
	bm := make([]uint64, BitmapWords(n))
	for _, v := range b {
		bm[v>>6] |= 1 << (v & 63)
	}
	return bm
}

func FuzzIntersectKernels(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 2, 3, 4, 7})
	f.Add([]byte{0, 5, 5, 5})
	f.Add([]byte{8, 0, 1, 2, 3, 4, 5, 6, 7, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, bound := decodeSets(data)
		want := refIntersect(a, b, bound)

		if got := IntersectBelow(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("IntersectBelow(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := IntersectCost(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("IntersectCost(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got := IntersectCount(a, b, bound); got != int64(len(want)) {
			t.Errorf("IntersectCount(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		if got, _ := IntersectCountCost(a, b, bound); got != int64(len(want)) {
			t.Errorf("IntersectCountCost(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		if got := IntersectGalloping(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("IntersectGalloping(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := IntersectGallopingCost(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("IntersectGallopingCost(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := IntersectGallopingCount(a, b, bound); got != int64(len(want)) {
			t.Errorf("IntersectGallopingCount(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		bm := buildBitmap(b)
		if got, _ := IntersectBitmap(nil, a, bm, bound); !equalSets(got, want) {
			t.Errorf("IntersectBitmap(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := IntersectBitmapCount(a, bm, bound); got != int64(len(want)) {
			t.Errorf("IntersectBitmapCount(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		if bound == NoBound {
			if got := Intersect(nil, a, b); !equalSets(got, want) {
				t.Errorf("Intersect(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	})
}

func FuzzDifferenceKernels(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 2, 3, 4, 7})
	f.Add([]byte{0, 5, 5, 5})
	f.Add([]byte{8, 0, 1, 2, 3, 4, 5, 6, 7, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		a, b, bound := decodeSets(data)
		want := refDifference(a, b, bound)

		if got := DifferenceBelow(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("DifferenceBelow(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := DifferenceCost(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("DifferenceCost(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got := DifferenceCount(a, b, bound); got != int64(len(want)) {
			t.Errorf("DifferenceCount(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		if got, _ := DifferenceCountCost(a, b, bound); got != int64(len(want)) {
			t.Errorf("DifferenceCountCost(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		if got := DifferenceGalloping(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("DifferenceGalloping(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := DifferenceGallopingCost(nil, a, b, bound); !equalSets(got, want) {
			t.Errorf("DifferenceGallopingCost(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := DifferenceGallopingCount(a, b, bound); got != int64(len(want)) {
			t.Errorf("DifferenceGallopingCount(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		bm := buildBitmap(b)
		if got, _ := DifferenceBitmap(nil, a, bm, bound); !equalSets(got, want) {
			t.Errorf("DifferenceBitmap(%v, %v, %d) = %v, want %v", a, b, bound, got, want)
		}
		if got, _ := DifferenceBitmapCount(a, bm, bound); got != int64(len(want)) {
			t.Errorf("DifferenceBitmapCount(%v, %v, %d) = %d, want %d", a, b, bound, got, len(want))
		}
		if bound == NoBound {
			if got := Difference(nil, a, b); !equalSets(got, want) {
				t.Errorf("Difference(%v, %v) = %v, want %v", a, b, got, want)
			}
		}
	})
}

// FuzzSeeker checks the stateful galloping cursor against plain binary
// search over an ascending key pass — the contract the galloping kernels and
// the engine's hub probes rely on.
func FuzzSeeker(f *testing.F) {
	f.Add([]byte{4, 1, 3, 5, 7, 0, 3, 6, 9})
	f.Add([]byte{0, 2, 2, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		set, keys, _ := decodeSets(data) // both halves sorted ascending
		var s Seeker
		for _, x := range keys {
			if got, want := s.Seek(set, x), Contains(set, x); got != want {
				t.Fatalf("Seek(%v, %d) = %v, want %v (keys %v)", set, x, got, want, keys)
			}
		}
		// A Reset must make the cursor reusable for a fresh pass.
		s.Reset()
		for _, x := range keys {
			if got, want := s.Seek(set, x), Contains(set, x); got != want {
				t.Fatalf("after Reset: Seek(%v, %d) = %v, want %v", set, x, got, want)
			}
		}
	})
}
