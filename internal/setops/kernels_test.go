package setops

// Correctness and speedup coverage for the input-aware kernels (Seeker-based
// galloping, bitmap probes, count-only variants). Every kernel must be
// bit-identical to the merge reference; the benchmarks document the skewed
// (|a|/|b| ≤ 1/32) and hub-bitmap regimes where the adaptive engine switches
// away from merging.

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestSeekerAscendingPass(t *testing.T) {
	b := make([]VID, 0, 500)
	for i := 0; i < 500; i++ {
		b = append(b, VID(3*i+1))
	}
	var s Seeker
	for x := VID(0); x < 1600; x++ {
		want := Contains(b, x)
		if got := s.Seek(b, x); got != want {
			t.Fatalf("Seek(%d) = %v, want %v", x, got, want)
		}
	}
	// Past the end: stays false without panicking.
	if s.Seek(b, 5000) {
		t.Error("Seek past end returned true")
	}
	s.Reset()
	if !s.Seek(b, 1) {
		t.Error("Seek(1) after Reset = false")
	}
}

// TestSeekerProbesSublinear: an ascending pass over the whole large set must
// cost far fewer probes than |a| independent Contains brackets would.
func TestSeekerProbesSublinear(t *testing.T) {
	big := make([]VID, 1<<16)
	for i := range big {
		big[i] = VID(i)
	}
	a := make([]VID, 256)
	for i := range a {
		a[i] = VID(i * 256) // evenly spread: gaps of 256, log(gap) ≈ 8
	}
	var stateful, stateless Seeker
	for _, x := range a {
		stateful.Seek(big, x)
		stateless.Reset() // re-bracket from 0: the old Contains pattern
		stateless.Seek(big, x)
	}
	// The cursor pays O(log gap) per key versus O(log position) re-bracketing
	// from zero; on this spread it must be a clear constant factor cheaper.
	if stateful.Probes*4 >= stateless.Probes*3 {
		t.Errorf("cursor probes = %d, not sublinear vs stateless %d", stateful.Probes, stateless.Probes)
	}
}

func TestGallopingKernelsMatchMerge(t *testing.T) {
	f := func(a, b sortedSet, rawBound uint32) bool {
		bound := VID(rawBound % 64)
		if rawBound%5 == 0 {
			bound = NoBound
		}
		gi, _ := IntersectGallopingCost(nil, a, b, bound)
		gd, _ := DifferenceGallopingCost(nil, a, b, bound)
		ci, _ := IntersectGallopingCount(a, b, bound)
		cd, _ := DifferenceGallopingCount(a, b, bound)
		mi := IntersectBelow(nil, a, b, bound)
		md := DifferenceBelow(nil, a, b, bound)
		return equalSets(gi, mi) && equalSets(gd, md) &&
			ci == int64(len(mi)) && cd == int64(len(md))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestDifferenceCountMatchesMaterialized(t *testing.T) {
	f := func(a, b sortedSet, rawBound uint32) bool {
		bound := VID(rawBound % 64)
		if rawBound%3 == 0 {
			bound = NoBound
		}
		return DifferenceCount(a, b, bound) == int64(len(DifferenceBelow(nil, a, b, bound)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// toBitmap densifies a sorted set for the bitmap kernels.
func toBitmap(b []VID) []uint64 {
	var n VID
	if len(b) > 0 {
		n = b[len(b)-1] + 1
	}
	bm := make([]uint64, BitmapWords(int(n)))
	for _, x := range b {
		bm[x>>6] |= 1 << (x & 63)
	}
	return bm
}

func TestBitmapKernelsMatchMerge(t *testing.T) {
	f := func(a, b sortedSet, rawBound uint32) bool {
		bound := VID(rawBound % 64)
		if rawBound%5 == 0 {
			bound = NoBound
		}
		bm := toBitmap(b)
		bi, _ := IntersectBitmap(nil, a, bm, bound)
		bd, _ := DifferenceBitmap(nil, a, bm, bound)
		ci, _ := IntersectBitmapCount(a, bm, bound)
		cd, _ := DifferenceBitmapCount(a, bm, bound)
		mi := IntersectBelow(nil, a, b, bound)
		md := DifferenceBelow(nil, a, b, bound)
		return equalSets(bi, mi) && equalSets(bd, md) &&
			ci == int64(len(mi)) && cd == int64(len(md))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestBitmapHasOutOfRange(t *testing.T) {
	bm := toBitmap([]VID{1, 63, 64})
	if !BitmapHas(bm, 64) || BitmapHas(bm, 65) || BitmapHas(bm, 1<<20) {
		t.Error("BitmapHas boundary behavior wrong")
	}
	if BitmapHas(nil, 0) {
		t.Error("BitmapHas(nil) = true")
	}
}

// skewedInputs builds a skewed intersection workload: |a|/|b| = 1/ratio with
// |b| = n, a random-ish but deterministic overlap.
func skewedInputs(n, ratio int) (a, b []VID) {
	r := rand.New(rand.NewSource(42))
	b = make([]VID, n)
	for i := range b {
		b[i] = VID(2 * i)
	}
	seen := map[VID]bool{}
	a = make([]VID, 0, n/ratio)
	for len(a) < n/ratio {
		x := VID(r.Intn(2 * n))
		if !seen[x] {
			seen[x] = true
			a = append(a, x)
		}
	}
	sort.Slice(a, func(i, j int) bool { return a[i] < a[j] })
	return a, b
}

// The skewed pair: |a|/|b| = 1/64 ≤ 1/32, the regime where the adaptive
// engine picks galloping. BENCH_setops.json records merge-vs-gallop here.
func BenchmarkIntersectSkewedMerge(b *testing.B) {
	a, big := skewedInputs(1<<14, 64)
	dst := make([]VID, 0, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], a, big)
	}
}

func BenchmarkIntersectSkewedGalloping(b *testing.B) {
	a, big := skewedInputs(1<<14, 64)
	dst := make([]VID, 0, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = IntersectGallopingCost(dst[:0], a, big, NoBound)
	}
}

// The hub pair: a moderate candidate list against a degree-16k hub held as a
// dense bitmap (word probes, the software c-map analog).
func BenchmarkIntersectHubMerge(b *testing.B) {
	a, hub := skewedInputs(1<<14, 128)
	dst := make([]VID, 0, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = Intersect(dst[:0], a, hub)
	}
}

func BenchmarkIntersectHubBitmap(b *testing.B) {
	a, hub := skewedInputs(1<<14, 128)
	bm := toBitmap(hub)
	dst := make([]VID, 0, len(a))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst, _ = IntersectBitmap(dst[:0], a, bm, NoBound)
	}
}

func BenchmarkIntersectSkewedCountOnly(b *testing.B) {
	a, big := skewedInputs(1<<14, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		IntersectGallopingCount(a, big, NoBound)
	}
}
