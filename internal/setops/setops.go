// Package setops implements the merge-based sorted-set operations that
// dominate GPM runtime (§III): intersection, difference and their counting
// and bounded variants. The paper's SIU (set intersection unit) and SDU (set
// difference unit) execute one merge-loop iteration per cycle (Fig 9); the
// instrumented variants here report that iteration count so the simulator can
// charge exact SIU/SDU cycles.
//
// All inputs must be ascending sorted unique vertex-ID slices, as produced by
// the graph package.
package setops

import "repro/internal/graph"

// VID aliases the graph vertex ID type.
type VID = graph.VID

// NoBound disables the ID upper bound in the *Below variants.
const NoBound = ^VID(0)

// Intersect appends a ∩ b to dst and returns it.
func Intersect(dst, a, b []VID) []VID {
	dst, _ = IntersectCost(dst, a, b, NoBound)
	return dst
}

// IntersectBelow appends {x ∈ a ∩ b : x < bound} to dst and returns it.
func IntersectBelow(dst, a, b []VID, bound VID) []VID {
	dst, _ = IntersectCost(dst, a, b, bound)
	return dst
}

// IntersectCost is IntersectBelow instrumented with the number of merge-loop
// iterations executed (= SIU cycles).
func IntersectCost(dst, a, b []VID, bound VID) ([]VID, int64) {
	i, j := 0, 0
	var iters int64
	for i < len(a) && j < len(b) {
		iters++
		x, y := a[i], b[j]
		if x >= bound || y >= bound {
			break
		}
		switch {
		case x == y:
			dst = append(dst, x)
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
	return dst, iters
}

// IntersectCount returns |a ∩ b| without materializing the result.
func IntersectCount(a, b []VID, bound VID) int64 {
	n, _ := IntersectCountCost(a, b, bound)
	return n
}

// IntersectCountCost returns |{x ∈ a ∩ b : x < bound}| and merge iterations.
func IntersectCountCost(a, b []VID, bound VID) (int64, int64) {
	i, j := 0, 0
	var n, iters int64
	for i < len(a) && j < len(b) {
		iters++
		x, y := a[i], b[j]
		if x >= bound || y >= bound {
			break
		}
		switch {
		case x == y:
			n++
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
	return n, iters
}

// Difference appends a \ b to dst and returns it.
func Difference(dst, a, b []VID) []VID {
	dst, _ = DifferenceCost(dst, a, b, NoBound)
	return dst
}

// DifferenceBelow appends {x ∈ a \ b : x < bound} to dst and returns it.
func DifferenceBelow(dst, a, b []VID, bound VID) []VID {
	dst, _ = DifferenceCost(dst, a, b, bound)
	return dst
}

// DifferenceCost is DifferenceBelow instrumented with merge-loop iterations
// (= SDU cycles).
func DifferenceCost(dst, a, b []VID, bound VID) ([]VID, int64) {
	i, j := 0, 0
	var iters int64
	for i < len(a) {
		iters++
		x := a[i]
		if x >= bound {
			break
		}
		if j >= len(b) || x < b[j] {
			dst = append(dst, x)
			i++
			continue
		}
		if x == b[j] {
			i++
			j++
			continue
		}
		j++
	}
	return dst, iters
}

// Contains reports membership of x in the sorted slice a via galloping
// (exponential + binary) search. Software frameworks fall back to this when
// one side of an intersection is much smaller.
func Contains(a []VID, x VID) bool {
	lo, hi := 0, len(a)
	// Gallop to bracket x.
	step := 1
	for lo+step < hi && a[lo+step] < x {
		lo += step
		step <<= 1
	}
	if lo+step < hi {
		hi = lo + step + 1
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// IntersectGalloping intersects a small set a against a much larger set b by
// galloping lookups; used by the CPU engine when len(a) << len(b).
func IntersectGalloping(dst, a, b []VID, bound VID) []VID {
	for _, x := range a {
		if x >= bound {
			break
		}
		if Contains(b, x) {
			dst = append(dst, x)
		}
	}
	return dst
}

// Bounded returns the prefix of a with elements < bound (a is sorted).
func Bounded(a []VID, bound VID) []VID {
	if bound == NoBound {
		return a
	}
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return a[:lo]
}
