// Package setops implements the sorted-set operations that dominate GPM
// runtime (§III): intersection, difference and their counting and bounded
// variants. The paper's SIU (set intersection unit) and SDU (set difference
// unit) execute one merge-loop iteration per cycle (Fig 9); the instrumented
// merge variants here report that iteration count so the simulator can charge
// exact SIU/SDU cycles.
//
// Alongside the merge kernels, the package provides the input-aware software
// kernels CPU frameworks use — galloping (exponential search) intersection/
// difference for skewed operand sizes, and probe kernels against dense
// bitmaps (precomputed hub adjacency) — all computing bit-identical results.
// The simulator never uses these: accelerator cycle accounting is defined on
// the merge model only (see DESIGN.md "Software kernels vs SIU/SDU").
//
// All inputs must be ascending sorted unique vertex-ID slices, as produced by
// the graph package.
package setops

import "repro/internal/graph"

// VID aliases the graph vertex ID type.
type VID = graph.VID

// NoBound disables the ID upper bound in the *Below variants.
const NoBound = ^VID(0)

// Intersect appends a ∩ b to dst and returns it.
//
//flexlint:noalloc
func Intersect(dst, a, b []VID) []VID {
	dst, _ = IntersectCost(dst, a, b, NoBound)
	return dst
}

// IntersectBelow appends {x ∈ a ∩ b : x < bound} to dst and returns it.
//
//flexlint:noalloc
func IntersectBelow(dst, a, b []VID, bound VID) []VID {
	dst, _ = IntersectCost(dst, a, b, bound)
	return dst
}

// IntersectCost is IntersectBelow instrumented with the number of merge-loop
// iterations executed (= SIU cycles).
//
//flexlint:noalloc
func IntersectCost(dst, a, b []VID, bound VID) ([]VID, int64) {
	i, j := 0, 0
	var iters int64
	for i < len(a) && j < len(b) {
		iters++
		x, y := a[i], b[j]
		if x >= bound || y >= bound {
			break
		}
		switch {
		case x == y:
			dst = append(dst, x)
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
	return dst, iters
}

// IntersectCount returns |a ∩ b| without materializing the result.
//
//flexlint:noalloc
func IntersectCount(a, b []VID, bound VID) int64 {
	n, _ := IntersectCountCost(a, b, bound)
	return n
}

// IntersectCountCost returns |{x ∈ a ∩ b : x < bound}| and merge iterations.
//
//flexlint:noalloc
func IntersectCountCost(a, b []VID, bound VID) (int64, int64) {
	i, j := 0, 0
	var n, iters int64
	for i < len(a) && j < len(b) {
		iters++
		x, y := a[i], b[j]
		if x >= bound || y >= bound {
			break
		}
		switch {
		case x == y:
			n++
			i++
			j++
		case x < y:
			i++
		default:
			j++
		}
	}
	return n, iters
}

// Difference appends a \ b to dst and returns it.
//
//flexlint:noalloc
func Difference(dst, a, b []VID) []VID {
	dst, _ = DifferenceCost(dst, a, b, NoBound)
	return dst
}

// DifferenceBelow appends {x ∈ a \ b : x < bound} to dst and returns it.
//
//flexlint:noalloc
func DifferenceBelow(dst, a, b []VID, bound VID) []VID {
	dst, _ = DifferenceCost(dst, a, b, bound)
	return dst
}

// DifferenceCost is DifferenceBelow instrumented with merge-loop iterations
// (= SDU cycles).
//
//flexlint:noalloc
func DifferenceCost(dst, a, b []VID, bound VID) ([]VID, int64) {
	i, j := 0, 0
	var iters int64
	for i < len(a) {
		iters++
		x := a[i]
		if x >= bound {
			break
		}
		if j >= len(b) || x < b[j] {
			dst = append(dst, x)
			i++
			continue
		}
		if x == b[j] {
			i++
			j++
			continue
		}
		j++
	}
	return dst, iters
}

// DifferenceCount returns |{x ∈ a \ b : x < bound}| without materializing.
//
//flexlint:noalloc
func DifferenceCount(a, b []VID, bound VID) int64 {
	n, _ := DifferenceCountCost(a, b, bound)
	return n
}

// DifferenceCountCost is DifferenceCount instrumented with merge iterations.
//
//flexlint:noalloc
func DifferenceCountCost(a, b []VID, bound VID) (int64, int64) {
	i, j := 0, 0
	var n, iters int64
	for i < len(a) {
		iters++
		x := a[i]
		if x >= bound {
			break
		}
		if j >= len(b) || x < b[j] {
			n++
			i++
			continue
		}
		if x == b[j] {
			i++
			j++
			continue
		}
		j++
	}
	return n, iters
}

// Contains reports membership of x in the sorted slice a via galloping
// (exponential + binary) search. Software frameworks fall back to this when
// one side of an intersection is much smaller.
//
//flexlint:noalloc
func Contains(a []VID, x VID) bool {
	lo, hi := 0, len(a)
	// Gallop to bracket x.
	step := 1
	for lo+step < hi && a[lo+step] < x {
		lo += step
		step <<= 1
	}
	if lo+step < hi {
		hi = lo + step + 1
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(a) && a[lo] == x
}

// Seeker is a stateful galloping cursor over one sorted set. Unlike repeated
// Contains calls — which re-bracket from index 0 and cost O(log|b|) each — a
// Seeker remembers where the previous key landed, so a pass of ascending keys
// costs O(log gap) per key: the galloping kernels below are
// O(|a|·log(|b|/|a|)) instead of O(|a|·log|b|).
//
// Keys passed to Seek must be non-decreasing across calls for a given set
// (Reset between sets); Probes accumulates element comparisons, the CPU-cost
// proxy reported as Stats.GallopProbes by the engine.
type Seeker struct {
	pos    int
	Probes int64
}

// Reset rewinds the cursor for a fresh ascending pass.
//
//flexlint:noalloc
func (s *Seeker) Reset() { s.pos = 0 }

// Seek advances the cursor to the first element ≥ x and reports whether that
// element equals x.
//
//flexlint:noalloc
func (s *Seeker) Seek(a []VID, x VID) bool {
	n := len(a)
	lo := s.pos
	if lo >= n {
		return false
	}
	// Gallop forward from the cursor to bracket x.
	hi := n
	step := 1
	for lo+step < n && a[lo+step] < x {
		s.Probes++
		lo += step
		step <<= 1
	}
	if lo+step < n {
		s.Probes++ // the comparison that stopped the gallop
		hi = lo + step + 1
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		s.Probes++
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.pos = lo
	return lo < n && a[lo] == x
}

// IntersectGalloping intersects a small set a against a much larger set b by
// galloping lookups; used by the CPU engine when len(a) << len(b).
//
//flexlint:noalloc
func IntersectGalloping(dst, a, b []VID, bound VID) []VID {
	dst, _ = IntersectGallopingCost(dst, a, b, bound)
	return dst
}

// IntersectGallopingCost is IntersectGalloping instrumented with the number
// of element comparisons (gallop probes) executed.
//
//flexlint:noalloc
func IntersectGallopingCost(dst, a, b []VID, bound VID) ([]VID, int64) {
	var s Seeker
	for _, x := range a {
		if x >= bound {
			break
		}
		if s.Seek(b, x) {
			dst = append(dst, x)
		}
	}
	return dst, s.Probes
}

// IntersectGallopingCount returns |{x ∈ a ∩ b : x < bound}| and gallop probes
// without materializing the result.
//
//flexlint:noalloc
func IntersectGallopingCount(a, b []VID, bound VID) (int64, int64) {
	var s Seeker
	var n int64
	for _, x := range a {
		if x >= bound {
			break
		}
		if s.Seek(b, x) {
			n++
		}
	}
	return n, s.Probes
}

// DifferenceGalloping appends {x ∈ a \ b : x < bound} to dst via galloping
// lookups into b; used when len(a) << len(b).
//
//flexlint:noalloc
func DifferenceGalloping(dst, a, b []VID, bound VID) []VID {
	dst, _ = DifferenceGallopingCost(dst, a, b, bound)
	return dst
}

// DifferenceGallopingCost is DifferenceGalloping instrumented with gallop
// probes.
//
//flexlint:noalloc
func DifferenceGallopingCost(dst, a, b []VID, bound VID) ([]VID, int64) {
	var s Seeker
	for _, x := range a {
		if x >= bound {
			break
		}
		if !s.Seek(b, x) {
			dst = append(dst, x)
		}
	}
	return dst, s.Probes
}

// DifferenceGallopingCount returns |{x ∈ a \ b : x < bound}| and gallop
// probes without materializing the result.
//
//flexlint:noalloc
func DifferenceGallopingCount(a, b []VID, bound VID) (int64, int64) {
	var s Seeker
	var n int64
	for _, x := range a {
		if x >= bound {
			break
		}
		if !s.Seek(b, x) {
			n++
		}
	}
	return n, s.Probes
}

// BitmapWords returns the number of uint64 words a dense vertex bitmap needs
// to cover IDs < n.
func BitmapWords(n int) int { return (n + 63) / 64 }

// BitmapHas reports whether vertex x is set in the dense bitmap bm (indexed
// by vertex ID; out-of-range IDs read as absent).
//
//flexlint:noalloc
func BitmapHas(bm []uint64, x VID) bool {
	w := int(x >> 6)
	return w < len(bm) && bm[w]>>(x&63)&1 != 0
}

// IntersectBitmap appends {x ∈ a : x < bound, bm[x]} to dst: intersection of
// a with a set held as a dense bitmap (a precomputed hub adjacency). Each
// element costs one word probe, the software analog of a c-map hit. The
// second result is the probe count.
//
//flexlint:noalloc
func IntersectBitmap(dst, a []VID, bm []uint64, bound VID) ([]VID, int64) {
	var probes int64
	for _, x := range a {
		if x >= bound {
			break
		}
		probes++
		if BitmapHas(bm, x) {
			dst = append(dst, x)
		}
	}
	return dst, probes
}

// DifferenceBitmap appends {x ∈ a : x < bound, !bm[x]} to dst (set difference
// against a bitmap-held set) and returns the probe count.
//
//flexlint:noalloc
func DifferenceBitmap(dst, a []VID, bm []uint64, bound VID) ([]VID, int64) {
	var probes int64
	for _, x := range a {
		if x >= bound {
			break
		}
		probes++
		if !BitmapHas(bm, x) {
			dst = append(dst, x)
		}
	}
	return dst, probes
}

// IntersectBitmapCount is IntersectBitmap without materialization.
//
//flexlint:noalloc
func IntersectBitmapCount(a []VID, bm []uint64, bound VID) (int64, int64) {
	var n, probes int64
	for _, x := range a {
		if x >= bound {
			break
		}
		probes++
		if BitmapHas(bm, x) {
			n++
		}
	}
	return n, probes
}

// DifferenceBitmapCount is DifferenceBitmap without materialization.
//
//flexlint:noalloc
func DifferenceBitmapCount(a []VID, bm []uint64, bound VID) (int64, int64) {
	var n, probes int64
	for _, x := range a {
		if x >= bound {
			break
		}
		probes++
		if !BitmapHas(bm, x) {
			n++
		}
	}
	return n, probes
}

// Index returns the position of x in the sorted slice a, or -1 when absent.
// Same gallop-then-binary bracket as Contains; used to key per-vertex scratch
// (the engine's auxiliary-graph row stamps) by adjacency position.
//
//flexlint:noalloc
func Index(a []VID, x VID) int {
	lo, hi := 0, len(a)
	step := 1
	for lo+step < hi && a[lo+step] < x {
		lo += step
		step <<= 1
	}
	if lo+step < hi {
		hi = lo + step + 1
	}
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < x {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(a) && a[lo] == x {
		return lo
	}
	return -1
}

// AppendBounded appends the prefix of src with elements < bound to dst — the
// materialize-into-scratch entry point: chained kernel results live in
// ping-pong buffers that the next operation clobbers, so callers that keep a
// row (the engine's auxiliary-graph arena) copy it out through here.
//
//flexlint:noalloc
func AppendBounded(dst, src []VID, bound VID) []VID {
	return append(dst, Bounded(src, bound)...)
}

// Bounded returns the prefix of a with elements < bound (a is sorted).
//
//flexlint:noalloc
func Bounded(a []VID, bound VID) []VID {
	if bound == NoBound {
		return a
	}
	lo, hi := 0, len(a)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if a[mid] < bound {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return a[:lo]
}
