// Package flexminer is the public facade of the FlexMiner reproduction: a
// software/hardware co-designed graph pattern mining (GPM) system (Chen et
// al., ISCA 2021) rebuilt in Go.
//
// The three entry points mirror the paper's structure:
//
//   - Compile turns a pattern (or several) into a pattern-specific execution
//     plan — the matching order, symmetry order and on-chip-storage hints of
//     §V;
//   - Mine interprets a plan on the CPU with the pattern-aware parallel DFS
//     engine (the GraphZero-class software baseline);
//   - Simulate runs the same plan on the cycle-level model of the FlexMiner
//     accelerator (§IV): N processing elements with specialized set-operation
//     units and a banked c-map scratchpad behind a NoC, shared L2 and DRAM.
//
// A minimal session:
//
//	g := flexminer.NewGraph(4, [][2]uint32{{0, 1}, {1, 2}, {2, 0}, {2, 3}})
//	pl, _ := flexminer.Compile(flexminer.Patterns.Triangle(), flexminer.CompileOptions{})
//	res, _ := flexminer.Mine(g, pl, flexminer.MineOptions{})
//	fmt.Println(res.Counts[0]) // 1
//
// The subsystem packages under internal/ carry the full implementation:
// graph (CSR substrate), pattern (analysis), plan (compiler), setops, cmap,
// core (CPU engines), sim (accelerator model), bench (paper experiments).
package flexminer

import (
	"context"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sim"
)

// Re-exported core types. The facade aliases rather than wraps so that the
// full APIs of the subsystem packages remain reachable from these names.
type (
	// Graph is an in-heap CSR graph (see NewGraph, LoadGraph, generators
	// below).
	Graph = graph.Graph
	// Store is the read-only storage seam every backend satisfies: in-heap
	// graphs, memory-mapped files (OpenMapped) and sharded directories
	// (OpenSharded). Mine accepts any Store; Simulate wants the concrete
	// in-heap *Graph.
	Store = graph.Store
	// MappedGraph is a zero-copy memory-mapped binary CSR file.
	MappedGraph = graph.Mapped
	// ShardedGraph is an mmap-backed sharded store directory.
	ShardedGraph = graph.Sharded
	// Pattern is a small query graph.
	Pattern = pattern.Pattern
	// Plan is a compiled pattern-specific execution plan.
	Plan = plan.Plan
	// CompileOptions configure the compiler (induced semantics, ablations).
	CompileOptions = plan.Options
	// MineOptions configure the CPU engine (threads, c-map mode, kernels).
	MineOptions = core.Options
	// MineResult is the CPU engine outcome.
	MineResult = core.Result
	// KernelPolicy selects the CPU engine's set-operation kernels (see
	// MineOptions.Kernel); the accelerator model never consults it.
	KernelPolicy = core.KernelPolicy
	// AuxMode selects the CPU engine's auxiliary-graph pruning layer (see
	// MineOptions.AuxGraph); the accelerator model never consults it.
	AuxMode = core.AuxMode
	// SimConfig configures the accelerator model.
	SimConfig = sim.Config
	// SimResult is the accelerator outcome (counts + cycle statistics).
	SimResult = sim.Result
)

// Kernel policies for MineOptions.Kernel. KernelAuto (the zero value) picks
// per set operation: merge for balanced operands, galloping for skewed ones,
// bitmap probes against hub adjacency; the others pin one kernel everywhere.
const (
	KernelAuto      = core.KernelAuto
	KernelMergeOnly = core.KernelMergeOnly
	KernelGallop    = core.KernelGallop
	KernelBitmap    = core.KernelBitmap
)

// ParseKernelPolicy resolves a kernel-policy name ("auto", "merge",
// "gallop", "bitmap") as accepted by the flexminer CLI's -kernel flag.
func ParseKernelPolicy(s string) (KernelPolicy, error) { return core.ParseKernelPolicy(s) }

// Auxiliary-graph modes for MineOptions.AuxGraph. AuxOff (the zero value)
// ignores the plan's aux directives; AuxAuto honors them when the reuse cost
// model predicts a win; AuxOn honors every directive. Mined counts are
// invariant across modes.
const (
	AuxOff  = core.AuxOff
	AuxAuto = core.AuxAuto
	AuxOn   = core.AuxOn
)

// ParseAuxMode resolves an aux-graph mode name ("off", "auto", "on") as
// accepted by the flexminer CLI's -aux flag.
func ParseAuxMode(s string) (AuxMode, error) { return core.ParseAuxMode(s) }

// NewGraph builds a simple undirected graph from an edge list over n
// vertices, deduplicating edges and dropping self loops.
func NewGraph(n int, edges [][2]uint32) (*Graph, error) {
	es := make([]graph.Edge, len(edges))
	for i, e := range edges {
		es[i] = graph.Edge{U: e[0], V: e[1]}
	}
	return graph.FromEdges(n, es)
}

// LoadGraph reads a graph from disk: SNAP-style text edge lists, or the
// binary CSR format for ".bin" paths.
func LoadGraph(path string) (*Graph, error) { return graph.Load(path) }

// OpenMapped memory-maps a binary CSR file (SaveGraphBinary's format)
// zero-copy: adjacency is demand-paged from the file and never copied onto
// the heap. Close the returned store when done.
func OpenMapped(path string) (*MappedGraph, error) { return graph.OpenMapped(path) }

// OpenSharded opens a sharded store directory (WriteSharded's layout): each
// shard is memory-mapped, and Mine schedules shard-locally over it. Close the
// returned store when done.
func OpenSharded(dir string) (*ShardedGraph, error) { return graph.OpenSharded(dir) }

// WriteSharded partitions g into the given number of contiguous, arc-balanced
// vertex ranges and writes one CSR file per shard plus a manifest under dir.
func WriteSharded(dir string, g *Graph, shards int) error { return graph.WriteSharded(dir, g, shards) }

// SaveGraphBinary writes g in the mappable binary CSR format.
func SaveGraphBinary(path string, g *Graph) error { return graph.SaveBinary(path, g) }

// IsShardedDir reports whether path names a sharded store directory.
func IsShardedDir(path string) bool { return graph.IsShardedDir(path) }

// Compile generates the execution plan for a single pattern.
func Compile(p *Pattern, opt CompileOptions) (*Plan, error) { return plan.Compile(p, opt) }

// CompileMulti generates a merged dependency-tree plan for several patterns
// of equal size (multi-pattern problems, §V-B).
func CompileMulti(ps []*Pattern, opt CompileOptions) (*Plan, error) {
	return plan.CompileMulti(ps, opt)
}

// CompileMotifs generates the vertex-induced k-motif-counting plan.
func CompileMotifs(k int, opt CompileOptions) (*Plan, error) { return plan.CompileMotifs(k, opt) }

// CompileCliqueDAG generates the k-clique plan for degree-oriented DAG
// inputs (the orientation optimization of §V-C); pair it with Graph.Orient.
func CompileCliqueDAG(k int) (*Plan, error) { return plan.CompileCliqueDAG(k) }

// Mine runs the pattern-aware CPU engine on any storage backend: an in-heap
// *Graph, a MappedGraph, or a ShardedGraph (which is scheduled shard-locally).
func Mine(g Store, pl *Plan, opt MineOptions) (MineResult, error) { return core.Mine(g, pl, opt) }

// MineContext is Mine with cancellation/deadline support: once ctx is
// cancelled or its deadline passes, the run stops promptly and returns the
// partial counts and stats accumulated so far together with ctx's error.
func MineContext(ctx context.Context, g Store, pl *Plan, opt MineOptions) (MineResult, error) {
	return core.MineContext(ctx, g, pl, opt)
}

// Simulate runs the cycle-level accelerator model.
func Simulate(g *Graph, pl *Plan, cfg SimConfig) (SimResult, error) { return sim.Simulate(g, pl, cfg) }

// SimulateContext is Simulate under a context: on cancellation the simulated
// scheduler stops dispatching tasks, the PEs drain, and the partial counts
// plus cycle statistics are returned with ctx's error.
func SimulateContext(ctx context.Context, g *Graph, pl *Plan, cfg SimConfig) (SimResult, error) {
	return sim.SimulateContext(ctx, g, pl, cfg)
}

// DefaultSimConfig is the paper's accelerator configuration (§VII-A):
// 1.3 GHz PEs, 32 kB private caches, 8 kB c-map, 4 MB shared L2, DDR4-2666.
func DefaultSimConfig() SimConfig { return sim.DefaultConfig() }

// patternsNS groups the pattern catalog under flexminer.Patterns.
type patternsNS struct{}

// Patterns exposes the named pattern catalog (triangle, k-clique, 4-cycle,
// diamond, tailed-triangle, …).
var Patterns patternsNS

func (patternsNS) Triangle() *Pattern       { return pattern.Triangle() }
func (patternsNS) Wedge() *Pattern          { return pattern.Wedge() }
func (patternsNS) FourCycle() *Pattern      { return pattern.FourCycle() }
func (patternsNS) Diamond() *Pattern        { return pattern.Diamond() }
func (patternsNS) TailedTriangle() *Pattern { return pattern.TailedTriangle() }
func (patternsNS) House() *Pattern          { return pattern.House() }
func (patternsNS) KClique(k int) *Pattern   { return pattern.KClique(k) }
func (patternsNS) KCycle(k int) *Pattern    { return pattern.KCycle(k) }
func (patternsNS) KPath(k int) *Pattern     { return pattern.KPath(k) }
func (patternsNS) KStar(k int) *Pattern     { return pattern.KStar(k) }
func (patternsNS) Motifs(k int) []*Pattern  { return pattern.Motifs(k) }

// ByName resolves a catalog pattern from its name (e.g. "diamond", "5-clique").
func (patternsNS) ByName(name string) (*Pattern, error) { return pattern.ByName(name) }
