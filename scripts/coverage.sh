#!/usr/bin/env bash
# Coverage ratchet: every package listed in COVERAGE_RATCHET.txt must keep
# statement coverage at or above its recorded floor. Run from anywhere:
#
#   ./scripts/coverage.sh
#
# Profiles are left under $COVERDIR (default: a temp dir) for inspection with
# `go tool cover -html=<profile>`.
set -euo pipefail
cd "$(dirname "$0")/.."

ratchet=COVERAGE_RATCHET.txt
coverdir=${COVERDIR:-$(mktemp -d)}
fail=0

while read -r pkg floor _; do
    case "$pkg" in '' | \#*) continue ;; esac
    profile="$coverdir/$(echo "$pkg" | tr / _).cover.out"
    # Capture the full run so a failing package reports its tail instead of
    # aborting the whole ratchet via set -e with no context.
    if ! out=$(go test -coverprofile="$profile" "$pkg" 2>&1); then
        echo "FAIL $pkg: go test failed:" >&2
        echo "$out" | tail -n 5 >&2
        fail=1
        continue
    fi
    pct=$(echo "$out" | sed -n 's/.*coverage: \([0-9.]*\)% of statements.*/\1/p' | tail -n 1)
    if [ -z "$pct" ]; then
        echo "FAIL $pkg: could not parse coverage from: $out" >&2
        fail=1
        continue
    fi
    if awk -v p="$pct" -v f="$floor" 'BEGIN { exit !(p + 0 >= f + 0) }'; then
        echo "ok   $pkg ${pct}% (floor ${floor}%)"
    else
        echo "FAIL $pkg ${pct}% is below the ${floor}% floor in $ratchet" >&2
        fail=1
    fi
done <"$ratchet"

exit "$fail"
