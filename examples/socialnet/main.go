// Social-network motif analysis: the workload class the paper's introduction
// motivates with triad censuses in the social sciences [29, 31, 34, 41].
//
// We generate a power-law "follower" graph, count all 3-motifs with the
// merged multi-pattern plan, derive the global clustering coefficient from
// the triangle/wedge ratio, and then compare the pattern-aware engine with
// the pattern-oblivious strategy (Gramer-style) to show why matching and
// symmetry orders matter.
//
//	go run ./examples/socialnet
package main

import (
	"fmt"
	"log"
	"time"

	flexminer "repro"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// ~5k-member community with heavy-tailed popularity.
	g := graph.ChungLu(5000, 40000, 2.3, 2026)
	fmt.Println(graph.ComputeStats("socialnet", g))

	// 3-motif census in one pass: the compiler merges the wedge and
	// triangle chains into a dependency tree (§V-B).
	pl, err := flexminer.CompileMotifs(3, flexminer.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	res, err := flexminer.Mine(g, pl, flexminer.MineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	aware := time.Since(start)

	var wedges, triangles int64
	for i, p := range pl.Patterns {
		fmt.Printf("  %-10s %12d\n", p.Name(), res.Counts[i])
		switch p.Name() {
		case "wedge":
			wedges = res.Counts[i]
		case "triangle":
			triangles = res.Counts[i]
		}
	}
	// Global clustering coefficient: 3·triangles / (open + closed wedges).
	cc := 3 * float64(triangles) / (float64(wedges) + 3*float64(triangles))
	fmt.Printf("global clustering coefficient: %.4f\n", cc)

	// The pattern-oblivious strategy enumerates the same subgraphs with
	// isomorphism tests at every leaf (§III) — same answers, bigger tree.
	start = time.Now()
	obl := core.MineOblivious(g, 3, 0)
	oblivious := time.Since(start)
	for i, p := range pl.Patterns {
		if got := obl.CountInduced(p); got != res.Counts[i] {
			log.Fatalf("oblivious engine disagrees on %s: %d vs %d", p.Name(), got, res.Counts[i])
		}
	}
	fmt.Printf("pattern-aware: %v   pattern-oblivious: %v (%.1fx slower, %d iso tests)\n",
		aware, oblivious, float64(oblivious)/float64(aware), obl.IsoTests)
}
