// Protein-complex mining: dense k-cliques in a protein-protein interaction
// network approximate functional complexes (the paper's bioinformatics
// motivation [7, 19, 60, 61]).
//
// This example shows the §V-C orientation optimization: converting the graph
// to a degree-ordered DAG once, then mining every clique size from the same
// DAG with no symmetry checks at runtime — and verifies the generic
// symmetry-order plan agrees.
//
//	go run ./examples/bioclique
package main

import (
	"fmt"
	"log"
	"time"

	flexminer "repro"
	"repro/internal/core"
	"repro/internal/graph"
)

func main() {
	// A mico-like dense interaction network: 2k proteins, avg degree 24.
	g := graph.ChungLu(2000, 24000, 2.7, 4242)
	fmt.Println(graph.ComputeStats("ppi", g))

	// Orientation is paid once ("usually less than 1% of the execution
	// time, and once converted, the graph can be used for any k-CL").
	start := time.Now()
	dag := g.Orient()
	fmt.Printf("oriented to DAG in %v\n", time.Since(start))

	for k := 3; k <= 6; k++ {
		pl, err := flexminer.CompileCliqueDAG(k)
		if err != nil {
			log.Fatal(err)
		}
		start := time.Now()
		res, err := flexminer.Mine(dag, pl, flexminer.MineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		dagTime := time.Since(start)

		// Cross-check against the generic plan on the symmetric graph
		// (symmetry order instead of orientation).
		generic, err := core.CliqueCountGeneric(g, k, core.Options{})
		if err != nil {
			log.Fatal(err)
		}
		if generic != res.Counts[0] {
			log.Fatalf("%d-clique: DAG=%d generic=%d", k, res.Counts[0], generic)
		}
		fmt.Printf("  %d-cliques: %10d  (%v, frontier reuses: %d)\n",
			k, res.Counts[0], dagTime, res.Stats.FrontierReuses)
	}

	// Where are the complexes? Rank proteins by 4-clique membership using
	// per-vertex task counts (the top hub dominates dense complexes).
	pl, _ := flexminer.CompileCliqueDAG(4)
	res, _ := flexminer.Mine(dag, pl, flexminer.MineOptions{})
	fmt.Printf("total 4-cliques %d across %d proteins (%.2f per protein)\n",
		res.Counts[0], g.NumVertices(), float64(res.Counts[0])/float64(g.NumVertices()))
}
