// Transaction-ring detection: 4-cycles in a bipartite payments graph
// (accounts × merchants) signal card-testing and collusion rings — a
// security workload in the spirit of the paper's web-spam and fraud
// motivations [9, 26, 30, 36].
//
// Bipartite graphs have no triangles, so the 4-cycle is the densest ring
// signal; this is also the pattern where the paper's c-map shines (§VII-C).
// We mine on the CPU, then sweep the accelerator's c-map size to show the
// Fig 14 effect on this workload.
//
//	go run ./examples/fraudrings
package main

import (
	"fmt"
	"log"

	flexminer "repro"
	"repro/internal/graph"
	"repro/internal/sim"
)

func main() {
	// 3k accounts × 1k merchants, 25k payments, power-skewed merchants.
	g := graph.Bipartite(3000, 1000, 25000, 77)
	fmt.Println(graph.ComputeStats("payments", g))

	pl, err := flexminer.Compile(flexminer.Patterns.FourCycle(), flexminer.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	cpu, err := flexminer.Mine(g, pl, flexminer.MineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("transaction rings (4-cycles): %d\n", cpu.Counts[0])

	// Accelerator sweep: no c-map vs the paper's sizes. Counts must agree
	// with the CPU engine bit-for-bit; cycles and NoC traffic improve.
	fmt.Printf("%-10s %12s %12s %10s %10s\n", "c-map", "cycles", "NoC reqs", "speedup", "read%")
	cfgBase := sim.DefaultConfig().WithPEs(20)
	cfgBase.PrivateCacheBytes = 1 << 10 // scaled with the dataset; see DESIGN.md
	cfgBase.SharedCacheBytes = 32 << 10
	cfgBase.TaskSliceElems = 32
	var noCmap int64
	for _, bytes := range []int{0, 1 << 10, 4 << 10, 8 << 10} {
		res, err := flexminer.Simulate(g, pl, cfgBase.WithCMapBytes(bytes))
		if err != nil {
			log.Fatal(err)
		}
		if res.Counts[0] != cpu.Counts[0] {
			log.Fatalf("accelerator disagrees: %d vs %d", res.Counts[0], cpu.Counts[0])
		}
		if bytes == 0 {
			noCmap = res.Stats.Cycles
		}
		label := "none"
		if bytes > 0 {
			label = fmt.Sprintf("%dkB", bytes>>10)
		}
		fmt.Printf("%-10s %12d %12d %9.2fx %9.0f%%\n",
			label, res.Stats.Cycles, res.Stats.NoCRequests,
			float64(noCmap)/float64(res.Stats.Cycles), res.Stats.CMap.ReadRatio()*100)
	}
}
