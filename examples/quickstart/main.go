// Quickstart: compile a pattern, mine it on the CPU, then run the same plan
// on the simulated FlexMiner accelerator and compare.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	flexminer "repro"
)

func main() {
	// A small social graph: two triangles sharing an edge, plus a tail.
	//
	//	0───1
	//	│ ╲ │
	//	3───2───4
	g, err := flexminer.NewGraph(5, [][2]uint32{
		{0, 1}, {1, 2}, {0, 2}, {0, 3}, {2, 3}, {2, 4},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Mine triangles: compile once, run anywhere.
	pl, err := flexminer.Compile(flexminer.Patterns.Triangle(), flexminer.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("execution plan (the IR loaded into the accelerator):")
	fmt.Println(pl)

	res, err := flexminer.Mine(g, pl, flexminer.MineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CPU engine: %d triangles\n", res.Counts[0])

	// The same plan drives the cycle-level accelerator model.
	simRes, err := flexminer.Simulate(g, pl, flexminer.DefaultSimConfig().WithPEs(4))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("accelerator (4 PEs): %d triangles in %d cycles\n",
		simRes.Counts[0], simRes.Stats.Cycles)

	// Multi-pattern mining: count every 4-vertex motif in one pass.
	mc, err := flexminer.CompileMotifs(4, flexminer.CompileOptions{})
	if err != nil {
		log.Fatal(err)
	}
	census, err := flexminer.Mine(g, mc, flexminer.MineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("4-motif census (vertex-induced):")
	for i, p := range mc.Patterns {
		fmt.Printf("  %-16s %d\n", p.Name(), census.Counts[i])
	}
}
