// Command flexlint runs the repo's invariant analyzers (internal/lint) over
// package patterns and exits non-zero on any diagnostic:
//
//	go run ./cmd/flexlint ./...
//
// Patterns are go-tool-style directory patterns relative to the current
// directory: ./... (everything), ./internal/sim/... (a subtree), or a single
// directory. Testdata directories are skipped by ./... expansion like the go
// tool does, but may be named explicitly (the analyzer fixtures are
// themselves lintable packages).
//
// The analyzers and the invariants they guard:
//
//	detlint       — determinism of the cycle model (sim, cmap, plan, graph)
//	statsum       — Stats Add/Merge methods aggregate every numeric field
//	kernelpin     — paper-figure runners pin Kernel: KernelMergeOnly
//	lockcheck     — no copied mutexes / non-deferred Unlock (graph, sched, serve, core)
//	boundarg      — no constant bound where a variable bound is in scope
//	adjwrite      — no writes into Adj results (read-only views; mmap faults)
//	lockorder     — the whole-repo lock-acquisition graph is acyclic (no
//	                two code paths take the same mutexes in opposite order)
//	atomichygiene — a var ever touched through sync/atomic is touched
//	                atomically everywhere (no torn reads / racy writes)
//	noalloc       — //flexlint:noalloc hot-path functions (setops kernels,
//	                core walk/runTask, cmap probes) provably never allocate
//	goroleak      — every go statement in sched/serve/sim has a provable
//	                join (WaitGroup pairing) or cancellation/completion path
package main

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/lint"
)

func main() {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "flexlint:", err)
		os.Exit(2)
	}
	os.Exit(run(cwd, os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, testably: lint the patterns relative to cwd, print
// diagnostics to stdout, and return the exit code (0 clean, 1 diagnostics,
// 2 usage/load failure).
func run(cwd string, args []string, stdout, stderr io.Writer) int {
	root, err := findModuleRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "flexlint:", err)
		return 2
	}
	prog, err := lint.Load(root)
	if err != nil {
		fmt.Fprintln(stderr, "flexlint:", err)
		return 2
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	targets, err := selectPackages(prog, cwd, args)
	if err != nil {
		fmt.Fprintln(stderr, "flexlint:", err)
		return 2
	}
	diags := lint.Run(prog, lint.DefaultAnalyzers(), targets)
	for _, d := range diags {
		fmt.Fprintln(stdout, lint.Format(prog, d))
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "flexlint: %d invariant violation(s)\n", len(diags))
		return 1
	}
	return 0
}

// findModuleRoot walks up from dir to the directory containing go.mod.
func findModuleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}

// selectPackages expands the directory patterns into loaded packages.
func selectPackages(prog *lint.Program, cwd string, patterns []string) ([]*lint.Package, error) {
	seen := map[string]bool{}
	var out []*lint.Package
	add := func(p *lint.Package) {
		if p != nil && !seen[p.Path] {
			seen[p.Path] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "all" {
			pat = "./..."
		}
		if strings.HasSuffix(pat, "/...") || pat == "..." {
			recursive = true
			pat = strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/")
			if pat == "" {
				pat = "."
			}
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(cwd, dir)
		}
		dir = filepath.Clean(dir)
		if recursive {
			n := 0
			for _, p := range prog.Packages() {
				if p.Testdata {
					continue
				}
				if p.Dir == dir || strings.HasPrefix(p.Dir, dir+string(filepath.Separator)) {
					add(p)
					n++
				}
			}
			if n == 0 {
				return nil, fmt.Errorf("no packages match %s", pat)
			}
			continue
		}
		// Exact directory: prefer an already-loaded package, else load it
		// explicitly (testdata fixtures).
		found := false
		for _, p := range prog.Packages() {
			if p.Dir == dir {
				add(p)
				found = true
				break
			}
		}
		if !found {
			p, err := prog.LoadDir(dir)
			if err != nil {
				return nil, err
			}
			add(p)
		}
	}
	return out, nil
}
