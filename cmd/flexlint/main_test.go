package main

import (
	"bytes"
	"path/filepath"
	"runtime"
	"strings"
	"testing"
)

// moduleRoot finds the repo root from this test file's location, so the
// tests work regardless of the go test working directory.
func moduleRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("no caller info")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(file))) // cmd/flexlint -> repo root
}

// TestRunFlagsSeededViolations drives the multichecker against a known-bad
// testdata package and asserts the non-zero exit plus the expected
// diagnostic — the satellite acceptance check for the CLI itself.
func TestRunFlagsSeededViolations(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := run(root, []string{"./internal/lint/testdata/src/statsum"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "statsum:") {
		t.Errorf("stdout missing statsum diagnostic:\n%s", out)
	}
	if !strings.Contains(out, "does not aggregate field(s)") {
		t.Errorf("stdout missing aggregation message:\n%s", out)
	}
	if !strings.Contains(stderr.String(), "invariant violation") {
		t.Errorf("stderr missing summary line:\n%s", stderr.String())
	}
}

// TestRunFlagsNoallocViolations drives the CLI against the noalloc fixture:
// the production prover (annotation-driven, unscoped) must flag its seeded
// allocations with a non-zero exit.
func TestRunFlagsNoallocViolations(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := run(root, []string{"./internal/lint/testdata/src/noalloc"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, want := range []string{
		"noalloc:",
		"make allocates",
		"append grows a slice",
		"neither //flexlint:noalloc nor allowlisted",
		"boxes it",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("stdout missing %q:\n%s", want, out)
		}
	}
}

// TestRunFlagsAtomicViolations drives the CLI against the atomichygiene
// fixture: mixed atomic/plain access must fail the run.
func TestRunFlagsAtomicViolations(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := run(root, []string{"./internal/lint/testdata/src/atomichygiene"}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if !strings.Contains(stdout.String(), "accessed via sync/atomic elsewhere") {
		t.Errorf("stdout missing atomichygiene diagnostic:\n%s", stdout.String())
	}
}

// TestRunCleanPackage asserts exit 0 and silence on a clean package.
func TestRunCleanPackage(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	code := run(root, []string{"./internal/setops"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	if stdout.Len() != 0 {
		t.Errorf("unexpected stdout:\n%s", stdout.String())
	}
}

// TestRunBadPattern asserts the usage exit code for unmatched patterns.
func TestRunBadPattern(t *testing.T) {
	root := moduleRoot(t)
	var stdout, stderr bytes.Buffer
	if code := run(root, []string{"./no/such/dir/..."}, &stdout, &stderr); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
}
