// Command gengraph generates synthetic graphs (or converts between formats)
// for use with the flexminer CLI and the experiment harness.
//
// Usage:
//
//	gengraph -kind chunglu -n 100000 -m 1000000 -beta 2.3 -seed 7 -o graph.bin
//	gengraph -kind rmat -scale 18 -m 4000000 -o rmat.txt
//	gengraph -convert in.txt -o out.bin
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	var (
		kind    = flag.String("kind", "chunglu", "generator: er, chunglu, rmat, ring, clique, bipartite, grid")
		n       = flag.Int("n", 10000, "vertex count (er, chunglu, ring, clique)")
		m       = flag.Int("m", 100000, "edge samples (er, chunglu, rmat, bipartite)")
		beta    = flag.Float64("beta", 2.3, "power-law exponent (chunglu)")
		scale   = flag.Int("scale", 14, "log2 vertex count (rmat)")
		k       = flag.Int("k", 4, "ring neighbor span / grid side")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		convert = flag.String("convert", "", "convert an existing graph file instead of generating")
		out     = flag.String("o", "", "output path (.bin = binary CSR, else text edge list)")
	)
	flag.Parse()
	if err := run(*kind, *n, *m, *beta, *scale, *k, *seed, *convert, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(kind string, n, m int, beta float64, scale, k int, seed uint64, convert, out string) error {
	if out == "" {
		return fmt.Errorf("-o output path is required")
	}
	var g *graph.Graph
	var err error
	if convert != "" {
		g, err = graph.Load(convert)
		if err != nil {
			return err
		}
	} else {
		switch kind {
		case "er":
			g = graph.ErdosRenyi(n, m, seed)
		case "chunglu":
			g = graph.ChungLu(n, m, beta, seed)
		case "rmat":
			g = graph.RMAT(scale, m, 0.57, 0.19, 0.19, seed)
		case "ring":
			g = graph.Ring(n, k)
		case "clique":
			g = graph.Clique(n)
		case "bipartite":
			g = graph.Bipartite(n/2, n-n/2, m, seed)
		case "grid":
			g = graph.Grid(k, k)
		default:
			return fmt.Errorf("unknown generator %q", kind)
		}
	}
	fmt.Println(graph.ComputeStats(out, g))
	if len(out) > 4 && out[len(out)-4:] == ".bin" {
		return graph.SaveBinary(out, g)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteEdgeList(f, g)
}
