// Command gengraph generates synthetic graphs (or converts between formats)
// for use with the flexminer CLI and the experiment harness.
//
// Usage:
//
//	gengraph -kind chunglu -n 100000 -m 1000000 -beta 2.3 -seed 7 -o graph.bin
//	gengraph -kind rmat -scale 18 -m 4000000 -o rmat.txt
//	gengraph -convert in.txt -o out.bin
//	gengraph -kind rmat -scale 18 -m 4000000 -shards 8 -o shards/
//	gengraph -convert in.txt -orient -o dag.bin
//	gengraph shard -in graph.bin -shards 8 -o shards/
//
// With -shards N the output is a sharded store directory (N per-shard CSR
// files plus manifest.json) that flexminer memory-maps shard by shard; the
// shard subcommand re-partitions an existing graph file the same way.
// -orient converts the graph to its degree-oriented DAG before writing (the
// orientation optimization of §V-C) so clique apps can mine mapped files
// without an in-heap copy.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/graph"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "shard" {
		if err := runShard(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "gengraph shard:", err)
			os.Exit(1)
		}
		return
	}
	var (
		kind    = flag.String("kind", "chunglu", "generator: er, chunglu, rmat, ring, clique, bipartite, grid")
		n       = flag.Int("n", 10000, "vertex count (er, chunglu, ring, clique)")
		m       = flag.Int("m", 100000, "edge samples (er, chunglu, rmat, bipartite)")
		beta    = flag.Float64("beta", 2.3, "power-law exponent (chunglu)")
		scale   = flag.Int("scale", 14, "log2 vertex count (rmat)")
		k       = flag.Int("k", 4, "ring neighbor span / grid side")
		seed    = flag.Uint64("seed", 1, "deterministic seed")
		convert = flag.String("convert", "", "convert an existing graph file instead of generating")
		orient  = flag.Bool("orient", false, "write the degree-oriented DAG instead of the symmetric graph")
		shards  = flag.Int("shards", 0, "write a sharded store directory with this many shards (-o names the directory)")
		out     = flag.String("o", "", "output path (.bin = binary CSR, else text edge list; a directory with -shards)")
	)
	flag.Parse()
	if err := run(*kind, *n, *m, *beta, *scale, *k, *seed, *convert, *orient, *shards, *out); err != nil {
		fmt.Fprintln(os.Stderr, "gengraph:", err)
		os.Exit(1)
	}
}

func run(kind string, n, m int, beta float64, scale, k int, seed uint64, convert string, orient bool, shards int, out string) error {
	if out == "" {
		return fmt.Errorf("-o output path is required")
	}
	var g *graph.Graph
	var err error
	if convert != "" {
		g, err = graph.Load(convert)
		if err != nil {
			return err
		}
	} else {
		switch kind {
		case "er":
			g = graph.ErdosRenyi(n, m, seed)
		case "chunglu":
			g = graph.ChungLu(n, m, beta, seed)
		case "rmat":
			g = graph.RMAT(scale, m, 0.57, 0.19, 0.19, seed)
		case "ring":
			g = graph.Ring(n, k)
		case "clique":
			g = graph.Clique(n)
		case "bipartite":
			g = graph.Bipartite(n/2, n-n/2, m, seed)
		case "grid":
			g = graph.Grid(k, k)
		default:
			return fmt.Errorf("unknown generator %q", kind)
		}
	}
	return write(g, orient, shards, out)
}

// runShard implements `gengraph shard`: re-partition an existing graph file
// into a sharded store directory.
func runShard(args []string) error {
	fs := flag.NewFlagSet("gengraph shard", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: gengraph shard -in FILE -shards N -o DIR")
		fs.PrintDefaults()
	}
	in := fs.String("in", "", "input graph file (edge list, or .bin CSR)")
	shards := fs.Int("shards", 4, "shard count")
	orient := fs.Bool("orient", false, "shard the degree-oriented DAG instead of the symmetric graph")
	out := fs.String("o", "", "output directory")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments %q", fs.Args())
	}
	if *in == "" || *out == "" {
		return fmt.Errorf("-in and -o are required")
	}
	if *shards < 1 {
		return fmt.Errorf("-shards must be at least 1, got %d", *shards)
	}
	g, err := graph.Load(*in)
	if err != nil {
		return err
	}
	return write(g, *orient, *shards, *out)
}

// write applies orientation, prints the stats line, and routes the graph to
// the requested on-disk form: sharded directory, binary CSR, or edge list.
func write(g *graph.Graph, orient bool, shards int, out string) error {
	if orient {
		g = g.Orient()
	}
	fmt.Println(graph.ComputeStats(out, g))
	if shards > 0 {
		return graph.WriteSharded(out, g, shards)
	}
	if strings.HasSuffix(out, ".bin") {
		return graph.SaveBinary(out, g)
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	return graph.WriteEdgeList(f, g)
}
