// Command experiments regenerates every table and figure of the paper's
// evaluation (§VII) and prints the rows/series to stdout. See EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	experiments all            # everything (minutes)
//	experiments table1 fig14   # selected experiments
//	experiments -quick fig13   # reduced sweeps for smoke runs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	quick := flag.Bool("quick", false, "reduced sweeps (fewer apps/datasets/configs)")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] all|table1|table2|fig7|fig13|fig14|fig15|fig16|large|ablation|bench-setops ...")
		os.Exit(2)
	}
	if len(args) == 1 && args[0] == "all" {
		args = []string{"table1", "table2", "fig7", "fig13", "fig14", "fig15", "fig16", "large", "ablation"}
	}
	for _, a := range args {
		if err := runOne(a, *quick); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", a, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}

func runOne(name string, quick bool) error {
	w := os.Stdout
	switch name {
	case "table1":
		bench.PrintTable1(w)
	case "table2":
		rows, err := bench.Table2(quick)
		if err != nil {
			return err
		}
		bench.PrintTable2(w, rows)
	case "fig7":
		var threads []int
		if quick {
			threads = []int{1, 2, 4}
		}
		rows, err := bench.Fig7(threads)
		if err != nil {
			return err
		}
		bench.PrintFig7(w, rows)
	case "fig13":
		rows, err := bench.Fig13(quick)
		if err != nil {
			return err
		}
		bench.PrintFig13(w, rows)
	case "fig14":
		rows, err := bench.Fig14(quick)
		if err != nil {
			return err
		}
		bench.PrintFig14(w, rows)
	case "fig15":
		rows, err := bench.Fig15(quick)
		if err != nil {
			return err
		}
		bench.PrintFig15(w, rows)
	case "fig16":
		rows, err := bench.Fig16(quick)
		if err != nil {
			return err
		}
		bench.PrintFig16(w, rows)
	case "large":
		rows, err := bench.LargePatterns(quick)
		if err != nil {
			return err
		}
		bench.PrintLargePatterns(w, rows)
	case "bench-setops":
		// Not part of "all": this is a kernel A/B record, not a paper figure.
		rep, err := bench.SetopsBench(0)
		if err != nil {
			return err
		}
		return rep.WriteJSON(w)
	case "ablation":
		apps := []string{"TC", "4-CL", "SL-4cycle"}
		if quick {
			apps = apps[:1]
		}
		var rs []bench.AblationResult
		for _, app := range apps {
			r, err := bench.Ablation(app, "As", 40)
			if err != nil {
				return err
			}
			rs = append(rs, r)
		}
		bench.PrintAblation(w, rs)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
