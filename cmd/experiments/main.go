// Command experiments regenerates every table and figure of the paper's
// evaluation (§VII) and prints the rows/series to stdout. See EXPERIMENTS.md
// for the recorded paper-vs-measured comparison.
//
// Usage:
//
//	experiments all            # everything (minutes)
//	experiments table1 fig14   # selected experiments
//	experiments -quick fig13   # reduced sweeps for smoke runs
//	experiments table2 -metrics out.json -trace out.trace.json
//	experiments report -metrics out.json -timeseries out.ts.json
//
// -metrics writes a JSON artifact of schedule-invariant counters and phase
// timers; -trace writes a Chrome trace_event file of phase markers. Both use
// the virtual clock, so two identical runs produce byte-identical files
// (golden-enforced by the bench tests). Flags may appear before or after the
// experiment names.
//
// A panicking experiment is caught, the suite continues, and the command
// exits nonzero after printing a per-experiment status summary; -exp-timeout
// bounds each experiment the same way (the artifacts recorded so far are
// still written). The report subcommand renders a markdown dashboard from
// previously written artifacts.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"runtime/debug"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/obs"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "report" {
		if err := runReport(os.Args[2:]); err != nil {
			fmt.Fprintln(os.Stderr, "experiments report:", err)
			os.Exit(1)
		}
		return
	}
	quick := flag.Bool("quick", false, "reduced sweeps (fewer apps/datasets/configs)")
	metricsPath := flag.String("metrics", "", "write a metrics JSON artifact (counters + phase timers) to this file")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON artifact to this file")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	expTimeout := flag.Duration("exp-timeout", 0, "abort any single experiment after this long (0 = no limit)")
	flag.Parse()

	// Accept flags after experiment names too (experiments table2 -metrics
	// out.json): the flag package stops at the first positional argument, so
	// re-parse whenever one of the remaining arguments looks like a flag.
	var names []string
	rest := flag.Args()
	for len(rest) > 0 {
		if strings.HasPrefix(rest[0], "-") {
			if err := flag.CommandLine.Parse(rest); err != nil {
				os.Exit(2)
			}
			rest = flag.Args()
			continue
		}
		names = append(names, rest[0])
		rest = rest[1:]
	}

	if len(names) == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [-quick] [-metrics FILE] [-trace FILE] [-pprof ADDR] all|table1|table2|fig7|fig13|fig14|fig15|fig16|large|ablation|bench-setops|bench-storage|bench-aux ...")
		os.Exit(2)
	}
	if len(names) == 1 && names[0] == "all" {
		names = []string{"table1", "table2", "fig7", "fig13", "fig14", "fig15", "fig16", "large", "ablation"}
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: pprof:", err)
			}
		}()
	}
	// Artifacts read the virtual clock so repeated runs are byte-identical;
	// wall-clock measurements stay in the printed tables only.
	var reg *obs.Registry
	if *metricsPath != "" {
		reg = obs.NewRegistry(nil)
	}
	var tracer *obs.Tracer
	if *tracePath != "" {
		tracer = obs.NewTracer(nil, 0)
	}

	// Every experiment runs guarded: a panic or an -exp-timeout expiry marks
	// that experiment failed, the rest of the suite still runs, the artifacts
	// recorded so far are still written, and the command exits nonzero after
	// a per-experiment summary — a half-written experiments_output.txt can no
	// longer masquerade as a clean suite.
	status := make(map[string]error, len(names))
	failed := false
	for _, a := range names {
		var end func()
		if reg != nil {
			end = reg.StartPhase(a)
		}
		tracer.Emit(obs.CatPhase, a, 0, 0)
		err := runGuarded(a, *quick, reg, *expTimeout)
		if end != nil {
			end()
		}
		status[a] = err
		if err != nil {
			failed = true
			fmt.Fprintf(os.Stderr, "experiments: %s: %v\n", a, err)
		}
		fmt.Println()
	}

	if err := writeArtifacts(*metricsPath, *tracePath, reg, tracer); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		failed = true
	}
	if failed {
		fmt.Fprintln(os.Stderr, "experiments: suite FAILED:")
		for _, a := range names {
			if err := status[a]; err != nil {
				fmt.Fprintf(os.Stderr, "  FAIL %s: %v\n", a, firstLine(err.Error()))
			} else {
				fmt.Fprintf(os.Stderr, "  ok   %s\n", a)
			}
		}
		os.Exit(1)
	}
}

// runGuarded executes one experiment with panic recovery and an optional
// watchdog. On timeout the experiment's goroutine is abandoned (bench
// functions are not cancellable mid-table) — acceptable for a process that
// is about to report failure and exit.
func runGuarded(name string, quick bool, reg *obs.Registry, timeout time.Duration) error {
	done := make(chan error, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				done <- fmt.Errorf("panic: %v\n%s", r, debug.Stack())
			}
		}()
		done <- runOne(name, quick, reg)
	}()
	if timeout <= 0 {
		return <-done
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case err := <-done:
		return err
	case <-timer.C:
		return fmt.Errorf("timed out after %v", timeout)
	}
}

// firstLine truncates multi-line errors (panic stacks) for the summary.
func firstLine(s string) string {
	if i := strings.IndexByte(s, '\n'); i >= 0 {
		return s[:i] + " …"
	}
	return s
}

func writeArtifacts(metricsPath, tracePath string, reg *obs.Registry, tr *obs.Tracer) error {
	if reg != nil {
		f, err := os.Create(metricsPath)
		if err != nil {
			return err
		}
		if err := reg.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if tr.Enabled() {
		f, err := os.Create(tracePath)
		if err != nil {
			return err
		}
		if err := tr.WriteChromeJSON(f); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return nil
}

func runOne(name string, quick bool, reg *obs.Registry) error {
	w := os.Stdout
	switch name {
	case "table1":
		bench.PrintTable1(w)
	case "table2":
		rows, err := bench.Table2(quick)
		if err != nil {
			return err
		}
		bench.PrintTable2(w, rows)
		if reg != nil {
			// Register the schedule-invariant row counters (AddStats skips
			// the wall-clock seconds fields) so -metrics artifacts are
			// deterministic.
			for i := range rows {
				r := &rows[i]
				obs.AddStats(reg, fmt.Sprintf("table2.%s.%s", r.App, r.Dataset), r)
			}
		}
	case "fig7":
		var threads []int
		if quick {
			threads = []int{1, 2, 4}
		}
		rows, err := bench.Fig7(threads)
		if err != nil {
			return err
		}
		bench.PrintFig7(w, rows)
	case "fig13":
		rows, err := bench.Fig13(quick)
		if err != nil {
			return err
		}
		bench.PrintFig13(w, rows)
	case "fig14":
		rows, err := bench.Fig14(quick)
		if err != nil {
			return err
		}
		bench.PrintFig14(w, rows)
		if reg != nil {
			for _, r := range rows {
				for size, cyc := range r.Cycles {
					reg.Set(fmt.Sprintf("fig14.%s.%s.cycles.%d", r.App, r.Dataset, size), cyc)
				}
			}
		}
	case "fig15":
		rows, err := bench.Fig15(quick)
		if err != nil {
			return err
		}
		bench.PrintFig15(w, rows)
		if reg != nil {
			for _, r := range rows {
				for pe, cyc := range r.Cycles {
					reg.Set(fmt.Sprintf("fig15.%s.%s.cycles.%d", r.App, r.Dataset, pe), cyc)
				}
			}
		}
	case "fig16":
		rows, err := bench.Fig16(quick)
		if err != nil {
			return err
		}
		bench.PrintFig16(w, rows)
		if reg != nil {
			for _, r := range rows {
				for size, n := range r.NoC {
					reg.Set(fmt.Sprintf("fig16.%s.%s.noc.%d", r.App, r.Dataset, size), n)
				}
				for size, n := range r.DRAM {
					reg.Set(fmt.Sprintf("fig16.%s.%s.dram.%d", r.App, r.Dataset, size), n)
				}
			}
		}
	case "large":
		rows, err := bench.LargePatterns(quick)
		if err != nil {
			return err
		}
		bench.PrintLargePatterns(w, rows)
	case "bench-setops":
		// Not part of "all": this is a kernel A/B record, not a paper figure.
		rep, err := bench.SetopsBench(0)
		if err != nil {
			return err
		}
		return rep.WriteJSON(w)
	case "bench-aux":
		// Not part of "all": auxiliary-graph A/B record (BENCH_aux.json).
		rep, err := bench.AuxBench(0)
		if err != nil {
			return err
		}
		return rep.WriteJSON(w)
	case "bench-storage":
		// Not part of "all": storage-substrate A/B record (BENCH_storage.json).
		rep, err := bench.StorageBench(0)
		if err != nil {
			return err
		}
		return rep.WriteJSON(w)
	case "ablation":
		apps := []string{"TC", "4-CL", "SL-4cycle"}
		if quick {
			apps = apps[:1]
		}
		var rs []bench.AblationResult
		for _, app := range apps {
			r, err := bench.Ablation(app, "As", 40)
			if err != nil {
				return err
			}
			rs = append(rs, r)
		}
		bench.PrintAblation(w, rs)
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
	return nil
}
