package main

// The report subcommand: render the markdown dashboard for one recorded run
// from its -metrics (and optionally -timeseries) artifacts.

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/obs"
)

// runReport implements `experiments report`: parse the artifacts and render
// obs.RenderReport to -o (default stdout).
func runReport(args []string) error {
	fs := flag.NewFlagSet("experiments report", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: experiments report -metrics FILE [-timeseries FILE] [-o FILE]")
		fs.PrintDefaults()
	}
	metricsPath := fs.String("metrics", "", "metrics JSON artifact (flexminer-metrics/v1) to report on")
	timeseriesPath := fs.String("timeseries", "", "optional time-series JSON artifact (flexminer-timeseries/v1)")
	outPath := fs.String("o", "", "write the markdown report here instead of stdout")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("report: unexpected arguments %q", fs.Args())
	}
	if *metricsPath == "" {
		fs.Usage()
		return fmt.Errorf("report: -metrics is required")
	}

	mf, err := os.Open(*metricsPath)
	if err != nil {
		return err
	}
	m, err := obs.ReadMetricsJSON(mf)
	mf.Close()
	if err != nil {
		return err
	}

	var ts *obs.Timeseries
	if *timeseriesPath != "" {
		tf, err := os.Open(*timeseriesPath)
		if err != nil {
			return err
		}
		ts, err = obs.ReadTimeseriesJSON(tf)
		tf.Close()
		if err != nil {
			return err
		}
	}

	out := os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); err == nil && cerr != nil {
				fmt.Fprintln(os.Stderr, "experiments report:", cerr)
			}
		}()
		out = f
	}
	return obs.RenderReport(out, m, ts)
}
