// Command genplan runs the FlexMiner compiler standalone: it compiles the
// named pattern(s) and prints the execution-plan IR in the paper's
// Listing 1/2 format, including the storage-management hints.
//
// Usage:
//
//	genplan 4-cycle
//	genplan -induced diamond tailed-triangle     # merged multi-pattern tree
//	genplan -motifs 4                            # all 4-motifs, vertex-induced
//	genplan -dag 5-clique                        # orientation-optimized k-CL
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/pattern"
	"repro/internal/plan"
)

func main() {
	var (
		induced    = flag.Bool("induced", false, "vertex-induced matching semantics")
		motifs     = flag.Int("motifs", 0, "compile the k-motif-counting plan instead of named patterns")
		dag        = flag.Bool("dag", false, "compile a clique plan for degree-oriented DAG input")
		noSymmetry = flag.Bool("no-symmetry", false, "disable symmetry breaking (AutoMine mode)")
		noHints    = flag.Bool("no-hints", false, "disable frontier/c-map storage hints")
	)
	flag.Parse()
	if err := run(flag.Args(), *induced, *motifs, *dag, *noSymmetry, *noHints); err != nil {
		fmt.Fprintln(os.Stderr, "genplan:", err)
		os.Exit(1)
	}
}

func run(names []string, induced bool, motifs int, dag, noSymmetry, noHints bool) error {
	opt := plan.Options{
		Induced:         induced,
		NoSymmetry:      noSymmetry,
		NoFrontierHints: noHints,
		NoCMapHints:     noHints,
	}
	if motifs > 0 {
		pl, err := plan.CompileMotifs(motifs, opt)
		if err != nil {
			return err
		}
		fmt.Println(pl)
		return nil
	}
	if len(names) == 0 {
		return fmt.Errorf("no patterns given (try: genplan 4-cycle)")
	}
	if dag {
		if len(names) != 1 {
			return fmt.Errorf("-dag takes exactly one k-clique pattern")
		}
		var k int
		if _, err := fmt.Sscanf(names[0], "%d-clique", &k); err != nil {
			return fmt.Errorf("-dag wants a k-clique pattern, got %q", names[0])
		}
		pl, err := plan.CompileCliqueDAG(k)
		if err != nil {
			return err
		}
		fmt.Println(pl)
		return nil
	}
	ps := make([]*pattern.Pattern, len(names))
	for i, name := range names {
		p, err := pattern.ByName(name)
		if err != nil {
			return err
		}
		ps[i] = p
	}
	var pl *plan.Plan
	var err error
	if len(ps) == 1 {
		pl, err = plan.Compile(ps[0], opt)
	} else {
		pl, err = plan.CompileMulti(ps, opt)
	}
	if err != nil {
		return err
	}
	fmt.Println(pl)
	return nil
}
