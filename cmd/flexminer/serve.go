package main

// The serve subcommand: run workloads while exposing the observability spine
// over HTTP (internal/serve). The process stays up after the mining passes
// finish so /metrics can be scraped and /debug/pprof inspected, and shuts
// down gracefully on SIGINT/SIGTERM.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
)

// runServe implements `flexminer serve`: a long-lived process serving
// /metrics (Prometheus text), /healthz, /debug/progress and /debug/pprof
// while running the requested workload -runs times on the CPU engine.
func runServe(args []string) error {
	fs := flag.NewFlagSet("flexminer serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: flexminer serve -addr HOST:PORT (-graph FILE | -dataset NAME) (-app NAME | -pattern NAME) [flags]")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", "localhost:8080", "HTTP listen address")
	graphPath := fs.String("graph", "", "input graph file (edge list, .bin CSR, or sharded store directory)")
	dataset := fs.String("dataset", "", "built-in dataset stand-in (As, Mi, Pa, Yo, Lj, Or)")
	useMmap := fs.Bool("mmap", false, "memory-map the -graph .bin file zero-copy instead of loading it onto the heap")
	app := fs.String("app", "", "application: TC, 4-CL, 5-CL, SL-4cycle, SL-diamond, 3-MC, 4-MC")
	patName := fs.String("pattern", "", "pattern name for edge-induced subgraph listing")
	induced := fs.Bool("induced", false, "vertex-induced matching for -pattern")
	threads := fs.Int("threads", runtime.GOMAXPROCS(0), "CPU engine threads")
	kernelName := fs.String("kernel", "auto", "CPU set-kernel policy: auto, merge, gallop, bitmap")
	auxName := fs.String("aux", "auto", "CPU auxiliary-graph pruning: off, auto (cost-model gated), on")
	slice := fs.Int("slice", 0, "hub-slicing task size in adjacency elements (0 auto, -1 off)")
	runs := fs.Int("runs", 1, "mining passes to execute while serving (0 = serve endpoints only)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %q", fs.Args())
	}

	reg := obs.NewRegistry(nil)
	var prog serve.Progress

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Resolve the workload up front so flag mistakes fail fast, before a
	// listener is bound.
	var mine func(context.Context) error
	if *runs > 0 {
		g, closeG, err := loadInput(*graphPath, *dataset, *useMmap)
		if err != nil {
			return err
		}
		defer closeG()
		fmt.Printf("graph: %s\n", graph.ComputeStats(inputName(*graphPath, *dataset), g))
		pl, mineG, err := buildPlan(g, *app, *patName, *induced)
		if err != nil {
			return err
		}
		kernel, err := core.ParseKernelPolicy(*kernelName)
		if err != nil {
			return err
		}
		aux, err := core.ParseAuxMode(*auxName)
		if err != nil {
			return err
		}
		mine = func(ctx context.Context) error {
			for r := 0; r < *runs; r++ {
				eng, err := core.NewEngine(mineG, pl, core.Options{
					Threads: *threads, SliceElems: *slice, Kernel: kernel, AuxGraph: aux,
					// Steal traffic feeds both the live /debug/progress view and
					// the registry's sched.* counters on /metrics.
					SchedHooks: sched.MergeHooks(prog.Hooks(), obs.SchedHooks(reg)),
					OnTaskDone: prog.OnTaskDone,
				})
				if err != nil {
					return err
				}
				prog.BeginRun(eng.TaskCount())
				endMine := reg.StartPhase("mine")
				res, err := eng.MineContext(ctx)
				endMine()
				prog.EndRun()
				registerResult(reg, "cpu", res.Counts, &res.Stats)
				if err != nil {
					return err
				}
				fmt.Printf("run %d/%d: %s\n", r+1, *runs, formatCounts(pl, res.Counts))
			}
			return nil
		}
	}

	mux := serve.NewMux(reg, &prog, "flexminer")
	if mine != nil {
		go func() {
			if err := mine(ctx); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "flexminer serve: workload:", err)
			}
		}()
	}
	err := serve.ListenAndServe(ctx, *addr, mux, func(bound string) {
		fmt.Printf("serving http://%s/{metrics,healthz,debug/progress,debug/pprof} — ^C to stop\n", bound)
	})
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}
