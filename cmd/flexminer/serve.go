package main

// The serve subcommand: run workloads while exposing the observability spine
// over HTTP (internal/serve) and, with -jobs, the asynchronous multi-tenant
// job API (internal/jobs). The process stays up after the mining passes
// finish so /metrics can be scraped and /debug/pprof inspected, and shuts
// down gracefully on SIGINT/SIGTERM — draining the in-flight workload and
// any running job batches (bounded by serve.DrainGrace) before the listener
// closes.

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/sched"
	"repro/internal/serve"
)

// runServe implements `flexminer serve`: a long-lived process serving
// /metrics (Prometheus text), /healthz, /debug/progress and /debug/pprof
// while running the requested workload -runs times on the CPU engine, plus
// the /jobs API when -jobs is set.
func runServe(args []string) error {
	fs := flag.NewFlagSet("flexminer serve", flag.ExitOnError)
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: flexminer serve -addr HOST:PORT (-graph FILE | -dataset NAME) (-app NAME | -pattern NAME) [flags]")
		fs.PrintDefaults()
	}
	addr := fs.String("addr", "localhost:8080", "HTTP listen address")
	graphPath := fs.String("graph", "", "input graph file (edge list, .bin CSR, or sharded store directory)")
	dataset := fs.String("dataset", "", "built-in dataset stand-in (As, Mi, Pa, Yo, Lj, Or)")
	useMmap := fs.Bool("mmap", false, "memory-map the -graph .bin file zero-copy instead of loading it onto the heap")
	app := fs.String("app", "", "application: TC, 4-CL, 5-CL, SL-4cycle, SL-diamond, 3-MC, 4-MC")
	patName := fs.String("pattern", "", "pattern name for edge-induced subgraph listing")
	induced := fs.Bool("induced", false, "vertex-induced matching for -pattern")
	threads := fs.Int("threads", runtime.GOMAXPROCS(0), "CPU engine threads")
	kernelName := fs.String("kernel", "auto", "CPU set-kernel policy: auto, merge, gallop, bitmap")
	auxName := fs.String("aux", "auto", "CPU auxiliary-graph pruning: off, auto (cost-model gated), on")
	slice := fs.Int("slice", 0, "hub-slicing task size in adjacency elements (0 auto, -1 off)")
	runs := fs.Int("runs", 1, "mining passes to execute while serving (0 = serve endpoints only)")
	jobsOn := fs.Bool("jobs", false, "serve the async mining-job API under /jobs (the -graph/-dataset input is registered as graph \"default\")")
	jobsQueue := fs.Int("jobs-queue", 64, "job queue bound (submits beyond it get 429)")
	jobsBatch := fs.Int("jobs-batch", 8, "max distinct patterns merged into one batched plan (1 disables batching)")
	jobsRunning := fs.Int("jobs-running", 1, "max concurrently executing job batches")
	jobsGraphDir := fs.String("jobs-graph-dir", "", "root directory for job graph path references (empty = named graphs only)")
	jobsPaused := fs.Bool("jobs-paused", false, "start the job dispatcher paused (POST /jobs/queue/resume to release)")
	eventlogPath := fs.String("eventlog", "", "flush the job service's structured event log (NDJSON) here on shutdown (implies the in-memory log feeding /debug/jobs)")
	tracePath := fs.String("trace", "", "flush job lifecycle spans as a Chrome trace (chrome://tracing) here on shutdown")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("serve: unexpected arguments %q", fs.Args())
	}

	reg := obs.NewRegistry(nil)
	var prog serve.Progress

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Resolve inputs up front so flag mistakes fail fast, before a listener
	// is bound. The graph is shared between the serve-mode workload and the
	// job service's "default" registration.
	var g graph.Store
	if *graphPath != "" || *dataset != "" {
		var closeG func() error
		var err error
		g, closeG, err = loadInput(*graphPath, *dataset, *useMmap)
		if err != nil {
			return err
		}
		defer closeG() //nolint:errcheck // close on exit; nothing left to do with the error
		fmt.Printf("graph: %s\n", graph.ComputeStats(inputName(*graphPath, *dataset), g))
	}

	// With -jobs, a graph-only invocation (no -app/-pattern) is a pure job
	// server; without it, the workload is mandatory as before.
	var mine func(context.Context) error
	if *runs > 0 && (*app != "" || *patName != "" || !*jobsOn) {
		if g == nil {
			return fmt.Errorf("serve: one of -graph or -dataset is required")
		}
		pl, mineG, err := buildPlan(g, *app, *patName, *induced)
		if err != nil {
			return err
		}
		kernel, err := core.ParseKernelPolicy(*kernelName)
		if err != nil {
			return err
		}
		aux, err := core.ParseAuxMode(*auxName)
		if err != nil {
			return err
		}
		mine = func(ctx context.Context) error {
			for r := 0; r < *runs; r++ {
				eng, err := core.NewEngine(mineG, pl, core.Options{
					Threads: *threads, SliceElems: *slice, Kernel: kernel, AuxGraph: aux,
					// Steal traffic feeds both the live /debug/progress view and
					// the registry's sched.* counters on /metrics.
					SchedHooks: sched.MergeHooks(prog.Hooks(), obs.SchedHooks(reg)),
					OnTaskDone: prog.OnTaskDone,
				})
				if err != nil {
					return err
				}
				prog.BeginRun(eng.TaskCount())
				endMine := reg.StartPhase("mine")
				res, err := eng.MineContext(ctx)
				endMine()
				prog.EndRun()
				registerResult(reg, "cpu", res.Counts, &res.Stats)
				if err != nil {
					return err
				}
				fmt.Printf("run %d/%d: %s\n", r+1, *runs, formatCounts(pl, res.Counts))
			}
			return nil
		}
	}

	mux := serve.NewMux(reg, &prog, "flexminer")

	// Shutdown drainers, run after SIGINT but before the listener closes so
	// the final state of the run stays scrapeable on /metrics.
	var drainers []func(context.Context) error

	// Artifact sinks for the job service, flushed after the listener closes.
	// The event log always exists when -jobs is on (it feeds /debug/jobs);
	// -eventlog additionally flushes it to disk. Lifecycle spans are only
	// recorded when -trace asks for them.
	var elog *obs.EventLog
	var jtrace *obs.Tracer
	if *jobsOn {
		elog = obs.NewEventLog(0)
		if *tracePath != "" {
			jtrace = obs.NewTracer(nil, 0)
		}
		named := map[string]graph.Store{}
		if g != nil {
			named["default"] = g
		}
		js := jobs.New(jobs.Config{
			Registry:    reg,
			MaxQueue:    *jobsQueue,
			MaxBatch:    *jobsBatch,
			MaxRunning:  *jobsRunning,
			Graphs:      named,
			GraphDir:    *jobsGraphDir,
			StartPaused: *jobsPaused,
			Tracer:      jtrace,
			EventLog:    elog,
		})
		js.Routes(mux)
		drainers = append(drainers, js.Close)
	}

	if mine != nil {
		workloadDone := make(chan struct{})
		go func() {
			defer close(workloadDone)
			if err := mine(ctx); err != nil && !errors.Is(err, context.Canceled) {
				fmt.Fprintln(os.Stderr, "flexminer serve: workload:", err)
			}
		}()
		// The workload mines under the signal context, so after SIGINT it
		// unwinds promptly with partial counts; the drainer just waits for
		// that unwind to land in the registry.
		drainers = append(drainers, func(dctx context.Context) error {
			select {
			case <-workloadDone:
				return nil
			case <-dctx.Done():
				return dctx.Err()
			}
		})
	}

	err := serve.ListenAndServe(ctx, *addr, mux, func(bound string) {
		fmt.Printf("serving http://%s/{metrics,healthz,debug/progress,debug/pprof} — ^C to stop\n", bound)
	}, drainers...)
	if errors.Is(err, http.ErrServerClosed) {
		err = nil
	}
	if ferr := flushJobArtifacts(*eventlogPath, elog, *tracePath, jtrace); err == nil {
		err = ferr
	}
	return err
}

// flushJobArtifacts writes the job service's shutdown artifacts: the
// structured event log as NDJSON and the lifecycle spans as a Chrome trace.
func flushJobArtifacts(eventlogPath string, elog *obs.EventLog, tracePath string, jtrace *obs.Tracer) error {
	write := func(path, what string, render func(w io.Writer) error) error {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := render(f); err != nil {
			f.Close() //nolint:errcheck // render already failed
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("%s: wrote %s\n", what, path)
		return nil
	}
	if eventlogPath != "" && elog != nil {
		if err := write(eventlogPath, "eventlog", elog.WriteNDJSON); err != nil {
			return err
		}
	}
	if tracePath != "" && jtrace != nil {
		if err := write(tracePath, "trace", jtrace.WriteChromeJSON); err != nil {
			return err
		}
	}
	return nil
}
