// Command flexminer mines a pattern in a graph, on the CPU engine or on the
// simulated accelerator.
//
// Usage:
//
//	flexminer -app TC -graph graph.txt
//	flexminer -pattern diamond -graph graph.bin -engine sim -pes 64 -cmap 8192
//	flexminer -app 3-MC -dataset Mi -engine both
//
// Either -graph (a file) or -dataset (a built-in Table I stand-in) selects
// the input; either -app (TC, k-CL, SL-4cycle, SL-diamond, 3-MC, 4-MC) or
// -pattern (catalog name, edge-induced SL) selects the workload.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/sim"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "input graph file (edge list, or .bin CSR)")
		dataset   = flag.String("dataset", "", "built-in dataset stand-in (As, Mi, Pa, Yo, Lj, Or)")
		app       = flag.String("app", "", "application: TC, 4-CL, 5-CL, SL-4cycle, SL-diamond, 3-MC, 4-MC")
		patName   = flag.String("pattern", "", "pattern name for edge-induced subgraph listing")
		induced   = flag.Bool("induced", false, "vertex-induced matching for -pattern")
		engine    = flag.String("engine", "cpu", "cpu, sim, or both")
		threads   = flag.Int("threads", runtime.GOMAXPROCS(0), "CPU engine threads")
		pes       = flag.Int("pes", 64, "simulated processing elements")
		cmapBytes = flag.Int("cmap", 8<<10, "simulated c-map bytes (0 disables)")
		showPlan  = flag.Bool("show-plan", false, "print the compiled execution plan IR")
		statsOut  = flag.Bool("stats", false, "print engine/simulator statistics")
	)
	flag.Parse()
	if err := run(*graphPath, *dataset, *app, *patName, *induced, *engine, *threads, *pes, *cmapBytes, *showPlan, *statsOut); err != nil {
		fmt.Fprintln(os.Stderr, "flexminer:", err)
		os.Exit(1)
	}
}

func run(graphPath, dataset, app, patName string, induced bool, engine string, threads, pes, cmapBytes int, showPlan, statsOut bool) error {
	g, err := loadInput(graphPath, dataset)
	if err != nil {
		return err
	}
	fmt.Printf("graph: %s\n", graph.ComputeStats(inputName(graphPath, dataset), g))

	pl, mineG, err := buildPlan(g, app, patName, induced)
	if err != nil {
		return err
	}
	if showPlan {
		fmt.Println(pl)
	}

	runCPU := engine == "cpu" || engine == "both"
	runSim := engine == "sim" || engine == "both"
	if !runCPU && !runSim {
		return fmt.Errorf("unknown engine %q (want cpu, sim, or both)", engine)
	}
	if runCPU {
		start := time.Now()
		res, err := core.Mine(mineG, pl, core.Options{Threads: threads})
		if err != nil {
			return err
		}
		fmt.Printf("cpu engine (%d threads): %s in %v\n", threads, formatCounts(pl, res.Counts), time.Since(start))
		if statsOut {
			s := res.Stats
			fmt.Printf("  tasks=%d extensions=%d candidates=%d setop-iters=%d frontier-reuses=%d\n",
				s.Tasks, s.Extensions, s.Candidates, s.SetOpIterations, s.FrontierReuses)
		}
	}
	if runSim {
		cfg := sim.DefaultConfig().WithPEs(pes).WithCMapBytes(cmapBytes)
		res, err := sim.Simulate(mineG, pl, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("accelerator (%d PEs, %s c-map): %s in %d cycles = %.6fs @%.1fGHz\n",
			pes, cmapLabel(cmapBytes), formatCounts(pl, res.Counts),
			res.Stats.Cycles, res.Stats.Seconds, cfg.FreqGHz)
		if statsOut {
			s := res.Stats
			fmt.Printf("  util=%.2f noc=%d dram=%d l1miss=%d l2miss=%d siu=%d sdu=%d cmap-reads=%.0f%%\n",
				s.Utilization, s.NoCRequests, s.DRAMAccesses, s.L1Misses, s.L2Misses,
				s.SIUIters, s.SDUIters, s.CMap.ReadRatio()*100)
		}
	}
	return nil
}

func loadInput(graphPath, dataset string) (*graph.Graph, error) {
	switch {
	case graphPath != "" && dataset != "":
		return nil, fmt.Errorf("-graph and -dataset are mutually exclusive")
	case graphPath != "":
		return graph.Load(graphPath)
	case dataset != "":
		return bench.Get(dataset)
	default:
		return nil, fmt.Errorf("one of -graph or -dataset is required")
	}
}

func inputName(graphPath, dataset string) string {
	if dataset != "" {
		return dataset
	}
	return graphPath
}

// buildPlan compiles the requested workload and returns the graph the plan
// must run on (oriented for clique apps).
func buildPlan(g *graph.Graph, app, patName string, induced bool) (*plan.Plan, *graph.Graph, error) {
	switch {
	case app != "" && patName != "":
		return nil, nil, fmt.Errorf("-app and -pattern are mutually exclusive")
	case app != "":
		var k int
		if app == "TC" {
			k = 3
		} else if _, err := fmt.Sscanf(app, "%d-CL", &k); err == nil && k >= 2 {
			// k parsed
		} else if app == "3-MC" || app == "4-MC" {
			kk := 3
			if app == "4-MC" {
				kk = 4
			}
			pl, err := plan.CompileMotifs(kk, plan.Options{})
			return pl, g, err
		} else if len(app) > 3 && app[:3] == "SL-" {
			p, err := pattern.ByName(app[3:])
			if err != nil {
				return nil, nil, err
			}
			pl, err := plan.Compile(p, plan.Options{})
			return pl, g, err
		} else {
			return nil, nil, fmt.Errorf("unknown app %q", app)
		}
		pl, err := plan.CompileCliqueDAG(k)
		if err != nil {
			return nil, nil, err
		}
		return pl, g.Orient(), nil
	case patName != "":
		p, err := pattern.ByName(patName)
		if err != nil {
			return nil, nil, err
		}
		pl, err := plan.Compile(p, plan.Options{Induced: induced})
		return pl, g, err
	default:
		return nil, nil, fmt.Errorf("one of -app or -pattern is required")
	}
}

func formatCounts(pl *plan.Plan, counts []int64) string {
	if len(counts) == 1 {
		return fmt.Sprintf("%s = %d", pl.Patterns[0].Name(), counts[0])
	}
	out := ""
	for i, c := range counts {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("%s=%d", pl.Patterns[i].Name(), c)
	}
	return out
}

func cmapLabel(b int) string {
	if b == 0 {
		return "no"
	}
	return fmt.Sprintf("%dB", b)
}
